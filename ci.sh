#!/bin/sh
# CI gate: formatting, vet, build, the full test suite, and race-enabled
# tests for the concurrency-sensitive packages (the RTEC engine, the fleet
# scenario generator and the event stream plumbing).
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== vet-rtec (determinism vet: no wall clock or unseeded rand outside internal/clock)"
go run ./cmd/vet-rtec .

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrency-sensitive packages)"
go test -race ./internal/rtec/... ./internal/fleet/... ./internal/stream/... ./internal/telemetry/... \
    ./internal/eval/... ./internal/similarity/... ./internal/shard/... ./internal/serve/...

echo "== rteclint"
# The worked example must produce diagnostics (exit 1 under -fail-on error).
if go run ./cmd/rteclint -domain maritime examples/lint/withinarea_bad.prolog >/dev/null; then
    echo "rteclint: expected diagnostics for examples/lint/withinarea_bad.prolog" >&2
    exit 1
fi
# The embedded gold standards must lint diagnostic-free at the strictest
# threshold.
go run ./cmd/rteclint -gold -domain maritime -max-severity info > /dev/null
go run ./cmd/rteclint -gold -domain fleet -max-severity info > /dev/null

echo "== autofix golden gate (rteclint -fix reaches the committed fixpoints)"
# The corrupted examples must fail as-is, and -fix must repair each one to a
# lint-clean fixpoint that is byte-identical to the committed golden output.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
for domain in maritime fleet; do
    corrupted="examples/lint/corrupted_$domain.prolog"
    if go run ./cmd/rteclint -domain "$domain" "$corrupted" >/dev/null; then
        echo "autofix gate: expected diagnostics for $corrupted" >&2
        exit 1
    fi
    go run ./cmd/rteclint -fix -max-severity info -domain "$domain" "$corrupted" > "$tmp/fixed.prolog" 2>/dev/null
    if ! cmp -s "$corrupted.golden" "$tmp/fixed.prolog"; then
        echo "autofix gate: -fix output deviates from $corrupted.golden:" >&2
        diff "$corrupted.golden" "$tmp/fixed.prolog" >&2 || true
        exit 1
    fi
done

echo "== telemetry smoke (instrumented engine run on the maritime example)"
# Compose a runnable maritime event description (gold standard + scenario
# background knowledge) and stream, run the engine with tracing and metrics
# enabled, and fail on a malformed trace or an empty registry dump.
go run ./cmd/aisgen -vessels 14 -seed 7 -background "$tmp/bg.rtec" -gold "$tmp/gold.rtec" > "$tmp/events.csv"
cat "$tmp/gold.rtec" "$tmp/bg.rtec" > "$tmp/ed.rtec"
go run ./cmd/rtec -ed "$tmp/ed.rtec" -stream "$tmp/events.csv" -window 3600 \
    -trace "$tmp/trace.json" -metrics > "$tmp/out.txt" 2> "$tmp/metrics.txt"
go run ./cmd/tracecheck -require rtec.run,rtec.window,rtec.fluent "$tmp/trace.json"
if ! grep -q '^counter rtec.windows.evaluated_total' "$tmp/metrics.txt"; then
    echo "telemetry smoke: metrics dump is missing engine counters:" >&2
    cat "$tmp/metrics.txt" >&2
    exit 1
fi

echo "== chaos smoke (fault-injected experiments must degrade deterministically)"
# Run Figure 2a under the mixed fault profile with a fixed seed, twice:
# the run must survive the injected faults (no panic, exit 0), two runs of
# the same seed must be byte-identical, and the resilience metrics must
# show that retries actually happened.
go run ./cmd/experiments -fig 2a -faults mixed -fault-seed 7 > "$tmp/chaos1.txt" 2>/dev/null
go run ./cmd/experiments -fig 2a -faults mixed -fault-seed 7 > "$tmp/chaos2.txt" 2>/dev/null
if ! cmp -s "$tmp/chaos1.txt" "$tmp/chaos2.txt"; then
    echo "chaos smoke: two runs with the same fault seed differ:" >&2
    diff "$tmp/chaos1.txt" "$tmp/chaos2.txt" >&2 || true
    exit 1
fi
go run ./cmd/experiments -fig 2a -faults mixed -fault-seed 7 -metrics \
    > /dev/null 2> "$tmp/chaos-metrics.txt"
if ! grep -q '^counter llm\.retries_total [1-9]' "$tmp/chaos-metrics.txt"; then
    echo "chaos smoke: metrics dump is missing a nonzero llm.retries counter:" >&2
    grep '^counter llm\.' "$tmp/chaos-metrics.txt" >&2 || cat "$tmp/chaos-metrics.txt" >&2
    exit 1
fi

echo "== refine smoke (critique-refine loop must converge deterministically)"
# Two same-seed runs of the refine figure must be byte-identical, and the
# clean profile must converge in a single round with nothing left to
# critique (autofixed 7, remaining 0, F1 1.000).
go run ./cmd/experiments -fig refine -csv -vessels 14 -seed 7 -window 3600 > "$tmp/refine1.csv" 2>/dev/null
go run ./cmd/experiments -fig refine -csv -vessels 14 -seed 7 -window 3600 > "$tmp/refine2.csv" 2>/dev/null
if ! cmp -s "$tmp/refine1.csv" "$tmp/refine2.csv"; then
    echo "refine smoke: two runs with the same seed differ:" >&2
    diff "$tmp/refine1.csv" "$tmp/refine2.csv" >&2 || true
    exit 1
fi
if ! grep -q '^o1□,1,7,0,0.993,0.947,1.000,$' "$tmp/refine1.csv"; then
    echo "refine smoke: o1 profile no longer converges in one clean round:" >&2
    cat "$tmp/refine1.csv" >&2
    exit 1
fi

echo "== streaming robustness gate (disorder replay + kill-and-resume)"
# Shuffle the maritime stream within a delay bound (with injected
# duplicates), replay it through the out-of-order streaming path, and
# require the final recognition CSV to be byte-identical to the in-order
# batch run. The streaming run also exposes its disorder counters in the
# metrics dump.
go run ./cmd/rtec -ed "$tmp/ed.rtec" -stream "$tmp/events.csv" -window 3600 -csv > "$tmp/baseline.csv"
go run ./cmd/disorder -in "$tmp/events.csv" -out "$tmp/shuffled.csv" -max-delay 900 -seed 13 -dup-every 50 2>/dev/null
go run ./cmd/rtec -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -csv \
    -max-delay 900 -metrics > "$tmp/streamed.csv" 2> "$tmp/stream-metrics.txt"
if ! cmp -s "$tmp/baseline.csv" "$tmp/streamed.csv"; then
    echo "streaming gate: delayed+shuffled replay diverged from the in-order baseline:" >&2
    diff "$tmp/baseline.csv" "$tmp/streamed.csv" >&2 || true
    exit 1
fi
if ! grep -q '^counter rtec.duplicate_events_total [1-9]' "$tmp/stream-metrics.txt"; then
    echo "streaming gate: metrics dump is missing a nonzero rtec.duplicate_events counter:" >&2
    grep '^counter rtec\.' "$tmp/stream-metrics.txt" >&2 || cat "$tmp/stream-metrics.txt" >&2
    exit 1
fi
# Kill-and-resume smoke: crash the streaming run mid-way, then resume from
# the crash-safe checkpoint; the resumed output must be byte-identical to
# the uninterrupted run, and the restore must show up in the metrics.
if go run ./cmd/rtec -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -csv \
    -max-delay 900 -checkpoint "$tmp/run.ckpt" -crash-after 3 > /dev/null 2>&1; then
    echo "streaming gate: -crash-after 3 did not abort the run" >&2
    exit 1
fi
if [ ! -f "$tmp/run.ckpt" ]; then
    echo "streaming gate: crashed run left no checkpoint" >&2
    exit 1
fi
go run ./cmd/rtec -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -csv \
    -max-delay 900 -checkpoint "$tmp/run.ckpt" -resume -metrics > "$tmp/resumed.csv" 2> "$tmp/resume-metrics.txt"
if ! cmp -s "$tmp/baseline.csv" "$tmp/resumed.csv"; then
    echo "streaming gate: kill-and-resume output diverged from the baseline:" >&2
    diff "$tmp/baseline.csv" "$tmp/resumed.csv" >&2 || true
    exit 1
fi
if ! grep -q '^counter rtec.checkpoint.restores_total 1' "$tmp/resume-metrics.txt"; then
    echo "streaming gate: metrics dump is missing the rtec.checkpoint.restores counter:" >&2
    grep '^counter rtec\.checkpoint' "$tmp/resume-metrics.txt" >&2 || cat "$tmp/resume-metrics.txt" >&2
    exit 1
fi

echo "== parallel recognition gate (worker sharding must not change output)"
# Re-run the batch recognition with an explicit worker pool; the CSV must be
# byte-identical to the sequential baseline produced above.
go run ./cmd/rtec -ed "$tmp/ed.rtec" -stream "$tmp/events.csv" -window 3600 -csv -workers 8 > "$tmp/parallel.csv"
if ! cmp -s "$tmp/baseline.csv" "$tmp/parallel.csv"; then
    echo "parallel gate: -workers 8 recognition diverged from the sequential baseline:" >&2
    diff "$tmp/baseline.csv" "$tmp/parallel.csv" >&2 || true
    exit 1
fi

echo "== delta gate (incremental sliding windows must match full re-evaluation byte-for-byte)"
# Slide-heavy streaming run (ω=3600, slide=900: 4x overlap) over the
# disordered stream, race-instrumented. The incremental delta layer must
# produce the same CSV, the same audit journal bytes and the same final
# checkpoint envelope as the -no-delta full re-evaluation oracle, while
# actually reusing carried state (nonzero rtec.delta.reused counter). A kill
# mid-slide plus -resume must restore the delta sidecar (warm resume) and
# still converge to the identical CSV.
go build -race -o "$tmp/bin-rtec-race" ./cmd/rtec
"$tmp/bin-rtec-race" -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -slide 900 -csv \
    -max-delay 900 -journal "$tmp/delta.jsonl" -checkpoint "$tmp/delta.ckpt" -metrics \
    > "$tmp/delta.csv" 2> "$tmp/delta-metrics.txt"
"$tmp/bin-rtec-race" -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -slide 900 -csv \
    -max-delay 900 -journal "$tmp/full.jsonl" -checkpoint "$tmp/full.ckpt" -no-delta \
    > "$tmp/full.csv" 2> /dev/null
if ! cmp -s "$tmp/delta.csv" "$tmp/full.csv"; then
    echo "delta gate: incremental recognition diverged from full re-evaluation:" >&2
    diff "$tmp/delta.csv" "$tmp/full.csv" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/delta.jsonl" "$tmp/full.jsonl"; then
    echo "delta gate: incremental audit journal diverged from full re-evaluation:" >&2
    diff "$tmp/delta.jsonl" "$tmp/full.jsonl" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/delta.ckpt" "$tmp/full.ckpt"; then
    echo "delta gate: final checkpoint envelope differs between delta and full modes" >&2
    exit 1
fi
if ! grep -q '^counter rtec.delta.reused_total [1-9]' "$tmp/delta-metrics.txt"; then
    echo "delta gate: metrics dump is missing a nonzero rtec.delta.reused counter:" >&2
    grep '^counter rtec\.delta' "$tmp/delta-metrics.txt" >&2 || cat "$tmp/delta-metrics.txt" >&2
    exit 1
fi
# A worker pool must not change the incremental output either.
"$tmp/bin-rtec-race" -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -slide 900 -csv \
    -max-delay 900 -workers 8 > "$tmp/delta-par.csv" 2> /dev/null
if ! cmp -s "$tmp/delta.csv" "$tmp/delta-par.csv"; then
    echo "delta gate: -workers 8 incremental recognition diverged:" >&2
    diff "$tmp/delta.csv" "$tmp/delta-par.csv" >&2 || true
    exit 1
fi
# Kill mid-slide, resume warm: the restored delta sidecar must show up in
# the metrics and the resumed run must still match byte-for-byte.
if "$tmp/bin-rtec-race" -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -slide 900 -csv \
    -max-delay 900 -checkpoint "$tmp/delta-crash.ckpt" -crash-after 3 > /dev/null 2>&1; then
    echo "delta gate: -crash-after 3 did not abort the slide-heavy run" >&2
    exit 1
fi
"$tmp/bin-rtec-race" -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -slide 900 -csv \
    -max-delay 900 -checkpoint "$tmp/delta-crash.ckpt" -resume -metrics \
    > "$tmp/delta-resumed.csv" 2> "$tmp/delta-resume-metrics.txt"
if ! cmp -s "$tmp/delta.csv" "$tmp/delta-resumed.csv"; then
    echo "delta gate: kill-and-resume mid-slide diverged from the uninterrupted run:" >&2
    diff "$tmp/delta.csv" "$tmp/delta-resumed.csv" >&2 || true
    exit 1
fi
if ! grep -q '^counter rtec.delta.sidecar_restores_total 1' "$tmp/delta-resume-metrics.txt"; then
    echo "delta gate: resume did not restore the delta sidecar (cold resume):" >&2
    grep '^counter rtec\.delta' "$tmp/delta-resume-metrics.txt" >&2 || cat "$tmp/delta-resume-metrics.txt" >&2
    exit 1
fi

echo "== shard chaos gate (supervised shards must recover byte-identically)"
# Run the supervised shard runtime over the shuffled stream twice with the
# same seed: once fault-free and once with a deterministic fault schedule
# (a torn checkpoint at window 2 plus a panic at window 3 in every shard).
# The faulted run must restart from checkpoints and still produce the same
# recognition CSV and the same per-shard journal bytes as the fault-free
# run, with a nonzero restart counter. The binary is race-instrumented so
# the supervisor, watchdog and queue paths run under the race detector.
# Note: both sides are sharded — entity-hash partitioning is only exact for
# entity-local fluents, so the sharded output is compared against itself,
# not against the unsharded baseline.
go build -race -o "$tmp/bin-rtec-race" ./cmd/rtec
"$tmp/bin-rtec-race" -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -csv \
    -max-delay 900 -shards 4 -shard-seed 7 \
    -checkpoint "$tmp/clean.ckpt" -journal "$tmp/clean.jsonl" \
    > "$tmp/sharded-clean.csv" 2> /dev/null
"$tmp/bin-rtec-race" -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -csv \
    -max-delay 900 -shards 4 -shard-seed 7 \
    -checkpoint "$tmp/chaos.ckpt" -journal "$tmp/chaos.jsonl" \
    -shard-faults 'ckpt-truncate@w2,panic@w3' -metrics \
    > "$tmp/sharded-chaos.csv" 2> "$tmp/shard-metrics.txt"
if ! cmp -s "$tmp/sharded-clean.csv" "$tmp/sharded-chaos.csv"; then
    echo "shard chaos gate: faulted run diverged from the fault-free run:" >&2
    diff "$tmp/sharded-clean.csv" "$tmp/sharded-chaos.csv" >&2 || true
    exit 1
fi
for k in 0 1 2 3; do
    if ! cmp -s "$tmp/clean.jsonl.s$k" "$tmp/chaos.jsonl.s$k"; then
        echo "shard chaos gate: shard $k journal diverged under faults" >&2
        exit 1
    fi
done
if ! grep -q '^counter rtec.shard.restarts_total [1-9]' "$tmp/shard-metrics.txt"; then
    echo "shard chaos gate: metrics dump is missing a nonzero rtec.shard.restarts counter:" >&2
    grep '^counter rtec\.shard' "$tmp/shard-metrics.txt" >&2 || cat "$tmp/shard-metrics.txt" >&2
    exit 1
fi
# The supervisor events in the main journal must drive rtectop's shard board.
go run ./cmd/rtectop -journal "$tmp/chaos.jsonl" -require 'rtec_shard_restarts_total>0' > /dev/null

echo "== live observability gate (serve, scrape, journal, replay)"
# Run the streaming recognition with the operational endpoints and the audit
# journal on, scrape /metrics while the server lingers, and validate the
# exposition with rtectop's assertion mode. The journal must pass
# tracecheck, replay in rtectop, and be byte-identical across same-seed
# runs.
go build -o "$tmp/bin-rtec" ./cmd/rtec
go build -o "$tmp/bin-rtectop" ./cmd/rtectop
go build -o "$tmp/bin-tracecheck" ./cmd/tracecheck
"$tmp/bin-rtec" -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -csv \
    -max-delay 900 -slo-emit-lag 900 -journal "$tmp/run1.jsonl" \
    -listen 127.0.0.1:0 -linger 30s > "$tmp/live.csv" 2> "$tmp/live-err.txt" &
live_pid=$!
# Wait for the run to finish (the final stats line) so the scrape sees the
# complete counters; the server stays up through -linger.
ok=""
i=0
while [ $i -lt 300 ]; do
    if grep -q '^rtec: stream:' "$tmp/live-err.txt" 2>/dev/null; then
        ok=1
        break
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$ok" ]; then
    echo "live gate: streaming run under -listen never finished:" >&2
    cat "$tmp/live-err.txt" >&2
    kill "$live_pid" 2>/dev/null || true
    exit 1
fi
addr=$(sed -n 's/^rtec: metrics listening on //p' "$tmp/live-err.txt")
if [ -z "$addr" ]; then
    echo "live gate: no bound address on stderr:" >&2
    cat "$tmp/live-err.txt" >&2
    kill "$live_pid" 2>/dev/null || true
    exit 1
fi
"$tmp/bin-rtectop" -once -metrics "http://$addr/metrics" \
    -require 'rtec_windows_evaluated_total>0,rtec_events_ingested_total>0,rtec_stream_watermark_age,rtec_window_emit_lag>0,rtec_window_e2e_micros>0' \
    > "$tmp/rtectop-live.txt"
kill "$live_pid" 2>/dev/null || true
wait "$live_pid" 2>/dev/null || true
if ! cmp -s "$tmp/baseline.csv" "$tmp/live.csv"; then
    echo "live gate: recognition output changed under -listen/-journal:" >&2
    diff "$tmp/baseline.csv" "$tmp/live.csv" >&2 || true
    exit 1
fi
"$tmp/bin-tracecheck" -journal -require run_start,window,run_end "$tmp/run1.jsonl"
"$tmp/bin-rtectop" -journal "$tmp/run1.jsonl" \
    -require 'rtec_windows_evaluated_total>0,rtec_window_emit_lag>0' > "$tmp/rtectop-replay.txt"
# Same-seed determinism: a second run with identical recognition flags (no
# server) must journal byte-identically.
"$tmp/bin-rtec" -ed "$tmp/ed.rtec" -stream "$tmp/shuffled.csv" -window 3600 -csv \
    -max-delay 900 -slo-emit-lag 900 -journal "$tmp/run2.jsonl" > /dev/null 2>&1
if ! cmp -s "$tmp/run1.jsonl" "$tmp/run2.jsonl"; then
    echo "live gate: same-seed journals differ:" >&2
    diff "$tmp/run1.jsonl" "$tmp/run2.jsonl" >&2 || true
    exit 1
fi

echo "== rtecd gate (daemon drain, resume byte-identity, overload throttling)"
# Serve the same event description through the rtecd daemon: POST half the
# NDJSON stream, SIGTERM mid-run (graceful drain into suspend checkpoints),
# restart with -resume, re-POST the full stream and finish. The final CSV
# and every per-shard journal must be byte-identical to the one-shot
# sharded cmd/rtec run above (same geometry, same arrival order: disorder
# emits the same seeded permutation in either serialisation). The daemon
# binary is race-instrumented.
go build -race -o "$tmp/bin-rtecd" ./cmd/rtecd
go run ./cmd/disorder -in "$tmp/events.csv" -out "$tmp/shuffled.ndjson" -out-format ndjson \
    -max-delay 900 -seed 13 -dup-every 50 2>/dev/null
first=$(awk -F, 'NR==1{m=$1} $1<m{m=$1} END{print m}' "$tmp/events.csv")
last=$(awk -F, 'NR==1{M=$1} $1>M{M=$1} END{print M}' "$tmp/events.csv")
rtecd_flags="-ed $tmp/ed.rtec -listen 127.0.0.1:0 -window 3600 -max-delay 900
    -start $first -end $((last + 1)) -shards 4 -shard-seed 7 -shard-overflow block
    -checkpoint $tmp/d.ckpt -journal $tmp/d.jsonl"
start_rtecd() {
    # $1: extra flags; sets $rtecd_pid and $rtecd_addr.
    : > "$tmp/rtecd-err.txt"
    # shellcheck disable=SC2086
    "$tmp/bin-rtecd" $1 2> "$tmp/rtecd-err.txt" &
    rtecd_pid=$!
    rtecd_addr=""
    i=0
    while [ $i -lt 300 ]; do
        rtecd_addr=$(sed -n 's/^rtecd: listening on //p' "$tmp/rtecd-err.txt")
        [ -n "$rtecd_addr" ] && break
        i=$((i + 1))
        sleep 0.1
    done
    if [ -z "$rtecd_addr" ]; then
        echo "rtecd gate: daemon never bound:" >&2
        cat "$tmp/rtecd-err.txt" >&2
        kill "$rtecd_pid" 2>/dev/null || true
        exit 1
    fi
}
post_ok() {
    # $1: NDJSON file to POST; fails the gate on any non-200.
    code=$(curl -s -o "$tmp/ingest-resp.txt" -w '%{http_code}' \
        --data-binary @"$1" "http://$rtecd_addr/ingest")
    if [ "$code" != 200 ]; then
        echo "rtecd gate: POST /ingest of $1 answered $code:" >&2
        cat "$tmp/ingest-resp.txt" >&2
        exit 1
    fi
}
half=$(($(wc -l < "$tmp/shuffled.ndjson") / 2))
head -n "$half" "$tmp/shuffled.ndjson" > "$tmp/firsthalf.ndjson"
start_rtecd "$rtecd_flags"
post_ok "$tmp/firsthalf.ndjson"
kill -TERM "$rtecd_pid"
if ! wait "$rtecd_pid"; then
    echo "rtecd gate: SIGTERM drain exited non-zero:" >&2
    cat "$tmp/rtecd-err.txt" >&2
    exit 1
fi
if ! grep -q '^rtecd: drained (suspended)$' "$tmp/rtecd-err.txt"; then
    echo "rtecd gate: drain did not park into the suspended state:" >&2
    cat "$tmp/rtecd-err.txt" >&2
    exit 1
fi
start_rtecd "$rtecd_flags -resume"
post_ok "$tmp/shuffled.ndjson"
# The live scrape must drive rtectop's DAEMON board.
"$tmp/bin-rtectop" -once -metrics "http://$rtecd_addr/metrics" \
    -require 'serve_state,serve_ingest_requests_total>0,serve_windows_published_total>0' \
    > "$tmp/rtectop-daemon.txt"
curl -s -X POST "http://$rtecd_addr/finish" > "$tmp/rtecd.csv"
kill -TERM "$rtecd_pid"
wait "$rtecd_pid" || true
if ! cmp -s "$tmp/sharded-clean.csv" "$tmp/rtecd.csv"; then
    echo "rtecd gate: drained-and-resumed daemon CSV diverged from one-shot cmd/rtec:" >&2
    diff "$tmp/sharded-clean.csv" "$tmp/rtecd.csv" >&2 || true
    exit 1
fi
for k in 0 1 2 3; do
    if ! cmp -s "$tmp/clean.jsonl.s$k" "$tmp/d.jsonl.s$k"; then
        echo "rtecd gate: shard $k journal diverged across drain-and-resume" >&2
        exit 1
    fi
done
# Overload: a one-slot ingest queue with a throttled pump must answer 429
# (with Retry-After) to a burst of concurrent POSTs, visibly in the metrics.
head -n 5 "$tmp/shuffled.ndjson" > "$tmp/burst.ndjson"
start_rtecd "-ed $tmp/ed.rtec -listen 127.0.0.1:0 -window 3600 -max-delay 900
    -start $first -end $((last + 1)) -checkpoint $tmp/burst.ckpt
    -ingest-queue 1 -ingest-delay 100ms"
burst_pids=""
for i in 1 2 3 4 5 6 7 8; do
    curl -s -o /dev/null --data-binary @"$tmp/burst.ndjson" "http://$rtecd_addr/ingest" &
    burst_pids="$burst_pids $!"
done
for p in $burst_pids; do
    wait "$p" || true
done
"$tmp/bin-rtectop" -once -metrics "http://$rtecd_addr/metrics" \
    -require 'serve_ingest_throttled_total>0' > /dev/null
kill -TERM "$rtecd_pid"
wait "$rtecd_pid" || true

echo "== bench smoke (harness must run and emit a valid trajectory file)"
# One-iteration run of a single benchmark through cmd/bench, then schema
# validation of both the smoke output and the committed trajectory file,
# and the live-observability overhead gate over the committed numbers.
go run ./cmd/bench -bench 'BenchmarkRTECWindowSweep/window=3600$' -benchtime 1x \
    -out "$tmp/bench-smoke.json" > /dev/null
go run ./cmd/bench -validate "$tmp/bench-smoke.json"
go run ./cmd/bench -validate BENCH_rtec.json
go run ./cmd/bench -overhead BENCH_rtec.json

echo "CI OK"
