#!/bin/sh
# CI gate: formatting, vet, build, the full test suite, and race-enabled
# tests for the concurrency-sensitive packages (the RTEC engine, the fleet
# scenario generator and the event stream plumbing).
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrency-sensitive packages)"
go test -race ./internal/rtec/... ./internal/fleet/... ./internal/stream/...

echo "== rteclint"
# The worked example must produce diagnostics (exit 1 under -fail-on error);
# the gold standards analyzing clean is enforced by the test suite above.
if go run ./cmd/rteclint -domain maritime examples/lint/withinarea_bad.prolog >/dev/null; then
    echo "rteclint: expected diagnostics for examples/lint/withinarea_bad.prolog" >&2
    exit 1
fi

echo "CI OK"
