package ais

import (
	"math"
	"testing"

	"rtecgen/internal/geo"
)

func TestSailToReachesDestination(t *testing.T) {
	tr := NewTrack("v1", "cargo", geo.Point{X: 0, Y: 0}, 0, 60, 1)
	tr.SailTo(geo.Point{X: 10, Y: 0}, 10)
	if d := tr.Pos().Distance(geo.Point{X: 10, Y: 0}); d > 1e-9 {
		t.Fatalf("final distance to dest = %v", d)
	}
	msgs := tr.Messages()
	if len(msgs) == 0 {
		t.Fatal("no messages emitted")
	}
	// 10 km at 10 kn is ~32 min; with 60 s interval expect ~32 messages.
	if len(msgs) < 25 || len(msgs) > 40 {
		t.Fatalf("message count = %d, want ~32", len(msgs))
	}
	for i, m := range msgs {
		if m.Vessel != "v1" {
			t.Fatal("wrong vessel id")
		}
		if i > 0 && m.Time != msgs[i-1].Time+60 {
			t.Fatalf("non-uniform cadence at %d", i)
		}
		if m.SpeedKn < 9 || m.SpeedKn > 11 {
			t.Fatalf("speed %v out of band", m.SpeedKn)
		}
		if math.Abs(m.Heading-90) > 5 && i < len(msgs)-2 {
			t.Fatalf("heading %v far from 90", m.Heading)
		}
	}
}

func TestStopEmitsNearZeroSpeed(t *testing.T) {
	tr := NewTrack("v1", "cargo", geo.Point{X: 5, Y: 5}, 0, 60, 2)
	tr.Stop(600)
	for _, m := range tr.Messages() {
		if m.SpeedKn > 0.3 {
			t.Fatalf("stopped speed = %v", m.SpeedKn)
		}
	}
	if d := tr.Pos().Distance(geo.Point{X: 5, Y: 5}); d > 0.5 {
		t.Fatalf("stopped vessel moved %v km", d)
	}
	if tr.Time() != 600 {
		t.Fatalf("time = %d, want 600", tr.Time())
	}
}

func TestGapSuppressesMessagesButMoves(t *testing.T) {
	tr := NewTrack("v1", "cargo", geo.Point{X: 0, Y: 0}, 0, 60, 3)
	tr.SailBearing(90, 10, 300)
	n := len(tr.Messages())
	tr.Gap(10, 600)
	if len(tr.Messages()) != n {
		t.Fatal("messages emitted during gap")
	}
	posAfterGap := tr.Pos()
	if posAfterGap.Distance(geo.Point{X: 0, Y: 0}) < 2 {
		t.Fatal("vessel did not move during gap")
	}
	tr.SailBearing(90, 10, 300)
	msgs := tr.Messages()
	if msgs[n].Time-msgs[n-1].Time != 600+60 {
		t.Fatalf("gap duration = %d", msgs[n].Time-msgs[n-1].Time)
	}
}

func TestDriftSeparatesHeadingFromCOG(t *testing.T) {
	tr := NewTrack("v1", "cargo", geo.Point{X: 0, Y: 0}, 0, 60, 4)
	tr.Drift(0, 45, 2, 600)
	for _, m := range tr.Messages() {
		diff := math.Abs(m.COG - m.Heading)
		if diff > 180 {
			diff = 360 - diff
		}
		if math.Abs(diff-45) > 3 {
			t.Fatalf("cog-heading diff = %v, want ~45", diff)
		}
	}
}

func TestZigzagChangesHeading(t *testing.T) {
	tr := NewTrack("v1", "fishingVessel", geo.Point{X: 20, Y: 20}, 0, 60, 5)
	tr.Zigzag(90, 4, 40, 300, 3600)
	msgs := tr.Messages()
	turns := 0
	for i := 1; i < len(msgs); i++ {
		d := math.Abs(msgs[i].Heading - msgs[i-1].Heading)
		if d > 180 {
			d = 360 - d
		}
		if d > 30 {
			turns++
		}
	}
	if turns < 8 {
		t.Fatalf("turns = %d, want >= 8", turns)
	}
}

func TestZigzagSpeedsAlternates(t *testing.T) {
	tr := NewTrack("v1", "sarVessel", geo.Point{X: 50, Y: 20}, 0, 60, 6)
	tr.ZigzagSpeeds(0, 6, 14, 50, 300, 3600)
	low, high := 0, 0
	for _, m := range tr.Messages() {
		if m.SpeedKn < 8 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("speeds did not alternate: low=%d high=%d", low, high)
	}
}

func TestLoiterStaysNearAnchor(t *testing.T) {
	start := geo.Point{X: 30, Y: 60}
	tr := NewTrack("v1", "cargo", start, 0, 60, 7)
	tr.Loiter(2.5, 7200)
	for _, m := range tr.Messages() {
		if m.Pos.Distance(start) > 3 {
			t.Fatalf("loiterer wandered %v km away", m.Pos.Distance(start))
		}
		if m.SpeedKn > 4 {
			t.Fatalf("loiter speed = %v", m.SpeedKn)
		}
	}
}

func TestWaitEmitsNothing(t *testing.T) {
	tr := NewTrack("v1", "cargo", geo.Point{X: 0, Y: 0}, 0, 60, 8)
	tr.Wait(3600)
	if len(tr.Messages()) != 0 {
		t.Fatal("Wait emitted messages")
	}
	if tr.Time() != 3600 {
		t.Fatalf("time = %d", tr.Time())
	}
	if tr.Pos() != (geo.Point{X: 0, Y: 0}) {
		t.Fatal("Wait moved the vessel")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() []Message {
		tr := NewTrack("v1", "cargo", geo.Point{X: 0, Y: 0}, 0, 60, 42)
		tr.SailTo(geo.Point{X: 5, Y: 5}, 8).Stop(300).Loiter(2, 600)
		return tr.Messages()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("messages differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSortMessages(t *testing.T) {
	msgs := []Message{
		{Time: 10, Vessel: "v2"},
		{Time: 5, Vessel: "v1"},
		{Time: 10, Vessel: "v1"},
	}
	SortMessages(msgs)
	if msgs[0].Time != 5 || msgs[1].Vessel != "v1" || msgs[2].Vessel != "v2" {
		t.Fatalf("sort order wrong: %v", msgs)
	}
}
