package ais

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func testSpecs(n int) []VesselSpec {
	specs := make([]VesselSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, VesselSpec{
			ID:    fmt.Sprintf("s%03d", i),
			Type:  "cargo",
			MinKn: 8,
			MaxKn: 16,
		})
	}
	return specs
}

func collectFleet(t *testing.T, cfg FleetConfig) []Message {
	t.Helper()
	var msgs []Message
	if err := StreamFleet(cfg, func(m Message) error {
		msgs = append(msgs, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return msgs
}

func TestStreamFleetOrderedAndBounded(t *testing.T) {
	cfg := FleetConfig{Specs: testSpecs(25), Seed: 11, Horizon: 2 * 3600}
	msgs := collectFleet(t, cfg)
	if len(msgs) == 0 {
		t.Fatal("fleet emitted no messages")
	}
	vessels := map[string]bool{}
	for i, m := range msgs {
		if m.Time >= cfg.Horizon {
			t.Fatalf("message %d at t=%d is past the horizon %d", i, m.Time, cfg.Horizon)
		}
		if i > 0 {
			prev := msgs[i-1]
			if m.Time < prev.Time || (m.Time == prev.Time && m.Vessel < prev.Vessel) {
				t.Fatalf("messages %d..%d out of (Time, Vessel) order: %v then %v",
					i-1, i, prev, m)
			}
		}
		vessels[m.Vessel] = true
	}
	if len(vessels) != len(cfg.Specs) {
		t.Fatalf("only %d of %d vessels reported", len(vessels), len(cfg.Specs))
	}
	// The emission order is exactly what SortMessages would produce, so a
	// streamed fleet and a materialised one are interchangeable.
	sorted := make([]Message, len(msgs))
	copy(sorted, msgs)
	SortMessages(sorted)
	if !reflect.DeepEqual(msgs, sorted) {
		t.Fatal("stream order differs from SortMessages order")
	}
}

func TestStreamFleetDeterministic(t *testing.T) {
	cfg := FleetConfig{Specs: testSpecs(12), Seed: 3, Horizon: 3 * 3600}
	a := collectFleet(t, cfg)
	b := collectFleet(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different streams")
	}
	cfg.Seed = 4
	c := collectFleet(t, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamFleetScalesWithFleetAndHorizon(t *testing.T) {
	small := collectFleet(t, FleetConfig{Specs: testSpecs(10), Seed: 5, Horizon: 2 * 3600})
	big := collectFleet(t, FleetConfig{Specs: testSpecs(40), Seed: 5, Horizon: 2 * 3600})
	long := collectFleet(t, FleetConfig{Specs: testSpecs(10), Seed: 5, Horizon: 6 * 3600})
	if len(big) < 2*len(small) {
		t.Fatalf("4x fleet grew stream only %d -> %d", len(small), len(big))
	}
	if len(long) < 2*len(small) {
		t.Fatalf("3x horizon grew stream only %d -> %d", len(small), len(long))
	}
}

func TestStreamFleetEmitErrorStops(t *testing.T) {
	cfg := FleetConfig{Specs: testSpecs(5), Seed: 9, Horizon: 3600}
	boom := errors.New("boom")
	n := 0
	err := StreamFleet(cfg, func(Message) error {
		n++
		if n == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n != 7 {
		t.Fatalf("emit called %d times after error, want 7", n)
	}
}

func TestStreamFleetConfigValidation(t *testing.T) {
	cases := []FleetConfig{
		{Seed: 1, Horizon: 3600},                                            // no specs
		{Specs: testSpecs(2), Seed: 1},                                      // no horizon
		{Specs: []VesselSpec{{ID: "x", MinKn: 5, MaxKn: 2}}, Horizon: 3600}, // inverted band
		{Specs: []VesselSpec{{MinKn: 2, MaxKn: 5}}, Horizon: 3600},          // empty ID
	}
	for i, cfg := range cases {
		if err := StreamFleet(cfg, func(Message) error { return nil }); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}
