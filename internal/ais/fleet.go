package ais

import (
	"container/heap"
	"fmt"

	"math/rand"

	"rtecgen/internal/geo"
)

// VesselSpec describes one vessel of a streamed fleet: its identity and the
// speed band it sails at.
type VesselSpec struct {
	ID    string
	Type  string
	MinKn float64
	MaxKn float64
}

// FleetConfig parameterises StreamFleet.
type FleetConfig struct {
	// Specs is the fleet roster; one lazily generated trajectory per entry.
	Specs []VesselSpec
	// Seed drives all randomness. Per-vessel sources derive from it, so a
	// vessel's trajectory depends only on (Seed, its index, its spec).
	Seed int64
	// Interval is the AIS reporting cadence in seconds. Default 60.
	Interval int64
	// Horizon ends the stream: messages at or after it are cut. Required.
	Horizon int64
	// Width and Height bound the sailing region in km. Default 100×100.
	Width, Height float64
}

func (cfg FleetConfig) withDefaults() (FleetConfig, error) {
	if len(cfg.Specs) == 0 {
		return cfg, fmt.Errorf("ais: fleet needs at least one vessel spec")
	}
	if cfg.Horizon <= 0 {
		return cfg, fmt.Errorf("ais: fleet horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 60
	}
	if cfg.Width <= 0 {
		cfg.Width = 100
	}
	if cfg.Height <= 0 {
		cfg.Height = 100
	}
	for i, s := range cfg.Specs {
		if s.ID == "" || s.MinKn <= 0 || s.MaxKn < s.MinKn {
			return cfg, fmt.Errorf("ais: invalid vessel spec %d: %+v", i, s)
		}
	}
	return cfg, nil
}

// StreamFleet synthesises AIS traffic for an arbitrarily large fleet and
// hands it to emit in (Time, Vessel) order — the order SortMessages
// produces — without materialising the stream. Memory is bounded by the
// fleet size (one pending trajectory leg per vessel), not by the horizon,
// so Brest-scale soaks (thousands of vessels over many simulated hours) run
// in constant space. Each vessel sails passage legs between random points
// at a speed from its band, occasionally stopping or going silent — the
// same behaviour mix as the scenario's filler traffic. emit returning an
// error stops the stream and returns that error.
func StreamFleet(cfg FleetConfig, emit func(Message) error) error {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	h := make(fleetHeap, 0, len(cfg.Specs))
	for i := range cfg.Specs {
		v := newFleetVessel(cfg, i)
		if m, ok := v.next(); ok {
			h = append(h, fleetPending{m, v})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		p := h[0]
		if err := emit(p.msg); err != nil {
			return err
		}
		if m, ok := p.v.next(); ok {
			h[0].msg = m
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}

// fleetVessel generates one vessel's trajectory leg by leg, buffering only
// the current leg's messages.
type fleetVessel struct {
	cfg  FleetConfig
	spec VesselSpec
	rng  *rand.Rand
	tr   *Track
	buf  []Message
	i    int
	done bool
}

func newFleetVessel(cfg FleetConfig, idx int) *fleetVessel {
	spec := cfg.Specs[idx]
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*1_000_003 + 1))
	start := geo.Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
	t0 := rng.Int63n(1800)
	v := &fleetVessel{cfg: cfg, spec: spec, rng: rng}
	v.tr = NewTrack(spec.ID, spec.Type, start, t0, cfg.Interval, rng.Int63())
	return v
}

// next returns the vessel's next message before the horizon. Per-vessel
// message times are nondecreasing, so the first message at or past the
// horizon ends the vessel.
func (v *fleetVessel) next() (Message, bool) {
	for !v.done {
		if v.i < len(v.buf) {
			m := v.buf[v.i]
			v.i++
			if m.Time >= v.cfg.Horizon {
				v.done = true
				return Message{}, false
			}
			return m, true
		}
		if v.tr.Time() >= v.cfg.Horizon {
			v.done = true
			return Message{}, false
		}
		// A leg whose destination is within one step emits nothing and does
		// not advance time; the source has advanced, so retrying converges.
		v.leg()
		v.buf = v.tr.Drain()
		v.i = 0
	}
	return Message{}, false
}

// leg scripts one more behaviour leg: a passage to a random point at a
// speed from the vessel's band, occasionally followed by a stop or a
// communication gap.
func (v *fleetVessel) leg() {
	speed := v.spec.MinKn + v.rng.Float64()*(v.spec.MaxKn-v.spec.MinKn)
	dest := geo.Point{
		X: 5 + v.rng.Float64()*(v.cfg.Width-10),
		Y: 5 + v.rng.Float64()*(v.cfg.Height-10),
	}
	v.tr.SailTo(dest, speed)
	switch v.rng.Intn(4) {
	case 0:
		v.tr.Stop(600 + v.rng.Int63n(1800))
	case 1:
		v.tr.Gap(speed, 2400+v.rng.Int63n(2400))
	}
}

// fleetPending is one vessel's next undelivered message.
type fleetPending struct {
	msg Message
	v   *fleetVessel
}

// fleetHeap is a min-heap on (Time, Vessel), the SortMessages order.
type fleetHeap []fleetPending

func (h fleetHeap) Len() int { return len(h) }
func (h fleetHeap) Less(i, j int) bool {
	if h[i].msg.Time != h[j].msg.Time {
		return h[i].msg.Time < h[j].msg.Time
	}
	return h[i].msg.Vessel < h[j].msg.Vessel
}
func (h fleetHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *fleetHeap) Push(x any)   { *h = append(*h, x.(fleetPending)) }
func (h *fleetHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
