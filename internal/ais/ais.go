// Package ais provides the synthetic Automatic Identification System
// substrate that stands in for the Brest dataset of the paper's evaluation:
// position-signal messages and a deterministic trajectory builder with which
// maritime scenarios (trawling sweeps, tug convoys, pilot rendezvous,
// drifting, communication gaps, ...) are scripted.
package ais

import (
	"math"
	"math/rand"
	"sort"

	"rtecgen/internal/geo"
)

// KnotsToKmPerSec converts speed in knots to kilometres per second.
const KnotsToKmPerSec = 1.852 / 3600

// Message is one AIS position signal.
type Message struct {
	Time    int64     // seconds since scenario start
	Vessel  string    // vessel identifier, e.g. "v17"
	Pos     geo.Point // position on the planar map, km
	SpeedKn float64   // speed over ground, knots
	Heading float64   // true heading, degrees [0, 360)
	COG     float64   // course over ground, degrees [0, 360)
}

// SortMessages orders messages by time, then vessel, in place.
func SortMessages(msgs []Message) {
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].Time != msgs[j].Time {
			return msgs[i].Time < msgs[j].Time
		}
		return msgs[i].Vessel < msgs[j].Vessel
	})
}

// Track builds a vessel trajectory as a sequence of behaviour legs, emitting
// one message every Interval seconds (except during communication gaps). All
// randomness is drawn from the track's own seeded source, so scenarios are
// fully deterministic.
type Track struct {
	Vessel   string
	Type     string
	Interval int64

	rng     *rand.Rand
	t       int64
	pos     geo.Point
	heading float64
	msgs    []Message
	inGap   bool
}

// NewTrack starts a track for a vessel at the given position and time.
func NewTrack(vessel, vesselType string, start geo.Point, t0, interval int64, seed int64) *Track {
	return &Track{
		Vessel:   vessel,
		Type:     vesselType,
		Interval: interval,
		rng:      rand.New(rand.NewSource(seed)),
		t:        t0,
		pos:      start,
		heading:  0,
	}
}

// Messages returns the emitted messages so far.
func (tr *Track) Messages() []Message { return tr.msgs }

// Drain returns the messages emitted since the last Drain (or since the
// track started) and releases them, so an arbitrarily long trajectory can be
// consumed leg by leg in bounded memory.
func (tr *Track) Drain() []Message {
	m := tr.msgs
	tr.msgs = nil
	return m
}

// Pos returns the current position.
func (tr *Track) Pos() geo.Point { return tr.pos }

// Time returns the current time.
func (tr *Track) Time() int64 { return tr.t }

// emit records a message unless the vessel is inside a communication gap.
func (tr *Track) emit(speedKn, heading, cog float64) {
	tr.heading = heading
	if tr.inGap {
		return
	}
	tr.msgs = append(tr.msgs, Message{
		Time:    tr.t,
		Vessel:  tr.Vessel,
		Pos:     tr.pos,
		SpeedKn: speedKn,
		Heading: norm360(heading),
		COG:     norm360(cog),
	})
}

func norm360(a float64) float64 {
	a = math.Mod(a, 360)
	if a < 0 {
		a += 360
	}
	return a
}

// jitter returns v perturbed by at most ±amp (uniform).
func (tr *Track) jitter(v, amp float64) float64 {
	return v + (tr.rng.Float64()*2-1)*amp
}

// advance moves the vessel along cog for one interval at the given speed and
// emits a message with the stated heading.
func (tr *Track) advance(speedKn, heading, cog float64) {
	tr.emit(speedKn, heading, cog)
	dist := speedKn * KnotsToKmPerSec * float64(tr.Interval)
	tr.pos = tr.pos.Step(cog, dist)
	tr.t += tr.Interval
}

// SailTo sails in a straight line to dest at the given speed (with light
// speed/heading noise), arriving when within one step of dest.
func (tr *Track) SailTo(dest geo.Point, speedKn float64) *Track {
	if speedKn <= 0 {
		return tr
	}
	step := speedKn * KnotsToKmPerSec * float64(tr.Interval)
	for tr.pos.Distance(dest) > step {
		bearing := tr.pos.BearingTo(dest)
		s := math.Max(0.3, tr.jitter(speedKn, 0.3))
		h := tr.jitter(bearing, 2)
		tr.advance(s, h, h)
	}
	tr.pos = dest
	return tr
}

// SailBearing sails on a fixed bearing for the given duration.
func (tr *Track) SailBearing(bearing, speedKn float64, dur int64) *Track {
	for end := tr.t + dur; tr.t < end; {
		s := math.Max(0.3, tr.jitter(speedKn, 0.3))
		h := tr.jitter(bearing, 2)
		tr.advance(s, h, h)
	}
	return tr
}

// Stop keeps the vessel (nearly) stationary for the duration.
func (tr *Track) Stop(dur int64) *Track {
	for end := tr.t + dur; tr.t < end; {
		tr.advance(math.Abs(tr.jitter(0.1, 0.1)), tr.heading, tr.heading)
	}
	return tr
}

// Loiter wanders slowly around the current position for the duration: low
// speed, frequent small course changes.
func (tr *Track) Loiter(speedKn float64, dur int64) *Track {
	anchor := tr.pos
	h := tr.heading
	for end := tr.t + dur; tr.t < end; {
		// Drift back toward the anchor point when far from it.
		if tr.pos.Distance(anchor) > 1.0 {
			h = tr.pos.BearingTo(anchor)
		} else {
			h = norm360(h + tr.jitter(0, 40))
		}
		s := math.Max(0.6, tr.jitter(speedKn, 0.5))
		tr.advance(s, h, h)
	}
	return tr
}

// Zigzag performs a sweep with regular sharp course changes (trawling or
// search-and-rescue patterns): legs of legDur seconds alternating turnDeg
// degrees around the base bearing.
func (tr *Track) Zigzag(baseBearing, speedKn, turnDeg float64, legDur, dur int64) *Track {
	sign := 1.0
	for end := tr.t + dur; tr.t < end; {
		h := norm360(baseBearing + sign*turnDeg)
		for legEnd := tr.t + legDur; tr.t < legEnd && tr.t < end; {
			s := math.Max(0.5, tr.jitter(speedKn, 0.3))
			tr.advance(s, h, h)
		}
		sign = -sign
	}
	return tr
}

// ZigzagSpeeds is a Zigzag that also alternates between two speeds on each
// leg — the search-and-rescue movement pattern (speed and heading changes).
func (tr *Track) ZigzagSpeeds(baseBearing, lowKn, highKn, turnDeg float64, legDur, dur int64) *Track {
	sign := 1.0
	speed := highKn
	for end := tr.t + dur; tr.t < end; {
		h := norm360(baseBearing + sign*turnDeg)
		for legEnd := tr.t + legDur; tr.t < legEnd && tr.t < end; {
			s := math.Max(0.5, tr.jitter(speed, 0.2))
			tr.advance(s, h, h)
		}
		sign = -sign
		if speed == highKn {
			speed = lowKn
		} else {
			speed = highKn
		}
	}
	return tr
}

// Drift moves the vessel with course-over-ground offset from its heading by
// driftDeg (wind/current pushing it sideways) for the duration.
func (tr *Track) Drift(heading, driftDeg, speedKn float64, dur int64) *Track {
	for end := tr.t + dur; tr.t < end; {
		h := tr.jitter(heading, 1)
		cog := norm360(h + driftDeg)
		s := math.Max(0.4, tr.jitter(speedKn, 0.2))
		tr.advance(s, h, cog)
	}
	return tr
}

// Gap suppresses transmissions for the duration while the vessel continues
// on its current heading at the given speed.
func (tr *Track) Gap(speedKn float64, dur int64) *Track {
	tr.inGap = true
	for end := tr.t + dur; tr.t < end; {
		tr.advance(speedKn, tr.heading, tr.heading)
	}
	tr.inGap = false
	return tr
}

// Wait advances time without moving or emitting (vessel not yet active).
func (tr *Track) Wait(dur int64) *Track {
	tr.inGap = true
	for end := tr.t + dur; tr.t < end; {
		tr.advance(0, tr.heading, tr.heading)
	}
	tr.inGap = false
	return tr
}
