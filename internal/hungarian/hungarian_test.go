package hungarian

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownMatrix(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5", total)
	}
	want := []int{1, 0, 2}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", assign, want)
		}
	}
}

func TestSolvePaperExample44(t *testing.T) {
	// Cost matrix of Example 4.4; the optimal mapping is (1,2),(2,1),(3,3)
	// with total 0.25 (Example 4.6).
	cost := [][]float64{
		{1, 0.25, 0},
		{0, 1, 0},
		{1, 1, 0},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0.25 {
		t.Fatalf("total = %v, want 0.25", total)
	}
	if assign[0] != 1 || assign[1] != 0 || assign[2] != 2 {
		t.Fatalf("assignment = %v, want [1 0 2]", assign)
	}
}

func TestSolveTrivialSizes(t *testing.T) {
	if assign, total, err := Solve(nil); err != nil || assign != nil || total != 0 {
		t.Fatalf("Solve(nil) = %v, %v, %v", assign, total, err)
	}
	assign, total, err := Solve([][]float64{{7}})
	if err != nil || total != 7 || assign[0] != 0 {
		t.Fatalf("Solve 1x1 = %v, %v, %v", assign, total, err)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, _, err := Solve([][]float64{{math.Inf(1)}}); err == nil {
		t.Fatal("Inf accepted")
	}
	if _, _, err := SolveNaive([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("naive: non-square matrix accepted")
	}
}

func TestSolveNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -10 {
		t.Fatalf("total = %v, want -10", total)
	}
}

func TestAssignmentIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(12)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = r.Float64()
			}
		}
		assign, _, err := Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, j := range assign {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("assignment %v is not a permutation", assign)
			}
			seen[j] = true
		}
	}
}

// TestPropMatchesNaive checks optimality against the exhaustive oracle.
func TestPropMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				// Use quarter-integers, as the similarity metric produces,
				// to avoid FP equality issues.
				cost[i][j] = float64(r.Intn(9)) / 4
			}
		}
		_, fast, err1 := Solve(cost)
		_, slow, err2 := SolveNaive(cost)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(fast-slow) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = r.Float64()
			}
		}
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Solve(cost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveNaive(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 6, 8} {
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = r.Float64()
			}
		}
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := SolveNaive(cost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string { return fmt.Sprintf("n=%03d", n) }
