// Package hungarian implements the Kuhn-Munkres assignment algorithm with
// potentials, solving the minimum-cost perfect matching on an n x n cost
// matrix in O(n^3) worst-case time [Kuhn 1955]. The similarity metric of
// internal/similarity uses it to find the optimal mapping g between two sets
// of expressions (paper Section 4.1).
package hungarian

import (
	"fmt"
	"math"
)

// Solve returns the minimum-cost assignment for the square cost matrix: a
// slice mapping each row index to its assigned column, and the total cost.
// The matrix must be square and its values finite.
func Solve(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("hungarian: row %d has %d columns, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, 0, fmt.Errorf("hungarian: cost[%d][%d] is not finite", i, j)
			}
		}
	}

	// Potentials u (rows) and v (columns), and p[j] = the row matched to
	// column j. Arrays are 1-indexed with index 0 as a virtual slot, per the
	// classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0, j1 := p[j0], 0
			delta := math.Inf(1)
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assignment = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][assignment[i]]
	}
	return assignment, total, nil
}

// SolveNaive finds the optimal assignment by exhaustive permutation search.
// It is exponential and only intended as a correctness oracle in tests and
// as the baseline of the O(n^3)-vs-n! benchmark (paper Section 4.1 motivates
// Kuhn-Munkres by the factorial cost of the naive approach).
func SolveNaive(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("hungarian: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var bestPerm []int
	var recurse func(k int, acc float64)
	recurse = func(k int, acc float64) {
		if acc >= best {
			return
		}
		if k == n {
			best = acc
			bestPerm = append(bestPerm[:0:0], perm...)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k+1, acc+cost[k][perm[k]])
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0, 0)
	return bestPerm, best, nil
}
