// Package figures renders experiment results as plain-text figures (grouped
// horizontal bar charts and aligned tables), so the command-line tools can
// reproduce the look of the paper's Figure 2 in a terminal.
package figures

import (
	"fmt"
	"strings"
)

// Series is one line of bars across all groups (one model, in Figure 2).
type Series struct {
	Name   string
	Values []float64
}

// BarChart renders a grouped horizontal bar chart. Values are expected in
// [0, 1]; larger values are clipped. width is the length of a full bar.
func BarChart(title string, groups []string, series []Series, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	nameWidth := 0
	for _, s := range series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	for gi, g := range groups {
		fmt.Fprintf(&b, "%s\n", g)
		for _, s := range series {
			v := 0.0
			if gi < len(s.Values) {
				v = s.Values[gi]
			}
			fmt.Fprintf(&b, "  %-*s %s %.3f\n", nameWidth, s.Name, bar(v, width), v)
		}
	}
	return b.String()
}

// PartialLabel annotates a row or series label whose event description
// covers only part of the curriculum — e.g. "Gemma-2□ (5/8 activities)"
// when transport failures degraded three activities. Full coverage (or a
// nonsensical total) returns the label unchanged, keeping fault-free
// outputs byte-identical.
func PartialLabel(label string, ok, total int) string {
	if total <= 0 || ok >= total {
		return label
	}
	return fmt.Sprintf("%s (%d/%d activities)", label, ok, total)
}

func bar(v float64, width int) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	full := int(v*float64(width) + 0.5)
	return strings.Repeat("█", full) + strings.Repeat("·", width-full)
}

// Table renders rows with aligned columns; the first row is the header and
// is underlined.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, r := range rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, r := range rows[1:] {
		writeRow(r)
	}
	return b.String()
}

// CSV renders rows as comma-separated values (no quoting; callers pass
// simple labels and numbers).
func CSV(rows [][]string) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteString("\n")
	}
	return b.String()
}
