package figures

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart("Figure X", []string{"h", "aM"}, []Series{
		{Name: "o1", Values: []float64{1.0, 0.5}},
		{Name: "GPT-4o", Values: []float64{0.0}},
	}, 10)
	if !strings.Contains(out, "Figure X") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "██████████ 1.000") {
		t.Fatalf("full bar missing:\n%s", out)
	}
	if !strings.Contains(out, "█████····· 0.500") {
		t.Fatalf("half bar missing:\n%s", out)
	}
	// Missing value renders as zero.
	if !strings.Contains(out, "·········· 0.000") {
		t.Fatalf("empty bar missing:\n%s", out)
	}
}

func TestBarClipping(t *testing.T) {
	if got := bar(2.5, 4); got != "████" {
		t.Fatalf("overflow bar = %q", got)
	}
	if got := bar(-1, 4); got != "····" {
		t.Fatalf("negative bar = %q", got)
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"model", "f1"},
		{"o1", "1.000"},
		{"GPT-4o", "0.500"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "model") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator = %q", lines[1])
	}
	if Table(nil) != "" {
		t.Fatal("empty table must render empty")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([][]string{{"a", "b"}, {"1", "2"}})
	if out != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", out)
	}
}

func TestPartialLabel(t *testing.T) {
	cases := []struct {
		label     string
		ok, total int
		want      string
	}{
		{"o1□", 16, 16, "o1□"},
		{"o1□", 11, 16, "o1□ (11/16 activities)"},
		{"o1□", 0, 16, "o1□ (0/16 activities)"},
		{"o1□", 0, 0, "o1□"},
		{"o1□", 5, 0, "o1□"},
	}
	for _, c := range cases {
		if got := PartialLabel(c.label, c.ok, c.total); got != c.want {
			t.Errorf("PartialLabel(%q, %d, %d) = %q, want %q", c.label, c.ok, c.total, got, c.want)
		}
	}
}
