package llm

import (
	"testing"

	"rtecgen/internal/maritime"
	"rtecgen/internal/prompt"
	"rtecgen/internal/similarity"
)

// TestZeroShotProducesPoorResults reproduces the paper's Section 3 finding:
// "in our empirical analysis we found that zero-shot prompting produced
// poor results, and thus we do not include it in our pipeline". Skipping
// prompt F leaves the model without the shape of fluent definitions, and
// the generated output is far worse than under either included scheme.
func TestZeroShotProducesPoorResults(t *testing.T) {
	domain := maritime.PromptDomain()
	curriculum := maritime.CurriculumRequests()
	gold := maritime.GoldED()

	for _, name := range []string{"o1", "GPT-4o"} {
		scores := map[prompt.Scheme]float64{}
		for _, scheme := range []prompt.Scheme{prompt.ZeroShot, prompt.FewShot, prompt.ChainOfThought} {
			gen, err := prompt.RunPipeline(MustNew(name), scheme, domain, curriculum)
			if err != nil {
				t.Fatal(err)
			}
			s, err := similarity.EventDescriptionSimilarity(gold, gen.ED())
			if err != nil {
				t.Fatal(err)
			}
			scores[scheme] = s
		}
		if scores[prompt.ZeroShot] >= 0.2 {
			t.Errorf("%s zero-shot similarity = %v, want poor (< 0.2)", name, scores[prompt.ZeroShot])
		}
		if scores[prompt.ZeroShot] >= scores[prompt.FewShot] ||
			scores[prompt.ZeroShot] >= scores[prompt.ChainOfThought] {
			t.Errorf("%s zero-shot (%v) must be far below few-shot (%v) and chain-of-thought (%v)",
				name, scores[prompt.ZeroShot], scores[prompt.FewShot], scores[prompt.ChainOfThought])
		}
	}
}

// TestZeroShotTeachSkipsPromptF: the session sends only three teaching
// prompts under zero-shot.
func TestZeroShotTeachSkipsPromptF(t *testing.T) {
	m := MustNew("o1")
	s := prompt.NewSession(m, prompt.ZeroShot, maritime.PromptDomain())
	if err := s.Teach(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.History()); got != 6 { // 3 prompts + 3 replies
		t.Fatalf("history = %d messages, want 6 (R, E, T)", got)
	}
	if prompt.ZeroShot.String() != "zero-shot" || prompt.ZeroShot.Suffix() != "○" {
		t.Fatal("zero-shot notation wrong")
	}
}
