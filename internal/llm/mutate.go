// Package llm provides the language-model substrate of the reproduction.
// The paper queries GPT-4, GPT-4o, o1, Llama-3, Mistral and Gemma-2 through
// the OpenAI and Groq APIs; this package replaces them with deterministic
// simulated models implementing the same chat interface. Each simulated
// model consumes the actual prompt pipeline (it only uses vocabulary taught
// by prompts E and T and detects the prompting scheme from prompt F), and
// produces activity definitions by perturbing its internal notion of the
// intended formalisation with a model-specific error profile calibrated to
// the paper's qualitative error analysis (Section 5.2). See DESIGN.md for
// why this substitution preserves the measured behaviour.
package llm

import (
	"math/rand"
	"sort"
	"strings"

	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
)

// renameName rewrites every functor/atom occurrence of from to to, in heads
// and bodies alike.
func renameName(clauses []*lang.Clause, from, to string) {
	for _, c := range clauses {
		c.Head = renameTerm(c.Head, from, to)
		for i := range c.Body {
			c.Body[i].Atom = renameTerm(c.Body[i].Atom, from, to)
		}
	}
}

// renameInBodies rewrites occurrences only in rule bodies, leaving heads
// intact (used for "undefined condition" errors: the reference is broken,
// not the definition).
func renameInBodies(clauses []*lang.Clause, from, to string) {
	for _, c := range clauses {
		for i := range c.Body {
			c.Body[i].Atom = renameTerm(c.Body[i].Atom, from, to)
		}
	}
}

func renameTerm(t *lang.Term, from, to string) *lang.Term {
	switch t.Kind {
	case lang.Atom:
		if t.Functor == from {
			return lang.NewAtom(to)
		}
		return t
	case lang.Compound, lang.List:
		args := make([]*lang.Term, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = renameTerm(a, from, to)
			if args[i] != a {
				changed = true
			}
		}
		name := t.Functor
		if t.Kind == lang.Compound && name == from {
			name = to
			changed = true
		}
		if !changed {
			return t
		}
		n := *t
		n.Functor = name
		n.Args = args
		return &n
	default:
		return t
	}
}

// namesIn collects the atom/functor names occurring in the clauses.
func namesIn(clauses []*lang.Clause) map[string]bool {
	out := map[string]bool{}
	visit := func(t *lang.Term) {
		t.Walk(func(n *lang.Term) bool {
			if n.Kind == lang.Atom || n.Kind == lang.Compound {
				out[n.Functor] = true
			}
			return true
		})
	}
	for _, c := range clauses {
		visit(c.Head)
		for _, l := range c.Body {
			visit(l.Atom)
		}
	}
	return out
}

// protectedNames are never renamed: the language keywords and constructs.
var protectedNames = map[string]bool{
	"initiatedAt": true, "terminatedAt": true, "holdsAt": true, "holdsFor": true,
	"happensAt": true, "union_all": true, "intersect_all": true,
	"relative_complement_all": true, "not": true, "=": true, "true": true,
	"absAngleDiff": true,
}

// dropGapTermination removes one terminatedAt rule whose body mentions
// gap_start (the most commonly forgotten condition), or any surplus
// terminatedAt rule. Reports whether anything was dropped.
func dropGapTermination(clauses []*lang.Clause) ([]*lang.Clause, bool) {
	terms := 0
	for _, c := range clauses {
		if c.Kind() == lang.KindTerminatedAt {
			terms++
		}
	}
	if terms < 2 {
		return clauses, false
	}
	// Prefer a gap_start termination.
	for pass := 0; pass < 2; pass++ {
		for i, c := range clauses {
			if c.Kind() != lang.KindTerminatedAt {
				continue
			}
			hasGap := false
			for _, l := range c.Body {
				l.Atom.Walk(func(n *lang.Term) bool {
					if n.Functor == "gap_start" {
						hasGap = true
					}
					return true
				})
			}
			if pass == 0 && !hasGap {
				continue
			}
			return append(append([]*lang.Clause{}, clauses[:i]...), clauses[i+1:]...), true
		}
	}
	return clauses, false
}

// undefineReferences breaks fluent references in rule bodies: each holdsAt
// or holdsFor condition referring to a fluent defined outside this activity
// is, with probability p, renamed to a hallucinated name, producing the
// paper's third error category (conditions with undefined activities).
// ownFluents holds the functors the activity itself defines.
func undefineReferences(rng *rand.Rand, clauses []*lang.Clause, ownFluents map[string]bool, p float64) {
	if p <= 0 {
		return
	}
	var candidates []string
	seen := map[string]bool{}
	for _, c := range clauses {
		for _, l := range c.Body {
			a := l.Atom
			if a.Functor != "holdsAt" && a.Functor != "holdsFor" {
				continue
			}
			if len(a.Args) != 2 {
				continue
			}
			fvp := a.Args[0]
			if fvp.Kind != lang.Compound || fvp.Functor != "=" || !fvp.Args[0].IsCallable() {
				continue
			}
			name := fvp.Args[0].Functor
			if ownFluents[name] || seen[name] {
				continue
			}
			seen[name] = true
			candidates = append(candidates, name)
		}
	}
	sort.Strings(candidates)
	for _, from := range candidates {
		if rng.Float64() < p {
			renameInBodies(clauses, from, from+"State")
		}
	}
}

// swapIntervalOp flips one union_all/intersect_all construct in the primary
// fluent's holdsFor rule (the paper's fourth error category: confusing
// disjunction with conjunction).
func swapIntervalOp(clauses []*lang.Clause, primary string) bool {
	for _, c := range clauses {
		_, fl := c.HeadFVP()
		if c.Kind() != lang.KindHoldsFor || fl == nil || fl.Functor != primary {
			continue
		}
		for i, l := range c.Body {
			switch l.Atom.Functor {
			case "union_all":
				c.Body[i].Atom = lang.NewCompound("intersect_all", l.Atom.Args...)
				return true
			case "intersect_all":
				c.Body[i].Atom = lang.NewCompound("union_all", l.Atom.Args...)
				return true
			}
		}
	}
	return false
}

// addRedundantIntersect inserts a redundant holdsFor(underWay(V)=true)
// condition into the primary holdsFor rule and extends its final
// intersect_all list, modelling "most conditions matched plus one redundant
// condition" (the paper's trawling analysis).
func addRedundantIntersect(clauses []*lang.Clause, primary string) bool {
	for _, c := range clauses {
		_, fl := c.HeadFVP()
		if c.Kind() != lang.KindHoldsFor || fl == nil || fl.Functor != primary {
			continue
		}
		// Adding underWay to a fluent underWay builds on would create a
		// cyclic hierarchy; a cycle is not the error being modelled here.
		if fl.Functor == "underWay" || fl.Functor == "movingSpeed" {
			continue
		}
		for i, l := range c.Body {
			op := l.Atom.Functor
			if (op != "intersect_all" && op != "union_all") || len(l.Atom.Args) != 2 || l.Atom.Args[0].Kind != lang.List {
				continue
			}
			vessel := fl.Args[0]
			extra := lang.Pos(lang.NewCompound("holdsFor",
				lang.FVP(lang.NewCompound("underWay", vessel), lang.NewAtom("true")),
				lang.NewVar("Iuw")))
			newList := lang.NewList(append(append([]*lang.Term{}, l.Atom.Args[0].Args...), lang.NewVar("Iuw"))...)
			c.Body[i].Atom = lang.NewCompound(op, newList, l.Atom.Args[1])
			c.Body = append(c.Body[:i], append([]lang.Literal{extra, c.Body[i]}, c.Body[i+1:]...)...)
			return true
		}
	}
	return false
}

// dropConditions removes, with probability p per rule, one non-anchor
// condition from each simple-fluent rule that has at least two conditions —
// the "missing condition" error that makes a definition overly general.
func dropConditions(rng *rand.Rand, clauses []*lang.Clause, p float64) {
	if p <= 0 {
		return
	}
	for _, c := range clauses {
		k := c.Kind()
		if k != lang.KindInitiatedAt && k != lang.KindTerminatedAt {
			continue
		}
		if len(c.Body) < 2 || rng.Float64() >= p {
			continue
		}
		// Never drop the anchoring happensAt condition.
		var droppable []int
		for i, l := range c.Body {
			if !(i == firstHappensAt(c) && !l.Neg) {
				droppable = append(droppable, i)
			}
		}
		if len(droppable) == 0 {
			continue
		}
		i := droppable[rng.Intn(len(droppable))]
		c.Body = append(c.Body[:i], c.Body[i+1:]...)
	}
}

func firstHappensAt(c *lang.Clause) int {
	for i, l := range c.Body {
		if !l.Neg && l.Atom.Functor == "happensAt" {
			return i
		}
	}
	return -1
}

// addExtraConditions appends, with probability p per rule, a redundant
// holdsAt(underWay(V)=true, T) condition to initiatedAt rules (the
// "redundant condition" error of the paper's trawling analysis, applied
// generically). Fluents that underWay itself builds on are skipped so the
// hierarchy stays acyclic.
func addExtraConditions(rng *rand.Rand, clauses []*lang.Clause, primary string, p float64) {
	if p <= 0 {
		return
	}
	for _, c := range clauses {
		if c.Kind() != lang.KindInitiatedAt || rng.Float64() >= p {
			continue
		}
		_, fl := c.HeadFVP()
		if fl == nil || fl.Functor == "movingSpeed" || fl.Functor == "underWay" {
			continue
		}
		if len(fl.Args) == 0 || fl.Args[0].Kind != lang.Var || c.Head.Args[1].Kind != lang.Var {
			continue
		}
		extra := lang.Pos(lang.NewCompound("holdsAt",
			lang.FVP(lang.NewCompound("underWay", fl.Args[0]), lang.NewAtom("true")),
			c.Head.Args[1]))
		c.Body = append(c.Body, extra)
	}
	// Statically determined primaries get the redundant-intersect variant.
	if rng.Float64() < p {
		addRedundantIntersect(clauses, primary)
	}
}

// dropSDConditions removes, with probability p per holdsFor rule, one
// holdsFor condition together with its interval variable's occurrences in
// the construct lists of the rule — a missing conjunct/disjunct in a
// statically determined definition. Conditions whose removal would leave a
// construct list empty are not candidates.
func dropSDConditions(rng *rand.Rand, clauses []*lang.Clause, p float64) {
	if p <= 0 {
		return
	}
	for _, c := range clauses {
		if c.Kind() != lang.KindHoldsFor || rng.Float64() >= p {
			continue
		}
		// Count interval-list lengths per construct to know what is safe to
		// remove.
		var candidates []int
		for i, l := range c.Body {
			if l.Atom.Functor != "holdsFor" || len(l.Atom.Args) != 2 || l.Atom.Args[1].Kind != lang.Var {
				continue
			}
			iv := l.Atom.Args[1].Functor
			safe := true
			for _, l2 := range c.Body {
				for ai, arg := range l2.Atom.Args {
					if arg.Kind != lang.List || !listContainsVar(arg, iv) {
						continue
					}
					// Emptying a union/intersect input list would void the
					// construct; an emptied subtraction list of a relative
					// complement is fine (nothing is subtracted).
					subtraction := l2.Atom.Functor == "relative_complement_all" && ai == 1
					if len(arg.Args) <= 1 && !subtraction {
						safe = false
					}
				}
				// Never break a relative_complement base.
				if l2.Atom.Functor == "relative_complement_all" && len(l2.Atom.Args) == 3 &&
					l2.Atom.Args[0].Kind == lang.Var && l2.Atom.Args[0].Functor == iv {
					safe = false
				}
			}
			if safe {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		idx := candidates[rng.Intn(len(candidates))]
		iv := c.Body[idx].Atom.Args[1].Functor
		c.Body = append(c.Body[:idx], c.Body[idx+1:]...)
		for j, l2 := range c.Body {
			if len(l2.Atom.Args) == 0 {
				continue
			}
			args := make([]*lang.Term, len(l2.Atom.Args))
			copy(args, l2.Atom.Args)
			changed := false
			for k, arg := range args {
				if arg.Kind == lang.List && listContainsVar(arg, iv) {
					var kept []*lang.Term
					for _, el := range arg.Args {
						if !(el.Kind == lang.Var && el.Functor == iv) {
							kept = append(kept, el)
						}
					}
					args[k] = lang.NewList(kept...)
					changed = true
				}
			}
			if changed {
				c.Body[j].Atom = lang.NewCompound(l2.Atom.Functor, args...)
			}
		}
	}
}

func listContainsVar(list *lang.Term, name string) bool {
	for _, el := range list.Args {
		if el.Kind == lang.Var && el.Functor == name {
			return true
		}
	}
	return false
}

// swapOpsAll flips, with probability p per construct, every
// union_all/intersect_all in every holdsFor rule.
func swapOpsAll(rng *rand.Rand, clauses []*lang.Clause, p float64) {
	if p <= 0 {
		return
	}
	for _, c := range clauses {
		if c.Kind() != lang.KindHoldsFor {
			continue
		}
		for i, l := range c.Body {
			switch l.Atom.Functor {
			case "union_all":
				if rng.Float64() < p {
					c.Body[i].Atom = lang.NewCompound("intersect_all", l.Atom.Args...)
				}
			case "intersect_all":
				if rng.Float64() < p {
					c.Body[i].Atom = lang.NewCompound("union_all", l.Atom.Args...)
				}
			}
		}
	}
}

// replaceFluentRules removes every rule whose head fluent is in names and
// appends the replacement clauses.
func replaceFluentRules(clauses []*lang.Clause, names map[string]bool, replacementSrc string) []*lang.Clause {
	var out []*lang.Clause
	for _, c := range clauses {
		if _, fl := c.HeadFVP(); fl != nil && names[fl.Functor] {
			continue
		}
		out = append(out, c)
	}
	repl := parser.MustParseEventDescription(replacementSrc)
	return append(out, repl.Clauses...)
}

// corruptSyntax introduces a genuine syntax error into rendered rule text:
// the final closing parenthesis of the first rule is dropped.
func corruptSyntax(text string) string {
	idx := strings.Index(text, ").")
	if idx < 0 {
		return text + "("
	}
	return text[:idx] + "." + text[idx+2:]
}

// cloneClauses deep-copies a rule set.
func cloneClauses(in []*lang.Clause) []*lang.Clause {
	out := make([]*lang.Clause, len(in))
	for i, c := range in {
		out[i] = c.Clone()
	}
	return out
}

// sortStrings sorts in place (tiny wrapper to keep call sites terse).
func sortStrings(s []string) { sort.Strings(s) }

// fnvSeed derives a deterministic RNG seed from the given parts.
func fnvSeed(parts ...string) int64 {
	var h uint64 = 14695981039346656037
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= '|'
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}
