package llm

import "rtecgen/internal/prompt"

// Rates are per-activity probabilities of each generic error class. They
// are sampled once per activity with a seed derived from (model, scheme,
// activity), so generation is fully deterministic.
type Rates struct {
	Rename    float64 // category 1: wrong name for an event/background predicate
	ValueName float64 // category 1: wrong name for a constant value
	Drop      float64 // missing condition (typically a gap_start termination)
	Undefined float64 // category 3: condition over an undefined activity
	OpSwap    float64 // category 4: union/intersect confusion
	Extra     float64 // redundant conditions added to rules
}

// Profile is the calibrated error model of one simulated LLM: generic error
// rates per prompting scheme plus the named special errors the paper
// attributes to specific models and activities (Section 5.2).
type Profile struct {
	Rates map[prompt.Scheme]Rates
	// Special maps activity key -> scheme -> named mutations, applied
	// before the generic ones. See applySpecial for the catalogue.
	Special map[string]map[prompt.Scheme][]string
}

func specialBoth(muts ...string) map[prompt.Scheme][]string {
	return map[prompt.Scheme][]string{
		prompt.FewShot:        muts,
		prompt.ChainOfThought: muts,
	}
}

// Profiles is the calibration table of the six models evaluated in the
// paper. The per-model shapes implement the published analysis:
//
//   - o1: only naming divergences (e.g. 'trawlingArea' for 'fishing');
//     loitering expressed as a different but semantically equivalent
//     disjunction. Few-shot is its better scheme (o1□).
//   - GPT-4o: movingSpeed modelled as statically determined (category 2);
//     loitering uses intersect_all for union_all; one redundant condition
//     in trawling; pilot boarding misses the 'stopped' disjunct.
//     Chain-of-thought is its better scheme (GPT-4o△).
//   - Llama-3: loitering conjunction error; redundant trawling condition;
//     pilot boarding checks only one vessel. Few-shot better (Llama-3□).
//   - GPT-4: trawling invented from conditions that match nothing in the
//     gold definition; moderate naming noise. Few-shot better (GPT-4□).
//   - Mistral: trawling defined over entirely undefined activities; high
//     noise. Chain-of-thought better (Mistral△).
//   - Gemma-2: trawling as a simple fluent (similarity 0); heaviest noise,
//     including a syntactically broken rule in few-shot mode.
//     Chain-of-thought better (Gemma-2△).
var Profiles = map[string]Profile{
	"o1": {
		Rates: map[prompt.Scheme]Rates{
			prompt.FewShot:        {Rename: 0.10, ValueName: 0.08},
			prompt.ChainOfThought: {Rename: 0.22, ValueName: 0.15, Drop: 0.20},
		},
		Special: map[string]map[prompt.Scheme][]string{
			"tr": specialBoth("const:trawlingArea", "redundant:underWay"),
			"l":  specialBoth("equivalent:loitering"),
		},
	},
	"GPT-4o": {
		Rates: map[prompt.Scheme]Rates{
			prompt.ChainOfThought: {Rename: 0.14, ValueName: 0.10},
			prompt.FewShot:        {Rename: 0.30, ValueName: 0.22, Drop: 0.30, Undefined: 0.25, Extra: 0.25},
		},
		Special: map[string]map[prompt.Scheme][]string{
			"movingSpeed": specialBoth("kindflip:movingSpeed"),
			"l":           specialBoth("opswap"),
			"tr":          specialBoth("redundant:underWay"),
			"p":           specialBoth("pb:lowSpeedOnly"),
		},
	},
	"Llama-3": {
		Rates: map[prompt.Scheme]Rates{
			prompt.FewShot:        {Rename: 0.22, ValueName: 0.16, Extra: 0.12},
			prompt.ChainOfThought: {Rename: 0.35, ValueName: 0.28, Drop: 0.30, Undefined: 0.30, Extra: 0.30},
		},
		Special: map[string]map[prompt.Scheme][]string{
			"l":  specialBoth("opswap"),
			"tr": specialBoth("redundant:underWay"),
			"p":  specialBoth("pb:singleVessel"),
		},
	},
	"GPT-4": {
		Rates: map[prompt.Scheme]Rates{
			prompt.FewShot:        {Rename: 0.40, ValueName: 0.35, Drop: 0.45, Undefined: 0.45, Extra: 0.45},
			prompt.ChainOfThought: {Rename: 0.55, ValueName: 0.45, Drop: 0.55, Undefined: 0.55, Extra: 0.55},
		},
		Special: map[string]map[prompt.Scheme][]string{
			"tr": specialBoth("invented:trawlingGPT4"),
		},
	},
	"Mistral": {
		Rates: map[prompt.Scheme]Rates{
			prompt.ChainOfThought: {Rename: 0.50, ValueName: 0.42, Drop: 0.55, Undefined: 0.55, OpSwap: 0.15, Extra: 0.55},
			prompt.FewShot:        {Rename: 0.65, ValueName: 0.55, Drop: 0.70, Undefined: 0.70, OpSwap: 0.30, Extra: 0.65},
		},
		Special: map[string]map[prompt.Scheme][]string{
			"tr": specialBoth("invented:trawlingMistral"),
		},
	},
	"Gemma-2": {
		Rates: map[prompt.Scheme]Rates{
			prompt.ChainOfThought: {Rename: 0.55, ValueName: 0.50, Drop: 0.55, Undefined: 0.60, OpSwap: 0.30, Extra: 0.55},
			prompt.FewShot:        {Rename: 0.70, ValueName: 0.65, Drop: 0.70, Undefined: 0.75, OpSwap: 0.45, Extra: 0.65},
		},
		Special: map[string]map[prompt.Scheme][]string{
			"tr": specialBoth("kindflip:trawling"),
			"aM": {prompt.FewShot: {"syntax"}},
			"s":  {prompt.FewShot: {"syntax"}},
		},
	},
}

// ModelNames returns the six model names in the paper's presentation order.
// OLMo (below) is an extension — the open foundational model the paper's
// further-work section plans to adopt — and is not part of the published
// figures.
func ModelNames() []string {
	return []string{"GPT-4", "GPT-4o", "o1", "Llama-3", "Mistral", "Gemma-2"}
}

// olmoProfile is the extension model: a mid-tier open model with mostly
// naming noise plus occasional missing conditions — between Llama-3 and
// GPT-4 in the calibrated ordering.
var olmoProfile = Profile{
	Rates: map[prompt.Scheme]Rates{
		prompt.FewShot:        {Rename: 0.28, ValueName: 0.22, Drop: 0.20, Undefined: 0.15, Extra: 0.20},
		prompt.ChainOfThought: {Rename: 0.40, ValueName: 0.32, Drop: 0.35, Undefined: 0.30, Extra: 0.35},
	},
	Special: map[string]map[prompt.Scheme][]string{
		"l": specialBoth("opswap"),
	},
}

func init() { Profiles["OLMo"] = olmoProfile }

// Replacement rule texts for the named special mutations.

const sdMovingSpeedSrc = `
holdsFor(movingSpeed(Vl)=below, I) :-
    holdsFor(speedBelowService(Vl)=true, I1),
    union_all([I1], I).

holdsFor(movingSpeed(Vl)=normal, I) :-
    holdsFor(speedWithinService(Vl)=true, I1),
    union_all([I1], I).

holdsFor(movingSpeed(Vl)=above, I) :-
    holdsFor(speedAboveService(Vl)=true, I1),
    union_all([I1], I).
`

const equivalentLoiteringSrc = `
holdsFor(loitering(Vl)=true, I) :-
    holdsFor(lowSpeed(Vl)=true, Il),
    holdsFor(stopped(Vl)=farFromPorts, Is),
    union_all([Il, Is], Iu),
    holdsFor(withinArea(Vl, nearPorts)=true, Ip),
    relative_complement_all(Iu, [Ip], Ix),
    holdsFor(anchoredOrMoored(Vl)=true, Ia),
    relative_complement_all(Ix, [Ia], I).
`

const pbLowSpeedOnlySrc = `
holdsFor(pilotBoarding(V1, V2)=true, I) :-
    oneIsPilot(V1, V2),
    holdsFor(proximity(V1, V2)=true, Ip),
    holdsFor(lowSpeed(V1)=true, Il1),
    holdsFor(lowSpeed(V2)=true, Il2),
    intersect_all([Ip, Il1, Il2], Ib),
    holdsFor(withinArea(V1, nearCoast)=true, Inc),
    relative_complement_all(Ib, [Inc], I).
`

const pbSingleVesselSrc = `
holdsFor(pilotBoarding(V1, V2)=true, I) :-
    oneIsPilot(V1, V2),
    holdsFor(proximity(V1, V2)=true, Ip),
    holdsFor(lowSpeed(V1)=true, Il1),
    holdsFor(stopped(V1)=farFromPorts, Is1),
    union_all([Il1, Is1], I1),
    intersect_all([Ip, I1], I).
`

const inventedTrawlingGPT4Src = `
holdsFor(trawling(Vl)=true, I) :-
    holdsFor(fishingGearDeployed(Vl)=true, I1),
    holdsFor(steadyCourse(Vl)=true, I2),
    holdsFor(engineLoadHigh(Vl)=true, I3),
    holdsFor(inFishery(Vl)=true, I4),
    holdsFor(crewOnDeck(Vl)=true, I5),
    holdsFor(netTension(Vl)=true, I6),
    intersect_all([I1, I2, I3, I4, I5, I6], I).
`

const inventedTrawlingMistralSrc = `
holdsFor(trawling(Vl)=true, I) :-
    holdsFor(fishingOperation(Vl)=true, I1),
    holdsFor(deployedNets(Vl)=true, I2),
    holdsFor(movingSlow(Vl)=true, I3),
    holdsFor(nearFishingGrounds(Vl)=true, I4),
    holdsFor(activeSonar(Vl)=true, I5),
    intersect_all([I1, I2, I3, I4, I5], I).
`

const simpleTrawlingSrc = `
initiatedAt(trawling(Vl)=true, T) :-
    happensAt(change_in_heading(Vl), T),
    holdsAt(withinArea(Vl, fishing)=true, T).

terminatedAt(trawling(Vl)=true, T) :-
    happensAt(leavesArea(Vl, Area), T).

terminatedAt(trawling(Vl)=true, T) :-
    happensAt(gap_start(Vl), T).
`
