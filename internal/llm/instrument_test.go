package llm

import (
	"errors"
	"testing"

	"rtecgen/internal/maritime"
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// failing is a model whose Chat always returns the same sentinel error.
type failing struct{ err error }

func (f *failing) Name() string { return "m" }
func (f *failing) Chat(history []prompt.Message, user string) (string, error) {
	return "", f.err
}

func TestInstrumentErrorPath(t *testing.T) {
	sentinel := errors.New("transport down")
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil, nil)
	m := Instrument(&failing{err: sentinel}, tel)

	_, err := m.Chat(nil, "hello")
	if !errors.Is(err, sentinel) {
		t.Fatalf("instrumentation rewrote the error: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["llm.errors.m"] != 1 {
		t.Fatalf("llm.errors.m = %d, want 1 (counters: %v)", snap.Counters["llm.errors.m"], snap.Counters)
	}
	if snap.Counters["llm.calls.m"] != 1 {
		t.Fatalf("llm.calls.m = %d, want 1 (failed calls still count)", snap.Counters["llm.calls.m"])
	}
	if _, ok := snap.Counters["llm.response.bytes.m"]; ok {
		t.Fatal("failed call must not record response bytes")
	}
}

// TestInstrumentErrorReachesPipelineCounter drives a failing instrumented
// model through a real session: the pipeline must count the model error and
// surface the wrapped cause to the caller.
func TestInstrumentErrorReachesPipelineCounter(t *testing.T) {
	sentinel := errors.New("transport down")
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil, nil)
	m := Instrument(&failing{err: sentinel}, tel)

	s := prompt.NewSessionWith(tel, nil, m, prompt.FewShot, maritime.PromptDomain())
	err := s.Teach()
	if !errors.Is(err, sentinel) {
		t.Fatalf("Teach() = %v, want the transport error in the chain", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["pipeline.model.errors"] != 1 {
		t.Fatalf("pipeline.model.errors = %d, want 1 (counters: %v)",
			snap.Counters["pipeline.model.errors"], snap.Counters)
	}
	if snap.Counters["llm.errors.m"] != 1 {
		t.Fatalf("llm.errors.m = %d, want 1", snap.Counters["llm.errors.m"])
	}
}
