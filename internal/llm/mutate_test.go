package llm

import (
	"math/rand"
	"strings"
	"testing"

	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
)

func parseRules(t *testing.T, src string) []*lang.Clause {
	t.Helper()
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	return ed.Clauses
}

const tugRuleSrc = `
holdsFor(tugging(V1, V2)=true, I) :-
    oneIsTug(V1, V2),
    holdsFor(proximity(V1, V2)=true, Ip),
    holdsFor(tuggingSpeed(V1)=true, I1),
    holdsFor(tuggingSpeed(V2)=true, I2),
    intersect_all([Ip, I1, I2], I).
`

func TestRenameName(t *testing.T) {
	cs := parseRules(t, `
initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaID, fishing).
`)
	renameName(cs, "entersArea", "inArea")
	if !strings.Contains(cs[0].String(), "inArea(") {
		t.Fatal("predicate rename failed")
	}
	renameName(cs, "fishing", "trawlingArea")
	if !strings.Contains(cs[0].String(), "trawlingArea") {
		t.Fatal("constant rename failed")
	}
	// Head fluents rename too with renameName.
	renameName(cs, "withinArea", "inRegion")
	if !strings.Contains(cs[0].Head.String(), "inRegion") {
		t.Fatal("head rename failed")
	}
}

func TestRenameInBodiesLeavesHeads(t *testing.T) {
	cs := parseRules(t, `
initiatedAt(f(X)=true, T) :-
    happensAt(f(X), T).
`)
	renameInBodies(cs, "f", "g")
	if cs[0].Head.String() != "initiatedAt(f(X)=true, T)" {
		t.Fatalf("head changed: %s", cs[0].Head)
	}
	if cs[0].Body[0].Atom.String() != "happensAt(g(X), T)" {
		t.Fatalf("body not renamed: %s", cs[0].Body[0].Atom)
	}
}

func TestDropGapTermination(t *testing.T) {
	cs := parseRules(t, `
initiatedAt(f(X)=true, T) :- happensAt(e(X), T).
terminatedAt(f(X)=true, T) :- happensAt(e2(X), T).
terminatedAt(f(X)=true, T) :- happensAt(gap_start(X), T).
`)
	out, dropped := dropGapTermination(cs)
	if !dropped || len(out) != 2 {
		t.Fatalf("dropped=%v len=%d", dropped, len(out))
	}
	for _, c := range out {
		if strings.Contains(c.String(), "gap_start") {
			t.Fatal("gap termination not dropped")
		}
	}
	// With a single termination nothing is dropped.
	out2, dropped2 := dropGapTermination(out)
	if dropped2 || len(out2) != 2 {
		t.Fatal("surplus-free rule set must be untouched")
	}
}

func TestSwapIntervalOp(t *testing.T) {
	cs := parseRules(t, tugRuleSrc)
	if !swapIntervalOp(cs, "tugging") {
		t.Fatal("swap failed")
	}
	if !strings.Contains(cs[0].String(), "union_all([Ip, I1, I2], I)") {
		t.Fatalf("intersect not swapped: %s", cs[0])
	}
	if swapIntervalOp(cs, "nosuch") {
		t.Fatal("swap on unknown fluent succeeded")
	}
}

func TestAddRedundantIntersect(t *testing.T) {
	cs := parseRules(t, tugRuleSrc)
	if !addRedundantIntersect(cs, "tugging") {
		t.Fatal("addRedundantIntersect failed")
	}
	s := cs[0].String()
	if !strings.Contains(s, "holdsFor(underWay(V1)=true, Iuw)") {
		t.Fatalf("redundant condition missing:\n%s", s)
	}
	if !strings.Contains(s, "intersect_all([Ip, I1, I2, Iuw], I)") {
		t.Fatalf("intersect list not extended:\n%s", s)
	}
	// Reparse to confirm validity.
	if _, err := parser.ParseClause(s); err != nil {
		t.Fatalf("mutated rule unparseable: %v", err)
	}
}

func TestAddRedundantIntersectSkipsUnderWay(t *testing.T) {
	cs := parseRules(t, `
holdsFor(underWay(Vl)=true, I) :-
    holdsFor(movingSpeed(Vl)=normal, I1),
    union_all([I1], I).
`)
	if addRedundantIntersect(cs, "underWay") {
		t.Fatal("must not add underWay to its own definition")
	}
}

func TestDropSDConditions(t *testing.T) {
	cs := parseRules(t, tugRuleSrc)
	rng := rand.New(rand.NewSource(1))
	dropSDConditions(rng, cs, 1.0)
	s := cs[0].String()
	// One holdsFor condition gone, and its variable removed from the list.
	holdsForCount := strings.Count(s, "holdsFor(")
	if holdsForCount != 3 { // head + 2 remaining conditions
		t.Fatalf("holdsFor count = %d:\n%s", holdsForCount, s)
	}
	if _, err := parser.ParseClause(s); err != nil {
		t.Fatalf("mutated rule unparseable: %v", err)
	}
	if strings.Contains(s, "intersect_all([Ip, I1, I2], I)") {
		t.Fatal("construct list not shrunk")
	}
}

func TestDropSDConditionsPreservesComplementBase(t *testing.T) {
	cs := parseRules(t, `
holdsFor(loitering(Vl)=true, I) :-
    holdsFor(lowSpeed(Vl)=true, Il),
    union_all([Il], Iu),
    holdsFor(withinArea(Vl, nearPorts)=true, Ip),
    relative_complement_all(Iu, [Ip], I).
`)
	rng := rand.New(rand.NewSource(1))
	dropSDConditions(rng, cs, 1.0)
	s := cs[0].String()
	// Il is the only member of the union list and Iu is a complement base:
	// only the Ip condition is safely droppable.
	if strings.Contains(s, "withinArea") {
		t.Fatalf("expected the withinArea condition to be dropped:\n%s", s)
	}
	if !strings.Contains(s, "lowSpeed") {
		t.Fatalf("lowSpeed condition must survive:\n%s", s)
	}
	if _, err := parser.ParseClause(s); err != nil {
		t.Fatalf("mutated rule unparseable: %v", err)
	}
}

func TestUndefineReferences(t *testing.T) {
	cs := parseRules(t, `
initiatedAt(drifting(Vl)=true, T) :-
    happensAt(velocity(Vl, S, C, H), T),
    holdsAt(underWay(Vl)=true, T).
`)
	rng := rand.New(rand.NewSource(1))
	undefineReferences(rng, cs, map[string]bool{"drifting": true}, 1.0)
	if !strings.Contains(cs[0].String(), "underWayState") {
		t.Fatalf("reference not hallucinated:\n%s", cs[0])
	}
}

func TestSwapOpsAll(t *testing.T) {
	cs := parseRules(t, `
holdsFor(f(X)=true, I) :-
    holdsFor(a(X)=true, I1),
    holdsFor(b(X)=true, I2),
    union_all([I1, I2], Iu),
    intersect_all([Iu, I1], I).
`)
	rng := rand.New(rand.NewSource(1))
	swapOpsAll(rng, cs, 1.0)
	s := cs[0].String()
	if !strings.Contains(s, "intersect_all([I1, I2], Iu)") || !strings.Contains(s, "union_all([Iu, I1], I)") {
		t.Fatalf("ops not all swapped:\n%s", s)
	}
}

func TestCorruptSyntaxBreaksParsing(t *testing.T) {
	good := "initiatedAt(f(X)=true, T) :-\n    happensAt(e(X), T)."
	bad := corruptSyntax(good)
	if bad == good {
		t.Fatal("corruptSyntax changed nothing")
	}
	if _, err := parser.ParseClause(bad); err == nil {
		t.Fatal("corrupted rule still parses")
	}
}

func TestDropConditionsKeepsAnchor(t *testing.T) {
	cs := parseRules(t, `
initiatedAt(f(X)=true, T) :-
    happensAt(e(X), T),
    cond1(X),
    cond2(X).
`)
	rng := rand.New(rand.NewSource(2))
	dropConditions(rng, cs, 1.0)
	if len(cs[0].Body) != 2 {
		t.Fatalf("body = %d conditions, want 2", len(cs[0].Body))
	}
	if cs[0].Body[0].Atom.Functor != "happensAt" {
		t.Fatal("anchor dropped")
	}
}
