package llm

import (
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// Instrument wraps a model so that every Chat call is observed: an
// "llm.chat" span (rooted at the tracer, so it nests under whatever span is
// open when the call happens), per-model call/byte/error counters, and a
// per-model timer counter accumulating call microseconds. With a nil
// Telemetry the model is returned unwrapped, so the uninstrumented path is
// exactly the original model.
func Instrument(m prompt.Model, tel *telemetry.Telemetry) prompt.Model {
	if tel == nil {
		return m
	}
	return &instrumented{m: m, tel: tel}
}

type instrumented struct {
	m   prompt.Model
	tel *telemetry.Telemetry
}

func (i *instrumented) Name() string { return i.m.Name() }

func (i *instrumented) Chat(history []prompt.Message, user string) (string, error) {
	name := i.m.Name()
	sp := i.tel.Span("llm.chat",
		telemetry.String("model", name), telemetry.Int("history", int64(len(history))))
	defer sp.End()
	stop := i.tel.Time("llm.micros." + name)
	reply, err := i.m.Chat(history, user)
	stop()
	i.tel.Counter("llm.calls." + name).Inc()
	i.tel.Counter("llm.prompt.bytes." + name).Add(int64(len(user)))
	if err != nil {
		i.tel.Counter("llm.errors." + name).Inc()
		return reply, err
	}
	i.tel.Counter("llm.response.bytes." + name).Add(int64(len(reply)))
	sp.SetAttrs(telemetry.Int("response_bytes", int64(len(reply))))
	return reply, nil
}
