package llm

import (
	"testing"

	"rtecgen/internal/maritime"
	"rtecgen/internal/prompt"
	"rtecgen/internal/similarity"
)

// TestOLMoExtensionModel covers the further-work extension: an OLMo profile
// is available alongside the six published models, behaves deterministically
// and lands mid-field.
func TestOLMoExtensionModel(t *testing.T) {
	if _, err := New("OLMo"); err != nil {
		t.Fatal(err)
	}
	// Not part of the published figure set.
	for _, n := range ModelNames() {
		if n == "OLMo" {
			t.Fatal("OLMo must not be in the published model list")
		}
	}
	gold := maritime.GoldED()
	score := func(name string) float64 {
		gen, err := prompt.RunPipeline(MustNew(name), prompt.FewShot,
			maritime.PromptDomain(), maritime.CurriculumRequests())
		if err != nil {
			t.Fatal(err)
		}
		s, err := similarity.EventDescriptionSimilarity(gold, gen.ED())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	olmo := score("OLMo")
	if olmo >= score("o1") {
		t.Errorf("OLMo (%v) must score below o1", olmo)
	}
	if olmo <= score("Gemma-2") {
		t.Errorf("OLMo (%v) must score above Gemma-2", olmo)
	}
}
