package llm

import (
	"strings"
	"testing"

	"rtecgen/internal/lang"
	"rtecgen/internal/maritime"
	"rtecgen/internal/prompt"
)

func runPipeline(t *testing.T, model string, scheme prompt.Scheme) *prompt.GeneratedED {
	t.Helper()
	gen, err := prompt.RunPipeline(MustNew(model), scheme, maritime.PromptDomain(), maritime.CurriculumRequests())
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestNewRejectsUnknownModel(t *testing.T) {
	if _, err := New("GPT-17"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if m := MustNew("o1"); m.Name() != "o1" {
		t.Fatal("Name() wrong")
	}
	if len(AllModels()) != 6 {
		t.Fatal("AllModels() != 6")
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := runPipeline(t, "Llama-3", prompt.FewShot)
	b := runPipeline(t, "Llama-3", prompt.FewShot)
	if a.ED().String() != b.ED().String() {
		t.Fatal("generation is not deterministic")
	}
}

func TestSchemesProduceDifferentOutput(t *testing.T) {
	fs := runPipeline(t, "GPT-4o", prompt.FewShot)
	cot := runPipeline(t, "GPT-4o", prompt.ChainOfThought)
	if fs.ED().String() == cot.ED().String() {
		t.Fatal("few-shot and chain-of-thought outputs identical")
	}
}

func TestModelsProduceDifferentOutput(t *testing.T) {
	a := runPipeline(t, "o1", prompt.FewShot)
	b := runPipeline(t, "Gemma-2", prompt.FewShot)
	if a.ED().String() == b.ED().String() {
		t.Fatal("different models produced identical output")
	}
}

func TestO1SpecialsPresent(t *testing.T) {
	gen := runPipeline(t, "o1", prompt.FewShot)
	// trawlingArea naming error (category 1).
	res, _ := gen.ResultFor("tr")
	var text strings.Builder
	for _, c := range res.Clauses {
		text.WriteString(c.String())
	}
	if !strings.Contains(text.String(), "trawlingArea") {
		t.Error("o1 trawling must use the 'trawlingArea' constant")
	}
	// Equivalent loitering restructure: two relative complements.
	lres, _ := gen.ResultFor("l")
	complements := 0
	for _, c := range lres.Clauses {
		for _, lit := range c.Body {
			if lit.Atom.Functor == "relative_complement_all" {
				complements++
			}
		}
	}
	if complements != 2 {
		t.Errorf("o1 loitering must use two relative complements, found %d", complements)
	}
}

func TestGPT4oLoiteringConjunctionError(t *testing.T) {
	gen := runPipeline(t, "GPT-4o", prompt.ChainOfThought)
	res, _ := gen.ResultFor("l")
	hasIntersect, hasUnion := false, false
	for _, c := range res.Clauses {
		for _, lit := range c.Body {
			switch lit.Atom.Functor {
			case "intersect_all":
				hasIntersect = true
			case "union_all":
				hasUnion = true
			}
		}
	}
	if !hasIntersect || hasUnion {
		t.Fatalf("GPT-4o loitering must confuse union_all with intersect_all (intersect=%v union=%v)",
			hasIntersect, hasUnion)
	}
}

func TestGPT4oMovingSpeedKindFlip(t *testing.T) {
	gen := runPipeline(t, "GPT-4o", prompt.ChainOfThought)
	res, _ := gen.ResultFor("movingSpeed")
	for _, c := range res.Clauses {
		if c.Kind() != lang.KindHoldsFor {
			t.Fatalf("GPT-4o movingSpeed must be statically determined, found %v", c.Kind())
		}
	}
}

func TestGemma2TrawlingKindFlip(t *testing.T) {
	gen := runPipeline(t, "Gemma-2", prompt.ChainOfThought)
	res, _ := gen.ResultFor("tr")
	for _, c := range res.Clauses {
		if c.Kind() == lang.KindHoldsFor {
			t.Fatal("Gemma-2 trawling must be a simple fluent")
		}
	}
}

func TestGemma2FewShotSyntaxError(t *testing.T) {
	gen := runPipeline(t, "Gemma-2", prompt.FewShot)
	if len(gen.ParseErrors()) == 0 {
		t.Fatal("Gemma-2 few-shot must produce at least one syntax error")
	}
}

func TestHonestyGateMasksUntaughtVocabulary(t *testing.T) {
	// Teach the fluent kinds (prompt F*) but not the input events (prompt
	// E): the model knows the rule shapes yet must hallucinate event names
	// it was never taught.
	m := MustNew("o1")
	history := []prompt.Message{{Role: "user", Content: prompt.BuildF(prompt.FewShot)}}
	reply, err := m.Chat(history, prompt.ActivityMarker+"withinArea: a vessel is within an area.")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reply, "entersAreaEvt") {
		t.Fatalf("untaught event must be hallucinated; reply:\n%s", reply)
	}
	// With a proper session the real names appear.
	gen := runPipeline(t, "o1", prompt.FewShot)
	res, _ := gen.ResultFor("withinArea")
	found := false
	for _, c := range res.Clauses {
		if strings.Contains(c.String(), "entersArea(") {
			found = true
		}
	}
	if !found {
		t.Fatal("taught event name missing from output")
	}
}

func TestUnknownActivityPolitelyRefused(t *testing.T) {
	m := MustNew("o1")
	reply, err := m.Chat(nil, prompt.ActivityMarker+"teleportation: vessels teleport.")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(reply, ":-") {
		t.Fatalf("unknown activity produced rules: %s", reply)
	}
}

func TestTeachingPromptsAcknowledged(t *testing.T) {
	m := MustNew("Mistral")
	reply, err := m.Chat(nil, prompt.BuildR())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(reply, ":-") {
		t.Fatal("teaching prompt must not produce rules")
	}
}

func TestAllModelOutputsMostlyParse(t *testing.T) {
	for _, name := range ModelNames() {
		for _, scheme := range []prompt.Scheme{prompt.FewShot, prompt.ChainOfThought} {
			gen := runPipeline(t, name, scheme)
			if len(gen.ED().Rules()) < 20 {
				t.Errorf("%s %s produced only %d rules", name, scheme, len(gen.ED().Rules()))
			}
			// Syntax errors are allowed only where the profile injects them.
			if name != "Gemma-2" && len(gen.ParseErrors()) > 0 {
				t.Errorf("%s %s unexpected parse errors: %v", name, scheme, gen.ParseErrors())
			}
		}
	}
}

func TestFnvSeedStability(t *testing.T) {
	a := fnvSeed("o1", "few-shot", "tr")
	b := fnvSeed("o1", "few-shot", "tr")
	c := fnvSeed("o1", "few-shot", "tu")
	if a != b {
		t.Fatal("seed not stable")
	}
	if a == c {
		t.Fatal("seed collision across activities")
	}
	if a < 0 {
		t.Fatal("seed must be non-negative")
	}
}
