package llm

import (
	"strings"
	"testing"

	"rtecgen/internal/analysis"
	"rtecgen/internal/lang"
	"rtecgen/internal/maritime"
	"rtecgen/internal/prompt"
)

func runPipeline(t *testing.T, model string, scheme prompt.Scheme) *prompt.GeneratedED {
	t.Helper()
	gen, err := prompt.RunPipeline(MustNew(model), scheme, maritime.PromptDomain(), maritime.CurriculumRequests())
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestNewRejectsUnknownModel(t *testing.T) {
	if _, err := New("GPT-17"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if m := MustNew("o1"); m.Name() != "o1" {
		t.Fatal("Name() wrong")
	}
	if len(AllModels()) != 6 {
		t.Fatal("AllModels() != 6")
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := runPipeline(t, "Llama-3", prompt.FewShot)
	b := runPipeline(t, "Llama-3", prompt.FewShot)
	if a.ED().String() != b.ED().String() {
		t.Fatal("generation is not deterministic")
	}
}

func TestSchemesProduceDifferentOutput(t *testing.T) {
	fs := runPipeline(t, "GPT-4o", prompt.FewShot)
	cot := runPipeline(t, "GPT-4o", prompt.ChainOfThought)
	if fs.ED().String() == cot.ED().String() {
		t.Fatal("few-shot and chain-of-thought outputs identical")
	}
}

func TestModelsProduceDifferentOutput(t *testing.T) {
	a := runPipeline(t, "o1", prompt.FewShot)
	b := runPipeline(t, "Gemma-2", prompt.FewShot)
	if a.ED().String() == b.ED().String() {
		t.Fatal("different models produced identical output")
	}
}

func TestO1SpecialsPresent(t *testing.T) {
	gen := runPipeline(t, "o1", prompt.FewShot)
	// trawlingArea naming error (category 1).
	res, _ := gen.ResultFor("tr")
	var text strings.Builder
	for _, c := range res.Clauses {
		text.WriteString(c.String())
	}
	if !strings.Contains(text.String(), "trawlingArea") {
		t.Error("o1 trawling must use the 'trawlingArea' constant")
	}
	// Equivalent loitering restructure: two relative complements.
	lres, _ := gen.ResultFor("l")
	complements := 0
	for _, c := range lres.Clauses {
		for _, lit := range c.Body {
			if lit.Atom.Functor == "relative_complement_all" {
				complements++
			}
		}
	}
	if complements != 2 {
		t.Errorf("o1 loitering must use two relative complements, found %d", complements)
	}
}

func TestGPT4oLoiteringConjunctionError(t *testing.T) {
	gen := runPipeline(t, "GPT-4o", prompt.ChainOfThought)
	res, _ := gen.ResultFor("l")
	hasIntersect, hasUnion := false, false
	for _, c := range res.Clauses {
		for _, lit := range c.Body {
			switch lit.Atom.Functor {
			case "intersect_all":
				hasIntersect = true
			case "union_all":
				hasUnion = true
			}
		}
	}
	if !hasIntersect || hasUnion {
		t.Fatalf("GPT-4o loitering must confuse union_all with intersect_all (intersect=%v union=%v)",
			hasIntersect, hasUnion)
	}
}

func TestGPT4oMovingSpeedKindFlip(t *testing.T) {
	gen := runPipeline(t, "GPT-4o", prompt.ChainOfThought)
	res, _ := gen.ResultFor("movingSpeed")
	for _, c := range res.Clauses {
		if c.Kind() != lang.KindHoldsFor {
			t.Fatalf("GPT-4o movingSpeed must be statically determined, found %v", c.Kind())
		}
	}
}

func TestGemma2TrawlingKindFlip(t *testing.T) {
	gen := runPipeline(t, "Gemma-2", prompt.ChainOfThought)
	res, _ := gen.ResultFor("tr")
	for _, c := range res.Clauses {
		if c.Kind() == lang.KindHoldsFor {
			t.Fatal("Gemma-2 trawling must be a simple fluent")
		}
	}
}

func TestGemma2FewShotSyntaxError(t *testing.T) {
	gen := runPipeline(t, "Gemma-2", prompt.FewShot)
	if len(gen.ParseErrors()) == 0 {
		t.Fatal("Gemma-2 few-shot must produce at least one syntax error")
	}
}

func TestHonestyGateMasksUntaughtVocabulary(t *testing.T) {
	// Teach the fluent kinds (prompt F*) but not the input events (prompt
	// E): the model knows the rule shapes yet must hallucinate event names
	// it was never taught.
	m := MustNew("o1")
	history := []prompt.Message{{Role: "user", Content: prompt.BuildF(prompt.FewShot)}}
	reply, err := m.Chat(history, prompt.ActivityMarker+"withinArea: a vessel is within an area.")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reply, "entersAreaEvt") {
		t.Fatalf("untaught event must be hallucinated; reply:\n%s", reply)
	}
	// With a proper session the real names appear.
	gen := runPipeline(t, "o1", prompt.FewShot)
	res, _ := gen.ResultFor("withinArea")
	found := false
	for _, c := range res.Clauses {
		if strings.Contains(c.String(), "entersArea(") {
			found = true
		}
	}
	if !found {
		t.Fatal("taught event name missing from output")
	}
}

func TestUnknownActivityPolitelyRefused(t *testing.T) {
	m := MustNew("o1")
	reply, err := m.Chat(nil, prompt.ActivityMarker+"teleportation: vessels teleport.")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(reply, ":-") {
		t.Fatalf("unknown activity produced rules: %s", reply)
	}
}

func TestTeachingPromptsAcknowledged(t *testing.T) {
	m := MustNew("Mistral")
	reply, err := m.Chat(nil, prompt.BuildR())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(reply, ":-") {
		t.Fatal("teaching prompt must not produce rules")
	}
}

func TestAllModelOutputsMostlyParse(t *testing.T) {
	for _, name := range ModelNames() {
		for _, scheme := range []prompt.Scheme{prompt.FewShot, prompt.ChainOfThought} {
			gen := runPipeline(t, name, scheme)
			if len(gen.ED().Rules()) < 20 {
				t.Errorf("%s %s produced only %d rules", name, scheme, len(gen.ED().Rules()))
			}
			// Syntax errors are allowed only where the profile injects them.
			if name != "Gemma-2" && len(gen.ParseErrors()) > 0 {
				t.Errorf("%s %s unexpected parse errors: %v", name, scheme, gen.ParseErrors())
			}
		}
	}
}

func TestFnvSeedStability(t *testing.T) {
	a := fnvSeed("o1", "few-shot", "tr")
	b := fnvSeed("o1", "few-shot", "tr")
	c := fnvSeed("o1", "few-shot", "tu")
	if a != b {
		t.Fatal("seed not stable")
	}
	if a == c {
		t.Fatal("seed collision across activities")
	}
	if a < 0 {
		t.Fatal("seed must be non-negative")
	}
}

// critiqueSession teaches a session, generates the named activity, and
// applies n critique turns, returning every response in order.
func critiqueSession(t *testing.T, model string, scheme prompt.Scheme, key string, n int) []string {
	t.Helper()
	dom := maritime.PromptDomain()
	s := prompt.NewSession(MustNew(model), scheme, dom)
	if err := s.Teach(); err != nil {
		t.Fatal(err)
	}
	var req prompt.ActivityRequest
	for _, r := range maritime.CurriculumRequests() {
		if r.Key == key {
			req = r
		}
	}
	if req.Key == "" {
		t.Fatalf("no curriculum activity %q", key)
	}
	first, err := s.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	out := []string{first}
	diags := []analysis.Diagnostic{{Code: "R002", Severity: analysis.Error, Message: "undefined reference"}}
	for i := 0; i < n; i++ {
		rev, err := s.Critique(req, diags)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rev)
	}
	return out
}

func TestCritiqueEscalatesRevisions(t *testing.T) {
	// o1's trawling definition carries the systematic trawlingArea naming
	// error. The first critique fixes careless mistakes but keeps the
	// misconception; the second critique repairs it too.
	got := critiqueSession(t, "o1", prompt.FewShot, "tr", 3)
	if !strings.Contains(got[0], "trawlingArea") || !strings.Contains(got[1], "trawlingArea") {
		t.Fatalf("systematic error should survive revision 1:\n%s", got[1])
	}
	if strings.Contains(got[2], "trawlingArea") {
		t.Fatalf("systematic error should be repaired at revision 2:\n%s", got[2])
	}
	// Revision 2 is the model's best answer: further critiques are stable.
	if got[3] != got[2] {
		t.Fatalf("critique did not converge:\nrev2:\n%s\nrev3:\n%s", got[2], got[3])
	}
	// The revised answer must be fully parseable.
	clauses, errs := prompt.ParseResponse(got[2])
	if len(errs) > 0 || len(clauses) == 0 {
		t.Fatalf("revised answer unparseable (%d clauses, %v)", len(clauses), errs)
	}
}

func TestCritiqueIsDeterministic(t *testing.T) {
	a := critiqueSession(t, "Gemma-2", prompt.ChainOfThought, "tr", 2)
	b := critiqueSession(t, "Gemma-2", prompt.ChainOfThought, "tr", 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("critique sequence diverged at step %d", i)
		}
	}
}

func TestCritiqueRepairsSyntaxSpecial(t *testing.T) {
	// Gemma-2 few-shot corrupts the syntax of its anchoredOrMoored answer;
	// the corruption is a named special, so it survives one critique and is
	// repaired at revision 2.
	got := critiqueSession(t, "Gemma-2", prompt.FewShot, "aM", 2)
	if _, errs := prompt.ParseResponse(got[0]); len(errs) == 0 {
		t.Fatal("profile no longer corrupts anchoredOrMoored syntax")
	}
	if clauses, errs := prompt.ParseResponse(got[2]); len(errs) > 0 || len(clauses) == 0 {
		t.Fatalf("revision 2 still corrupt: %v", errs)
	}
}
