package llm

import (
	"fmt"
	"math/rand"
	"strings"

	"rtecgen/internal/lang"
	"rtecgen/internal/maritime"
	"rtecgen/internal/parser"
	"rtecgen/internal/prompt"
)

// ActivityKnowledge is a model's internal notion of one activity's intended
// formalisation: what a competent model "understands" the description to
// mean, before its error profile corrupts it.
type ActivityKnowledge struct {
	Key     string   // short identifier, used to look up special errors
	Name    string   // activity name matched against the prompt G header
	Primary string   // functor of the top-level fluent
	Fluents []string // functors of all fluents the formalisation defines
	Clauses []*lang.Clause
}

// Knowledge packages a domain's activity understanding and vocabulary for a
// simulated model. MaritimeKnowledge is the default; other domains (e.g.
// internal/fleet) provide their own.
type Knowledge struct {
	Activities []ActivityKnowledge
	Domain     *prompt.Domain
}

// byName finds an activity by the name in the prompt G header, falling back
// to substring matching as a model would.
func (k *Knowledge) byName(name string) (ActivityKnowledge, bool) {
	lname := strings.ToLower(strings.TrimSpace(name))
	for _, a := range k.Activities {
		if strings.ToLower(a.Name) == lname || strings.ToLower(a.Key) == lname {
			return a, true
		}
	}
	for _, a := range k.Activities {
		if strings.Contains(lname, strings.ToLower(a.Name)) {
			return a, true
		}
	}
	return ActivityKnowledge{}, false
}

// MaritimeKnowledge builds the default knowledge base from the maritime
// curriculum and gold standard.
func MaritimeKnowledge() *Knowledge {
	k := &Knowledge{Domain: maritime.PromptDomain()}
	gold := maritime.GoldED()
	for _, act := range maritime.Curriculum {
		fluents := make([]string, 0, len(act.Fluents))
		for _, f := range act.Fluents {
			fluents = append(fluents, strings.SplitN(f, "/", 2)[0])
		}
		k.Activities = append(k.Activities, ActivityKnowledge{
			Key:     act.Key,
			Name:    act.Name,
			Primary: act.PrimaryName(),
			Fluents: fluents,
			Clauses: maritime.RulesForActivity(gold, act),
		})
	}
	return k
}

// Simulated is a deterministic stand-in for a pre-trained LLM. It keeps no
// mutable state: everything it "knows" at each turn is re-derived from the
// conversation history, like a real chat model.
type Simulated struct {
	name    string
	profile Profile
	know    *Knowledge
}

// New returns the simulated model with the given name on the maritime
// domain, or an error for an unknown name. Known names: GPT-4, GPT-4o, o1,
// Llama-3, Mistral, Gemma-2.
func New(name string) (*Simulated, error) {
	return NewWithKnowledge(name, MaritimeKnowledge())
}

// NewWithKnowledge returns the simulated model with the given name over a
// custom domain knowledge base (the paper's further work: applying the
// method to other domains by swapping the prompts' domain content).
func NewWithKnowledge(name string, know *Knowledge) (*Simulated, error) {
	p, ok := Profiles[name]
	if !ok {
		return nil, fmt.Errorf("llm: unknown model %q", name)
	}
	return &Simulated{name: name, profile: p, know: know}, nil
}

// MustNew is New for known-good names.
func MustNew(name string) *Simulated {
	m, err := New(name)
	if err != nil {
		panic(err)
	}
	return m
}

// AllModels returns the six simulated models in presentation order.
func AllModels() []*Simulated {
	out := make([]*Simulated, 0, len(ModelNames()))
	for _, n := range ModelNames() {
		out = append(out, MustNew(n))
	}
	return out
}

// Name implements prompt.Model.
func (m *Simulated) Name() string { return m.name }

// Chat implements prompt.Model. Teaching prompts are acknowledged; a prompt
// G request produces an activity formalisation derived from the model's
// internal notion of the intended definition, perturbed by its error
// profile. The model only uses vocabulary that the conversation actually
// taught it, and it infers the prompting scheme from the shape of prompt F.
func (m *Simulated) Chat(history []prompt.Message, user string) (string, error) {
	if name, ok := markedActivity(user, prompt.CritiqueMarker); ok {
		// A critique turn: the model re-reads its notes more carefully each
		// time it is pressed on the same activity.
		return m.generate(history, name, 1+critiqueCount(history, name))
	}
	if name, ok := markedActivity(user, prompt.ActivityMarker); ok {
		return m.generate(history, name, 0)
	}
	if strings.Contains(user, prompt.ActivityMarker) || strings.Contains(user, prompt.CritiqueMarker) {
		return "I could not identify the requested activity.", nil
	}
	return fmt.Sprintf("Understood. I will use this information when formalising composite activities for %s.",
		m.know.Domain.Name), nil
}

// markedActivity extracts the activity name from a "<marker><name>: ..."
// payload.
func markedActivity(user, marker string) (string, bool) {
	idx := strings.Index(user, marker)
	if idx < 0 {
		return "", false
	}
	rest := user[idx+len(marker):]
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return "", false
	}
	return strings.TrimSpace(rest[:colon]), true
}

// critiqueCount counts the critique turns already issued for the named
// activity, so that repeated critiques escalate the revision level.
func critiqueCount(history []prompt.Message, name string) int {
	n := 0
	for _, msg := range history {
		if msg.Role == "user" && strings.Contains(msg.Content, prompt.CritiqueMarker+name+":") {
			n++
		}
	}
	return n
}

// taughtVocabulary extracts the event and threshold names taught by prompts
// E and T from the conversation.
func taughtVocabulary(history []prompt.Message, current string) (events map[string]bool, thresholds map[string]bool) {
	events = map[string]bool{}
	thresholds = map[string]bool{}
	scan := func(content string) {
		for _, line := range strings.Split(content, "\n") {
			line = strings.TrimSpace(line)
			if rest, ok := cutPrefixAfter(line, "Input Event ", ": "); ok {
				if t, err := parser.ParseTerm(rest); err == nil && t.IsCallable() {
					events[t.Indicator()] = true
				}
			}
			if rest, ok := cutPrefixAfter(line, "Background Predicate ", ": "); ok {
				if t, err := parser.ParseTerm(rest); err == nil && t.IsCallable() {
					events[t.Indicator()] = true
				}
			}
			if rest, ok := cutPrefixAfter(line, "Threshold ", ": "); ok {
				if t, err := parser.ParseTerm(rest); err == nil && t.Functor == "thresholds" && len(t.Args) == 2 {
					if t.Args[0].Kind == lang.Atom {
						thresholds[t.Args[0].Functor] = true
					}
				}
			}
		}
	}
	for _, msg := range history {
		if msg.Role == "user" {
			scan(msg.Content)
		}
	}
	scan(current)
	return events, thresholds
}

// cutPrefixAfter matches lines like "<prefix>N<sep><rest>" and returns rest.
func cutPrefixAfter(line, prefix, sep string) (string, bool) {
	if !strings.HasPrefix(line, prefix) {
		return "", false
	}
	rest := line[len(prefix):]
	i := strings.Index(rest, sep)
	if i < 0 {
		return "", false
	}
	return strings.TrimSpace(rest[i+len(sep):]), true
}

// schemeOf infers the prompting scheme from the conversation: prompt F
// (chain-of-thought) contains the step-by-step explanations, prompt F*
// (few-shot) only the examples; if neither was sent the session is
// zero-shot and the model has never seen a fluent definition.
func schemeOf(history []prompt.Message) prompt.Scheme {
	sawF := false
	for _, msg := range history {
		if msg.Role != "user" {
			continue
		}
		if strings.Contains(msg.Content, "The activity 'withinArea' is expressed as a simple") {
			return prompt.ChainOfThought
		}
		if strings.Contains(msg.Content, "There are two ways in which a composite activity may be defined") {
			sawF = true
		}
	}
	if sawF {
		return prompt.FewShot
	}
	return prompt.ZeroShot
}

// generate produces the formalisation of the named activity. revision 0 is
// the first attempt; each critique turn raises it by one. At revision 1 the
// model fixes its careless (rate-sampled) mistakes; from revision 2 on it
// also repairs the systematic misconceptions of its error profile. The
// honesty gate is never lifted: vocabulary the conversation did not teach
// stays unavailable no matter how often the model is critiqued.
func (m *Simulated) generate(history []prompt.Message, name string, revision int) (string, error) {
	act, ok := m.know.byName(name)
	if !ok {
		return fmt.Sprintf("I am not familiar with an activity named '%s'.", name), nil
	}
	scheme := schemeOf(history)
	if scheme == prompt.ZeroShot {
		// Without prompt F the model has never seen the shape of a fluent
		// definition: it improvises a plausible but non-RTEC notation — the
		// "poor results" that made the paper drop zero-shot from the
		// pipeline (Section 3).
		return m.generateZeroShot(act), nil
	}
	events, thresholds := taughtVocabulary(history, "")
	rng := rand.New(rand.NewSource(fnvSeed(m.name, scheme.String(), act.Key)))

	clauses := cloneClauses(act.Clauses)

	// Honesty gate: the model cannot use input events or thresholds it was
	// never taught. Untaught names are hallucinated variants.
	clauses = m.maskUntaught(clauses, events, thresholds)

	// Named special errors for this (model, scheme, activity).
	syntaxErr := false
	if byScheme, ok := m.profile.Special[act.Key]; revision < 2 && ok {
		for _, special := range byScheme[scheme] {
			if special == "syntax" {
				syntaxErr = true
				continue
			}
			clauses = m.applySpecial(special, act, clauses)
		}
	}

	// Generic rate-based errors.
	if revision < 1 {
		clauses = m.applyGeneric(rng, scheme, act, clauses)
	}

	text := renderResponse(scheme, act, clauses)
	if syntaxErr {
		text = corruptSyntax(text)
	}
	return text, nil
}

// maskUntaught renames input events and thresholds that were not taught.
func (m *Simulated) maskUntaught(clauses []*lang.Clause, events, thresholds map[string]bool) []*lang.Clause {
	known := map[string]bool{}
	for _, e := range m.know.Domain.Events {
		if t, err := parser.ParseTerm(e.Pattern); err == nil {
			known[t.Indicator()] = true
		}
	}
	for _, c := range clauses {
		for _, l := range c.Body {
			a := l.Atom
			if a.Functor == "happensAt" && len(a.Args) == 2 && a.Args[0].IsCallable() {
				ind := a.Args[0].Indicator()
				if known[ind] && !events[ind] {
					renameInBodies(clauses, a.Args[0].Functor, a.Args[0].Functor+"Evt")
				}
			}
			if a.Functor == "thresholds" && len(a.Args) == 2 && a.Args[0].Kind == lang.Atom {
				if !thresholds[a.Args[0].Functor] {
					renameInBodies(clauses, a.Args[0].Functor, a.Args[0].Functor+"Thr")
				}
			}
		}
	}
	return clauses
}

// applySpecial executes one named special mutation.
func (m *Simulated) applySpecial(special string, act ActivityKnowledge, clauses []*lang.Clause) []*lang.Clause {
	primary := act.Primary
	switch special {
	case "const:trawlingArea":
		renameName(clauses, "fishing", "trawlingArea")
	case "equivalent:loitering":
		clauses = replaceFluentRules(clauses, map[string]bool{"loitering": true}, equivalentLoiteringSrc)
	case "opswap":
		swapIntervalOp(clauses, primary)
	case "redundant:underWay":
		addRedundantIntersect(clauses, primary)
	case "kindflip:movingSpeed":
		clauses = replaceFluentRules(clauses, map[string]bool{"movingSpeed": true}, sdMovingSpeedSrc)
	case "kindflip:trawling":
		clauses = replaceFluentRules(clauses,
			map[string]bool{"trawling": true, "trawlSpeed": true, "trawlingMovement": true}, simpleTrawlingSrc)
	case "invented:trawlingGPT4":
		clauses = replaceFluentRules(clauses,
			map[string]bool{"trawling": true, "trawlSpeed": true, "trawlingMovement": true}, inventedTrawlingGPT4Src)
	case "invented:trawlingMistral":
		clauses = replaceFluentRules(clauses,
			map[string]bool{"trawling": true, "trawlSpeed": true, "trawlingMovement": true}, inventedTrawlingMistralSrc)
	case "pb:lowSpeedOnly":
		clauses = replaceFluentRules(clauses, map[string]bool{"pilotBoarding": true}, pbLowSpeedOnlySrc)
	case "pb:singleVessel":
		clauses = replaceFluentRules(clauses, map[string]bool{"pilotBoarding": true}, pbSingleVesselSrc)
	}
	return clauses
}

// applyGeneric samples the generic error classes per the profile's rates.
func (m *Simulated) applyGeneric(rng *rand.Rand, scheme prompt.Scheme, act ActivityKnowledge, clauses []*lang.Clause) []*lang.Clause {
	rates := m.profile.Rates[scheme]
	own := map[string]bool{}
	for _, f := range act.Fluents {
		own[f] = true
	}
	protected := map[string]bool{}
	for k := range protectedNames {
		protected[k] = true
	}
	for k := range own {
		protected[k] = true
	}

	// Predicate renames: each event/background predicate present in the
	// rules is independently misremembered with probability Rename.
	predicateNames := map[string]bool{}
	for _, e := range m.know.Domain.Events {
		if t, err := parser.ParseTerm(e.Pattern); err == nil {
			predicateNames[t.Functor] = true
		}
	}
	for _, b := range m.know.Domain.Background {
		if t, err := parser.ParseTerm(b.Pattern); err == nil {
			predicateNames[t.Functor] = true
		}
	}
	applyRenames(rng, clauses, m.know.Domain.Aliases, predicateNames, protected, rates.Rename)

	// Constant renames: values, area/vessel types and threshold names.
	constantNames := map[string]bool{}
	for _, v := range m.know.Domain.Values {
		constantNames[v] = true
	}
	for _, t := range m.know.Domain.Thresholds {
		constantNames[t.Name] = true
	}
	for _, extra := range []string{"fishing", "anchorage", "nearCoast", "fishingVessel", "pilotVessel", "sarVessel"} {
		constantNames[extra] = true
	}
	applyRenames(rng, clauses, m.know.Domain.Aliases, constantNames, protected, rates.ValueName)

	// Drops: surplus termination rules and per-rule body conditions are
	// independently forgotten.
	for rng.Float64() < rates.Drop {
		var dropped bool
		clauses, dropped = dropGapTermination(clauses)
		if !dropped {
			break
		}
	}
	dropConditions(rng, clauses, rates.Drop)
	dropSDConditions(rng, clauses, rates.Drop)
	addExtraConditions(rng, clauses, act.Primary, rates.Extra)
	undefineReferences(rng, clauses, own, rates.Undefined)
	swapOpsAll(rng, clauses, rates.OpSwap)
	return clauses
}

// applyRenames walks the candidate names present in the clauses and renames
// each to one of its plausible aliases with the given probability.
func applyRenames(rng *rand.Rand, clauses []*lang.Clause, aliases map[string][]string,
	restrictTo, protected map[string]bool, p float64) {
	if p <= 0 {
		return
	}
	present := namesIn(clauses)
	var candidates []string
	for name := range present {
		if protected[name] || !restrictTo[name] || len(aliases[name]) == 0 {
			continue
		}
		candidates = append(candidates, name)
	}
	sortStrings(candidates)
	for _, from := range candidates {
		if rng.Float64() < p {
			alts := aliases[from]
			renameName(clauses, from, alts[rng.Intn(len(alts))])
		}
	}
}

// generateZeroShot renders the activity's intended logic in an improvised,
// non-RTEC notation. The output reads plausibly but defines no temporal
// rules: parsed leniently it contributes only inert clauses, so the
// similarity against any gold standard collapses.
func (m *Simulated) generateZeroShot(act ActivityKnowledge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Here is a logical specification of '%s':\n\n", act.Name)
	for i, c := range act.Clauses {
		if i >= 3 {
			break
		}
		switch c.Kind() {
		case lang.KindInitiatedAt:
			fvp, _ := c.HeadFVP()
			fmt.Fprintf(&b, "starts(%s) :-\n    %s.\n\n", fvp.Args[0], bodyOf(c))
		case lang.KindTerminatedAt:
			fvp, _ := c.HeadFVP()
			fmt.Fprintf(&b, "ends(%s) :-\n    %s.\n\n", fvp.Args[0], bodyOf(c))
		case lang.KindHoldsFor:
			fvp, _ := c.HeadFVP()
			fmt.Fprintf(&b, "activity(%s) :-\n    %s.\n\n", fvp.Args[0], bodyOf(c))
		}
	}
	b.WriteString("This captures the described behaviour.")
	return b.String()
}

func bodyOf(c *lang.Clause) string {
	parts := make([]string, 0, len(c.Body))
	for _, l := range c.Body {
		parts = append(parts, l.String())
	}
	return strings.Join(parts, ",\n    ")
}

// renderResponse wraps the rules in the prose a model would produce.
func renderResponse(scheme prompt.Scheme, act ActivityKnowledge, clauses []*lang.Clause) string {
	var b strings.Builder
	kind := "simple fluent"
	for _, c := range clauses {
		if c.Kind() == lang.KindHoldsFor {
			if _, fl := c.HeadFVP(); fl != nil && fl.Functor == act.Primary {
				kind = "statically determined fluent"
			}
		}
	}
	if scheme == prompt.ChainOfThought {
		fmt.Fprintf(&b, "Answer: The activity '%s' is expressed as a %s. ", act.Name, kind)
		b.WriteString("Following the input events, fluents and thresholds provided, the rules in the language of RTEC are:\n\n")
	} else {
		b.WriteString("Answer:\n\n")
	}
	for i, c := range clauses {
		if i > 0 {
			b.WriteString("\n\n")
		}
		b.WriteString(c.String())
	}
	return b.String()
}
