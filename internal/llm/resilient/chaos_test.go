// Deterministic chaos test: a full Teach+Generate run over the fault
// injector and the resilient transport, with a fixed seed and a virtual
// clock. Every assertion below pins an exact value — retry counts, breaker
// transitions, the degraded-activity set — because the whole stack is
// seeded: if any of these drift, determinism (and with it the ci.sh chaos
// gate) is broken.
package resilient_test

import (
	"reflect"
	"testing"
	"time"

	"rtecgen/internal/clock"
	"rtecgen/internal/llm"
	"rtecgen/internal/llm/fault"
	"rtecgen/internal/llm/resilient"
	"rtecgen/internal/maritime"
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// chaosProfile keeps teach calls overwhelmingly likely to survive four
// attempts while still producing retries, then takes the backend down for
// good mid-generation so the breaker must trip and the tail of the
// curriculum degrades.
var chaosProfile = fault.Profile{
	Transient: 0.20, RateLimit: 0.10, Timeout: 0.05,
	Truncate: 0.05, Garble: 0.05,
	RetryAfter: 250 * time.Millisecond, HangFor: 2 * time.Second,
	OutageAfter: 20,
}

type chaosRun struct {
	err        error
	degraded   []string
	covOK      int
	covTotal   int
	retries    int64
	opens      int64
	rejected   int64
	transition []string
}

func runChaos(t *testing.T, seed int64) chaosRun {
	t.Helper()
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil, nil)
	clk := clock.NewVirtual(time.Unix(0, 0))
	base := llm.MustNew("o1")
	r := resilient.Wrap(fault.Inject(base, chaosProfile, seed, clk, tel),
		resilient.Config{Clock: clk, Seed: seed, Telemetry: tel})

	gen, err := prompt.RunPipelineWith(tel, r, prompt.FewShot, maritime.PromptDomain(), maritime.CurriculumRequests())
	out := chaosRun{err: err, transition: r.Transitions()}
	if gen != nil {
		out.degraded = gen.DegradedKeys()
		out.covOK, out.covTotal = gen.Coverage()
	}
	snap := reg.Snapshot()
	out.retries = snap.Counters["llm.retries"]
	out.opens = snap.Counters["llm.breaker.opens"]
	out.rejected = snap.Counters["llm.calls.rejected.o1"]
	return out
}

func TestChaosRunIsDeterministic(t *testing.T) {
	a, b := runChaos(t, 7), runChaos(t, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed chaos runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestChaosRunPinnedOutcome(t *testing.T) {
	got := runChaos(t, 7)
	if got.err != nil {
		t.Fatalf("teach survived probabilistic faults at this seed before; now: %v", got.err)
	}
	// The outage begins at injector call 21, mid-way through the curriculum:
	// the last five activities degrade, the first eleven survive.
	wantDegraded := []string{"tu", "p", "l", "s", "d"}
	if !reflect.DeepEqual(got.degraded, wantDegraded) {
		t.Errorf("degraded = %v, want %v", got.degraded, wantDegraded)
	}
	if got.covOK != 11 || got.covTotal != 16 {
		t.Errorf("coverage = %d/%d, want 11/16", got.covOK, got.covTotal)
	}
	if got.retries != 5 {
		t.Errorf("llm.retries = %d, want 5", got.retries)
	}
	if got.opens != 1 {
		t.Errorf("llm.breaker.opens = %d, want 1", got.opens)
	}
	if got.rejected < 1 {
		t.Errorf("llm.calls.rejected.o1 = %d, want >= 1 (degraded tail fails fast)", got.rejected)
	}
	wantTransitions := []string{"closed->open"}
	if !reflect.DeepEqual(got.transition, wantTransitions) {
		t.Errorf("breaker transitions = %v, want %v", got.transition, wantTransitions)
	}
}
