package resilient

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rtecgen/internal/clock"
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// The test error types mirror the net.Error idiom the classifier inspects,
// defined locally so the tests pin the structural contract rather than the
// fault package's concrete types.
type tempErr struct{}

func (tempErr) Error() string   { return "transient" }
func (tempErr) Temporary() bool { return true }

type rlErr struct{ after time.Duration }

func (rlErr) Error() string               { return "rate limited" }
func (e rlErr) RetryAfter() time.Duration { return e.after }

type toErr struct{}

func (toErr) Error() string { return "timed out" }
func (toErr) Timeout() bool { return true }

// script is a model whose Chat consults a queue of canned outcomes; after
// the queue drains it succeeds. hang, when set, advances the clock per call.
type script struct {
	queue []error
	clk   clock.Clock
	hang  time.Duration
	calls int
}

func (s *script) Name() string { return "m" }
func (s *script) Chat(history []prompt.Message, user string) (string, error) {
	s.calls++
	if s.hang > 0 && s.clk != nil {
		s.clk.Sleep(s.hang)
	}
	if len(s.queue) > 0 {
		err := s.queue[0]
		s.queue = s.queue[1:]
		if err != nil {
			return "", err
		}
	}
	return "ok", nil
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, Permanent},
		{errors.New("boring"), Permanent},
		{tempErr{}, Transient},
		{rlErr{after: time.Second}, RateLimited},
		{toErr{}, Timeout},
		{fmt.Errorf("wrap: %w", tempErr{}), Transient},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), Timeout},
		{&BreakerOpenError{Model: "m"}, Permanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if Permanent.Retryable() {
		t.Error("permanent must not be retryable")
	}
	for _, c := range []Class{Transient, RateLimited, Timeout} {
		if !c.Retryable() {
			t.Errorf("%v must be retryable", c)
		}
	}
}

func TestPassThroughSingleAttempt(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := &script{}
	r := Wrap(m, Config{Clock: clk})
	reply, err := r.Chat(nil, "hi")
	if err != nil || reply != "ok" {
		t.Fatalf("Chat = %q, %v", reply, err)
	}
	if m.calls != 1 {
		t.Fatalf("backend calls = %d, want 1", m.calls)
	}
	if !clk.Now().Equal(time.Unix(0, 0)) {
		t.Fatal("a successful first attempt must not sleep")
	}
	if got := r.State(); got != Closed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil, nil)
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := &script{queue: []error{tempErr{}, tempErr{}}}
	r := Wrap(m, Config{Clock: clk, Telemetry: tel})
	reply, err := r.Chat(nil, "hi")
	if err != nil || reply != "ok" {
		t.Fatalf("Chat = %q, %v", reply, err)
	}
	if m.calls != 3 {
		t.Fatalf("backend calls = %d, want 3", m.calls)
	}
	snap := reg.Snapshot()
	if snap.Counters["llm.retries"] != 2 || snap.Counters["llm.retries.m"] != 2 {
		t.Fatalf("retry counters = %v", snap.Counters)
	}
	if snap.Counters["llm.calls.failed.transient"] != 2 {
		t.Fatalf("failure-class counters = %v", snap.Counters)
	}
	hs, ok := snap.Histograms["llm.backoff_ms"]
	if !ok {
		t.Fatal("llm.backoff_ms histogram missing")
	}
	var n int64
	for _, c := range hs.Counts {
		n += c
	}
	if n != 2 {
		t.Fatalf("backoff observations = %d, want 2", n)
	}
}

func TestPermanentErrorFailsFast(t *testing.T) {
	m := &script{queue: []error{errors.New("schema rejected"), nil, nil, nil}}
	r := Wrap(m, Config{Clock: clock.NewVirtual(time.Unix(0, 0))})
	_, err := r.Chat(nil, "hi")
	if err == nil {
		t.Fatal("want error")
	}
	if m.calls != 1 {
		t.Fatalf("backend calls = %d, want 1 (permanent errors must not retry)", m.calls)
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	m := &script{queue: []error{tempErr{}, tempErr{}, tempErr{}, tempErr{}, tempErr{}}}
	r := Wrap(m, Config{Clock: clock.NewVirtual(time.Unix(0, 0)), MaxAttempts: 3, BreakerThreshold: 99})
	_, err := r.Chat(nil, "hi")
	if err == nil || !errors.As(err, new(*tempErr)) && !errors.As(err, &tempErr{}) {
		// errors.As needs a pointer-to-concrete; just check the chain textually.
		var tmp temporary
		if !errors.As(err, &tmp) {
			t.Fatalf("final error lost the cause: %v", err)
		}
	}
	if m.calls != 3 {
		t.Fatalf("backend calls = %d, want MaxAttempts=3", m.calls)
	}
}

func TestDeadlineExceededConversion(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := &script{clk: clk, hang: 31 * time.Second}
	r := Wrap(m, Config{Clock: clk, MaxAttempts: 2})
	_, err := r.Chat(nil, "hi")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
	if m.calls != 2 {
		t.Fatalf("backend calls = %d, want 2 (timeouts are retryable)", m.calls)
	}
	// Disabling the deadline accepts the same slow reply.
	m2 := &script{clk: clk, hang: 31 * time.Second}
	r2 := Wrap(m2, Config{Clock: clk, Deadline: -1})
	if reply, err := r2.Chat(nil, "hi"); err != nil || reply != "ok" {
		t.Fatalf("deadline<0 must disable the check: %q, %v", reply, err)
	}
}

func TestRetryAfterFloorsBackoff(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := &script{queue: []error{rlErr{after: 250 * time.Millisecond}}}
	r := Wrap(m, Config{Clock: clk, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond})
	if _, err := r.Chat(nil, "hi"); err != nil {
		t.Fatal(err)
	}
	if elapsed := clk.Now().Sub(time.Unix(0, 0)); elapsed < 250*time.Millisecond {
		t.Fatalf("slept %v, want >= the 250ms retry-after hint", elapsed)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil, nil)
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := &script{queue: []error{tempErr{}, tempErr{}, tempErr{}}}
	r := Wrap(m, Config{
		Clock: clk, Telemetry: tel,
		MaxAttempts: 4, BreakerThreshold: 3, BreakerCooldown: 30 * time.Second,
	})

	// First call: three consecutive failures trip the breaker; the fourth
	// attempt is rejected without touching the backend.
	_, err := r.Chat(nil, "hi")
	var boe *BreakerOpenError
	if !errors.As(err, &boe) {
		t.Fatalf("err = %v, want BreakerOpenError once tripped", err)
	}
	if m.calls != 3 {
		t.Fatalf("backend calls = %d, want 3", m.calls)
	}
	if r.State() != Open {
		t.Fatalf("state = %v, want open", r.State())
	}

	// While open and inside the cooldown, calls fail fast.
	before := m.calls
	if _, err := r.Chat(nil, "hi"); !errors.As(err, &boe) {
		t.Fatalf("err = %v, want fast-fail while open", err)
	}
	if m.calls != before {
		t.Fatal("open breaker must not touch the backend")
	}

	// After the cooldown a half-open trial goes through and, succeeding,
	// closes the breaker.
	clk.Advance(31 * time.Second)
	reply, err := r.Chat(nil, "hi")
	if err != nil || reply != "ok" {
		t.Fatalf("trial call = %q, %v", reply, err)
	}
	if r.State() != Closed {
		t.Fatalf("state = %v, want closed after successful trial", r.State())
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	got := r.Transitions()
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}

	snap := reg.Snapshot()
	if snap.Counters["llm.breaker.opens"] != 1 || snap.Counters["llm.breaker.opens.m"] != 1 {
		t.Fatalf("opens counters = %v", snap.Counters)
	}
	if snap.Counters["llm.calls.rejected.m"] != 2 {
		t.Fatalf("rejected counter = %v, want 2", snap.Counters)
	}
	if snap.Gauges["llm.breaker.state.m"] != int64(Closed) {
		t.Fatalf("state gauge = %v", snap.Gauges)
	}
}

func TestHalfOpenFailureReopens(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := &script{queue: []error{tempErr{}, tempErr{}, tempErr{}, tempErr{}, tempErr{}, tempErr{}, tempErr{}, tempErr{}}}
	r := Wrap(m, Config{Clock: clk, MaxAttempts: 1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second})
	r.Chat(nil, "hi") // failure 1
	r.Chat(nil, "hi") // failure 2 -> open
	if r.State() != Open {
		t.Fatalf("state = %v, want open", r.State())
	}
	clk.Advance(11 * time.Second)
	r.Chat(nil, "hi") // half-open trial fails -> re-open
	if r.State() != Open {
		t.Fatalf("state = %v, want re-opened", r.State())
	}
	want := []string{"closed->open", "open->half-open", "half-open->open"}
	got := r.Transitions()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		r := Wrap(&script{}, Config{Clock: clock.NewVirtual(time.Unix(0, 0)), Seed: seed})
		var out []time.Duration
		for k := 0; k < 8; k++ {
			out = append(out, r.backoff(k%3, tempErr{}))
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged for identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical backoff schedules")
	}
}

func TestBackoffCeilingGrowsAndCaps(t *testing.T) {
	r := Wrap(&script{}, Config{
		Clock:       clock.NewVirtual(time.Unix(0, 0)),
		BaseBackoff: 50 * time.Millisecond, MaxBackoff: 200 * time.Millisecond,
	})
	for k := 0; k < 20; k++ {
		ceiling := 50 * time.Millisecond << k
		if ceiling <= 0 || ceiling > 200*time.Millisecond {
			ceiling = 200 * time.Millisecond
		}
		if d := r.backoff(k, tempErr{}); d < 0 || d > ceiling {
			t.Fatalf("attempt %d: backoff %v outside [0, %v]", k, d, ceiling)
		}
	}
}
