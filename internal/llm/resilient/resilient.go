// Package resilient hardens the model transport against the failure modes
// of remote LLM APIs: it wraps any prompt.Model with typed error
// classification (Transient, RateLimited, Timeout, Permanent), capped
// retries with full-jitter exponential backoff, a per-call deadline, and a
// three-state circuit breaker (closed/open/half-open) per wrapped model.
// The clock and the jitter rng are injectable, so retry schedules, breaker
// cooldowns and whole chaos runs are deterministic under test. Every
// decision is observable through the telemetry registry:
//
//	llm.retries, llm.retries.<model>       counters, one per retried attempt
//	llm.backoff_ms                         histogram of backoff sleeps
//	llm.breaker.state.<model>              gauge: 0 closed, 1 open, 2 half-open
//	llm.breaker.opens, .opens.<model>      counters, closed/half-open -> open
//	llm.calls.failed.<class>               counters by error class
package resilient

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"rtecgen/internal/clock"
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// Class is the retry-relevant classification of a transport error.
type Class int

const (
	// Permanent errors cannot be cured by retrying (outages, auth failures,
	// malformed requests). They fail the call immediately.
	Permanent Class = iota
	// Transient errors are one-off and worth retrying with backoff.
	Transient
	// RateLimited errors carry (or imply) a retry-after hint.
	RateLimited
	// Timeout errors are calls that exceeded the per-call deadline.
	Timeout
)

// String returns the lower-case class name.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case RateLimited:
		return "ratelimited"
	case Timeout:
		return "timeout"
	default:
		return "permanent"
	}
}

// Retryable reports whether a class is worth another attempt.
func (c Class) Retryable() bool { return c != Permanent }

// retryAfterer is implemented by rate-limit errors carrying a server hint.
type retryAfterer interface{ RetryAfter() time.Duration }

// temporary is the net.Error idiom for one-off failures.
type temporary interface{ Temporary() bool }

// timeouter is the net.Error idiom for deadline failures.
type timeouter interface{ Timeout() bool }

// Classify maps an error onto its Class by structural inspection: a
// RetryAfter hint means RateLimited; Timeout()==true or unwrapping to
// context.DeadlineExceeded means Timeout; Temporary()==true means
// Transient; everything else — including breaker-open errors — is
// Permanent.
func Classify(err error) Class {
	if err == nil {
		return Permanent
	}
	var ra retryAfterer
	if errors.As(err, &ra) {
		return RateLimited
	}
	var to timeouter
	if errors.As(err, &to) && to.Timeout() {
		return Timeout
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Timeout
	}
	var tmp temporary
	if errors.As(err, &tmp) && tmp.Temporary() {
		return Transient
	}
	return Permanent
}

// State is a circuit-breaker state.
type State int

const (
	// Closed lets calls through, counting consecutive failures.
	Closed State = iota
	// Open fails calls fast until the cooldown elapses.
	Open
	// HalfOpen lets a trial call through; success closes the breaker,
	// failure re-opens it.
	HalfOpen
)

// String returns the conventional state name.
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerOpenError is returned (without touching the backend) while the
// breaker is open. It is Permanent: the caller should degrade, not retry.
type BreakerOpenError struct{ Model string }

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilient: %s: circuit breaker open", e.Model)
}

// Config parameterises the wrapper. The zero value is usable: every field
// falls back to the default documented on it.
type Config struct {
	// MaxAttempts is the total number of attempts per call, first try
	// included (default 4).
	MaxAttempts int
	// BaseBackoff is the first backoff ceiling; attempt k waits a uniform
	// random duration in [0, min(MaxBackoff, BaseBackoff<<k)) — "full
	// jitter" (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff ceiling (default 2s).
	MaxBackoff time.Duration
	// Deadline is the per-call deadline: replies that arrive later count as
	// timeouts, since the caller has already given up (the prompt.Model
	// interface carries no context to cancel with). Default 30s; <0
	// disables.
	Deadline time.Duration
	// BreakerThreshold is the number of consecutive failed attempts that
	// trips the breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// half-open trial call (default 30s).
	BreakerCooldown time.Duration
	// Clock is the time source (default the real clock).
	Clock clock.Clock
	// Seed seeds the jitter rng; the effective seed also mixes in the model
	// name, so fleets share a Config without sharing a schedule.
	Seed int64
	// Telemetry records retries, backoffs and breaker transitions; nil
	// disables metrics.
	Telemetry *telemetry.Telemetry
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Deadline == 0 {
		c.Deadline = 30 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	return c
}

// backoffBuckets are the llm.backoff_ms histogram bounds, in milliseconds
// (the default telemetry buckets are microsecond-scaled).
var backoffBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Resilient wraps one model with retries, deadline and a circuit breaker.
// With no faults and no configured telemetry it is pass-through: one
// attempt, no sleeps, the reply and error returned unchanged.
type Resilient struct {
	m   prompt.Model
	cfg Config

	mu          sync.Mutex
	rng         *rand.Rand
	state       State
	failures    int // consecutive failed attempts while closed
	openedAt    time.Time
	transitions []string
}

// Wrap hardens a model with the given configuration.
func Wrap(m prompt.Model, cfg Config) *Resilient {
	cfg = cfg.withDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|resilient|%s", cfg.Seed, m.Name())
	r := &Resilient{m: m, cfg: cfg, rng: rand.New(rand.NewSource(int64(h.Sum64())))}
	cfg.Telemetry.Gauge("llm.breaker.state." + m.Name()).Set(int64(Closed))
	return r
}

// Name implements prompt.Model.
func (r *Resilient) Name() string { return r.m.Name() }

// State returns the breaker's current state.
func (r *Resilient) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Transitions returns the breaker's state transitions so far, oldest first,
// as "from->to" strings — the deterministic record chaos tests assert on.
func (r *Resilient) Transitions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.transitions...)
}

// setState records a breaker transition with its metrics.
func (r *Resilient) setState(to State) {
	from := r.state
	if from == to {
		return
	}
	r.state = to
	r.transitions = append(r.transitions, from.String()+"->"+to.String())
	name := r.m.Name()
	r.cfg.Telemetry.Gauge("llm.breaker.state." + name).Set(int64(to))
	if to == Open {
		r.openedAt = r.cfg.Clock.Now()
		r.cfg.Telemetry.Counter("llm.breaker.opens").Inc()
		r.cfg.Telemetry.Counter("llm.breaker.opens." + name).Inc()
		r.cfg.Telemetry.Logger().Warn("circuit breaker opened",
			"component", "resilient", "model", name, "failures", r.failures)
	}
}

// admit decides whether an attempt may reach the backend.
func (r *Resilient) admit() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case Open:
		if r.cfg.Clock.Now().Sub(r.openedAt) < r.cfg.BreakerCooldown {
			return &BreakerOpenError{Model: r.m.Name()}
		}
		r.setState(HalfOpen)
	}
	return nil
}

// onSuccess resets the failure run and closes a half-open breaker.
func (r *Resilient) onSuccess() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures = 0
	if r.state == HalfOpen {
		r.setState(Closed)
	}
}

// onFailure counts a failed attempt and trips the breaker when the run
// reaches the threshold (a half-open trial failure re-opens immediately).
func (r *Resilient) onFailure() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures++
	if r.state == HalfOpen || (r.state == Closed && r.failures >= r.cfg.BreakerThreshold) {
		r.setState(Open)
	}
}

// backoff returns the full-jitter backoff for attempt k (0-based).
func (r *Resilient) backoff(attempt int, err error) time.Duration {
	ceiling := r.cfg.BaseBackoff << attempt
	if ceiling > r.cfg.MaxBackoff || ceiling <= 0 {
		ceiling = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(ceiling) + 1))
	r.mu.Unlock()
	var ra retryAfterer
	if errors.As(err, &ra) && ra.RetryAfter() > d {
		d = ra.RetryAfter()
	}
	return d
}

// Chat implements prompt.Model with retries, deadline and breaker.
func (r *Resilient) Chat(history []prompt.Message, user string) (string, error) {
	tel := r.cfg.Telemetry
	name := r.m.Name()
	var err error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if aerr := r.admit(); aerr != nil {
			tel.Counter("llm.calls.rejected." + name).Inc()
			return "", aerr
		}
		start := r.cfg.Clock.Now()
		var reply string
		reply, err = r.m.Chat(history, user)
		elapsed := r.cfg.Clock.Now().Sub(start)
		if err == nil && r.cfg.Deadline > 0 && elapsed > r.cfg.Deadline {
			// The reply arrived after the caller's deadline: too late to use.
			err = fmt.Errorf("resilient: %s: reply after %v deadline: %w",
				name, r.cfg.Deadline, context.DeadlineExceeded)
		}
		if err == nil {
			r.onSuccess()
			return reply, nil
		}
		r.onFailure()
		class := Classify(err)
		tel.Counter("llm.calls.failed." + class.String()).Inc()
		if !class.Retryable() || attempt+1 >= r.cfg.MaxAttempts {
			break
		}
		d := r.backoff(attempt, err)
		tel.Counter("llm.retries").Inc()
		tel.Counter("llm.retries." + name).Inc()
		if tel != nil {
			tel.Registry.Histogram("llm.backoff_ms", backoffBuckets).Observe(float64(d.Milliseconds()))
		}
		tel.Logger().Debug("retrying model call",
			"component", "resilient", "model", name, "attempt", attempt+1,
			"class", class.String(), "backoff_ms", d.Milliseconds())
		r.cfg.Clock.Sleep(d)
	}
	return "", fmt.Errorf("resilient: %s: giving up: %w", name, err)
}
