// Package fault is a deterministic, seedable fault injector for the model
// transport: it wraps any prompt.Model and reproduces the failure modes of
// remote LLM APIs — transient errors, rate limits with a retry-after hint,
// timeouts (hangs, simulated through the injectable clock), truncated and
// garbled replies, and a permanent outage after N calls. Faults are sampled
// from a per-model rng seeded by (seed, model name), so a whole chaos run
// is reproducible from the seed alone, and every injected fault is counted
// on the telemetry registry (llm.fault.injected and
// llm.fault.injected.<kind>.<model>).
package fault

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"rtecgen/internal/clock"
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// Profile holds the per-call fault probabilities of one simulated transport.
// At most one fault fires per call: a single uniform draw is partitioned by
// the cumulative probabilities, in the field order below. The zero Profile
// injects nothing.
type Profile struct {
	Transient float64 // one-off API error (HTTP 500/529 class)
	RateLimit float64 // rejection carrying a retry-after hint (HTTP 429 class)
	Timeout   float64 // hang exceeding any reasonable deadline
	Truncate  float64 // reply cut mid-rule (connection dropped mid-stream)
	Garble    float64 // reply corrupted into non-RTEC text

	// OutageAfter, when positive, fails every call after the first N with a
	// permanent OutageError — the backend going down for good mid-run.
	OutageAfter int
	// RetryAfter is the hint attached to rate-limit errors.
	RetryAfter time.Duration
	// HangFor is the (virtual) time a timeout fault consumes before failing.
	HangFor time.Duration
}

// Zero reports whether the profile injects no faults at all.
func (p Profile) Zero() bool {
	return p.Transient == 0 && p.RateLimit == 0 && p.Timeout == 0 &&
		p.Truncate == 0 && p.Garble == 0 && p.OutageAfter == 0
}

// Plan assigns fault profiles to models: PerModel overrides by model name,
// Default applies to everyone else.
type Plan struct {
	Default  Profile
	PerModel map[string]Profile
}

// For returns the profile for a model name.
func (p Plan) For(model string) Profile {
	if prof, ok := p.PerModel[model]; ok {
		return prof
	}
	return p.Default
}

// plans are the named fault plans selectable with -faults. "mixed" is the
// chaos-gate plan: every model sees probabilistic transport faults, and
// Gemma-2 (the weakest model of the study) additionally suffers a permanent
// outage early enough that its circuit breaker is guaranteed to trip.
var plans = map[string]Plan{
	"none": {},
	"transient": {
		Default: Profile{Transient: 0.2},
	},
	"ratelimit": {
		Default: Profile{RateLimit: 0.15, RetryAfter: 250 * time.Millisecond},
	},
	"flaky": {
		Default: Profile{Transient: 0.1, Timeout: 0.05, Truncate: 0.05, HangFor: 2 * time.Second},
	},
	"mixed": {
		Default: Profile{
			Transient: 0.10, RateLimit: 0.06, Timeout: 0.04, Truncate: 0.04, Garble: 0.04,
			RetryAfter: 250 * time.Millisecond, HangFor: 2 * time.Second,
		},
		PerModel: map[string]Profile{
			"Gemma-2": {
				Transient: 0.10, RateLimit: 0.06, Timeout: 0.04, Truncate: 0.04, Garble: 0.04,
				RetryAfter: 250 * time.Millisecond, HangFor: 2 * time.Second,
				OutageAfter: 9,
			},
		},
	},
	"outage": {
		Default: Profile{OutageAfter: 6},
	},
}

// PlanByName returns a named fault plan.
func PlanByName(name string) (Plan, bool) {
	p, ok := plans[name]
	return p, ok
}

// Names lists the selectable plan names.
func Names() []string {
	return []string{"none", "transient", "ratelimit", "flaky", "mixed", "outage"}
}

// TransientError is a one-off failure; Temporary marks it retryable (the
// net.Error idiom the resilience layer classifies on).
type TransientError struct{ Model string }

func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: %s: transient transport error", e.Model)
}
func (e *TransientError) Temporary() bool { return true }

// RateLimitError is a rejection with a retry-after hint.
type RateLimitError struct {
	Model string
	After time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("fault: %s: rate limited", e.Model)
}
func (e *RateLimitError) Temporary() bool           { return true }
func (e *RateLimitError) RetryAfter() time.Duration { return e.After }

// TimeoutError is a hang that exceeded the caller's patience. It unwraps to
// context.DeadlineExceeded so errors.Is classification works.
type TimeoutError struct {
	Model   string
	Elapsed time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("fault: %s: call timed out", e.Model)
}
func (e *TimeoutError) Timeout() bool { return true }
func (e *TimeoutError) Unwrap() error { return context.DeadlineExceeded }

// OutageError is a permanent backend failure: retrying cannot help.
type OutageError struct {
	Model string
	Calls int
}

func (e *OutageError) Error() string {
	return fmt.Sprintf("fault: %s: backend outage (permanent)", e.Model)
}

// Injector wraps a model with a fault profile. It implements prompt.Model;
// calls are serialised so the rng draw order — and therefore the whole fault
// schedule — is deterministic for a given seed.
type Injector struct {
	m   prompt.Model
	p   Profile
	clk clock.Clock
	tel *telemetry.Telemetry

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
}

// Inject wraps m with profile p. The rng is seeded from (seed, model name),
// so each model has an independent but reproducible fault schedule. clk may
// be nil (real clock), tel may be nil (no metrics).
func Inject(m prompt.Model, p Profile, seed int64, clk clock.Clock, tel *telemetry.Telemetry) *Injector {
	if clk == nil {
		clk = clock.Real()
	}
	return &Injector{m: m, p: p, clk: clk, tel: tel, rng: rand.New(rand.NewSource(seedFor(seed, m.Name())))}
}

// seedFor derives a per-model rng seed from the run seed and the model name.
func seedFor(seed int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, name)
	return int64(h.Sum64())
}

// Name implements prompt.Model.
func (f *Injector) Name() string { return f.m.Name() }

// Calls returns how many Chat calls reached the injector so far.
func (f *Injector) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *Injector) count(kind string) {
	f.tel.Counter("llm.fault.injected").Inc()
	f.tel.Counter("llm.fault.injected." + kind + "." + f.m.Name()).Inc()
}

// Chat implements prompt.Model, sampling at most one fault per call.
func (f *Injector) Chat(history []prompt.Message, user string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	name := f.m.Name()
	if f.p.OutageAfter > 0 && f.calls > f.p.OutageAfter {
		f.count("outage")
		return "", &OutageError{Model: name, Calls: f.calls}
	}
	draw := f.rng.Float64()
	switch {
	case draw < f.p.Transient:
		f.count("transient")
		return "", &TransientError{Model: name}
	case draw < f.p.Transient+f.p.RateLimit:
		f.count("ratelimit")
		return "", &RateLimitError{Model: name, After: f.p.RetryAfter}
	case draw < f.p.Transient+f.p.RateLimit+f.p.Timeout:
		f.count("timeout")
		f.clk.Sleep(f.p.HangFor)
		return "", &TimeoutError{Model: name, Elapsed: f.p.HangFor}
	}
	reply, err := f.m.Chat(history, user)
	if err != nil {
		return reply, err
	}
	switch {
	case draw < f.p.Transient+f.p.RateLimit+f.p.Timeout+f.p.Truncate:
		f.count("truncate")
		return truncateReply(reply, f.rng), nil
	case draw < f.p.Transient+f.p.RateLimit+f.p.Timeout+f.p.Truncate+f.p.Garble:
		f.count("garble")
		return garbleReply(reply, f.rng), nil
	}
	return reply, nil
}

// truncateReply cuts the reply at a byte offset in [25%, 75%) of its length,
// as a dropped connection would — possibly mid-rule or mid-rune.
func truncateReply(s string, rng *rand.Rand) string {
	if len(s) < 4 {
		return s
	}
	lo := len(s) / 4
	return s[:lo+rng.Intn(len(s)/2)]
}

// garbleReply corrupts a reply into text that no longer parses as RTEC,
// exercising the parser's error recovery. The corruption mode is sampled
// from the injector's rng, so it is reproducible.
func garbleReply(s string, rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		// Rule operator mangled: chunks still look like rules but fail to parse.
		return strings.ReplaceAll(s, ":-", ";-")
	case 1:
		// Closing parentheses lost in transit.
		return strings.ReplaceAll(s, ")", "")
	case 2:
		// Interleaved replacement characters, as a broken decoder produces.
		return strings.ReplaceAll(s, ",", "�,")
	default:
		// Assignment notation from some other formalism.
		return strings.ReplaceAll(s, ":-", ":=")
	}
}
