package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rtecgen/internal/clock"
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// canned is a minimal model that always replies with the same text.
type canned struct {
	name  string
	reply string
	calls int
}

func (c *canned) Name() string { return c.name }
func (c *canned) Chat(history []prompt.Message, user string) (string, error) {
	c.calls++
	return c.reply, nil
}

const cannedRules = `Answer:

initiatedAt(trawling(Vl)=true, T) :-
    happensAt(change_in_heading(Vl), T),
    holdsAt(withinArea(Vl, fishing)=true, T).

terminatedAt(trawling(Vl)=true, T) :-
    happensAt(gap_start(Vl), T).`

func TestZeroProfilePassThrough(t *testing.T) {
	m := &canned{name: "m", reply: cannedRules}
	inj := Inject(m, Profile{}, 7, nil, nil)
	for i := 0; i < 50; i++ {
		reply, err := inj.Chat(nil, "hi")
		if err != nil || reply != cannedRules {
			t.Fatalf("call %d: reply altered or failed: %v", i, err)
		}
	}
	if m.calls != 50 || inj.Calls() != 50 {
		t.Fatalf("calls = %d/%d, want 50/50", m.calls, inj.Calls())
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []string {
		m := &canned{name: "m", reply: cannedRules}
		inj := Inject(m, Profile{Transient: 0.2, RateLimit: 0.1, Truncate: 0.1, Garble: 0.1}, 42, nil, nil)
		var out []string
		for i := 0; i < 40; i++ {
			reply, err := inj.Chat(nil, "hi")
			if err != nil {
				out = append(out, "err:"+err.Error())
			} else {
				out = append(out, reply)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged across identically-seeded runs", i)
		}
	}
	// A different seed must produce a different schedule.
	m := &canned{name: "m", reply: cannedRules}
	inj := Inject(m, Profile{Transient: 0.2, RateLimit: 0.1, Truncate: 0.1, Garble: 0.1}, 43, nil, nil)
	diverged := false
	for i := 0; i < 40; i++ {
		reply, err := inj.Chat(nil, "hi")
		got := reply
		if err != nil {
			got = "err:" + err.Error()
		}
		if got != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestOutageAfterN(t *testing.T) {
	m := &canned{name: "m", reply: cannedRules}
	inj := Inject(m, Profile{OutageAfter: 3}, 7, nil, nil)
	for i := 0; i < 3; i++ {
		if _, err := inj.Chat(nil, "hi"); err != nil {
			t.Fatalf("call %d failed before outage: %v", i+1, err)
		}
	}
	for i := 0; i < 5; i++ {
		_, err := inj.Chat(nil, "hi")
		var oe *OutageError
		if !errors.As(err, &oe) {
			t.Fatalf("post-outage call %d: err = %v, want OutageError", i+1, err)
		}
	}
	if m.calls != 3 {
		t.Fatalf("backend saw %d calls, want 3 (outage must not reach it)", m.calls)
	}
}

func TestTimeoutAdvancesClockAndClassifies(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := &canned{name: "m", reply: cannedRules}
	inj := Inject(m, Profile{Timeout: 1.0, HangFor: 2 * time.Second}, 7, clk, nil)
	_, err := inj.Chat(nil, "hi")
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TimeoutError", err)
	}
	if got := clk.Now(); !got.Equal(time.Unix(2, 0)) {
		t.Fatalf("virtual clock = %v, want +2s (the hang must consume time)", got)
	}
}

func TestRateLimitCarriesHint(t *testing.T) {
	m := &canned{name: "m", reply: cannedRules}
	inj := Inject(m, Profile{RateLimit: 1.0, RetryAfter: 250 * time.Millisecond}, 7, nil, nil)
	_, err := inj.Chat(nil, "hi")
	var rl interface{ RetryAfter() time.Duration }
	if !errors.As(err, &rl) || rl.RetryAfter() != 250*time.Millisecond {
		t.Fatalf("err = %v, want rate-limit error with 250ms hint", err)
	}
}

// TestCorruptedRepliesExerciseParserRecovery feeds every truncation and
// garbling mode through prompt.ParseResponse: the parser must recover with
// recorded errors or dropped chunks, never panic.
func TestCorruptedRepliesExerciseParserRecovery(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, p := range []Profile{{Truncate: 1.0}, {Garble: 1.0}} {
			m := &canned{name: "m", reply: cannedRules}
			inj := Inject(m, p, seed, nil, nil)
			reply, err := inj.Chat(nil, "hi")
			if err != nil {
				t.Fatalf("reply fault returned error: %v", err)
			}
			if reply == cannedRules && p.Garble == 1.0 {
				t.Fatal("garble left the reply untouched")
			}
			clauses, errs := prompt.ParseResponse(reply)
			// Corruption must lose information: fewer clauses or parse errors.
			if len(clauses) == 2 && len(errs) == 0 && reply != cannedRules {
				t.Fatalf("seed %d: corrupted reply still parsed cleanly:\n%s", seed, reply)
			}
		}
	}
}

func TestFaultMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil, nil)
	m := &canned{name: "m", reply: cannedRules}
	inj := Inject(m, Profile{Transient: 1.0}, 7, nil, tel)
	for i := 0; i < 4; i++ {
		inj.Chat(nil, "hi")
	}
	snap := reg.Snapshot()
	if snap.Counters["llm.fault.injected"] != 4 || snap.Counters["llm.fault.injected.transient.m"] != 4 {
		t.Fatalf("fault counters wrong: %v", snap.Counters)
	}
}

func TestPlansAndNames(t *testing.T) {
	for _, n := range Names() {
		if _, ok := PlanByName(n); !ok {
			t.Errorf("named plan %q missing", n)
		}
	}
	if _, ok := PlanByName("nosuch"); ok {
		t.Error("unknown plan resolved")
	}
	if p, _ := PlanByName("none"); !p.Default.Zero() {
		t.Error("plan none must inject nothing")
	}
	mixed, _ := PlanByName("mixed")
	if mixed.For("Gemma-2").OutageAfter == 0 {
		t.Error("mixed plan must include the Gemma-2 outage (the breaker-trip guarantee)")
	}
	if mixed.For("o1").OutageAfter != 0 {
		t.Error("mixed plan must not outage other models")
	}
	if mixed.For("o1").Zero() {
		t.Error("mixed default profile must inject faults")
	}
}

func TestGarbleModesBreakRTEC(t *testing.T) {
	// Every mode must stop at least part of the text from parsing as the
	// original two clauses.
	for mode := 0; mode < 4; mode++ {
		s := cannedRules
		var out string
		switch mode {
		case 0:
			out = strings.ReplaceAll(s, ":-", ";-")
		case 1:
			out = strings.ReplaceAll(s, ")", "")
		case 2:
			out = strings.ReplaceAll(s, ",", "�,")
		default:
			out = strings.ReplaceAll(s, ":-", ":=")
		}
		clauses, _ := prompt.ParseResponse(out)
		if len(clauses) == 2 {
			t.Errorf("garble mode %d: still parsed both clauses: %s", mode, out)
		}
	}
}

func TestSeedForStableAcrossModels(t *testing.T) {
	if seedFor(7, "a") == seedFor(7, "b") {
		t.Error("different models share a fault schedule seed")
	}
	if seedFor(7, "a") != seedFor(7, "a") {
		t.Error("seed derivation is not stable")
	}
	// Guard against accidental formatting collisions, e.g. (71,"x") vs (7,"1x").
	if seedFor(71, "x") == seedFor(7, "1x") {
		t.Error(fmt.Sprint("seed collision between (71,x) and (7,1x)"))
	}
}
