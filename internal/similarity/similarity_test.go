package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-4 }

// TestGroundDistancePaperExample42 reproduces Example 4.2:
// d(happensAt(entersArea(v42,a1),23), happensAt(inArea(v42,a1),23)) = 0.25.
func TestGroundDistancePaperExample42(t *testing.T) {
	e1 := parser.MustParseTerm("happensAt(entersArea(v42, a1), 23)")
	e2 := parser.MustParseTerm("happensAt(inArea(v42, a1), 23)")
	if d := GroundDistance(e1, e2); !approx(d, 0.25) {
		t.Fatalf("d(e1,e2) = %v, want 0.25", d)
	}
}

func TestGroundDistanceBranches(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"a", "a", 0},                             // identical constants
		{"a", "b", 1},                             // different constants
		{"23", "23", 0},                           // identical numbers
		{"23", "23.0", 0},                         // numeric identity across kinds
		{"23", "24", 1},                           // different numbers
		{"f(a)", "g(a)", 1},                       // different functor
		{"f(a)", "f(a, b)", 1},                    // different arity
		{"f(a)", "a", 1},                          // compound vs constant
		{"f(a, b)", "f(a, b)", 0},                 // identical compounds
		{"f(a, b)", "f(a, c)", 0.25},              // one arg off: 1/(2*2)
		{"f(a, b)", "f(c, d)", 0.5},               // both args off: 2/(2*2)
		{"f(g(a))", "f(g(b))", 0.25},              // nested: (1/2)*(1/2)
		{"[a, b]", "[a, b]", 0},                   // lists as expressions
		{"[a, b]", "[a, c]", 0.25},                //
		{"[a]", "[a, b]", 1},                      // length mismatch
		{`"x"`, `"x"`, 0},                         // strings
		{`"x"`, `"y"`, 1},                         //
		{"f(a, b, c, d)", "f(a, b, c, x)", 0.125}, // 1/(2*4)
	}
	for _, c := range cases {
		a := parser.MustParseTerm(c.a)
		b := parser.MustParseTerm(c.b)
		if d := GroundDistance(a, b); !approx(d, c.want) {
			t.Errorf("d(%s, %s) = %v, want %v", c.a, c.b, d, c.want)
		}
	}
}

// TestSetDistancePaperExample46 reproduces Examples 4.4 and 4.6:
// dE = 1/3 * (1 + 0.25) = 0.4167, similarity 0.5833.
func TestSetDistancePaperExample46(t *testing.T) {
	ea := []*lang.Term{
		parser.MustParseTerm("happensAt(entersArea(v42, a1), 23)"),
		parser.MustParseTerm("areaType(a1, fishing)"),
		parser.MustParseTerm("holdsAt(underway(v42)=true, 23)"),
	}
	eb := []*lang.Term{
		parser.MustParseTerm("areaType(a1, fishing)"),
		parser.MustParseTerm("happensAt(inArea(v42, a1), 23)"),
	}
	d, err := SetDistance(ea, eb)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, 0.4167) {
		t.Fatalf("dE = %v, want 0.4167", d)
	}
	s, err := SetSimilarity(ea, eb)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s, 0.5833) {
		t.Fatalf("similarity = %v, want 0.5833", s)
	}
	// The metric orientation is by size, so swapping arguments is identical.
	d2, err := SetDistance(eb, ea)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, d2) {
		t.Fatalf("asymmetric set distance: %v vs %v", d, d2)
	}
}

func TestSetDistanceEdgeCases(t *testing.T) {
	d, err := SetDistance(nil, nil)
	if err != nil || d != 0 {
		t.Fatalf("empty sets: %v, %v", d, err)
	}
	one := []*lang.Term{parser.MustParseTerm("a")}
	d, err = SetDistance(one, nil)
	if err != nil || d != 1 {
		t.Fatalf("one vs empty: %v, %v", d, err)
	}
	d, err = SetDistance(one, one)
	if err != nil || d != 0 {
		t.Fatalf("identical singletons: %v, %v", d, err)
	}
}

const rule1Src = `initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).`

// Rule (6): rule (1) with AreaID renamed to Area. Distance must be 0.
const rule6Src = `initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, Area), T),
    areaType(Area, AreaType).`

// Rule (7): rule (1) with the arguments of areaType swapped.
const rule7Src = `initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaType, AreaID).`

// TestRuleDistancePaperExample413 reproduces Example 4.13. The paper
// evaluates the sum 1/3*(0.015625 + 0 + 0.0625 + 0.5); we assert the exact
// value of that expression, 0.19271 (the paper's printed result 0.1667 is an
// arithmetic slip: the shown operands do not sum to 0.5).
func TestRuleDistancePaperExample413(t *testing.T) {
	r1 := parser.MustParseClause(rule1Src)
	r6 := parser.MustParseClause(rule6Src)
	r7 := parser.MustParseClause(rule7Src)

	d16, err := RuleDistance(r1, r6)
	if err != nil {
		t.Fatal(err)
	}
	if d16 != 0 {
		t.Fatalf("dr(r1, r6) = %v, want 0 (renaming invariance)", d16)
	}

	d17, err := RuleDistance(r1, r7)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.015625 + 0 + 0.0625 + 0.5) / 3
	if !approx(d17, want) {
		t.Fatalf("dr(r1, r7) = %v, want %v", d17, want)
	}
	if d17 <= 0 {
		t.Fatal("argument swap must yield a positive distance")
	}
}

func TestRuleDistanceHeadOnly(t *testing.T) {
	a := parser.MustParseClause("vessel(v1).")
	b := parser.MustParseClause("vessel(v1).")
	d, err := RuleDistance(a, b)
	if err != nil || d != 0 {
		t.Fatalf("identical facts: %v, %v", d, err)
	}
	c := parser.MustParseClause("vessel(v2).")
	d, err = RuleDistance(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, 0.5) { // heads f(a) vs f(b): 1/(2*1); M=0 so /1
		t.Fatalf("fact distance = %v, want 0.5", d)
	}
}

func TestRuleDistanceBodySizeMismatchPenalty(t *testing.T) {
	long := parser.MustParseClause(rule1Src)
	short := parser.MustParseClause(`initiatedAt(withinArea(Vl, AreaType)=true, T) :-
	    happensAt(entersArea(Vl, AreaID), T).`)
	d, err := RuleDistance(long, short)
	if err != nil {
		t.Fatal(err)
	}
	// Head: AreaType loses its areaType/2 instance in the short rule, and
	// AreaID likewise differs, so the head and happensAt condition each pay
	// a small variable-concept cost; the unmatched condition pays 1.
	if d <= 1.0/3-eps {
		t.Fatalf("dr = %v, want > 1/3 (unmatched condition + concept drift)", d)
	}
	if d >= 1 {
		t.Fatalf("dr = %v, want < 1", d)
	}
	// Symmetric.
	d2, err := RuleDistance(short, long)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, d2) {
		t.Fatalf("rule distance asymmetric: %v vs %v", d, d2)
	}
}

func TestRuleDistanceNegationMatters(t *testing.T) {
	pos := parser.MustParseClause(`initiatedAt(f(X)=true, T) :-
	    happensAt(e(X), T),
	    holdsAt(g(X)=true, T).`)
	neg := parser.MustParseClause(`initiatedAt(f(X)=true, T) :-
	    happensAt(e(X), T),
	    not holdsAt(g(X)=true, T).`)
	d, err := RuleDistance(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("negating a condition must increase distance")
	}
}

func TestDistanceEventDescriptions(t *testing.T) {
	edA, err := parser.ParseEventDescription(rule1Src + "\n" + rule6Src)
	if err != nil {
		t.Fatal(err)
	}
	// Same two rules, order swapped and variables renamed: distance 0.
	edB, err := parser.ParseEventDescription(rule6Src + "\n" + rule1Src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := EventDescriptionDistance(edA, edB)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("identical KBs modulo order/renaming: d = %v", d)
	}

	// Missing rule penalty: comparing {r1, r7-ish} against {r1} costs
	// (1/2)*(M-K) = 0.5 plus nothing for the matched rule.
	edC, err := parser.ParseEventDescription(rule1Src)
	if err != nil {
		t.Fatal(err)
	}
	d, err = EventDescriptionDistance(edA, edC)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, 0.5) {
		t.Fatalf("missing-rule distance = %v, want 0.5", d)
	}

	s, err := EventDescriptionSimilarity(edA, edC)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s, 0.5) {
		t.Fatalf("similarity = %v, want 0.5", s)
	}
}

func TestDistanceEmptyKBs(t *testing.T) {
	d, err := Distance(nil, nil)
	if err != nil || d != 0 {
		t.Fatalf("empty KBs: %v, %v", d, err)
	}
	r := []*lang.Clause{parser.MustParseClause(rule1Src)}
	d, err = Distance(r, nil)
	if err != nil || d != 1 {
		t.Fatalf("KB vs empty: %v, %v", d, err)
	}
}

// --- property-based tests -------------------------------------------------

// genGroundTerm builds a random ground term of bounded depth.
func genGroundTerm(r *rand.Rand, depth int) *lang.Term {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return lang.NewAtom(string(rune('a' + r.Intn(4))))
		case 1:
			return lang.NewInt(int64(r.Intn(5)))
		default:
			return lang.NewAtom("c")
		}
	}
	k := 1 + r.Intn(3)
	args := make([]*lang.Term, k)
	for i := range args {
		args[i] = genGroundTerm(r, depth-1)
	}
	return lang.NewCompound(string(rune('f'+r.Intn(3))), args...)
}

func TestPropGroundDistanceMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genGroundTerm(r, 3)
		b := genGroundTerm(r, 3)
		d := GroundDistance(a, b)
		if d < 0 || d > 1 {
			return false
		}
		if GroundDistance(a, a) != 0 {
			return false
		}
		return math.Abs(GroundDistance(a, b)-GroundDistance(b, a)) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSetDistanceRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		na, nb := r.Intn(5), r.Intn(5)
		ea := make([]*lang.Term, na)
		for i := range ea {
			ea[i] = genGroundTerm(r, 2)
		}
		eb := make([]*lang.Term, nb)
		for i := range eb {
			eb[i] = genGroundTerm(r, 2)
		}
		d, err := SetDistance(ea, eb)
		if err != nil || d < -eps || d > 1+eps {
			return false
		}
		dSelf, err := SetDistance(ea, ea)
		if err != nil || math.Abs(dSelf) > eps {
			return false
		}
		dSym, err := SetDistance(eb, ea)
		return err == nil && math.Abs(d-dSym) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropRuleRenamingInvariance(t *testing.T) {
	rules := []*lang.Clause{
		parser.MustParseClause(rule1Src),
		parser.MustParseClause(rule7Src),
		parser.MustParseClause(`holdsFor(underWay(Vessel)=true, I) :-
		    holdsFor(movingSpeed(Vessel)=below, I1),
		    holdsFor(movingSpeed(Vessel)=normal, I2),
		    union_all([I1, I2], I).`),
	}
	for _, r := range rules {
		renamed := r.RenameApart("Renamed")
		d, err := RuleDistance(r, renamed)
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Fatalf("renaming changed distance for %s: %v", r.Head, d)
		}
	}
}

func TestPropEventDescriptionSelfSimilarityOne(t *testing.T) {
	ed, err := parser.ParseEventDescription(rule1Src + "\n" + rule6Src + "\n" + rule7Src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := EventDescriptionSimilarity(ed, ed.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("self similarity = %v, want 1", s)
	}
}

// TestPropDistanceSymmetric: the event-description distance is symmetric by
// construction (orientation is chosen by size).
func TestPropDistanceSymmetric(t *testing.T) {
	pool := []*lang.Clause{
		parser.MustParseClause(rule1Src),
		parser.MustParseClause(rule6Src),
		parser.MustParseClause(rule7Src),
		parser.MustParseClause(`holdsFor(underWay(V)=true, I) :-
		    holdsFor(movingSpeed(V)=below, I1),
		    union_all([I1], I).`),
		parser.MustParseClause(`terminatedAt(withinArea(Vl, AreaType)=true, T) :-
		    happensAt(gap_start(Vl), T).`),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pick := func() []*lang.Clause {
			n := r.Intn(len(pool) + 1)
			out := make([]*lang.Clause, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, pool[r.Intn(len(pool))])
			}
			return out
		}
		a, b := pick(), pick()
		d1, err1 := Distance(a, b)
		d2, err2 := Distance(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(d1-d2) < eps && d1 >= -eps && d1 <= 1+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
