package similarity_test

import (
	"fmt"
	"log"

	"rtecgen/internal/parser"
	"rtecgen/internal/similarity"
)

// Example reproduces the paper's Example 4.2: the distance between two
// ground expressions differing in one event name.
func Example() {
	e1 := parser.MustParseTerm("happensAt(entersArea(v42, a1), 23)")
	e2 := parser.MustParseTerm("happensAt(inArea(v42, a1), 23)")
	fmt.Printf("%.2f\n", similarity.GroundDistance(e1, e2))
	// Output:
	// 0.25
}

// ExampleSimilarity scores a candidate event description against a gold
// standard (Definition 4.14): variable renaming is free, a missing rule
// costs its full share.
func ExampleSimilarity() {
	gold := parser.MustParseEventDescription(`
initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).

terminatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(leavesArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).
`)
	candidate := parser.MustParseEventDescription(`
initiatedAt(withinArea(V, Kind)=true, Time) :-
    happensAt(entersArea(V, Area), Time),
    areaType(Area, Kind).
`)
	s, err := similarity.Similarity(candidate.Rules(), gold.Rules())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f\n", s)
	// Output:
	// 0.50
}
