package similarity

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
)

// manyRules builds n structurally varied rules so the whole-description
// cost matrix exceeds minParallelCells.
func manyRules(t *testing.T, n int, prefix string) []*lang.Clause {
	t.Helper()
	var src strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&src,
			"initiatedAt(%s%d(X)=true, T) :- happensAt(start%d(X, a%d), T), holdsAt(base%d(X)=true, T).\n",
			prefix, i, i, i%3, i%5)
	}
	ed, err := parser.ParseEventDescription(src.String())
	if err != nil {
		t.Fatal(err)
	}
	return ed.Rules()
}

// withProcs raises GOMAXPROCS for the test so fillCost takes its parallel
// path even on a single-core runner.
func withProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestFillCostParallelMatchesSequential(t *testing.T) {
	const m, k = 40, 33
	dist := func(i, j int) float64 { return float64(i*31+j) / float64(m*k) }
	mk := func() [][]float64 {
		c := make([][]float64, m)
		for i := range c {
			c[i] = make([]float64, m)
		}
		return c
	}

	seq := mk()
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			seq[i][j] = dist(i, j)
		}
	}

	withProcs(t, 8)
	par := mk()
	fillCost(par, m, k, dist)
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, j, par[i][j], seq[i][j])
			}
		}
	}
}

func TestFillCostPropagatesPanic(t *testing.T) {
	withProcs(t, 8)
	const m, k = 32, 32
	cost := make([][]float64, m)
	for i := range cost {
		cost[i] = make([]float64, m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	fillCost(cost, m, k, func(i, j int) float64 {
		if i == 17 && j == 3 {
			panic("bad cell")
		}
		return 0
	})
}

// TestSimilarityParallelDeterministic: the headline metric is unchanged by
// the parallel cost fill, on rule sets big enough to cross the
// minParallelCells threshold.
func TestSimilarityParallelDeterministic(t *testing.T) {
	kb1 := manyRules(t, 24, "p")
	kb2 := manyRules(t, 20, "q")
	want, err := Similarity(kb1, kb2)
	if err != nil {
		t.Fatal(err)
	}
	withProcs(t, 8)
	for round := 0; round < 5; round++ {
		got, err := Similarity(kb1, kb2)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: parallel similarity %v, sequential %v", round, got, want)
		}
	}
}
