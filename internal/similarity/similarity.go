// Package similarity implements the paper's novel similarity metric for
// RTEC event descriptions (Section 4): a hierarchy of distance functions —
// ground expressions (Definition 4.1), sets of expressions via optimal
// assignment (Definitions 4.3 and 4.5), possibly non-ground expressions
// under variable-instance equivalence (Definition 4.11), rules (Definition
// 4.12) and whole event descriptions (Definition 4.14). The similarity
// between two objects with distance d is 1-d, and reflects the human effort
// required to correct an LLM-generated event description against a
// hand-crafted gold standard.
package similarity

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rtecgen/internal/hungarian"
	"rtecgen/internal/lang"
)

// GroundDistance computes the distance between two ground expressions per
// Definition 4.1: identical constants are at distance 0, compounds with the
// same functor and arity average their argument distances damped by 1/2,
// and everything else is at the maximum distance 1.
func GroundDistance(a, b *lang.Term) float64 {
	if a.IsConst() && b.IsConst() {
		if constEqual(a, b) {
			return 0
		}
		return 1
	}
	if sameShape(a, b) {
		k := len(a.Args)
		if k == 0 {
			return 0
		}
		var sum float64
		for i := range a.Args {
			sum += GroundDistance(a.Args[i], b.Args[i])
		}
		return sum / float64(2*k)
	}
	return 1
}

// constEqual compares two atomic constants: atoms by symbol, numbers
// numerically (so 23 and 23.0 denote the same time-point), strings by text.
func constEqual(a, b *lang.Term) bool {
	if na, ok := a.Number(); ok {
		nb, ok := b.Number()
		return ok && na == nb
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case lang.Atom:
		return a.Functor == b.Functor
	case lang.Str:
		return a.Text == b.Text
	}
	return false
}

// sameShape reports whether a and b are compounds (or lists) with matching
// functor and arity, the precondition of the recursive branch of the
// distance definitions. Lists match lists of the same length.
func sameShape(a, b *lang.Term) bool {
	if a.Kind == lang.Compound && b.Kind == lang.Compound {
		return a.Functor == b.Functor && len(a.Args) == len(b.Args)
	}
	if a.Kind == lang.List && b.Kind == lang.List {
		return len(a.Args) == len(b.Args)
	}
	return false
}

// assignmentDistance realises Definitions 4.3 and 4.5 generically: given a
// set of na items and a set of nb items with a pairwise distance function,
// it builds the square max(na,nb) cost matrix padded with zero columns for
// unmatched items, solves the optimal mapping with Kuhn-Munkres, and returns
// (1/M)((M-K) + sum of matched distances) where M >= K.
func assignmentDistance(na, nb int, dist func(i, j int) float64) (float64, error) {
	if na < nb {
		return assignmentDistance(nb, na, func(i, j int) float64 { return dist(j, i) })
	}
	m, k := na, nb
	if m == 0 {
		return 0, nil
	}
	cost := make([][]float64, m)
	for i := 0; i < m; i++ {
		cost[i] = make([]float64, m)
	}
	fillCost(cost, m, k, dist)
	_, total, err := hungarian.Solve(cost)
	if err != nil {
		return 0, err
	}
	return (float64(m-k) + total) / float64(m), nil
}

// minParallelCells is the matrix size below which the cost of spawning
// workers exceeds the cell computations; smaller matrices fill inline.
const minParallelCells = 256

// fillCost computes cost[i][j] = dist(i, j) for the m×k populated block,
// distributing rows over up to GOMAXPROCS workers. Every cell is a pure
// function of its indices, so the filled matrix — and with it the optimal
// assignment — is identical at any worker count. Panics raised by dist
// (Distance deliberately panics on impossible rule-distance failures) are
// re-raised on the calling goroutine.
func fillCost(cost [][]float64, m, k int, dist func(i, j int) float64) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 || m*k < minParallelCells {
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				cost[i][j] = dist(i, j)
			}
		}
		return
	}
	var (
		next    int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= m {
					return
				}
				for j := 0; j < k; j++ {
					cost[i][j] = dist(i, j)
				}
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// SetDistance computes the distance between two sets of ground expressions
// (Definition 4.5).
func SetDistance(ea, eb []*lang.Term) (float64, error) {
	return assignmentDistance(len(ea), len(eb), func(i, j int) float64 {
		return GroundDistance(ea[i], eb[j])
	})
}

// SetSimilarity is 1 - SetDistance.
func SetSimilarity(ea, eb []*lang.Term) (float64, error) {
	d, err := SetDistance(ea, eb)
	return 1 - d, err
}

// ExprDistance computes the distance between two possibly non-ground
// expressions (Definition 4.11). u1 is interpreted under the variable
// instance lists via of its enclosing rule, and u2 under vib: two variables
// are at distance 0 exactly when their instance lists coincide, i.e. they
// refer to the same concept in their respective rules.
func ExprDistance(u1, u2 *lang.Term, via, vib lang.VarInstances) float64 {
	if u1.Kind == lang.Var && u2.Kind == lang.Var {
		if lang.SameConcept(via, u1.Functor, vib, u2.Functor) {
			return 0
		}
		return 1
	}
	if u1.IsConst() && u2.IsConst() {
		if constEqual(u1, u2) {
			return 0
		}
		return 1
	}
	if sameShape(u1, u2) {
		k := len(u1.Args)
		if k == 0 {
			return 0
		}
		var sum float64
		for i := range u1.Args {
			sum += ExprDistance(u1.Args[i], u2.Args[i], via, vib)
		}
		return sum / float64(2*k)
	}
	return 1
}

// RuleDistance computes the distance between two rules (Definition 4.12):
// the heads are compared to each other directly, the bodies via the optimal
// assignment of their conditions, every unmatched condition is penalised by
// 1, and the total is normalised by M+1 where M is the size of the larger
// body.
func RuleDistance(r1, r2 *lang.Clause) (float64, error) {
	if len(r1.Body) < len(r2.Body) {
		r1, r2 = r2, r1
	}
	via := lang.InstancesOfRule(r1)
	vib := lang.InstancesOfRule(r2)
	m, k := len(r1.Body), len(r2.Body)
	headDist := ExprDistance(r1.Head, r2.Head, via, vib)
	if m == 0 {
		return headDist, nil
	}
	b1 := make([]*lang.Term, m)
	for i, l := range r1.Body {
		b1[i] = l.Term()
	}
	b2 := make([]*lang.Term, k)
	for j, l := range r2.Body {
		b2[j] = l.Term()
	}
	cost := make([][]float64, m)
	for i := 0; i < m; i++ {
		cost[i] = make([]float64, m)
		for j := 0; j < k; j++ {
			cost[i][j] = ExprDistance(b1[i], b2[j], via, vib)
		}
	}
	_, total, err := hungarian.Solve(cost)
	if err != nil {
		return 0, err
	}
	return (headDist + float64(m-k) + total) / float64(m+1), nil
}

// RuleSimilarity is 1 - RuleDistance.
func RuleSimilarity(r1, r2 *lang.Clause) (float64, error) {
	d, err := RuleDistance(r1, r2)
	return 1 - d, err
}

// Distance computes the distance between two event descriptions given as
// rule sets (Definition 4.14): the optimal assignment between the rules of
// the larger set KB1 (M rules) and the smaller KB2 (K rules), with every
// unmatched rule penalised by 1, normalised by M.
func Distance(kb1, kb2 []*lang.Clause) (float64, error) {
	return assignmentDistance(len(kb1), len(kb2), func(i, j int) float64 {
		d, err := RuleDistance(kb1[i], kb2[j])
		if err != nil {
			// RuleDistance only fails on a non-finite cost matrix, which
			// cannot arise from ExprDistance values in [0,1].
			panic(fmt.Sprintf("similarity: rule distance failed: %v", err))
		}
		return d
	})
}

// Similarity is 1 - Distance: the headline metric of the paper, in [0,1],
// where 1 means the generated event description needs no corrections.
func Similarity(kb1, kb2 []*lang.Clause) (float64, error) {
	d, err := Distance(kb1, kb2)
	return 1 - d, err
}

// EventDescriptionDistance compares the temporal rules of two parsed event
// descriptions (facts and declarations are not part of the metric).
func EventDescriptionDistance(ed1, ed2 *lang.EventDescription) (float64, error) {
	return Distance(ed1.Rules(), ed2.Rules())
}

// EventDescriptionSimilarity is 1 - EventDescriptionDistance.
func EventDescriptionSimilarity(ed1, ed2 *lang.EventDescription) (float64, error) {
	d, err := EventDescriptionDistance(ed1, ed2)
	return 1 - d, err
}
