package clock

import (
	"testing"
	"time"
)

func TestVirtualAdvancesOnSleep(t *testing.T) {
	start := time.Unix(100, 0)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", v.Now(), start)
	}
	v.Sleep(3 * time.Second)
	v.Advance(2 * time.Second)
	if got, want := v.Now(), start.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
	// Negative and zero durations must not move time backwards.
	v.Sleep(-time.Hour)
	v.Advance(0)
	if got, want := v.Now(), start.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("Now after no-op sleeps = %v, want %v", got, want)
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	c := Real()
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(t0) {
		t.Fatal("real clock did not advance across Sleep")
	}
}
