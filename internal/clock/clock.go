// Package clock provides the injectable time source shared by the
// fault-injection and resilience layers of the model transport. Production
// code uses the real clock; tests and seeded chaos runs use a virtual clock
// whose Sleep advances virtual time instantly, making backoff schedules,
// per-call deadlines and circuit-breaker cooldowns fully deterministic and
// free of real sleeping.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time surface the transport layers need: reading the
// current instant and blocking for a duration.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Real returns the wall clock (time.Now / time.Sleep).
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic clock: Now returns the virtual instant and
// Sleep advances it without blocking. Safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual { return &Virtual{now: start} }

// Now returns the current virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances virtual time by d (negative durations are ignored) and
// returns immediately.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves the virtual clock forward by d.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}
