package intervals

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func iv(s, e int64) Interval { return Interval{s, e} }

func TestNormalizeMergesAndSorts(t *testing.T) {
	got := Normalize([]Interval{iv(10, 12), iv(1, 3), iv(3, 5), iv(2, 4), iv(7, 7)})
	want := List{iv(1, 5), iv(10, 12)}
	if !got.Equal(want) {
		t.Fatalf("Normalize = %s, want %s", got, want)
	}
	if !got.IsNormalized() {
		t.Fatal("result not normalised")
	}
}

func TestUnion(t *testing.T) {
	a := List{iv(1, 5), iv(10, 15)}
	b := List{iv(4, 11), iv(20, 25)}
	got := Union(a, b)
	want := List{iv(1, 15), iv(20, 25)}
	if !got.Equal(want) {
		t.Fatalf("Union = %s, want %s", got, want)
	}
	if got := Union(); len(got) != 0 {
		t.Fatalf("Union() = %s, want empty", got)
	}
}

func TestIntersect(t *testing.T) {
	a := List{iv(1, 10), iv(20, 30)}
	b := List{iv(5, 25)}
	got := Intersect(a, b)
	want := List{iv(5, 10), iv(20, 25)}
	if !got.Equal(want) {
		t.Fatalf("Intersect = %s, want %s", got, want)
	}
	if got := Intersect(a, nil); len(got) != 0 {
		t.Fatalf("Intersect with empty = %s", got)
	}
	three := Intersect(List{iv(0, 100)}, List{iv(10, 50)}, List{iv(40, 60)})
	if !three.Equal(List{iv(40, 50)}) {
		t.Fatalf("three-way Intersect = %s", three)
	}
	if Intersect() != nil {
		t.Fatal("Intersect() must be nil")
	}
}

func TestRelativeComplement(t *testing.T) {
	base := List{iv(0, 10), iv(20, 30)}
	got := RelativeComplement(base, List{iv(3, 5)}, List{iv(8, 22)})
	want := List{iv(0, 3), iv(5, 8), iv(22, 30)}
	if !got.Equal(want) {
		t.Fatalf("RelativeComplement = %s, want %s", got, want)
	}
	if got := RelativeComplement(base); !got.Equal(base) {
		t.Fatalf("complement of nothing = %s", got)
	}
	if got := RelativeComplement(nil, base); len(got) != 0 {
		t.Fatalf("complement of empty base = %s", got)
	}
	// Subtraction covering everything.
	if got := RelativeComplement(base, List{iv(0, 40)}); len(got) != 0 {
		t.Fatalf("total subtraction = %s", got)
	}
}

func TestFromPointsBasicPairing(t *testing.T) {
	// Initiated at 3, terminated at 8: holds at 4..8, i.e. [4, 9).
	got := FromPoints([]int64{3}, []int64{8})
	want := List{iv(4, 9)}
	if !got.Equal(want) {
		t.Fatalf("FromPoints = %s, want %s", got, want)
	}
}

func TestFromPointsIgnoresIntermediateInitiations(t *testing.T) {
	got := FromPoints([]int64{3, 5, 6}, []int64{8, 20})
	want := List{iv(4, 9)}
	if !got.Equal(want) {
		t.Fatalf("FromPoints = %s, want %s", got, want)
	}
}

func TestFromPointsOpenEnded(t *testing.T) {
	got := FromPoints([]int64{3, 10}, []int64{5})
	want := List{iv(4, 6), iv(11, Inf)}
	if !got.Equal(want) {
		t.Fatalf("FromPoints = %s, want %s", got, want)
	}
}

func TestFromPointsSimultaneousInitTerm(t *testing.T) {
	// Termination at the initiation point yields no interval.
	if got := FromPoints([]int64{5}, []int64{5}); len(got) != 0 {
		t.Fatalf("FromPoints = %s, want empty", got)
	}
	// But a later initiation still opens a new interval.
	got := FromPoints([]int64{5, 7}, []int64{5, 9})
	want := List{iv(8, 10)}
	if !got.Equal(want) {
		t.Fatalf("FromPoints = %s, want %s", got, want)
	}
}

func TestFromPointsTerminationsBeforeFirstInitiation(t *testing.T) {
	got := FromPoints([]int64{10}, []int64{2, 4, 15})
	want := List{iv(11, 16)}
	if !got.Equal(want) {
		t.Fatalf("FromPoints = %s, want %s", got, want)
	}
	if got := FromPoints(nil, []int64{1, 2}); got != nil {
		t.Fatalf("FromPoints with no initiations = %s", got)
	}
}

func TestFromPointsUnsortedInput(t *testing.T) {
	got := FromPoints([]int64{10, 3}, []int64{15, 8})
	want := List{iv(4, 9), iv(11, 16)}
	if !got.Equal(want) {
		t.Fatalf("FromPoints = %s, want %s", got, want)
	}
}

func TestContains(t *testing.T) {
	l := List{iv(2, 5), iv(9, 12)}
	for _, c := range []struct {
		t    int64
		want bool
	}{{1, false}, {2, true}, {4, true}, {5, false}, {8, false}, {9, true}, {11, true}, {12, false}} {
		if got := l.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestDurationAndClip(t *testing.T) {
	l := List{iv(2, 5), iv(9, Inf)}
	if d := l.Duration(); d != Inf {
		t.Fatalf("Duration = %d, want Inf", d)
	}
	c := Clip(l, 3, 20)
	want := List{iv(3, 5), iv(9, 20)}
	if !c.Equal(want) {
		t.Fatalf("Clip = %s, want %s", c, want)
	}
	if d := c.Duration(); d != 13 {
		t.Fatalf("Duration = %d, want 13", d)
	}
}

func TestOverlapDuration(t *testing.T) {
	a := List{iv(0, 10)}
	b := List{iv(5, 30)}
	if d := OverlapDuration(a, b, 0, 100); d != 5 {
		t.Fatalf("OverlapDuration = %d, want 5", d)
	}
	if d := OverlapDuration(a, b, 8, 100); d != 2 {
		t.Fatalf("clipped OverlapDuration = %d, want 2", d)
	}
}

func TestIntervalString(t *testing.T) {
	if got := iv(4, 9).String(); got != "(3,8]" {
		t.Fatalf("String = %q", got)
	}
	if got := iv(4, Inf).String(); got != "(3,inf)" {
		t.Fatalf("String = %q", got)
	}
	if got := (List{iv(4, 9)}).String(); got != "[(3,8]]" {
		t.Fatalf("List String = %q", got)
	}
}

// --- property-based tests -------------------------------------------------

// genList builds a small pseudo-random normalised list from a seed.
func genList(r *rand.Rand) List {
	n := r.Intn(6)
	var ivs []Interval
	for i := 0; i < n; i++ {
		s := int64(r.Intn(100))
		e := s + int64(r.Intn(20))
		ivs = append(ivs, Interval{s, e})
	}
	return Normalize(ivs)
}

func TestPropUnionCommutativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genList(r), genList(r)
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		if !Union(a, a).Equal(a) {
			return false
		}
		return Union(a, b).IsNormalized()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropIntersectCommutativeAbsorption(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genList(r), genList(r)
		if !Intersect(a, b).Equal(Intersect(b, a)) {
			return false
		}
		// Absorption: a ∩ (a ∪ b) == a.
		if !Intersect(a, Union(a, b)).Equal(a) {
			return false
		}
		return Intersect(a, b).IsNormalized()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropComplementDisjointAndPartitions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genList(r), genList(r)
		diff := RelativeComplement(a, b)
		// diff and b are disjoint.
		if len(Intersect(diff, b)) != 0 {
			return false
		}
		// diff ∪ (a ∩ b) == a.
		if !Union(diff, Intersect(a, b)).Equal(a) {
			return false
		}
		return diff.IsNormalized()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropFromPointsMembershipSemantics(t *testing.T) {
	// Membership computed from the interval list must agree with a direct
	// simulation of the law of inertia over the time-line.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var ini, ter []int64
		for i := 0; i < r.Intn(8); i++ {
			ini = append(ini, int64(r.Intn(50)))
		}
		for i := 0; i < r.Intn(8); i++ {
			ter = append(ter, int64(r.Intn(50)))
		}
		l := FromPoints(ini, ter)
		if !l.IsNormalized() {
			return false
		}
		iniSet := map[int64]bool{}
		for _, p := range ini {
			iniSet[p] = true
		}
		terSet := map[int64]bool{}
		for _, p := range ter {
			terSet[p] = true
		}
		holds := false
		for tp := int64(0); tp <= 60; tp++ {
			if l.Contains(tp) != holds {
				return false
			}
			// Transition into tp+1: termination wins over initiation at the
			// same point (the pair produces an empty interval).
			switch {
			case terSet[tp]:
				holds = false
			case iniSet[tp]:
				holds = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
