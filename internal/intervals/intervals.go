// Package intervals implements RTEC's maximal-interval algebra: lists of
// disjoint, sorted intervals over an integer time-line, with the three
// interval-manipulation constructs of the language (union_all, intersect_all
// and relative_complement_all) and the construction of maximal intervals
// from initiation and termination time-points.
//
// Intervals are half-open [Start, End). RTEC's inertia semantics — a fluent
// initiated at Ts holds from Ts+1 and a fluent terminated at Te last holds at
// Te — therefore map an initiation/termination pair (Ts, Te) to the interval
// [Ts+1, Te+1). An interval that has not been terminated yet ("until further
// notice") has End = Inf.
package intervals

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Inf is the sentinel end-point of an open-ended interval.
const Inf int64 = math.MaxInt64

// Interval is a half-open span [Start, End) of integer time-points.
type Interval struct {
	Start, End int64
}

// Empty reports whether the interval contains no time-points.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Contains reports whether time-point t falls within the interval.
func (iv Interval) Contains(t int64) bool { return t >= iv.Start && t < iv.End }

// Duration returns the number of time-points in the interval; open-ended
// intervals report Inf.
func (iv Interval) Duration() int64 {
	if iv.End == Inf {
		return Inf
	}
	return iv.End - iv.Start
}

// String renders the interval in RTEC's (since, until] display convention,
// e.g. "(5,9]" for [6,10), and "(5,inf)" for an open interval.
func (iv Interval) String() string {
	if iv.End == Inf {
		return fmt.Sprintf("(%d,inf)", iv.Start-1)
	}
	return fmt.Sprintf("(%d,%d]", iv.Start-1, iv.End-1)
}

// List is a normalised list of maximal intervals: sorted by start, pairwise
// disjoint and non-adjacent.
type List []Interval

// String renders the list as e.g. "[(5,9], (12,20]]".
func (l List) String() string {
	parts := make([]string, len(l))
	for i, iv := range l {
		parts[i] = iv.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Normalize sorts ivs, drops empty intervals and merges overlapping or
// adjacent ones, returning a fresh normalised List.
func Normalize(ivs []Interval) List {
	work := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			work = append(work, iv)
		}
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Start != work[j].Start {
			return work[i].Start < work[j].Start
		}
		return work[i].End < work[j].End
	})
	var out List
	for _, iv := range work {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// IsNormalized reports whether l is sorted, non-empty-element and
// non-adjacent — the invariant all exported operations preserve.
func (l List) IsNormalized() bool {
	for i, iv := range l {
		if iv.Empty() {
			return false
		}
		if i > 0 && iv.Start <= l[i-1].End {
			return false
		}
	}
	return true
}

// Contains reports whether any interval of l contains t.
func (l List) Contains(t int64) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i].End > t })
	return i < len(l) && l[i].Contains(t)
}

// Duration returns the total number of time-points covered by l; Inf if any
// interval is open-ended.
func (l List) Duration() int64 {
	var total int64
	for _, iv := range l {
		if iv.End == Inf {
			return Inf
		}
		total += iv.Duration()
	}
	return total
}

// Clone returns a copy of l.
func (l List) Clone() List {
	out := make(List, len(l))
	copy(out, l)
	return out
}

// Equal reports element-wise equality.
func (l List) Equal(o List) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if l[i] != o[i] {
			return false
		}
	}
	return true
}

// normalizeInPlace sorts all, drops empty intervals and merges overlapping
// or adjacent ones in place, returning the shortened slice. It is the
// allocation-free core of Normalize for callers that own the buffer.
func normalizeInPlace(all []Interval) []Interval {
	sort.Slice(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].End < all[j].End
	})
	w := 0
	for _, iv := range all {
		if iv.Empty() {
			continue
		}
		if w > 0 && iv.Start <= all[w-1].End {
			if iv.End > all[w-1].End {
				all[w-1].End = iv.End
			}
			continue
		}
		all[w] = iv
		w++
	}
	return all[:w]
}

// Union returns the union of the given lists (union_all).
func Union(lists ...List) List {
	nonEmpty := 0
	var single List
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty++
			single = l
		}
	}
	switch nonEmpty {
	case 0:
		return nil
	case 1:
		if single.IsNormalized() {
			return single.Clone()
		}
		return Normalize(single)
	}
	sp := getIvScratch()
	all := (*sp)[:0]
	for _, l := range lists {
		all = append(all, l...)
	}
	all = normalizeInPlace(all)
	var out List
	if len(all) > 0 {
		out = make(List, len(all))
		copy(out, all)
	}
	*sp = all
	putIvScratch(sp)
	return out
}

// Intersect returns the intersection of the given lists (intersect_all).
// With no arguments it returns nil; a single list is returned as a copy.
func Intersect(lists ...List) List {
	if len(lists) == 0 {
		return nil
	}
	out := lists[0].Clone()
	for _, l := range lists[1:] {
		out = intersect2(out, l)
		if len(out) == 0 {
			return out
		}
	}
	return out
}

func intersect2(a, b List) List {
	var out List
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max64(a[i].Start, b[j].Start)
		hi := min64(a[i].End, b[j].End)
		if lo < hi {
			out = append(out, Interval{lo, hi})
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// RelativeComplement returns base minus the union of subtract
// (relative_complement_all).
func RelativeComplement(base List, subtract ...List) List {
	// The subtrahend union is transient: build it in a pooled scratch
	// buffer instead of allocating a fresh List per call. A single
	// normalised subtrahend is used directly.
	var sub []Interval
	var sp *[]Interval
	nonEmpty := 0
	var single List
	for _, l := range subtract {
		if len(l) > 0 {
			nonEmpty++
			single = l
		}
	}
	switch {
	case nonEmpty == 1 && single.IsNormalized():
		sub = single
	case nonEmpty > 0:
		sp = getIvScratch()
		all := (*sp)[:0]
		for _, l := range subtract {
			all = append(all, l...)
		}
		sub = normalizeInPlace(all)
		defer func() {
			*sp = sub
			putIvScratch(sp)
		}()
	}
	var out List
	j := 0
	for _, iv := range base {
		cur := iv.Start
		for j < len(sub) && sub[j].End <= cur {
			j++
		}
		k := j
		for k < len(sub) && sub[k].Start < iv.End {
			if sub[k].Start > cur {
				out = append(out, Interval{cur, sub[k].Start})
			}
			if sub[k].End > cur {
				cur = sub[k].End
			}
			k++
		}
		if cur < iv.End {
			out = append(out, Interval{cur, iv.End})
		}
	}
	return out
}

// FromPoints computes the maximal intervals of a simple FVP from its
// initiation and termination time-points, per RTEC semantics: each
// initiation Ts is matched with the first termination Te >= Ts, intermediate
// initiations are absorbed, and the resulting interval is [Ts+1, Te+1)
// (empty when Te == Ts). An unmatched initiation yields an open interval.
// The inputs need not be sorted or duplicate-free.
func FromPoints(initiations, terminations []int64) List {
	if len(initiations) == 0 {
		return nil
	}
	ip, tp := getI64Scratch(), getI64Scratch()
	ini := append((*ip)[:0], initiations...)
	ter := append((*tp)[:0], terminations...)
	sort.Slice(ini, func(i, j int) bool { return ini[i] < ini[j] })
	sort.Slice(ter, func(i, j int) bool { return ter[i] < ter[j] })
	sp := getIvScratch()
	work := (*sp)[:0]
	j := 0
	for i := 0; i < len(ini); {
		ts := ini[i]
		for j < len(ter) && ter[j] < ts {
			j++
		}
		if j == len(ter) {
			work = append(work, Interval{ts + 1, Inf})
			break
		}
		te := ter[j]
		if te > ts { // te == ts produces an empty interval: skip
			work = append(work, Interval{ts + 1, te + 1})
		}
		// Absorb every initiation at or before the matched termination.
		for i < len(ini) && ini[i] <= te {
			i++
		}
	}
	work = normalizeInPlace(work)
	var out List
	if len(work) > 0 {
		out = make(List, len(work))
		copy(out, work)
	}
	*ip, *tp, *sp = ini, ter, work
	putI64Scratch(ip)
	putI64Scratch(tp)
	putIvScratch(sp)
	return out
}

// Clip restricts l to the window [start, end), turning open-ended intervals
// into intervals ending at the window end.
func Clip(l List, start, end int64) List {
	var out List
	for _, iv := range l {
		lo := max64(iv.Start, start)
		hi := min64(iv.End, end)
		if lo < hi {
			out = append(out, Interval{lo, hi})
		}
	}
	return out
}

// OverlapDuration returns the total duration of the intersection of a and b,
// clipped to [start, end) first so open intervals contribute finitely.
func OverlapDuration(a, b List, start, end int64) int64 {
	return Intersect(Clip(a, start, end), Clip(b, start, end)).Duration()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
