package intervals

import (
	"sync"
	"sync/atomic"
)

// Scratch-buffer pools for the interval algebra. Union, RelativeComplement
// and FromPoints are the hottest allocation sites of the recognition engine:
// every one of them needs a transient buffer that used to be allocated per
// call. The pools recycle those buffers across calls (and across windows);
// the cumulative get/miss counters feed the engine's telemetry so cache
// effectiveness is observable per run.

// maxPooledCap bounds the capacity of a recycled buffer: pathological runs
// must not pin arbitrarily large slices in the pool.
const maxPooledCap = 1 << 14

var (
	poolGets   atomic.Int64
	poolMisses atomic.Int64

	ivPool = sync.Pool{New: func() any {
		poolMisses.Add(1)
		s := make([]Interval, 0, 64)
		return &s
	}}
	i64Pool = sync.Pool{New: func() any {
		poolMisses.Add(1)
		s := make([]int64, 0, 64)
		return &s
	}}
)

func getIvScratch() *[]Interval {
	poolGets.Add(1)
	return ivPool.Get().(*[]Interval)
}

func putIvScratch(p *[]Interval) {
	if cap(*p) > maxPooledCap {
		return
	}
	*p = (*p)[:0]
	ivPool.Put(p)
}

func getI64Scratch() *[]int64 {
	poolGets.Add(1)
	return i64Pool.Get().(*[]int64)
}

func putI64Scratch(p *[]int64) {
	if cap(*p) > maxPooledCap {
		return
	}
	*p = (*p)[:0]
	i64Pool.Put(p)
}

// PoolStats returns the cumulative scratch-pool gets and misses since
// process start. Hits are gets minus misses.
func PoolStats() (gets, misses int64) {
	return poolGets.Load(), poolMisses.Load()
}
