package toolvet

import (
	"strings"
	"testing"
)

func check(t *testing.T, name, src string) []Finding {
	t.Helper()
	fs, err := CheckSource(name, []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWallClockCallFlagged(t *testing.T) {
	fs := check(t, "a.go", `package a
import "time"
func f() time.Time { return time.Now() }
func g() { time.Sleep(time.Second) }
`)
	if len(fs) != 2 || fs[0].Rule != "wallclock" || fs[1].Rule != "wallclock" {
		t.Fatalf("got %v", fs)
	}
	if fs[0].Line != 3 || fs[1].Line != 4 {
		t.Fatalf("wrong positions: %v", fs)
	}
}

func TestWallClockReferenceFlagged(t *testing.T) {
	fs := check(t, "a.go", `package a
import "time"
var now = time.Now
`)
	if len(fs) != 1 || fs[0].Rule != "wallclock" {
		t.Fatalf("passing time.Now as a value must be flagged: %v", fs)
	}
}

func TestBenignTimeUsageClean(t *testing.T) {
	fs := check(t, "a.go", `package a
import "time"
func f(d time.Duration) time.Time { var t time.Time; return t.Add(d) }
`)
	if len(fs) != 0 {
		t.Fatalf("benign time usage flagged: %v", fs)
	}
}

func TestUnseededRandFlaggedSeededAllowed(t *testing.T) {
	fs := check(t, "a.go", `package a
import "math/rand"
func f() int { return rand.Intn(6) }
func g(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
func h(r *rand.Rand) float64 { return r.Float64() }
`)
	if len(fs) != 1 || fs[0].Rule != "unseededrand" || fs[0].Line != 3 {
		t.Fatalf("got %v", fs)
	}
}

func TestAliasedImports(t *testing.T) {
	fs := check(t, "a.go", `package a
import (
	stdtime "time"
	mrand "math/rand"
)
func f() stdtime.Time { return stdtime.Now() }
func g() int { return mrand.Int() }
`)
	if len(fs) != 2 {
		t.Fatalf("aliased imports must still be flagged: %v", fs)
	}
}

func TestShadowedNameNotFlagged(t *testing.T) {
	fs := check(t, "a.go", `package a
type fake struct{}
func (fake) Now() int { return 0 }
func f() int {
	time := fake{}
	return time.Now()
}
`)
	if len(fs) != 0 {
		t.Fatalf("shadowed name flagged: %v", fs)
	}
}

func TestAllowDirective(t *testing.T) {
	fs := check(t, "a.go", `package a
import "time"
func f() time.Time {
	return time.Now() //rtecvet:allow measuring real wall-clock for metrics
}
func g() time.Time {
	//rtecvet:allow startup timestamp shown to the user
	return time.Now()
}
`)
	if len(fs) != 0 {
		t.Fatalf("justified sites must be suppressed: %v", fs)
	}
}

func TestAllowDirectiveNeedsReason(t *testing.T) {
	fs := check(t, "a.go", `package a
import "time"
func f() time.Time {
	return time.Now() //rtecvet:allow
}
`)
	if len(fs) != 1 {
		t.Fatalf("a bare directive must not suppress: %v", fs)
	}
}

func TestExempt(t *testing.T) {
	cases := map[string]bool{
		"internal/rtec/engine_test.go":  true,
		"internal/clock/clock.go":       true,
		"internal/clock/virtual.go":     true,
		"internal/rtec/testdata/x.go":   true,
		"vendor/dep/a.go":               true,
		"internal/rtec/engine.go":       false,
		"cmd/experiments/main.go":       false,
		"internal/clockwork/tick.go":    false,
		"internal/telemetry/urclock.go": false,
	}
	for path, want := range cases {
		if got := Exempt(path); got != want {
			t.Errorf("Exempt(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestRepositoryIsClean is the gate the ci script relies on: the whole
// repository must carry no unjustified determinism hazard.
func TestRepositoryIsClean(t *testing.T) {
	findings, err := CheckDir("../..")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, f := range findings {
		lines = append(lines, f.String())
	}
	if len(findings) != 0 {
		t.Fatalf("determinism hazards:\n%s", strings.Join(lines, "\n"))
	}
}
