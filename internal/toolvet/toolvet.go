// Package toolvet is a repository-local vet checker for determinism
// hazards. Reproducibility is a hard requirement of this codebase — chaos
// runs are byte-identical per seed, checkpoints replay exactly, and the
// evaluation figures are pinned — so wall-clock reads and global
// (unseeded) randomness are confined to explicitly audited sites.
//
// Two rules are enforced over non-test code:
//
//   - wallclock: time.Now and time.Sleep are forbidden outside
//     internal/clock. Code that needs the current time takes a clock.Clock
//     (or an injected func() time.Time) so virtual-time tests and chaos
//     runs stay deterministic.
//
//   - unseededrand: package-level math/rand calls (rand.Intn, rand.Seed,
//     rand.Shuffle, ...) are forbidden; they draw from the process-global
//     source. Use rand.New(rand.NewSource(seed)) — the constructors New
//     and NewSource are allowed.
//
// A site that legitimately needs the real thing carries a justification on
// the same line or the line above:
//
//	t0 := time.Now() //rtecvet:allow measuring real wall-clock for -metrics
//
// A directive without a reason does not suppress the finding. The checker
// is purely syntactic (stdlib go/ast, no type information): it matches
// selector calls on the file's "time" and "math/rand" import names, so a
// local variable shadowing an import name could in principle false-positive;
// none does in this repository.
package toolvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one determinism hazard.
type Finding struct {
	File    string
	Line    int
	Col     int
	Rule    string // "wallclock" or "unseededrand"
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// forbiddenTime are the time package functions that read or depend on the
// wall clock.
var forbiddenTime = map[string]bool{"Now": true, "Sleep": true}

// allowedRand are the math/rand names that do not touch the global source:
// the constructors for explicitly seeded generators, and the package's
// type names (which appear in declarations like *rand.Rand).
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

// CheckSource analyzes one Go source file.
func CheckSource(filename string, src []byte) ([]Finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	timeName := importName(file, "time")
	randName := importName(file, "math/rand")
	if timeName == "" && randName == "" {
		return nil, nil
	}

	// Lines carrying a justified //rtecvet:allow directive suppress
	// findings on the same line and the line below.
	allow := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			reason, ok := strings.CutPrefix(text, "rtecvet:allow")
			if !ok || strings.TrimSpace(reason) == "" {
				continue
			}
			allow[fset.Position(c.Pos()).Line] = true
		}
	}

	var out []Finding
	report := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		if allow[p.Line] || allow[p.Line-1] {
			return
		}
		out = append(out, Finding{File: filename, Line: p.Line, Col: p.Column, Rule: rule, Message: msg})
	}
	// Any selector mention counts, not just calls: passing time.Now as a
	// function value makes the caller just as wall-clock dependent.
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Obj != nil { // pkg.Obj != nil: a local object shadows the import name
			return true
		}
		switch {
		case timeName != "" && pkg.Name == timeName && forbiddenTime[sel.Sel.Name]:
			report(sel.Pos(), "wallclock",
				fmt.Sprintf("time.%s outside internal/clock; inject a clock.Clock (or add //rtecvet:allow <reason>)", sel.Sel.Name))
		case randName != "" && pkg.Name == randName && !allowedRand[sel.Sel.Name]:
			report(sel.Pos(), "unseededrand",
				fmt.Sprintf("rand.%s uses the global source; use rand.New(rand.NewSource(seed)) (or add //rtecvet:allow <reason>)", sel.Sel.Name))
		}
		return true
	})
	return out, nil
}

// importName returns the name under which path is imported in file, or ""
// when it is not imported (or imported blank).
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

// Exempt reports whether a path is outside the checker's scope: test
// files, the clock package itself (the one legitimate wall-clock owner),
// testdata and vendored code.
func Exempt(path string) bool {
	if strings.HasSuffix(path, "_test.go") {
		return true
	}
	norm := filepath.ToSlash(path)
	for _, part := range strings.Split(norm, "/") {
		if part == "testdata" || part == "vendor" || part == ".git" {
			return true
		}
	}
	return strings.Contains(norm, "internal/clock/") || strings.HasSuffix(filepath.Dir(norm), "internal/clock")
}

// CheckDir walks root and checks every non-exempt .go file. Findings are
// ordered by file, then position.
func CheckDir(root string) ([]Finding, error) {
	var out []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if Exempt(path + "/") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || Exempt(path) {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fs, err := CheckSource(path, src)
		if err != nil {
			return err
		}
		out = append(out, fs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out, nil
}
