package prompt

import (
	"fmt"
	"strings"
	"testing"
)

func testDomain() *Domain {
	return &Domain{
		Name: "test",
		Events: []EventDoc{
			{Pattern: "entersArea(Vessel, Area)", Meaning: "vessel entered area"},
			{Pattern: "gap_start(Vessel)", Meaning: "transmissions stopped"},
		},
		Thresholds: []ThresholdDoc{
			{Name: "hcNearCoastMax", Meaning: "max safe coastal speed"},
		},
		Background: []BackgroundDoc{
			{Pattern: "areaType(Area, AreaType)", Meaning: "area types"},
		},
		Values:  []string{"true"},
		Aliases: map[string][]string{},
	}
}

func TestBuildRMentionsCorePredicates(t *testing.T) {
	r := BuildR()
	for _, frag := range []string{"happensAt(E, T)", "initiatedAt(F=V, T)", "terminatedAt(F=V, T)",
		"holdsAt(F=V, T)", "holdsFor(F=V, I)", "union_all", "intersect_all", "relative_complement_all",
		"negation-by-failure"} {
		if !strings.Contains(r, frag) {
			t.Errorf("prompt R missing %q", frag)
		}
	}
}

func TestBuildFSchemes(t *testing.T) {
	cot := BuildF(ChainOfThought)
	fs := BuildF(FewShot)
	// Both contain the example rules.
	for _, frag := range []string{"initiatedAt(withinArea(Vl, AreaType)=true, T)", "holdsFor(underWay(Vessel)=true, I)"} {
		if !strings.Contains(cot, frag) || !strings.Contains(fs, frag) {
			t.Errorf("prompt F missing example rule %q", frag)
		}
	}
	// Only chain-of-thought contains the step-by-step explanations.
	marker := "The activity 'withinArea' is expressed as a simple"
	if !strings.Contains(cot, marker) {
		t.Error("chain-of-thought prompt missing explanation")
	}
	if strings.Contains(fs, marker) {
		t.Error("few-shot prompt must not contain explanations")
	}
	if len(cot) <= len(fs) {
		t.Error("chain-of-thought prompt should be longer than few-shot")
	}
}

func TestBuildEAndT(t *testing.T) {
	d := testDomain()
	e := BuildE(d)
	if !strings.Contains(e, "Input Event 1: entersArea(Vessel, Area)") {
		t.Errorf("prompt E malformed:\n%s", e)
	}
	if !strings.Contains(e, "Background Predicate 1: areaType(Area, AreaType)") {
		t.Error("prompt E missing background predicates")
	}
	tp := BuildT(d)
	if !strings.Contains(tp, "Threshold 1: thresholds(hcNearCoastMax, HcNearCoastMax)") {
		t.Errorf("prompt T malformed:\n%s", tp)
	}
}

func TestBuildGMarker(t *testing.T) {
	g := BuildG(ActivityRequest{Key: "tr", Name: "trawling", Description: "a fishing vessel trawls."})
	if !strings.Contains(g, ActivityMarker+"trawling: a fishing vessel trawls.") {
		t.Errorf("prompt G missing marker:\n%s", g)
	}
}

// echoModel records prompts and answers with canned rules.
type echoModel struct {
	prompts []string
	reply   string
	failOn  string
}

func (m *echoModel) Name() string { return "echo" }
func (m *echoModel) Chat(history []Message, user string) (string, error) {
	m.prompts = append(m.prompts, user)
	if m.failOn != "" && strings.Contains(user, m.failOn) {
		return "", fmt.Errorf("boom")
	}
	return m.reply, nil
}

func TestSessionTeachThenGenerate(t *testing.T) {
	m := &echoModel{reply: "ok"}
	s := NewSession(m, FewShot, testDomain())
	if _, err := s.Generate(ActivityRequest{Name: "x"}); err == nil {
		t.Fatal("Generate before Teach must fail")
	}
	if err := s.Teach(); err != nil {
		t.Fatal(err)
	}
	if len(m.prompts) != 4 {
		t.Fatalf("Teach sent %d prompts, want 4 (R, F*, E, T)", len(m.prompts))
	}
	if _, err := s.Generate(ActivityRequest{Name: "withinArea", Description: "d"}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.History()); got != 10 {
		t.Fatalf("history length = %d, want 10", got)
	}
}

func TestSessionPropagatesModelErrors(t *testing.T) {
	m := &echoModel{reply: "ok", failOn: "thresholds"}
	s := NewSession(m, FewShot, testDomain())
	if err := s.Teach(); err == nil {
		t.Fatal("model error must propagate")
	}
}

func TestSessionRejectsEmptyDomain(t *testing.T) {
	s := NewSession(&echoModel{reply: "ok"}, FewShot, &Domain{Name: "empty"})
	if err := s.Teach(); err == nil {
		t.Fatal("empty domain accepted")
	}
}

func TestParseResponseMixedProseAndRules(t *testing.T) {
	raw := `Answer: The activity is expressed as a simple fluent.

initiatedAt(f(X)=true, T) :-
    happensAt(e(X), T).

Some more prose without rules.

terminatedAt(f(X)=true, T) :-
    happensAt(g(X), T).`
	clauses, errs := ParseResponse(raw)
	if len(clauses) != 2 {
		t.Fatalf("clauses = %d, want 2 (errs: %v)", len(clauses), errs)
	}
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
}

func TestParseResponseRecordsBrokenRules(t *testing.T) {
	raw := `initiatedAt(f(X)=true, T) :-
    happensAt(e(X, T.

terminatedAt(f(X)=true, T) :-
    happensAt(g(X), T).`
	clauses, errs := ParseResponse(raw)
	if len(clauses) != 1 {
		t.Fatalf("clauses = %d, want 1", len(clauses))
	}
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want 1 unparseable chunk", errs)
	}
}

func TestRunPipelineWithCannedModel(t *testing.T) {
	m := &echoModel{reply: "initiatedAt(f(X)=true, T) :-\n    happensAt(e(X), T)."}
	gen, err := RunPipeline(m, ChainOfThought, testDomain(), []ActivityRequest{
		{Key: "a", Name: "alpha", Description: "first"},
		{Key: "b", Name: "beta", Description: "second"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Label() != "echo△" {
		t.Fatalf("label = %q", gen.Label())
	}
	if len(gen.Results) != 2 {
		t.Fatalf("results = %d", len(gen.Results))
	}
	if len(gen.ED().Rules()) != 2 {
		t.Fatalf("combined rules = %d", len(gen.ED().Rules()))
	}
	if _, ok := gen.ResultFor("b"); !ok {
		t.Fatal("ResultFor failed")
	}
	if _, ok := gen.ResultFor("zz"); ok {
		t.Fatal("ResultFor found ghost")
	}
	if len(gen.ParseErrors()) != 0 {
		t.Fatalf("parse errors: %v", gen.ParseErrors())
	}
}

func TestSchemeNotation(t *testing.T) {
	if FewShot.String() != "few-shot" || ChainOfThought.String() != "chain-of-thought" {
		t.Fatal("scheme names wrong")
	}
	if FewShot.Suffix() != "□" || ChainOfThought.Suffix() != "△" {
		t.Fatal("scheme suffixes wrong")
	}
}
