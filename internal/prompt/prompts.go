package prompt

import (
	"fmt"
	"strings"

	"rtecgen/internal/analysis"
)

// Marker strings that structure the prompts. The simulated models key off
// ActivityMarker to find the activity they are asked to formalise, exactly
// as a live model would read the description header.
const (
	// ActivityMarker precedes the "<name>: <description>" payload of
	// prompt G.
	ActivityMarker = "Composite Maritime Activity Description - "
	// CritiqueMarker precedes the "<name>: <description>" payload of
	// prompt C, the critique turn of the refine loop: the simulated models
	// key off it to recognise a revision request, and to tell it apart from
	// a fresh prompt G.
	CritiqueMarker = "Revise Composite Activity Definition - "
)

// BuildR renders prompt R: the syntax of the language of RTEC, based on
// Definitions 2.2 and 2.4 of the paper.
func BuildR() string {
	return `You will construct composite activity definitions in the language of the
Run-Time Event Calculus (RTEC). RTEC employs a linear time-line with
non-negative integer time-points. A fluent-value pair (FVP) F=V denotes that
fluent F has value V. The main predicates are:

  happensAt(E, T)        event E occurs at time-point T.
  initiatedAt(F=V, T)    a period during which F=V holds is initiated at T.
  terminatedAt(F=V, T)   a period during which F=V holds is terminated at T.
  holdsAt(F=V, T)        F=V holds at time-point T.
  holdsFor(F=V, I)       F=V holds in the maximal intervals of list I.

Rules are written in logic-programming syntax: 'Head :- Body.' where the
body is a comma-separated conjunction of conditions and 'not' expresses
negation-by-failure. Variables start with an upper-case letter; constants
with a lower-case letter.

The body of an initiatedAt(F=V, T) or terminatedAt(F=V, T) rule starts with
a positive happensAt predicate, followed by a possibly empty set of
positive or negative happensAt and holdsAt predicates, all evaluated on the
same time-point T.

A rule with head holdsFor(F=V, I) defines F=V in terms of the maximal
intervals of other FVPs: its body is a sequence of holdsFor(F'=V', I')
conditions, where F'=V' differs from F=V, and of the interval manipulation
constructs union_all(L, I), intersect_all(L, I) and
relative_complement_all(I', L, I), where L is a list of interval lists
computed earlier in the body.`
}

// fStarHeader and the examples implement prompts F (chain-of-thought) and
// F* (few-shot) of Section 3.1. In chain-of-thought mode each example
// formalisation is preceded by a step-by-step explanation; in few-shot mode
// only the description and the formalisation are given.

const exampleWithinArea = `Example 1: Given a composite maritime activity description, provide the
rules in the language of RTEC. Composite Maritime Activity Description:
'withinArea'. This activity starts when a vessel enters an area of
interest. The activity ends when the vessel leaves the area that it had
entered. When there is a gap in signal transmissions, we can no longer
assume that the vessel remains in the same area.`

const explainWithinArea = `Answer: The activity 'withinArea' is expressed as a simple fluent. This
activity starts when a vessel enters an area of interest. We use an
'initiatedAt' rule to express this initiation condition. The output is a
boolean fluent named 'withinArea' with two arguments, i.e. 'Vessel' and
'AreaType'. We use one input event named 'entersArea' with two arguments
'Vessel' and 'Area' and one background predicate named 'areaType' with two
arguments 'Area' and 'AreaType'. This rule in the language of RTEC is the
following:`

const ruleWithinArea1 = `initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).`

const explainWithinArea2 = `The activity 'withinArea' ends when a vessel leaves the area that it had
entered. We use a 'terminatedAt' rule to describe this termination
condition:`

const ruleWithinArea2 = `terminatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(leavesArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).`

const explainWithinArea3 = `The activity 'withinArea' ends when a communication gap starts. We use a
'terminatedAt' rule to express this termination condition:`

const ruleWithinArea3 = `terminatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(gap_start(Vl), T).`

const exampleStopped = `Example 2: Given a composite maritime activity description, provide the
rules in the language of RTEC. Composite Maritime Activity Description:
'stopped'. This activity starts when a vessel becomes idle and ends when
the vessel starts moving again or on a communication gap.`

const ruleStopped = `initiatedAt(stopped(Vl)=true, T) :-
    happensAt(stop_start(Vl), T).

terminatedAt(stopped(Vl)=true, T) :-
    happensAt(stop_end(Vl), T).

terminatedAt(stopped(Vl)=true, T) :-
    happensAt(gap_start(Vl), T).`

const exampleUnderWay = `Example 1: Given a composite maritime activity description, provide the
rules in the language of RTEC. Composite Maritime Activity Description:
'underWay'. This activity lasts as long as a vessel is not stopped.`

const explainUnderWay = `Answer: The activity 'underWay' is expressed as a statically determined
fluent. Rules with 'holdsFor' in the head specify the conditions in which a
fluent holds. We use a 'holdsFor' rule to describe that the 'underWay'
activity lasts as long as a vessel is not stopped. The output is a boolean
fluent named 'underWay' with one argument, i.e. 'Vessel'. We specify
'underWay' with the use of the fluent 'movingSpeed'. More precisely, we
express 'underWay' as the disjunction of the three values of 'movingSpeed',
i.e. 'below', 'normal' and 'above'. Disjunction in 'holdsFor' rules is
expressed by means of 'union_all'. This rule is expressed in the language
of RTEC as follows:`

const ruleUnderWay = `holdsFor(underWay(Vessel)=true, I) :-
    holdsFor(movingSpeed(Vessel)=below, I1),
    holdsFor(movingSpeed(Vessel)=normal, I2),
    holdsFor(movingSpeed(Vessel)=above, I3),
    union_all([I1, I2, I3], I).`

const exampleIdle = `Example 2: Given a composite maritime activity description, provide the
rules in the language of RTEC. Composite Maritime Activity Description:
'idleOrSlow'. This activity lasts as long as a vessel is stopped or moves
at low speed.`

const ruleIdle = `holdsFor(idleOrSlow(Vl)=true, I) :-
    holdsFor(stopped(Vl)=true, Is),
    holdsFor(lowSpeed(Vl)=true, Il),
    union_all([Is, Il], I).`

// BuildF renders prompt F (chain-of-thought) or F* (few-shot): the
// demonstration of the two ways in which a composite activity may be
// defined (Section 3.1).
func BuildF(scheme Scheme) string {
	var b strings.Builder
	b.WriteString(`There are two ways in which a composite activity may be defined in the
language of RTEC. In the first case, a composite activity definition may be
specified by means of rules with initiatedAt(F=V,T) or terminatedAt(F=V,T)
in their head. This is called a simple fluent definition.

The first body literal of an initiatedAt(F=V,T) rule is a positive
happensAt predicate; this is followed by a possibly empty set of
positive/negative happensAt and holdsAt predicates. Negative predicates are
prefixed with 'not' which expresses negation-by-failure. Below you may find
two examples of composite activity definitions expressed as simple fluents.

`)
	b.WriteString(exampleWithinArea)
	b.WriteString("\n\n")
	if scheme == ChainOfThought {
		b.WriteString(explainWithinArea)
		b.WriteString("\n")
	} else {
		b.WriteString("Answer:\n")
	}
	b.WriteString(ruleWithinArea1)
	b.WriteString("\n\n")
	if scheme == ChainOfThought {
		b.WriteString(explainWithinArea2)
		b.WriteString("\n")
	}
	b.WriteString(ruleWithinArea2)
	b.WriteString("\n\n")
	if scheme == ChainOfThought {
		b.WriteString(explainWithinArea3)
		b.WriteString("\n")
	}
	b.WriteString(ruleWithinArea3)
	b.WriteString("\n\n")
	b.WriteString(exampleStopped)
	b.WriteString("\n\nAnswer:\n")
	b.WriteString(ruleStopped)
	b.WriteString("\n\n")
	b.WriteString(`A composite activity definition may be specified by means of one rule with
holdsFor(F=V, I) in its head. The body of such a rule may include
holdsFor(F'=V', I') conditions, where F'=V' is different from F=V, as well
as the interval manipulation constructs of RTEC, i.e. union_all,
intersect_all, and relative_complement_all. A rule with holdsFor(F=V, I) in
the head is called a statically determined fluent definition. Below you may
find two examples of composite maritime activities expressed as statically
determined fluents.

`)
	b.WriteString(exampleUnderWay)
	b.WriteString("\n\n")
	if scheme == ChainOfThought {
		b.WriteString(explainUnderWay)
		b.WriteString("\n")
	} else {
		b.WriteString("Answer:\n")
	}
	b.WriteString(ruleUnderWay)
	b.WriteString("\n\n")
	b.WriteString(exampleIdle)
	b.WriteString("\n\nAnswer:\n")
	b.WriteString(ruleIdle)
	return b.String()
}

// BuildE renders prompt E: the input events of the stream (Section 3.2).
func BuildE(d *Domain) string {
	var b strings.Builder
	b.WriteString("You may use the following input events:\n")
	for i, e := range d.Events {
		fmt.Fprintf(&b, "\nInput Event %d: %s\nMeaning: %s\n", i+1, e.Pattern, e.Meaning)
	}
	if len(d.Background) > 0 {
		b.WriteString("\nYou may also use the following atemporal background predicates:\n")
		for i, p := range d.Background {
			fmt.Fprintf(&b, "\nBackground Predicate %d: %s\nMeaning: %s\n", i+1, p.Pattern, p.Meaning)
		}
	}
	return b.String()
}

// BuildT renders prompt T: the threshold values (Section 3.2).
func BuildT(d *Domain) string {
	var b strings.Builder
	b.WriteString(`You may use a predicate named 'thresholds' with two arguments. The first
argument refers to the threshold type and the second one to the threshold
value. Threshold values can be used to perform mathematical operations and
comparisons.
`)
	for i, t := range d.Thresholds {
		fmt.Fprintf(&b, "\nThreshold %d: thresholds(%s, %s)\nMeaning: %s\n",
			i+1, t.Name, exportVar(t.Name), t.Meaning)
	}
	return b.String()
}

// exportVar turns a threshold name into the conventional variable spelling,
// e.g. hcNearCoastMax -> HcNearCoastMax.
func exportVar(name string) string {
	if name == "" {
		return "X"
	}
	return strings.ToUpper(name[:1]) + name[1:]
}

// BuildG renders prompt G: the rule-generation request for one composite
// activity (Section 3.3).
func BuildG(req ActivityRequest) string {
	return fmt.Sprintf(`Given a composite maritime activity description, provide the rules in RTEC
formalization. You may use any of the aforementioned input events and
fluents, and threshold values thresholds. You may use any of the output
fluents that you have already learned.

%s%s: %s`, ActivityMarker, req.Name, req.Description)
}

// BuildC renders prompt C: the critique turn of the refine loop
// (Section 3.4). It feeds back the diagnostics the static analyzer could not
// discharge mechanically and asks the model to revise its formalisation of
// the named activity. The activity header is re-stated under CritiqueMarker
// so the model can locate the definition under revision.
func BuildC(req ActivityRequest, diags []analysis.Diagnostic) string {
	var b strings.Builder
	b.WriteString(`Your formalisation of the composite activity below was checked by a static
analyzer for the language of RTEC. The analyzer reported the findings listed
here, which could not be repaired mechanically. Revise your rules so that
none of these findings remain, keeping to the aforementioned input events,
fluents and threshold values.

Findings:
`)
	for i, d := range diags {
		fmt.Fprintf(&b, "\nFinding %d [%s %s]: %s\n", i+1, d.Severity, d.Code, d.Message)
	}
	fmt.Fprintf(&b, "\n%s%s: %s", CritiqueMarker, req.Name, req.Description)
	return b.String()
}
