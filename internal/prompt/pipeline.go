package prompt

import (
	"fmt"
	"strings"

	"rtecgen/internal/analysis"
	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
)

// Session drives a model through the prompting pipeline of Figure 1: teach
// the RTEC syntax (prompt R), the fluent kinds (prompt F or F*), the input
// events (prompt E) and the thresholds (prompt T), then request activity
// formalisations one by one (prompt G).
type Session struct {
	model   Model
	scheme  Scheme
	domain  *Domain
	history []Message
	taught  bool
}

// NewSession creates a session for a model and prompting scheme.
func NewSession(model Model, scheme Scheme, domain *Domain) *Session {
	return &Session{model: model, scheme: scheme, domain: domain}
}

// send delivers a user message and records the exchange.
func (s *Session) send(user string) (string, error) {
	reply, err := s.model.Chat(s.history, user)
	if err != nil {
		return "", fmt.Errorf("prompt: model %s: %w", s.model.Name(), err)
	}
	s.history = append(s.history, Message{Role: "user", Content: user},
		Message{Role: "assistant", Content: reply})
	return reply, nil
}

// Teach runs prompts R, F/F*, E and T, in order. Under zero-shot prompting
// the fluent-kind demonstration (prompt F/F*) is skipped.
func (s *Session) Teach() error {
	if err := s.domain.Validate(); err != nil {
		return err
	}
	prompts := []string{BuildR()}
	if s.scheme != ZeroShot {
		prompts = append(prompts, BuildF(s.scheme))
	}
	prompts = append(prompts, BuildE(s.domain), BuildT(s.domain))
	for _, p := range prompts {
		if _, err := s.send(p); err != nil {
			return err
		}
	}
	s.taught = true
	return nil
}

// Generate runs prompt G for one activity and returns the raw model output.
func (s *Session) Generate(req ActivityRequest) (string, error) {
	if !s.taught {
		return "", fmt.Errorf("prompt: Generate before Teach")
	}
	return s.send(BuildG(req))
}

// History returns the transcript so far.
func (s *Session) History() []Message { return append([]Message(nil), s.history...) }

// ActivityResult is the outcome of one generation step: the raw response,
// the clauses that parsed, and the chunks that failed to parse.
type ActivityResult struct {
	Request ActivityRequest
	Raw     string
	Clauses []*lang.Clause
	Errors  []string
}

// GeneratedED is the full result of running the pipeline over a curriculum:
// the per-activity results in order, and the combined event description.
// Report holds the static-analyzer findings over the combined description
// when the ED has been linted (RunPipeline lints automatically).
type GeneratedED struct {
	ModelName string
	Scheme    Scheme
	Results   []ActivityResult
	Report    *analysis.Report
}

// Lint runs the static analyzer of internal/analysis over the combined
// event description, using the domain documentation as the vocabulary and
// treating each requested activity as a deliverable root (so top-level
// activities are not flagged as unused). The report is attached to the
// GeneratedED and returned.
func (g *GeneratedED) Lint(domain *Domain) *analysis.Report {
	roots := map[string]bool{}
	for _, r := range g.Results {
		roots[r.Request.Name] = true
	}
	g.Report = analysis.Analyze(g.ED(), analysis.Options{
		Vocabulary: domain.KnownNames(),
		Roots:      roots,
	})
	return g.Report
}

// Label renders the paper's notation for this event description, e.g.
// "o1□" or "GPT-4o△".
func (g *GeneratedED) Label() string { return g.ModelName + g.Scheme.Suffix() }

// ED returns the combined event description: all parsed clauses, in
// curriculum order.
func (g *GeneratedED) ED() *lang.EventDescription {
	ed := &lang.EventDescription{}
	for _, r := range g.Results {
		ed.Clauses = append(ed.Clauses, r.Clauses...)
	}
	return ed
}

// ResultFor returns the result for an activity key.
func (g *GeneratedED) ResultFor(key string) (ActivityResult, bool) {
	for _, r := range g.Results {
		if r.Request.Key == key {
			return r, true
		}
	}
	return ActivityResult{}, false
}

// ParseErrors returns all parse errors across activities.
func (g *GeneratedED) ParseErrors() []string {
	var out []string
	for _, r := range g.Results {
		for _, e := range r.Errors {
			out = append(out, r.Request.Key+": "+e)
		}
	}
	return out
}

// RunPipeline teaches the model and generates a definition for every
// curriculum entry, parsing each response. Model-side errors abort; parse
// errors are recorded per activity and skipped, since a human would discard
// unusable output (Section 4 measures exactly this correction effort).
func RunPipeline(model Model, scheme Scheme, domain *Domain, curriculum []ActivityRequest) (*GeneratedED, error) {
	s := NewSession(model, scheme, domain)
	if err := s.Teach(); err != nil {
		return nil, err
	}
	out := &GeneratedED{ModelName: model.Name(), Scheme: scheme}
	for _, req := range curriculum {
		raw, err := s.Generate(req)
		if err != nil {
			return nil, err
		}
		clauses, errs := ParseResponse(raw)
		out.Results = append(out.Results, ActivityResult{
			Request: req, Raw: raw, Clauses: clauses, Errors: errs,
		})
	}
	out.Lint(domain)
	return out, nil
}

// ParseResponse extracts RTEC clauses from a model response. The response
// may interleave prose with rules; chunks are delimited by blank lines and
// a chunk is kept when it parses as a clause sequence. Chunks that look
// like rules (contain ':-') but fail to parse are reported as errors.
func ParseResponse(raw string) (clauses []*lang.Clause, errs []string) {
	for _, chunk := range splitChunks(raw) {
		ed, err := parser.ParseEventDescription(chunk)
		if err == nil {
			clauses = append(clauses, ed.Clauses...)
			continue
		}
		if strings.Contains(chunk, ":-") {
			errs = append(errs, fmt.Sprintf("unparseable rule chunk: %v", err))
		}
	}
	return clauses, errs
}

// splitChunks splits a response on blank lines, keeping multi-line rules
// together (a rule continues until a line ending with '.').
func splitChunks(raw string) []string {
	var chunks []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			chunks = append(chunks, strings.Join(cur, "\n"))
			cur = nil
		}
	}
	for _, line := range strings.Split(raw, "\n") {
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		cur = append(cur, line)
	}
	flush()
	return chunks
}
