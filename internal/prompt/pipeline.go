package prompt

import (
	"fmt"
	"strings"

	"rtecgen/internal/analysis"
	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
	"rtecgen/internal/telemetry"
)

// Session drives a model through the prompting pipeline of Figure 1: teach
// the RTEC syntax (prompt R), the fluent kinds (prompt F or F*), the input
// events (prompt E) and the thresholds (prompt T), then request activity
// formalisations one by one (prompt G).
type Session struct {
	model   Model
	scheme  Scheme
	domain  *Domain
	history []Message
	taught  bool
	tel     *telemetry.Telemetry // may be nil
	span    *telemetry.Span      // pipeline root span, parent of per-prompt spans
}

// NewSession creates a session for a model and prompting scheme.
func NewSession(model Model, scheme Scheme, domain *Domain) *Session {
	return &Session{model: model, scheme: scheme, domain: domain}
}

// NewSessionWith is NewSession with observability: prompt/response sizes,
// per-prompt spans (children of span, which may be nil) and structured
// debug logs are recorded on tel.
func NewSessionWith(tel *telemetry.Telemetry, span *telemetry.Span, model Model, scheme Scheme, domain *Domain) *Session {
	return &Session{model: model, scheme: scheme, domain: domain, tel: tel, span: span}
}

// send delivers a user message and records the exchange. label names the
// prompt of Figure 1 ("R", "F", "E", "T", "G:<activity>") on the span and
// the logs.
func (s *Session) send(label, user string) (string, error) {
	sp := s.pipelineSpan().Span("pipeline.prompt",
		telemetry.String("prompt", label), telemetry.String("model", s.model.Name()))
	defer sp.End()
	s.tel.Counter("pipeline.prompt.bytes").Add(int64(len(user)))
	reply, err := s.model.Chat(s.history, user)
	if err != nil {
		s.tel.Counter("pipeline.model.errors").Inc()
		return "", fmt.Errorf("prompt: model %s: %w", s.model.Name(), err)
	}
	s.tel.Counter("pipeline.response.bytes").Add(int64(len(reply)))
	s.tel.Logger().Debug("prompt exchanged",
		"component", "pipeline", "model", s.model.Name(), "scheme", s.scheme.String(),
		"prompt", label, "prompt_bytes", len(user), "response_bytes", len(reply))
	s.history = append(s.history, Message{Role: "user", Content: user},
		Message{Role: "assistant", Content: reply})
	return reply, nil
}

// pipelineSpan returns the parent span for per-prompt spans (nil when the
// session is untraced, which collapses the children to no-ops too).
func (s *Session) pipelineSpan() *telemetry.Span { return s.span }

// Label renders the model/scheme notation of the paper, e.g. "o1□".
func (s *Session) Label() string { return s.model.Name() + s.scheme.Suffix() }

// Teach runs prompts R, F/F*, E and T, in order. Under zero-shot prompting
// the fluent-kind demonstration (prompt F/F*) is skipped.
func (s *Session) Teach() error {
	if err := s.domain.Validate(); err != nil {
		return err
	}
	stop := s.tel.Time("pipeline.micros.teach." + s.Label())
	defer stop()
	type step struct{ label, text string }
	steps := []step{{"R", BuildR()}}
	if s.scheme != ZeroShot {
		steps = append(steps, step{"F", BuildF(s.scheme)})
	}
	steps = append(steps, step{"E", BuildE(s.domain)}, step{"T", BuildT(s.domain)})
	for _, p := range steps {
		if _, err := s.send(p.label, p.text); err != nil {
			return err
		}
	}
	s.taught = true
	return nil
}

// Generate runs prompt G for one activity and returns the raw model output.
func (s *Session) Generate(req ActivityRequest) (string, error) {
	if !s.taught {
		return "", fmt.Errorf("prompt: Generate before Teach")
	}
	stop := s.tel.Time("pipeline.micros.generate." + s.Label())
	defer stop()
	return s.send("G:"+req.Key, BuildG(req))
}

// Critique sends prompt C for one activity: the diagnostics that the
// autofixer could not discharge, followed by a request to revise the
// activity's formalisation. The reply is the model's revised answer for that
// activity, in the same shape as a Generate reply.
func (s *Session) Critique(req ActivityRequest, diags []analysis.Diagnostic) (string, error) {
	if !s.taught {
		return "", fmt.Errorf("prompt: Critique before Teach")
	}
	stop := s.tel.Time("pipeline.micros.critique." + s.Label())
	defer stop()
	return s.send("C:"+req.Key, BuildC(req, diags))
}

// History returns the transcript so far.
func (s *Session) History() []Message { return append([]Message(nil), s.history...) }

// ActivityResult is the outcome of one generation step: the raw response,
// the clauses that parsed, and the chunks that failed to parse. When the
// model transport failed the activity past recovery (retries exhausted,
// circuit breaker open), Degraded is set and Err records why — the
// activity contributes no clauses but the session carries on.
type ActivityResult struct {
	Request  ActivityRequest
	Raw      string
	Clauses  []*lang.Clause
	Errors   []string
	Degraded bool
	Err      string
}

// GeneratedED is the full result of running the pipeline over a curriculum:
// the per-activity results in order, and the combined event description.
// Report holds the static-analyzer findings over the combined description
// when the ED has been linted (RunPipeline lints automatically).
type GeneratedED struct {
	ModelName string
	Scheme    Scheme
	Results   []ActivityResult
	Report    *analysis.Report
}

// Lint runs the static analyzer of internal/analysis over the combined
// event description, using the domain documentation as the vocabulary and
// treating each requested activity as a deliverable root (so top-level
// activities are not flagged as unused). The report is attached to the
// GeneratedED and returned.
func (g *GeneratedED) Lint(domain *Domain) *analysis.Report {
	return g.LintWith(nil, nil, domain)
}

// LintWith is Lint with observability: a "pipeline.lint" span (a child of
// parent, which may be nil), per-pass spans inside the analyzer, stage
// timing and diagnostic counters by code on tel.
func (g *GeneratedED) LintWith(tel *telemetry.Telemetry, parent *telemetry.Span, domain *Domain) *analysis.Report {
	sp := parent.Span("pipeline.lint", telemetry.String("model", g.Label()))
	defer sp.End()
	stop := tel.Time("pipeline.micros.lint." + g.Label())
	defer stop()
	roots := map[string]bool{}
	for _, r := range g.Results {
		roots[r.Request.Name] = true
	}
	g.Report = analysis.Analyze(g.ED(), analysis.Options{
		Vocabulary: domain.KnownNames(),
		Roots:      roots,
		Telemetry:  tel,
		Span:       sp,
	})
	sp.SetAttrs(telemetry.Int("diagnostics", int64(len(g.Report.Diagnostics))))
	return g.Report
}

// Label renders the paper's notation for this event description, e.g.
// "o1□" or "GPT-4o△".
func (g *GeneratedED) Label() string { return g.ModelName + g.Scheme.Suffix() }

// ED returns the combined event description: all parsed clauses, in
// curriculum order.
func (g *GeneratedED) ED() *lang.EventDescription {
	ed := &lang.EventDescription{}
	for _, r := range g.Results {
		ed.Clauses = append(ed.Clauses, r.Clauses...)
	}
	return ed
}

// ResultFor returns the result for an activity key.
func (g *GeneratedED) ResultFor(key string) (ActivityResult, bool) {
	for _, r := range g.Results {
		if r.Request.Key == key {
			return r, true
		}
	}
	return ActivityResult{}, false
}

// DegradedKeys returns the activity keys whose generation failed past
// recovery, in curriculum order.
func (g *GeneratedED) DegradedKeys() []string {
	var out []string
	for _, r := range g.Results {
		if r.Degraded {
			out = append(out, r.Request.Key)
		}
	}
	return out
}

// Coverage reports how many requested activities produced a usable result
// (ok) out of the total requested — the (n/m activities) annotation of
// partially degraded runs.
func (g *GeneratedED) Coverage() (ok, total int) {
	total = len(g.Results)
	for _, r := range g.Results {
		if !r.Degraded {
			ok++
		}
	}
	return ok, total
}

// ParseErrors returns all parse errors across activities.
func (g *GeneratedED) ParseErrors() []string {
	var out []string
	for _, r := range g.Results {
		for _, e := range r.Errors {
			out = append(out, r.Request.Key+": "+e)
		}
	}
	return out
}

// RunPipeline teaches the model and generates a definition for every
// curriculum entry, parsing each response. A model-side error during
// teaching aborts (nothing useful can follow an untaught model); an error
// on an individual G prompt marks that activity degraded and continues, so
// one unrecoverable call does not kill the whole session. Parse errors are
// recorded per activity and skipped, since a human would discard unusable
// output (Section 4 measures exactly this correction effort).
func RunPipeline(model Model, scheme Scheme, domain *Domain, curriculum []ActivityRequest) (*GeneratedED, error) {
	return RunPipelineWith(nil, model, scheme, domain, curriculum)
}

// RunPipelineWith is RunPipeline with observability: a "pipeline.run" root
// span with per-prompt, per-parse and per-lint children, stage timers
// keyed by the model/scheme label, and counters for prompt/response bytes,
// rules generated and parse errors. A nil tel costs only nil checks.
func RunPipelineWith(tel *telemetry.Telemetry, model Model, scheme Scheme, domain *Domain, curriculum []ActivityRequest) (*GeneratedED, error) {
	root := tel.Span("pipeline.run",
		telemetry.String("model", model.Name()), telemetry.String("scheme", scheme.String()),
		telemetry.Int("curriculum", int64(len(curriculum))))
	defer root.End()
	s := NewSessionWith(tel, root, model, scheme, domain)
	if err := s.Teach(); err != nil {
		return nil, err
	}
	out := &GeneratedED{ModelName: model.Name(), Scheme: scheme}
	rules := tel.Counter("pipeline.rules.generated")
	parseErrs := tel.Counter("pipeline.parse.errors")
	for _, req := range curriculum {
		raw, err := s.Generate(req)
		if err != nil {
			tel.Counter("pipeline.activities.degraded").Inc()
			tel.Logger().Warn("activity degraded: generation failed",
				"component", "pipeline", "model", model.Name(), "scheme", scheme.String(),
				"activity", req.Key, "err", err.Error())
			out.Results = append(out.Results, ActivityResult{
				Request: req, Degraded: true, Err: err.Error(),
			})
			continue
		}
		psp := root.Span("pipeline.parse", telemetry.String("activity", req.Key))
		stop := tel.Time("pipeline.micros.parse." + out.Label())
		clauses, errs := ParseResponse(raw)
		stop()
		psp.SetAttrs(telemetry.Int("clauses", int64(len(clauses))), telemetry.Int("errors", int64(len(errs))))
		psp.End()
		rules.Add(int64(len(clauses)))
		parseErrs.Add(int64(len(errs)))
		if len(errs) > 0 {
			tel.Logger().Debug("unparseable response chunks",
				"component", "pipeline", "model", model.Name(), "scheme", scheme.String(),
				"activity", req.Key, "errors", len(errs))
		}
		out.Results = append(out.Results, ActivityResult{
			Request: req, Raw: raw, Clauses: clauses, Errors: errs,
		})
	}
	out.LintWith(tel, root, domain)
	return out, nil
}

// ParseResponse extracts RTEC clauses from a model response. The response
// may interleave prose with rules; chunks are delimited by blank lines and
// a chunk is kept when it parses as a clause sequence. Chunks that look
// like rules (contain ':-') but fail to parse are reported as errors.
func ParseResponse(raw string) (clauses []*lang.Clause, errs []string) {
	for _, chunk := range splitChunks(raw) {
		ed, err := parser.ParseEventDescription(chunk)
		if err == nil {
			clauses = append(clauses, ed.Clauses...)
			continue
		}
		if strings.Contains(chunk, ":-") {
			errs = append(errs, fmt.Sprintf("unparseable rule chunk: %v", err))
		}
	}
	return clauses, errs
}

// splitChunks splits a response on blank lines, keeping multi-line rules
// together (a rule continues until a line ending with '.').
func splitChunks(raw string) []string {
	var chunks []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			chunks = append(chunks, strings.Join(cur, "\n"))
			cur = nil
		}
	}
	for _, line := range strings.Split(raw, "\n") {
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		cur = append(cur, line)
	}
	flush()
	return chunks
}
