// Package prompt implements the prompting method of the paper (Section 3):
// the construction of prompts R (RTEC syntax), F/F* (chain-of-thought and
// few-shot demonstrations of simple and statically determined fluents), E
// (input events), T (thresholds) and G (rule generation), the chat session
// that drives a model through them, and the parsing of model responses back
// into event-description clauses.
package prompt

import (
	"fmt"
	"strings"

	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
)

// Scheme selects between the prompting routes of Figure 1. The paper's
// pipeline offers few-shot (prompt F*) and chain-of-thought (prompt F);
// zero-shot — skipping the fluent-kind demonstrations entirely — "produced
// poor results" in the paper's empirical analysis and is provided here so
// that finding can be reproduced (see TestZeroShotProducesPoorResults).
type Scheme int

const (
	// FewShot provides example descriptions and formalisations without
	// explanations (prompt F*).
	FewShot Scheme = iota
	// ChainOfThought additionally explains each example formalisation step
	// by step (prompt F).
	ChainOfThought
	// ZeroShot skips prompt F/F* altogether: the model is never shown what
	// simple and statically determined fluent definitions look like.
	ZeroShot
)

func (s Scheme) String() string {
	switch s {
	case FewShot:
		return "few-shot"
	case ChainOfThought:
		return "chain-of-thought"
	case ZeroShot:
		return "zero-shot"
	}
	return "unknown"
}

// Suffix returns the paper's notation for a model/scheme combination:
// squares for few-shot, triangles for chain-of-thought (zero-shot has no
// published notation; a circle is used).
func (s Scheme) Suffix() string {
	switch s {
	case FewShot:
		return "□"
	case ChainOfThought:
		return "△"
	default:
		return "○"
	}
}

// Message is one turn of a chat with a model.
type Message struct {
	Role    string // "user" or "assistant"
	Content string
}

// Model is a chat-completion model: given the conversation so far and the
// next user message, it returns the assistant response. Implemented by the
// simulated models of internal/llm; an OpenAI/Groq API client would
// implement the same interface.
type Model interface {
	Name() string
	Chat(history []Message, user string) (string, error)
}

// EventDoc documents one input event for prompt E.
type EventDoc struct {
	Pattern string // e.g. "entersArea(Vessel, Area)"
	Meaning string
}

// ThresholdDoc documents one threshold for prompt T.
type ThresholdDoc struct {
	Name    string // e.g. "hcNearCoastMax"
	Meaning string
}

// BackgroundDoc documents one background predicate available to rules.
type BackgroundDoc struct {
	Pattern string // e.g. "areaType(Area, AreaType)"
	Meaning string
}

// Domain packages the application-specific content of the prompts: the
// input stream items (prompt E), the thresholds (prompt T) and the
// background predicates, together with the domain vocabulary used by the
// syntactic corrector: canonical constants and the plausible wrong names
// ("aliases") a generator might use for them.
type Domain struct {
	Name       string
	Events     []EventDoc
	Thresholds []ThresholdDoc
	Background []BackgroundDoc
	// Values are the constant values fluents may take (true, below, ...).
	Values []string
	// Constants are further vocabulary names documented only in the prompt
	// prose rather than as a Pattern: area and vessel types, and auxiliary
	// background predicates the rules may call (e.g. oneIsTug).
	Constants []string
	// Aliases maps a canonical name (predicate, constant or fluent) to
	// plausible wrong spellings. The corrector uses it to map unknown names
	// back to vocabulary, modelling the human that renamed 'trawlingArea'
	// to 'fishing' in the paper's evaluation.
	Aliases map[string][]string
}

// ActivityRequest is one generation step of the pipeline: a composite
// activity to formalise, given by name and natural-language description.
type ActivityRequest struct {
	Key         string // short label, e.g. "tr"
	Name        string // fluent name, e.g. "trawling"
	Description string // natural-language description for prompt G
}

// Validate checks the domain is usable.
func (d *Domain) Validate() error {
	if len(d.Events) == 0 {
		return fmt.Errorf("prompt: domain %q has no input events", d.Name)
	}
	return nil
}

// KnownNames returns the set of vocabulary names the domain documentation
// teaches: the functors and constants occurring in the event and background
// patterns, the threshold names, the fluent values and the extra constants.
// It is the gold-standard-free vocabulary handed to the static analyzer.
func (d *Domain) KnownNames() map[string]bool {
	out := map[string]bool{}
	addPattern := func(p string) {
		t, err := parser.ParseTerm(p)
		if err != nil {
			return
		}
		t.Walk(func(n *lang.Term) bool {
			if n.Kind == lang.Compound || n.Kind == lang.Atom {
				out[n.Functor] = true
			}
			return true
		})
	}
	for _, e := range d.Events {
		addPattern(e.Pattern)
	}
	for _, b := range d.Background {
		addPattern(b.Pattern)
	}
	out["thresholds"] = true
	for _, t := range d.Thresholds {
		out[t.Name] = true
	}
	for _, v := range d.Values {
		out[v] = true
	}
	for _, c := range d.Constants {
		out[c] = true
	}
	return out
}

// ArgSorts infers the argument-sort table of the documented vocabulary for
// the R013 sort-inference pass: for every event and background pattern, the
// lower-cased argument variable names with trailing digits stripped
// ("Vessel1" -> "vessel"), so a vessel identifier and a speed are different
// sorts wherever they appear.
func (d *Domain) ArgSorts() map[string][]string {
	out := map[string][]string{}
	add := func(p string) {
		t, err := parser.ParseTerm(p)
		if err != nil || t.Kind != lang.Compound {
			return
		}
		sorts := make([]string, len(t.Args))
		for i, a := range t.Args {
			if a.Kind == lang.Var {
				sorts[i] = sortName(a.Functor)
			}
		}
		out[t.Functor] = sorts
	}
	for _, e := range d.Events {
		add(e.Pattern)
	}
	for _, b := range d.Background {
		add(b.Pattern)
	}
	return out
}

// sortName normalises a pattern variable name into a sort: lower-cased,
// with trailing digits stripped so Vessel1/Vessel2 share the sort "vessel".
func sortName(v string) string {
	v = strings.TrimLeft(v, "_")
	v = strings.TrimRight(v, "0123456789")
	return strings.ToLower(v)
}

// KnownEventIndicators returns the "functor/arity" indicators of the
// documented input events and background predicates.
func (d *Domain) KnownEventIndicators() map[string]bool {
	out := map[string]bool{}
	add := func(p string) {
		if t, err := parser.ParseTerm(p); err == nil && t.IsCallable() {
			out[t.Indicator()] = true
		}
	}
	for _, e := range d.Events {
		add(e.Pattern)
	}
	for _, b := range d.Background {
		add(b.Pattern)
	}
	return out
}
