package shard

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"rtecgen/internal/rtec"
	"rtecgen/internal/shard/fault"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
	"rtecgen/internal/telemetry/journal"
)

// fileRun drives one supervisor whose checkpoints and journals live in dir,
// so a second supervisor can resume from them the way a restarted rtecd
// process does.
type fileRun struct {
	t   *testing.T
	dir string
	sup *Supervisor
	jfs []*os.File
}

func newFileRun(t *testing.T, dir string, arrivals stream.Stream, resume bool, faults string) *fileRun {
	t.Helper()
	plan, err := fault.Parse(faults)
	if err != nil {
		t.Fatal(err)
	}
	first, last := arrivals.TimeRange()
	r := &fileRun{t: t, dir: dir}
	jfs := make([]*os.File, 4)
	infos := make([]*journal.RecoverInfo, 4)
	for k := range jfs {
		path := filepath.Join(dir, fmt.Sprintf("run.journal.s%d", k))
		if resume {
			if _, statErr := os.Stat(path); statErr == nil {
				info, err := journal.Recover(path)
				if err != nil {
					t.Fatal(err)
				}
				infos[k] = &info
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				jfs[k] = f
				continue
			}
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		jfs[k] = f
	}
	r.jfs = jfs
	sup, err := NewSupervisor(testEngine(t, 1), Options{
		Shards: 4,
		Stream: rtec.StreamOptions{
			RunOptions:      rtec.RunOptions{Window: 100, Start: first, End: last + 1},
			MaxDelay:        60,
			CheckpointPath:  filepath.Join(dir, "run.ckpt"),
			CheckpointEvery: 1,
		},
		JournalFor:     func(k int) io.Writer { return jfs[k] },
		JournalInfoFor: func(k int) *journal.RecoverInfo { return infos[k] },
		Resume:         resume,
		Seed:           7,
		Faults:         plan,
		MaxRestarts:    8,
		Telemetry:      telemetry.New(telemetry.NewRegistry(), nil, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.sup = sup
	return r
}

func (r *fileRun) ingest(arrivals stream.Stream) {
	r.t.Helper()
	for _, e := range arrivals {
		if err := r.sup.Ingest(e); err != nil {
			r.t.Fatal(err)
		}
	}
}

func (r *fileRun) closeFiles() {
	for _, f := range r.jfs {
		f.Close()
	}
}

func (r *fileRun) journalBytes(k int) []byte {
	r.t.Helper()
	b, err := os.ReadFile(filepath.Join(r.dir, fmt.Sprintf("run.journal.s%d", k)))
	if err != nil {
		r.t.Fatal(err)
	}
	return b
}

// suspendResumeIdentity parks a run after `park` arrivals, resumes it in a
// fresh supervisor over the same directory, and asserts the final CSV,
// stats and per-shard journal bytes match an uninterrupted run's. faults
// are injected into the pre-park phase only — a resumed run must also erase
// the scars of crashes that happened before the park.
func suspendResumeIdentity(t *testing.T, park int, faults string) {
	arrivals := testArrivals(7, 160, 60)

	baseline := newFileRun(t, t.TempDir(), arrivals, false, "")
	baseline.ingest(arrivals)
	wantRes, err := baseline.sup.Close()
	if err != nil {
		t.Fatal(err)
	}
	baseline.closeFiles()
	wantCSV := csvOf(t, wantRes.Recognition)

	dir := t.TempDir()
	parked := newFileRun(t, dir, arrivals, false, faults)
	parked.ingest(arrivals[:park])
	sts, err := parked.sup.Suspend()
	if err != nil {
		t.Fatalf("suspend: %v", err)
	}
	parked.closeFiles()
	var consumed int64
	for _, st := range sts {
		if !st.Suspended || st.Degraded {
			t.Fatalf("shard %d did not park cleanly: %+v", st.Shard, st)
		}
		consumed += st.Consumed
	}
	if consumed != int64(park) {
		t.Fatalf("parked %d arrivals, want %d", consumed, park)
	}

	resumed := newFileRun(t, dir, arrivals, true, "")
	resumed.ingest(arrivals) // full stream: the parked prefix is skipped
	gotRes, err := resumed.sup.Close()
	if err != nil {
		t.Fatal(err)
	}
	resumed.closeFiles()
	if gotCSV := csvOf(t, gotRes.Recognition); gotCSV != wantCSV {
		t.Fatalf("park@%d: resumed CSV differs from uninterrupted run:\n%s\nvs\n%s", park, gotCSV, wantCSV)
	}
	if wantRes.Stats != gotRes.Stats {
		t.Fatalf("park@%d: resumed stats = %s, uninterrupted = %s", park, gotRes.Stats, wantRes.Stats)
	}
	for k := 0; k < 4; k++ {
		if !bytes.Equal(baseline.journalBytes(k), resumed.journalBytes(k)) {
			t.Fatalf("park@%d: shard %d journal differs after suspend-resume:\n%s\nvs\n%s",
				park, k, resumed.journalBytes(k), baseline.journalBytes(k))
		}
	}
}

// TestSuspendResumeByteIdentity is the cross-process drain contract: a
// supervisor parked mid-stream and a fresh one resumed over its checkpoint
// and journal files reproduce an uninterrupted run byte-for-byte.
func TestSuspendResumeByteIdentity(t *testing.T) {
	suspendResumeIdentity(t, 80, "")
}

// TestSuspendResumeEarlyPark parks after 3 arrivals: most shards have
// consumed nothing and hold no checkpoint, so the resume path must handle
// fresh shards next to restored ones.
func TestSuspendResumeEarlyPark(t *testing.T) {
	suspendResumeIdentity(t, 3, "")
}

// TestSuspendResumeAfterFaults panics shard 0 before the park: crash
// recovery and the graceful park must compose without disturbing the
// byte-identity contract.
func TestSuspendResumeAfterFaults(t *testing.T) {
	suspendResumeIdentity(t, 80, "panic@w1:s0")
}

func TestSuspendRequiresCheckpointPath(t *testing.T) {
	arrivals := testArrivals(7, 40, 60)
	first, last := arrivals.TimeRange()
	sup, err := NewSupervisor(testEngine(t, 1), Options{
		Shards: 2,
		Stream: rtec.StreamOptions{
			RunOptions: rtec.RunOptions{Window: 100, Start: first, End: last + 1},
			MaxDelay:   60,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Suspend(); err == nil {
		t.Fatal("Suspend without a checkpoint path succeeded")
	}
	// The configuration error leaves the runtime usable: Close still works.
	if _, err := sup.Close(); err != nil {
		t.Fatalf("Close after the refused Suspend: %v", err)
	}
}

func TestResumeRequiresCheckpointPath(t *testing.T) {
	_, err := NewSupervisor(testEngine(t, 1), Options{
		Shards: 2,
		Stream: rtec.StreamOptions{RunOptions: rtec.RunOptions{Window: 100, Start: 0, End: 100}},
		Resume: true,
	})
	if err == nil {
		t.Fatal("Resume without a checkpoint path accepted")
	}
}
