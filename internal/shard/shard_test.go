package shard

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"rtecgen/internal/clock"
	"rtecgen/internal/parser"
	"rtecgen/internal/rtec"
	"rtecgen/internal/shard/fault"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
)

const testED = `
inputEvent(entersArea(_, _)).
inputEvent(leavesArea(_, _)).
inputEvent(gap_start(_)).

areaType(a1, fishing).
areaType(a2, anchorage).

initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).

terminatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(leavesArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).

terminatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(gap_start(Vl), T).
`

func testEngine(t testing.TB, workers int) *rtec.Engine {
	t.Helper()
	ed, err := parser.ParseEventDescription(testED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := rtec.New(ed, rtec.Options{Strict: true, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// testArrivals builds a deterministic multi-entity stream with bounded
// disorder: six vessels entering and leaving areas over [0, 1000), shuffled
// so no event is displaced by more than maxDelay.
func testArrivals(seed int64, n int, maxDelay int64) stream.Stream {
	r := rand.New(rand.NewSource(seed))
	var events stream.Stream
	for len(events) < n {
		v := fmt.Sprintf("v%d", 1+r.Intn(6))
		a := fmt.Sprintf("a%d", 1+r.Intn(2))
		t := int64(r.Intn(990))
		switch r.Intn(3) {
		case 0:
			events = append(events, ev(t, fmt.Sprintf("entersArea(%s, %s)", v, a)))
		case 1:
			events = append(events, ev(t, fmt.Sprintf("leavesArea(%s, %s)", v, a)))
		default:
			events = append(events, ev(t, fmt.Sprintf("gap_start(%s)", v)))
		}
	}
	events.Sort()
	// Bounded shuffle: order by randomly delayed delivery time.
	type delayed struct {
		e   stream.Event
		due int64
		idx int
	}
	ds := make([]delayed, len(events))
	for i, e := range events {
		ds[i] = delayed{e: e, due: e.Time + r.Int63n(maxDelay+1), idx: i}
	}
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].due != ds[j].due {
			return ds[i].due < ds[j].due
		}
		return ds[i].idx < ds[j].idx
	})
	out := make(stream.Stream, len(ds))
	for i, d := range ds {
		out[i] = d.e
	}
	return out
}

func ev(t int64, src string) stream.Event {
	return stream.Event{Time: t, Atom: parser.MustParseTerm(src)}
}

func csvOf(t testing.TB, r *rtec.Recognition) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// shardedRun is one complete supervised run plus everything the tests
// compare: the merged result, every shard's committed journal, and the
// metrics registry.
type shardedRun struct {
	res      *Result
	journals []*bytes.Buffer
	reg      *telemetry.Registry
}

// runSharded builds a supervisor over a fresh engine, feeds the arrivals
// and closes. tweak edits the options before construction.
func runSharded(t testing.TB, workers int, arrivals stream.Stream, faults string, tweak func(*Options)) (*shardedRun, error) {
	t.Helper()
	plan, err := fault.Parse(faults)
	if err != nil {
		t.Fatal(err)
	}
	first, last := arrivals.TimeRange()
	reg := telemetry.NewRegistry()
	journals := make([]*bytes.Buffer, 4)
	for i := range journals {
		journals[i] = &bytes.Buffer{}
	}
	opts := Options{
		Shards: 4,
		Stream: rtec.StreamOptions{
			RunOptions:      rtec.RunOptions{Window: 100, Start: first, End: last + 1},
			MaxDelay:        60,
			CheckpointPath:  filepath.Join(t.TempDir(), "run.ckpt"),
			CheckpointEvery: 1,
		},
		JournalFor:  func(k int) io.Writer { return journals[k] },
		Seed:        7,
		Faults:      plan,
		MaxRestarts: 8,
		Telemetry:   telemetry.New(reg, nil, nil),
	}
	if tweak != nil {
		tweak(&opts)
	}
	if opts.Shards != len(journals) {
		journals = journals[:opts.Shards]
	}
	sup, err := NewSupervisor(testEngine(t, workers), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range arrivals {
		if err := sup.Ingest(e); err != nil {
			return nil, err
		}
	}
	res, err := sup.Close()
	if err != nil {
		return nil, err
	}
	return &shardedRun{res: res, journals: journals, reg: reg}, nil
}

func counterValue(reg *telemetry.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

// requireIdentical asserts the chaos contract: same recognised intervals,
// same per-shard journal bytes, same aggregate statistics.
func requireIdentical(t *testing.T, want, got *shardedRun) {
	t.Helper()
	if a, b := csvOf(t, want.res.Recognition), csvOf(t, got.res.Recognition); a != b {
		t.Fatalf("recognised intervals differ under faults:\n%s\nvs fault-free\n%s", b, a)
	}
	if want.res.Stats != got.res.Stats {
		t.Fatalf("stats differ under faults: %s vs %s", got.res.Stats, want.res.Stats)
	}
	for k := range want.journals {
		if !bytes.Equal(want.journals[k].Bytes(), got.journals[k].Bytes()) {
			t.Fatalf("shard %d journal differs under faults:\n%s\nvs fault-free\n%s",
				k, got.journals[k].String(), want.journals[k].String())
		}
	}
}

// TestShardedMatchesUnsharded: partitioning a stream across supervised
// shards and merging recognises exactly what one engine over the whole
// stream does.
func TestShardedMatchesUnsharded(t *testing.T) {
	arrivals := testArrivals(7, 120, 60)
	first, last := arrivals.TimeRange()
	e := testEngine(t, 1)
	want, err := e.RunStream(arrivals, rtec.StreamOptions{
		RunOptions: rtec.RunOptions{Window: 100, Start: first, End: last + 1},
		MaxDelay:   60,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runSharded(t, 1, arrivals, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := csvOf(t, want.Recognition), csvOf(t, got.res.Recognition); a != b {
		t.Fatalf("sharded merge differs from unsharded run:\n%s\nvs\n%s", b, a)
	}
	if got.res.Stats.Observed != int64(len(arrivals)) {
		t.Fatalf("shards observed %d arrivals, want %d", got.res.Stats.Observed, len(arrivals))
	}
	if got.res.Degraded != 0 {
		t.Fatalf("fault-free run degraded %d shards", got.res.Degraded)
	}
	// Every shard saw some of the six entities.
	for _, st := range got.res.Shards {
		if st.Consumed == 0 {
			t.Fatalf("shard %d consumed nothing — entity routing premise broken", st.Shard)
		}
	}
}

// TestShardRestartByteIdentity is the tentpole acceptance gate: a seeded
// panic at every shard's 2nd window forces restarts mid-stream, and the
// recovered run must be byte-identical to the fault-free one — intervals,
// stats and journals. Exercised at engine Workers=1 and 8 (the latter makes
// the in-window evaluation concurrent under -race).
func TestShardRestartByteIdentity(t *testing.T) {
	arrivals := testArrivals(7, 120, 60)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			want, err := runSharded(t, workers, arrivals, "", nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := runSharded(t, workers, arrivals, "panic@w2", nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.res.Degraded != 0 {
				t.Fatalf("restarts degraded %d shards: %+v", got.res.Degraded, got.res.Shards)
			}
			var restarts int64
			for _, st := range got.res.Shards {
				restarts += st.Restarts
			}
			if restarts == 0 {
				t.Fatal("no shard restarted — the fault never fired")
			}
			if v := counterValue(got.reg, "rtec.shard.restarts"); v != restarts {
				t.Fatalf("rtec.shard.restarts = %d, statuses say %d", v, restarts)
			}
			if counterValue(got.reg, "rtec.shard.panics") == 0 {
				t.Fatal("rtec.shard.panics not counted")
			}
			requireIdentical(t, want, got)
		})
	}
}

// TestShardRestartWithoutCheckpoints: with checkpointing off, a restarted
// shard replays the whole retained queue from scratch — and the output is
// still byte-identical.
func TestShardRestartWithoutCheckpoints(t *testing.T) {
	arrivals := testArrivals(11, 80, 60)
	noCkpt := func(o *Options) { o.Stream.CheckpointPath = "" }
	want, err := runSharded(t, 1, arrivals, "", noCkpt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runSharded(t, 1, arrivals, "panic@w2", noCkpt)
	if err != nil {
		t.Fatal(err)
	}
	if got.res.Degraded != 0 {
		t.Fatalf("degraded %d shards: %+v", got.res.Degraded, got.res.Shards)
	}
	requireIdentical(t, want, got)
}

// TestShardCheckpointGenerationFallback: tearing the freshly written
// checkpoint before a panic forces the restart onto the previous
// generation; the longer replay must still land on identical bytes.
func TestShardCheckpointGenerationFallback(t *testing.T) {
	arrivals := testArrivals(7, 120, 60)
	want, err := runSharded(t, 1, arrivals, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runSharded(t, 1, arrivals, "ckpt-truncate@w2,panic@w3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.res.Degraded != 0 {
		t.Fatalf("degraded %d shards: %+v", got.res.Degraded, got.res.Shards)
	}
	if counterValue(got.reg, "rtec.shard.ckpt.fallbacks") == 0 {
		t.Fatal("no restart used the previous checkpoint generation")
	}
	requireIdentical(t, want, got)
}

// TestShardHangKilledByWatchdog: a shard wedged at a window delivery is
// detected by the progress deadline, killed and restarted — on the virtual
// clock, so no real time is slept — and the run remains byte-identical.
func TestShardHangKilledByWatchdog(t *testing.T) {
	arrivals := testArrivals(7, 120, 60)
	virtual := func(o *Options) {
		o.Clock = clock.NewVirtual(time.Unix(0, 0))
		o.Deadline = 10 * time.Second
		o.PollQuantum = 2 * time.Millisecond
		o.MaxRestarts = 1000
	}
	want, err := runSharded(t, 1, arrivals, "", virtual)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runSharded(t, 1, arrivals, "hang@w2:s0", virtual)
	if err != nil {
		t.Fatal(err)
	}
	if got.res.Degraded != 0 {
		t.Fatalf("degraded %d shards: %+v", got.res.Degraded, got.res.Shards)
	}
	if counterValue(got.reg, "rtec.shard.kills") == 0 {
		t.Fatal("the watchdog never killed the hung shard")
	}
	if got.res.Shards[0].Kills == 0 {
		t.Fatal("shard 0 reports no kills")
	}
	requireIdentical(t, want, got)
}

// TestShardHangBlocksProducer pins the producer-side watchdog: with a tiny
// queue, a hung shard backs pressure up into Ingest, whose poll loop must
// detect the stalled consumer and kill it instead of blocking forever.
func TestShardHangBlocksProducer(t *testing.T) {
	arrivals := testArrivals(7, 120, 60)
	tweak := func(o *Options) {
		o.Clock = clock.NewVirtual(time.Unix(0, 0))
		o.Deadline = 10 * time.Second
		o.PollQuantum = 2 * time.Millisecond
		o.MaxRestarts = 1000
		o.QueueDepth = 2
	}
	want, err := runSharded(t, 1, arrivals, "", tweak)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runSharded(t, 1, arrivals, "hang@w1", tweak)
	if err != nil {
		t.Fatal(err)
	}
	if got.res.Degraded != 0 {
		t.Fatalf("degraded %d shards: %+v", got.res.Degraded, got.res.Shards)
	}
	if counterValue(got.reg, "rtec.shard.kills") == 0 {
		t.Fatal("no kill — the producer-side deadline never fired")
	}
	requireIdentical(t, want, got)
}

// TestShardDegradationAndHealth: a shard that panics on every attempt
// exhausts its restart budget, degrades instead of wedging the run, and
// surfaces through /healthz as a 503 with the shards check failing.
func TestShardDegradationAndHealth(t *testing.T) {
	arrivals := testArrivals(7, 120, 60)
	sup := mustSupervisor(t, arrivals, "panic@w1:s0!", func(o *Options) {
		o.MaxRestarts = 2
		o.Overflow = OverflowDrop
	})
	for _, e := range arrivals {
		if err := sup.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sup.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 1 {
		t.Fatalf("degraded = %d, want 1: %+v", res.Degraded, res.Shards)
	}
	st := res.Shards[0]
	if !st.Degraded || st.Err == "" || st.Restarts != 2 {
		t.Fatalf("shard 0 status %+v, want degraded after 2 restarts", st)
	}
	// The healthy shards' intervals survive the partial merge.
	if len(res.Recognition.Keys()) == 0 {
		t.Fatal("partial merge lost the healthy shards' intervals")
	}

	reg := telemetry.NewRegistry()
	srv := telemetry.NewServer(reg)
	sup.RegisterHealth(srv)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("/healthz = %d with a degraded shard, want 503", rec.Code)
	}
	if body := rec.Body.String(); !bytes.Contains([]byte(body), []byte("degraded shards: [0]")) {
		t.Fatalf("/healthz body does not name the degraded shard: %s", body)
	}
}

// TestShardOverflowOnDegraded pins the admission verdicts against a dead
// shard: lenient drops and counts, strict errors.
func TestShardOverflowOnDegraded(t *testing.T) {
	arrivals := testArrivals(7, 40, 60)
	for _, tc := range []struct {
		policy  OverflowPolicy
		wantErr bool
	}{
		{OverflowDrop, false},
		{OverflowError, true},
		{OverflowBlock, true},
	} {
		t.Run(tc.policy.String(), func(t *testing.T) {
			sup := mustSupervisor(t, arrivals, "", func(o *Options) {
				o.Shards = 1
				o.Overflow = tc.policy
			})
			sup.procs[0].degrade(fmt.Errorf("forced by test"), true)
			err := sup.Ingest(ev(5, "entersArea(v1, a1)"))
			if tc.wantErr && err == nil {
				t.Fatal("strict policy admitted an arrival to a degraded shard")
			}
			if !tc.wantErr {
				if err != nil {
					t.Fatal(err)
				}
				sup.procs[0].mu.Lock()
				dropped := sup.procs[0].dropped
				sup.procs[0].mu.Unlock()
				if dropped != 1 {
					t.Fatalf("dropped = %d, want 1", dropped)
				}
			}
			if _, err := sup.Close(); tc.policy == OverflowError && err == nil {
				t.Fatal("strict Close did not report the degraded shard")
			}
		})
	}
}

func mustSupervisor(t *testing.T, arrivals stream.Stream, faults string, tweak func(*Options)) *Supervisor {
	t.Helper()
	plan, err := fault.Parse(faults)
	if err != nil {
		t.Fatal(err)
	}
	first, last := arrivals.TimeRange()
	opts := Options{
		Shards: 4,
		Stream: rtec.StreamOptions{
			RunOptions:      rtec.RunOptions{Window: 100, Start: first, End: last + 1},
			MaxDelay:        60,
			CheckpointPath:  filepath.Join(t.TempDir(), "run.ckpt"),
			CheckpointEvery: 1,
		},
		Seed:   7,
		Faults: plan,
	}
	if tweak != nil {
		tweak(&opts)
	}
	sup, err := NewSupervisor(testEngine(t, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sup
}

func TestSupervisorLifecycleErrors(t *testing.T) {
	arrivals := testArrivals(7, 10, 60)
	sup := mustSupervisor(t, arrivals, "", nil)
	if _, err := sup.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sup.Ingest(ev(1, "entersArea(v1, a1)")); err == nil {
		t.Fatal("Ingest after Close accepted")
	}
	if _, err := sup.Close(); err == nil {
		t.Fatal("second Close accepted")
	}
	if _, err := NewSupervisor(testEngine(t, 1), Options{Shards: 2}); err == nil {
		t.Fatal("supervisor planned without explicit bounds")
	}
}

func TestParseOverflow(t *testing.T) {
	for _, s := range []string{"block", "drop", "error", ""} {
		p, err := ParseOverflow(s)
		if err != nil {
			t.Fatal(err)
		}
		if s != "" && p.String() != s {
			t.Fatalf("ParseOverflow(%q).String() = %q", s, p)
		}
	}
	if _, err := ParseOverflow("panic"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// FuzzShardFaultSchedule drives the supervisor with arbitrary fault
// schedules. The invariant: any run that completes without degradation or
// drops is byte-identical to the fault-free run over the same stream.
func FuzzShardFaultSchedule(f *testing.F) {
	f.Add("panic@w2", uint8(4))
	f.Add("hang@w1:s0", uint8(2))
	f.Add("ckpt-truncate@w2,panic@w3", uint8(1))
	f.Add("panic@w1!", uint8(3))
	f.Add("", uint8(4))
	arrivals := testArrivals(7, 40, 60)
	f.Fuzz(func(t *testing.T, spec string, shards uint8) {
		plan, err := fault.Parse(spec)
		if err != nil {
			t.Skip()
		}
		n := int(shards%4) + 1
		tweak := func(o *Options) {
			o.Shards = n
			o.Clock = clock.NewVirtual(time.Unix(0, 0))
			o.Deadline = 10 * time.Second
			o.PollQuantum = 2 * time.Millisecond
			o.MaxRestarts = 6
			o.Faults = plan
		}
		want, err := runSharded(t, 1, arrivals, "", func(o *Options) {
			tweak(o)
			o.Faults = &fault.Plan{}
		})
		if err != nil {
			t.Fatalf("fault-free run failed: %v", err)
		}
		got, err := runSharded(t, 1, arrivals, "", tweak)
		if err != nil || got.res.Degraded > 0 {
			return // the schedule exhausted a shard; no identity promised
		}
		requireIdentical(t, want, got)
	})
}
