// Package fault injects deterministic failures into the supervised shard
// runtime, mirroring internal/llm/fault at the recognition seam: a Plan
// parsed from a compact spec names which shards fail, how, and at which
// window, and the supervisor consults per-shard Injectors at its delivery
// and checkpoint hook points. Trigger state lives in the Injector, outside
// the shard process it kills, so a restarted shard replays past a fired
// trigger instead of dying again — which is what makes "same seed + faults
// produces byte-identical output to a fault-free run" a testable property.
//
// Spec grammar (comma-separated triggers):
//
//	kind@wN[:sK][!]
//
// where kind is panic, hang or ckpt-truncate, N is the 1-based window
// delivery the trigger fires at, the optional :sK scopes it to shard K
// (default: every shard), and a trailing ! makes it fire on every matching
// delivery instead of once per run. Examples:
//
//	panic@w3              every shard panics at its 3rd window
//	hang@w2:s1            shard 1 hangs at its 2nd window
//	ckpt-truncate@w2,panic@w3:s0!
package fault

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Kind is a failure mode.
type Kind int

const (
	// None is the zero action: no fault.
	None Kind = iota
	// Panic makes the shard panic at the trigger window's delivery —
	// the supervisor catches it and restarts from the last checkpoint.
	Panic
	// Hang blocks the shard at the trigger window's delivery until the
	// supervisor's deadline watchdog kills it.
	Hang
	// Truncate tears the shard's checkpoint file in half after the write
	// that covers the trigger window, simulating a crash mid-write or a
	// bad disk; the next restart must fall back to the previous
	// generation.
	Truncate
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Hang:
		return "hang"
	case Truncate:
		return "ckpt-truncate"
	default:
		return "none"
	}
}

// Trigger is one scheduled fault.
type Trigger struct {
	Kind   Kind
	Window int  // 1-based first-time window delivery it fires at
	Shard  int  // shard scope; -1 means every shard
	Every  bool // fire on every matching delivery, not once per run
}

func (t Trigger) String() string {
	s := fmt.Sprintf("%s@w%d", t.Kind, t.Window)
	if t.Shard >= 0 {
		s += fmt.Sprintf(":s%d", t.Shard)
	}
	if t.Every {
		s += "!"
	}
	return s
}

// Plan is a parsed fault schedule.
type Plan struct {
	Triggers []Trigger
}

// Zero reports whether the plan schedules nothing.
func (p *Plan) Zero() bool { return p == nil || len(p.Triggers) == 0 }

// Parse reads the spec grammar. An empty spec is the zero plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		raw := part
		t := Trigger{Shard: -1}
		if strings.HasSuffix(part, "!") {
			t.Every = true
			part = part[:len(part)-1]
		}
		kind, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("shard fault %q: want kind@wN[:sK][!]", raw)
		}
		switch kind {
		case "panic":
			t.Kind = Panic
		case "hang":
			t.Kind = Hang
		case "ckpt-truncate":
			t.Kind = Truncate
		default:
			return nil, fmt.Errorf("shard fault %q: unknown kind %q (want panic, hang or ckpt-truncate)", raw, kind)
		}
		win, scope, scoped := strings.Cut(rest, ":")
		if !strings.HasPrefix(win, "w") {
			return nil, fmt.Errorf("shard fault %q: window %q must look like w3", raw, win)
		}
		n, err := strconv.Atoi(win[1:])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("shard fault %q: window %q must be a positive number", raw, win)
		}
		t.Window = n
		if scoped {
			if !strings.HasPrefix(scope, "s") {
				return nil, fmt.Errorf("shard fault %q: shard scope %q must look like s1", raw, scope)
			}
			k, err := strconv.Atoi(scope[1:])
			if err != nil || k < 0 {
				return nil, fmt.Errorf("shard fault %q: shard scope %q must be a non-negative number", raw, scope)
			}
			t.Shard = k
		}
		p.Triggers = append(p.Triggers, t)
	}
	return p, nil
}

// String renders the plan back in spec grammar.
func (p *Plan) String() string {
	if p.Zero() {
		return ""
	}
	parts := make([]string, len(p.Triggers))
	for i, t := range p.Triggers {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}

// ForShard builds shard k's injector: the triggers in scope, each with its
// own fired latch. The injector belongs to the supervisor, not the shard
// process — trigger state survives shard restarts by design.
func (p *Plan) ForShard(k int) *Injector {
	in := &Injector{shard: k}
	if p == nil {
		return in
	}
	for _, t := range p.Triggers {
		if t.Shard == -1 || t.Shard == k {
			in.triggers = append(in.triggers, t)
		}
	}
	in.fired = make([]bool, len(in.triggers))
	return in
}

// Injector holds one shard's scheduled faults. Not safe for concurrent use;
// the supervisor consults it only from the owning shard's process loop.
type Injector struct {
	shard    int
	triggers []Trigger
	fired    []bool
	count    int64
}

// OnDeliver consults the plan at the 1-based n-th first-time window
// delivery and returns the fault to act out (None, Panic or Hang).
func (in *Injector) OnDeliver(n int) Kind {
	for i, t := range in.triggers {
		if t.Kind == Truncate || t.Window != n {
			continue
		}
		if in.fired[i] && !t.Every {
			continue
		}
		in.fired[i] = true
		in.count++
		return t.Kind
	}
	return None
}

// OnCheckpoint consults the plan after a checkpoint write with the given
// window count; true means the caller must tear the checkpoint file.
func (in *Injector) OnCheckpoint(windows int) bool {
	for i, t := range in.triggers {
		if t.Kind != Truncate || windows < t.Window {
			continue
		}
		if in.fired[i] && !t.Every {
			continue
		}
		in.fired[i] = true
		in.count++
		return true
	}
	return false
}

// Fired returns how many faults this injector has acted out.
func (in *Injector) Fired() int64 { return in.count }

// SeedFor derives a per-shard rng seed from the run seed and the shard
// name, fnv-64a over "seed|name" exactly like internal/llm/fault does per
// model — so every shard's backoff jitter is deterministic and distinct.
func SeedFor(seed int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, name)
	return int64(h.Sum64())
}
