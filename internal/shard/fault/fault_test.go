package fault

import "testing"

func TestParseRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"panic@w3",
		"hang@w2:s1",
		"ckpt-truncate@w2,panic@w3:s0!",
		"",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"explode@w3",       // unknown kind
		"panic",            // no window
		"panic@3",          // missing w
		"panic@w0",         // window must be >= 1
		"panic@wx",         // not a number
		"panic@w2:x1",      // bad shard scope
		"panic@w2:s-1",     // negative shard
		"hang@w1,bogus@w2", // one bad trigger poisons the spec
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestScopeAndLatch(t *testing.T) {
	p, err := Parse("panic@w2:s1,hang@w3")
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := p.ForShard(0), p.ForShard(1)

	// Shard 0 is out of the panic's scope; the unscoped hang applies.
	if got := s0.OnDeliver(2); got != None {
		t.Fatalf("s0 window 2 = %s, want none", got)
	}
	if got := s0.OnDeliver(3); got != Hang {
		t.Fatalf("s0 window 3 = %s, want hang", got)
	}
	// Fire-once: the replay after a restart passes window 3 cleanly.
	if got := s0.OnDeliver(3); got != None {
		t.Fatalf("s0 window 3 replay = %s, want none (latched)", got)
	}

	if got := s1.OnDeliver(2); got != Panic {
		t.Fatalf("s1 window 2 = %s, want panic", got)
	}
	if got := s1.OnDeliver(2); got != None {
		t.Fatalf("s1 window 2 replay = %s, want none (latched)", got)
	}
	if s1.Fired() != 1 {
		t.Fatalf("s1 fired = %d, want 1", s1.Fired())
	}
}

func TestEveryRepeats(t *testing.T) {
	p, err := Parse("panic@w1!")
	if err != nil {
		t.Fatal(err)
	}
	in := p.ForShard(0)
	for i := 0; i < 3; i++ {
		if got := in.OnDeliver(1); got != Panic {
			t.Fatalf("repeat %d = %s, want panic", i, got)
		}
	}
}

func TestOnCheckpoint(t *testing.T) {
	p, err := Parse("ckpt-truncate@w2")
	if err != nil {
		t.Fatal(err)
	}
	in := p.ForShard(0)
	if in.OnCheckpoint(1) {
		t.Fatal("fired below the trigger window")
	}
	if !in.OnCheckpoint(2) {
		t.Fatal("did not fire at the trigger window")
	}
	if in.OnCheckpoint(3) {
		t.Fatal("fired twice")
	}
	// A panic trigger never truncates.
	p2, _ := Parse("panic@w1")
	if p2.ForShard(0).OnCheckpoint(5) {
		t.Fatal("panic trigger truncated a checkpoint")
	}
}

func TestSeedForDistinct(t *testing.T) {
	a, b := SeedFor(7, "shard-0"), SeedFor(7, "shard-1")
	if a == b {
		t.Fatal("per-shard seeds collide")
	}
	if a != SeedFor(7, "shard-0") {
		t.Fatal("seed not deterministic")
	}
}

func TestZero(t *testing.T) {
	var p *Plan
	if !p.Zero() {
		t.Fatal("nil plan not zero")
	}
	in := p.ForShard(3)
	if in.OnDeliver(1) != None || in.OnCheckpoint(1) {
		t.Fatal("nil plan fired")
	}
}
