// Package shard is the supervised shard runtime: it partitions a
// recognition stream by consistent entity hash across N independent engine
// shards, each driven incrementally through rtec.StreamRunner with its own
// checkpoint file and staged journal, and supervises them — panics are
// caught and the shard restarted from its last checkpoint with capped
// jittered backoff, hung shards are detected by a progress deadline and
// killed, torn checkpoints fall back to the previous generation, and shards
// whose restart budget is exhausted degrade instead of taking the run down.
//
// The runtime's contract is byte-determinism under faults: with the same
// seed, the same inputs and any schedule of injected faults
// (internal/shard/fault), every shard's recognised intervals and journal
// are byte-identical to a fault-free run's. Three mechanisms combine to
// make that hold: checkpoints restore the exact engine state, the ingest
// queue retains arrivals until a checkpoint generation commits (so a
// restarted shard can replay them in the original order), and journal
// records are staged in memory one checkpoint generation behind (so a crash
// discards and regenerates the uncommitted suffix instead of leaving a torn
// audit trail).
package shard

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"rtecgen/internal/clock"
	"rtecgen/internal/rtec"
	"rtecgen/internal/shard/fault"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
	"rtecgen/internal/telemetry/journal"
)

// OverflowPolicy decides what happens to an arrival when its shard's ingest
// queue is full — the same lenient/strict split as the reorder buffer's
// late-event admission: lenient counts and drops, strict fails the ingest.
type OverflowPolicy int

const (
	// OverflowBlock applies backpressure: Ingest waits for the consumer,
	// watching the progress deadline. The default.
	OverflowBlock OverflowPolicy = iota
	// OverflowDrop counts the arrival in rtec.shard.queue.dropped and
	// discards it — the lenient degradation verdict.
	OverflowDrop
	// OverflowError fails the Ingest call — the strict verdict.
	OverflowError
)

func (p OverflowPolicy) String() string {
	switch p {
	case OverflowDrop:
		return "drop"
	case OverflowError:
		return "error"
	default:
		return "block"
	}
}

// ParseOverflow reads an OverflowPolicy name: block, drop or error.
func ParseOverflow(s string) (OverflowPolicy, error) {
	switch s {
	case "block", "":
		return OverflowBlock, nil
	case "drop":
		return OverflowDrop, nil
	case "error":
		return OverflowError, nil
	}
	return 0, fmt.Errorf("shard: overflow policy %q (want block, drop or error)", s)
}

// Options configure a Supervisor.
type Options struct {
	// Shards is the number of entity partitions. Zero defaults to 1.
	Shards int
	// Stream is the per-shard engine configuration. Start and End must be
	// set explicitly (every shard must plan the same window sequence), and
	// CheckpointPath, when non-empty, is a base path: shard k checkpoints
	// to "<base>.s<k>". The Journal field is ignored — use JournalFor.
	Stream rtec.StreamOptions
	// JournalFor, when non-nil, returns shard k's journal sink (nil for
	// none). Records are staged in memory and committed one checkpoint
	// generation behind, so the sink never sees bytes a crash could retract.
	JournalFor func(k int) io.Writer
	// JournalOpts configure the per-shard journal writers.
	JournalOpts journal.Options
	// Resume continues a run a previous process parked with Suspend: each
	// shard whose checkpoint file exists restores from it, and the replayed
	// arrival prefix below the checkpoint is skipped at admission instead of
	// buffered. The caller must re-Ingest the same stream in the same order.
	// Requires Stream.CheckpointPath.
	Resume bool
	// JournalInfoFor, when non-nil under Resume, returns shard k's recovered
	// journal state (nil when the journal is fresh): the staged writer then
	// continues the committed sequence instead of restarting at 1, so the
	// appended suffix validates against the prefix already on disk.
	JournalInfoFor func(k int) *journal.RecoverInfo
	// OnWindow, when non-nil, observes every window delivery and revision of
	// every shard after the shard's own processing. It is called from shard
	// goroutines concurrently and must not block — a slow observer stalls
	// its shard's progress deadline. Crash replays re-deliver windows, so
	// delivery is at-least-once.
	OnWindow func(shard int, wr rtec.WindowResult)
	// Events, when non-nil, receives the supervisor's own lifecycle records
	// (shards_start, shard_restart, shard_kill, shard_degraded, shards_end).
	// Restart events exist only in faulted runs, so this trail is kept
	// apart from the byte-deterministic per-shard journals.
	Events *journal.Writer
	// QueueDepth bounds each shard's ingest queue. Zero defaults to 256.
	// Arrivals retained for checkpoint replay may push past the bound when
	// the consumer is idle (counted in rtec.shard.queue.overflow): the true
	// retention bound is the checkpoint interval.
	QueueDepth int
	// Overflow is the full-queue admission policy.
	Overflow OverflowPolicy
	// Deadline is the per-shard progress deadline: a shard that neither
	// consumes an arrival nor delivers a window for this long while having
	// work is killed and restarted. Zero defaults to 10s.
	Deadline time.Duration
	// PollQuantum is the supervision poll interval. Zero defaults to 2ms.
	PollQuantum time.Duration
	// MaxRestarts caps restarts per shard before it degrades. Zero
	// defaults to 5.
	MaxRestarts int
	// Seed derives each shard's deterministic backoff jitter.
	Seed int64
	// Faults is the injected failure schedule; nil or zero injects nothing.
	Faults *fault.Plan
	// Clock is the time source for deadlines and backoff. Nil defaults to
	// the real clock; tests use clock.Virtual for sleep-free supervision.
	Clock clock.Clock
	// Telemetry receives metrics and logs. Nil disables both.
	Telemetry *telemetry.Telemetry
}

// Result is the merged outcome of a sharded run.
type Result struct {
	// Recognition is the union of the non-degraded shards' recognitions.
	*rtec.Recognition
	// Stats aggregates the per-shard stream statistics.
	Stats rtec.StreamStats
	// Shards reports each shard's final status.
	Shards []ShardStatus
	// Degraded counts shards that failed permanently.
	Degraded int
}

// ShardStatus is one shard's final report.
type ShardStatus struct {
	Shard     int    `json:"shard"`
	Consumed  int64  `json:"consumed"`
	Windows   int    `json:"windows"`
	Restarts  int64  `json:"restarts"`
	Kills     int64  `json:"kills"`
	Dropped   int64  `json:"dropped"`
	Overflow  int64  `json:"overflow"`
	Degraded  bool   `json:"degraded"`
	Suspended bool   `json:"suspended,omitempty"`
	Err       string `json:"err,omitempty"`
}

// Supervisor journal payloads. Field order fixes the byte layout.
type shardsStartEvent struct {
	Shards     int    `json:"shards"`
	QueueDepth int    `json:"queue_depth"`
	Overflow   string `json:"overflow"`
	DeadlineMS int64  `json:"deadline_ms"`
	Faults     string `json:"faults,omitempty"`
	Seed       int64  `json:"seed"`
}

type shardRestartEvent struct {
	Shard    int    `json:"shard"`
	Attempt  int64  `json:"attempt"`
	Reason   string `json:"reason"`
	Consumed int    `json:"consumed"`
	Windows  int    `json:"windows"`
}

type shardKillEvent struct {
	Shard int `json:"shard"`
}

type shardDegradedEvent struct {
	Shard    int    `json:"shard"`
	Restarts int64  `json:"restarts"`
	Reason   string `json:"reason"`
	Err      string `json:"err"`
}

type shardsSuspendEvent struct {
	Shards int `json:"shards"`
}

type shardsSuspendedEvent struct {
	Shards   int   `json:"shards"`
	Degraded int   `json:"degraded"`
	Consumed int64 `json:"consumed"`
	Windows  int64 `json:"windows"`
}

type shardsEndEvent struct {
	Shards   int   `json:"shards"`
	Degraded int   `json:"degraded"`
	Restarts int64 `json:"restarts"`
	Kills    int64 `json:"kills"`
	Observed int64 `json:"observed"`
	Windows  int64 `json:"windows"`
}

// watchdogStride is how many Ingest calls pass between supervisor-side
// deadline sweeps over all shards.
const watchdogStride = 64

// Supervisor runs N crash-recovering engine shards over one entity
// partitioning. Ingest and Close must be called from a single goroutine;
// everything else is internal.
type Supervisor struct {
	eng      *rtec.Engine
	opts     Options
	tel      *telemetry.Telemetry
	clk      clock.Clock
	procs    []*proc
	ingested int64
	closed   bool
}

// NewSupervisor partitions the run across opts.Shards supervised shards and
// starts them. Close finishes the run and merges the results.
func NewSupervisor(eng *rtec.Engine, opts Options) (*Supervisor, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.Stream.Start == 0 && opts.Stream.End == 0 {
		return nil, fmt.Errorf("shard: sharded runs need explicit RunOptions.Start/End bounds")
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 10 * time.Second
	}
	if opts.PollQuantum <= 0 {
		opts.PollQuantum = 2 * time.Millisecond
	}
	if opts.MaxRestarts <= 0 {
		opts.MaxRestarts = 5
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	if opts.Resume && opts.Stream.CheckpointPath == "" {
		return nil, fmt.Errorf("shard: Resume needs a checkpoint path to restore from")
	}
	s := &Supervisor{eng: eng, opts: opts, tel: opts.Telemetry, clk: opts.Clock}
	s.describeMetrics()
	s.journalEvent("shards_start", shardsStartEvent{
		Shards: opts.Shards, QueueDepth: opts.QueueDepth,
		Overflow: opts.Overflow.String(), DeadlineMS: opts.Deadline.Milliseconds(),
		Faults: opts.Faults.String(), Seed: opts.Seed,
	})
	now := s.clk.Now()
	for k := 0; k < opts.Shards; k++ {
		p := &proc{
			id:       k,
			sup:      s,
			inj:      opts.Faults.ForShard(k),
			lastMove: now,

			mDepth:    s.tel.Gauge(shardMetric(k, "queue.depth")),
			mConsumed: s.tel.Gauge(shardMetric(k, "consumed")),
			mWindows:  s.tel.Gauge(shardMetric(k, "windows")),
			mDegraded: s.tel.Gauge(shardMetric(k, "degraded")),
			mRestarts: s.tel.Counter(shardMetric(k, "restarts")),
		}
		p.cond = sync.NewCond(&p.mu)
		if opts.JournalFor != nil {
			if out := opts.JournalFor(k); out != nil {
				var info *journal.RecoverInfo
				if opts.Resume && opts.JournalInfoFor != nil {
					info = opts.JournalInfoFor(k)
				}
				if info != nil {
					p.stage = newStagedJournalResumed(out, opts.JournalOpts, *info)
				} else {
					p.stage = newStagedJournal(out, opts.JournalOpts)
				}
			}
		}
		if opts.Resume {
			cp, err := s.loadResume(k)
			if err != nil {
				return nil, err
			}
			if cp != nil {
				// Pin both staged generations and the consumer cursor to the
				// snapshot's position before any push or attempt can race.
				// base stays 0: the replayed prefix advances it one skipped
				// arrival at a time until it catches up with the cursor.
				p.resumeCkpt = cp
				p.skipBelow = cp.Consumed
				p.taken = cp.Consumed
				b := p.stage.boundary(cp.Consumed)
				p.prevB, p.lastB = b, b
			}
		}
		s.procs = append(s.procs, p)
	}
	for _, p := range s.procs {
		go p.run()
	}
	return s, nil
}

// loadResume loads shard k's cross-process resume snapshot. A shard with no
// checkpoint file (neither generation) starts fresh — legal when the
// previous process suspended before this shard ever checkpointed; an empty
// snapshot (nothing consumed, nothing delivered) also starts fresh, so the
// run_start record is journalled on the first ingest exactly as an
// uninterrupted run would.
func (s *Supervisor) loadResume(k int) (*rtec.Checkpoint, error) {
	path := s.checkpointPath(k)
	if !fileExists(path) && !fileExists(path+".prev") {
		return nil, nil
	}
	cp, _, err := rtec.LoadCheckpointWithFallback(path)
	if err != nil {
		return nil, fmt.Errorf("shard %d resume: %w", k, err)
	}
	if cp.Consumed == 0 && cp.Windows == 0 {
		return nil, nil
	}
	return cp, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// shardMetric names shard k's instrument: rtec.shard.s<k>.<name>.
func shardMetric(k int, name string) string {
	return fmt.Sprintf("rtec.shard.s%d.%s", k, name)
}

func (s *Supervisor) describeMetrics() {
	if s.tel == nil || s.tel.Registry == nil {
		return
	}
	reg := s.tel.Registry
	reg.Describe("rtec.shard.restarts", "Shard restarts after a caught panic or a watchdog kill.")
	reg.Describe("rtec.shard.kills", "Shards killed by the progress-deadline watchdog.")
	reg.Describe("rtec.shard.panics", "Panics caught by shard supervision.")
	reg.Describe("rtec.shard.hangs", "Injected hangs acted out by shards.")
	reg.Describe("rtec.shard.faults", "Injected faults acted out by shards.")
	reg.Describe("rtec.shard.ckpt.fallbacks", "Restarts that fell back to the previous checkpoint generation.")
	reg.Describe("rtec.shard.queue.dropped", "Arrivals dropped by the lenient overflow policy.")
	reg.Describe("rtec.shard.queue.overflow", "Soft admissions past the queue bound (checkpoint retention).")
	reg.Describe("rtec.shard.degraded", "Shards that failed permanently this run.")
	for k := 0; k < s.opts.Shards; k++ {
		reg.Describe(shardMetric(k, "queue.depth"), "Retained arrivals in this shard's ingest queue.")
		reg.Describe(shardMetric(k, "consumed"), "Arrivals this shard has fully processed.")
		reg.Describe(shardMetric(k, "windows"), "Windows this shard has delivered at least once.")
		reg.Describe(shardMetric(k, "degraded"), "1 once this shard has failed permanently.")
		reg.Describe(shardMetric(k, "restarts"), "Restarts of this shard.")
	}
}

// runnerOpts builds shard k's engine configuration from the template.
func (s *Supervisor) runnerOpts(k int, jw *journal.Writer) rtec.StreamOptions {
	opts := s.opts.Stream
	opts.CheckpointPath = s.checkpointPath(k)
	opts.Journal = jw
	return opts
}

// checkpointPath is shard k's checkpoint file: "<base>.s<k>", or empty when
// checkpointing is off.
func (s *Supervisor) checkpointPath(k int) string {
	if s.opts.Stream.CheckpointPath == "" {
		return ""
	}
	return fmt.Sprintf("%s.s%d", s.opts.Stream.CheckpointPath, k)
}

func (s *Supervisor) pollQuantum() time.Duration { return s.opts.PollQuantum }

// journalEvent appends one supervisor lifecycle record; failures are logged,
// not fatal — the supervisor trail is diagnostic, unlike shard journals.
func (s *Supervisor) journalEvent(typ string, data any) {
	if err := s.opts.Events.Append(typ, data); err != nil {
		s.tel.Logger().Warn("supervisor journal append failed",
			"component", "shard", "type", typ, "err", err)
	}
}

// Ingest routes one arrival to its entity's shard and admits it under the
// overflow policy. Every watchdogStride calls it also sweeps all shards for
// deadline violations, so a wedged shard is caught even while the healthy
// ones keep the stream flowing.
func (s *Supervisor) Ingest(e stream.Event) error {
	if s.closed {
		return fmt.Errorf("shard: Ingest after Close")
	}
	s.ingested++
	if s.ingested%watchdogStride == 0 {
		s.sweep()
	}
	k := int(rtec.EventEntity(e) % uint64(len(s.procs)))
	return s.procs[k].push(e)
}

// sweep kills every shard past its progress deadline.
func (s *Supervisor) sweep() {
	now := s.clk.Now()
	for _, p := range s.procs {
		if p.stale(now) {
			s.journalEvent("shard_kill", shardKillEvent{Shard: p.id})
			s.tel.Logger().Warn("shard deadline exceeded, killing",
				"component", "shard", "shard", p.id)
			p.kill()
		}
	}
}

// Close ends the stream: every shard's queue is closed, the drain is
// supervised under the same deadline watchdog, and the per-shard results
// are merged. With OverflowError, any degraded shard fails the run; the
// lenient policies return the partial merge and report degradation in the
// statuses.
func (s *Supervisor) Close() (*Result, error) {
	if s.closed {
		return nil, fmt.Errorf("shard: Close called twice")
	}
	s.closed = true
	for _, p := range s.procs {
		p.closeQueue()
	}
	s.waitDrain()
	res := &Result{}
	recs := make([]*rtec.Recognition, 0, len(s.procs))
	end := shardsEndEvent{Shards: len(s.procs)}
	var firstErr error
	for _, p := range s.procs {
		st := ShardStatus{
			Shard: p.id, Restarts: p.restarts, Kills: p.kills,
			Dropped: p.dropped, Overflow: p.overflow, Degraded: p.degraded,
		}
		if p.degraded {
			st.Err = p.failErr.Error()
			res.Degraded++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d degraded: %w", p.id, p.failErr)
			}
		} else if p.result != nil {
			st.Consumed = p.result.Stats.Observed
			st.Windows = int(p.delivered)
			recs = append(recs, p.result.Recognition)
			addStats(&res.Stats, p.result.Stats)
		}
		end.Restarts += p.restarts
		end.Kills += p.kills
		res.Shards = append(res.Shards, st)
	}
	res.Recognition = rtec.MergeRecognitions(recs...)
	end.Degraded = res.Degraded
	end.Observed = res.Stats.Observed
	end.Windows = int64(sumWindows(res.Shards))
	s.journalEvent("shards_end", end)
	if res.Degraded > 0 && s.opts.Overflow == OverflowError {
		return res, firstErr
	}
	return res, nil
}

// waitDrain blocks until every shard's consumer is done, keeping the
// deadline watchdog running so a shard that wedges during the drain is
// killed and restarted rather than hanging the caller forever.
func (s *Supervisor) waitDrain() {
	for _, p := range s.procs {
		for {
			p.mu.Lock()
			done := p.done
			p.mu.Unlock()
			if done {
				break
			}
			if p.stale(s.clk.Now()) {
				s.journalEvent("shard_kill", shardKillEvent{Shard: p.id})
				p.kill()
			}
			s.clk.Sleep(s.pollQuantum())
		}
	}
}

// Suspend parks the runtime for a graceful cross-process restart: every
// shard finishes the arrivals it has already admitted, writes a suspend
// checkpoint at that boundary and commits its staged journal through it.
// No merged result is produced — a new process constructed with
// Options.Resume and re-fed the same stream continues the run with output
// byte-identical to an uninterrupted one. Requires Stream.CheckpointPath.
// Like Close, Suspend must come from the Ingest goroutine.
func (s *Supervisor) Suspend() ([]ShardStatus, error) {
	if s.closed {
		return nil, fmt.Errorf("shard: Suspend after Close")
	}
	if s.opts.Stream.CheckpointPath == "" {
		return nil, fmt.Errorf("shard: Suspend needs a checkpoint path to park into")
	}
	s.closed = true
	s.journalEvent("shards_suspend", shardsSuspendEvent{Shards: len(s.procs)})
	for _, p := range s.procs {
		p.suspendQueue()
	}
	s.waitDrain()
	end := shardsSuspendedEvent{Shards: len(s.procs)}
	var sts []ShardStatus
	var firstErr error
	for _, p := range s.procs {
		st := ShardStatus{
			Shard: p.id, Restarts: p.restarts, Kills: p.kills,
			Dropped: p.dropped, Overflow: p.overflow,
			Degraded: p.degraded, Suspended: p.suspended,
		}
		if p.degraded {
			st.Err = p.failErr.Error()
			end.Degraded++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d failed to park: %w", p.id, p.failErr)
			}
		} else {
			st.Consumed = int64(p.parkedAt)
			st.Windows = p.delivered
			end.Consumed += int64(p.parkedAt)
			end.Windows += int64(p.delivered)
		}
		sts = append(sts, st)
	}
	s.journalEvent("shards_suspended", end)
	return sts, firstErr
}

func addStats(dst *rtec.StreamStats, src rtec.StreamStats) {
	dst.Observed += src.Observed
	dst.Accepted += src.Accepted
	dst.Late += src.Late
	dst.Duplicates += src.Duplicates
	dst.Dropped += src.Dropped
	dst.Revisions += src.Revisions
	dst.Checkpoints += src.Checkpoints
}

func sumWindows(sts []ShardStatus) int {
	n := 0
	for _, st := range sts {
		n += st.Windows
	}
	return n
}

// Restarts returns the total restarts across all shards so far.
func (s *Supervisor) Restarts() int64 {
	var n int64
	for _, p := range s.procs {
		p.mu.Lock()
		n += p.restarts
		p.mu.Unlock()
	}
	return n
}

// RegisterHealth adds the per-shard readiness check to a telemetry server:
// /healthz reports 503 with a "shards" failure while any shard is degraded.
func (s *Supervisor) RegisterHealth(srv *telemetry.Server) {
	srv.Ready("shards", func() error {
		var bad []int
		for _, p := range s.procs {
			p.mu.Lock()
			if p.degraded {
				bad = append(bad, p.id)
			}
			p.mu.Unlock()
		}
		if len(bad) > 0 {
			return fmt.Errorf("degraded shards: %v", bad)
		}
		return nil
	})
}
