package shard

import (
	"bytes"
	"fmt"
	"io"

	"rtecgen/internal/telemetry/journal"
)

// stageBoundary is a commit point of a shard's staged journal: the engine
// state it corresponds to (arrivals consumed at the checkpoint), the journal
// writer's sequencing mark, and the absolute byte offset of the journal at
// that point. A shard restarting from a checkpoint rolls its stage back to
// the matching boundary and replays — regenerating the exact bytes the
// crashed attempt had staged, so the recovered journal is byte-identical to
// a fault-free run's.
type stageBoundary struct {
	consumed int
	mark     journal.Mark
	offset   int64
}

// stagedJournal buffers a shard's journal records in memory and commits
// them to the backing sink one checkpoint generation behind the engine.
// The lag is the crash-consistency discipline: a record reaches the file
// only once the NEXT checkpoint lands, which proves the engine state that
// produced the record can never be rolled back past it. Everything after
// the last committed boundary is still replayable from a checkpoint, so a
// crash discards and regenerates it instead of leaving a torn or
// duplicated audit trail. A nil *stagedJournal is a no-op (shard journals
// are optional), like a nil journal.Writer.
type stagedJournal struct {
	out       io.Writer
	w         *journal.Writer
	buf       bytes.Buffer // staged records past `committed`
	committed int64        // absolute bytes flushed to out
}

// newStagedJournal stages records for out. out may not be nil — callers
// keep a nil *stagedJournal instead.
func newStagedJournal(out io.Writer, opts journal.Options) *stagedJournal {
	s := &stagedJournal{out: out}
	s.w = journal.NewWriter(&s.buf, opts)
	return s
}

// newStagedJournalResumed stages records for a journal file recovered from
// a previous process: the writer continues the recovered sequence instead of
// restarting at 1, so the appended suffix validates against the committed
// prefix. The stage's own offsets restart at zero — everything the previous
// process committed is already in the file, and the suspend protocol
// guarantees nothing staged was lost.
func newStagedJournalResumed(out io.Writer, opts journal.Options, info journal.RecoverInfo) *stagedJournal {
	s := &stagedJournal{out: out}
	s.w = journal.NewWriterResumed(&s.buf, opts, info)
	return s
}

// writer returns the journal writer the engine appends through. Nil-safe.
func (s *stagedJournal) writer() *journal.Writer {
	if s == nil {
		return nil
	}
	return s.w
}

// boundary captures the current stage position for the checkpoint that
// consumed `consumed` arrivals.
func (s *stagedJournal) boundary(consumed int) stageBoundary {
	if s == nil {
		return stageBoundary{consumed: consumed}
	}
	return stageBoundary{consumed: consumed, mark: s.w.Mark(), offset: s.committed + int64(s.buf.Len())}
}

// commitThrough flushes staged bytes up to the boundary to the sink.
func (s *stagedJournal) commitThrough(b stageBoundary) error {
	if s == nil {
		return nil
	}
	n := b.offset - s.committed
	if n < 0 {
		return fmt.Errorf("shard: journal boundary %d behind committed %d", b.offset, s.committed)
	}
	if n == 0 {
		return nil
	}
	if _, err := s.out.Write(s.buf.Next(int(n))); err != nil {
		return fmt.Errorf("shard: journal commit: %w", err)
	}
	s.committed = b.offset
	return nil
}

// commitAll flushes everything staged — the end-of-run commit, once no
// rollback can happen any more.
func (s *stagedJournal) commitAll() error {
	if s == nil {
		return nil
	}
	return s.commitThrough(s.boundary(0))
}

// rollbackTo discards the staged suffix past the boundary and rewinds the
// writer's sequencing, so a replay regenerates identical records. It fails
// if the boundary predates the committed prefix — those bytes are on disk
// and gone for good, which callers treat as an unrecoverable shard.
func (s *stagedJournal) rollbackTo(b stageBoundary) error {
	if s == nil {
		return nil
	}
	keep := b.offset - s.committed
	if keep < 0 {
		return fmt.Errorf("shard: journal rollback to %d behind committed %d", b.offset, s.committed)
	}
	if keep > int64(s.buf.Len()) {
		return fmt.Errorf("shard: journal rollback to %d past staged end %d", b.offset, s.committed+int64(s.buf.Len()))
	}
	s.buf.Truncate(int(keep))
	s.w.Rollback(b.mark)
	return nil
}
