package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"rtecgen/internal/rtec"
	"rtecgen/internal/shard/fault"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
)

// errKilled is the sentinel a shard's consumer loop returns when the
// watchdog killed it (a hang, or a stall past the deadline); the run loop
// restarts the shard from its last checkpoint like any other crash.
var errKilled = errors.New("shard killed by deadline watchdog")

// errSuspend is the sentinel next returns once a suspend was requested and
// the queue backlog is drained; errParked is what attempt returns after the
// runner's state reached disk, telling the run loop to stop without a
// result and without a restart.
var (
	errSuspend = errors.New("shard suspend requested")
	errParked  = errors.New("shard parked")
)

// ErrQueueFull reports a strict-policy admission rejection: the target
// shard's ingest queue was full. The arrival was not admitted; callers may
// surface this as backpressure (HTTP 429) and retry.
var ErrQueueFull = errors.New("ingest queue full")

// ErrDegraded reports an arrival routed to a permanently failed shard under
// a strict policy. Retrying cannot succeed within this run.
var ErrDegraded = errors.New("shard degraded")

// permanentError marks a failure no restart can fix (journal sink broken,
// both checkpoint generations unusable past the acked queue prefix, ...).
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// proc is one supervised shard: a bounded ingest queue with
// checkpoint-acked retention, a consumer goroutine driving an incremental
// engine runner over the queue, a staged journal committing one checkpoint
// generation behind, and the crash-recovery state that makes restarts
// byte-invisible.
type proc struct {
	id  int
	sup *Supervisor

	mu   sync.Mutex
	cond *sync.Cond
	// Queue state (guarded by mu). q holds the retained arrivals; base is
	// the absolute index of q[0]. The tail past `acked` is retained for
	// replay even though the consumer (cursor `taken`) is past it.
	q         []stream.Event
	base      int
	taken     int // absolute index of the next arrival the consumer takes
	closed    bool
	killed    bool
	done      bool
	degraded  bool
	suspend   bool // drain the backlog, then park instead of waiting
	suspended bool // parked: state is on disk, no result produced
	failErr   error
	lastMove  time.Time // progress stamp for the deadline watchdog
	dropped   int64     // lenient overflow drops
	overflow  int64     // soft admissions past the depth bound (idle consumer)
	// skipBelow is the cross-process resume cursor: arrivals below this
	// absolute index were consumed by the previous process's checkpoint, so
	// push advances base past them instead of buffering a replayed prefix
	// the consumer will never need.
	skipBelow int
	skipped   int64

	// Consumer-side state (owned by the consumer goroutine and, between
	// attempts, the run loop; never touched by the producer).
	inj          *fault.Injector
	stage        *stagedJournal
	prevB, lastB stageBoundary
	ckptSeen     int64
	delivered    int // absolute count of first-time window deliveries
	restarts     int64
	kills        int64
	result       *rtec.StreamResult
	resumeCkpt   *rtec.Checkpoint // cross-process resume snapshot, if any
	parkedAt     int              // arrivals consumed when the shard parked

	// Hoisted per-shard instruments.
	mDepth, mConsumed, mWindows, mDegraded *telemetry.Gauge
	mRestarts                              *telemetry.Counter
}

// touch stamps the progress clock.
func (p *proc) touch() {
	p.mu.Lock()
	p.lastMove = p.sup.clk.Now()
	p.mu.Unlock()
}

// stale reports whether the shard has made no progress for the deadline,
// while having work it should be doing.
func (p *proc) stale(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done || p.killed {
		return false
	}
	busy := p.taken < p.base+len(p.q) || p.closed
	return busy && now.Sub(p.lastMove) > p.sup.opts.Deadline
}

// kill asks the watchdog's victim to abandon its current attempt: the
// consumer observes the flag at its next queue wait or hang point and
// returns errKilled to the run loop.
func (p *proc) kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.killed || p.done {
		return
	}
	p.killed = true
	p.kills++
	p.lastMove = p.sup.clk.Now() // give the restart a fresh deadline
	p.sup.tel.Counter("rtec.shard.kills").Inc()
	p.cond.Broadcast()
}

// next blocks until an arrival is available at the consumer cursor, the
// queue is closed and drained (ok=false, nil error), or the shard is
// killed.
func (p *proc) next() (stream.Event, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.killed {
			return stream.Event{}, false, errKilled
		}
		if p.taken < p.base+len(p.q) {
			e := p.q[p.taken-p.base]
			p.taken++
			return e, true, nil
		}
		if p.closed {
			return stream.Event{}, false, nil
		}
		// A suspend parks only once the backlog is drained: the arrival
		// checks above win, so everything already admitted is processed
		// (and checkpointed) before the shard stops.
		if p.suspend {
			return stream.Event{}, false, errSuspend
		}
		// Idle-waiting for input is progress, not a hang.
		p.lastMove = p.sup.clk.Now()
		p.cond.Wait()
	}
}

// ack drops the queue prefix below the absolute index upto — called when a
// checkpoint generation commits, making replay below it unnecessary.
func (p *proc) ack(upto int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if upto > p.base {
		n := upto - p.base
		if n > len(p.q) {
			n = len(p.q)
		}
		p.q = append(p.q[:0], p.q[n:]...)
		p.base += n
	}
	p.mDepth.Set(int64(len(p.q)))
	p.cond.Broadcast()
}

// push admits one arrival under the shard's overflow policy. Only the
// supervisor's ingest goroutine calls it.
func (p *proc) push(e stream.Event) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		// Replayed prefix of a cross-process resume: the checkpoint already
		// covers this arrival, so account for its queue position without
		// buffering it.
		if p.base+len(p.q) < p.skipBelow {
			p.base++
			p.skipped++
			return nil
		}
		if p.degraded {
			switch p.sup.opts.Overflow {
			case OverflowDrop:
				p.dropped++
				p.sup.tel.Counter("rtec.shard.queue.dropped").Inc()
				return nil
			default:
				// Strict — and blocking on a dead shard would hang forever.
				return fmt.Errorf("shard %d %w: %v", p.id, ErrDegraded, p.failErr)
			}
		}
		if len(p.q) < p.sup.opts.QueueDepth {
			p.q = append(p.q, e)
			p.mDepth.Set(int64(len(p.q)))
			p.cond.Broadcast()
			return nil
		}
		switch p.sup.opts.Overflow {
		case OverflowDrop:
			p.dropped++
			p.sup.tel.Counter("rtec.shard.queue.dropped").Inc()
			return nil
		case OverflowError:
			return fmt.Errorf("shard %d %w (%d arrivals)", p.id, ErrQueueFull, len(p.q))
		}
		// OverflowBlock. If the consumer has already taken everything, the
		// queue is full of retention (arrivals kept for checkpoint replay),
		// not backlog; no checkpoint ack can arrive without new input, so
		// blocking would deadlock. Admit softly and count the excursion —
		// the true retention bound is the checkpoint interval, not
		// QueueDepth.
		if p.taken >= p.base+len(p.q) {
			p.q = append(p.q, e)
			p.overflow++
			p.sup.tel.Counter("rtec.shard.queue.overflow").Inc()
			p.mDepth.Set(int64(len(p.q)))
			p.cond.Broadcast()
			return nil
		}
		// Consumer is behind: wait for it, watching the deadline.
		now := p.sup.clk.Now()
		if !p.killed && now.Sub(p.lastMove) > p.sup.opts.Deadline {
			p.mu.Unlock()
			p.kill()
			p.mu.Lock()
			continue
		}
		p.mu.Unlock()
		p.sup.clk.Sleep(p.sup.pollQuantum())
		p.mu.Lock()
	}
}

// closeQueue marks end of input and refreshes every progress stamp so the
// drain watchdog starts from now.
func (p *proc) closeQueue() {
	p.mu.Lock()
	p.closed = true
	p.lastMove = p.sup.clk.Now()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// suspendQueue asks the shard to drain its admitted backlog and then park
// at a clean arrival boundary instead of waiting for more input.
func (p *proc) suspendQueue() {
	p.mu.Lock()
	p.suspend = true
	p.lastMove = p.sup.clk.Now()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// deliverHook is the per-window callback wired into the shard's engine
// runner: it stamps progress, advances the absolute delivery counter and
// acts out scheduled faults at first-time deliveries.
func (p *proc) deliverHook(wr rtec.WindowResult) error {
	p.touch()
	// Fan deliveries (and revisions) out to the supervisor-level observer.
	// Crash replays re-deliver replayed windows, so observers see
	// at-least-once semantics; they must not block (see Options.OnWindow).
	if h := p.sup.opts.OnWindow; h != nil {
		h(p.id, wr)
	}
	if wr.Revision != 0 {
		return nil
	}
	p.delivered++
	switch p.inj.OnDeliver(p.delivered) {
	case fault.Panic:
		p.sup.tel.Counter("rtec.shard.faults").Inc()
		panic(fmt.Sprintf("injected panic at window %d of shard %d", p.delivered, p.id))
	case fault.Hang:
		p.sup.tel.Counter("rtec.shard.faults").Inc()
		return p.hangUntilKilled()
	}
	return nil
}

// hangUntilKilled blocks like a wedged shard until the watchdog's kill.
func (p *proc) hangUntilKilled() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.killed {
		p.cond.Wait()
	}
	return errKilled
}

// buildRunner constructs the engine runner for one attempt: a fresh run on
// the first attempt (or when nothing was ever checkpointed), otherwise a
// resume from the best usable checkpoint generation, with the staged
// journal rolled back to the matching boundary so the replay regenerates
// byte-identical records.
func (p *proc) buildRunner() (*rtec.StreamRunner, error) {
	opts := p.sup.runnerOpts(p.id, p.stage.writer())
	if p.ckptSeen == 0 {
		// Cross-process resume: continue from the previous process's suspend
		// (or last cadence) checkpoint. Both staged generations were pinned
		// to its boundary at construction, so an in-process crash before the
		// first new checkpoint rolls back to it and lands here again.
		if p.resumeCkpt != nil {
			if err := p.stage.rollbackTo(p.lastB); err != nil {
				return nil, permanentError{err}
			}
			r, err := p.sup.eng.ResumeStreamRunner(p.resumeCkpt, opts, p.deliverHook)
			if err != nil {
				return nil, permanentError{err}
			}
			p.delivered = p.resumeCkpt.Windows
			return r, nil
		}
		if err := p.stage.rollbackTo(p.prevB); err != nil {
			return nil, permanentError{err}
		}
		r, err := p.sup.eng.NewStreamRunner(opts, p.deliverHook)
		if err != nil {
			return nil, permanentError{err}
		}
		p.delivered = 0
		return r, nil
	}
	cp, from, err := rtec.LoadCheckpointWithFallback(opts.CheckpointPath)
	if err != nil {
		return nil, permanentError{fmt.Errorf("shard %d: %w", p.id, err)}
	}
	var b stageBoundary
	switch cp.Consumed {
	case p.lastB.consumed:
		b = p.lastB
	case p.prevB.consumed:
		b = p.prevB
		p.lastB = p.prevB
		p.sup.tel.Counter("rtec.shard.ckpt.fallbacks").Inc()
	default:
		return nil, permanentError{fmt.Errorf("shard %d: checkpoint %s consumed %d matches no staged generation (%d or %d)",
			p.id, from, cp.Consumed, p.prevB.consumed, p.lastB.consumed)}
	}
	if err := p.stage.rollbackTo(b); err != nil {
		return nil, permanentError{err}
	}
	r, err := p.sup.eng.ResumeStreamRunner(cp, opts, p.deliverHook)
	if err != nil {
		return nil, permanentError{err}
	}
	p.delivered = cp.Windows
	return r, nil
}

// attempt runs the shard until the queue drains or something goes wrong.
// Panics (injected or real) surface as errors for the run loop to restart.
func (p *proc) attempt() (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.sup.tel.Counter("rtec.shard.panics").Inc()
			err = fmt.Errorf("shard %d panicked: %v", p.id, r)
		}
	}()
	runner, err := p.buildRunner()
	if err != nil {
		return err
	}
	defer runner.Abort() // no-op once Finish ran
	// Align the checkpoint watermark with the runner's actual generation:
	// after a previous-generation fallback the resumed run re-writes
	// checkpoints the crashed attempt already saw, and each re-write must
	// re-run the commit protocol (idempotently) to keep the staged
	// boundaries in step.
	p.ckptSeen = runner.Checkpoints()
	p.syncCursor(runner.Consumed())
	for {
		e, ok, err := p.next()
		if err != nil {
			if errors.Is(err, errSuspend) {
				return p.park(runner)
			}
			return err
		}
		if !ok {
			break
		}
		if err := runner.Ingest(e); err != nil {
			return err
		}
		p.touch()
		p.mConsumed.Set(int64(runner.Consumed()))
		p.mWindows.Set(int64(runner.Windows()))
		if runner.Checkpoints() > p.ckptSeen {
			p.ckptSeen = runner.Checkpoints()
			if err := p.onCheckpoint(runner); err != nil {
				return err
			}
		}
	}
	res, err := runner.Finish()
	if err != nil {
		return err
	}
	if err := p.stage.commitAll(); err != nil {
		return permanentError{err}
	}
	p.mWindows.Set(int64(runner.Windows()))
	p.mConsumed.Set(int64(runner.Consumed()))
	p.result = res
	return nil
}

// park suspends the runner for a graceful cross-process drain: the engine
// writes a suspend checkpoint at its current arrival boundary and the
// staged journal commits everything — every staged record was generated by
// an arrival the checkpoint covers, so nothing committed can ever need a
// rollback, and the resumed process regenerates nothing twice.
func (p *proc) park(runner *rtec.StreamRunner) error {
	consumed, windows := runner.Consumed(), runner.Windows()
	if err := runner.Suspend(); err != nil {
		return permanentError{fmt.Errorf("shard %d suspend: %w", p.id, err)}
	}
	if err := p.stage.commitAll(); err != nil {
		return permanentError{err}
	}
	p.mConsumed.Set(int64(consumed))
	p.mWindows.Set(int64(windows))
	p.parkedAt = consumed
	return errParked
}

// syncCursor points the consumer cursor at the absolute replay position.
func (p *proc) syncCursor(at int) {
	p.mu.Lock()
	p.taken = at
	p.lastMove = p.sup.clk.Now()
	p.mu.Unlock()
}

// onCheckpoint runs the generation-lagged commit protocol after the engine
// wrote a checkpoint: act out a scheduled checkpoint-truncate fault, flush
// the staged journal through the PREVIOUS checkpoint's boundary, ack the
// queue below it, and shift the boundaries.
func (p *proc) onCheckpoint(runner *rtec.StreamRunner) error {
	if p.inj.OnCheckpoint(runner.Windows()) {
		p.sup.tel.Counter("rtec.shard.faults").Inc()
		if err := truncateFile(p.sup.checkpointPath(p.id)); err != nil {
			return permanentError{fmt.Errorf("shard %d: injected truncate: %w", p.id, err)}
		}
	}
	if err := p.stage.commitThrough(p.lastB); err != nil {
		return permanentError{err}
	}
	p.ack(p.lastB.consumed)
	p.prevB = p.lastB
	p.lastB = p.stage.boundary(runner.Consumed())
	return nil
}

// truncateFile tears a file in half — the deterministic torn-write fault.
func truncateFile(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, fi.Size()/2)
}

// run is the shard's supervision loop: attempts, restarts with capped
// jittered backoff, and degradation once restarts are exhausted or the
// failure is permanent.
func (p *proc) run() {
	rng := rand.New(rand.NewSource(fault.SeedFor(p.sup.opts.Seed, fmt.Sprintf("shard-%d", p.id))))
	for {
		err := p.attempt()
		if err == nil {
			p.mu.Lock()
			p.done = true
			p.cond.Broadcast()
			p.mu.Unlock()
			p.mConsumed.Set(int64(p.result.Stats.Observed))
			return
		}
		if errors.Is(err, errParked) {
			p.mu.Lock()
			p.done = true
			p.suspended = true
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		var perm permanentError
		permanent := errors.As(err, &perm)
		if permanent || p.restarts >= int64(p.sup.opts.MaxRestarts) {
			p.degrade(err, permanent)
			return
		}
		p.mu.Lock()
		p.restarts++
		p.mu.Unlock()
		p.mRestarts.Inc()
		p.sup.tel.Counter("rtec.shard.restarts").Inc()
		p.sup.journalEvent("shard_restart", shardRestartEvent{
			Shard: p.id, Attempt: p.restarts, Reason: err.Error(),
			Consumed: p.lastB.consumed, Windows: p.delivered,
		})
		p.sup.tel.Logger().Warn("shard restarting",
			"component", "shard", "shard", p.id, "attempt", p.restarts, "err", err)
		p.sup.clk.Sleep(backoff(rng, p.restarts))
		p.mu.Lock()
		p.killed = false
		p.lastMove = p.sup.clk.Now()
		p.mu.Unlock()
	}
}

// degrade marks the shard permanently failed: the queue stops accepting
// (per policy), /healthz reports it, and Close returns a partial result.
func (p *proc) degrade(err error, permanent bool) {
	p.mu.Lock()
	p.degraded = true
	p.done = true
	p.failErr = err
	p.cond.Broadcast()
	p.mu.Unlock()
	p.mDegraded.Set(1)
	p.sup.tel.Gauge("rtec.shard.degraded").Add(1)
	reason := "restarts exhausted"
	if permanent {
		reason = "permanent failure"
	}
	p.sup.journalEvent("shard_degraded", shardDegradedEvent{
		Shard: p.id, Restarts: p.restarts, Reason: reason, Err: err.Error(),
	})
	p.sup.tel.Logger().Error("shard degraded",
		"component", "shard", "shard", p.id, "restarts", p.restarts, "err", err)
}

// backoff is the capped full-jitter restart delay: base 10ms doubling per
// attempt, capped at 1s, jittered over [half, full).
func backoff(rng *rand.Rand, attempt int64) time.Duration {
	d := 10 * time.Millisecond << uint(attempt-1)
	if d > time.Second || d <= 0 {
		d = time.Second
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)))
}
