package shard

import (
	"bytes"
	"strings"
	"testing"

	"rtecgen/internal/telemetry/journal"
)

func TestStagedJournalCommitLag(t *testing.T) {
	var sink bytes.Buffer
	s := newStagedJournal(&sink, journal.Options{})
	zero := s.boundary(0)
	if err := s.w.Append("a", map[string]int{"n": 1}); err != nil {
		t.Fatal(err)
	}
	b1 := s.boundary(3)
	if err := s.w.Append("b", map[string]int{"n": 2}); err != nil {
		t.Fatal(err)
	}
	b2 := s.boundary(7)

	// Nothing reaches the sink until a boundary commits.
	if sink.Len() != 0 {
		t.Fatalf("sink has %d bytes before any commit", sink.Len())
	}
	if err := s.commitThrough(zero); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatal("zero boundary committed bytes")
	}
	if err := s.commitThrough(b1); err != nil {
		t.Fatal(err)
	}
	if got := sink.String(); !strings.Contains(got, `"a"`) || strings.Contains(got, `"b"`) {
		t.Fatalf("commit through b1 flushed the wrong records: %q", got)
	}
	// Re-committing an already-committed boundary is a no-op.
	if err := s.commitThrough(b1); err != nil {
		t.Fatal(err)
	}
	if err := s.commitAll(); err != nil {
		t.Fatal(err)
	}
	if got := sink.String(); !strings.Contains(got, `"b"`) {
		t.Fatalf("commitAll lost the staged tail: %q", got)
	}
	_ = b2
}

func TestStagedJournalRollbackRegeneratesBytes(t *testing.T) {
	var sink bytes.Buffer
	s := newStagedJournal(&sink, journal.Options{})
	if err := s.w.Append("a", map[string]int{"n": 1}); err != nil {
		t.Fatal(err)
	}
	b := s.boundary(1)
	if err := s.w.Append("b", map[string]int{"n": 2}); err != nil {
		t.Fatal(err)
	}
	uninterrupted := s.buf.String()

	// Crash: discard the uncommitted suffix past b, replay record "b".
	if err := s.rollbackTo(b); err != nil {
		t.Fatal(err)
	}
	if err := s.w.Append("b", map[string]int{"n": 2}); err != nil {
		t.Fatal(err)
	}
	if got := s.buf.String(); got != uninterrupted {
		t.Fatalf("replayed stage differs:\n%q\nvs\n%q", got, uninterrupted)
	}
	if err := s.commitAll(); err != nil {
		t.Fatal(err)
	}
	if sink.String() != uninterrupted {
		t.Fatalf("sink differs from uninterrupted stage:\n%q\nvs\n%q", sink.String(), uninterrupted)
	}
}

func TestStagedJournalRollbackBehindCommitFails(t *testing.T) {
	var sink bytes.Buffer
	s := newStagedJournal(&sink, journal.Options{})
	zero := s.boundary(0)
	if err := s.w.Append("a", nil); err != nil {
		t.Fatal(err)
	}
	b := s.boundary(1)
	if err := s.commitThrough(b); err != nil {
		t.Fatal(err)
	}
	if err := s.rollbackTo(zero); err == nil {
		t.Fatal("rollback behind the committed prefix accepted")
	}
	if err := s.rollbackTo(stageBoundary{offset: b.offset + 99}); err == nil {
		t.Fatal("rollback past the staged end accepted")
	}
	if err := s.commitThrough(zero); err == nil {
		t.Fatal("commit behind the committed prefix accepted")
	}
}

func TestStagedJournalNil(t *testing.T) {
	var s *stagedJournal
	if s.writer() != nil {
		t.Fatal("nil stage returned a writer")
	}
	b := s.boundary(5)
	if b.consumed != 5 {
		t.Fatal("nil stage lost the consumed count")
	}
	if err := s.commitThrough(b); err != nil {
		t.Fatal(err)
	}
	if err := s.commitAll(); err != nil {
		t.Fatal(err)
	}
	if err := s.rollbackTo(b); err != nil {
		t.Fatal(err)
	}
}
