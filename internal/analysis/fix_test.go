package analysis_test

import (
	"strings"
	"testing"

	"rtecgen/internal/analysis"
	"rtecgen/internal/parser"
)

func edit(start, end int, text string) analysis.TextEdit {
	return analysis.TextEdit{Span: analysis.Span{Start: start, End: end}, NewText: text}
}

func TestApplyFixesOrderAndDedupe(t *testing.T) {
	src := "abcdef"
	fixes := []analysis.SuggestedFix{
		{Message: "b->B", Edits: []analysis.TextEdit{edit(1, 2, "B")}},
		{Message: "e->E", Edits: []analysis.TextEdit{edit(4, 5, "E")}},
		{Message: "b->B again", Edits: []analysis.TextEdit{edit(1, 2, "B")}},
	}
	got, n := analysis.ApplyFixes(src, fixes)
	if got != "aBcdEf" {
		t.Fatalf("got %q", got)
	}
	// The identical edit dedupes, but all three fixes count as applied.
	if n != 3 {
		t.Fatalf("applied %d fixes, want 3", n)
	}
}

func TestApplyFixesConflictSkipsWholeFix(t *testing.T) {
	src := "abcdef"
	fixes := []analysis.SuggestedFix{
		{Message: "first", Edits: []analysis.TextEdit{edit(1, 3, "X")}},
		// Overlaps the first fix at [2,4): the entire fix is skipped, even
		// its non-overlapping second edit.
		{Message: "second", Edits: []analysis.TextEdit{edit(2, 4, "Y"), edit(5, 6, "Z")}},
	}
	got, n := analysis.ApplyFixes(src, fixes)
	if got != "aXdef" || n != 1 {
		t.Fatalf("got %q with %d applied", got, n)
	}
}

func TestApplyFixesBadSpanSkipped(t *testing.T) {
	src := "abc"
	fixes := []analysis.SuggestedFix{
		{Message: "out of range", Edits: []analysis.TextEdit{edit(2, 9, "X")}},
	}
	got, n := analysis.ApplyFixes(src, fixes)
	if got != src || n != 0 {
		t.Fatalf("got %q with %d applied", got, n)
	}
}

const undefinedSrc = `inputEvent(change_in_speed_start(_)).

initiatedAt(changingSpeed(V)=true, T) :-
    happensAt(chang_speed_start(V), T).

terminatedAt(changingSpeed(V)=true, T) :-
    happensAt(change_in_speed_start(V), T).
`

func TestRenameFixAppliesEverywhere(t *testing.T) {
	vocab := map[string]bool{"change_in_speed_start": true}
	rename := func(name string) (string, string, bool) {
		if name == "chang_speed_start" {
			return "change_in_speed_start", "closest vocabulary name", true
		}
		return "", "", false
	}
	r := analysis.AnalyzeSource(undefinedSrc, analysis.Options{Vocabulary: vocab, Rename: rename})
	d := wantCode(t, r, "R002", "chang_speed_start")
	if len(d.SuggestedFixes) != 1 {
		t.Fatalf("want one rename fix, got %d", len(d.SuggestedFixes))
	}
	fixed, n := analysis.ApplyFixes(undefinedSrc, d.SuggestedFixes)
	if n != 1 {
		t.Fatalf("applied %d fixes", n)
	}
	if strings.Contains(fixed, "chang_speed_start") {
		t.Fatalf("old name survives:\n%s", fixed)
	}
	r2 := analysis.AnalyzeSource(fixed, analysis.Options{Vocabulary: vocab, Rename: rename})
	wantNoCode(t, r2, "R002")
}

func TestDeleteLiteralMiddleAndLast(t *testing.T) {
	src := `initiatedAt(f(V)=true, T) :-
    happensAt(ping(V), T),
    holdsAt(g(V)=true, T),
    holdsAt(g(V)=true, T),
    5 > 3.
`
	res := analysis.Fix(src, analysis.Options{}, analysis.DefaultFixBudget)
	if !res.Fixpoint() {
		t.Fatalf("no fixpoint:\n%s", res.Report.Text())
	}
	if strings.Count(res.Source, "holdsAt(g(V)=true, T)") != 1 {
		t.Fatalf("duplicate literal kept:\n%s", res.Source)
	}
	if strings.Contains(res.Source, "5 > 3") {
		t.Fatalf("vacuous comparison kept:\n%s", res.Source)
	}
	if _, err := parser.ParseEventDescription(res.Source); err != nil {
		t.Fatalf("fixed source unparseable: %v\n%s", err, res.Source)
	}
}

func TestFixRoundsStrictlyDecrease(t *testing.T) {
	res := analysis.Fix(contradictorySrc, analysis.Options{}, analysis.DefaultFixBudget)
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds recorded")
	}
	for i, rd := range res.Rounds {
		if rd.After >= rd.Before {
			t.Fatalf("round %d: %d -> %d diagnostics (not strictly decreasing)", i, rd.Before, rd.After)
		}
	}
	wantNoCode(t, res.Report, "R011")
}

func TestFixZeroBudgetUsesDefault(t *testing.T) {
	// A non-positive budget falls back to DefaultFixBudget.
	res := analysis.Fix(contradictorySrc, analysis.Options{}, 0)
	if !res.Fixpoint() {
		t.Fatalf("no fixpoint under the default budget:\n%s", res.Report.Text())
	}
	if len(res.Rounds) == 0 || len(res.Rounds) > analysis.DefaultFixBudget {
		t.Fatalf("got %d rounds, want 1..%d", len(res.Rounds), analysis.DefaultFixBudget)
	}
}

func TestDiff(t *testing.T) {
	before := "a.\nb.\nc.\n"
	after := "a.\nc.\nd.\n"
	d := analysis.Diff("ed.prolog", before, after)
	for _, want := range []string{"--- ed.prolog", "+++ ed.prolog (fixed)", "-b.", "+d.", " a."} {
		if !strings.Contains(d, want) {
			t.Fatalf("diff missing %q:\n%s", want, d)
		}
	}
	if analysis.Diff("x", before, before) != "" {
		t.Fatal("identical inputs must yield an empty diff")
	}
}

// FuzzApplyFixes checks the autofix safety contract on arbitrary parseable
// inputs: the fixed source must still parse, and driving fixes to fixpoint
// must never raise the diagnostic count.
func FuzzApplyFixes(f *testing.F) {
	f.Add(contradictorySrc)
	f.Add(undefinedSrc)
	f.Add(`initiatedAt(f(V)=true, T) :-
    happensAt(ping(V), T),
    holdsAt(g(V)=true, T),
    holdsAt(g(V)=true, T),
    5 > 3.
`)
	f.Add("a.\n")
	f.Add("% only a comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		if _, err := parser.ParseEventDescription(src); err != nil {
			t.Skip()
		}
		opts := analysis.Options{}
		before := analysis.AnalyzeSource(src, opts)
		res := analysis.Fix(src, opts, analysis.DefaultFixBudget)
		if _, err := parser.ParseEventDescription(res.Source); err != nil {
			t.Fatalf("fixed source unparseable: %v\nbefore:\n%s\nafter:\n%s", err, src, res.Source)
		}
		if len(res.Report.Diagnostics) > len(before.Diagnostics) {
			t.Fatalf("fixes raised diagnostics %d -> %d\nbefore:\n%s\nafter:\n%s",
				len(before.Diagnostics), len(res.Report.Diagnostics), src, res.Source)
		}
	})
}

func TestDeleteClauseWithMultipleConditions(t *testing.T) {
	// Regression: the clause-end scanner must step past depth-0 commas
	// separating body literals (it used to loop forever on them).
	src := `initiatedAt(loiter(Vl)=true, T) :-
    happensAt(stop_start(Vl), T),
    union_all(I1, I).

initiatedAt(loiter(V2)=true, T2) :-
    happensAt(stop_start(V2), T2),
    union_all(J1, J).
`
	r := analysis.AnalyzeSource(src, analysis.Options{})
	d := wantCode(t, r, "R006", "duplicate of the clause")
	if len(d.SuggestedFixes) != 1 {
		t.Fatalf("want a delete-clause fix, got %d", len(d.SuggestedFixes))
	}
	fixed, n := analysis.ApplyFixes(src, d.SuggestedFixes)
	if n != 1 {
		t.Fatalf("applied %d fixes", n)
	}
	if strings.Count(fixed, "initiatedAt(loiter") != 1 {
		t.Fatalf("duplicate clause not removed:\n%s", fixed)
	}
	if _, err := parser.ParseEventDescription(fixed); err != nil {
		t.Fatalf("fixed source unparseable: %v\n%s", err, fixed)
	}
}
