// Package analysis is a gold-standard-free multi-pass static analyzer
// ("rteclint") for RTEC event descriptions. Where internal/check classifies
// defects against a known gold standard, this package vets an arbitrary
// parsed event description on its own: it builds a symbol table, a fluent
// dependency graph and a reference index, and runs a fixed sequence of
// passes, each with a stable diagnostic code. Diagnostics carry real source
// positions (threaded from internal/parser) and are deterministically
// ordered, so reports are byte-stable across runs.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"rtecgen/internal/lang"
	"rtecgen/internal/telemetry"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info marks an observation that needs no action (e.g. a fluent that is
	// defined but never referenced, which is normal for top-level activities).
	Info Severity = iota
	// Warning marks a construct that is legal but likely unintended.
	Warning
	// Error marks a defect that would break or silently corrupt recognition.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "unknown"
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic is one analyzer finding: a stable code, a severity, the source
// position of the offending construct and a human-readable message. Symbol
// names the offending user symbol when the finding is about one (the
// misspelled constant, the undefined fluent, the conflicting predicate), so
// downstream tools — notably the syntactic corrector — can consume findings
// without parsing messages.
type Diagnostic struct {
	Code     string        `json:"code"`
	Severity Severity      `json:"severity"`
	Pos      lang.Position `json:"pos"`
	Message  string        `json:"message"`
	Symbol   string        `json:"symbol,omitempty"`
	// SuggestedFixes are machine-applicable repairs, present only when the
	// analyzer was given the source text (Options.Source). Each fix is
	// self-contained; ApplyFixes arbitrates overlaps between fixes.
	SuggestedFixes []SuggestedFix `json:"suggestedFixes,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s %s: %s", d.Pos, d.Severity, d.Code, d.Message)
}

// Pass is one named analysis pass with a stable diagnostic code.
type Pass struct {
	Code string // stable diagnostic code, e.g. "R001"
	Name string // short kebab-case name, e.g. "arity-mismatch"
	Doc  string // one-line description for documentation and the CLI
	run  func(*context) []Diagnostic
}

// Passes returns the analyzer's pass catalogue in execution order.
func Passes() []Pass { return append([]Pass(nil), passes...) }

var passes = []Pass{
	{"R001", "arity-mismatch", "a predicate, event or fluent is used with conflicting arities", runArityMismatch},
	{"R002", "undefined-reference", "a rule body references a fluent or event that is never defined or declared", runUndefinedReference},
	{"R003", "fluent-kind-conflict", "a fluent is defined both with initiatedAt/terminatedAt and with holdsFor rules", runFluentKindConflict},
	{"R004", "dependency-cycle", "the fluent dependency graph has a cycle; cycles through negation are unstratifiable", runDependencyCycle},
	{"R005", "unused-definition", "a fluent or auxiliary predicate is defined but never referenced", runUnusedDefinition},
	{"R006", "duplicate-clause", "two clauses are identical up to variable renaming", runDuplicateClause},
	{"R007", "unsafe-variable", "a head variable is not bound by any positive body condition", runUnsafeVariable},
	{"R008", "interval-operator-misuse", "union_all/intersect_all/relative_complement_all used with the wrong shape or in the wrong place", runIntervalOperator},
	{"R009", "malformed-temporal-rule", "an initiatedAt/terminatedAt/holdsFor head does not have the fluent=value shape", runMalformedTemporalHead},
	{"R010", "unknown-name", "a name is neither RTEC syntax, domain vocabulary, nor defined by the description", runUnknownName},
	{"R011", "contradictory-initiation", "the same conditions initiate and terminate a fluent-value pair, so its intervals are always empty", runContradictoryInitiation},
	{"R012", "unreachable-fluent", "a fluent's dependency closure never bottoms out at an input event, or a referenced fluent value is never produced", runUnreachableFluent},
	{"R013", "sort-inference", "argument sorts inferred from the vocabulary clash, e.g. an entity identifier compared to a number", runSortInference},
	{"R014", "redundant-condition", "a body condition is duplicated or subsumed by a strictly stronger comparison in the same body", runRedundantCondition},
	{"R015", "never-terminated", "a simple fluent value is initiated but never terminated, so it holds forever once initiated", runNeverTerminated},
	{"R016", "vacuous-threshold", "a comparison is trivially true or false given declared constants", runVacuousThreshold},
}

// Options tunes the analyzer.
type Options struct {
	// Vocabulary holds externally known names: the domain's input events,
	// background predicates, thresholds and constants. When nil, the
	// vocabulary-dependent checks (R010 entirely, and the event-reference
	// part of R002 unless the description declares its own inputEvent facts)
	// are skipped, keeping the analyzer usable on a bare file.
	Vocabulary map[string]bool
	// Roots names the fluents that are deliverables of the description
	// (e.g. the curriculum activities). Roots are exempt from R005; when
	// Roots is non-empty, other unused definitions are warnings rather
	// than infos.
	Roots map[string]bool
	// Source is the text the event description was parsed from. When set,
	// passes attach SuggestedFixes whose TextEdits are byte offsets into
	// this exact text; when empty, diagnostics carry no fixes.
	Source string
	// Rename, when non-nil, proposes a replacement for an unknown name
	// flagged by R002/R010 (e.g. a documented alias or a near-miss of the
	// vocabulary). It returns the replacement, a short reason for the fix
	// message, and whether a replacement is known.
	Rename func(name string) (to, reason string, ok bool)
	// Sorts maps a documented event or background-predicate functor to the
	// sorts of its arguments (lower-cased pattern argument names), feeding
	// the R013 sort-inference pass. See prompt.Domain.ArgSorts.
	Sorts map[string][]string
	// Constants maps threshold names to known numeric values, letting R016
	// fold comparisons over threshold-bound variables. Threshold facts
	// declared by the description itself take precedence.
	Constants map[string]float64
	// Telemetry, when non-nil, records per-pass spans (children of Span)
	// and counters of emitted diagnostics by code ("analysis.diag.R002").
	Telemetry *telemetry.Telemetry
	// Span is the parent span for the per-pass spans; may be nil.
	Span *telemetry.Span
}

// Report is the outcome of analyzing one event description.
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Analyze runs every pass over the event description and returns the
// deterministically ordered report.
func Analyze(ed *lang.EventDescription, opts Options) *Report {
	ctx := newContext(ed, opts)
	tel := opts.Telemetry
	var out []Diagnostic
	for _, p := range passes {
		sp := opts.Span.Span("analysis.pass",
			telemetry.String("code", p.Code), telemetry.String("name", p.Name))
		ds := p.run(ctx)
		for i := range ds {
			ds[i].Code = p.Code
		}
		if len(ds) > 0 {
			tel.Counter("analysis.diag." + p.Code).Add(int64(len(ds)))
		}
		sp.SetAttrs(telemetry.Int("diagnostics", int64(len(ds))))
		sp.End()
		out = append(out, ds...)
	}
	// Order by (Pos, Code, Symbol, Message): the Symbol tie-break keeps
	// reports byte-stable when several passes flag different symbols of the
	// same clause at identical positions.
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos != b.Pos {
			return a.Pos.Before(b.Pos)
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Symbol != b.Symbol {
			return a.Symbol < b.Symbol
		}
		return a.Message < b.Message
	})
	return &Report{Diagnostics: out}
}

// HasErrors reports whether any diagnostic is of Error severity.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Max returns the highest severity present, or Info for an empty report.
func (r *Report) Max() Severity {
	max := Info
	for _, d := range r.Diagnostics {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// CountByCode aggregates the diagnostics per code.
func (r *Report) CountByCode() map[string]int {
	out := map[string]int{}
	for _, d := range r.Diagnostics {
		out[d.Code]++
	}
	return out
}

// Codes returns the sorted set of distinct codes present in the report.
func (r *Report) Codes() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range r.Diagnostics {
		if !seen[d.Code] {
			seen[d.Code] = true
			out = append(out, d.Code)
		}
	}
	sort.Strings(out)
	return out
}

// ByCode returns the diagnostics with the given code, in report order.
func (r *Report) ByCode(code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// Filter returns a report holding only diagnostics at or above min.
func (r *Report) Filter(min Severity) *Report {
	out := &Report{}
	for _, d := range r.Diagnostics {
		if d.Severity >= min {
			out.Diagnostics = append(out.Diagnostics, d)
		}
	}
	return out
}

// Text renders the report one diagnostic per line, ending with a summary
// line, matching the layout of cmd/rteclint's default output.
func (r *Report) Text() string {
	var b strings.Builder
	for _, d := range r.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	errs, warns, infos := 0, 0, 0
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case Error:
			errs++
		case Warning:
			warns++
		default:
			infos++
		}
	}
	fmt.Fprintf(&b, "%d errors, %d warnings, %d infos\n", errs, warns, infos)
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
