package analysis_test

import (
	"strings"
	"testing"

	"rtecgen/internal/analysis"
	"rtecgen/internal/fleet"
	"rtecgen/internal/maritime"
)

// runSrc analyzes source text so suggested fixes are attached.
func runSrc(t *testing.T, src string, opts analysis.Options) *analysis.Report {
	t.Helper()
	r := analysis.AnalyzeSource(src, opts)
	for _, d := range r.Diagnostics {
		if d.Code == analysis.SyntaxCode {
			t.Fatalf("parse: %s", d.Message)
		}
	}
	return r
}

// ---------------------------------------------------------------- R011

const contradictorySrc = `inputEvent(stop_start(_)).
inputEvent(stop_end(_)).

initiatedAt(stopped(V)=true, T) :-
    happensAt(stop_start(V), T).

terminatedAt(stopped(Vl)=true, T) :-
    happensAt(stop_start(Vl), T).

terminatedAt(stopped(V)=true, T) :-
    happensAt(stop_end(V), T).
`

func TestContradictoryInitiation(t *testing.T) {
	r := runSrc(t, contradictorySrc, analysis.Options{})
	d := wantCode(t, r, "R011", "also terminate it here")
	if d.Severity != analysis.Error {
		t.Fatalf("severity %s, want error", d.Severity)
	}
	if d.Symbol != "stopped" {
		t.Fatalf("symbol %q, want stopped", d.Symbol)
	}
	if len(d.SuggestedFixes) != 1 {
		t.Fatalf("want a deletion fix, got %d", len(d.SuggestedFixes))
	}
	fixed, n := analysis.ApplyFixes(contradictorySrc, d.SuggestedFixes)
	if n != 1 {
		t.Fatalf("applied %d fixes", n)
	}
	r2 := runSrc(t, fixed, analysis.Options{})
	wantNoCode(t, r2, "R011")
}

func TestContradictoryInitiationDistinctConditions(t *testing.T) {
	r := runSrc(t, `initiatedAt(f(V)=true, T) :-
    happensAt(a(V), T).

terminatedAt(f(V)=true, T) :-
    happensAt(b(V), T).
`, analysis.Options{})
	wantNoCode(t, r, "R011")
}

// ---------------------------------------------------------------- R012

func TestUnreachableFluent(t *testing.T) {
	src := `inputEvent(ping(_)).

holdsFor(top(V)=true, I) :-
    holdsFor(mid(V)=true, I1),
    union_all([I1], I).

holdsFor(mid(V)=true, I) :-
    holdsFor(top(V)=true, I1),
    union_all([I1], I).
`
	r := runSrc(t, src, analysis.Options{Roots: map[string]bool{"top": true}})
	d := wantCode(t, r, "R012", "recognition can never fire")
	if d.Severity != analysis.Error || d.Symbol != "top" {
		t.Fatalf("got %s", d)
	}
	wantCode(t, r, "R012", "fluent 'mid' never bottoms out")
}

func TestUnreachableFluentGroundedChain(t *testing.T) {
	src := `inputEvent(ping(_)).

initiatedAt(base(V)=true, T) :-
    happensAt(ping(V), T).

holdsFor(top(V)=true, I) :-
    holdsFor(base(V)=true, I1),
    union_all([I1], I).
`
	r := runSrc(t, src, analysis.Options{Roots: map[string]bool{"top": true}})
	wantNoCode(t, r, "R012")
}

func TestUnreachableNoInitiation(t *testing.T) {
	src := `inputEvent(ping(_)).

terminatedAt(f(V)=true, T) :-
    happensAt(ping(V), T).
`
	r := runSrc(t, src, analysis.Options{})
	wantCode(t, r, "R012", "no initiatedAt rule")
}

func TestDeadValue(t *testing.T) {
	src := `inputEvent(ping(_)).

initiatedAt(mode(V)=active, T) :-
    happensAt(ping(V), T).

initiatedAt(alarm(V)=true, T) :-
    happensAt(ping(V), T),
    holdsAt(mode(V)=idle, T).
`
	r := runSrc(t, src, analysis.Options{})
	d := wantCode(t, r, "R012", "no rule ever makes 'mode(V)=idle' hold")
	if d.Severity != analysis.Warning {
		t.Fatalf("severity %s, want warning", d.Severity)
	}
}

// ---------------------------------------------------------------- R013

func maritimeOpts() analysis.Options {
	d := maritime.PromptDomain()
	return analysis.Options{Vocabulary: d.KnownNames(), Sorts: d.ArgSorts()}
}

func TestSortClashTwoPositions(t *testing.T) {
	src := `initiatedAt(odd(V)=true, T) :-
    happensAt(entersArea(V, AreaID), T),
    vesselType(AreaID, Type).
`
	r := runSrc(t, src, maritimeOpts())
	d := wantCode(t, r, "R013", "argument sorts clash")
	if d.Symbol != "AreaID" {
		t.Fatalf("symbol %q, want AreaID", d.Symbol)
	}
}

func TestSortClashNumericComparison(t *testing.T) {
	src := `initiatedAt(odd(V)=true, T) :-
    happensAt(velocity(V, Speed, CoG, H), T),
    V > Speed.
`
	r := runSrc(t, src, maritimeOpts())
	d := wantCode(t, r, "R013", "not a quantity")
	if d.Symbol != "V" {
		t.Fatalf("symbol %q, want V", d.Symbol)
	}
}

func TestSortInferenceCleanOnGold(t *testing.T) {
	for _, tc := range []struct {
		name  string
		src   string
		opts  analysis.Options
		roots map[string]bool
	}{
		{name: "maritime", src: maritime.GoldED().String(),
			opts: analysis.Options{Vocabulary: maritime.PromptDomain().KnownNames(), Sorts: maritime.PromptDomain().ArgSorts()}},
		{name: "fleet", src: fleet.GoldED().String(),
			opts: analysis.Options{Vocabulary: fleet.PromptDomain().KnownNames(), Sorts: fleet.PromptDomain().ArgSorts()}},
	} {
		r := analysis.AnalyzeSource(tc.src, tc.opts)
		for _, code := range []string{"R011", "R012", "R013", "R014", "R015", "R016"} {
			if ds := r.ByCode(code); len(ds) > 0 {
				t.Errorf("%s gold ED: unexpected %s: %s", tc.name, code, ds[0])
			}
		}
		if r.HasErrors() {
			t.Errorf("%s gold ED has errors:\n%s", tc.name, r.Filter(analysis.Error).Text())
		}
	}
}

// ---------------------------------------------------------------- R014

func TestRedundantDuplicateLiteral(t *testing.T) {
	src := `initiatedAt(f(V)=true, T) :-
    happensAt(ping(V), T),
    holdsAt(g(V)=true, T),
    holdsAt(g(V)=true, T).
`
	r := runSrc(t, src, analysis.Options{})
	d := wantCode(t, r, "R014", "duplicates the condition at")
	fixed, n := analysis.ApplyFixes(src, d.SuggestedFixes)
	if n != 1 {
		t.Fatalf("applied %d fixes", n)
	}
	if strings.Count(fixed, "holdsAt(g(V)=true, T)") != 1 {
		t.Fatalf("duplicate not removed:\n%s", fixed)
	}
	wantNoCode(t, runSrc(t, fixed, analysis.Options{}), "R014")
}

func TestRedundantSubsumedComparison(t *testing.T) {
	src := `initiatedAt(f(V)=true, T) :-
    happensAt(ping(V, Speed), T),
    Speed > 5,
    Speed > 3.
`
	r := runSrc(t, src, analysis.Options{})
	d := wantCode(t, r, "R014", "is implied by 'Speed > 5'")
	fixed, n := analysis.ApplyFixes(src, d.SuggestedFixes)
	if n != 1 {
		t.Fatalf("applied %d fixes", n)
	}
	if strings.Contains(fixed, "Speed > 3") {
		t.Fatalf("weak bound kept:\n%s", fixed)
	}
	wantNoCode(t, runSrc(t, fixed, analysis.Options{}), "R014")
}

func TestRedundantOppositeDirectionsKept(t *testing.T) {
	src := `initiatedAt(f(V)=true, T) :-
    happensAt(ping(V, Speed), T),
    Speed > 3,
    Speed < 9.
`
	wantNoCode(t, runSrc(t, src, analysis.Options{}), "R014")
}

// ---------------------------------------------------------------- R015

func TestNeverTerminated(t *testing.T) {
	src := `inputEvent(ping(_)).

initiatedAt(f(V)=true, T) :-
    happensAt(ping(V), T).
`
	r := runSrc(t, src, analysis.Options{})
	d := wantCode(t, r, "R015", "never terminated")
	if d.Symbol != "f" || d.Severity != analysis.Warning {
		t.Fatalf("got %s", d)
	}
}

func TestNeverTerminatedOtherValueInitiated(t *testing.T) {
	// Initiating f=off terminates f=on, so neither value holds forever.
	src := `inputEvent(up(_)).
inputEvent(down(_)).

initiatedAt(f(V)=on, T) :-
    happensAt(up(V), T).

initiatedAt(f(V)=off, T) :-
    happensAt(down(V), T).
`
	wantNoCode(t, runSrc(t, src, analysis.Options{}), "R015")
}

// ---------------------------------------------------------------- R016

func TestVacuousAlwaysTrue(t *testing.T) {
	src := `initiatedAt(f(V)=true, T) :-
    happensAt(ping(V), T),
    5 > 3.
`
	r := runSrc(t, src, analysis.Options{})
	d := wantCode(t, r, "R016", "always true")
	fixed, n := analysis.ApplyFixes(src, d.SuggestedFixes)
	if n != 1 {
		t.Fatalf("applied %d fixes", n)
	}
	if strings.Contains(fixed, "5 > 3") {
		t.Fatalf("vacuous comparison kept:\n%s", fixed)
	}
}

func TestVacuousAlwaysFalseViaThreshold(t *testing.T) {
	src := `initiatedAt(f(V)=true, T) :-
    happensAt(ping(V, Speed), T),
    thresholds(movingMin, MovingMin),
    MovingMin > 100.
`
	r := runSrc(t, src, analysis.Options{Constants: map[string]float64{"movingMin": 5}})
	d := wantCode(t, r, "R016", "always false")
	if d.Severity != analysis.Error {
		t.Fatalf("severity %s, want error", d.Severity)
	}
	if len(d.SuggestedFixes) != 0 {
		t.Fatalf("always-false comparisons must not get a deletion fix")
	}
}

func TestVacuousDeclaredThresholdFact(t *testing.T) {
	src := `thresholds(lim, 10).

initiatedAt(f(V)=true, T) :-
    happensAt(ping(V, S), T),
    thresholds(lim, L),
    L >= 10.
`
	r := runSrc(t, src, analysis.Options{})
	wantCode(t, r, "R016", "always true")
}

func TestVacuousSameVariable(t *testing.T) {
	src := `initiatedAt(f(V)=true, T) :-
    happensAt(ping(V, S), T),
    S < S.
`
	r := runSrc(t, src, analysis.Options{})
	wantCode(t, r, "R016", "always false")
}

func TestVacuousUnknownThresholdSilent(t *testing.T) {
	src := `initiatedAt(f(V)=true, T) :-
    happensAt(ping(V, S), T),
    thresholds(lim, L),
    S > L.
`
	wantNoCode(t, runSrc(t, src, analysis.Options{}), "R016")
}
