package analysis

import (
	"errors"

	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
)

// SyntaxCode is the diagnostic code of parse failures. It is not a pass —
// an unparseable description never reaches the analyzer — but callers that
// parse and analyze in one step (cmd/rteclint, the generation pipeline)
// report parse errors through the same Diagnostic channel under this code.
const SyntaxCode = "R000"

// SyntaxError converts a parse failure into an R000 diagnostic, carrying
// the parser's error position when it has one.
func SyntaxError(err error) Diagnostic {
	d := Diagnostic{Code: SyntaxCode, Severity: Error, Message: err.Error()}
	var pe *parser.Error
	if errors.As(err, &pe) {
		d.Pos = lang.Position{Line: pe.Line, Col: pe.Col}
		d.Message = pe.Msg
	}
	return d
}

// AnalyzeSource parses src and, on success, analyzes it with the source
// text attached (so diagnostics carry suggested fixes). On a parse failure
// the report holds the single R000 diagnostic.
func AnalyzeSource(src string, opts Options) *Report {
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		return &Report{Diagnostics: []Diagnostic{SyntaxError(err)}}
	}
	opts.Source = src
	return Analyze(ed, opts)
}
