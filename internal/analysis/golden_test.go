package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtecgen/internal/llm"
	"rtecgen/internal/maritime"
	"rtecgen/internal/prompt"
)

var update = flag.Bool("update", false, "rewrite the golden analyzer reports")

// TestGoldenModelReports runs the full prompting pipeline for each of the
// six simulated models, analyzes the generated event description, and
// compares the rendered report byte-for-byte against a golden file. The
// simulated models are deterministic, so these reports pin down both the
// analyzer's output format and the exact defect set each error profile
// produces. Regenerate with: go test ./internal/analysis -run Golden -update
func TestGoldenModelReports(t *testing.T) {
	domain := maritime.PromptDomain()
	curriculum := maritime.CurriculumRequests()
	for _, name := range llm.ModelNames() {
		t.Run(name, func(t *testing.T) {
			gen, err := prompt.RunPipeline(llm.MustNew(name), prompt.ChainOfThought, domain, curriculum)
			if err != nil {
				t.Fatal(err)
			}
			got := gen.Report.Text()
			path := filepath.Join("testdata", "golden", fileName(name)+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the golden file)", err)
			}
			if got != string(want) {
				t.Errorf("analyzer report for %s diverged from %s:\n--- got ---\n%s--- want ---\n%s",
					name, path, got, want)
			}
		})
	}
}

// TestGoldenReportsAreStable re-runs one model and checks the two reports
// render identically: the pipeline plus analyzer is deterministic end to end.
func TestGoldenReportsAreStable(t *testing.T) {
	domain := maritime.PromptDomain()
	curriculum := maritime.CurriculumRequests()
	render := func() string {
		gen, err := prompt.RunPipeline(llm.MustNew("Mistral"), prompt.ChainOfThought, domain, curriculum)
		if err != nil {
			t.Fatal(err)
		}
		return gen.Report.Text()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("reports differ across runs:\n%s\n---\n%s", a, b)
	}
}

func fileName(model string) string {
	return strings.ToLower(strings.ReplaceAll(model, ".", "_"))
}
