package analysis_test

import (
	"strings"
	"testing"

	"rtecgen/internal/analysis"
	"rtecgen/internal/fleet"
	"rtecgen/internal/lang"
	"rtecgen/internal/maritime"
	"rtecgen/internal/parser"
)

func run(t *testing.T, src string, opts analysis.Options) *analysis.Report {
	t.Helper()
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return analysis.Analyze(ed, opts)
}

// wantCode asserts the report holds a diagnostic with the code whose message
// contains substr, and returns it.
func wantCode(t *testing.T, r *analysis.Report, code, substr string) analysis.Diagnostic {
	t.Helper()
	for _, d := range r.ByCode(code) {
		if strings.Contains(d.Message, substr) {
			return d
		}
	}
	t.Fatalf("no %s diagnostic containing %q; report:\n%s", code, substr, r.Text())
	return analysis.Diagnostic{}
}

func wantNoCode(t *testing.T, r *analysis.Report, code string) {
	t.Helper()
	if ds := r.ByCode(code); len(ds) > 0 {
		t.Fatalf("unexpected %s diagnostics:\n%s", code, r.Text())
	}
}

func wantPos(t *testing.T, d analysis.Diagnostic, line, col int) {
	t.Helper()
	if d.Pos != (lang.Position{Line: line, Col: col}) {
		t.Fatalf("diagnostic at %s, want %d:%d (%s)", d.Pos, line, col, d)
	}
}

func TestPassCatalogue(t *testing.T) {
	ps := analysis.Passes()
	if len(ps) != 16 {
		t.Fatalf("got %d passes, want 16", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Code] {
			t.Errorf("duplicate pass code %s", p.Code)
		}
		seen[p.Code] = true
		if p.Name == "" || p.Doc == "" {
			t.Errorf("pass %s missing name or doc", p.Code)
		}
	}
	for _, code := range []string{"R001", "R005", "R010", "R011", "R016"} {
		if !seen[code] {
			t.Errorf("missing pass %s", code)
		}
	}
}

// ---------------------------------------------------------------- R001

func TestArityMismatch(t *testing.T) {
	r := run(t, "f(a, b).\ng(X) :- f(X).\n", analysis.Options{})
	d := wantCode(t, r, "R001", "'f' used with arity 1, but with arity 2 at 1:1")
	if d.Severity != analysis.Error {
		t.Fatalf("severity %v, want error", d.Severity)
	}
	wantPos(t, d, 2, 9)
}

func TestArityMismatchNegative(t *testing.T) {
	r := run(t, "f(a, b).\ng(X) :- f(X, b).\n", analysis.Options{})
	wantNoCode(t, r, "R001")
}

// ---------------------------------------------------------------- R002

func TestUndefinedFluentReference(t *testing.T) {
	r := run(t, "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T).\n", analysis.Options{})
	d := wantCode(t, r, "R002", "undefined fluent 'b'")
	if d.Severity != analysis.Error {
		t.Fatalf("severity %v, want error", d.Severity)
	}
	wantPos(t, d, 1, 58)
}

func TestUndefinedFluentReferenceNegative(t *testing.T) {
	r := run(t, `
initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T).
initiatedAt(b(X)=true, T) :- happensAt(e(X), T).
`, analysis.Options{})
	wantNoCode(t, r, "R002")
}

func TestUnknownEventWithDeclarations(t *testing.T) {
	r := run(t, `
inputEvent(e(_)).
initiatedAt(a(X)=true, T) :- happensAt(q(X), T).
`, analysis.Options{})
	wantCode(t, r, "R002", "unknown event 'q'")

	r = run(t, `
inputEvent(e(_)).
initiatedAt(a(X)=true, T) :- happensAt(e(X), T).
`, analysis.Options{})
	wantNoCode(t, r, "R002")
}

func TestUnknownEventWithoutDeclarationsIsSkipped(t *testing.T) {
	// No inputEvent declarations and no vocabulary: events are unchecked.
	r := run(t, "initiatedAt(a(X)=true, T) :- happensAt(q(X), T).\n", analysis.Options{})
	wantNoCode(t, r, "R002")
}

func TestUnknownBackgroundPredicate(t *testing.T) {
	vocab := map[string]bool{"e": true, "areaType": true}
	r := run(t, "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), serviceSpeed(X, S), S > 2.\n",
		analysis.Options{Vocabulary: vocab})
	wantCode(t, r, "R002", "unknown background predicate 'serviceSpeed'")

	r = run(t, "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), areaType(X, S), S > 2.\n",
		analysis.Options{Vocabulary: vocab})
	wantNoCode(t, r, "R002")
}

// ---------------------------------------------------------------- R003

func TestFluentKindConflict(t *testing.T) {
	r := run(t, `
initiatedAt(a(X)=true, T) :- happensAt(e(X), T).
holdsFor(a(X)=true, I) :- holdsFor(b(X)=true, I1), union_all([I1], I).
initiatedAt(b(X)=true, T) :- happensAt(e(X), T).
`, analysis.Options{})
	d := wantCode(t, r, "R003", "fluent 'a' is defined here with holdsFor rules but with initiatedAt/terminatedAt rules at 2:1")
	if d.Severity != analysis.Error {
		t.Fatalf("severity %v, want error", d.Severity)
	}
	wantPos(t, d, 3, 1)
}

func TestFluentKindConflictNegative(t *testing.T) {
	r := run(t, `
initiatedAt(a(X)=true, T) :- happensAt(e(X), T).
terminatedAt(a(X)=true, T) :- happensAt(f(X), T).
holdsFor(b(X)=true, I) :- holdsFor(a(X)=true, I1), union_all([I1], I).
`, analysis.Options{})
	wantNoCode(t, r, "R003")
}

// ---------------------------------------------------------------- R004

func TestNegationCycle(t *testing.T) {
	r := run(t, `
initiatedAt(a(X)=true, T) :- happensAt(e(X), T), not holdsAt(b(X)=true, T).
initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).
`, analysis.Options{})
	d := wantCode(t, r, "R004", "negation cycle a -> b -> a")
	if d.Severity != analysis.Error {
		t.Fatalf("severity %v, want error", d.Severity)
	}
}

func TestPositiveCycleIsWarning(t *testing.T) {
	r := run(t, `
initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T).
initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).
`, analysis.Options{})
	d := wantCode(t, r, "R004", "cyclic dependency a -> b -> a")
	if d.Severity != analysis.Warning {
		t.Fatalf("severity %v, want warning", d.Severity)
	}
}

func TestRelativeComplementNegationCycle(t *testing.T) {
	// a subtracts b's intervals while b depends on a: the negative dataflow
	// through relative_complement_all makes the cycle unstratifiable.
	r := run(t, `
initiatedAt(c(X)=true, T) :- happensAt(e(X), T).
initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).
holdsFor(a(X)=true, I) :- holdsFor(c(X)=true, I1), holdsFor(b(X)=true, I2), relative_complement_all(I1, [I2], I).
`, analysis.Options{})
	wantCode(t, r, "R004", "negation cycle a -> b -> a")
}

func TestDependencyCycleNegative(t *testing.T) {
	r := run(t, `
initiatedAt(a(X)=true, T) :- happensAt(e(X), T).
initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).
holdsFor(c(X)=true, I) :- holdsFor(a(X)=true, I1), holdsFor(b(X)=true, I2), relative_complement_all(I1, [I2], I).
`, analysis.Options{})
	wantNoCode(t, r, "R004")
}

// ---------------------------------------------------------------- R005

func TestUnusedDefinition(t *testing.T) {
	src := `
initiatedAt(helper(X)=true, T) :- happensAt(e(X), T).
initiatedAt(main(X)=true, T) :- happensAt(e(X), T).
`
	r := run(t, src, analysis.Options{})
	// Without roots both definitions are unused, at Info severity.
	for _, name := range []string{"helper", "main"} {
		d := wantCode(t, r, "R005", "'"+name+"' is defined but never referenced")
		if d.Severity != analysis.Info {
			t.Fatalf("severity %v, want info", d.Severity)
		}
	}
	// With roots, the deliverable is exempt and the leftover is a warning.
	r = run(t, src, analysis.Options{Roots: map[string]bool{"main": true}})
	d := wantCode(t, r, "R005", "'helper' is defined but never referenced")
	if d.Severity != analysis.Warning {
		t.Fatalf("severity %v, want warning", d.Severity)
	}
	if len(r.ByCode("R005")) != 1 {
		t.Fatalf("want exactly one R005:\n%s", r.Text())
	}
}

func TestUnusedDefinitionNegative(t *testing.T) {
	r := run(t, `
initiatedAt(helper(X)=true, T) :- happensAt(e(X), T).
initiatedAt(main(X)=true, T) :- happensAt(e(X), T), holdsAt(helper(X)=true, T).
`, analysis.Options{Roots: map[string]bool{"main": true}})
	wantNoCode(t, r, "R005")
}

func TestUnusedDefinitionIgnoresFacts(t *testing.T) {
	r := run(t, "areaType(area1, fishing).\n", analysis.Options{})
	wantNoCode(t, r, "R005")
}

// ---------------------------------------------------------------- R006

func TestDuplicateClause(t *testing.T) {
	r := run(t, `
initiatedAt(a(X)=true, T) :- happensAt(e(X), T).
initiatedAt(a(Y)=true, T2) :- happensAt(e(Y), T2).
`, analysis.Options{})
	d := wantCode(t, r, "R006", "duplicate of the clause at 2:1")
	if d.Severity != analysis.Warning {
		t.Fatalf("severity %v, want warning", d.Severity)
	}
	wantPos(t, d, 3, 1)
}

func TestDuplicateClauseNegative(t *testing.T) {
	r := run(t, `
initiatedAt(a(X)=true, T) :- happensAt(e(X), T).
initiatedAt(a(X)=true, T) :- happensAt(f(X), T).
`, analysis.Options{})
	wantNoCode(t, r, "R006")
}

// ---------------------------------------------------------------- R007

func TestUnsafeHeadVariable(t *testing.T) {
	r := run(t, "initiatedAt(a(X, Y)=true, T) :- happensAt(e(X), T).\n", analysis.Options{})
	d := wantCode(t, r, "R007", "head variable 'Y' is not bound")
	if d.Severity != analysis.Error {
		t.Fatalf("severity %v, want error", d.Severity)
	}
	wantPos(t, d, 1, 1)
}

func TestUnsafeNegatedVariable(t *testing.T) {
	r := run(t, `
initiatedAt(b(X)=true, T) :- happensAt(e(X), T).
initiatedAt(a(X)=true, T) :- happensAt(e(X), T), not holdsAt(b(Z)=true, T).
`, analysis.Options{})
	wantCode(t, r, "R007", "variable 'Z' appears only in a negated condition")
}

func TestUnsafeComparisonVariable(t *testing.T) {
	r := run(t, "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), Speed > 5.\n", analysis.Options{})
	wantCode(t, r, "R007", "variable 'Speed' appears only in a comparison")
}

func TestUnsafeIntervalVariable(t *testing.T) {
	r := run(t, "holdsFor(a(X)=true, I) :- holdsFor(b(X)=true, I1), union_all([I1, I2], I).\n", analysis.Options{})
	wantCode(t, r, "R007", "interval variable 'I2' is not bound by any holdsFor condition")
}

func TestTerminatedAtHeadVariablesAreExempt(t *testing.T) {
	// Standard RTEC idiom: a gap_start rule terminates withinArea for every
	// AreaType, leaving the head variable deliberately unbound.
	r := run(t, `
initiatedAt(withinArea(Vl, AreaType)=true, T) :- happensAt(entersArea(Vl, AreaId), T), areaType(AreaId, AreaType).
terminatedAt(withinArea(Vl, AreaType)=true, T) :- happensAt(gap_start(Vl), T).
`, analysis.Options{})
	wantNoCode(t, r, "R007")
}

func TestUnsafeVariableNegative(t *testing.T) {
	r := run(t, `
initiatedAt(b(X)=true, T) :- happensAt(e(X), T).
initiatedAt(a(X)=true, T) :- happensAt(e(X, Speed), T), Speed > 5, not holdsAt(b(X)=true, T).
`, analysis.Options{})
	wantNoCode(t, r, "R007")
}

// ---------------------------------------------------------------- R008

func TestIntervalOperatorMisuse(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"in time-point rule",
			"initiatedAt(a(X)=true, T) :- happensAt(e(X), T), union_all([T], I).\n",
			"interval operator 'union_all' in a time-point rule"},
		{"wrong arity",
			"holdsFor(a(X)=true, I) :- holdsFor(b(X)=true, I1), union_all([I1], I2, I).\n",
			"'union_all' expects 2 arguments"},
		{"non-list argument",
			"holdsFor(a(X)=true, I) :- holdsFor(b(X)=true, I1), intersect_all(i1, I).\n",
			"first argument of 'intersect_all' must be a list"},
		{"empty list",
			"holdsFor(a(X)=true, I) :- union_all([], I).\n",
			"empty interval list in 'union_all' always yields no intervals"},
		{"list as minuend",
			"holdsFor(a(X)=true, I) :- holdsFor(b(X)=true, I1), holdsFor(c(X)=true, I2), relative_complement_all([I1], [I2], I).\n",
			"first argument of 'relative_complement_all' is a single interval variable, not a list"},
		{"negated operator",
			"holdsFor(a(X)=true, I) :- holdsFor(b(X)=true, I1), not union_all([I1], I).\n",
			"interval operator 'union_all' may not be negated"},
		{"nested operator",
			"holdsFor(a(X)=true, I) :- holdsFor(b(X)=true, I1), union_all([intersect_all([I1], I2)], I).\n",
			"interval operator 'intersect_all' must be a top-level condition"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := run(t, tc.src, analysis.Options{})
			wantCode(t, r, "R008", tc.want)
		})
	}
}

func TestIntervalOperatorNegative(t *testing.T) {
	r := run(t, `
initiatedAt(b(X)=true, T) :- happensAt(e(X), T).
initiatedAt(c(X)=true, T) :- happensAt(e(X), T).
holdsFor(a(X)=true, I) :- holdsFor(b(X)=true, I1), holdsFor(c(X)=true, I2), relative_complement_all(I1, [I2], I).
`, analysis.Options{})
	wantNoCode(t, r, "R008")
}

// ---------------------------------------------------------------- R009

func TestMalformedTemporalHead(t *testing.T) {
	r := run(t, "holdsAt(a(X)=true, T) :- happensAt(e(X), T).\n", analysis.Options{})
	wantCode(t, r, "R009", "holdsAt cannot be defined directly")

	r = run(t, "initiatedAt(a(X), T) :- happensAt(e(X), T).\n", analysis.Options{})
	wantCode(t, r, "R009", "head must be over a fluent=value pair")

	r = run(t, "initiatedAt(a(X)=true) :- happensAt(e(X), T).\n", analysis.Options{})
	wantCode(t, r, "R009", "expects 2 arguments")
}

func TestMalformedTemporalHeadNegative(t *testing.T) {
	r := run(t, "initiatedAt(a(X)=true, T) :- happensAt(e(X), T).\n", analysis.Options{})
	wantNoCode(t, r, "R009")
}

// ---------------------------------------------------------------- R010

func TestUnknownName(t *testing.T) {
	vocab := map[string]bool{"entersArea": true, "areaType": true, "fishing": true}
	r := run(t, "initiatedAt(a(X)=true, T) :- happensAt(entersArea(X, AreaId), T), areaType(AreaId, trawlingArea).\n",
		analysis.Options{Vocabulary: vocab})
	d := wantCode(t, r, "R010", "'trawlingArea' is not in the domain vocabulary")
	if d.Severity != analysis.Warning {
		t.Fatalf("severity %v, want warning", d.Severity)
	}

	r = run(t, "initiatedAt(a(X)=true, T) :- happensAt(entersArea(X, AreaId), T), areaType(AreaId, fishing).\n",
		analysis.Options{Vocabulary: vocab})
	wantNoCode(t, r, "R010")
}

func TestUnknownNameSkippedWithoutVocabulary(t *testing.T) {
	r := run(t, "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), areaType(X, trawlingArea).\n",
		analysis.Options{})
	wantNoCode(t, r, "R010")
}

// ------------------------------------------------------- report behaviour

func TestReportDeterministicAndOrdered(t *testing.T) {
	src := `
initiatedAt(a(X, Y)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T).
initiatedAt(a(X, Y)=true, T2) :- happensAt(e(X), T2), holdsAt(b(X)=true, T2).
holdsFor(a(X)=true, I) :- union_all([], I).
`
	opts := analysis.Options{Vocabulary: map[string]bool{"e": true}}
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	r1 := analysis.Analyze(ed, opts)
	r2 := analysis.Analyze(ed, opts)
	if r1.Text() != r2.Text() {
		t.Fatalf("reports differ between runs:\n%s\n---\n%s", r1.Text(), r2.Text())
	}
	if len(r1.Diagnostics) == 0 {
		t.Fatal("expected diagnostics")
	}
	for i := 1; i < len(r1.Diagnostics); i++ {
		if r1.Diagnostics[i].Pos.Before(r1.Diagnostics[i-1].Pos) {
			t.Fatalf("diagnostics out of position order:\n%s", r1.Text())
		}
	}
	for _, d := range r1.Diagnostics {
		if !d.Pos.IsValid() {
			t.Fatalf("diagnostic without a position: %s", d)
		}
	}
	if !r1.HasErrors() || r1.Max() != analysis.Error {
		t.Fatal("expected errors in the report")
	}
	if got := r1.Filter(analysis.Error); len(got.Diagnostics) >= len(r1.Diagnostics) {
		t.Fatal("Filter(Error) should drop the warnings")
	}
	if _, err := r1.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
}

// ------------------------------------------------------- gold regressions

// rootsOf strips the "/arity" suffix of fluent indicators like "gap/1".
func rootsOf(fluents ...[]string) map[string]bool {
	roots := map[string]bool{}
	for _, fs := range fluents {
		for _, f := range fs {
			roots[strings.SplitN(f, "/", 2)[0]] = true
		}
	}
	return roots
}

func maritimeOptions() analysis.Options {
	var fs [][]string
	for _, a := range maritime.Curriculum {
		fs = append(fs, a.Fluents)
	}
	return analysis.Options{Vocabulary: maritime.PromptDomain().KnownNames(), Roots: rootsOf(fs...)}
}

func TestMaritimeGoldIsClean(t *testing.T) {
	r := analysis.Analyze(maritime.GoldED(), maritimeOptions())
	if len(r.Diagnostics) != 0 {
		t.Fatalf("maritime gold standard should analyze clean, got:\n%s", r.Text())
	}
}

func TestFleetGoldIsClean(t *testing.T) {
	var fs [][]string
	for _, a := range fleet.Curriculum {
		fs = append(fs, a.Fluents)
	}
	r := analysis.Analyze(fleet.GoldED(), analysis.Options{
		Vocabulary: fleet.PromptDomain().KnownNames(),
		Roots:      rootsOf(fs...),
	})
	if len(r.Diagnostics) != 0 {
		t.Fatalf("fleet gold standard should analyze clean, got:\n%s", r.Text())
	}
}
