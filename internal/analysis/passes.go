package analysis

import (
	"fmt"
	"sort"
	"strings"

	"rtecgen/internal/lang"
)

// ---------------------------------------------------------------- R001

// runArityMismatch reports symbols used in predicate position with
// conflicting arities. The first-seen arity is taken as intended; each
// later distinct arity yields one diagnostic.
func runArityMismatch(ctx *context) []Diagnostic {
	byName := map[string][]arityUse{}
	var names []string
	for _, u := range ctx.arityUses {
		if _, ok := byName[u.name]; !ok {
			names = append(names, u.name)
		}
		byName[u.name] = append(byName[u.name], u)
	}
	var out []Diagnostic
	for _, name := range names {
		uses := byName[name]
		first := uses[0]
		reported := map[int]bool{first.arity: true}
		for _, u := range uses[1:] {
			if reported[u.arity] {
				continue
			}
			reported[u.arity] = true
			out = append(out, Diagnostic{Severity: Error, Pos: u.pos, Symbol: name,
				Message: fmt.Sprintf("'%s' used with arity %d, but with arity %d at %s",
					name, u.arity, first.arity, first.pos)})
		}
	}
	return out
}

// ---------------------------------------------------------------- R002

// runUndefinedReference reports body conditions over fluents that the
// description never defines, events that are neither declared nor in the
// domain vocabulary, and (when a vocabulary is available) calls to unknown
// background predicates.
func runUndefinedReference(ctx *context) []Diagnostic {
	checkEvents := ctx.hasDecls || ctx.opts.Vocabulary != nil
	var out []Diagnostic
	seen := map[string]bool{}
	add := func(r reference, msg string) {
		d := Diagnostic{Severity: Error, Pos: r.term.Pos, Symbol: r.name, Message: msg}
		d.SuggestedFixes = ctx.renameFixes(r.name)
		out = append(out, d)
	}
	for _, r := range ctx.refs {
		switch r.kind {
		case refFluent:
			if ctx.defined(r.name) || ctx.known(r.name) || seen["f:"+r.name] {
				continue
			}
			seen["f:"+r.name] = true
			add(r, fmt.Sprintf("condition over undefined fluent '%s': no initiatedAt/terminatedAt or holdsFor rule defines it", r.name))
		case refEvent:
			if !checkEvents || ctx.events[r.name] || ctx.known(r.name) || ctx.defined(r.name) || seen["e:"+r.name] {
				continue
			}
			seen["e:"+r.name] = true
			add(r, fmt.Sprintf("happensAt over unknown event '%s': not a declared input event", r.name))
		case refPred:
			if ctx.opts.Vocabulary == nil || ctx.defined(r.name) || ctx.known(r.name) || seen["p:"+r.name] {
				continue
			}
			seen["p:"+r.name] = true
			add(r, fmt.Sprintf("call to unknown background predicate '%s'", r.name))
		}
	}
	return out
}

// renameFixes consults the Rename callback for a repair of an unknown name
// and, when one is known, renders it as a whole-description rename fix.
func (ctx *context) renameFixes(name string) []SuggestedFix {
	if ctx.opts.Rename == nil || !ctx.hasSource() {
		return nil
	}
	to, reason, ok := ctx.opts.Rename(name)
	if !ok {
		return nil
	}
	fix, ok := ctx.renameFix(name, to, fmt.Sprintf("replace '%s' with '%s' (%s)", name, to, reason))
	if !ok {
		return nil
	}
	return []SuggestedFix{fix}
}

// ---------------------------------------------------------------- R003

// runFluentKindConflict reports fluents defined both as simple fluents
// (initiatedAt/terminatedAt rules) and as statically determined fluents
// (holdsFor rules) — a fluent must be one kind or the other.
func runFluentKindConflict(ctx *context) []Diagnostic {
	var out []Diagnostic
	for _, name := range ctx.defNames {
		d := ctx.defs[name]
		if len(d.simple) == 0 || len(d.sd) == 0 {
			continue
		}
		sp, hp := d.simple[0].Pos, d.sd[0].Pos
		pos, other, kind, otherKind := hp, sp, "holdsFor", "initiatedAt/terminatedAt"
		if hp.Before(sp) {
			pos, other, kind, otherKind = sp, hp, "initiatedAt/terminatedAt", "holdsFor"
		}
		out = append(out, Diagnostic{Severity: Error, Pos: pos, Symbol: name,
			Message: fmt.Sprintf("fluent '%s' is defined here with %s rules but with %s rules at %s; a fluent is either simple or statically determined",
				name, kind, otherKind, other)})
	}
	return out
}

// ---------------------------------------------------------------- R004

type depEdge struct {
	to  string
	neg bool
}

// dependencyGraph builds the fluent/predicate dependency graph: one edge
// per (defining clause, body reference to another defined symbol). An edge
// is negative when the reference is negated or when the referenced fluent's
// intervals flow into the subtrahend list of relative_complement_all.
func dependencyGraph(ctx *context) map[string][]depEdge {
	graph := map[string][]depEdge{}
	for _, name := range ctx.defNames {
		d := ctx.defs[name]
		for _, c := range d.clauses() {
			if c.IsFact() {
				continue
			}
			// Map interval variables to the fluent whose holdsFor bound them.
			varFluent := map[string]string{}
			for _, l := range c.Body {
				a := l.Atom
				if !l.Neg && a.Functor == "holdsFor" && len(a.Args) == 2 && a.Args[1].Kind == lang.Var {
					if fl := fluentRefTerm(a); fl != nil {
						varFluent[a.Args[1].Functor] = fl.Functor
					}
				}
			}
			for _, l := range c.Body {
				a := l.Atom
				if fl := fluentRefTerm(a); fl != nil {
					if ctx.defined(fl.Functor) {
						graph[name] = append(graph[name], depEdge{to: fl.Functor, neg: l.Neg})
					}
					continue
				}
				if a.Functor == "relative_complement_all" && len(a.Args) == 3 && a.Args[1].Kind == lang.List {
					for _, e := range a.Args[1].Args {
						if e.Kind == lang.Var {
							if to, ok := varFluent[e.Functor]; ok {
								graph[name] = append(graph[name], depEdge{to: to, neg: true})
							}
						}
					}
					continue
				}
				if a.IsCallable() && !rtecBuiltins[a.Functor] && !comparisonOps[a.Functor] && ctx.defined(a.Functor) {
					graph[name] = append(graph[name], depEdge{to: a.Functor, neg: l.Neg})
				}
			}
		}
	}
	return graph
}

// runDependencyCycle finds strongly connected components of the dependency
// graph. A component with an internal negative edge is unstratifiable
// (error); any other non-trivial component is a recursive definition RTEC
// cannot order (warning).
func runDependencyCycle(ctx *context) []Diagnostic {
	graph := dependencyGraph(ctx)
	sccs := stronglyConnected(ctx.defNames, graph)
	var out []Diagnostic
	for _, scc := range sccs {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		selfLoop, negInternal := false, false
		for _, n := range scc {
			for _, e := range graph[n] {
				if !inSCC[e.to] {
					continue
				}
				if e.to == n {
					selfLoop = true
				}
				if e.neg {
					negInternal = true
				}
			}
		}
		if len(scc) == 1 && !selfLoop {
			continue
		}
		sort.Strings(scc)
		pos := ctx.defs[scc[0]].firstPos()
		cycle := strings.Join(scc, " -> ") + " -> " + scc[0]
		if negInternal {
			out = append(out, Diagnostic{Severity: Error, Pos: pos, Symbol: scc[0],
				Message: fmt.Sprintf("negation cycle %s: the description cannot be stratified", cycle)})
		} else {
			out = append(out, Diagnostic{Severity: Warning, Pos: pos, Symbol: scc[0],
				Message: fmt.Sprintf("cyclic dependency %s: RTEC processes fluents bottom-up and cannot order this cycle", cycle)})
		}
	}
	return out
}

// stronglyConnected is an iterative Tarjan SCC over the named nodes,
// visiting nodes in sorted order so component discovery is deterministic.
func stronglyConnected(nodes []string, graph map[string][]depEdge) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		edge int
	}
	for _, start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		call := []frame{{node: start}}
		for len(call) > 0 {
			f := &call[len(call)-1]
			n := f.node
			if f.edge == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for f.edge < len(graph[n]) {
				e := graph[n][f.edge]
				f.edge++
				if _, seen := index[e.to]; !seen {
					call = append(call, frame{node: e.to})
					advanced = true
					break
				}
				if onStack[e.to] && index[e.to] < low[n] {
					low[n] = index[e.to]
				}
			}
			if advanced {
				continue
			}
			if low[n] == index[n] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
		}
	}
	return sccs
}

// ---------------------------------------------------------------- R005

// runUnusedDefinition reports fluents and auxiliary predicates that are
// defined by rules but referenced by no other definition. Roots (the
// deliverable activities) are exempt; so are names the vocabulary knows,
// since an outer system may query them.
func runUnusedDefinition(ctx *context) []Diagnostic {
	usedBy := map[string]map[string]bool{}
	for _, r := range ctx.refs {
		owner := clauseOwner(r.clause)
		if usedBy[r.name] == nil {
			usedBy[r.name] = map[string]bool{}
		}
		usedBy[r.name][owner] = true
	}
	sev := Info
	if len(ctx.opts.Roots) > 0 {
		sev = Warning
	}
	var out []Diagnostic
	for _, name := range ctx.defNames {
		d := ctx.defs[name]
		if len(d.simple)+len(d.sd)+len(d.aux) == 0 {
			continue // pure facts are data, not definitions
		}
		if ctx.opts.Roots[name] || ctx.known(name) {
			continue
		}
		external := false
		for owner := range usedBy[name] {
			if owner != name {
				external = true
				break
			}
		}
		if external {
			continue
		}
		out = append(out, Diagnostic{Severity: sev, Pos: d.firstPos(), Symbol: name,
			Message: fmt.Sprintf("'%s' is defined but never referenced by another definition", name)})
	}
	return out
}

// clauseOwner names the symbol a clause defines: the head fluent for
// temporal rules, the head functor otherwise.
func clauseOwner(c *lang.Clause) string {
	if fl := headFluent(c); fl != nil {
		return fl.Functor
	}
	return c.Head.Functor
}

// ---------------------------------------------------------------- R006

// runDuplicateClause reports clauses that are identical to an earlier
// clause up to variable renaming.
func runDuplicateClause(ctx *context) []Diagnostic {
	seen := map[string]*lang.Clause{}
	var out []Diagnostic
	for _, c := range ctx.ed.Clauses {
		key := canonicalClause(c)
		if first, dup := seen[key]; dup {
			d := Diagnostic{Severity: Warning, Pos: c.Pos,
				Message: fmt.Sprintf("duplicate of the clause at %s", first.Pos)}
			if fix, ok := ctx.deleteClauseFix(c, "delete the duplicate clause"); ok {
				d.SuggestedFixes = []SuggestedFix{fix}
			}
			out = append(out, d)
			continue
		}
		seen[key] = c
	}
	return out
}

// canonicalClause renders a clause with variables renamed to V0, V1, ... in
// first-occurrence order, so variants hash identically.
func canonicalClause(c *lang.Clause) string {
	names := c.Vars()
	cc := c
	for i, v := range names {
		cc = renameVarInClause(cc, v, fmt.Sprintf("\x00V%d", i))
	}
	return cc.String()
}

func renameVarInClause(c *lang.Clause, from, to string) *lang.Clause {
	ren := func(t *lang.Term) *lang.Term { return renameVarInTerm(t, from, to) }
	n := &lang.Clause{Head: ren(c.Head), Pos: c.Pos}
	for _, l := range c.Body {
		n.Body = append(n.Body, lang.Literal{Neg: l.Neg, Atom: ren(l.Atom)})
	}
	return n
}

func renameVarInTerm(t *lang.Term, from, to string) *lang.Term {
	if t.Kind == lang.Var {
		if t.Functor == from {
			return lang.NewVar(to)
		}
		return t
	}
	if len(t.Args) == 0 {
		return t
	}
	n := *t
	n.Args = make([]*lang.Term, len(t.Args))
	for i, a := range t.Args {
		n.Args[i] = renameVarInTerm(a, from, to)
	}
	return &n
}

// ---------------------------------------------------------------- R007

// runUnsafeVariable checks rule safety: every head variable, every variable
// of a negated condition or comparison, and every input of an interval
// operator must be bound by some positive body condition. Interval
// operators bind only their output argument. terminatedAt heads are exempt
// from the head-variable check: leaving a fluent argument unbound there is
// standard RTEC idiom (the rule terminates every grounding, e.g. the
// gap_start termination of withinArea).
func runUnsafeVariable(ctx *context) []Diagnostic {
	var out []Diagnostic
	for _, c := range ctx.ed.Clauses {
		if c.IsFact() || c.Head.Functor == "inputEvent" {
			continue
		}
		bound := map[string]bool{}
		for _, l := range c.Body {
			a := l.Atom
			if l.Neg {
				continue
			}
			if comparisonOps[a.Functor] && a.Functor != "=" {
				continue
			}
			if intervalOps[a.Functor] && len(a.Args) > 0 {
				for _, v := range a.Args[len(a.Args)-1].Vars() {
					bound[v] = true
				}
				continue
			}
			for _, v := range a.Vars() {
				bound[v] = true
			}
		}
		reported := map[string]bool{}
		report := func(v string, pos lang.Position, format string) {
			if reported[v] || strings.HasPrefix(v, "_") || bound[v] {
				return
			}
			reported[v] = true
			out = append(out, Diagnostic{Severity: Error, Pos: pos, Symbol: v, Message: fmt.Sprintf(format, v)})
		}
		if c.Head.Functor != "terminatedAt" {
			for _, v := range c.Head.Vars() {
				report(v, c.Pos, "head variable '%s' is not bound by any positive body condition")
			}
		}
		for _, l := range c.Body {
			a := l.Atom
			switch {
			case l.Neg:
				for _, v := range a.Vars() {
					report(v, a.Pos, "variable '%s' appears only in a negated condition")
				}
			case comparisonOps[a.Functor] && a.Functor != "=":
				for _, v := range a.Vars() {
					report(v, a.Pos, "variable '%s' appears only in a comparison and is never bound")
				}
			case intervalOps[a.Functor] && len(a.Args) > 1:
				for _, in := range a.Args[:len(a.Args)-1] {
					for _, v := range in.Vars() {
						report(v, a.Pos, "interval variable '%s' is not bound by any holdsFor condition")
					}
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------- R008

// runIntervalOperator checks the shape and placement of the interval
// operators: argument counts, list arguments, output variables, placement
// in holdsFor rules only, no nesting and no negation.
func runIntervalOperator(ctx *context) []Diagnostic {
	var out []Diagnostic
	add := func(sev Severity, pos lang.Position, format string, args ...any) {
		out = append(out, Diagnostic{Severity: sev, Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, c := range ctx.ed.Clauses {
		timePointRule := c.Head.Functor == "initiatedAt" || c.Head.Functor == "terminatedAt"
		for _, l := range c.Body {
			a := l.Atom
			if intervalOps[a.Functor] {
				if l.Neg {
					add(Error, a.Pos, "interval operator '%s' may not be negated", a.Functor)
				}
				if timePointRule {
					add(Error, a.Pos, "interval operator '%s' in a time-point rule: %s bodies hold at instants, not intervals", a.Functor, c.Head.Functor)
				}
				switch a.Functor {
				case "union_all", "intersect_all":
					if len(a.Args) != 2 {
						add(Error, a.Pos, "'%s' expects 2 arguments (a list of interval variables and an output variable), got %d", a.Functor, len(a.Args))
						break
					}
					checkListArg(&out, a, 0, "first")
					if a.Args[1].Kind != lang.Var {
						add(Warning, a.Args[1].Pos, "output argument of '%s' should be a fresh variable", a.Functor)
					}
				case "relative_complement_all":
					if len(a.Args) != 3 {
						add(Error, a.Pos, "'relative_complement_all' expects 3 arguments (an interval variable, a list to subtract and an output variable), got %d", len(a.Args))
						break
					}
					if a.Args[0].Kind == lang.List {
						add(Error, a.Args[0].Pos, "first argument of 'relative_complement_all' is a single interval variable, not a list")
					}
					checkListArg(&out, a, 1, "second")
					if a.Args[2].Kind != lang.Var {
						add(Warning, a.Args[2].Pos, "output argument of 'relative_complement_all' should be a fresh variable")
					}
				}
			}
			// Nested interval operators anywhere below a condition.
			a.Walk(func(n *lang.Term) bool {
				if n != a && n.Kind == lang.Compound && intervalOps[n.Functor] {
					add(Error, n.Pos, "interval operator '%s' must be a top-level condition of a holdsFor rule, not nested inside another term", n.Functor)
					return false
				}
				return true
			})
		}
		// Interval operators never belong in a head.
		c.Head.Walk(func(n *lang.Term) bool {
			if n.Kind == lang.Compound && intervalOps[n.Functor] {
				add(Error, n.Pos, "interval operator '%s' cannot appear in a rule head", n.Functor)
				return false
			}
			return true
		})
	}
	return out
}

// checkListArg validates that argument i of an interval operator is a list
// of interval variables.
func checkListArg(out *[]Diagnostic, a *lang.Term, i int, ord string) {
	arg := a.Args[i]
	if arg.Kind == lang.Var {
		return // a variable may be bound to a list elsewhere
	}
	if arg.Kind != lang.List {
		*out = append(*out, Diagnostic{Severity: Error, Pos: arg.Pos,
			Message: fmt.Sprintf("%s argument of '%s' must be a list of interval variables", ord, a.Functor)})
		return
	}
	if len(arg.Args) == 0 {
		*out = append(*out, Diagnostic{Severity: Warning, Pos: arg.Pos,
			Message: fmt.Sprintf("empty interval list in '%s' always yields no intervals", a.Functor)})
	}
}

// ---------------------------------------------------------------- R009

// runMalformedTemporalHead checks the shape of temporal rule heads: exactly
// two arguments, the first a fluent=value pair over a callable fluent. It
// also rejects attempts to define holdsAt directly.
func runMalformedTemporalHead(ctx *context) []Diagnostic {
	var out []Diagnostic
	for _, c := range ctx.ed.Clauses {
		h := c.Head
		if h.Functor == "holdsAt" && len(c.Body) > 0 {
			out = append(out, Diagnostic{Severity: Error, Pos: c.Pos,
				Message: "holdsAt cannot be defined directly: define the fluent with initiatedAt/terminatedAt or holdsFor rules"})
			continue
		}
		if !isTemporalHead(h.Functor) {
			continue
		}
		if h.Kind != lang.Compound || len(h.Args) != 2 {
			out = append(out, Diagnostic{Severity: Error, Pos: c.Pos,
				Message: fmt.Sprintf("'%s' head expects 2 arguments (fluent=value and a time point or interval variable), got %d", h.Functor, len(h.Args))})
			continue
		}
		if headFluent(c) == nil {
			out = append(out, Diagnostic{Severity: Error, Pos: c.Pos,
				Message: fmt.Sprintf("'%s' head must be over a fluent=value pair, found '%s'", h.Functor, h.Args[0])})
		}
	}
	return out
}

// ---------------------------------------------------------------- R010

// runUnknownName reports names that are neither RTEC syntax, nor domain
// vocabulary, nor defined or referenced elsewhere in the description —
// typically misremembered constants ('trawlingArea' for 'fishing'). It
// needs a vocabulary to compare against and is skipped without one.
func runUnknownName(ctx *context) []Diagnostic {
	if ctx.opts.Vocabulary == nil {
		return nil
	}
	// Names already handled by R002 (references) are excluded here.
	referenced := map[string]bool{}
	for _, r := range ctx.refs {
		referenced[r.name] = true
	}
	seen := map[string]bool{}
	var out []Diagnostic
	for _, c := range ctx.ed.Clauses {
		terms := []*lang.Term{c.Head}
		for _, l := range c.Body {
			terms = append(terms, l.Atom)
		}
		for _, t := range terms {
			t.Walk(func(n *lang.Term) bool {
				if n.Kind != lang.Atom && n.Kind != lang.Compound {
					return true
				}
				name := n.Functor
				if seen[name] || rtecBuiltins[name] || comparisonOps[name] ||
					ctx.known(name) || ctx.defined(name) || referenced[name] {
					return true
				}
				seen[name] = true
				d := Diagnostic{Severity: Warning, Pos: n.Pos, Symbol: name,
					Message: fmt.Sprintf("'%s' is not in the domain vocabulary and is not defined by the description", name)}
				d.SuggestedFixes = ctx.renameFixes(name)
				out = append(out, d)
				return true
			})
		}
	}
	return out
}
