package analysis

import (
	"fmt"
	"strings"

	"rtecgen/internal/lang"
)

// This file holds the semantic passes R011-R016: checks that look past the
// shape of individual clauses into the meaning of the description — empty
// intervals, unreachable recognition, argument sorts, redundant and vacuous
// conditions, and fluents that never end.

// ---------------------------------------------------------------- R011

// contraKey canonicalizes a temporal rule modulo its head functor, so an
// initiatedAt and a terminatedAt rule over the same FVP with the same
// conditions hash identically.
func contraKey(c *lang.Clause) string {
	n := &lang.Clause{Head: lang.NewCompound("\x00tmp", c.Head.Args...), Body: c.Body}
	return canonicalClause(n)
}

// runContradictoryInitiation reports terminatedAt rules whose conditions are
// exactly the conditions of an initiatedAt rule for the same fluent-value
// pair: every interval the FVP could have is closed the instant it opens.
func runContradictoryInitiation(ctx *context) []Diagnostic {
	initBy := map[string]*lang.Clause{}
	for _, c := range ctx.ed.Clauses {
		if c.IsFact() || c.Head.Functor != "initiatedAt" || headFluent(c) == nil {
			continue
		}
		key := contraKey(c)
		if _, ok := initBy[key]; !ok {
			initBy[key] = c
		}
	}
	var out []Diagnostic
	for _, c := range ctx.ed.Clauses {
		if c.IsFact() || c.Head.Functor != "terminatedAt" || headFluent(c) == nil {
			continue
		}
		init, ok := initBy[contraKey(c)]
		if !ok {
			continue
		}
		fvp, fl := c.HeadFVP()
		d := Diagnostic{Severity: Error, Pos: c.Pos, Symbol: fl.Functor,
			Message: fmt.Sprintf("the conditions that initiate '%s' at %s also terminate it here: every interval is empty", fvp, init.Pos)}
		if fix, ok := ctx.deleteClauseFix(c, "delete the contradictory terminatedAt rule"); ok {
			d.SuggestedFixes = []SuggestedFix{fix}
		}
		out = append(out, d)
	}
	return out
}

// ---------------------------------------------------------------- R012

// runUnreachableFluent checks event-reachability: a fluent definition must
// bottom out, through the fluents it depends on, at happensAt conditions
// over the input stream — otherwise recognition can never fire. A second
// sub-check flags conditions over fluent values that no rule ever produces.
func runUnreachableFluent(ctx *context) []Diagnostic {
	isFluent := map[string]bool{}
	for _, name := range ctx.defNames {
		d := ctx.defs[name]
		if len(d.simple)+len(d.sd) > 0 {
			isFluent[name] = true
		}
	}
	// Reachability fixpoint. References to names without a fluent definition
	// (input data, background predicates, undefined names — R002's business)
	// count as grounded so one missing definition does not cascade.
	grounded := map[string]bool{}
	clauseGrounds := func(c *lang.Clause) bool {
		for _, l := range c.Body {
			if l.Neg {
				continue
			}
			a := l.Atom
			if a.Kind == lang.Compound && a.Functor == "happensAt" && len(a.Args) == 2 {
				return true
			}
			if fl := fluentRefTerm(a); fl != nil {
				if !isFluent[fl.Functor] || grounded[fl.Functor] {
					return true
				}
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, name := range ctx.defNames {
			if !isFluent[name] || grounded[name] {
				continue
			}
			d := ctx.defs[name]
			rules := d.sd
			if len(d.simple) > 0 {
				rules = nil
				for _, c := range d.simple {
					if c.Head.Functor == "initiatedAt" {
						rules = append(rules, c)
					}
				}
			}
			for _, c := range rules {
				if clauseGrounds(c) {
					grounded[name] = true
					changed = true
					break
				}
			}
		}
	}
	var out []Diagnostic
	for _, name := range ctx.defNames {
		if !isFluent[name] || grounded[name] {
			continue
		}
		d := ctx.defs[name]
		sev := Warning
		msg := fmt.Sprintf("fluent '%s' never bottoms out at an input event: it can never hold", name)
		if ctx.opts.Roots[name] {
			sev = Error
			msg = fmt.Sprintf("activity '%s' never bottoms out at an input event: recognition can never fire", name)
		}
		hasInit := false
		for _, c := range d.simple {
			if c.Head.Functor == "initiatedAt" {
				hasInit = true
				break
			}
		}
		if len(d.simple) > 0 && !hasInit {
			msg = fmt.Sprintf("simple fluent '%s' has terminatedAt rules but no initiatedAt rule: it can never start", name)
		}
		out = append(out, Diagnostic{Severity: sev, Pos: d.firstPos(), Symbol: name, Message: msg})
	}
	out = append(out, ctx.deadValues(isFluent)...)
	return out
}

// deadValues flags holdsAt/holdsFor conditions over F=V where F is defined
// by the description but no rule ever produces the value V.
func (ctx *context) deadValues(isFluent map[string]bool) []Diagnostic {
	produced := map[string]map[string]bool{} // fluent -> constant values produced
	anyValue := map[string]bool{}            // fluent has a variable-valued head
	for _, name := range ctx.defNames {
		d := ctx.defs[name]
		for _, c := range d.clauses() {
			if c.Head.Functor == "terminatedAt" {
				continue
			}
			fvp, _ := c.HeadFVP()
			if fvp == nil {
				continue
			}
			v := fvp.Args[1]
			if !v.IsConst() {
				anyValue[name] = true
				continue
			}
			if produced[name] == nil {
				produced[name] = map[string]bool{}
			}
			produced[name][v.String()] = true
		}
	}
	seen := map[string]bool{}
	var out []Diagnostic
	for _, c := range ctx.ed.Clauses {
		for _, l := range c.Body {
			a := l.Atom
			if a.Kind != lang.Compound || len(a.Args) != 2 {
				continue
			}
			if a.Functor != "holdsAt" && a.Functor != "holdsFor" {
				continue
			}
			fvp := a.Args[0]
			if fvp.Kind != lang.Compound || fvp.Functor != "=" || len(fvp.Args) != 2 || !fvp.Args[0].IsCallable() {
				continue
			}
			name, v := fvp.Args[0].Functor, fvp.Args[1]
			if !v.IsConst() || !isFluent[name] || anyValue[name] {
				continue
			}
			if produced[name][v.String()] {
				continue
			}
			key := name + "=" + v.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Diagnostic{Severity: Warning, Pos: a.Pos, Symbol: name,
				Message: fmt.Sprintf("no rule ever makes '%s' hold: this condition can never be satisfied", fvp)})
		}
	}
	return out
}

// ---------------------------------------------------------------- R013

// numericSortNames identify pattern argument names that denote quantities;
// comparing them with numbers is fine, comparing entity identifiers is not.
var numericSortNames = []string{
	"speed", "min", "max", "limit", "heading", "courseoverground", "cog",
	"distance", "duration", "count", "level", "rate", "value", "threshold",
	"quantity", "amount", "weight", "temperature",
}

func numericSort(s string) bool {
	if s == "number" {
		return true
	}
	for _, n := range numericSortNames {
		if s == n || strings.HasSuffix(s, n) {
			return true
		}
	}
	return false
}

var orderOps = map[string]bool{
	"<": true, ">": true, "=<": true, ">=": true, "=:=": true, "=\\=": true,
}

// sortUse is one sort assignment of a variable within a clause.
type sortUse struct {
	sort string
	pos  lang.Position
}

// runSortInference infers the sort of each variable of a clause — entity
// sorts from the documented argument positions it occupies, numeric from
// threshold bindings and numeric comparisons — and flags two kinds of
// clash: a variable used under two unrelated entity sorts, and an entity
// identifier used in a numeric comparison.
func runSortInference(ctx *context) []Diagnostic {
	if len(ctx.opts.Sorts) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, c := range ctx.ed.Clauses {
		uses := map[string][]sortUse{}
		numericVar := map[string]bool{}
		record := func(t *lang.Term) {
			sig, ok := ctx.opts.Sorts[t.Functor]
			if !ok {
				return
			}
			for i, a := range t.Args {
				if i >= len(sig) || a.Kind != lang.Var || strings.HasPrefix(a.Functor, "_") {
					continue
				}
				uses[a.Functor] = append(uses[a.Functor], sortUse{sig[i], a.Pos})
			}
		}
		var comparisons []*lang.Term
		scan := func(a *lang.Term) {
			if a.Kind != lang.Compound {
				return
			}
			switch {
			case a.Functor == "happensAt" && len(a.Args) == 2 && a.Args[0].IsCallable():
				record(a.Args[0])
			case fluentRefTerm(a) != nil:
				record(fluentRefTerm(a))
			case a.Functor == "thresholds" && len(a.Args) == 2:
				if v := a.Args[1]; v.Kind == lang.Var {
					numericVar[v.Functor] = true
				}
			case orderOps[a.Functor] && len(a.Args) == 2:
				comparisons = append(comparisons, a)
				for _, side := range a.Args {
					other := a.Args[0]
					if side == a.Args[0] {
						other = a.Args[1]
					}
					if side.Kind == lang.Var && isNumericTerm(other, nil) {
						numericVar[side.Functor] = true
					}
				}
			default:
				record(a)
			}
		}
		if fl := headFluent(c); fl != nil {
			record(fl)
		} else if c.Head.IsCallable() {
			record(c.Head)
		}
		for _, l := range c.Body {
			scan(l.Atom)
		}
		// Clash 1: one variable, two unrelated entity sorts.
		for _, us := range uses {
			for i := 1; i < len(us); i++ {
				a, b := us[0], us[i]
				if a.sort == b.sort || (numericSort(a.sort) && numericSort(b.sort)) {
					continue
				}
				out = append(out, Diagnostic{Severity: Warning, Pos: b.pos, Symbol: sortVarName(uses, b),
					Message: fmt.Sprintf("variable used as a '%s' here but as a '%s' at %s: argument sorts clash", b.sort, a.sort, a.pos)})
				break
			}
		}
		// Clash 2: an entity identifier in a numeric comparison.
		for _, cmp := range comparisons {
			for k, side := range cmp.Args {
				if side.Kind != lang.Var || numericVar[side.Functor] {
					continue
				}
				us := uses[side.Functor]
				if len(us) == 0 || anyNumericSort(us) {
					continue
				}
				if !isNumericTerm(cmp.Args[1-k], numericVar) && !sideHasNumericSort(cmp.Args[1-k], uses) {
					continue
				}
				out = append(out, Diagnostic{Severity: Warning, Pos: side.Pos, Symbol: side.Functor,
					Message: fmt.Sprintf("'%s' is a %s identifier, not a quantity: comparing it with a numeric value cannot be meaningful", side.Functor, us[0].sort)})
			}
		}
	}
	return out
}

// sortVarName recovers the variable name owning a use (uses is keyed by it).
func sortVarName(uses map[string][]sortUse, u sortUse) string {
	for name, us := range uses {
		for _, cand := range us {
			if cand == u {
				return name
			}
		}
	}
	return ""
}

func anyNumericSort(us []sortUse) bool {
	for _, u := range us {
		if numericSort(u.sort) {
			return true
		}
	}
	return false
}

// isNumericTerm reports whether a term is numeric evidence: a number, an
// arithmetic expression, or a variable already known numeric.
func isNumericTerm(t *lang.Term, numericVar map[string]bool) bool {
	switch t.Kind {
	case lang.Int, lang.Float:
		return true
	case lang.Var:
		return numericVar[t.Functor]
	case lang.Compound:
		switch t.Functor {
		case "+", "-", "*", "/", "abs", "absAngleDiff":
			return true
		}
	}
	return false
}

// sideHasNumericSort reports whether a comparison operand is a variable
// carrying a numeric entity sort.
func sideHasNumericSort(t *lang.Term, uses map[string][]sortUse) bool {
	return t.Kind == lang.Var && anyNumericSort(uses[t.Functor])
}

// ---------------------------------------------------------------- R014

// bound is a normalized one-sided numeric constraint Var (op) Val.
type bound struct {
	idx    int // body literal index
	val    float64
	strict bool
	lit    lang.Literal
}

// runRedundantCondition reports body conditions that are exact duplicates
// of an earlier condition, and numeric comparisons subsumed by a strictly
// stronger comparison over the same variable in the same body.
func runRedundantCondition(ctx *context) []Diagnostic {
	var out []Diagnostic
	for _, c := range ctx.ed.Clauses {
		if len(c.Body) < 2 {
			continue
		}
		flagged := map[int]bool{}
		seen := map[string]int{}
		for i, l := range c.Body {
			key := l.String()
			if j, dup := seen[key]; dup {
				flagged[i] = true
				d := Diagnostic{Severity: Warning, Pos: l.Atom.Pos,
					Message: fmt.Sprintf("condition '%s' duplicates the condition at %s", l, c.Body[j].Atom.Pos)}
				if fix, ok := ctx.deleteLiteralFix(c, i, "delete the duplicated condition"); ok {
					d.SuggestedFixes = []SuggestedFix{fix}
				}
				out = append(out, d)
				continue
			}
			seen[key] = i
		}
		// Comparison subsumption: group one-sided numeric bounds per
		// (variable, direction); every bound weaker than the strongest is
		// redundant.
		lower := map[string][]bound{}
		upper := map[string][]bound{}
		for i, l := range c.Body {
			if l.Neg || flagged[i] {
				continue
			}
			v, b, isLower, ok := normalizeBound(l, i)
			if !ok {
				continue
			}
			if isLower {
				lower[v] = append(lower[v], b)
			} else {
				upper[v] = append(upper[v], b)
			}
		}
		report := func(groups map[string][]bound, isLower bool) {
			for _, bs := range groups {
				if len(bs) < 2 {
					continue
				}
				best := bs[0]
				for _, b := range bs[1:] {
					if boundStronger(b, best, isLower) {
						best = b
					}
				}
				for _, b := range bs {
					if b.idx == best.idx || boundStronger(b, best, isLower) {
						continue
					}
					d := Diagnostic{Severity: Warning, Pos: b.lit.Atom.Pos,
						Message: fmt.Sprintf("condition '%s' is implied by '%s' at %s", b.lit, best.lit, best.lit.Atom.Pos)}
					if fix, ok := ctx.deleteLiteralFix(c, b.idx, "delete the subsumed condition"); ok {
						d.SuggestedFixes = []SuggestedFix{fix}
					}
					out = append(out, d)
				}
			}
		}
		report(lower, true)
		report(upper, false)
	}
	return out
}

// normalizeBound turns a comparison literal with a variable on one side and
// a number on the other into a one-sided bound on the variable.
func normalizeBound(l lang.Literal, idx int) (v string, b bound, isLower, ok bool) {
	a := l.Atom
	if a.Kind != lang.Compound || len(a.Args) != 2 {
		return "", bound{}, false, false
	}
	var strict, lowerIfVarLeft bool
	switch a.Functor {
	case ">":
		strict, lowerIfVarLeft = true, true
	case ">=":
		strict, lowerIfVarLeft = false, true
	case "<":
		strict, lowerIfVarLeft = true, false
	case "=<":
		strict, lowerIfVarLeft = false, false
	default:
		return "", bound{}, false, false
	}
	x, y := a.Args[0], a.Args[1]
	if x.Kind == lang.Var {
		if n, isNum := y.Number(); isNum {
			return x.Functor, bound{idx: idx, val: n, strict: strict, lit: l}, lowerIfVarLeft, true
		}
	}
	if y.Kind == lang.Var {
		if n, isNum := x.Number(); isNum {
			// 5 < X is a lower bound on X.
			return y.Functor, bound{idx: idx, val: n, strict: strict, lit: l}, !lowerIfVarLeft, true
		}
	}
	return "", bound{}, false, false
}

// boundStronger reports whether bound a strictly implies bound b.
func boundStronger(a, b bound, isLower bool) bool {
	if a.val == b.val {
		return a.strict && !b.strict
	}
	if isLower {
		return a.val > b.val
	}
	return a.val < b.val
}

// ---------------------------------------------------------------- R015

// runNeverTerminated reports simple fluent values that are initiated but
// can never end: no terminatedAt rule covers the value and no other value
// of the same fluent is ever initiated (in RTEC, initiating F=V' terminates
// F=V).
func runNeverTerminated(ctx *context) []Diagnostic {
	var out []Diagnostic
	for _, name := range ctx.defNames {
		d := ctx.defs[name]
		if len(d.simple) == 0 || len(d.sd) > 0 {
			continue
		}
		type vinfo struct {
			pos lang.Position
			fvp string
		}
		initiated := map[string]vinfo{}
		var order []string
		terminated := map[string]bool{}
		varInit, varTerm := false, false
		for _, c := range d.simple {
			fvp, _ := c.HeadFVP()
			if fvp == nil {
				continue
			}
			v := fvp.Args[1]
			key := v.String()
			if c.Head.Functor == "initiatedAt" {
				if !v.IsConst() {
					varInit = true
					continue
				}
				if _, ok := initiated[key]; !ok {
					initiated[key] = vinfo{c.Pos, fvp.String()}
					order = append(order, key)
				}
			} else {
				if !v.IsConst() {
					varTerm = true
					continue
				}
				terminated[key] = true
			}
		}
		if varInit || varTerm || len(initiated) > 1 {
			continue
		}
		for _, key := range order {
			if terminated[key] {
				continue
			}
			vi := initiated[key]
			out = append(out, Diagnostic{Severity: Warning, Pos: vi.pos, Symbol: name,
				Message: fmt.Sprintf("simple fluent '%s' is initiated here but never terminated: once recognised it holds forever", vi.fvp)})
		}
	}
	return out
}

// ---------------------------------------------------------------- R016

// runVacuousThreshold constant-folds comparisons whose operands are numbers,
// arithmetic over numbers, or variables bound by 'thresholds' facts with
// known values (declared in the description or via Options.Constants).
// Always-true comparisons are dead weight (warning, with a deletion fix);
// always-false comparisons kill the rule (error).
func runVacuousThreshold(ctx *context) []Diagnostic {
	declared := map[string]float64{}
	for _, c := range ctx.ed.Clauses {
		if !c.IsFact() || c.Head.Functor != "thresholds" || len(c.Head.Args) != 2 {
			continue
		}
		name, v := c.Head.Args[0], c.Head.Args[1]
		if name.Kind != lang.Atom {
			continue
		}
		if n, ok := v.Number(); ok {
			declared[name.Functor] = n
		}
	}
	thresholdValue := func(name string) (float64, bool) {
		if v, ok := declared[name]; ok {
			return v, true
		}
		v, ok := ctx.opts.Constants[name]
		return v, ok
	}
	var out []Diagnostic
	for _, c := range ctx.ed.Clauses {
		if c.IsFact() {
			continue
		}
		env := map[string]float64{}
		for _, l := range c.Body {
			a := l.Atom
			if l.Neg || a.Kind != lang.Compound || a.Functor != "thresholds" || len(a.Args) != 2 {
				continue
			}
			name, v := a.Args[0], a.Args[1]
			if name.Kind != lang.Atom || v.Kind != lang.Var {
				continue
			}
			if val, ok := thresholdValue(name.Functor); ok {
				env[v.Functor] = val
			}
		}
		for i, l := range c.Body {
			a := l.Atom
			if a.Kind != lang.Compound || len(a.Args) != 2 {
				continue
			}
			if !orderOps[a.Functor] && a.Functor != "\\=" {
				continue
			}
			verdict, why, ok := foldCompare(a, env)
			if !ok {
				continue
			}
			if verdict {
				d := Diagnostic{Severity: Warning, Pos: a.Pos,
					Message: fmt.Sprintf("comparison '%s' is always true %s: it never constrains the rule", a, why)}
				if fix, ok := ctx.deleteLiteralFix(c, i, "delete the vacuous comparison"); ok {
					d.SuggestedFixes = []SuggestedFix{fix}
				}
				out = append(out, d)
			} else {
				out = append(out, Diagnostic{Severity: Error, Pos: a.Pos,
					Message: fmt.Sprintf("comparison '%s' is always false %s: the rule can never fire", a, why)})
			}
		}
	}
	return out
}

// foldCompare decides a comparison whose operands are both statically known
// numbers, or whose two sides are the same variable.
func foldCompare(a *lang.Term, env map[string]float64) (verdict bool, why string, ok bool) {
	x, y := a.Args[0], a.Args[1]
	if x.Kind == lang.Var && y.Kind == lang.Var && x.Functor == y.Functor {
		switch a.Functor {
		case "<", ">", "=\\=", "\\=":
			return false, fmt.Sprintf("(both sides are '%s')", x.Functor), true
		case "=<", ">=", "=:=":
			return true, fmt.Sprintf("(both sides are '%s')", x.Functor), true
		}
		return false, "", false
	}
	lv, lok := evalNumber(x, env)
	rv, rok := evalNumber(y, env)
	if !lok || !rok {
		return false, "", false
	}
	why = fmt.Sprintf("(%v %s %v)", lv, a.Functor, rv)
	switch a.Functor {
	case "<":
		return lv < rv, why, true
	case ">":
		return lv > rv, why, true
	case "=<":
		return lv <= rv, why, true
	case ">=":
		return lv >= rv, why, true
	case "=:=":
		return lv == rv, why, true
	case "=\\=", "\\=":
		return lv != rv, why, true
	}
	return false, "", false
}

// evalNumber statically evaluates a term to a number: literals, variables
// bound by known thresholds, and arithmetic over such terms.
func evalNumber(t *lang.Term, env map[string]float64) (float64, bool) {
	switch t.Kind {
	case lang.Int, lang.Float:
		return t.Number()
	case lang.Var:
		v, ok := env[t.Functor]
		return v, ok
	case lang.Compound:
		if len(t.Args) != 2 {
			return 0, false
		}
		l, lok := evalNumber(t.Args[0], env)
		r, rok := evalNumber(t.Args[1], env)
		if !lok || !rok {
			return 0, false
		}
		switch t.Functor {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		}
	}
	return 0, false
}
