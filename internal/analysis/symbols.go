package analysis

import (
	"sort"

	"rtecgen/internal/lang"
)

// rtecBuiltins are the temporal predicates, interval operators and
// declaration functors of the dialect; they are never user symbols.
var rtecBuiltins = map[string]bool{
	"initiatedAt": true, "terminatedAt": true, "holdsAt": true, "holdsFor": true,
	"happensAt": true, "union_all": true, "intersect_all": true,
	"relative_complement_all": true, "not": true,
	"inputEvent": true, "grounding": true, "thresholds": true,
	"abs": true, "absAngleDiff": true, "true": true,
}

// comparisonOps are the infix comparison and arithmetic operators. They do
// not bind variables (except '=', handled separately) and are exempt from
// the symbol passes.
var comparisonOps = map[string]bool{
	"=": true, "<": true, ">": true, ">=": true, "=<": true,
	"=:=": true, "=\\=": true, "\\=": true,
	"+": true, "-": true, "*": true, "/": true,
}

// intervalOps are the interval-manipulation constructs of statically
// determined fluent definitions.
var intervalOps = map[string]bool{
	"union_all": true, "intersect_all": true, "relative_complement_all": true,
}

func isTemporalHead(name string) bool {
	return name == "initiatedAt" || name == "terminatedAt" || name == "holdsFor"
}

// definition records how one user symbol is defined across the description.
type definition struct {
	name   string
	simple []*lang.Clause // initiatedAt/terminatedAt rules for the fluent
	sd     []*lang.Clause // holdsFor rules for the fluent
	aux    []*lang.Clause // background (non-temporal) rules with this head
	facts  []*lang.Clause // facts with this head
}

// clauses returns every defining clause in source order.
func (d *definition) clauses() []*lang.Clause {
	out := make([]*lang.Clause, 0, len(d.simple)+len(d.sd)+len(d.aux)+len(d.facts))
	out = append(out, d.simple...)
	out = append(out, d.sd...)
	out = append(out, d.aux...)
	out = append(out, d.facts...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos.Before(out[j].Pos) })
	return out
}

func (d *definition) firstPos() lang.Position {
	cs := d.clauses()
	if len(cs) == 0 {
		return lang.Position{}
	}
	return cs[0].Pos
}

type refKind int

const (
	refFluent refKind = iota // holdsAt/holdsFor/initiatedAt/terminatedAt over F=V
	refEvent                 // happensAt over an event term
	refPred                  // plain background predicate call
)

// reference is one use of a user symbol inside a rule body.
type reference struct {
	name   string
	kind   refKind
	neg    bool // the literal is negated
	term   *lang.Term
	clause *lang.Clause
}

// arityUse is one occurrence of a symbol in predicate position.
type arityUse struct {
	name  string
	arity int
	pos   lang.Position
}

// context is the shared state of one Analyze run: the event description
// plus lazily usable symbol, reference and arity tables.
type context struct {
	ed   *lang.EventDescription
	opts Options

	defs      map[string]*definition
	defNames  []string        // sorted
	events    map[string]bool // functors declared via inputEvent facts
	hasDecls  bool
	refs      []reference
	arityUses []arityUse
	lineOff   []int // byte offset of each line start of opts.Source
}

func newContext(ed *lang.EventDescription, opts Options) *context {
	ctx := &context{ed: ed, opts: opts, defs: map[string]*definition{}, events: map[string]bool{}}
	if opts.Source != "" {
		ctx.lineOff = lineOffsets(opts.Source)
	}
	for _, c := range ed.Clauses {
		ctx.collectClause(c)
	}
	for n := range ctx.defs {
		ctx.defNames = append(ctx.defNames, n)
	}
	sort.Strings(ctx.defNames)
	return ctx
}

func (ctx *context) def(name string) *definition {
	d, ok := ctx.defs[name]
	if !ok {
		d = &definition{name: name}
		ctx.defs[name] = d
	}
	return d
}

// headFluent returns the fluent term of a well-formed temporal head, or nil.
func headFluent(c *lang.Clause) *lang.Term {
	h := c.Head
	if h.Kind != lang.Compound || !isTemporalHead(h.Functor) || len(h.Args) != 2 {
		return nil
	}
	fvp := h.Args[0]
	if fvp.Kind == lang.Compound && fvp.Functor == "=" && len(fvp.Args) == 2 && fvp.Args[0].IsCallable() {
		return fvp.Args[0]
	}
	return nil
}

// fluentRefTerm extracts the fluent term of a temporal body condition
// (holdsAt/holdsFor/initiatedAt/terminatedAt over F=V), or nil.
func fluentRefTerm(atom *lang.Term) *lang.Term {
	if atom.Kind != lang.Compound || len(atom.Args) != 2 {
		return nil
	}
	switch atom.Functor {
	case "holdsAt", "holdsFor", "initiatedAt", "terminatedAt":
	default:
		return nil
	}
	fvp := atom.Args[0]
	if fvp.Kind == lang.Compound && fvp.Functor == "=" && len(fvp.Args) == 2 && fvp.Args[0].IsCallable() {
		return fvp.Args[0]
	}
	return nil
}

// collectClause files one clause into the definition, reference and arity
// tables.
func (ctx *context) collectClause(c *lang.Clause) {
	h := c.Head
	switch {
	case h.Functor == "inputEvent" && len(h.Args) == 1 && h.Args[0].IsCallable():
		// Event declaration.
		ctx.events[h.Args[0].Functor] = true
		ctx.hasDecls = true
		ctx.addArity(h.Args[0])
	case h.Functor == "grounding":
		// Grounding declaration: its argument mentions a fluent but neither
		// defines nor uses it; its body references background predicates.
		ctx.collectBody(c)
	case isTemporalHead(h.Functor):
		if fl := headFluent(c); fl != nil {
			d := ctx.def(fl.Functor)
			if h.Functor == "holdsFor" {
				d.sd = append(d.sd, c)
			} else {
				d.simple = append(d.simple, c)
			}
			ctx.addArity(fl)
		}
		ctx.collectBody(c)
	case c.IsFact():
		if !rtecBuiltins[h.Functor] && !comparisonOps[h.Functor] {
			d := ctx.def(h.Functor)
			d.facts = append(d.facts, c)
			ctx.addArity(h)
		}
	default:
		if !rtecBuiltins[h.Functor] && !comparisonOps[h.Functor] {
			d := ctx.def(h.Functor)
			d.aux = append(d.aux, c)
			ctx.addArity(h)
		}
		ctx.collectBody(c)
	}
}

// collectBody files the body literals of a clause into the reference and
// arity tables.
func (ctx *context) collectBody(c *lang.Clause) {
	for _, l := range c.Body {
		a := l.Atom
		if fl := fluentRefTerm(a); fl != nil {
			ctx.refs = append(ctx.refs, reference{name: fl.Functor, kind: refFluent, neg: l.Neg, term: fl, clause: c})
			ctx.addArity(fl)
			continue
		}
		if a.Functor == "happensAt" && len(a.Args) == 2 && a.Args[0].IsCallable() {
			ev := a.Args[0]
			ctx.refs = append(ctx.refs, reference{name: ev.Functor, kind: refEvent, neg: l.Neg, term: ev, clause: c})
			ctx.addArity(ev)
			continue
		}
		if a.IsCallable() && !rtecBuiltins[a.Functor] && !comparisonOps[a.Functor] {
			ctx.refs = append(ctx.refs, reference{name: a.Functor, kind: refPred, neg: l.Neg, term: a, clause: c})
			ctx.addArity(a)
		}
	}
}

func (ctx *context) addArity(t *lang.Term) {
	if rtecBuiltins[t.Functor] || comparisonOps[t.Functor] {
		return
	}
	ctx.arityUses = append(ctx.arityUses, arityUse{name: t.Functor, arity: len(t.Args), pos: t.Pos})
}

// known reports whether a name is part of the provided external vocabulary.
func (ctx *context) known(name string) bool { return ctx.opts.Vocabulary[name] }

// defined reports whether the description itself gives the name a
// definition of any sort.
func (ctx *context) defined(name string) bool {
	d, ok := ctx.defs[name]
	return ok && (len(d.simple)+len(d.sd)+len(d.aux)+len(d.facts)) > 0
}
