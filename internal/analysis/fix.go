package analysis

import (
	"fmt"
	"sort"
	"strings"
	"unicode"

	"rtecgen/internal/lang"
)

// This file implements the machine-applicable side of the analyzer: spans
// and text edits over the analyzed source, suggested fixes attached to
// diagnostics, an applier with overlap detection, and the fixpoint driver
// that re-parses and re-analyzes until the description is as clean as the
// fixes can make it.

// Span is a half-open byte range [Start, End) into the analyzed source.
type Span struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// TextEdit replaces the text of Span with NewText. A deletion has an empty
// NewText; a pure insertion has an empty span.
type TextEdit struct {
	Span    Span   `json:"span"`
	NewText string `json:"newText"`
}

// SuggestedFix is one machine-applicable repair for a diagnostic: a message
// describing the repair and the edits that perform it. All edits of a fix
// are applied together or not at all.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// lineOffsets returns the byte offset of the start of every line of src.
func lineOffsets(src string) []int {
	offs := []int{0}
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			offs = append(offs, i+1)
		}
	}
	return offs
}

// hasSource reports whether the analyzed source text is available, i.e.
// whether passes can attach suggested fixes.
func (ctx *context) hasSource() bool { return ctx.opts.Source != "" }

// offsetOf maps a 1-based source position to a byte offset into the
// analyzed source. The lexer counts columns in bytes, so the mapping is
// exact.
func (ctx *context) offsetOf(pos lang.Position) (int, bool) {
	if !ctx.hasSource() || !pos.IsValid() || pos.Line > len(ctx.lineOff) {
		return 0, false
	}
	off := ctx.lineOff[pos.Line-1] + pos.Col - 1
	if off < 0 || off > len(ctx.opts.Source) {
		return 0, false
	}
	return off, true
}

func isSpaceByte(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func isIdentByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// scanToken advances a tiny source scanner past comments, quoted atoms and
// strings, tracking bracket depth, and reports whether the byte at i is a
// clause- or condition-level occurrence of a terminator. It returns the
// next index to inspect.
func scanStep(src string, i int, depth *int) (next int, terminator byte) {
	switch c := src[i]; c {
	case '%':
		for i < len(src) && src[i] != '\n' {
			i++
		}
		return i, 0
	case '\'':
		i++
		for i < len(src) && src[i] != '\'' {
			i++
		}
		return i + 1, 0
	case '"':
		i++
		for i < len(src) && src[i] != '"' {
			if src[i] == '\\' {
				i++
			}
			i++
		}
		return i + 1, 0
	case '(', '[':
		*depth++
		return i + 1, 0
	case ')', ']':
		*depth--
		return i + 1, 0
	case '.':
		// A '.' between two digits is part of a float, not a terminator.
		if *depth == 0 && !(i > 0 && isDigit(src[i-1]) && i+1 < len(src) && isDigit(src[i+1])) {
			return i, '.'
		}
		return i + 1, 0
	case ',':
		if *depth == 0 {
			return i, ','
		}
		return i + 1, 0
	default:
		return i + 1, 0
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// clauseEnd scans forward from start and returns the offset just past the
// '.' that terminates the clause starting there.
func clauseEnd(src string, start int) (int, bool) {
	depth := 0
	for i := start; i < len(src); {
		next, term := scanStep(src, i, &depth)
		if term == '.' {
			return i + 1, true
		}
		if term != 0 {
			// A depth-0 comma separates body literals; step past it.
			next = i + 1
		}
		i = next
	}
	return 0, false
}

// deleteClauseFix builds a fix that deletes a whole clause, including the
// trailing whitespace that separates it from the next one.
func (ctx *context) deleteClauseFix(c *lang.Clause, msg string) (SuggestedFix, bool) {
	start, ok := ctx.offsetOf(c.Pos)
	if !ok {
		return SuggestedFix{}, false
	}
	end, ok := clauseEnd(ctx.opts.Source, start)
	if !ok {
		return SuggestedFix{}, false
	}
	src := ctx.opts.Source
	for end < len(src) && isSpaceByte(src[end]) {
		end++
	}
	return SuggestedFix{Message: msg, Edits: []TextEdit{{Span: Span{start, end}}}}, true
}

// literalExtent locates the source span of body literal i of clause c,
// including a 'not' prefix when the literal is negated. It returns the
// start offset, the end offset (exclusive, before the separator) and the
// separator byte (',' between conditions, '.' after the last).
func (ctx *context) literalExtent(c *lang.Clause, i int) (start, end int, sep byte, ok bool) {
	l := c.Body[i]
	src := ctx.opts.Source
	start, ok = ctx.offsetOf(l.Atom.Pos)
	if !ok {
		return 0, 0, 0, false
	}
	if l.Neg {
		// The atom is preceded by "not " or wrapped as "not(...)"; back up
		// over whitespace and at most one '(' to the keyword.
		j := start
		for j > 0 && isSpaceByte(src[j-1]) {
			j--
		}
		if j > 0 && src[j-1] == '(' {
			j--
			for j > 0 && isSpaceByte(src[j-1]) {
				j--
			}
		}
		if j < 3 || src[j-3:j] != "not" || (j > 3 && isIdentByte(src[j-4])) {
			return 0, 0, 0, false
		}
		start = j - 3
	}
	depth := 0
	for k := start; k < len(src); {
		next, term := scanStep(src, k, &depth)
		if term != 0 {
			return start, k, term, true
		}
		k = next
	}
	return 0, 0, 0, false
}

// deleteLiteralFix builds a fix that deletes body literal i of clause c,
// together with the comma that joins it to its neighbours. A rule must keep
// at least one condition, so no fix is offered for a sole literal.
func (ctx *context) deleteLiteralFix(c *lang.Clause, i int, msg string) (SuggestedFix, bool) {
	if len(c.Body) < 2 || !ctx.hasSource() {
		return SuggestedFix{}, false
	}
	src := ctx.opts.Source
	start, end, sep, ok := ctx.literalExtent(c, i)
	if !ok {
		return SuggestedFix{}, false
	}
	if i < len(c.Body)-1 {
		if sep != ',' {
			return SuggestedFix{}, false
		}
		del := end + 1
		for del < len(src) && isSpaceByte(src[del]) {
			del++
		}
		return SuggestedFix{Message: msg, Edits: []TextEdit{{Span: Span{start, del}}}}, true
	}
	if sep != '.' {
		return SuggestedFix{}, false
	}
	// Last literal: delete the preceding comma instead, keep the '.'.
	j := start
	for j > 0 && isSpaceByte(src[j-1]) {
		j--
	}
	if j == 0 || src[j-1] != ',' {
		return SuggestedFix{}, false
	}
	return SuggestedFix{Message: msg, Edits: []TextEdit{{Span: Span{j - 1, end}}}}, true
}

// isPlainName reports whether a name is a plain (unquoted) atom spelling.
func isPlainName(name string) bool {
	if name == "" || !unicode.IsLower(rune(name[0])) {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isIdentByte(name[i]) {
			return false
		}
	}
	return true
}

// renameFix builds a fix replacing every occurrence of the atom or functor
// name in the description with to. The fix is all-or-nothing: when any
// occurrence cannot be located exactly in the source, no fix is offered.
func (ctx *context) renameFix(name, to, msg string) (SuggestedFix, bool) {
	if !ctx.hasSource() || name == to || !isPlainName(name) || !isPlainName(to) {
		return SuggestedFix{}, false
	}
	src := ctx.opts.Source
	var edits []TextEdit
	seen := map[Span]bool{}
	ok := true
	addTerm := func(t *lang.Term) {
		t.Walk(func(n *lang.Term) bool {
			if !ok || (n.Kind != lang.Atom && n.Kind != lang.Compound) || n.Functor != name {
				return ok
			}
			off, found := ctx.offsetOf(n.Pos)
			if !found || !strings.HasPrefix(src[off:], name) ||
				(off > 0 && isIdentByte(src[off-1])) ||
				(off+len(name) < len(src) && isIdentByte(src[off+len(name)])) {
				ok = false
				return false
			}
			sp := Span{off, off + len(name)}
			if !seen[sp] {
				seen[sp] = true
				edits = append(edits, TextEdit{Span: sp, NewText: to})
			}
			return true
		})
	}
	for _, c := range ctx.ed.Clauses {
		addTerm(c.Head)
		for _, l := range c.Body {
			addTerm(l.Atom)
		}
	}
	if !ok || len(edits) == 0 {
		return SuggestedFix{}, false
	}
	return SuggestedFix{Message: msg, Edits: edits}, true
}

func overlaps(a, b Span) bool {
	if a.Start == a.End && b.Start == b.End {
		return a.Start == b.Start
	}
	return a.Start < b.End && b.Start < a.End
}

// ApplyFixes applies suggested fixes to src, in the given order. A fix is
// accepted only when each of its edits either exactly duplicates an
// already-accepted edit or overlaps none of them; conflicting fixes are
// skipped deterministically. It returns the edited source and the number of
// fixes applied.
func ApplyFixes(src string, fixes []SuggestedFix) (string, int) {
	var accepted []TextEdit
	applied := 0
	for _, f := range fixes {
		if len(f.Edits) == 0 {
			continue
		}
		candidate := accepted
		ok := true
		for _, e := range f.Edits {
			if e.Span.Start < 0 || e.Span.End < e.Span.Start || e.Span.End > len(src) {
				ok = false
				break
			}
			dup, conflict := false, false
			for _, a := range candidate {
				if a == e {
					dup = true
					break
				}
				if overlaps(a.Span, e.Span) {
					conflict = true
					break
				}
			}
			if conflict {
				ok = false
				break
			}
			if !dup {
				candidate = append(candidate, e)
			}
		}
		if !ok {
			continue
		}
		accepted = candidate
		applied++
	}
	if applied == 0 {
		return src, 0
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i].Span.Start < accepted[j].Span.Start })
	var b strings.Builder
	prev := 0
	for _, e := range accepted {
		b.WriteString(src[prev:e.Span.Start])
		b.WriteString(e.NewText)
		prev = e.Span.End
	}
	b.WriteString(src[prev:])
	return b.String(), applied
}

// Fixes collects every suggested fix of the report, in report order.
func (r *Report) Fixes() []SuggestedFix {
	var out []SuggestedFix
	for _, d := range r.Diagnostics {
		out = append(out, d.SuggestedFixes...)
	}
	return out
}

// DefaultFixBudget bounds the analyze → apply → re-analyze rounds of Fix.
const DefaultFixBudget = 3

// FixRound records one iteration of the fixpoint driver.
type FixRound struct {
	Before  int // diagnostics before the round
	Applied int // fixes applied
	After   int // diagnostics after re-analysis
}

// FixResult is the outcome of Fix: the final source, its report, and the
// per-round trace.
type FixResult struct {
	Source string
	Report *Report
	Rounds []FixRound
}

// Fixpoint reports whether the driver stopped because no further fix
// applies, rather than because the budget ran out.
func (r *FixResult) Fixpoint() bool { return len(r.Report.Fixes()) == 0 }

// Fix drives suggested fixes to a fixpoint: analyze src, apply every
// non-conflicting fix, re-parse and re-analyze, and repeat until no fix
// applies, the budget is exhausted (DefaultFixBudget when budget <= 0), or
// a round fails to strictly decrease the diagnostic count — such a round is
// discarded, so the diagnostic count decreases strictly across accepted
// rounds.
func Fix(src string, opts Options, budget int) *FixResult {
	if budget <= 0 {
		budget = DefaultFixBudget
	}
	rep := AnalyzeSource(src, opts)
	res := &FixResult{Source: src, Report: rep}
	for round := 0; round < budget; round++ {
		fixes := rep.Fixes()
		if len(fixes) == 0 {
			break
		}
		next, applied := ApplyFixes(src, fixes)
		if applied == 0 {
			break
		}
		nrep := AnalyzeSource(next, opts)
		if len(nrep.Diagnostics) >= len(rep.Diagnostics) {
			break
		}
		res.Rounds = append(res.Rounds, FixRound{
			Before: len(rep.Diagnostics), Applied: applied, After: len(nrep.Diagnostics)})
		src, rep = next, nrep
		res.Source, res.Report = src, rep
	}
	return res
}

// Diff renders a minimal line-based unified-style diff between two sources,
// used by cmd/rteclint -diff. It is a simple LCS diff, adequate for the
// small event descriptions this repository handles.
func Diff(name, before, after string) string {
	if before == after {
		return ""
	}
	a := strings.Split(before, "\n")
	b := strings.Split(after, "\n")
	// LCS table.
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "--- %s\n+++ %s (fixed)\n", name, name)
	i, j := 0, 0
	for i < n || j < m {
		switch {
		case i < n && j < m && a[i] == b[j]:
			fmt.Fprintf(&out, " %s\n", a[i])
			i++
			j++
		case j < m && (i == n || lcs[i][j+1] >= lcs[i+1][j]):
			fmt.Fprintf(&out, "+%s\n", b[j])
			j++
		default:
			fmt.Fprintf(&out, "-%s\n", a[i])
			i++
		}
	}
	return out.String()
}
