// Package core is the facade over the paper's primary contribution: one
// entry point that runs the whole method — prompt a model into generating
// an RTEC event description for a curriculum of composite activities, score
// it against a gold standard with the similarity metric of Section 4,
// optionally apply the minimal syntactic corrections, and (given a stream)
// measure its predictive accuracy on composite event recognition.
//
// The underlying pieces remain available for fine-grained use:
// internal/prompt (the pipeline), internal/similarity (the metric),
// internal/correct (the corrector), internal/check (the error taxonomy),
// internal/rtec (the recognition engine) and internal/maritime (the
// evaluation domain).
package core

import (
	"fmt"

	"rtecgen/internal/check"
	"rtecgen/internal/correct"
	"rtecgen/internal/eval"
	"rtecgen/internal/lang"
	"rtecgen/internal/llm"
	"rtecgen/internal/maritime"
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// Result bundles everything the method produces for one model and
// prompting scheme.
type Result struct {
	// Generated is the raw pipeline output (per-activity rules and parse
	// errors).
	Generated *prompt.GeneratedED
	// Similarity scores the generated description against the gold
	// standard: per composite activity and overall (Definition 4.14).
	Similarity eval.Row
	// Corrected is the description after the minimal syntactic changes,
	// with its change log.
	Corrected *correct.Corrected
	// CorrectedSimilarity re-scores the corrected description (Figure 2b).
	CorrectedSimilarity eval.Row
	// Findings is the automated qualitative error assessment.
	Findings []check.Finding
}

// Generate runs the full method for one model name (one of GPT-4, GPT-4o,
// o1, Llama-3, Mistral, Gemma-2 — or any prompt.Model via GenerateWith) and
// prompting scheme, on the maritime domain of the paper's evaluation.
func Generate(modelName string, scheme prompt.Scheme) (*Result, error) {
	m, err := llm.New(modelName)
	if err != nil {
		return nil, err
	}
	return GenerateWith(m, scheme)
}

// GenerateWith is Generate for a caller-supplied model (e.g. a live API
// client implementing prompt.Model).
func GenerateWith(model prompt.Model, scheme prompt.Scheme) (*Result, error) {
	return GenerateObserved(nil, model, scheme)
}

// GenerateObserved is GenerateWith with observability: a "core.generate"
// root span, the model wrapped with llm.Instrument, and every stage
// (prompting, parsing, linting, correction, scoring) recording its spans,
// timers and counters on tel. A nil tel makes it identical to GenerateWith.
func GenerateObserved(tel *telemetry.Telemetry, model prompt.Model, scheme prompt.Scheme) (*Result, error) {
	sp := tel.Span("core.generate",
		telemetry.String("model", model.Name()), telemetry.String("scheme", scheme.String()))
	defer sp.End()
	domain := maritime.PromptDomain()
	gold := maritime.GoldED()
	gen, err := prompt.RunPipelineWith(tel, llm.Instrument(model, tel), scheme, domain, maritime.CurriculumRequests())
	if err != nil {
		return nil, fmt.Errorf("core: generation: %w", err)
	}
	row, err := eval.ScoreWith(tel, gold, gen)
	if err != nil {
		return nil, fmt.Errorf("core: scoring: %w", err)
	}
	cor := correct.ApplyWith(tel, gen, domain)
	corRow, err := eval.ScoreWith(tel, gold, cor.Gen)
	if err != nil {
		return nil, fmt.Errorf("core: scoring corrected: %w", err)
	}
	return &Result{
		Generated:           gen,
		Similarity:          row,
		Corrected:           cor,
		CorrectedSimilarity: corRow,
		Findings:            check.Analyze(gen, gold, domain),
	}, nil
}

// GoldStandard returns the hand-crafted gold event description the method
// scores against.
func GoldStandard() *lang.EventDescription { return maritime.GoldED() }

// Models returns the names of the bundled simulated models.
func Models() []string { return llm.ModelNames() }
