package core

import (
	"testing"

	"rtecgen/internal/prompt"
)

func TestGenerateEndToEnd(t *testing.T) {
	res, err := Generate("o1", prompt.FewShot)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == nil || len(res.Generated.Results) == 0 {
		t.Fatal("no generated results")
	}
	if res.Similarity.Overall <= 0.9 {
		t.Fatalf("o1 overall similarity = %v, want > 0.9", res.Similarity.Overall)
	}
	if res.CorrectedSimilarity.Overall < res.Similarity.Overall {
		t.Fatal("correction decreased similarity")
	}
	if len(res.Corrected.Changes) == 0 {
		t.Fatal("o1 needs at least the trawlingArea correction")
	}
	if len(res.Findings) == 0 {
		t.Fatal("o1 has at least naming findings")
	}
}

func TestGenerateUnknownModel(t *testing.T) {
	if _, err := Generate("GPT-9", prompt.FewShot); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestGoldStandardAndModels(t *testing.T) {
	if len(GoldStandard().Rules()) < 40 {
		t.Fatal("gold standard too small")
	}
	if len(Models()) != 6 {
		t.Fatalf("Models() = %v", Models())
	}
}
