package rtec

import (
	"errors"
	"fmt"
	"time"

	"rtecgen/internal/intervals"
	"rtecgen/internal/lang"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
	"rtecgen/internal/telemetry/journal"
)

// ErrSuspended reports that a streaming run stopped early at a clean
// arrival boundary because StreamOptions.Interrupt asked it to. A suspend
// checkpoint has been written; ResumeStream (or a resumed StreamRunner)
// continues the run byte-identically.
var ErrSuspended = errors.New("rtec: run suspended")

// StreamOptions configure an out-of-order, crash-safe recognition run.
type StreamOptions struct {
	RunOptions
	// MaxDelay is the bounded-delay disorder tolerance in time-points:
	// events arriving behind the event-time frontier by at most MaxDelay
	// are admitted and revise the affected windows; older events are
	// counted and dropped. Zero tolerates no disorder (out-of-order events
	// are dropped), which over an in-order stream reproduces Run exactly.
	MaxDelay int64
	// CheckpointPath, when non-empty, enables crash-safe checkpointing: a
	// versioned, checksummed snapshot of the run state is written
	// atomically (write-temp+rename) to this path every CheckpointEvery
	// windows.
	CheckpointPath string
	// CheckpointEvery is the number of first-time window emissions between
	// snapshots. Zero defaults to 1 (snapshot after every window).
	CheckpointEvery int
	// Journal, when non-nil, receives the structured audit records of the
	// run: the run plan, degradation admission verdicts, every window
	// delivery with its assertion/retraction diff, checkpoint events, SLO
	// breaches and the final statistics. A journal write failure fails the
	// run — an audit trail with a hole is worse than no run.
	Journal *journal.Writer
	// Interrupt, when non-nil, is polled between arrivals: when it returns
	// true the run writes a suspend checkpoint (CheckpointPath must be set)
	// and stops with ErrSuspended at a clean arrival boundary. ResumeStream
	// then continues the run so the final output — recognition, journal
	// bytes, statistics — is byte-identical to an uninterrupted one.
	Interrupt func() bool
	// SLO sets the streaming-lag objectives; see SLOOptions.
	SLO SLOOptions
}

// StreamStats counts what happened to the arrivals of a streaming run.
type StreamStats struct {
	// Observed is the number of arrivals processed (resumed runs include
	// the arrivals consumed before the checkpoint).
	Observed int64
	// Accepted counts admitted events (in-order plus late-within-bound).
	Accepted int64
	// Late counts admitted events that arrived behind the frontier.
	Late int64
	// Duplicates counts discarded exact-duplicate arrivals.
	Duplicates int64
	// Dropped counts arrivals behind the watermark, dropped as too late.
	Dropped int64
	// Revisions counts re-deliveries of already-emitted windows caused by
	// late events.
	Revisions int64
	// Checkpoints counts snapshots written.
	Checkpoints int64
}

// String renders the stats as a one-line report.
func (s StreamStats) String() string {
	return fmt.Sprintf("observed=%d accepted=%d late=%d duplicates=%d dropped=%d revisions=%d checkpoints=%d",
		s.Observed, s.Accepted, s.Late, s.Duplicates, s.Dropped, s.Revisions, s.Checkpoints)
}

// StreamResult is the outcome of a streaming run: the amalgamated
// recognition (identical to what Run over the in-order, deduplicated,
// within-bound stream would produce) plus the disorder statistics.
type StreamResult struct {
	*Recognition
	Stats StreamStats
}

// windowSlot is the per-window book-keeping of a streaming run: the latest
// delivered evaluation of an emitted window, and its revision counter.
type windowSlot struct {
	emitted  bool
	revision int
	eval     windowEval
}

// streamRun is the mutable state of one streaming recognition run.
type streamRun struct {
	eng       *Engine
	opts      StreamOptions
	tl        *timeline
	reorder   *stream.Reorder
	slots     []windowSlot
	emitted   int // slots[:emitted] have been delivered at least once
	consumed  int // arrivals fully processed (for checkpoint resume)
	sinceCkpt int
	// delta is the interval/act state carried out of the last full-stream
	// evaluation of window emitted-1, feeding the incremental evaluation of
	// window emitted. deltaOn caches the engine-level enablement decision.
	delta    *deltaState
	deltaOn  bool
	stats    StreamStats
	warnings []Warning
	warnSeen map[string]bool
	span     *telemetry.Span
	obs      *streamObs
	ranStart bool // run_start has been journalled
	fn       func(WindowResult) error
}

// RunStream performs windowed recognition over an arrival-ordered stream
// that may be out of order, duplicated, or late, and returns the
// amalgamated result plus disorder statistics.
//
// Events are admitted through a bounded-delay reorder buffer (StreamOptions
// .MaxDelay). A window is first evaluated and delivered to fn as soon as
// the event-time frontier passes its query time; a late event within the
// bound re-evaluates the windows it affects (and any downstream windows
// whose inertia carry-over changes) and re-delivers each changed window
// with an incremented WindowResult.Revision and the retraction diff.
// Events older than the bound are counted and dropped. For any
// arrival-order permutation of a stream in which no event is displaced
// beyond MaxDelay, the final Recognition is identical to Run over the
// in-order stream.
//
// With CheckpointPath set, a crash-safe snapshot is written atomically
// every CheckpointEvery windows; ResumeStream continues such a run so that
// its final output is byte-identical to an uninterrupted one. fn may be
// nil when only the final result matters.
func (e *Engine) RunStream(events stream.Stream, opts StreamOptions, fn func(WindowResult) error) (*StreamResult, error) {
	st, empty, err := e.newStreamRun(events, opts, fn)
	if err != nil {
		return nil, err
	}
	if empty {
		return &StreamResult{Recognition: &Recognition{byKey: map[string]intervals.List{}, fvps: map[string]*lang.Term{}}}, nil
	}
	defer st.span.End()
	return st.consume(events)
}

// newStreamRun plans the run. empty is true for the degenerate
// whole-stream time-line over no events.
func (e *Engine) newStreamRun(events stream.Stream, opts StreamOptions, fn func(WindowResult) error) (*streamRun, bool, error) {
	if opts.MaxDelay < 0 {
		return nil, false, fmt.Errorf("rtec: negative max delay %d", opts.MaxDelay)
	}
	tl, empty, err := planTimeline(events, opts.RunOptions)
	if err != nil || empty {
		return nil, empty, err
	}
	tel := e.opts.Telemetry
	st := &streamRun{
		eng:      e,
		opts:     opts,
		tl:       tl,
		reorder:  stream.NewReorder(opts.MaxDelay),
		slots:    make([]windowSlot, tl.n),
		deltaOn:  !e.opts.DisableDelta && !e.opts.DisableCache,
		warnSeen: map[string]bool{},
		fn:       fn,
		span: tel.Span("rtec.run",
			telemetry.String("mode", "stream"),
			telemetry.Int("events", int64(len(events))),
			telemetry.Int("window", tl.window), telemetry.Int("slide", tl.slide),
			telemetry.Int("start", tl.start), telemetry.Int("end", tl.end),
			telemetry.Int("max_delay", opts.MaxDelay)),
	}
	st.obs = newStreamObs(tel, opts.SLO, opts.Journal)
	tel.Logger().Debug("streaming recognition run",
		"component", "rtec", "events", len(events),
		"window", tl.window, "slide", tl.slide, "start", tl.start, "end", tl.end,
		"windows", tl.n, "fluents", len(e.order), "max_delay", opts.MaxDelay)
	return st, false, nil
}

// consume ingests the arrivals after the resume point and finalises.
func (st *streamRun) consume(events stream.Stream) (*StreamResult, error) {
	tel := st.eng.opts.Telemetry
	tel.Gauge("rtec.workers").Set(int64(st.eng.workers))
	defer recordPoolStats(tel)()
	if st.consumed > len(events) {
		return nil, fmt.Errorf("rtec: checkpoint consumed %d arrivals but the stream has only %d", st.consumed, len(events))
	}
	if err := st.journalRunStart(); err != nil {
		return nil, err
	}
	for _, e := range events[st.consumed:] {
		if st.opts.Interrupt != nil && st.opts.Interrupt() {
			return nil, st.suspend()
		}
		if err := st.ingest(e); err != nil {
			return nil, err
		}
	}
	return st.finish()
}

// suspend stops the run at an arrival boundary: it snapshots the state so
// ResumeStream can continue byte-identically, and reports ErrSuspended.
func (st *streamRun) suspend() error {
	if err := st.writeSuspendCheckpoint(); err != nil {
		return err
	}
	return ErrSuspended
}

// finish ends the run: it evaluates and delivers the windows the frontier
// never reached (the events still buffered in the reorder buffer are part of
// those evaluations — a stream ending before the watermark passes them must
// not lose them), amalgamates the result and journals the end of the run.
func (st *streamRun) finish() (*StreamResult, error) {
	for st.emitted < len(st.slots) {
		if err := st.emitNext(); err != nil {
			return nil, err
		}
	}
	st.eng.opts.Telemetry.Counter("rtec.events.ingested").Add(st.reorder.Stats().Accepted)
	res := st.finalise()
	if err := st.journalRunEnd(); err != nil {
		return nil, err
	}
	return res, nil
}

// ingest processes one arrival: admission, revision of emitted windows a
// late event invalidates, emission of windows the frontier passed, pruning,
// and checkpointing.
func (st *streamRun) ingest(e stream.Event) error {
	tel := st.eng.opts.Telemetry
	verdict := st.reorder.Push(e)
	if err := st.observeAdmission(e, verdict); err != nil {
		return err
	}
	switch verdict {
	case stream.TooLate:
		tel.Counter("rtec.dropped_events").Inc()
	case stream.Duplicate:
		tel.Counter("rtec.duplicate_events").Inc()
	case stream.AdmittedLate:
		tel.Counter("rtec.late_events").Inc()
		if err := st.revise(e.Time); err != nil {
			return err
		}
	}

	// Deliver every window whose query time the frontier has now passed.
	for st.emitted < len(st.slots) {
		frontier, ok := st.reorder.Frontier()
		if !ok || frontier < st.tl.q(st.emitted) {
			break
		}
		if err := st.emitNext(); err != nil {
			return err
		}
	}
	st.prune()
	st.consumed++
	if st.opts.CheckpointPath != "" {
		every := st.opts.CheckpointEvery
		if every <= 0 {
			every = 1
		}
		if st.sinceCkpt >= every {
			// Reset before the write, so the cadence snapshot itself records
			// since_ckpt=0 — what a restore must start the next cadence from.
			st.sinceCkpt = 0
			if err := st.writeCheckpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// prevOpenInto returns the inertia carry-over entering window i: the open
// simple FVPs computed by window i-1, or none for the first window.
func (st *streamRun) prevOpenInto(i int) map[string]*lang.Term {
	if i == 0 {
		return map[string]*lang.Term{}
	}
	return st.slots[i-1].eval.nextOpen
}

// evalSlot evaluates window i over the currently admitted events.
func (st *streamRun) evalSlot(i int, prevOpen map[string]*lang.Term, dctx *deltaCtx) windowEval {
	ws, we := st.tl.windowStart(i), st.tl.q(i)
	winEvents := st.reorder.Buffered().Window(ws, we)
	return st.eng.evalWindow(winEvents, ws, we, st.tl.nextWindowStart(i), prevOpen, st.warnSink(), st.span, dctx)
}

// slotDeltaCtx builds the delta context for evaluating window i on the
// emission path: capture the outgoing state for window i+1, and replay the
// carried state when it describes exactly window i-1.
func (st *streamRun) slotDeltaCtx(i int) *deltaCtx {
	if !st.deltaOn {
		return nil
	}
	dctx := &deltaCtx{capture: true}
	if i > 0 && st.delta != nil && st.delta.ws == st.tl.windowStart(i-1) && st.delta.we == st.tl.q(i-1) {
		dctx.prev = st.delta
		dctx.base = intervals.List{{Start: st.delta.we, End: st.tl.q(i)}}
	}
	return dctx
}

// emitNext evaluates and delivers the next unemitted window (revision 0).
func (st *streamRun) emitNext() error {
	i := st.emitted
	t0 := time.Now() //rtecvet:allow telemetry timer: real end-to-end window latency
	dctx := st.slotDeltaCtx(i)
	ev := st.evalSlot(i, st.prevOpenInto(i), dctx)
	if dctx != nil {
		st.delta = dctx.next
	}
	st.slots[i] = windowSlot{emitted: true, eval: ev}
	st.emitted++
	st.sinceCkpt++
	if err := st.deliver(i, nil); err != nil {
		return err
	}
	return st.observeDelivery(i, nil, nil, time.Since(t0))
}

// revise re-evaluates the emitted windows a late event at time t
// invalidates: every emitted window containing t (a contiguous run, since
// window starts and query times are both non-decreasing), then downstream
// emitted windows for as long as the inertia carry-over keeps changing.
// Windows whose recognition actually changed are re-delivered with an
// incremented revision and the retraction diff.
func (st *streamRun) revise(t int64) error {
	tel := st.eng.opts.Telemetry
	first := -1
	for i := 0; i < st.emitted; i++ {
		if st.tl.q(i) <= t {
			continue // window ends at or before t; scan on
		}
		if st.tl.windowStart(i) > t {
			break // windows from here on start after t: none contain it
		}
		first = i
		break
	}
	if first < 0 {
		return nil // t only falls in unemitted windows; emission will see it
	}
	carryChanged := false
	for i := first; i < st.emitted; i++ {
		direct := st.tl.windowStart(i) <= t && t < st.tl.q(i)
		if !direct && !carryChanged {
			break
		}
		prev := st.slots[i].eval
		t0 := time.Now() //rtecvet:allow telemetry timer: real end-to-end window latency
		// Revisions re-evaluate from scratch (no replayable prior state for
		// the revised event set), but the last emitted window recaptures so
		// the carried state feeding window emitted matches its latest
		// evaluation.
		var dctx *deltaCtx
		if st.deltaOn && i == st.emitted-1 {
			dctx = &deltaCtx{capture: true}
		}
		ev := st.evalSlot(i, st.prevOpenInto(i), dctx)
		if dctx != nil {
			st.delta = dctx.next
		}
		carryChanged = !ev.sameOpen(prev)
		if ev.sameRecognised(prev) {
			st.slots[i].eval = ev // keep the carry-over current even when the output is unchanged
			continue
		}
		retracted := ev.retractionsAgainst(prev)
		st.slots[i].eval = ev
		st.slots[i].revision++
		st.stats.Revisions++
		tel.Counter("rtec.revisions").Inc()
		if err := st.deliver(i, retracted); err != nil {
			return err
		}
		if err := st.observeDelivery(i, &prev, retracted, time.Since(t0)); err != nil {
			return err
		}
	}
	return nil
}

// deliver invokes fn with the latest evaluation of window i.
func (st *streamRun) deliver(i int, retracted map[string]intervals.List) error {
	if st.fn == nil {
		return nil
	}
	ws, we := st.tl.windowStart(i), st.tl.q(i)
	if we <= ws {
		return nil // degenerate empty window: nothing to report
	}
	return st.fn(WindowResult{
		WindowStart: ws, QueryTime: we,
		Recognised: st.slots[i].eval.recognised,
		FVPs:       st.slots[i].eval.fvps,
		Revision:   st.slots[i].revision,
		Retracted:  retracted,
	})
}

// horizon returns the time-point below which nothing can change any more:
// the start of the earliest window that is still revisable (its query time
// is ahead of the watermark) or still unemitted, capped at the watermark.
// Events before the horizon can be forgotten: arrivals older than the
// watermark are rejected as too late first, so forgetting them never
// changes an admission or deduplication decision.
func (st *streamRun) horizon() (int64, bool) {
	w, ok := st.reorder.Watermark()
	if !ok {
		return 0, false
	}
	h := st.tl.end
	for i := range st.slots {
		if i >= st.emitted || st.tl.q(i) > w {
			h = st.tl.windowStart(i)
			break
		}
	}
	if h > w {
		h = w
	}
	return h, true
}

// prune forgets admitted events below the horizon.
func (st *streamRun) prune() {
	if h, ok := st.horizon(); ok {
		st.reorder.Drop(h)
	}
}

// warnSink returns the destination for runtime warnings, deduplicated
// across (re-)evaluations so revisions do not repeat them.
func (st *streamRun) warnSink() *[]Warning { return &st.warnings }

// finalise amalgamates the latest evaluation of every window into the
// final Recognition — identical to what the in-order run produces, because
// after the last revision every window has been evaluated over exactly the
// admitted events of its range with a consistent inertia chain.
func (st *streamRun) finalise() *StreamResult {
	rec := &Recognition{
		Start: st.tl.start, End: st.tl.end,
		byKey: map[string]intervals.List{},
		fvps:  map[string]*lang.Term{},
	}
	for _, slot := range st.slots {
		for key, clipped := range slot.eval.recognised {
			rec.byKey[key] = intervals.Union(rec.byKey[key], clipped)
			if _, ok := rec.fvps[key]; !ok {
				rec.fvps[key] = slot.eval.fvps[key]
			}
		}
	}
	for _, w := range st.warnings {
		key := w.Fluent + "|" + w.Msg
		if st.warnSeen[key] {
			continue
		}
		st.warnSeen[key] = true
		rec.Warnings = append(rec.Warnings, w)
	}
	rs := st.reorder.Stats()
	st.stats.Observed = rs.Observed
	st.stats.Accepted = rs.Accepted
	st.stats.Late = rs.Late
	st.stats.Duplicates = rs.Duplicates
	st.stats.Dropped = rs.Dropped
	return &StreamResult{Recognition: rec, Stats: st.stats}
}
