package rtec

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"rtecgen/internal/maritime"
	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
	"rtecgen/internal/telemetry/journal"
)

// deltaOracle builds a pair of engines over the same event description: one
// with delta evaluation on (the default) and one with the full re-evaluation
// oracle, differing in nothing else.
func deltaOracle(t *testing.T, src string, workers int) (*Engine, *Engine) {
	t.Helper()
	delta := mustEngine(t, src, Options{Strict: true, Workers: workers})
	full := mustEngine(t, src, Options{Strict: true, Workers: workers, DisableDelta: true})
	return delta, full
}

// TestDeltaEligibilityAnalysis pins the static analysis: the test EDs'
// time-local simple fluents replay, a rule conditioned at a fixed time-point
// (not the anchor variable) disqualifies its fluent, and SD fluents never
// carry acts.
func TestDeltaEligibilityAnalysis(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	for ind, def := range e.fluents {
		if !def.deltaEligible {
			t.Fatalf("%s not delta-eligible: every withinAreaED rule is time-local", ind)
		}
	}

	h := mustEngine(t, hierarchyED, Options{Strict: true})
	for ind, def := range h.fluents {
		want := def.kind == Simple
		if def.deltaEligible != want {
			t.Fatalf("%s eligibility = %v, want %v (kind %v)", ind, def.deltaEligible, want, def.kind)
		}
	}

	nonLocal := `
inputEvent(a_start(_)).
inputEvent(a_end(_)).

initiatedAt(g(X)=true, T) :- happensAt(a_start(X), T).
terminatedAt(g(X)=true, T) :- happensAt(a_end(X), T).

initiatedAt(f(X)=true, T) :-
    happensAt(a_start(X), T),
    holdsAt(g(X)=true, 5).
terminatedAt(f(X)=true, T) :- happensAt(a_end(X), T).
`
	n := mustEngine(t, nonLocal, Options{Strict: true})
	if !n.fluents["g/1"].deltaEligible {
		t.Fatal("g/1 should be eligible")
	}
	if n.fluents["f/1"].deltaEligible {
		t.Fatal("f/1 conditioned at a fixed time-point must not be eligible")
	}
}

// TestDeltaBatchEquivalence: for random streams, window geometries and
// worker counts, delta evaluation is byte-identical — CSV rows and warning
// order included — to full re-evaluation.
func TestDeltaBatchEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		gen  func(*rand.Rand, int64) stream.Stream
	}{
		{"withinArea", withinAreaED, genRandomStream},
		{"hierarchy", hierarchyED, genHierarchyStream},
		{"crossShard", crossShardED, genCrossShardStream},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64, parallel bool) bool {
				workers := 1
				if parallel {
					workers = 8
				}
				delta, full := deltaOracle(t, tc.src, workers)
				r := rand.New(rand.NewSource(seed))
				events := tc.gen(r, 500)
				window := int64(20 + r.Intn(300))
				slide := int64(1 + r.Intn(int(window)))
				opts := RunOptions{Window: window, Slide: slide}
				a, err1 := delta.Run(events, opts)
				b, err2 := full.Run(events, opts)
				if err1 != nil || err2 != nil {
					t.Logf("seed %d: errors %v / %v", seed, err1, err2)
					return false
				}
				fa, fb := recognitionFingerprint(t, a), recognitionFingerprint(t, b)
				if fa != fb {
					t.Logf("seed %d window %d slide %d workers %d:\n--- delta\n%s\n--- full\n%s",
						seed, window, slide, workers, fa, fb)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// genHierarchyStream derives a random stream over hierarchyED's inputs.
func genHierarchyStream(r *rand.Rand, horizon int64) stream.Stream {
	var events stream.Stream
	for i := 0; i < 5+r.Intn(40); i++ {
		t := int64(r.Intn(int(horizon)))
		x := []string{"x", "y", "z"}[r.Intn(3)]
		ev := []string{"a_start", "a_end", "b_start", "b_end"}[r.Intn(4)]
		events = append(events, stream.Event{
			Time: t, Atom: parser.MustParseTerm(ev + "(" + x + ")"),
		})
	}
	return events
}

// TestDeltaMaritimeByteIdentical drives the realistic workload: sliding
// windows over the gold maritime event description, delta vs full, at
// several overlap ratios and worker counts.
func TestDeltaMaritimeByteIdentical(t *testing.T) {
	scen, err := maritime.BuildScenario(maritime.ScenarioConfig{Vessels: 6, Seed: 7, IntervalSec: 60})
	if err != nil {
		t.Fatal(err)
	}
	events := maritime.Preprocess(scen.Messages, scen.Map, maritime.DefaultPreprocessConfig())
	ed := maritime.FullED(maritime.GoldED(), scen.Map, scen.Fleet, maritime.ObservedPairs(events))
	facts := maritime.DynamicFacts(events, scen.Fleet)
	for _, workers := range []int{1, 8} {
		delta, err := New(ed, Options{Strict: true, ExtraFacts: facts, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		full, err := New(ed, Options{Strict: true, ExtraFacts: facts, Workers: workers, DisableDelta: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, slideDiv := range []int64{2, 4} {
			opts := RunOptions{Window: 3600, Slide: 3600 / slideDiv}
			a, err1 := delta.Run(events, opts)
			b, err2 := full.Run(events, opts)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if fa, fb := recognitionFingerprint(t, a), recognitionFingerprint(t, b); fa != fb {
				t.Fatalf("workers=%d slide=%d: delta output differs from full", workers, opts.Slide)
			}
		}
	}
}

// TestDeltaReuseCounters: a slide-heavy run must actually replay — the
// rtec.delta.reused counter is nonzero, the reuse ratio gauge is set, and
// the oracle mode records nothing.
func TestDeltaReuseCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := mustEngine(t, withinAreaED, Options{Strict: true, Telemetry: telemetry.New(reg, nil, nil)})
	r := rand.New(rand.NewSource(3))
	events := genRandomStream(r, 800)
	if _, err := e.Run(events, RunOptions{Window: 200, Slide: 50}); err != nil {
		t.Fatal(err)
	}
	if reused := reg.Counter("rtec.delta.reused").Value(); reused == 0 {
		t.Fatal("rtec.delta.reused = 0: the delta layer never replayed")
	}
	if dirty := reg.Counter("rtec.delta.dirty").Value(); dirty == 0 {
		t.Fatal("rtec.delta.dirty = 0: the slide-admitted tail was never recomputed")
	}
	if ratio := reg.Gauge("rtec.delta.reuse_ratio").Value(); ratio <= 0 || ratio > 100 {
		t.Fatalf("rtec.delta.reuse_ratio = %d, want within (0, 100]", ratio)
	}

	oreg := telemetry.NewRegistry()
	oracle := mustEngine(t, withinAreaED, Options{Strict: true, DisableDelta: true, Telemetry: telemetry.New(oreg, nil, nil)})
	if _, err := oracle.Run(events, RunOptions{Window: 200, Slide: 50}); err != nil {
		t.Fatal(err)
	}
	if v := oreg.Counter("rtec.delta.reused").Value() + oreg.Counter("rtec.delta.dirty").Value(); v != 0 {
		t.Fatalf("oracle mode recorded %d delta units, want 0", v)
	}
}

// TestDeltaStreamByteIdentity: under seeded disorder, revisions and
// checkpointing, the delta path reproduces the oracle's CSV, journal bytes,
// statistics and checkpoint envelope bytes — the whole externally visible
// surface.
func TestDeltaStreamByteIdentity(t *testing.T) {
	for _, seed := range []int64{3, 19} {
		arrivals := chaosArrivals(t, seed, 60)
		mk := func(j *journal.Writer, ckpt string) StreamOptions {
			return StreamOptions{
				RunOptions:      RunOptions{Window: 120, Slide: 30},
				MaxDelay:        60,
				Journal:         j,
				CheckpointPath:  ckpt,
				CheckpointEvery: 2,
			}
		}
		delta, full := deltaOracle(t, withinAreaED, 4)

		var dJ, fJ bytes.Buffer
		dCkpt := filepath.Join(t.TempDir(), "delta.ckpt")
		fCkpt := filepath.Join(t.TempDir(), "full.ckpt")
		dRes, err := delta.RunStream(arrivals, mk(journal.NewWriter(&dJ, journal.Options{}), dCkpt), nil)
		if err != nil {
			t.Fatal(err)
		}
		fRes, err := full.RunStream(arrivals, mk(journal.NewWriter(&fJ, journal.Options{}), fCkpt), nil)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := recognitionFingerprint(t, dRes.Recognition), recognitionFingerprint(t, fRes.Recognition); a != b {
			t.Fatalf("seed %d: delta stream output differs from full", seed)
		}
		if dRes.Stats != fRes.Stats {
			t.Fatalf("seed %d: stats differ: %s vs %s", seed, dRes.Stats, fRes.Stats)
		}
		if !bytes.Equal(dJ.Bytes(), fJ.Bytes()) {
			t.Fatalf("seed %d: journal bytes differ:\n%s\nvs\n%s", seed, dJ.String(), fJ.String())
		}
		dBytes, err := os.ReadFile(dCkpt)
		if err != nil {
			t.Fatal(err)
		}
		fBytes, err := os.ReadFile(fCkpt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dBytes, fBytes) {
			t.Fatalf("seed %d: checkpoint envelope bytes differ between delta and full", seed)
		}
	}
}

// TestDeltaSidecarWarmResume: a run killed mid-stream resumes warm from the
// delta sidecar — the restore counter fires, the resumed stretch still
// replays, and the final output is byte-identical to the uninterrupted run.
func TestDeltaSidecarWarmResume(t *testing.T) {
	arrivals := chaosArrivals(t, 11, 60)
	base := StreamOptions{
		RunOptions:      RunOptions{Window: 120, Slide: 30},
		MaxDelay:        60,
		CheckpointEvery: 1,
	}

	want, err := mustEngine(t, withinAreaED, Options{Strict: true}).RunStream(arrivals, base, nil)
	if err != nil {
		t.Fatal(err)
	}

	run := func(corruptSidecar bool) (string, *telemetry.Registry) {
		reg := telemetry.NewRegistry()
		e := mustEngine(t, withinAreaED, Options{Strict: true, Telemetry: telemetry.New(reg, nil, nil)})
		opts := base
		opts.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
		half := len(arrivals) / 2
		fail := 0
		opts.Interrupt = func() bool { fail++; return fail == half }
		if _, err := e.RunStream(arrivals, opts, nil); err != ErrSuspended {
			t.Fatalf("interrupted run err = %v, want ErrSuspended", err)
		}
		if corruptSidecar {
			if err := os.WriteFile(opts.CheckpointPath+deltaSidecarSuffix, []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		opts.Interrupt = nil
		reused0 := reg.Counter("rtec.delta.reused").Value()
		res, err := e.ResumeStream(opts.CheckpointPath, arrivals, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if reg.Counter("rtec.delta.reused").Value() <= reused0 {
			t.Fatal("resumed stretch never replayed")
		}
		return recognitionFingerprint(t, res.Recognition), reg
	}

	warm, wreg := run(false)
	if warm != recognitionFingerprint(t, want.Recognition) {
		t.Fatal("warm resume differs from uninterrupted run")
	}
	if v := wreg.Counter("rtec.delta.sidecar_restores").Value(); v != 1 {
		t.Fatalf("sidecar restores = %d, want 1", v)
	}

	cold, creg := run(true)
	if cold != recognitionFingerprint(t, want.Recognition) {
		t.Fatal("cold resume (corrupt sidecar) differs from uninterrupted run")
	}
	if v := creg.Counter("rtec.delta.sidecar_restores").Value(); v != 0 {
		t.Fatalf("corrupt sidecar restored anyway (%d restores)", v)
	}
}

// FuzzDeltaEquivalence is the differential fuzz target of the delta layer:
// random streams over the cross-shard hierarchy, random window geometry,
// worker count and seeded disorder, requiring the delta path's stream
// output and journal bytes to match full re-evaluation exactly.
func FuzzDeltaEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 987654321} {
		f.Add(seed)
	}
	ed, err := parser.ParseEventDescription(crossShardED)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		workers := []int{1, 4, 8}[r.Intn(3)]
		delta, err1 := New(ed, Options{Strict: true, Workers: workers})
		full, err2 := New(ed, Options{Strict: true, Workers: workers, DisableDelta: true})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		events := genCrossShardStream(r, 600)
		events.Sort()
		window := int64(20 + r.Intn(300))
		slide := int64(1 + r.Intn(int(window)))
		maxDelay := int64(r.Intn(100))
		arrivals := boundedShuffle(r, events, maxDelay)
		opts := StreamOptions{
			RunOptions: RunOptions{Window: window, Slide: slide},
			MaxDelay:   maxDelay,
		}
		var dJ, fJ bytes.Buffer
		dOpts, fOpts := opts, opts
		dOpts.Journal = journal.NewWriter(&dJ, journal.Options{})
		fOpts.Journal = journal.NewWriter(&fJ, journal.Options{})
		a, err1 := delta.RunStream(arrivals, dOpts, nil)
		b, err2 := full.RunStream(arrivals, fOpts, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: delta %v, full %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if fa, fb := recognitionFingerprint(t, a.Recognition), recognitionFingerprint(t, b.Recognition); fa != fb {
			t.Fatalf("seed %d window %d slide %d workers %d delay %d: delta differs:\n--- delta\n%s\n--- full\n%s",
				seed, window, slide, workers, maxDelay, fa, fb)
		}
		if !bytes.Equal(dJ.Bytes(), fJ.Bytes()) {
			t.Fatalf("seed %d: journal bytes differ", seed)
		}
	})
}
