package rtec

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"rtecgen/internal/intervals"
	"rtecgen/internal/maritime"
	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

// TestConcurrentRuns verifies the documented guarantee that an Engine is
// immutable after New and safe for concurrent Run calls (run the package
// with -race to exercise the detector).
func TestConcurrentRuns(t *testing.T) {
	ed, err := parser.ParseEventDescription(withinAreaED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(40, "leavesArea(v1, a1)"),
		ev(60, "entersArea(v1, a2)"),
		ev(90, "gap_start(v1)"),
		ev(120, "entersArea(v2, a1)"),
		ev(150, "leavesArea(v2, a1)"),
	}

	var wg sync.WaitGroup
	results := make([]string, 8)
	errs := make([]error, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, err := e.Run(events, RunOptions{Window: 30})
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = rec.IntervalsOfKey("withinArea(v1, fishing)=true").String()
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("concurrent runs diverged: %q vs %q", results[0], results[i])
		}
	}
}

// maritimeEngines builds the gold maritime event description over a shared
// scenario and returns one engine per requested worker count, plus the
// preprocessed stream.
func maritimeEngines(t *testing.T, vessels int, workers ...int) ([]*Engine, stream.Stream) {
	t.Helper()
	scen, err := maritime.BuildScenario(maritime.ScenarioConfig{Vessels: vessels, Seed: 7, IntervalSec: 60})
	if err != nil {
		t.Fatal(err)
	}
	events := maritime.Preprocess(scen.Messages, scen.Map, maritime.DefaultPreprocessConfig())
	ed := maritime.FullED(maritime.GoldED(), scen.Map, scen.Fleet, maritime.ObservedPairs(events))
	facts := maritime.DynamicFacts(events, scen.Fleet)
	engines := make([]*Engine, 0, len(workers))
	for _, w := range workers {
		e, err := New(ed, Options{Strict: true, ExtraFacts: facts, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, e)
	}
	return engines, events
}

// recognitionFingerprint renders everything externally visible about a run:
// the CSV rows and the ordered warning list.
func recognitionFingerprint(t *testing.T, rec *Recognition) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(csvOf(t, rec))
	for _, w := range rec.Warnings {
		fmt.Fprintf(&sb, "warn %s: %s\n", w.Fluent, w.Msg)
	}
	return sb.String()
}

// TestWorkersRecognitionByteIdenticalMaritime is the tentpole determinism
// guarantee on the realistic workload: windowed recognition over the gold
// maritime event description with Workers=8 is byte-identical — CSV rows
// and warning order included — to the sequential Workers=1 path.
func TestWorkersRecognitionByteIdenticalMaritime(t *testing.T) {
	engines, events := maritimeEngines(t, 8, 1, 8)
	if got := engines[1].Workers(); got != 8 {
		t.Fatalf("Workers() = %d, want 8", got)
	}
	outs := make([]string, len(engines))
	for i, e := range engines {
		rec, err := e.Run(events, RunOptions{Window: 3600})
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = recognitionFingerprint(t, rec)
	}
	if strings.Count(outs[0], "\n") < 10 {
		t.Fatalf("maritime run recognised suspiciously little:\n%s", outs[0])
	}
	if outs[0] != outs[1] {
		t.Fatalf("Workers=8 output differs from Workers=1:\n--- workers=1\n%s\n--- workers=8\n%s", outs[0], outs[1])
	}
}

// TestWorkersByteIdenticalRandomStreams sweeps random streams and window
// sizes over the multi-stratum hierarchy: the parallel path must agree with
// the sequential one on every seed, including the rules that never fire.
func TestWorkersByteIdenticalRandomStreams(t *testing.T) {
	for _, src := range []struct{ name, ed string }{
		{"withinArea", withinAreaED},
		{"hierarchy", hierarchyED},
	} {
		t.Run(src.name, func(t *testing.T) {
			seq := mustEngine(t, src.ed, Options{Strict: true, Workers: 1})
			par := mustEngine(t, src.ed, Options{Strict: true, Workers: 8})
			for seed := int64(0); seed < 25; seed++ {
				r := rand.New(rand.NewSource(seed))
				var events stream.Stream
				if src.name == "withinArea" {
					events = genRandomStream(r, 600)
				} else {
					for i := 0; i < 30+r.Intn(40); i++ {
						x := []string{"x", "y", "z", "w", "u"}[r.Intn(5)]
						ev := []string{"a_start", "a_end", "b_start", "b_end"}[r.Intn(4)]
						events = append(events, stream.Event{
							Time: int64(r.Intn(400)), Atom: parser.MustParseTerm(fmt.Sprintf("%s(%s)", ev, x)),
						})
					}
				}
				window := int64(20 + r.Intn(200))
				a, err := seq.Run(events, RunOptions{Window: window})
				if err != nil {
					t.Fatal(err)
				}
				b, err := par.Run(events, RunOptions{Window: window})
				if err != nil {
					t.Fatal(err)
				}
				if fa, fb := recognitionFingerprint(t, a), recognitionFingerprint(t, b); fa != fb {
					t.Fatalf("seed %d window %d: parallel output differs:\n--- workers=1\n%s\n--- workers=8\n%s",
						seed, window, fa, fb)
				}
			}
		})
	}
}

// TestWorkersCheckpointBytesIdentical: the crash-safe snapshot a parallel
// run writes is byte-for-byte the file a sequential run writes — resuming
// from either is indistinguishable.
func TestWorkersCheckpointBytesIdentical(t *testing.T) {
	arrivals := chaosArrivals(t, 13, 60)
	files := make([][]byte, 2)
	for i, w := range []int{1, 8} {
		e := mustEngine(t, withinAreaED, Options{Strict: true, Workers: w})
		opts := StreamOptions{
			RunOptions:      RunOptions{Window: 100},
			MaxDelay:        60,
			CheckpointPath:  filepath.Join(t.TempDir(), "run.ckpt"),
			CheckpointEvery: 1,
		}
		if _, err := e.RunStream(arrivals, opts, nil); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(opts.CheckpointPath)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = data
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatalf("checkpoint bytes differ between Workers=1 and Workers=8:\n%s\nvs\n%s", files[0], files[1])
	}
}

// streamDeliveryLog renders every window delivery of a streaming run — the
// revision counters, the recognised intervals, the retraction diffs — plus
// the final disorder statistics and recognition CSV.
func streamDeliveryLog(t *testing.T, e *Engine, arrivals stream.Stream, opts StreamOptions) string {
	t.Helper()
	var sb strings.Builder
	renderLists := func(prefix string, m map[string]intervals.List) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "  %s%s %s\n", prefix, k, m[k])
		}
	}
	res, err := e.RunStream(arrivals, opts, func(wr WindowResult) error {
		fmt.Fprintf(&sb, "window [%d,%d) rev=%d\n", wr.WindowStart, wr.QueryTime, wr.Revision)
		renderLists("", wr.Recognised)
		renderLists("retract ", wr.Retracted)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "stats %s\n", res.Stats)
	sb.WriteString(csvOf(t, res.Recognition))
	return sb.String()
}

// TestWorkersStreamRevisionsIdenticalMaritime: under a seeded disorder
// shuffle (the same bounded-delay perturbation cmd/disorder applies) of the
// maritime stream, every window delivery — revision numbers, recognised
// intervals, and retraction diffs — is byte-identical between Workers=1 and
// Workers=8.
func TestWorkersStreamRevisionsIdenticalMaritime(t *testing.T) {
	engines, events := maritimeEngines(t, 2, 1, 8)
	// A prefix of the voyage keeps the test fast while still spanning several
	// windows' worth of revisable deliveries.
	cut := 0
	for cut < len(events) && events[cut].Time < 9000 {
		cut++
	}
	events = events[:cut]
	arrivals := boundedShuffle(rand.New(rand.NewSource(99)), events, 120)
	opts := StreamOptions{RunOptions: RunOptions{Window: 3600}, MaxDelay: 120}
	logs := make([]string, len(engines))
	for i, e := range engines {
		logs[i] = streamDeliveryLog(t, e, arrivals, opts)
	}
	if !strings.Contains(logs[0], "rev=1") {
		t.Fatal("shuffle produced no revisions; the test is not exercising re-deliveries")
	}
	if logs[0] != logs[1] {
		t.Fatalf("stream deliveries differ between Workers=1 and Workers=8:\n--- workers=1\n%s\n--- workers=8\n%s",
			logs[0], logs[1])
	}
}
