package rtec

import (
	"sync"
	"testing"

	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

// TestConcurrentRuns verifies the documented guarantee that an Engine is
// immutable after New and safe for concurrent Run calls (run the package
// with -race to exercise the detector).
func TestConcurrentRuns(t *testing.T) {
	ed, err := parser.ParseEventDescription(withinAreaED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(40, "leavesArea(v1, a1)"),
		ev(60, "entersArea(v1, a2)"),
		ev(90, "gap_start(v1)"),
		ev(120, "entersArea(v2, a1)"),
		ev(150, "leavesArea(v2, a1)"),
	}

	var wg sync.WaitGroup
	results := make([]string, 8)
	errs := make([]error, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, err := e.Run(events, RunOptions{Window: 30})
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = rec.IntervalsOfKey("withinArea(v1, fishing)=true").String()
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("concurrent runs diverged: %q vs %q", results[0], results[i])
		}
	}
}
