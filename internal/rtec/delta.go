package rtec

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"rtecgen/internal/intervals"
	"rtecgen/internal/lang"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
)

// This file implements incremental sliding-window evaluation: the delta
// layer. Adjacent windows share most of their events (window=3600/slide=900
// re-derives ~75% of each window's intervals from scratch), so each window
// evaluation captures a carry-over state — per simple-fluent rule, the acts
// (FVP occurrences and runtime warnings) every anchor event produced, keyed
// by anchor time, plus every fluent's unclipped interval lists — and the
// next slide replays the cached acts for anchor times that cannot have
// changed, re-deriving only the dirty ones.
//
// A time-point t of the new window [ws', q') is dirty for a fluent when
//   - t lies in the slide-admitted tail [q, q') the previous window never
//     saw, or
//   - a body dependency's intervals changed at t (the per-fluent changed
//     regions, diffed against the carried lists after each stratum, propagate
//     dirtiness down the stratified hierarchy), or
//   - the previous evaluation carries no usable state (first window, cold
//     resume, geometry mismatch): then everything is dirty.
//
// Correctness rests on a static eligibility analysis (deltaEligible in
// engine.go): a simple fluent's acts may be replayed only when every body
// condition of every rule is evaluated at the anchor time itself, so an
// anchor event's derivation depends only on the events at its time-point and
// the dependency intervals' membership at that time-point — both clean by
// construction at a clean t. Statically determined fluents are always fully
// recomputed (their cost is interval algebra over already-computed lists,
// not event-driven search), but their changed regions still propagate.
// Because the replayed acts are exactly the acts the sequential evaluation
// would produce, in the same order (events are time-sorted and a time-point
// is either entirely clean or entirely dirty), recognition output, warning
// order, journals and checkpoints are byte-identical to full re-evaluation —
// Options.DisableDelta retains the from-scratch path as the differential
// oracle.

// listEntry is one carried fluent-value pair: the FVP term and its unclipped
// maximal intervals as the window evaluation computed them.
type listEntry struct {
	fvp  *lang.Term
	list intervals.List
}

// fluentDelta is the carried state of one fluent after a window evaluation.
type fluentDelta struct {
	// acts holds, per rule slot (initiatedAt rules first, then terminatedAt
	// rules, in definition order), the acts each anchor time produced. Nil
	// for SD fluents and delta-ineligible simple fluents.
	acts []map[int64][]act
	// lists holds the fluent's unclipped interval lists keyed by interned
	// FVP, for diffing against the next window's output.
	lists map[lang.InternID]listEntry
}

// deltaState is the carry-over of one evaluated window, consumed by the next
// slide. It is a pure cache: losing it costs one full re-evaluation, never
// correctness.
type deltaState struct {
	ws, we  int64 // the window this state describes
	fluents map[string]*fluentDelta
}

// deltaCtx threads the delta layer through one window evaluation.
type deltaCtx struct {
	prev    *deltaState    // carried state of the previous window; nil → full evaluation
	capture bool           // build the carry-over for the next slide
	base    intervals.List // region dirty regardless of dependencies (the slide-admitted tail)
	next    *deltaState    // the captured state, populated during evaluation

	// Unit counters for the rtec.delta.* instruments: anchor events whose
	// cached acts were replayed, anchor events re-derived, and cached anchor
	// times dropped at the expired left edge.
	reused, dirty, expired int64
}

// attach wires the context into a window state before evaluate().
func (d *deltaCtx) attach(w *windowState) {
	w.delta = d
	w.changed = map[string]intervals.List{}
	if d.capture {
		d.next = &deltaState{ws: w.ws, we: w.we, fluents: map[string]*fluentDelta{}}
	}
}

// flush records the window's delta counters and the reuse-ratio gauge.
func (d *deltaCtx) flush(tel *telemetry.Telemetry) {
	tel.Counter("rtec.delta.reused").Add(d.reused)
	tel.Counter("rtec.delta.dirty").Add(d.dirty)
	tel.Counter("rtec.delta.expired").Add(d.expired)
	if total := d.reused + d.dirty; total > 0 {
		tel.Gauge("rtec.delta.reuse_ratio").Set(d.reused * 100 / total)
	}
}

// beginFluentDelta prepares the per-fluent delta state before a fluent is
// evaluated: the capture target, and — when the carried state covers this
// fluent — the dirty region that decides which anchor times replay.
func (w *windowState) beginFluentDelta(def *fluentDef) {
	w.curReuse, w.curDirty, w.curPrev, w.curNext = false, nil, nil, nil
	d := w.delta
	if d == nil {
		return
	}
	if d.capture {
		w.curNext = &fluentDelta{lists: map[lang.InternID]listEntry{}}
		if def.kind == Simple && def.deltaEligible {
			w.curNext.acts = make([]map[int64][]act, len(def.inits)+len(def.terms))
			for i := range w.curNext.acts {
				w.curNext.acts[i] = map[int64][]act{}
			}
		}
		d.next.fluents[def.ind] = w.curNext
	}
	if d.prev == nil {
		return
	}
	prev := d.prev.fluents[def.ind]
	if prev == nil {
		return
	}
	w.curPrev = prev
	if def.kind == Simple && def.deltaEligible && len(prev.acts) == len(def.inits)+len(def.terms) {
		dirty := d.base
		for _, dep := range def.sortedDeps {
			if ch := w.changed[dep]; len(ch) > 0 {
				dirty = intervals.Union(dirty, ch)
			}
		}
		w.curDirty = dirty
		w.curReuse = true
	}
}

// endFluentDelta captures the fluent's freshly computed lists and diffs them
// against the carried ones: the symmetric difference, clipped to the window,
// is the changed region that dirties dependent fluents higher up the
// hierarchy. The diff-driven propagation is what makes inter-fluent reuse
// airtight: any divergence in a dependency's output — whatever caused it —
// forces dependents to re-derive exactly where it happened.
func (w *windowState) endFluentDelta(def *fluentDef) {
	d := w.delta
	if d == nil {
		return
	}
	if !d.capture && w.curPrev == nil {
		return
	}
	cur := w.curNext
	if cur == nil {
		cur = &fluentDelta{lists: map[lang.InternID]listEntry{}}
	}
	for _, ent := range w.byFluent[def.pred] {
		cur.lists[ent.id] = listEntry{fvp: ent.fvp, list: ent.list}
	}
	if w.curPrev == nil {
		return
	}
	var ch intervals.List
	for id, ce := range cur.lists {
		pe, ok := w.curPrev.lists[id]
		if !ok || !pe.list.Equal(ce.list) {
			ch = intervals.Union(ch, symDiff(pe.list, ce.list))
		}
	}
	for id, pe := range w.curPrev.lists {
		if _, ok := cur.lists[id]; !ok {
			ch = intervals.Union(ch, pe.list)
		}
	}
	if ch = intervals.Clip(ch, w.ws, w.we); len(ch) > 0 {
		w.changed[def.ind] = ch
	}
}

// symDiff returns the region where exactly one of the two lists holds.
func symDiff(a, b intervals.List) intervals.List {
	return intervals.Union(intervals.RelativeComplement(a, b), intervals.RelativeComplement(b, a))
}

// replaySimpleRule is the incremental counterpart of the runUnits call in
// evalSimpleRule: anchor events at clean times replay the previous window's
// cached acts, anchor events at dirty times re-derive on the worker pool.
// Events are time-sorted and a time-point is either entirely clean or
// entirely dirty, so walking the events in order reproduces the exact act
// sequence of the sequential evaluation.
func (w *windowState) replaySimpleRule(events []stream.Event, prevActs map[int64][]act, rec map[int64][]act, unit func(int, *ruleEval), apply func(act)) {
	d := w.delta
	dirty := w.curDirty
	recompute := make([]int, 0, len(events))
	for i, ev := range events {
		if dirty.Contains(ev.Time) {
			recompute = append(recompute, i)
		}
	}
	var slots [][]act
	if len(recompute) > 0 {
		slots = w.runUnitsCollect(len(recompute),
			func(k int) uint64 { return eventEntity(events[recompute[k]]) },
			func(k int, re *ruleEval) { unit(recompute[k], re) })
	}
	k := 0
	for i := 0; i < len(events); {
		t := events[i].Time
		j := i
		for j < len(events) && events[j].Time == t {
			j++
		}
		if dirty.Contains(t) {
			for ; k < len(slots) && recompute[k] < j; k++ {
				for _, a := range slots[k] {
					if rec != nil {
						rec[t] = append(rec[t], a)
					}
					apply(a)
				}
			}
			d.dirty += int64(j - i)
		} else {
			acts := prevActs[t]
			if rec != nil && len(acts) > 0 {
				rec[t] = acts
			}
			for _, a := range acts {
				apply(a)
			}
			d.reused += int64(j - i)
		}
		i = j
	}
	for t := range prevActs {
		if t < w.ws {
			d.expired++
		}
	}
}

// timeLocalRule decides static delta eligibility for one simple-fluent rule:
// every temporal body condition (happensAt or holdsAt, positive or negated)
// must be evaluated at the rule's own anchor time variable, so the rule's
// derivation at an anchor event depends only on that time-point. Builtins
// and atemporal background conditions are pure and always safe; a holdsFor
// condition (invalid in a simple rule, warned at runtime) and any condition
// at a different or non-variable time-point disqualify the rule.
func timeLocalRule(c *lang.Clause) bool {
	anchorIdx := -1
	for i, l := range c.Body {
		if !l.Neg && l.Atom.Functor == "happensAt" && len(l.Atom.Args) == 2 {
			anchorIdx = i
			break
		}
	}
	if anchorIdx < 0 {
		return false
	}
	tv := c.Body[anchorIdx].Atom.Args[1]
	if tv.Kind != lang.Var {
		return false
	}
	for _, l := range c.Body {
		switch l.Atom.Functor {
		case "happensAt", "holdsAt":
			if len(l.Atom.Args) != 2 {
				return false
			}
			if ta := l.Atom.Args[1]; ta.Kind != lang.Var || ta.Functor != tv.Functor {
				return false
			}
		case "holdsFor":
			return false
		}
	}
	return true
}

// --- delta sidecar -----------------------------------------------------------
//
// Checkpoints serialise the carried delta state into a sidecar file next to
// the snapshot (<path>.delta) rather than into the snapshot envelope itself:
// the envelope stays format-stable and byte-identical whether delta
// evaluation is on or off — which is itself part of the byte-identity
// contract the CI delta gate verifies — while a resumed run warm-starts from
// the sidecar instead of paying one full re-evaluation. The sidecar is a
// pure cache generation: when it is missing, torn, or from a different
// moment than the snapshot that actually loaded (e.g. the snapshot fell back
// to the .prev generation), the resume silently starts cold. The Consumed
// stamp is what detects the mismatch: equal consumed counts imply an
// identical run state by determinism.

const (
	deltaMagic         = "rtec-delta"
	deltaVersion       = 1
	deltaSidecarSuffix = ".delta"
)

type deltaFile struct {
	Magic    string          `json:"magic"`
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

type deltaPayload struct {
	EDSum    string `json:"ed_sum"`
	Window   int64  `json:"window"`
	Slide    int64  `json:"slide"`
	Start    int64  `json:"start"`
	End      int64  `json:"end"`
	Consumed int    `json:"consumed"`
	WS       int64  `json:"ws"`
	WE       int64  `json:"we"`

	Fluents []ckptDeltaFluent `json:"fluents"`
}

type ckptDeltaFluent struct {
	Ind string `json:"ind"`
	// Rules is present (with one entry per rule slot) only for delta-eligible
	// simple fluents; eligibility is re-derived from the engine on load, the
	// EDSum check guarantees it matches.
	Rules []ckptDeltaRule `json:"rules,omitempty"`
	Lists []ckptFVP       `json:"lists,omitempty"`
}

type ckptDeltaRule struct {
	Times []ckptDeltaTime `json:"times,omitempty"`
}

type ckptDeltaTime struct {
	T    int64          `json:"t"`
	Acts []ckptDeltaAct `json:"acts"`
}

// ckptDeltaAct is one cached act: an FVP emission (F, V — the FVP may be
// non-ground, e.g. a wildcard termination pattern) or a runtime warning.
type ckptDeltaAct struct {
	F    string    `json:"f,omitempty"`
	V    string    `json:"v,omitempty"`
	Warn *ckptWarn `json:"w,omitempty"`
}

type ckptWarn struct {
	Fluent string `json:"f,omitempty"`
	Msg    string `json:"m"`
}

// deltaSidecarPayload serialises the carried state deterministically:
// fluents in engine (stratum) order, rule slots in definition order, anchor
// times ascending, acts in captured order, lists sorted by canonical key.
func (st *streamRun) deltaSidecarPayload() deltaPayload {
	e := st.eng
	p := deltaPayload{
		EDSum:  e.edFingerprint(),
		Window: st.tl.window, Slide: st.tl.slide,
		Start: st.tl.start, End: st.tl.end,
		Consumed: st.consumed,
		WS:       st.delta.ws, WE: st.delta.we,
	}
	in := e.interner
	for _, ind := range e.order {
		fd := st.delta.fluents[ind]
		if fd == nil {
			continue
		}
		cf := ckptDeltaFluent{Ind: ind}
		for _, byTime := range fd.acts {
			var cr ckptDeltaRule
			ts := make([]int64, 0, len(byTime))
			for t := range byTime {
				ts = append(ts, t)
			}
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			for _, t := range ts {
				ct := ckptDeltaTime{T: t}
				for _, a := range byTime[t] {
					if a.fvp == nil {
						ct.Acts = append(ct.Acts, ckptDeltaAct{Warn: &ckptWarn{Fluent: a.warn.Fluent, Msg: a.warn.Msg}})
					} else {
						ct.Acts = append(ct.Acts, ckptDeltaAct{F: a.fvp.Args[0].String(), V: a.fvp.Args[1].String()})
					}
				}
				cr.Times = append(cr.Times, ct)
			}
			cf.Rules = append(cf.Rules, cr)
		}
		if fd.acts != nil && cf.Rules == nil {
			cf.Rules = []ckptDeltaRule{} // eligible fluent with zero rules: keep the marker
		}
		ids := make([]lang.InternID, 0, len(fd.lists))
		for id := range fd.lists {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return in.StringOf(ids[i]) < in.StringOf(ids[j]) })
		for _, id := range ids {
			le := fd.lists[id]
			cf.Lists = append(cf.Lists, fvpToCkpt(le.fvp, le.list))
		}
		p.Fluents = append(p.Fluents, cf)
	}
	return p
}

// writeDeltaSidecar writes the carried delta state next to the checkpoint,
// atomically (temp + rename). It is called after the snapshot itself has
// been installed; a crash between the two leaves a sidecar whose Consumed
// stamp no longer matches the snapshot, which the loader rejects into a
// cold start. No-op when no state is carried yet.
func (st *streamRun) writeDeltaSidecar() error {
	if st.delta == nil {
		return nil
	}
	path := st.opts.CheckpointPath + deltaSidecarSuffix
	payload, err := json.Marshal(st.deltaSidecarPayload())
	if err != nil {
		return fmt.Errorf("rtec: delta sidecar: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload)
	data, err := json.Marshal(deltaFile{
		Magic:    deltaMagic,
		Version:  deltaVersion,
		Checksum: fmt.Sprintf("%016x", h.Sum64()),
		Payload:  payload,
	})
	if err != nil {
		return fmt.Errorf("rtec: delta sidecar: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".rtec-delta-*")
	if err != nil {
		return fmt.Errorf("rtec: delta sidecar: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("rtec: delta sidecar: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rtec: delta sidecar: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rtec: delta sidecar: %w", err)
	}
	return nil
}

// loadDeltaSidecar rehydrates the carried delta state for a resumed run, or
// reports a cold start (nil, false) when the sidecar is missing, fails any
// integrity check, or describes a different moment than the checkpoint that
// actually loaded. Every mismatch is safe: the first emission after a cold
// start is one full evaluation with capture.
func (st *streamRun) loadDeltaSidecar(cp *Checkpoint) (*deltaState, bool) {
	e := st.eng
	data, err := os.ReadFile(st.opts.CheckpointPath + deltaSidecarSuffix)
	if err != nil {
		return nil, false
	}
	var f deltaFile
	if err := json.Unmarshal(data, &f); err != nil || f.Magic != deltaMagic || f.Version != deltaVersion {
		return nil, false
	}
	h := fnv.New64a()
	h.Write(f.Payload)
	if fmt.Sprintf("%016x", h.Sum64()) != f.Checksum {
		return nil, false
	}
	var p deltaPayload
	if err := json.Unmarshal(f.Payload, &p); err != nil {
		return nil, false
	}
	if p.EDSum != e.edFingerprint() || p.Consumed != cp.Consumed ||
		p.Window != st.tl.window || p.Slide != st.tl.slide || p.Start != st.tl.start || p.End != st.tl.end {
		return nil, false
	}
	if cp.Windows == 0 || p.WS != st.tl.windowStart(cp.Windows-1) || p.WE != st.tl.q(cp.Windows-1) {
		return nil, false
	}
	ds := &deltaState{ws: p.WS, we: p.WE, fluents: map[string]*fluentDelta{}}
	in := e.interner
	for _, cf := range p.Fluents {
		def := e.fluents[cf.Ind]
		if def == nil {
			return nil, false
		}
		fd := &fluentDelta{lists: map[lang.InternID]listEntry{}}
		if def.kind == Simple && def.deltaEligible {
			if len(cf.Rules) != len(def.inits)+len(def.terms) {
				return nil, false
			}
			fd.acts = make([]map[int64][]act, len(cf.Rules))
			for ri, cr := range cf.Rules {
				byTime := map[int64][]act{}
				for _, ct := range cr.Times {
					acts := make([]act, 0, len(ct.Acts))
					for _, ca := range ct.Acts {
						if ca.Warn != nil {
							acts = append(acts, act{warn: Warning{Fluent: ca.Warn.Fluent, Msg: ca.Warn.Msg}, t: ct.T})
							continue
						}
						fvp, _, err := fvpFromCkpt(ckptFVP{Fluent: ca.F, Value: ca.V})
						if err != nil {
							return nil, false
						}
						acts = append(acts, act{fvp: fvp, t: ct.T})
					}
					byTime[ct.T] = acts
				}
				fd.acts[ri] = byTime
			}
		}
		for _, cl := range cf.Lists {
			fvp, list, err := fvpFromCkpt(cl)
			if err != nil {
				return nil, false
			}
			fd.lists[in.ID(fvp)] = listEntry{fvp: fvp, list: list}
		}
		ds.fluents[cf.Ind] = fd
	}
	return ds, true
}
