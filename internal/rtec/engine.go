// Package rtec implements the Run-Time Event Calculus: windowed recognition
// of composite activities over event streams, based on an event description
// with simple fluents (initiatedAt/terminatedAt rules, subject to the law of
// inertia) and statically determined fluents (holdsFor rules over the
// interval-manipulation constructs), organised in a hierarchy that is
// computed bottom-up and cached per window (Artikis et al., TKDE 2015).
package rtec

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"rtecgen/internal/kb"
	"rtecgen/internal/lang"
	"rtecgen/internal/telemetry"
)

// FluentKind distinguishes the two ways a composite activity may be defined.
type FluentKind int

const (
	// Simple fluents are defined by initiatedAt/terminatedAt rules and are
	// subject to the commonsense law of inertia.
	Simple FluentKind = iota
	// SD fluents are statically determined: defined by a holdsFor rule over
	// the maximal intervals of other fluents.
	SD
)

func (k FluentKind) String() string {
	if k == Simple {
		return "simple"
	}
	return "statically determined"
}

// Warning records a non-fatal problem found while loading or evaluating an
// event description: a rule that had to be skipped, an unknown predicate, a
// cyclic definition. LLM-generated event descriptions routinely trigger
// warnings; the engine keeps going with the usable subset, mirroring how a
// human would salvage a partially correct specification.
type Warning struct {
	Fluent string
	Msg    string
}

func (w Warning) String() string {
	if w.Fluent == "" {
		return w.Msg
	}
	return w.Fluent + ": " + w.Msg
}

// fluentDef aggregates everything the engine knows about one fluent
// (identified by its indicator, e.g. "withinArea/2").
type fluentDef struct {
	ind        string       // indicator string, e.g. "withinArea/2"
	pred       lang.PredKey // same predicate, as a comparable key (no string building)
	kind       FluentKind
	inits      []*lang.Clause // simple: initiatedAt rules
	terms      []*lang.Clause // simple: terminatedAt rules
	holdsFor   []*lang.Clause // sd: holdsFor rules (one per value)
	groundings []*lang.Clause // grounding declarations for this fluent
	deps       map[string]bool
	level      int
	// deltaEligible marks a simple fluent whose every rule is time-local
	// (see timeLocalRule in delta.go): its per-anchor-time acts may be
	// replayed across window slides.
	deltaEligible bool
	// sortedDeps is deps in deterministic order, for the dirty-region union.
	sortedDeps []string
}

// Engine is a loaded RTEC reasoner. Build one with New, then call Run.
// An Engine is immutable after New and safe for concurrent Runs.
type Engine struct {
	ed            *lang.EventDescription
	kb            *kb.KB
	opts          Options
	fluents       map[string]*fluentDef
	fluentsByPred map[lang.PredKey]*fluentDef
	order         []string // fluent indicators in dependency (stratum) order
	inputEvents   map[string]bool
	warnings      []Warning
	// interner maps ground FVP terms to stable IDs with cached canonical
	// renderings: the per-window caches key by ID, so an FVP's string is
	// built once per engine lifetime instead of once per cache access.
	interner *lang.Interner
	// workers is the resolved size of the per-stratum evaluation pool
	// (Options.Workers, defaulting to GOMAXPROCS).
	workers int
}

// Workers returns the resolved evaluation worker count.
func (e *Engine) Workers() int { return e.workers }

// KB returns the engine's background knowledge base.
func (e *Engine) KB() *kb.KB { return e.kb }

// Warnings returns the problems found while loading the event description.
func (e *Engine) Warnings() []Warning { return e.warnings }

// Fluents returns the indicators of the defined fluents in evaluation order.
func (e *Engine) Fluents() []string { return append([]string(nil), e.order...) }

// FluentKindOf returns the kind of a defined fluent and whether it exists.
func (e *Engine) FluentKindOf(ind string) (FluentKind, bool) {
	f, ok := e.fluents[ind]
	if !ok {
		return 0, false
	}
	return f.kind, true
}

// Options configure engine construction.
type Options struct {
	// Strict makes New fail on any problem that would otherwise produce a
	// warning and a skipped rule (useful for validating the gold standard).
	Strict bool
	// ExtraFacts are added to the background KB before materialisation,
	// e.g. the dynamic entity registry extracted from a stream.
	ExtraFacts []*lang.Term
	// DisableCache turns off the hierarchical caching of intermediate FVP
	// intervals within a window: the dependencies of each fluent are
	// recomputed from scratch instead of being computed once bottom-up.
	// This is the ablation of RTEC's caching optimisation (Section 2 of
	// the paper credits hierarchies with "paving the way for caching");
	// results are identical, only slower.
	DisableCache bool
	// DisableDelta turns off incremental sliding-window evaluation: every
	// window is evaluated from scratch instead of replaying the previous
	// window's cached derivations for the unchanged overlap (see delta.go).
	// Results are identical, only slower — the full re-evaluation path is
	// the differential-testing oracle for the delta layer.
	DisableDelta bool
	// Workers bounds the per-stratum evaluation pool: groundings of the
	// same stratum are partitioned by entity key onto this many workers,
	// with results merged in deterministic order, so recognition output is
	// byte-identical for every value. 0 (the default) resolves to
	// GOMAXPROCS; 1 evaluates inline on the calling goroutine, reproducing
	// the classic sequential code path exactly.
	Workers int
	// Telemetry, when non-nil, receives the engine's observability signals:
	// per-run and per-window spans, counters (events ingested, windows
	// evaluated, FVPs grounded, intervals amalgamated, warnings),
	// per-stratum evaluation-time histograms, and load/runtime warnings on
	// the structured logger. A nil Telemetry costs only nil checks.
	Telemetry *telemetry.Telemetry
}

// New analyses and loads an event description: it classifies the fluents,
// validates rule shapes, builds the background KB, and stratifies the
// fluent hierarchy bottom-up. In non-strict mode, unusable rules and cyclic
// definitions are dropped with warnings instead of failing the load.
func New(ed *lang.EventDescription, opts Options) (*Engine, error) {
	background, err := kb.FromEventDescription(ed, opts.ExtraFacts...)
	if err != nil {
		return nil, fmt.Errorf("rtec: background KB: %w", err)
	}
	e := &Engine{
		ed:            ed,
		kb:            background,
		opts:          opts,
		fluents:       map[string]*fluentDef{},
		fluentsByPred: map[lang.PredKey]*fluentDef{},
		inputEvents:   map[string]bool{},
		interner:      lang.NewInterner(),
		workers:       opts.Workers,
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}

	for _, c := range ed.Facts() {
		if c.Head.Functor == "inputEvent" && len(c.Head.Args) == 1 && c.Head.Args[0].IsCallable() {
			e.inputEvents[c.Head.Args[0].Indicator()] = true
		}
	}

	groundings := map[string][]*lang.Clause{}
	for _, c := range ed.BackgroundRules() {
		if c.Head.Functor == "grounding" && len(c.Head.Args) == 1 && c.Head.Args[0].IsCallable() {
			ind := c.Head.Args[0].Indicator()
			groundings[ind] = append(groundings[ind], c)
		}
	}

	warn := func(fluent, format string, args ...any) error {
		w := Warning{Fluent: fluent, Msg: fmt.Sprintf(format, args...)}
		if opts.Strict {
			return fmt.Errorf("rtec: %s", w)
		}
		e.warnings = append(e.warnings, w)
		opts.Telemetry.Counter("rtec.warnings.load").Inc()
		opts.Telemetry.Logger().Warn(w.Msg, "component", "rtec", "stage", "load", "fluent", w.Fluent)
		return nil
	}

	for _, c := range ed.Rules() {
		_, fl := c.HeadFVP()
		if fl == nil {
			if err := warn("", "rule head %s has no F=V fluent-value pair; rule dropped", c.Head); err != nil {
				return nil, err
			}
			continue
		}
		ind := fl.Indicator()
		def := e.fluents[ind]
		if def == nil {
			def = &fluentDef{ind: ind, pred: fl.Pred(), deps: map[string]bool{}}
			e.fluents[ind] = def
			e.fluentsByPred[def.pred] = def
		}
		switch c.Kind() {
		case lang.KindInitiatedAt:
			if msg := checkSimpleRule(c); msg != "" {
				if err := warn(ind, "initiatedAt rule dropped: %s", msg); err != nil {
					return nil, err
				}
				continue
			}
			def.inits = append(def.inits, c)
		case lang.KindTerminatedAt:
			if msg := checkSimpleRule(c); msg != "" {
				if err := warn(ind, "terminatedAt rule dropped: %s", msg); err != nil {
					return nil, err
				}
				continue
			}
			def.terms = append(def.terms, c)
		case lang.KindHoldsFor:
			if msg := checkSDRule(c); msg != "" {
				if err := warn(ind, "holdsFor rule dropped: %s", msg); err != nil {
					return nil, err
				}
				continue
			}
			def.holdsFor = append(def.holdsFor, c)
		}
	}

	// Classify fluent kinds; mixing initiatedAt/terminatedAt with holdsFor
	// for the same fluent is invalid, keep the majority shape.
	for ind, def := range e.fluents {
		switch {
		case len(def.holdsFor) > 0 && len(def.inits)+len(def.terms) > 0:
			if err := warn(ind, "fluent defined both as simple and statically determined; keeping the %s rules",
				map[bool]string{true: "holdsFor", false: "initiatedAt/terminatedAt"}[len(def.holdsFor) >= len(def.inits)+len(def.terms)]); err != nil {
				return nil, err
			}
			if len(def.holdsFor) >= len(def.inits)+len(def.terms) {
				def.kind, def.inits, def.terms = SD, nil, nil
			} else {
				def.kind, def.holdsFor = Simple, nil
			}
		case len(def.holdsFor) > 0:
			def.kind = SD
		default:
			def.kind = Simple
		}
		def.groundings = groundings[ind]
	}

	// Drop fluents left with no rules at all.
	for ind, def := range e.fluents {
		if len(def.inits)+len(def.terms)+len(def.holdsFor) == 0 {
			delete(e.fluents, ind)
			delete(e.fluentsByPred, def.pred)
			if err := warn(ind, "no usable rules remain; fluent dropped"); err != nil {
				return nil, err
			}
		}
	}

	// Dependency graph: fluent -> fluents referenced in holdsAt/holdsFor
	// body conditions of its rules.
	for _, def := range e.fluents {
		for _, c := range append(append(append([]*lang.Clause{}, def.inits...), def.terms...), def.holdsFor...) {
			for _, l := range c.Body {
				if dep, ok := bodyFluentRef(l.Atom); ok {
					if _, defined := e.fluents[dep]; defined && dep != def.ind {
						def.deps[dep] = true
					}
					if dep == def.ind && c.Kind() == lang.KindHoldsFor {
						// Self-reference in a holdsFor body is a cycle by
						// construction; handled below via the graph.
						def.deps[dep] = true
					}
				}
			}
		}
	}

	if err := e.stratify(warn); err != nil {
		return nil, err
	}

	// Static delta eligibility and the deterministic dependency order the
	// dirty-region propagation unions over (see delta.go). Eligibility is a
	// property of the rules alone, so it is decided once per engine.
	for _, def := range e.fluents {
		if def.kind == Simple {
			def.deltaEligible = true
			for _, c := range append(append([]*lang.Clause{}, def.inits...), def.terms...) {
				if !timeLocalRule(c) {
					def.deltaEligible = false
					break
				}
			}
		}
		for d := range def.deps {
			if _, ok := e.fluents[d]; ok {
				def.sortedDeps = append(def.sortedDeps, d)
			}
		}
		sort.Strings(def.sortedDeps)
	}
	return e, nil
}

// bodyFluentRef extracts the fluent indicator referenced by a holdsAt or
// holdsFor body condition.
func bodyFluentRef(atom *lang.Term) (string, bool) {
	if atom.Kind != lang.Compound || len(atom.Args) != 2 {
		return "", false
	}
	if atom.Functor != "holdsAt" && atom.Functor != "holdsFor" {
		return "", false
	}
	fvp := atom.Args[0]
	if fvp.Kind == lang.Compound && fvp.Functor == "=" && len(fvp.Args) == 2 && fvp.Args[0].IsCallable() {
		return fvp.Args[0].Indicator(), true
	}
	return "", false
}

// checkSimpleRule validates the shape of an initiatedAt/terminatedAt rule:
// it must contain at least one positive happensAt condition to anchor
// event-driven evaluation (Definition 2.2 requires it to come first; the
// engine tolerates any position).
func checkSimpleRule(c *lang.Clause) string {
	fvp, _ := c.HeadFVP()
	if fvp == nil {
		return "head has no F=V fluent-value pair"
	}
	for _, l := range c.Body {
		if !l.Neg && l.Atom.Functor == "happensAt" && len(l.Atom.Args) == 2 {
			return ""
		}
	}
	return "no positive happensAt condition to anchor evaluation"
}

// checkSDRule validates the shape of a holdsFor rule: the head interval
// argument must be a variable that is produced by the body.
func checkSDRule(c *lang.Clause) string {
	fvp, _ := c.HeadFVP()
	if fvp == nil {
		return "head has no F=V fluent-value pair"
	}
	if c.Head.Args[1].Kind != lang.Var {
		return "head interval argument must be a variable"
	}
	if len(c.Body) == 0 {
		return "empty body"
	}
	for _, l := range c.Body {
		if l.Atom.Functor == "happensAt" || l.Atom.Functor == "holdsAt" {
			return fmt.Sprintf("condition %s is not allowed in a statically determined definition", l.Atom)
		}
	}
	return ""
}

// stratify orders fluents bottom-up by dependencies. Cyclic fluents are
// dropped with a warning in non-strict mode.
func (e *Engine) stratify(warn func(fluent, format string, args ...any) error) error {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var cyclic []string

	var visit func(ind string, trail []string) bool
	visit = func(ind string, trail []string) bool {
		switch state[ind] {
		case done:
			return true
		case inStack:
			return false
		}
		state[ind] = inStack
		def := e.fluents[ind]
		deps := make([]string, 0, len(def.deps))
		for d := range def.deps {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		ok := true
		for _, d := range deps {
			if _, exists := e.fluents[d]; !exists {
				continue
			}
			if !visit(d, append(trail, ind)) {
				ok = false
			}
		}
		if !ok {
			state[ind] = done
			cyclic = append(cyclic, ind)
			return false
		}
		state[ind] = done
		def.level = len(order)
		order = append(order, ind)
		return true
	}

	inds := make([]string, 0, len(e.fluents))
	for ind := range e.fluents {
		inds = append(inds, ind)
	}
	sort.Strings(inds)
	for _, ind := range inds {
		visit(ind, nil)
	}
	for _, ind := range cyclic {
		if def, ok := e.fluents[ind]; ok {
			delete(e.fluentsByPred, def.pred)
		}
		delete(e.fluents, ind)
		if err := warn(ind, "cyclic definition; fluent dropped (RTEC hierarchies must be acyclic)"); err != nil {
			return err
		}
	}
	// Remove dropped fluents from the order.
	e.order = e.order[:0]
	for _, ind := range order {
		if _, ok := e.fluents[ind]; ok {
			e.order = append(e.order, ind)
		}
	}
	return nil
}

// depsClosure returns the transitive dependencies of a fluent, in stratum
// order (lowest first), excluding the fluent itself.
func (e *Engine) depsClosure(ind string) []string {
	seen := map[string]bool{}
	var visit func(string)
	visit = func(i string) {
		if seen[i] {
			return
		}
		seen[i] = true
		if def, ok := e.fluents[i]; ok {
			for d := range def.deps {
				visit(d)
			}
		}
	}
	visit(ind)
	delete(seen, ind)
	var out []string
	for _, i := range e.order {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// fvpKey returns the canonical cache key of a ground FVP term '='(F, V).
// It renders the term, so it only belongs on boundary paths (checkpoint
// restore, the public Recognition API); within a window the engine keys by
// intern ID and reads cached renderings from the intern table instead of
// re-rendering per access.
func fvpKey(fvp *lang.Term) string { return fvp.String() }

// fluentKeyOf returns the indicator of the fluent inside an FVP term. Like
// fvpKey, it builds a string and is reserved for boundary paths; hot paths
// use fvpPred, which compares functor/arity pairs without concatenation.
func fluentKeyOf(fvp *lang.Term) string {
	if fvp.Kind == lang.Compound && fvp.Functor == "=" && len(fvp.Args) == 2 && fvp.Args[0].IsCallable() {
		return fvp.Args[0].Indicator()
	}
	return ""
}

// fvpPred returns the predicate key of the fluent inside an FVP term
// '='(F, V); ok is false for any other term shape.
func fvpPred(fvp *lang.Term) (lang.PredKey, bool) {
	if fvp.Kind == lang.Compound && fvp.Functor == "=" && len(fvp.Args) == 2 && fvp.Args[0].IsCallable() {
		return fvp.Args[0].Pred(), true
	}
	return lang.PredKey{}, false
}

// describe renders the hierarchy for debugging and documentation.
func (e *Engine) describe() string {
	var b strings.Builder
	for _, ind := range e.order {
		def := e.fluents[ind]
		fmt.Fprintf(&b, "%s (%s, level %d)\n", ind, def.kind, def.level)
	}
	return b.String()
}

// Describe returns a human-readable summary of the loaded hierarchy.
func (e *Engine) Describe() string { return e.describe() }
