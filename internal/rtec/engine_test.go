package rtec

import (
	"strings"
	"testing"

	"rtecgen/internal/intervals"
	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

func mustEngine(t *testing.T, src string, opts Options) *Engine {
	t.Helper()
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func ev(t int64, src string) stream.Event {
	return stream.Event{Time: t, Atom: parser.MustParseTerm(src)}
}

func ivl(s, e int64) intervals.Interval { return intervals.Interval{Start: s, End: e} }

func checkIntervals(t *testing.T, rec *Recognition, key string, want intervals.List) {
	t.Helper()
	got := rec.IntervalsOfKey(key)
	if !got.Equal(want) {
		t.Fatalf("%s = %s, want %s\nall keys: %v\nwarnings: %v", key, got, want, rec.Keys(), rec.Warnings)
	}
}

const withinAreaED = `
inputEvent(entersArea(_, _)).
inputEvent(leavesArea(_, _)).
inputEvent(gap_start(_)).

areaType(a1, fishing).
areaType(a2, anchorage).

initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).

terminatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(leavesArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).

terminatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(gap_start(Vl), T).
`

func TestSimpleFluentPaperRules(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(20, "leavesArea(v1, a1)"),
		ev(30, "entersArea(v1, a2)"),
		ev(40, "gap_start(v1)"),
		ev(50, "entersArea(v2, a1)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Initiated at 10 -> holds from 11; terminated at 20 -> last holds 20.
	checkIntervals(t, rec, "withinArea(v1, fishing)=true", intervals.List{ivl(11, 21)})
	checkIntervals(t, rec, "withinArea(v1, anchorage)=true", intervals.List{ivl(31, 41)})
	// v2 enters at the last event (50): the fluent would hold from 51, which
	// is beyond the recognition horizon End=51, so nothing is reported.
	if got := rec.IntervalsOfKey("withinArea(v2, fishing)=true"); len(got) != 0 {
		t.Fatalf("v2 = %s, want empty (beyond horizon)", got)
	}
}

func TestSimpleFluentOpenIntervalClipped(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(90, "gap_start(v9)"), // pushes the horizon to 91
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkIntervals(t, rec, "withinArea(v1, fishing)=true", intervals.List{ivl(11, 91)})
}

func TestMultiValuedFluentExclusivity(t *testing.T) {
	src := `
inputEvent(velocity(_, _, _, _)).
inputEvent(stop_start(_)).

initiatedAt(movingSpeed(Vl)=below, T) :-
    happensAt(velocity(Vl, Speed, C, H), T),
    Speed > 0.1,
    Speed < 5.

initiatedAt(movingSpeed(Vl)=normal, T) :-
    happensAt(velocity(Vl, Speed, C, H), T),
    Speed >= 5,
    Speed =< 15.

terminatedAt(movingSpeed(Vl)=below, T) :-
    happensAt(stop_start(Vl), T).

terminatedAt(movingSpeed(Vl)=normal, T) :-
    happensAt(stop_start(Vl), T).
`
	e := mustEngine(t, src, Options{Strict: true})
	events := stream.Stream{
		ev(10, "velocity(v1, 3.0, 90.0, 90.0)"),  // below from 11
		ev(20, "velocity(v1, 10.0, 90.0, 90.0)"), // normal from 21; below ends at 20
		ev(30, "stop_start(v1)"),                 // normal ends at 30
		ev(40, "velocity(v1, 3.0, 90.0, 90.0)"),  // below from 41 until horizon
		ev(50, "velocity(v2, 10.0, 90.0, 90.0)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkIntervals(t, rec, "movingSpeed(v1)=below", intervals.List{ivl(11, 21), ivl(41, 51)})
	checkIntervals(t, rec, "movingSpeed(v1)=normal", intervals.List{ivl(21, 31)})
	checkIntervals(t, rec, "movingSpeed(v2)=normal", intervals.List{ivl(51, 51)}[:0])
	// v2's normal is initiated at 50, holds from 51 = End: clipped away.
	if got := rec.IntervalsOfKey("movingSpeed(v2)=normal"); len(got) != 0 {
		t.Fatalf("v2 normal = %s, want empty (beyond horizon)", got)
	}
}

func TestSDFluentUnionWithoutGrounding(t *testing.T) {
	src := `
inputEvent(velocity(_, _, _, _)).
inputEvent(stop_start(_)).

initiatedAt(movingSpeed(Vl)=below, T) :-
    happensAt(velocity(Vl, Speed, C, H), T),
    Speed > 0.1, Speed < 5.
initiatedAt(movingSpeed(Vl)=normal, T) :-
    happensAt(velocity(Vl, Speed, C, H), T),
    Speed >= 5, Speed =< 15.
initiatedAt(movingSpeed(Vl)=above, T) :-
    happensAt(velocity(Vl, Speed, C, H), T),
    Speed > 15.
terminatedAt(movingSpeed(Vl)=below, T) :- happensAt(stop_start(Vl), T).
terminatedAt(movingSpeed(Vl)=normal, T) :- happensAt(stop_start(Vl), T).
terminatedAt(movingSpeed(Vl)=above, T) :- happensAt(stop_start(Vl), T).

holdsFor(underWay(Vessel)=true, I) :-
    holdsFor(movingSpeed(Vessel)=below, I1),
    holdsFor(movingSpeed(Vessel)=normal, I2),
    holdsFor(movingSpeed(Vessel)=above, I3),
    union_all([I1, I2, I3], I).
`
	e := mustEngine(t, src, Options{Strict: true})
	events := stream.Stream{
		ev(10, "velocity(v1, 3.0, 0.0, 0.0)"),
		ev(20, "velocity(v1, 10.0, 0.0, 0.0)"),
		ev(30, "stop_start(v1)"),
		// v2 only ever sails at normal speed: the union must still see it.
		ev(10, "velocity(v2, 10.0, 0.0, 0.0)"),
		ev(25, "stop_start(v2)"),
		ev(60, "stop_start(v9)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkIntervals(t, rec, "underWay(v1)=true", intervals.List{ivl(11, 31)})
	checkIntervals(t, rec, "underWay(v2)=true", intervals.List{ivl(11, 26)})
}

func TestSDFluentIntersectionAndComplement(t *testing.T) {
	// pilot-boarding style: proximity AND (stopped OR low speed), minus
	// near-coast intervals.
	src := `
inputEvent(proximity_start(_, _)).
inputEvent(proximity_end(_, _)).
inputEvent(slow_start(_)).
inputEvent(slow_end(_)).
inputEvent(coast_in(_)).
inputEvent(coast_out(_)).

initiatedAt(proximity(V1, V2)=true, T) :- happensAt(proximity_start(V1, V2), T).
terminatedAt(proximity(V1, V2)=true, T) :- happensAt(proximity_end(V1, V2), T).

initiatedAt(lowSpeed(V)=true, T) :- happensAt(slow_start(V), T).
terminatedAt(lowSpeed(V)=true, T) :- happensAt(slow_end(V), T).

initiatedAt(nearCoast(V)=true, T) :- happensAt(coast_in(V), T).
terminatedAt(nearCoast(V)=true, T) :- happensAt(coast_out(V), T).

holdsFor(pilotOps(V1, V2)=true, I) :-
    holdsFor(proximity(V1, V2)=true, Ip),
    holdsFor(lowSpeed(V1)=true, Il1),
    holdsFor(lowSpeed(V2)=true, Il2),
    intersect_all([Ip, Il1, Il2], Ii),
    holdsFor(nearCoast(V1)=true, Inc),
    relative_complement_all(Ii, [Inc], I).
`
	e := mustEngine(t, src, Options{Strict: true})
	events := stream.Stream{
		ev(10, "proximity_start(v1, v2)"),
		ev(60, "proximity_end(v1, v2)"),
		ev(5, "slow_start(v1)"),
		ev(50, "slow_end(v1)"),
		ev(15, "slow_start(v2)"),
		ev(70, "slow_end(v2)"),
		ev(30, "coast_in(v1)"),
		ev(40, "coast_out(v1)"),
		ev(99, "slow_start(v9)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// proximity: [11,61); lowSpeed v1: [6,51); lowSpeed v2: [16,71);
	// intersection: [16,51); nearCoast v1: [31,41); complement: [16,31)+[41,51).
	checkIntervals(t, rec, "pilotOps(v1, v2)=true", intervals.List{ivl(16, 31), ivl(41, 51)})
}

func TestSDFluentWithGroundingDeclaration(t *testing.T) {
	src := `
inputEvent(slow_start(_)).
inputEvent(slow_end(_)).

vessel(v1).
vessel(v2).

grounding(idle(V)) :- vessel(V).

initiatedAt(lowSpeed(V)=true, T) :- happensAt(slow_start(V), T).
terminatedAt(lowSpeed(V)=true, T) :- happensAt(slow_end(V), T).

holdsFor(idle(V)=true, I) :-
    holdsFor(lowSpeed(V)=true, Il),
    union_all([Il], I).
`
	e := mustEngine(t, src, Options{Strict: true})
	events := stream.Stream{
		ev(10, "slow_start(v1)"),
		ev(20, "slow_end(v1)"),
		ev(30, "slow_start(v3)"), // v3 is not declared a vessel
		ev(40, "slow_end(v3)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkIntervals(t, rec, "idle(v1)=true", intervals.List{ivl(11, 21)})
	if got := rec.IntervalsOfKey("idle(v3)=true"); len(got) != 0 {
		t.Fatalf("idle(v3) = %s, want empty (not in grounding domain)", got)
	}
	// lowSpeed itself is simple and ungated: v3 does get lowSpeed.
	checkIntervals(t, rec, "lowSpeed(v3)=true", intervals.List{ivl(31, 41)})
}

func TestHoldsAtConditionAcrossHierarchy(t *testing.T) {
	src := withinAreaED + `
inputEvent(velocity(_, _, _, _)).
thresholds(hcNearCoastMax, 5).

initiatedAt(highSpeedIn(Vl, AreaType)=true, T) :-
    happensAt(velocity(Vl, Speed, C, H), T),
    thresholds(hcNearCoastMax, Max),
    Speed > Max,
    holdsAt(withinArea(Vl, AreaType)=true, T).

terminatedAt(highSpeedIn(Vl, AreaType)=true, T) :-
    happensAt(velocity(Vl, Speed, C, H), T),
    thresholds(hcNearCoastMax, Max),
    Speed =< Max.
`
	e := mustEngine(t, src, Options{Strict: true})
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(20, "velocity(v1, 9.0, 0.0, 0.0)"), // fast inside fishing area
		ev(30, "velocity(v1, 2.0, 0.0, 0.0)"), // slows down
		ev(40, "velocity(v1, 9.0, 0.0, 0.0)"), // fast again
		ev(50, "leavesArea(v1, a1)"),
		ev(60, "velocity(v1, 1.0, 0.0, 0.0)"),
		ev(70, "velocity(v2, 9.0, 0.0, 0.0)"), // fast but not within any area
		ev(90, "gap_start(v9)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkIntervals(t, rec, "highSpeedIn(v1, fishing)=true", intervals.List{ivl(21, 31), ivl(41, 61)})
	if got := rec.IntervalsOfKey("highSpeedIn(v2, fishing)=true"); len(got) != 0 {
		t.Fatalf("v2 = %s, want empty", got)
	}
	// The non-ground holdsAt enumerates area types: only 'fishing' matches.
	if got := rec.IntervalsOfKey("highSpeedIn(v1, anchorage)=true"); len(got) != 0 {
		t.Fatalf("anchorage = %s, want empty", got)
	}
}

func TestNegatedConditions(t *testing.T) {
	src := `
inputEvent(gap_start(_)).
inputEvent(gap_end(_)).
inputEvent(port_in(_)).
inputEvent(port_out(_)).

initiatedAt(nearPorts(V)=true, T) :- happensAt(port_in(V), T).
terminatedAt(nearPorts(V)=true, T) :- happensAt(port_out(V), T).

initiatedAt(gap(V)=nearPorts, T) :-
    happensAt(gap_start(V), T),
    holdsAt(nearPorts(V)=true, T).
initiatedAt(gap(V)=farFromPorts, T) :-
    happensAt(gap_start(V), T),
    not holdsAt(nearPorts(V)=true, T).
terminatedAt(gap(V)=nearPorts, T) :- happensAt(gap_end(V), T).
terminatedAt(gap(V)=farFromPorts, T) :- happensAt(gap_end(V), T).
`
	e := mustEngine(t, src, Options{Strict: true})
	events := stream.Stream{
		ev(5, "port_in(v1)"),
		ev(10, "gap_start(v1)"), // near ports
		ev(20, "gap_end(v1)"),
		ev(30, "port_out(v1)"),
		ev(40, "gap_start(v1)"), // far from ports
		ev(50, "gap_end(v1)"),
		ev(60, "port_in(v9)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkIntervals(t, rec, "gap(v1)=nearPorts", intervals.List{ivl(11, 21)})
	checkIntervals(t, rec, "gap(v1)=farFromPorts", intervals.List{ivl(41, 51)})
}

func TestNegatedHappensAt(t *testing.T) {
	src := `
inputEvent(ping(_)).
inputEvent(mute(_)).

initiatedAt(active(V)=true, T) :-
    happensAt(ping(V), T),
    not happensAt(mute(V), T).
terminatedAt(active(V)=true, T) :-
    happensAt(mute(V), T).
`
	e := mustEngine(t, src, Options{Strict: true})
	events := stream.Stream{
		ev(10, "ping(v1)"),
		ev(10, "mute(v1)"), // simultaneous mute suppresses the initiation
		ev(20, "ping(v1)"),
		ev(30, "mute(v1)"),
		ev(99, "ping(v9)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkIntervals(t, rec, "active(v1)=true", intervals.List{ivl(21, 31)})
}

func TestWindowedRunEquivalentToSingleWindow(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(200, "leavesArea(v1, a1)"), // interval spans many windows
		ev(210, "entersArea(v1, a2)"),
		ev(290, "gap_start(v1)"),
		ev(300, "entersArea(v2, a1)"),
		ev(399, "leavesArea(v2, a1)"),
	}
	single, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, wnd := range []int64{50, 100, 400} {
		windowed, err := e.Run(events, RunOptions{Window: wnd})
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range single.Keys() {
			if !single.IntervalsOfKey(key).Equal(windowed.IntervalsOfKey(key)) {
				t.Fatalf("window=%d: %s = %s, want %s", wnd, key,
					windowed.IntervalsOfKey(key), single.IntervalsOfKey(key))
			}
		}
		if len(windowed.Keys()) != len(single.Keys()) {
			t.Fatalf("window=%d: keys %v vs %v", wnd, windowed.Keys(), single.Keys())
		}
	}
}

func TestWindowedSDFluentSpansWindows(t *testing.T) {
	src := `
inputEvent(slow_start(_)).
inputEvent(slow_end(_)).

initiatedAt(lowSpeed(V)=true, T) :- happensAt(slow_start(V), T).
terminatedAt(lowSpeed(V)=true, T) :- happensAt(slow_end(V), T).

holdsFor(idle(V)=true, I) :-
    holdsFor(lowSpeed(V)=true, Il),
    union_all([Il], I).
`
	e := mustEngine(t, src, Options{Strict: true})
	events := stream.Stream{
		ev(10, "slow_start(v1)"),
		ev(250, "slow_end(v1)"),
		ev(299, "slow_start(v9)"),
	}
	single, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := e.Run(events, RunOptions{Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !single.IntervalsOfKey("idle(v1)=true").Equal(windowed.IntervalsOfKey("idle(v1)=true")) {
		t.Fatalf("windowed = %s, want %s", windowed.IntervalsOfKey("idle(v1)=true"),
			single.IntervalsOfKey("idle(v1)=true"))
	}
}

func TestSlidingWindowOverlap(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(80, "leavesArea(v1, a1)"),
		ev(120, "gap_start(v9)"),
	}
	rec, err := e.Run(events, RunOptions{Window: 50, Slide: 25})
	if err != nil {
		t.Fatal(err)
	}
	checkIntervals(t, rec, "withinArea(v1, fishing)=true", intervals.List{ivl(11, 81)})
	if _, err := e.Run(events, RunOptions{Window: 50, Slide: 60}); err == nil {
		t.Fatal("slide > window must be rejected")
	}
}

func TestWarningsOnBadRules(t *testing.T) {
	src := `
initiatedAt(f(X)=true, T) :-
    holdsAt(g(X)=true, T).

terminatedAt(f(X)=true, T) :-
    happensAt(e(X), T).

holdsFor(h(X)=true, I) :-
    holdsFor(h(X)=true, I1),
    union_all([I1], I).
`
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, w := range e.Warnings() {
		msgs = append(msgs, w.String())
	}
	all := strings.Join(msgs, "\n")
	if !strings.Contains(all, "no positive happensAt") {
		t.Errorf("missing anchor warning in %q", all)
	}
	if !strings.Contains(all, "cyclic") {
		t.Errorf("missing cycle warning in %q", all)
	}
	// Strict mode fails instead.
	if _, err := New(ed, Options{Strict: true}); err == nil {
		t.Fatal("strict mode accepted bad rules")
	}
}

func TestMixedKindFluentWarning(t *testing.T) {
	src := `
inputEvent(e(_)).
initiatedAt(f(X)=true, T) :- happensAt(e(X), T).
holdsFor(f(X)=true, I) :-
    holdsFor(g(X)=true, I1),
    union_all([I1], I).
inputEvent(e2(_)).
initiatedAt(g(X)=true, T) :- happensAt(e2(X), T).
`
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range e.Warnings() {
		if strings.Contains(w.Msg, "both as simple and statically determined") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing mixed-kind warning: %v", e.Warnings())
	}
}

func TestUnknownPredicateWarningAtRuntime(t *testing.T) {
	src := `
inputEvent(e(_)).
initiatedAt(f(X)=true, T) :-
    happensAt(e(X), T),
    mysteriousPredicate(X).
terminatedAt(f(X)=true, T) :- happensAt(e(X), T).
`
	e := mustEngine(t, src, Options{})
	rec, err := e.Run(stream.Stream{ev(10, "e(v1)"), ev(20, "e(v1)")}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.IntervalsOfKey("f(v1)=true")) != 0 {
		t.Fatal("undefined condition must fail the rule")
	}
	found := false
	for _, w := range rec.Warnings {
		if strings.Contains(w.Msg, "mysteriousPredicate") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing unknown-predicate warning: %v", rec.Warnings)
	}
}

func TestEmptyStreamAndEmptyTimeline(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	rec, err := e.Run(nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Keys()) != 0 {
		t.Fatalf("empty stream produced %v", rec.Keys())
	}
	if _, err := e.Run(nil, RunOptions{Start: 10, End: 5}); err == nil {
		t.Fatal("inverted time-line accepted")
	}
}

func TestRecognitionAccessors(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(20, "leavesArea(v1, a1)"),
		ev(30, "gap_start(v9)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fvp := parser.MustParseTerm("withinArea(v1, fishing)=true")
	if !rec.HoldsAt(fvp, 15) || rec.HoldsAt(fvp, 25) {
		t.Fatal("HoldsAt wrong")
	}
	if got := rec.IntervalsOf(fvp); !got.Equal(intervals.List{ivl(11, 21)}) {
		t.Fatalf("IntervalsOf = %s", got)
	}
	by := rec.ByFluent()
	if len(by["withinArea/2"]) != 1 {
		t.Fatalf("ByFluent = %v", by)
	}
	m := rec.FluentIntervals("withinArea/2", parser.MustParseTerm("true"))
	if len(m) != 1 {
		t.Fatalf("FluentIntervals = %v", m)
	}
	if rec.FVP("withinArea(v1, fishing)=true") == nil {
		t.Fatal("FVP lookup failed")
	}
}

func TestEngineIntrospection(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	if k, ok := e.FluentKindOf("withinArea/2"); !ok || k != Simple {
		t.Fatalf("FluentKindOf = %v, %v", k, ok)
	}
	if _, ok := e.FluentKindOf("nope/1"); ok {
		t.Fatal("unknown fluent reported defined")
	}
	if len(e.Fluents()) != 1 {
		t.Fatalf("Fluents = %v", e.Fluents())
	}
	if !strings.Contains(e.Describe(), "withinArea/2") {
		t.Fatalf("Describe = %q", e.Describe())
	}
	if e.KB() == nil {
		t.Fatal("KB() is nil")
	}
}
