package rtec

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rtecgen/internal/intervals"
	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

// Checkpoint file layout: a small JSON envelope carrying a magic string, a
// format version and an fnv-64a checksum of the raw payload bytes, so a
// truncated or corrupted snapshot is rejected before any state is restored.
const (
	checkpointMagic   = "rtec-checkpoint"
	checkpointVersion = 1

	// checkpointPrevSuffix names the previous snapshot generation: every
	// successful checkpoint write first rotates the current file aside, so
	// a snapshot torn by a crash or a bad disk still leaves one verified
	// generation to resume from.
	checkpointPrevSuffix = ".prev"
)

type checkpointFile struct {
	Magic    string          `json:"magic"`
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// checkpointPayload is the snapshot of a streaming run: enough to continue
// ingestion at arrival Consumed and reproduce the uninterrupted run's final
// recognition byte for byte. Frozen windows (those the watermark has passed)
// contribute only their delivered recognition; the revisable tail keeps its
// inertia carry-over and the reorder buffer keeps the events that may still
// be re-evaluated.
type checkpointPayload struct {
	EDSum    string `json:"ed_sum"`
	Window   int64  `json:"window"`
	Slide    int64  `json:"slide"`
	Start    int64  `json:"start"`
	End      int64  `json:"end"`
	MaxDelay int64  `json:"max_delay"`

	Consumed    int   `json:"consumed"`
	Emitted     int   `json:"emitted"`
	Revisions   int64 `json:"revisions"`
	Checkpoints int64 `json:"checkpoints"`
	// SinceCkpt is the number of windows emitted since the last cadence
	// checkpoint. Cadence snapshots always record 0 (the counter is reset
	// before the write), so the field is omitted there and the on-disk bytes
	// are unchanged; suspend checkpoints taken mid-cadence record the true
	// count so the resumed run fires its next cadence checkpoint at the same
	// absolute window as an uninterrupted one.
	SinceCkpt int `json:"since_ckpt,omitempty"`

	Frontier int64        `json:"frontier"`
	Started  bool         `json:"started"`
	Disorder ckptDisorder `json:"disorder"`
	Buffered []ckptEvent  `json:"buffered"`
	Slots    []ckptSlot   `json:"slots"`
}

type ckptDisorder struct {
	Observed   int64 `json:"observed"`
	Accepted   int64 `json:"accepted"`
	Late       int64 `json:"late"`
	Duplicates int64 `json:"duplicates"`
	Dropped    int64 `json:"dropped"`
}

type ckptEvent struct {
	T    int64  `json:"t"`
	Atom string `json:"a"`
}

// ckptFVP serialises one recognised fluent-value pair: the fluent and value
// terms in concrete syntax (round-tripped through the parser on restore)
// and the clipped maximal intervals as [start, end) pairs.
type ckptFVP struct {
	Fluent string     `json:"f"`
	Value  string     `json:"v"`
	Ivals  [][2]int64 `json:"i,omitempty"`
}

type ckptSlot struct {
	Revision   int       `json:"rev"`
	Recognised []ckptFVP `json:"recognised"`
	NextOpen   []ckptFVP `json:"next_open"`
}

// edFingerprint identifies the loaded event description: a resumed run must
// be driven by the same rules that wrote the snapshot.
func (e *Engine) edFingerprint() string {
	h := fnv.New64a()
	io.WriteString(h, e.ed.String())
	return fmt.Sprintf("%016x", h.Sum64())
}

func fvpToCkpt(fvp *lang.Term, ivals intervals.List) ckptFVP {
	out := ckptFVP{Fluent: fvp.Args[0].String(), Value: fvp.Args[1].String()}
	for _, iv := range ivals {
		out.Ivals = append(out.Ivals, [2]int64{iv.Start, iv.End})
	}
	return out
}

func fvpFromCkpt(c ckptFVP) (*lang.Term, intervals.List, error) {
	f, err := parser.ParseTerm(c.Fluent)
	if err != nil {
		return nil, nil, fmt.Errorf("rtec: checkpoint fluent term %q: %w", c.Fluent, err)
	}
	v, err := parser.ParseTerm(c.Value)
	if err != nil {
		return nil, nil, fmt.Errorf("rtec: checkpoint value term %q: %w", c.Value, err)
	}
	var list intervals.List
	for _, p := range c.Ivals {
		list = append(list, intervals.Interval{Start: p[0], End: p[1]})
	}
	return lang.FVP(f, v), list, nil
}

// snapshot captures the current run state as a payload with deterministic
// ordering (FVPs sorted by key), so identical states serialise identically.
func (st *streamRun) snapshot() checkpointPayload {
	rs := st.reorder.State()
	p := checkpointPayload{
		EDSum:  st.eng.edFingerprint(),
		Window: st.tl.window, Slide: st.tl.slide,
		Start: st.tl.start, End: st.tl.end,
		MaxDelay:    st.opts.MaxDelay,
		Consumed:    st.consumed,
		Emitted:     st.emitted,
		Revisions:   st.stats.Revisions,
		Checkpoints: st.stats.Checkpoints,
		SinceCkpt:   st.sinceCkpt,
		Frontier:    rs.Frontier,
		Started:     rs.Started,
		Disorder: ckptDisorder{
			Observed: rs.Stats.Observed, Accepted: rs.Stats.Accepted,
			Late: rs.Stats.Late, Duplicates: rs.Stats.Duplicates, Dropped: rs.Stats.Dropped,
		},
	}
	for _, e := range rs.Buffered {
		p.Buffered = append(p.Buffered, ckptEvent{T: e.Time, Atom: e.Atom.String()})
	}
	for i := 0; i < st.emitted; i++ {
		slot := st.slots[i]
		cs := ckptSlot{Revision: slot.revision}
		keys := make([]string, 0, len(slot.eval.recognised))
		for k := range slot.eval.recognised {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cs.Recognised = append(cs.Recognised, fvpToCkpt(slot.eval.fvps[k], slot.eval.recognised[k]))
		}
		open := make([]string, 0, len(slot.eval.nextOpen))
		for k := range slot.eval.nextOpen {
			open = append(open, k)
		}
		sort.Strings(open)
		for _, k := range open {
			cs.NextOpen = append(cs.NextOpen, fvpToCkpt(slot.eval.nextOpen[k], nil))
		}
		p.Slots = append(p.Slots, cs)
	}
	return p
}

// writeCheckpoint takes a cadence snapshot. The write is counted before
// snapshotting, so the payload's own checkpoint counter includes it: a run
// restored from the snapshot then reports the same count as the
// uninterrupted run at the same point — which keeps recovered journals
// (whose checkpoint records embed the payload size) byte-identical to
// fault-free ones.
func (st *streamRun) writeCheckpoint() error {
	tel := st.eng.opts.Telemetry
	t0 := time.Now() //rtecvet:allow telemetry timer: real duration of checkpoint encoding
	st.stats.Checkpoints++
	n, err := st.writeSnapshotFile()
	if err != nil {
		return err
	}
	if err := st.writeDeltaSidecar(); err != nil {
		return err
	}
	tel.Counter("rtec.checkpoint.writes").Inc()
	tel.Counter("rtec.checkpoint.bytes").Add(int64(n))
	tel.Histogram("rtec.checkpoint.write_micros").ObserveDuration(time.Since(t0))
	tel.Logger().Debug("checkpoint written",
		"component", "rtec", "path", st.opts.CheckpointPath,
		"consumed", st.consumed, "windows", st.emitted, "bytes", n)
	return st.obs.journal.Append("checkpoint", journalCheckpoint{
		Consumed: st.consumed, Windows: st.emitted, Bytes: n,
	})
}

// writeSuspendCheckpoint snapshots the run for a graceful suspension
// (signal-triggered drain). Unlike a cadence checkpoint it does NOT bump
// the checkpoint counter and does NOT journal a record: a suspend may land
// between any two arrivals, and the resumed run must report the same
// checkpoint count and journal bytes as an uninterrupted one.
func (st *streamRun) writeSuspendCheckpoint() error {
	if st.opts.CheckpointPath == "" {
		return fmt.Errorf("rtec: cannot suspend: no checkpoint path configured")
	}
	if _, err := st.writeSnapshotFile(); err != nil {
		return err
	}
	if err := st.writeDeltaSidecar(); err != nil {
		return err
	}
	tel := st.eng.opts.Telemetry
	tel.Counter("rtec.checkpoint.suspends").Inc()
	tel.Logger().Debug("suspend checkpoint written",
		"component", "rtec", "path", st.opts.CheckpointPath,
		"consumed", st.consumed, "windows", st.emitted)
	return nil
}

// writeSnapshotFile serialises the snapshot and writes it torn-proof: the
// bytes go to a temporary file in the checkpoint's directory and are fsynced
// before the file is renamed over the target, the previous generation is
// kept aside under checkpointPrevSuffix, and the directory is synced so the
// renames themselves survive a power cut. A crash at any point leaves at
// least one intact, checksum-verified generation. It returns the size of
// the written envelope in bytes.
func (st *streamRun) writeSnapshotFile() (int, error) {
	payload, err := json.Marshal(st.snapshot())
	if err != nil {
		return 0, fmt.Errorf("rtec: checkpoint: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload)
	data, err := json.Marshal(checkpointFile{
		Magic:    checkpointMagic,
		Version:  checkpointVersion,
		Checksum: fmt.Sprintf("%016x", h.Sum64()),
		Payload:  payload,
	})
	if err != nil {
		return 0, fmt.Errorf("rtec: checkpoint: %w", err)
	}
	dir := filepath.Dir(st.opts.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".rtec-checkpoint-*")
	if err != nil {
		return 0, fmt.Errorf("rtec: checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("rtec: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("rtec: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("rtec: checkpoint: %w", err)
	}
	// Rotate the current generation aside before installing the new one:
	// if the new file turns out torn (crash between the renames, bad disk),
	// resume falls back to the previous generation.
	if _, err := os.Stat(st.opts.CheckpointPath); err == nil {
		if err := os.Rename(st.opts.CheckpointPath, st.opts.CheckpointPath+checkpointPrevSuffix); err != nil {
			os.Remove(tmp.Name())
			return 0, fmt.Errorf("rtec: checkpoint: %w", err)
		}
	}
	if err := os.Rename(tmp.Name(), st.opts.CheckpointPath); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("rtec: checkpoint: %w", err)
	}
	// Best-effort directory sync so the renames are durable; some
	// filesystems refuse fsync on directories, which is fine.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return len(data), nil
}

// Checkpoint is a loaded, checksum-verified snapshot of a streaming run.
type Checkpoint struct {
	// Consumed is the number of arrivals the run had fully processed.
	Consumed int
	// Windows is the number of windows delivered at least once.
	Windows int
	payload checkpointPayload
}

// LoadCheckpoint reads and verifies a snapshot written by a streaming run
// with StreamOptions.CheckpointPath set: the magic string, format version
// and payload checksum must all match before the payload is decoded.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("rtec: checkpoint %s: %w", path, err)
	}
	if f.Magic != checkpointMagic {
		return nil, fmt.Errorf("rtec: checkpoint %s: not an RTEC checkpoint", path)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("rtec: checkpoint %s: format version %d, want %d", path, f.Version, checkpointVersion)
	}
	h := fnv.New64a()
	h.Write(f.Payload)
	if sum := fmt.Sprintf("%016x", h.Sum64()); sum != f.Checksum {
		return nil, fmt.Errorf("rtec: checkpoint %s: checksum mismatch (have %s, want %s): snapshot is corrupt", path, sum, f.Checksum)
	}
	var p checkpointPayload
	if err := json.Unmarshal(f.Payload, &p); err != nil {
		return nil, fmt.Errorf("rtec: checkpoint %s: payload: %w", path, err)
	}
	return &Checkpoint{Consumed: p.Consumed, Windows: p.Emitted, payload: p}, nil
}

// LoadCheckpointWithFallback loads the snapshot at path; if that file is
// missing, torn or corrupt, it falls back to the previous generation kept
// under checkpointPrevSuffix. It returns the checkpoint and the file it
// actually came from. The error names both generations when neither loads.
func LoadCheckpointWithFallback(path string) (*Checkpoint, string, error) {
	cp, err := LoadCheckpoint(path)
	if err == nil {
		return cp, path, nil
	}
	prev := path + checkpointPrevSuffix
	cpp, perr := LoadCheckpoint(prev)
	if perr == nil {
		return cpp, prev, nil
	}
	return nil, "", fmt.Errorf("rtec: checkpoint %s unusable (%v); previous generation unusable too (%v)", path, err, perr)
}

// restore rebuilds the run state from a verified checkpoint, after
// validating that the engine and the run geometry match the snapshot.
func (st *streamRun) restore(cp *Checkpoint) error {
	p := cp.payload
	if sum := st.eng.edFingerprint(); p.EDSum != sum {
		return fmt.Errorf("rtec: checkpoint was written by a different event description (fingerprint %s, engine has %s)", p.EDSum, sum)
	}
	if p.Window != st.tl.window || p.Slide != st.tl.slide || p.Start != st.tl.start || p.End != st.tl.end {
		return fmt.Errorf("rtec: checkpoint geometry window=%d slide=%d [%d,%d) does not match the run's window=%d slide=%d [%d,%d)",
			p.Window, p.Slide, p.Start, p.End, st.tl.window, st.tl.slide, st.tl.start, st.tl.end)
	}
	if p.MaxDelay != st.opts.MaxDelay {
		return fmt.Errorf("rtec: checkpoint max delay %d does not match the run's %d", p.MaxDelay, st.opts.MaxDelay)
	}
	if p.Emitted > len(st.slots) {
		return fmt.Errorf("rtec: checkpoint has %d windows, the run plans only %d", p.Emitted, len(st.slots))
	}

	buffered := make(stream.Stream, 0, len(p.Buffered))
	for _, ce := range p.Buffered {
		atom, err := parser.ParseTerm(ce.Atom)
		if err != nil {
			return fmt.Errorf("rtec: checkpoint event %q: %w", ce.Atom, err)
		}
		buffered = append(buffered, stream.Event{Time: ce.T, Atom: atom})
	}
	st.reorder = stream.NewReorderFromState(st.opts.MaxDelay, stream.ReorderState{
		Frontier: p.Frontier,
		Started:  p.Started,
		Buffered: buffered,
		Stats: stream.DisorderStats{
			Observed: p.Disorder.Observed, Accepted: p.Disorder.Accepted,
			Late: p.Disorder.Late, Duplicates: p.Disorder.Duplicates, Dropped: p.Disorder.Dropped,
		},
	})

	for i, cs := range p.Slots {
		ev := windowEval{
			recognised: map[string]intervals.List{},
			fvps:       map[string]*lang.Term{},
			nextOpen:   map[string]*lang.Term{},
		}
		for _, cf := range cs.Recognised {
			fvp, list, err := fvpFromCkpt(cf)
			if err != nil {
				return err
			}
			key := fvpKey(fvp)
			ev.recognised[key] = list
			ev.fvps[key] = fvp
		}
		for _, cf := range cs.NextOpen {
			fvp, _, err := fvpFromCkpt(cf)
			if err != nil {
				return err
			}
			ev.nextOpen[fvpKey(fvp)] = fvp
		}
		st.slots[i] = windowSlot{emitted: true, revision: cs.Revision, eval: ev}
	}
	st.emitted = p.Emitted
	st.consumed = p.Consumed
	st.stats.Revisions = p.Revisions
	st.stats.Checkpoints = p.Checkpoints
	st.sinceCkpt = p.SinceCkpt

	// Warm-start the delta layer from the sidecar when one matches this
	// snapshot exactly; otherwise the first post-resume window evaluates in
	// full and the carry chain rebuilds — identical output either way.
	if st.deltaOn && st.opts.CheckpointPath != "" {
		if ds, ok := st.loadDeltaSidecar(cp); ok {
			st.delta = ds
			st.eng.opts.Telemetry.Counter("rtec.delta.sidecar_restores").Inc()
		}
	}
	return nil
}

// ResumeStream continues a streaming run from a checkpoint written by
// RunStream: the snapshot is verified (version, checksum, event-description
// fingerprint, run geometry), the run state is restored, and ingestion
// resumes at the first arrival the snapshot had not consumed. events must
// be the same arrival-ordered stream the interrupted run was given; the
// final result is byte-identical to the uninterrupted run. Windows
// delivered before the snapshot are not re-delivered to fn.
func (e *Engine) ResumeStream(path string, events stream.Stream, opts StreamOptions, fn func(WindowResult) error) (*StreamResult, error) {
	tel := e.opts.Telemetry
	t0 := time.Now() //rtecvet:allow telemetry timer: real duration of checkpoint restore
	cp, from, err := LoadCheckpointWithFallback(path)
	if err != nil {
		return nil, err
	}
	if from != path {
		tel.Counter("rtec.checkpoint.fallbacks").Inc()
		tel.Logger().Warn("checkpoint torn; resuming from previous generation",
			"component", "rtec", "path", path, "fallback", from)
	}
	st, empty, err := e.newStreamRun(events, opts, fn)
	if err != nil {
		return nil, err
	}
	if empty {
		return &StreamResult{Recognition: &Recognition{byKey: map[string]intervals.List{}, fvps: map[string]*lang.Term{}}}, nil
	}
	defer st.span.End()
	if err := st.restore(cp); err != nil {
		return nil, err
	}
	tel.Counter("rtec.checkpoint.restores").Inc()
	tel.Histogram("rtec.checkpoint.restore_micros").ObserveDuration(time.Since(t0))
	tel.Logger().Debug("checkpoint restored",
		"component", "rtec", "path", path, "consumed", st.consumed, "windows", st.emitted)
	if err := st.journalRunStart(); err != nil {
		return nil, err
	}
	if err := st.obs.journal.Append("checkpoint_restore", journalRestore{
		Consumed: st.consumed, Windows: st.emitted,
	}); err != nil {
		return nil, err
	}
	return st.consume(events)
}
