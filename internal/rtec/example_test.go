package rtec_test

import (
	"fmt"
	"log"

	"rtecgen/internal/parser"
	"rtecgen/internal/rtec"
	"rtecgen/internal/stream"
)

// Example demonstrates the core loop: load an event description, run it
// over a stream, read off maximal intervals.
func Example() {
	ed, err := parser.ParseEventDescription(`
inputEvent(entersArea(_, _)).
inputEvent(leavesArea(_, _)).
areaType(a1, fishing).

initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).

terminatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(leavesArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).
`)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := rtec.New(ed, rtec.Options{Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := engine.Run(stream.Stream{
		{Time: 10, Atom: parser.MustParseTerm("entersArea(v42, a1)")},
		{Time: 60, Atom: parser.MustParseTerm("leavesArea(v42, a1)")},
	}, rtec.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, key := range rec.Keys() {
		fmt.Printf("holdsFor(%s, %s)\n", key, rec.IntervalsOfKey(key))
	}
	// Output:
	// holdsFor(withinArea(v42, fishing)=true, [(10,60]])
}

// ExampleEngine_RunWindows shows the run-time consumption mode: results are
// delivered per query time, with one window of latency.
func ExampleEngine_RunWindows() {
	ed := parser.MustParseEventDescription(`
inputEvent(e(_)).
inputEvent(f(_)).
initiatedAt(active(X)=true, T) :- happensAt(e(X), T).
terminatedAt(active(X)=true, T) :- happensAt(f(X), T).
`)
	engine, err := rtec.New(ed, rtec.Options{Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	events := stream.Stream{
		{Time: 0, Atom: parser.MustParseTerm("e(x)")},
		{Time: 35, Atom: parser.MustParseTerm("f(x)")},
	}
	err = engine.RunWindows(events, rtec.RunOptions{Window: 20}, func(wr rtec.WindowResult) error {
		for key, list := range wr.Recognised {
			fmt.Printf("q=%d: %s %s\n", wr.QueryTime, key, list)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// q=20: active(x)=true [(0,19]]
	// q=36: active(x)=true [(15,35]]
}
