package rtec

import (
	"fmt"
	"time"

	"rtecgen/internal/intervals"
	"rtecgen/internal/lang"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
)

// timeline is the concrete recognition plan resolved from RunOptions and a
// stream: the time-line bounds, the window geometry and the query-time
// count. Query times are computed on demand (q(i)) rather than materialised
// into a slice, so planning a months-long soak run costs O(1) memory. Both
// the in-order runner (runWindows) and the out-of-order streaming runner
// (RunStream) plan windows through it, so they agree exactly on which
// windows exist and where they start.
type timeline struct {
	start, end    int64
	window, slide int64
	n             int // number of windows; window i covers [windowStart(i), q(i))
}

// planTimeline resolves opts against the stream. empty is true for the
// degenerate case of a whole-stream time-line over no events, which
// produces no windows.
func planTimeline(s stream.Stream, opts RunOptions) (tl *timeline, empty bool, err error) {
	start, end := opts.Start, opts.End
	if start == 0 && end == 0 {
		if len(s) == 0 {
			return nil, true, nil
		}
		first, last := s.TimeRange()
		start, end = first, last+1
	}
	if end <= start {
		return nil, false, fmt.Errorf("rtec: empty time-line [%d, %d)", start, end)
	}
	window := opts.Window
	if window <= 0 {
		window = end - start
	}
	slide := opts.Slide
	if slide <= 0 {
		slide = window
	}
	if slide > window {
		return nil, false, fmt.Errorf("rtec: slide %d exceeds window %d; events would be skipped", slide, window)
	}

	// Query times q = start+window, start+window+slide, ..., end; each
	// window covers [max(start, q-window), q). The count is closed-form:
	// the interior query times are those strictly before end, plus the
	// final window ending exactly at end.
	tl = &timeline{start: start, end: end, window: window, slide: slide, n: 1}
	if span := end - start - window; span > 0 {
		tl.n = int((span+slide-1)/slide) + 1
	}
	return tl, false, nil
}

// q returns the query time of window i: the interior query times advance by
// the slide, and the last window always ends exactly at the time-line end.
func (tl *timeline) q(i int) int64 {
	if i == tl.n-1 {
		return tl.end
	}
	return tl.start + tl.window + int64(i)*tl.slide
}

// windowStart returns the left edge of window i.
func (tl *timeline) windowStart(i int) int64 {
	ws := tl.q(i) - tl.window
	if ws < tl.start {
		ws = tl.start
	}
	return ws
}

// nextWindowStart returns the left edge of window i+1, or -1 after the last
// window — the time-point at which simple FVPs must still hold to persist
// into the next window by the law of inertia.
func (tl *timeline) nextWindowStart(i int) int64 {
	if i+1 >= tl.n {
		return -1
	}
	return tl.windowStart(i + 1)
}

// windowEval is the outcome of evaluating one window: the recognised FVPs
// with their intervals clipped to the window, and the simple FVPs that
// persist into the next window by the law of inertia.
type windowEval struct {
	recognised map[string]intervals.List
	fvps       map[string]*lang.Term
	nextOpen   map[string]*lang.Term // fvpKey -> fvp, holding at nws
}

// intervalCount returns the total number of clipped intervals.
func (we windowEval) intervalCount() int64 {
	var n int64
	for _, l := range we.recognised {
		n += int64(len(l))
	}
	return n
}

// sameRecognised reports whether two evaluations recognised exactly the
// same FVPs with exactly the same clipped intervals.
func (we windowEval) sameRecognised(o windowEval) bool {
	if len(we.recognised) != len(o.recognised) {
		return false
	}
	for k, l := range we.recognised {
		if !l.Equal(o.recognised[k]) {
			return false
		}
	}
	return true
}

// sameOpen reports whether two evaluations carry the same open simple FVPs
// into the next window.
func (we windowEval) sameOpen(o windowEval) bool {
	if len(we.nextOpen) != len(o.nextOpen) {
		return false
	}
	for k := range we.nextOpen {
		if _, ok := o.nextOpen[k]; !ok {
			return false
		}
	}
	return true
}

// retractionsAgainst diffs a fresh evaluation against the previously
// delivered one: for every FVP key, the intervals the previous delivery
// reported that the fresh one no longer covers. An empty map means the new
// delivery only adds or keeps intervals.
func (we windowEval) retractionsAgainst(prev windowEval) map[string]intervals.List {
	out := map[string]intervals.List{}
	for k, old := range prev.recognised {
		gone := intervals.RelativeComplement(old, we.recognised[k])
		if len(gone) > 0 {
			out[k] = gone
		}
	}
	return out
}

// evalWindow evaluates one window [ws, we) over its (sorted) events, given
// the simple FVPs carried in by inertia, and returns the clipped
// recognition together with the FVPs persisting into a window starting at
// nws (none when nws < 0). This is the shared evaluation core of the
// in-order and the out-of-order runners: both produce byte-identical
// recognition for the same window inputs because both go through here.
//
// dctx, when non-nil, threads the delta layer through the evaluation: the
// previous window's carried state seeds act replay for clean anchor times,
// and the state of this evaluation is captured for the next slide (see
// delta.go). A nil dctx is the full re-evaluation the delta path must stay
// byte-identical to.
func (e *Engine) evalWindow(winEvents stream.Stream, ws, we, nws int64, prevOpen map[string]*lang.Term, warnSink *[]Warning, parent *telemetry.Span, dctx *deltaCtx) windowEval {
	tel := e.opts.Telemetry
	wspan := parent.Span("rtec.window",
		telemetry.Int("window_start", ws), telemetry.Int("query_time", we),
		telemetry.Int("events", int64(len(winEvents))))
	winHist := tel.Histogram("rtec.window.micros")
	var t0 time.Time
	if winHist != nil {
		t0 = time.Now() //rtecvet:allow telemetry timer: real per-window recognition duration
	}
	w := newWindowState(e, winEvents, ws, we, prevOpen, warnSink, tel, wspan)
	if dctx != nil && !e.opts.DisableCache {
		dctx.attach(w)
	}
	w.evaluate()
	if w.delta != nil {
		w.delta.flush(tel)
	}
	if winHist != nil {
		winHist.ObserveDuration(time.Since(t0))
	}
	tel.Counter("rtec.windows.evaluated").Inc()
	tel.Counter("rtec.fvps.grounded").Add(int64(len(w.cache)))

	out := windowEval{
		recognised: map[string]intervals.List{},
		fvps:       map[string]*lang.Term{},
		nextOpen:   map[string]*lang.Term{},
	}
	for _, ent := range w.cache {
		// The canonical key was rendered once when the FVP was first
		// interned; this is a cache read, not a re-rendering.
		key := e.interner.StringOf(ent.id)
		clipped := intervals.Clip(ent.list, ws, we)
		if len(clipped) > 0 {
			out.recognised[key] = clipped
			out.fvps[key] = ent.fvp
		}
		if nws < 0 {
			continue
		}
		// A simple FVP that (per this window's computation) holds at nws
		// persists into the next window by the law of inertia.
		if fl, ok := e.fluentsByPred[ent.fluent]; ok && fl.kind == Simple && ent.list.Contains(nws) {
			out.nextOpen[key] = ent.fvp
		}
	}
	amalgamated := out.intervalCount()
	tel.Counter("rtec.intervals.amalgamated").Add(amalgamated)
	wspan.SetAttrs(telemetry.Int("fvps", int64(len(w.cache))), telemetry.Int("intervals", amalgamated))
	wspan.End()
	return out
}
