package rtec

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry/journal"
)

// feedRunner pushes a whole stream through a runner and finishes it.
func feedRunner(t *testing.T, r *StreamRunner, arrivals stream.Stream) *StreamResult {
	t.Helper()
	for _, e := range arrivals {
		if err := r.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamRunnerMatchesRunStream: feeding arrivals one at a time through
// the incremental runner is indistinguishable from RunStream — same
// recognition bytes, same stats, same journal bytes, same delivered window
// sequence.
func TestStreamRunnerMatchesRunStream(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	arrivals := chaosArrivals(t, 7, 60)
	first, last := stream.Stream(arrivals).TimeRange()
	opts := StreamOptions{
		RunOptions: RunOptions{Window: 100, Start: first, End: last + 1},
		MaxDelay:   60,
	}

	var wantJ bytes.Buffer
	wopts := opts
	wopts.Journal = journal.NewWriter(&wantJ, journal.Options{})
	var wantWindows []int64
	want, err := e.RunStream(arrivals, wopts, func(wr WindowResult) error {
		wantWindows = append(wantWindows, wr.QueryTime)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var gotJ bytes.Buffer
	gopts := opts
	gopts.Journal = journal.NewWriter(&gotJ, journal.Options{})
	var gotWindows []int64
	r, err := e.NewStreamRunner(gopts, func(wr WindowResult) error {
		gotWindows = append(gotWindows, wr.QueryTime)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := feedRunner(t, r, arrivals)

	if a, b := csvOf(t, want.Recognition), csvOf(t, got.Recognition); a != b {
		t.Fatalf("incremental CSV differs:\n%s\nvs\n%s", b, a)
	}
	if want.Stats != got.Stats {
		t.Fatalf("stats differ: %s vs %s", want.Stats, got.Stats)
	}
	if !bytes.Equal(wantJ.Bytes(), gotJ.Bytes()) {
		t.Fatalf("journals differ:\n%s\nvs\n%s", wantJ.String(), gotJ.String())
	}
	if len(wantWindows) != len(gotWindows) {
		t.Fatalf("delivered %d windows incrementally, %d batch", len(gotWindows), len(wantWindows))
	}
}

// TestStreamRunnerFlushPinsEmittedCount pins the end-of-stream drain at the
// engine level: a stream whose final events sit inside the reorder buffer
// (the watermark never passes the last windows) must still deliver every
// planned window, evaluated over the buffered tail.
func TestStreamRunnerFlushPinsEmittedCount(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	// maxDelay is huge relative to the time-line: the watermark never
	// passes any event, so everything stays buffered (revisable) to the
	// end. Deliveries still follow the frontier; the final window's
	// delivery happens only in the Finish flush, from buffered events.
	arrivals := stream.Stream{
		ev(2, "entersArea(v1, a1)"),
		ev(35, "leavesArea(v1, a1)"),
	}
	opts := StreamOptions{
		RunOptions: RunOptions{Window: 10, Start: 0, End: 40},
		MaxDelay:   1000,
	}
	delivered := 0
	r, err := e.NewStreamRunner(opts, func(wr WindowResult) error {
		delivered++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest(arrivals[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest(arrivals[1]); err != nil {
		t.Fatal(err)
	}
	// Frontier 35 passed query times 10, 20 and 30; window 40 is pending.
	if delivered != 3 {
		t.Fatalf("windows delivered before Finish = %d, want 3", delivered)
	}
	if occ := r.st.reorder.Occupancy(); occ == 0 {
		t.Fatal("bad premise: nothing buffered at end of stream")
	}
	res, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Timeline [0,40) window 10 → query times 10,20,30,40: all 4 delivered.
	if delivered != 4 {
		t.Fatalf("delivered %d windows, want 4: buffered in-flight events were dropped", delivered)
	}
	if r.Windows() != 4 {
		t.Fatalf("Windows() = %d, want 4", r.Windows())
	}
	// The buffered events made it into the evaluations.
	if got := csvOf(t, res.Recognition); got == "" {
		t.Fatal("flush lost the buffered events: empty recognition")
	}
	want, err := e.Run(arrivals, RunOptions{Window: 10, Start: 0, End: 40})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := csvOf(t, want), csvOf(t, res.Recognition); a != b {
		t.Fatalf("flushed run differs from batch:\n%s\nvs\n%s", b, a)
	}
}

// TestStreamRunnerResumeQuiet: ResumeStreamRunner replays to the same final
// state without journalling restart markers — the audit trail is
// byte-identical to the uninterrupted incremental run.
func TestStreamRunnerResumeQuiet(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	arrivals := chaosArrivals(t, 11, 40)
	first, last := stream.Stream(arrivals).TimeRange()
	mk := func(j *journal.Writer, ckpt string) StreamOptions {
		return StreamOptions{
			RunOptions:      RunOptions{Window: 80, Start: first, End: last + 1},
			MaxDelay:        40,
			CheckpointPath:  ckpt,
			CheckpointEvery: 1,
			Journal:         j,
		}
	}

	var wantJ bytes.Buffer
	r, err := e.NewStreamRunner(mk(journal.NewWriter(&wantJ, journal.Options{}), filepath.Join(t.TempDir(), "a.ckpt")), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := feedRunner(t, r, arrivals)

	// Interrupted run: ingest half, abort, resume from the checkpoint with
	// a journal rolled back to the restore point.
	ckpt := filepath.Join(t.TempDir(), "b.ckpt")
	var gotJ bytes.Buffer
	jw := journal.NewWriter(&gotJ, journal.Options{})
	r2, err := e.NewStreamRunner(mk(jw, ckpt), nil)
	if err != nil {
		t.Fatal(err)
	}
	half := len(arrivals) / 2
	marks := map[int]journal.Mark{0: jw.Mark()}
	offsets := map[int]int{0: 0}
	seen := int64(0)
	for _, ev := range arrivals[:half] {
		if err := r2.Ingest(ev); err != nil {
			t.Fatal(err)
		}
		if r2.Checkpoints() > seen {
			seen = r2.Checkpoints()
			marks[r2.Consumed()] = jw.Mark()
			offsets[r2.Consumed()] = gotJ.Len()
		}
	}
	r2.Abort()

	cp, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := marks[cp.Consumed]
	if !ok {
		t.Fatalf("no mark at consumed=%d", cp.Consumed)
	}
	gotJ.Truncate(offsets[cp.Consumed])
	jw.Rollback(m)
	r3, err := e.ResumeStreamRunner(cp, mk(jw, ckpt), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Consumed() != cp.Consumed {
		t.Fatalf("resumed cursor = %d, want %d", r3.Consumed(), cp.Consumed)
	}
	got := feedRunner(t, r3, arrivals[cp.Consumed:])

	if a, b := csvOf(t, want.Recognition), csvOf(t, got.Recognition); a != b {
		t.Fatalf("resumed incremental CSV differs:\n%s\nvs\n%s", b, a)
	}
	if !bytes.Equal(wantJ.Bytes(), gotJ.Bytes()) {
		t.Fatalf("resumed journal differs from uninterrupted:\n%s\nvs\n%s", gotJ.String(), wantJ.String())
	}
}

func TestStreamRunnerNeedsBounds(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	if _, err := e.NewStreamRunner(StreamOptions{RunOptions: RunOptions{Window: 10}}, nil); err == nil {
		t.Fatal("runner planned without explicit bounds")
	}
}

func TestStreamRunnerLifecycleErrors(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	r, err := e.NewStreamRunner(StreamOptions{RunOptions: RunOptions{Window: 10, Start: 0, End: 20}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest(ev(1, "entersArea(v1, a1)")); err == nil {
		t.Fatal("Ingest after Finish accepted")
	}
	var errTwice error
	if _, errTwice = r.Finish(); errTwice == nil {
		t.Fatal("second Finish accepted")
	}
	_ = errors.Is(errTwice, nil)
}

func TestMergeRecognitions(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	full := stream.Stream{
		ev(2, "entersArea(v1, a1)"),
		ev(5, "entersArea(v2, a2)"),
		ev(30, "leavesArea(v1, a1)"),
		ev(35, "leavesArea(v2, a2)"),
	}
	want, err := e.Run(full, RunOptions{Window: 10, Start: 0, End: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Partition by entity, recognise separately, merge.
	var parts []*Recognition
	for _, vessel := range []string{"v1", "v2"} {
		var sub stream.Stream
		for _, e := range full {
			if e.Atom.Args[0].String() == vessel {
				sub = append(sub, e)
			}
		}
		rec, err := e.Run(sub, RunOptions{Window: 10, Start: 0, End: 40})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, rec)
	}
	got := MergeRecognitions(parts...)
	if a, b := csvOf(t, want), csvOf(t, got); a != b {
		t.Fatalf("merged partitions differ from global run:\n%s\nvs\n%s", b, a)
	}
	if got.Start != 0 || got.End != 40 {
		t.Fatalf("merged bounds [%d,%d), want [0,40)", got.Start, got.End)
	}
	if m := MergeRecognitions(nil, nil); len(m.byKey) != 0 {
		t.Fatal("merging nils produced intervals")
	}
}
