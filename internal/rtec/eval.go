package rtec

import (
	"fmt"
	"sort"
	"time"

	"rtecgen/internal/intervals"
	"rtecgen/internal/kb"
	"rtecgen/internal/lang"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
)

// cacheEntry holds the computed maximal intervals of one ground FVP within
// the current window. The intern ID and the fluent predicate are computed
// once, when the entry is created, so cache accesses and the inertia
// hand-off never re-render or re-parse the FVP term.
type cacheEntry struct {
	fvp    *lang.Term // ground '='(F, V)
	id     lang.InternID
	fluent lang.PredKey
	list   intervals.List
}

// windowState is the per-window evaluation context: the indexed events of
// the window and the bottom-up cache of FVP interval lists. Event and fluent
// indexes are keyed by predicate (functor/arity pairs), and the FVP cache by
// interned term ID, so hot-path lookups build no strings.
type windowState struct {
	eng          *Engine
	ws, we       int64 // window covers [ws, we)
	byIndTime    map[lang.PredKey]map[int64][]*lang.Term
	byInd        map[lang.PredKey][]stream.Event
	cache        map[lang.InternID]*cacheEntry
	byFluent     map[lang.PredKey][]*cacheEntry
	openByFluent map[lang.PredKey][]*lang.Term // simple FVPs holding at window start
	warnings     map[string]bool               // dedup of runtime warnings
	warnSink     *[]Warning
	tel          *telemetry.Telemetry // may be nil: all uses degrade to no-ops
	span         *telemetry.Span      // the window span, parent of per-fluent spans

	// Delta-layer state (see delta.go); all nil/false when the window is
	// evaluated without a delta context.
	delta    *deltaCtx
	changed  map[string]intervals.List // per evaluated fluent: region where its output diverged from the carried state
	curReuse bool                      // the fluent being evaluated replays cached acts
	curDirty intervals.List            // its dirty region (valid when curReuse)
	curPrev  *fluentDelta              // its carried state (nil without one)
	curNext  *fluentDelta              // its capture target (nil when not capturing)
}

func newWindowState(e *Engine, events stream.Stream, ws, we int64, prevOpen map[string]*lang.Term, warnSink *[]Warning, tel *telemetry.Telemetry, span *telemetry.Span) *windowState {
	w := &windowState{
		eng:       e,
		ws:        ws,
		we:        we,
		byIndTime: map[lang.PredKey]map[int64][]*lang.Term{},
		byInd:     map[lang.PredKey][]stream.Event{},
		cache:     map[lang.InternID]*cacheEntry{},
		byFluent:  map[lang.PredKey][]*cacheEntry{},
		warnings:  map[string]bool{},
		warnSink:  warnSink,
		tel:       tel,
		span:      span,
	}
	for _, ev := range events {
		pred := ev.Atom.Pred()
		w.byInd[pred] = append(w.byInd[pred], ev)
		byTime := w.byIndTime[pred]
		if byTime == nil {
			byTime = map[int64][]*lang.Term{}
			w.byIndTime[pred] = byTime
		}
		byTime[ev.Time] = append(byTime[ev.Time], ev.Atom)
	}
	// Group the carried-over FVPs by fluent once per window (instead of
	// filtering the whole set per fluent), in canonical key order so the
	// inertia seeding order is deterministic.
	if len(prevOpen) > 0 {
		keys := make([]string, 0, len(prevOpen))
		for k := range prevOpen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.openByFluent = map[lang.PredKey][]*lang.Term{}
		for _, k := range keys {
			fvp := prevOpen[k]
			if pred, ok := fvpPred(fvp); ok {
				w.openByFluent[pred] = append(w.openByFluent[pred], fvp)
			}
		}
	}
	return w
}

// warnf records a runtime warning once per window: collected on the
// Recognition (for programmatic consumers) and surfaced on the telemetry
// logger with fluent and window attributes (for operators).
func (w *windowState) warnf(fluent, format string, args ...any) {
	w.warn(Warning{Fluent: fluent, Msg: fmt.Sprintf(format, args...)})
}

func (w *windowState) warn(wn Warning) {
	key := wn.Fluent + "|" + wn.Msg
	if w.warnings[key] {
		return
	}
	w.warnings[key] = true
	w.tel.Counter("rtec.warnings.runtime").Inc()
	w.tel.Logger().Warn(wn.Msg,
		"component", "rtec", "stage", "recognition", "fluent", wn.Fluent,
		"window_start", w.ws, "query_time", w.we)
	if w.warnSink != nil {
		*w.warnSink = append(*w.warnSink, wn)
	}
}

// store unions list into the cache entry for the ground FVP.
func (w *windowState) store(fvp *lang.Term, list intervals.List) {
	id := w.eng.interner.ID(fvp)
	if ent, ok := w.cache[id]; ok {
		ent.list = intervals.Union(ent.list, list)
		return
	}
	ent := &cacheEntry{fvp: fvp, id: id, list: list}
	if pred, ok := fvpPred(fvp); ok {
		ent.fluent = pred
		w.byFluent[pred] = append(w.byFluent[pred], ent)
	}
	w.cache[id] = ent
}

// listOf returns the cached intervals of a ground FVP (nil when unknown —
// an undefined or never-holding FVP has no intervals). The lookup goes
// through the intern table, so it renders no strings and takes only a read
// lock, making it safe and cheap from parallel workers.
func (w *windowState) listOf(fvp *lang.Term) intervals.List {
	id, ok := w.eng.interner.Lookup(fvp)
	if !ok {
		return nil
	}
	if ent, ok := w.cache[id]; ok {
		return ent.list
	}
	return nil
}

// evaluate computes every fluent of the hierarchy bottom-up, caching each
// fluent's intervals for the window so higher-level definitions reuse them.
// Each stratum is wrapped in a child span of the window span, and its
// evaluation time feeds the per-stratum histogram. Strata run in dependency
// order; within a stratum, rule groundings may fan out onto the engine's
// worker pool (see parallel.go).
func (w *windowState) evaluate() {
	if w.eng.opts.DisableCache {
		w.evaluateUncached()
		return
	}
	hist := w.tel.Histogram("rtec.stratum.micros")
	var perLevel map[int]*telemetry.Histogram
	if hist != nil {
		perLevel = map[int]*telemetry.Histogram{}
	}
	for _, ind := range w.eng.order {
		level := w.eng.fluents[ind].level
		sp := w.span.Span("rtec.fluent",
			telemetry.String("fluent", ind),
			telemetry.Int("stratum", int64(level)))
		var t0 time.Time
		if hist != nil {
			t0 = time.Now() //rtecvet:allow telemetry timer: real per-window evaluation duration
		}
		w.evalFluent(ind)
		if hist != nil {
			d := time.Since(t0)
			hist.ObserveDuration(d)
			lh, ok := perLevel[level]
			if !ok {
				lh = w.tel.Histogram(stratumHistName(level))
				perLevel[level] = lh
			}
			lh.ObserveDuration(d)
		}
		sp.End()
	}
}

func (w *windowState) evalFluent(ind string) {
	def := w.eng.fluents[ind]
	w.beginFluentDelta(def)
	if def.kind == Simple {
		w.evalSimple(def)
	} else {
		w.evalSD(def)
	}
	w.endFluentDelta(def)
}

// evaluateUncached is the caching ablation: for every fluent, its full
// dependency closure is recomputed from scratch instead of being shared
// bottom-up. Results are identical to the cached evaluation.
func (w *windowState) evaluateUncached() {
	finalCache := map[lang.InternID]*cacheEntry{}
	finalByFluent := map[lang.PredKey][]*cacheEntry{}
	for _, ind := range w.eng.order {
		def := w.eng.fluents[ind]
		w.cache = map[lang.InternID]*cacheEntry{}
		w.byFluent = map[lang.PredKey][]*cacheEntry{}
		for _, dep := range w.eng.depsClosure(ind) {
			w.evalFluent(dep)
		}
		w.evalFluent(ind)
		for id, ent := range w.cache {
			if ent.fluent != def.pred {
				continue
			}
			finalCache[id] = ent
			finalByFluent[def.pred] = append(finalByFluent[def.pred], ent)
		}
	}
	w.cache, w.byFluent = finalCache, finalByFluent
}

// --- simple fluents --------------------------------------------------------

// fvpPoints accumulates initiation and termination points per ground FVP.
type fvpPoints struct {
	fvp        *lang.Term
	id         lang.InternID
	fluentPart lang.InternID // interned fluent term F (without =V)
	inits      []int64
	terms      []int64
}

func (w *windowState) evalSimple(def *fluentDef) {
	in := w.eng.interner
	points := map[lang.InternID]*fvpPoints{}
	get := func(fvp *lang.Term) *fvpPoints {
		id := in.ID(fvp)
		p, ok := points[id]
		if !ok {
			p = &fvpPoints{fvp: fvp, id: id, fluentPart: in.ID(fvp.Args[0])}
			points[id] = p
		}
		return p
	}

	// Inertia: FVPs open at the window start behave as if initiated just
	// before it, so their interval resumes at ws.
	for _, fvp := range w.openByFluent[def.pred] {
		p := get(fvp)
		p.inits = append(p.inits, w.ws-1)
	}

	// Initiations must be ground: an unbound variable in the head of an
	// initiatedAt rule is unsafe. Terminations may be non-ground — e.g.
	// rule (3) of the paper terminates withinArea(Vl, AreaType)=true for
	// every AreaType on a communication gap — and act as wildcards over all
	// matching FVPs of the fluent.
	type wildcard struct {
		pattern *lang.Term
		t       int64
	}
	var wildcards []wildcard
	for ri, rule := range def.inits {
		w.evalSimpleRule(def, ri, rule, func(fvp *lang.Term, t int64) {
			if !fvp.IsGround() {
				w.warnf(def.ind, "initiatedAt rule derives non-ground FVP %s; occurrence dropped", fvp)
				return
			}
			p := get(fvp)
			p.inits = append(p.inits, t)
		})
	}
	for ri, rule := range def.terms {
		w.evalSimpleRule(def, len(def.inits)+ri, rule, func(fvp *lang.Term, t int64) {
			if !fvp.IsGround() {
				wildcards = append(wildcards, wildcard{pattern: fvp, t: t})
				return
			}
			p := get(fvp)
			p.terms = append(p.terms, t)
		})
	}
	for _, wc := range wildcards {
		for _, p := range points {
			if _, ok := lang.NewSubst().UnifyInto(wc.pattern, p.fvp); ok {
				p.terms = append(p.terms, wc.t)
			}
		}
	}

	// Values of a simple fluent are mutually exclusive: initiating F=V'
	// breaks any current interval of F=V (V != V'). Keys are ordered by the
	// FVPs' canonical renderings (cached in the intern table), matching the
	// historical store order exactly.
	keys := make([]lang.InternID, 0, len(points))
	for k := range points {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return in.StringOf(keys[i]) < in.StringOf(keys[j]) })
	extraTerms := map[lang.InternID][]int64{}
	for _, k := range keys {
		p := points[k]
		for _, k2 := range keys {
			if k2 == k {
				continue
			}
			q := points[k2]
			if q.fluentPart == p.fluentPart {
				extraTerms[k] = append(extraTerms[k], q.inits...)
			}
		}
	}
	for _, k := range keys {
		p := points[k]
		list := intervals.FromPoints(p.inits, append(p.terms, extraTerms[k]...))
		if len(list) > 0 {
			w.store(p.fvp, list)
		}
	}
}

// evalSimpleRule evaluates one initiatedAt/terminatedAt rule event-driven:
// it anchors on the rule's first positive happensAt condition, iterates the
// matching events of the window, and checks the remaining conditions. Each
// anchor event is one evaluation unit: units run inline with one worker, or
// entity-sharded onto the pool with slot-ordered merging (see parallel.go),
// so emit observes the same occurrences in the same order either way. slot
// identifies the rule within the fluent (inits first, then terms) for the
// delta layer's per-rule act cache: under an active delta context the units
// at clean anchor times replay the previous window's cached acts instead of
// re-deriving (see replaySimpleRule in delta.go).
func (w *windowState) evalSimpleRule(def *fluentDef, slot int, rule *lang.Clause, emit func(fvp *lang.Term, t int64)) {
	r := rule.RenameApart("_r")
	anchorIdx := -1
	for i, l := range r.Body {
		if !l.Neg && l.Atom.Functor == "happensAt" && len(l.Atom.Args) == 2 {
			anchorIdx = i
			break
		}
	}
	if anchorIdx < 0 {
		return // validated at load; defensive
	}
	anchor := r.Body[anchorIdx].Atom
	rest := make([]lang.Literal, 0, len(r.Body)-1)
	rest = append(rest, r.Body[:anchorIdx]...)
	rest = append(rest, r.Body[anchorIdx+1:]...)

	pattern, timeArg := anchor.Args[0], anchor.Args[1]
	if !pattern.IsCallable() {
		w.warnf(def.ind, "happensAt pattern %s is not callable; rule skipped", pattern)
		return
	}
	events := w.byInd[pattern.Pred()]
	head := r.Head.Args[0]
	unit := func(i int, re *ruleEval) {
		ev := events[i]
		re.t = ev.Time
		s := lang.NewSubst()
		if !s.Unify(pattern, ev.Atom) {
			return
		}
		if !s.Unify(timeArg, lang.NewInt(ev.Time)) {
			return
		}
		re.solveConditions(def, rest, s, func(final lang.Subst) {
			re.emit(final.Resolve(head), ev.Time)
		})
	}
	apply := func(a act) {
		if a.fvp == nil {
			w.warn(a.warn)
			return
		}
		emit(a.fvp, a.t)
	}

	var rec map[int64][]act // capture target: acts of this rule by anchor time
	if w.curNext != nil && w.curNext.acts != nil {
		rec = w.curNext.acts[slot]
	}
	if w.curReuse {
		w.replaySimpleRule(events, w.curPrev.acts[slot], rec, unit, apply)
		return
	}
	if w.delta != nil {
		w.delta.dirty += int64(len(events))
	}
	if rec != nil {
		inner := apply
		apply = func(a act) {
			rec[a.t] = append(rec[a.t], a)
			inner(a)
		}
	}
	w.runUnits(len(events),
		func(i int) uint64 { return eventEntity(events[i]) },
		unit, apply)
}

// solveConditions evaluates the remaining body conditions of a simple-fluent
// rule with backtracking, invoking yield for every solution. It runs inside
// an evaluation unit: it only reads the shared window state, and routes
// warnings through the unit context.
func (re *ruleEval) solveConditions(def *fluentDef, lits []lang.Literal, s lang.Subst, yield func(lang.Subst)) {
	if len(lits) == 0 {
		yield(s)
		return
	}
	w := re.w
	lit := lits[0]
	rest := lits[1:]
	atom := lit.Atom

	// Builtins (comparisons, =, absAngleDiff).
	if atom.Kind == lang.Compound && kb.IsBuiltinPred(atom.Functor, len(atom.Args)) {
		substs, _, err := kb.SolveBuiltin(atom, s)
		if err != nil {
			re.warnf(def.ind, "condition %s: %v", atom, err)
			return
		}
		if lit.Neg {
			if len(substs) == 0 {
				re.solveConditions(def, rest, s, yield)
			}
			return
		}
		for _, n := range substs {
			re.solveConditions(def, rest, n, yield)
		}
		return
	}

	switch {
	case atom.Functor == "happensAt" && len(atom.Args) == 2:
		if lit.Neg {
			if w.anyEventMatch(atom, s) {
				return
			}
			re.solveConditions(def, rest, s, yield)
			return
		}
		w.eachEventMatch(atom, s, func(n lang.Subst) {
			re.solveConditions(def, rest, n, yield)
		})

	case atom.Functor == "holdsAt" && len(atom.Args) == 2:
		if t := s.Resolve(atom.Args[1]); t.Kind == lang.Var {
			// An unbound time-point makes the condition unsafe: negation
			// would succeed vacuously. Fail the rule and say why.
			re.warnf(def.ind, "holdsAt condition %s has an unbound time-point; rule fails", atom)
			return
		}
		if lit.Neg {
			if w.anyHoldsAt(atom, s) {
				return
			}
			re.solveConditions(def, rest, s, yield)
			return
		}
		w.eachHoldsAt(atom, s, func(n lang.Subst) {
			re.solveConditions(def, rest, n, yield)
		})

	case atom.Functor == "holdsFor":
		re.warnf(def.ind, "holdsFor condition %s is not allowed in a simple-fluent rule; rule fails", atom)
		return

	default: // atemporal background knowledge
		matches := w.eng.kb.Match(atom, s)
		if lit.Neg {
			if len(matches) > 0 {
				return
			}
			re.solveConditions(def, rest, s, yield)
			return
		}
		if len(matches) == 0 && len(w.eng.kb.FactsOfPred(atom.Pred())) == 0 {
			re.warnf(def.ind, "unknown predicate %s; condition fails", atom.Indicator())
		}
		for _, n := range matches {
			re.solveConditions(def, rest, n, yield)
		}
	}
}

// eachEventMatch enumerates the window events unifying with a happensAt
// condition. When the time argument is bound, only that time-point's events
// are scanned.
func (w *windowState) eachEventMatch(atom *lang.Term, s lang.Subst, yield func(lang.Subst)) {
	pattern := s.Resolve(atom.Args[0])
	timeArg := s.Resolve(atom.Args[1])
	if !pattern.IsCallable() {
		return
	}
	pred := pattern.Pred()
	if t, ok := timeArg.Number(); ok {
		for _, ev := range w.byIndTime[pred][int64(t)] {
			if n, ok := s.UnifyInto(pattern, ev); ok {
				yield(n)
			}
		}
		return
	}
	for _, ev := range w.byInd[pred] {
		n, ok := s.UnifyInto(pattern, ev.Atom)
		if !ok {
			continue
		}
		if n.Unify(timeArg, lang.NewInt(ev.Time)) {
			yield(n)
		}
	}
}

func (w *windowState) anyEventMatch(atom *lang.Term, s lang.Subst) bool {
	found := false
	w.eachEventMatch(atom, s, func(lang.Subst) { found = true })
	return found
}

// eachHoldsAt enumerates the solutions of a holdsAt(F=V, T) condition
// against the window cache. T must be bound (it always is in simple-fluent
// rules, where every predicate shares the rule's time-point).
func (w *windowState) eachHoldsAt(atom *lang.Term, s lang.Subst, yield func(lang.Subst)) {
	fvp := s.Resolve(atom.Args[0])
	timeArg := s.Resolve(atom.Args[1])
	tNum, ok := timeArg.Number()
	if !ok {
		return // unbound time: unsafe, fail
	}
	t := int64(tNum)
	if fvp.IsGround() {
		if w.listOf(fvp).Contains(t) {
			yield(s)
		}
		return
	}
	pred, ok := fvpPred(fvp)
	if !ok {
		return
	}
	for _, ent := range w.byFluent[pred] {
		if !ent.list.Contains(t) {
			continue
		}
		if n, ok := s.UnifyInto(fvp, ent.fvp); ok {
			yield(n)
		}
	}
}

func (w *windowState) anyHoldsAt(atom *lang.Term, s lang.Subst) bool {
	found := false
	w.eachHoldsAt(atom, s, func(lang.Subst) { found = true })
	return found
}

// --- statically determined fluents -----------------------------------------

// intervalEnv binds interval variables (I, I1, ...) to interval lists during
// the evaluation of a holdsFor rule body. Interval variables live in their
// own namespace, distinct from the term substitution.
type intervalEnv map[string]intervals.List

func (env intervalEnv) clone() intervalEnv {
	n := make(intervalEnv, len(env))
	for k, v := range env {
		n[k] = v
	}
	return n
}

func (w *windowState) evalSD(def *fluentDef) {
	for _, rule := range def.holdsFor {
		w.evalSDRule(def, rule)
	}
}

// evalSDRule evaluates one holdsFor rule. Each candidate substitution is one
// evaluation unit; candidates only read strictly lower strata, so they run
// entity-sharded on the worker pool with slot-ordered merging, storing in
// the same order the sequential evaluation would.
func (w *windowState) evalSDRule(def *fluentDef, rule *lang.Clause) {
	r := rule.RenameApart("_r")
	headFVP := r.Head.Args[0]
	headIvar := r.Head.Args[1]
	cands := w.sdCandidates(def, r, headFVP)

	w.runUnits(len(cands),
		func(i int) uint64 { return lang.Hash(cands[i].Resolve(headFVP)) },
		func(i int, re *ruleEval) {
			re.solveSDBody(def, r.Body, cands[i], intervalEnv{}, func(final lang.Subst, env intervalEnv) {
				fvp := final.Resolve(headFVP)
				if !fvp.IsGround() {
					re.warnf(def.ind, "holdsFor rule derives non-ground FVP %s; dropped", fvp)
					return
				}
				out, ok := env[headIvar.Functor]
				if !ok {
					re.warnf(def.ind, "head interval variable %s is not produced by the body; dropped", headIvar)
					return
				}
				if len(out) > 0 {
					re.store(fvp, out)
				}
			})
		},
		func(a act) {
			if a.fvp == nil {
				w.warn(a.warn)
				return
			}
			w.store(a.fvp, a.list)
		})
}

// sdCandidates enumerates the candidate substitutions over which a holdsFor
// rule is evaluated. With grounding declarations, the declared entity
// domains are used. Otherwise candidates are derived from the cache: every
// grounding of any positive holdsFor body condition contributes one, so
// unions over fluent values see every relevant entity even when a
// particular conjunct has no intervals (its list is then empty).
func (w *windowState) sdCandidates(def *fluentDef, r *lang.Clause, headFVP *lang.Term) []lang.Subst {
	if len(def.groundings) > 0 {
		var out []lang.Subst
		headFluent := headFVP.Args[0]
		for gi, g := range def.groundings {
			gr := g.RenameApart(fmt.Sprintf("_g%d", gi))
			s0, ok := lang.NewSubst().UnifyInto(gr.Head.Args[0], headFluent)
			if !ok {
				continue
			}
			substs, err := w.eng.kb.Query(gr.Body, s0)
			if err != nil {
				w.warnf(def.ind, "grounding declaration: %v", err)
				continue
			}
			out = append(out, substs...)
		}
		return out
	}

	// Dedup on the (head, condition) FVP pair, by interned ID: equal IDs
	// are structurally equal terms, which is what the rendered-string key
	// used to test.
	in := w.eng.interner
	seen := map[[2]lang.InternID]bool{}
	var out []lang.Subst
	for _, l := range r.Body {
		if l.Neg || l.Atom.Functor != "holdsFor" || len(l.Atom.Args) != 2 {
			continue
		}
		condFVP := l.Atom.Args[0]
		pred, ok := fvpPred(condFVP)
		if !ok {
			continue
		}
		for _, ent := range w.byFluent[pred] {
			n, ok := lang.NewSubst().UnifyInto(condFVP, ent.fvp)
			if !ok {
				continue
			}
			key := [2]lang.InternID{in.ID(n.Resolve(headFVP)), in.ID(n.Resolve(condFVP))}
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		// A rule whose conditions are all interval constructs or atemporal
		// (unusual) still gets one empty candidate.
		out = append(out, lang.NewSubst())
	}
	return out
}

// solveSDBody evaluates the body of a holdsFor rule under substitution s and
// interval environment env. Like solveConditions, it runs inside an
// evaluation unit and only reads the shared window state.
func (re *ruleEval) solveSDBody(def *fluentDef, lits []lang.Literal, s lang.Subst, env intervalEnv, yield func(lang.Subst, intervalEnv)) {
	if len(lits) == 0 {
		yield(s, env)
		return
	}
	w := re.w
	lit := lits[0]
	rest := lits[1:]
	atom := lit.Atom

	if atom.Kind == lang.Compound && kb.IsBuiltinPred(atom.Functor, len(atom.Args)) {
		substs, _, err := kb.SolveBuiltin(atom, s)
		if err != nil {
			re.warnf(def.ind, "condition %s: %v", atom, err)
			return
		}
		if lit.Neg {
			if len(substs) == 0 {
				re.solveSDBody(def, rest, s, env, yield)
			}
			return
		}
		for _, n := range substs {
			re.solveSDBody(def, rest, n, env, yield)
		}
		return
	}

	switch atom.Functor {
	case "holdsFor":
		if lit.Neg {
			re.warnf(def.ind, "negated holdsFor is not supported; use relative_complement_all")
			return
		}
		if len(atom.Args) != 2 || atom.Args[1].Kind != lang.Var {
			re.warnf(def.ind, "holdsFor condition %s must bind a fresh interval variable", atom)
			return
		}
		ivar := atom.Args[1].Functor
		fvp := s.Resolve(atom.Args[0])
		if fvp.IsGround() {
			n := env.clone()
			n[ivar] = w.listOf(fvp)
			re.solveSDBody(def, rest, s, n, yield)
			return
		}
		pred, _ := fvpPred(fvp)
		for _, ent := range w.byFluent[pred] {
			if n, ok := s.UnifyInto(fvp, ent.fvp); ok {
				ne := env.clone()
				ne[ivar] = ent.list
				re.solveSDBody(def, rest, n, ne, yield)
			}
		}

	case "union_all", "intersect_all":
		if len(atom.Args) != 2 || atom.Args[0].Kind != lang.List || atom.Args[1].Kind != lang.Var {
			re.warnf(def.ind, "malformed interval construct %s", atom)
			return
		}
		lists, ok := re.resolveIntervalLists(def, atom.Args[0].Args, env)
		if !ok {
			return
		}
		var out intervals.List
		if atom.Functor == "union_all" {
			out = intervals.Union(lists...)
		} else {
			out = intervals.Intersect(lists...)
		}
		n := env.clone()
		n[atom.Args[1].Functor] = out
		re.solveSDBody(def, rest, s, n, yield)

	case "relative_complement_all":
		if len(atom.Args) != 3 || atom.Args[0].Kind != lang.Var || atom.Args[1].Kind != lang.List || atom.Args[2].Kind != lang.Var {
			re.warnf(def.ind, "malformed interval construct %s", atom)
			return
		}
		base, ok := env[atom.Args[0].Functor]
		if !ok {
			re.warnf(def.ind, "interval variable %s used before being bound", atom.Args[0])
			return
		}
		subtract, ok := re.resolveIntervalLists(def, atom.Args[1].Args, env)
		if !ok {
			return
		}
		n := env.clone()
		n[atom.Args[2].Functor] = intervals.RelativeComplement(base, subtract...)
		re.solveSDBody(def, rest, s, n, yield)

	default: // atemporal background knowledge
		matches := w.eng.kb.Match(atom, s)
		if lit.Neg {
			if len(matches) > 0 {
				return
			}
			re.solveSDBody(def, rest, s, env, yield)
			return
		}
		if len(matches) == 0 && len(w.eng.kb.FactsOfPred(atom.Pred())) == 0 {
			re.warnf(def.ind, "unknown predicate %s; condition fails", atom.Indicator())
		}
		for _, n := range matches {
			re.solveSDBody(def, rest, n, env, yield)
		}
	}
}

// resolveIntervalLists maps interval variables to their bound lists.
func (re *ruleEval) resolveIntervalLists(def *fluentDef, vars []*lang.Term, env intervalEnv) ([]intervals.List, bool) {
	out := make([]intervals.List, 0, len(vars))
	for _, v := range vars {
		if v.Kind != lang.Var {
			re.warnf(def.ind, "interval construct argument %s is not a variable", v)
			return nil, false
		}
		l, ok := env[v.Functor]
		if !ok {
			re.warnf(def.ind, "interval variable %s used before being bound", v)
			return nil, false
		}
		out = append(out, l)
	}
	return out, true
}
