package rtec

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rtecgen/internal/intervals"
	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

func TestRecognitionWriteCSV(t *testing.T) {
	ed, err := parser.ParseEventDescription(withinAreaED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(20, "leavesArea(v1, a1)"),
		ev(30, "entersArea(v1, a2)"),
		ev(40, "leavesArea(v1, a2)"),
		ev(50, "gap_start(v9)"),
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "fluent,fvp,since,until" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 { // header + two intervals
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	// (since, until] display convention: initiated at 10 and terminated at
	// 20 means (10, 20].
	want := `withinArea/2,"withinArea(v1, anchorage)=true",30,40`
	if lines[1] != want {
		t.Fatalf("row = %q, want %q", lines[1], want)
	}
}

func TestRunWindowsStreamsResults(t *testing.T) {
	ed, err := parser.ParseEventDescription(withinAreaED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(120, "leavesArea(v1, a1)"),
		ev(150, "entersArea(v2, a2)"),
		ev(199, "gap_start(v2)"),
	}
	var windows []WindowResult
	err = e.RunWindows(events, RunOptions{Window: 50}, func(wr WindowResult) error {
		windows = append(windows, wr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 4 { // time-line [10, 200), window 50
		t.Fatalf("windows = %d, want 4", len(windows))
	}
	// Union of the per-window deliveries equals the batch Run result.
	batch, err := e.Run(events, RunOptions{Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	merged := map[string]intervals.List{}
	for _, wr := range windows {
		if wr.QueryTime <= wr.WindowStart {
			t.Fatalf("bad window bounds: %+v", wr)
		}
		for key, list := range wr.Recognised {
			merged[key] = intervals.Union(merged[key], list)
			if wr.FVPs[key] == nil {
				t.Fatalf("missing FVP term for %s", key)
			}
		}
	}
	for _, key := range batch.Keys() {
		if !batch.IntervalsOfKey(key).Equal(merged[key]) {
			t.Fatalf("%s: merged %s vs batch %s", key, merged[key], batch.IntervalsOfKey(key))
		}
	}
	if len(merged) != len(batch.Keys()) {
		t.Fatalf("merged keys %d vs batch %d", len(merged), len(batch.Keys()))
	}
}

func TestRunWindowsEarlyAbort(t *testing.T) {
	ed, err := parser.ParseEventDescription(withinAreaED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(199, "leavesArea(v1, a1)"),
	}
	calls := 0
	sentinel := fmt.Errorf("stop")
	err = e.RunWindows(events, RunOptions{Window: 50}, func(WindowResult) error {
		calls++
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (aborted)", calls)
	}
}
