package rtec

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rtecgen/internal/intervals"
	"rtecgen/internal/stream"
)

func csvOf(t *testing.T, r *Recognition) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// boundedShuffle permutes a sorted stream into an arrival order in which no
// event is displaced by more than maxDelay time-points: each event is
// assigned a random delivery delay in [0, maxDelay] and arrivals are ordered
// by delivery time. At the moment an event with time t arrives, every
// earlier arrival e' has t'+d' <= t+d, so the frontier is at most
// t + maxDelay and the event is never behind the watermark.
func boundedShuffle(r *rand.Rand, s stream.Stream, maxDelay int64) stream.Stream {
	type delayed struct {
		e   stream.Event
		due int64
		idx int
	}
	ds := make([]delayed, len(s))
	for i, e := range s {
		var d int64
		if maxDelay > 0 {
			d = r.Int63n(maxDelay + 1)
		}
		ds[i] = delayed{e: e, due: e.Time + d, idx: i}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].due != ds[j].due {
			return ds[i].due < ds[j].due
		}
		return ds[i].idx < ds[j].idx
	})
	out := make(stream.Stream, len(s))
	for i, d := range ds {
		out[i] = d.e
	}
	return out
}

func TestRunStreamInOrderMatchesRun(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(20, "leavesArea(v1, a1)"),
		ev(30, "entersArea(v1, a2)"),
		ev(40, "gap_start(v1)"),
		ev(50, "entersArea(v2, a1)"),
	}
	for _, window := range []int64{0, 15, 25} {
		want, err := e.Run(events, RunOptions{Window: window})
		if err != nil {
			t.Fatal(err)
		}
		var deliveries int
		got, err := e.RunStream(events, StreamOptions{RunOptions: RunOptions{Window: window}},
			func(wr WindowResult) error {
				if wr.Revision != 0 || wr.Retracted != nil {
					t.Fatalf("in-order delivery revised: %+v", wr)
				}
				deliveries++
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := csvOf(t, want), csvOf(t, got.Recognition); a != b {
			t.Fatalf("window %d: stream CSV differs from in-order run:\n%s\nvs\n%s", window, b, a)
		}
		if deliveries == 0 {
			t.Fatal("no windows delivered")
		}
		s := got.Stats
		if s.Late != 0 || s.Dropped != 0 || s.Duplicates != 0 || s.Revisions != 0 {
			t.Fatalf("in-order stats = %s", s)
		}
		if s.Observed != int64(len(events)) || s.Accepted != int64(len(events)) {
			t.Fatalf("stats = %s, want %d observed/accepted", s, len(events))
		}
	}
}

func TestRunStreamLateEventRevisesWindow(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	opts := StreamOptions{
		RunOptions: RunOptions{Window: 10, Start: 0, End: 40},
		MaxDelay:   20,
	}
	arrivals := stream.Stream{
		ev(2, "entersArea(v1, a1)"),
		ev(25, "gap_start(v9)"),      // frontier 25: windows q=10 and q=20 emit
		ev(15, "leavesArea(v1, a1)"), // late by 10, within bound: revises q=20
	}
	var results []WindowResult
	got, err := e.RunStream(arrivals, opts, func(wr WindowResult) error {
		results = append(results, wr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Deliveries: q=10 and q=20 eagerly, the q=20 revision, then the
	// q=30 and q=40 flush.
	type delivery struct {
		q   int64
		rev int
	}
	var seq []delivery
	for _, wr := range results {
		seq = append(seq, delivery{wr.QueryTime, wr.Revision})
	}
	want := []delivery{{10, 0}, {20, 0}, {20, 1}, {30, 0}, {40, 0}}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("deliveries = %v, want %v", seq, want)
	}

	// The revision retracts the tail the termination at 15 cut off:
	// the first delivery of q=20 reported [10, 20), the revision [10, 16).
	rev := results[2]
	key := "withinArea(v1, fishing)=true"
	if !rev.Recognised[key].Equal(intervals.List{ivl(10, 16)}) {
		t.Fatalf("revised window recognised %s", rev.Recognised[key])
	}
	if !rev.Retracted[key].Equal(intervals.List{ivl(16, 20)}) {
		t.Fatalf("retracted = %v, want [16, 20)", rev.Retracted)
	}

	if got.Stats.Late != 1 || got.Stats.Revisions != 1 || got.Stats.Dropped != 0 {
		t.Fatalf("stats = %s", got.Stats)
	}
	checkIntervals(t, got.Recognition, key, intervals.List{ivl(3, 16)})

	// The final recognition equals the in-order run over the same events.
	sorted := make(stream.Stream, len(arrivals))
	copy(sorted, arrivals)
	sorted.Sort()
	inOrder, err := e.Run(sorted, opts.RunOptions)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := csvOf(t, inOrder), csvOf(t, got.Recognition); a != b {
		t.Fatalf("converged CSV differs:\n%s\nvs\n%s", b, a)
	}
}

func TestRunStreamRevisionCascadesAcrossWindows(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	opts := StreamOptions{
		RunOptions: RunOptions{Window: 10, Start: 0, End: 40},
		MaxDelay:   30,
	}
	// The late entersArea initiates a fluent in window q=10 whose inertia
	// carry-over flows through q=20 and q=30: all three emitted windows
	// must be revised even though only the first contains the event.
	arrivals := stream.Stream{
		ev(1, "gap_start(v9)"),
		ev(35, "gap_start(v8)"), // frontier 35: q=10, 20, 30 emit (all empty for v1)
		ev(5, "entersArea(v1, a1)"),
	}
	var revisedQs []int64
	got, err := e.RunStream(arrivals, opts, func(wr WindowResult) error {
		if wr.Revision > 0 {
			revisedQs = append(revisedQs, wr.QueryTime)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(revisedQs) != fmt.Sprint([]int64{10, 20, 30}) {
		t.Fatalf("revised query times = %v, want [10 20 30]", revisedQs)
	}
	if got.Stats.Revisions != 3 {
		t.Fatalf("stats = %s, want 3 revisions", got.Stats)
	}
	checkIntervals(t, got.Recognition, "withinArea(v1, fishing)=true", intervals.List{ivl(6, 40)})
}

func TestRunStreamDropsTooLateEvents(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	opts := StreamOptions{
		RunOptions: RunOptions{Window: 10, Start: 0, End: 40},
		MaxDelay:   5,
	}
	arrivals := stream.Stream{
		ev(2, "entersArea(v1, a1)"),
		ev(25, "gap_start(v9)"),
		ev(15, "leavesArea(v1, a1)"), // late by 10 > bound 5: dropped
	}
	got, err := e.RunStream(arrivals, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Dropped != 1 || got.Stats.Late != 0 || got.Stats.Revisions != 0 {
		t.Fatalf("stats = %s", got.Stats)
	}
	// The dropped termination never happened: the in-order equivalent is
	// the stream without it.
	want, err := e.Run(stream.Stream{arrivals[0], arrivals[1]}, opts.RunOptions)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := csvOf(t, want), csvOf(t, got.Recognition); a != b {
		t.Fatalf("CSV differs:\n%s\nvs\n%s", b, a)
	}
}

func TestRunStreamCountsDuplicates(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	arrivals := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(10, "entersArea(v1, a1)"),
		ev(20, "leavesArea(v1, a1)"),
		ev(20, "leavesArea(v1, a1)"),
	}
	got, err := e.RunStream(arrivals, StreamOptions{RunOptions: RunOptions{Window: 5}, MaxDelay: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Duplicates != 2 || got.Stats.Accepted != 2 {
		t.Fatalf("stats = %s", got.Stats)
	}
	checkIntervals(t, got.Recognition, "withinArea(v1, fishing)=true", intervals.List{ivl(11, 21)})
}

func TestRunStreamOptionErrors(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	if _, err := e.RunStream(stream.Stream{ev(1, "gap_start(v1)")}, StreamOptions{MaxDelay: -1}, nil); err == nil {
		t.Fatal("negative max delay accepted")
	}
	if _, err := e.RunStream(stream.Stream{ev(1, "gap_start(v1)")},
		StreamOptions{RunOptions: RunOptions{Window: 5, Slide: 10}}, nil); err == nil {
		t.Fatal("slide > window accepted")
	}
}

func TestRunStreamEmptyStream(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	got, err := e.RunStream(nil, StreamOptions{}, func(WindowResult) error {
		t.Fatal("window delivered for empty stream")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys()) != 0 || got.Stats != (StreamStats{}) {
		t.Fatalf("empty stream result = %v, %s", got.Keys(), got.Stats)
	}
}

func TestRunStreamAbortsOnCallbackError(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	events := stream.Stream{
		ev(10, "entersArea(v1, a1)"),
		ev(40, "gap_start(v1)"),
	}
	wantErr := fmt.Errorf("downstream full")
	_, err := e.RunStream(events, StreamOptions{RunOptions: RunOptions{Window: 10}},
		func(WindowResult) error { return wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

// TestPropBoundedShuffleConverges: any arrival permutation in which no event
// is displaced beyond MaxDelay converges to the same final recognition as
// the in-order run, with nothing dropped.
func TestPropBoundedShuffleConverges(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		events := genRandomStream(r, 500)
		events.Sort()
		maxDelay := int64(r.Intn(120))
		window := int64(20 + r.Intn(300))
		arrivals := boundedShuffle(r, events, maxDelay)

		want, err := e.Run(events, RunOptions{Window: window})
		if err != nil {
			return false
		}
		got, err := e.RunStream(arrivals, StreamOptions{
			RunOptions: RunOptions{Window: window},
			MaxDelay:   maxDelay,
		}, nil)
		if err != nil {
			return false
		}
		if got.Stats.Dropped != 0 {
			t.Logf("seed %d: dropped %d events within bound", seed, got.Stats.Dropped)
			return false
		}
		return csvOf(t, want) == csvOf(t, got.Recognition)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
