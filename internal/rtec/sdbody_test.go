package rtec

import (
	"strings"
	"testing"

	"rtecgen/internal/intervals"
	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

// baseSimpleED defines two simple fluents to build SD rules on.
const baseSimpleED = `
inputEvent(on(_)).
inputEvent(off(_)).
inputEvent(in(_, _)).
inputEvent(out(_, _)).

kind(k1, alpha).
kind(k2, beta).

initiatedAt(power(X)=true, T) :- happensAt(on(X), T).
terminatedAt(power(X)=true, T) :- happensAt(off(X), T).

initiatedAt(zone(X, Kind)=true, T) :-
    happensAt(in(X, Z), T),
    kind(Z, Kind).
terminatedAt(zone(X, Kind)=true, T) :-
    happensAt(out(X, Z), T),
    kind(Z, Kind).
`

func runED(t *testing.T, src string, events stream.Stream, strict bool) (*Engine, *Recognition) {
	t.Helper()
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: strict})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return e, rec
}

func baseEvents() stream.Stream {
	return stream.Stream{
		ev(10, "on(x)"),
		ev(20, "in(x, k1)"),
		ev(40, "out(x, k1)"),
		ev(50, "in(x, k2)"),
		ev(70, "out(x, k2)"),
		ev(80, "off(x)"),
		ev(99, "on(y)"),
	}
}

// TestSDNonGroundCondition: a holdsFor condition with an unbound value
// variable enumerates the cached FVPs of the fluent.
func TestSDNonGroundCondition(t *testing.T) {
	src := baseSimpleED + `
holdsFor(anywhere(X, Kind)=true, I) :-
    holdsFor(zone(X, Kind)=true, Iz),
    holdsFor(power(X)=true, Ip),
    intersect_all([Iz, Ip], I).
`
	_, rec := runED(t, src, baseEvents(), true)
	checkIntervals(t, rec, "anywhere(x, alpha)=true", intervals.List{ivl(21, 41)})
	checkIntervals(t, rec, "anywhere(x, beta)=true", intervals.List{ivl(51, 71)})
}

// TestSDBuiltinAndNegationConditions: atemporal negation and comparison
// builtins inside holdsFor bodies.
func TestSDBuiltinAndNegationConditions(t *testing.T) {
	src := baseSimpleED + `
priority(k1, 5).
priority(k2, 1).

holdsFor(important(X, Kind)=true, I) :-
    holdsFor(zone(X, Kind)=true, Iz),
    kind(Z, Kind),
    priority(Z, P),
    P > 3,
    not excluded(Kind),
    union_all([Iz], I).
`
	_, rec := runED(t, src, baseEvents(), false)
	checkIntervals(t, rec, "important(x, alpha)=true", intervals.List{ivl(21, 41)})
	if got := rec.IntervalsOfKey("important(x, beta)=true"); len(got) != 0 {
		t.Fatalf("beta priority 1 must not qualify: %s", got)
	}
}

// TestSDNegatedHoldsForWarns: negated holdsFor is rejected with a warning.
func TestSDNegatedHoldsForWarns(t *testing.T) {
	src := baseSimpleED + `
holdsFor(odd(X)=true, I) :-
    holdsFor(power(X)=true, Ip),
    not holdsFor(zone(X, alpha)=true, Iz),
    union_all([Ip], I).
`
	_, rec := runED(t, src, baseEvents(), false)
	if len(rec.IntervalsOfKey("odd(x)=true")) != 0 {
		t.Fatal("negated holdsFor must fail the rule")
	}
	found := false
	for _, w := range rec.Warnings {
		if strings.Contains(w.Msg, "negated holdsFor") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing warning: %v", rec.Warnings)
	}
}

// TestSDMalformedConstructs: construct arguments that are not lists or
// variables produce warnings, not crashes.
func TestSDMalformedConstructs(t *testing.T) {
	cases := []struct {
		rule, wantWarning string
	}{
		{`holdsFor(bad1(X)=true, I) :-
		    holdsFor(power(X)=true, Ip),
		    union_all(Ip, I).`, "malformed interval construct"},
		{`holdsFor(bad2(X)=true, I) :-
		    holdsFor(power(X)=true, Ip),
		    relative_complement_all([Ip], [Ip], I).`, "malformed interval construct"},
		{`holdsFor(bad3(X)=true, I) :-
		    holdsFor(power(X)=true, Ip),
		    union_all([Iq], I).`, "used before being bound"},
		{`holdsFor(bad4(X)=true, I) :-
		    holdsFor(power(X)=true, Ip),
		    relative_complement_all(Iq, [Ip], I).`, "used before being bound"},
		{`holdsFor(bad5(X)=true, I) :-
		    holdsFor(power(X)=true, Ip),
		    union_all([7], I).`, "is not a variable"},
	}
	for _, c := range cases {
		_, rec := runED(t, baseSimpleED+c.rule, baseEvents(), false)
		found := false
		for _, w := range rec.Warnings {
			if strings.Contains(w.Msg, c.wantWarning) {
				found = true
			}
		}
		if !found {
			t.Errorf("rule %q: missing warning %q in %v", c.rule[:30], c.wantWarning, rec.Warnings)
		}
	}
}

// TestSDHeadIntervalNotProduced: a body that never binds the head interval
// variable warns and produces nothing.
func TestSDHeadIntervalNotProduced(t *testing.T) {
	src := baseSimpleED + `
holdsFor(dangling(X)=true, I) :-
    holdsFor(power(X)=true, Ip),
    union_all([Ip], Iother).
`
	_, rec := runED(t, src, baseEvents(), false)
	if len(rec.IntervalsOfKey("dangling(x)=true")) != 0 {
		t.Fatal("unbound head interval must produce nothing")
	}
	found := false
	for _, w := range rec.Warnings {
		if strings.Contains(w.Msg, "not produced by the body") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing warning: %v", rec.Warnings)
	}
}

// TestSimpleRuleSecondHappensAtUnboundTime: a happensAt condition with a
// fresh time variable scans all events of the indicator.
func TestSimpleRuleSecondHappensAtUnboundTime(t *testing.T) {
	src := `
inputEvent(go(_)).
inputEvent(ack(_)).
inputEvent(halt(_)).

initiatedAt(confirmed(X)=true, T) :-
    happensAt(go(X), T),
    happensAt(ack(X), T2).

terminatedAt(confirmed(X)=true, T) :-
    happensAt(halt(X), T).
`
	events := stream.Stream{
		ev(10, "go(a)"), // a never acked: no initiation
		ev(20, "go(b)"), // b acked (at any time): initiation at 20
		ev(90, "ack(b)"),
		ev(95, "halt(a)"),
		ev(99, "halt(b)"),
	}
	_, rec := runED(t, src, events, true)
	checkIntervals(t, rec, "confirmed(b)=true", intervals.List{ivl(21, 100)})
	if got := rec.IntervalsOfKey("confirmed(a)=true"); len(got) != 0 {
		t.Fatalf("a was never acknowledged: %s", got)
	}
}

// TestCheckSDRuleShapes: load-time validation of statically determined
// definitions.
func TestCheckSDRuleShapes(t *testing.T) {
	cases := []struct {
		src, wantWarning string
	}{
		{`holdsFor(f(X)=true, [1]) :- holdsFor(g(X)=true, I).`, "must be a variable"},
		{`holdsFor(f(X)=true, I).`, "empty body"},
		{`holdsFor(f(X)=true, I) :- happensAt(e(X), T).`, "not allowed in a statically determined"},
		{`holdsFor(f(X)=true, I) :- holdsAt(g(X)=true, T).`, "not allowed in a statically determined"},
	}
	for _, c := range cases {
		ed, err := parser.ParseEventDescription(c.src)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(ed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, w := range e.Warnings() {
			if strings.Contains(w.Msg, c.wantWarning) {
				found = true
			}
		}
		if !found {
			t.Errorf("%q: missing warning %q in %v", c.src, c.wantWarning, e.Warnings())
		}
	}
}

// TestHoldsAtUnboundTimeIsUnsafe: a holdsAt condition whose time-point
// remains unbound fails the rule with a warning — negation-as-failure over
// an unbound time would otherwise succeed vacuously.
func TestHoldsAtUnboundTimeIsUnsafe(t *testing.T) {
	src := baseSimpleED + `
initiatedAt(bogus(X)=true, T) :-
    happensAt(on(X), T),
    not holdsAt(zone(X, alpha)=true, T2).
terminatedAt(bogus(X)=true, T) :-
    happensAt(off(X), T).
`
	_, rec := runED(t, src, baseEvents(), false)
	if got := rec.IntervalsOfKey("bogus(x)=true"); len(got) != 0 {
		t.Fatalf("vacuous negation fired: %s", got)
	}
	found := false
	for _, w := range rec.Warnings {
		if strings.Contains(w.Msg, "unbound time-point") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing unsafe-time warning: %v", rec.Warnings)
	}
}

// TestRunWindowsEmptyStreamNoWindows: no spurious callback on empty input.
func TestRunWindowsEmptyStreamNoWindows(t *testing.T) {
	ed, err := parser.ParseEventDescription(baseSimpleED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := e.RunWindows(nil, RunOptions{Window: 10}, func(WindowResult) error {
		calls++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("calls = %d, want 0", calls)
	}
}
