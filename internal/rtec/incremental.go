package rtec

import (
	"fmt"

	"rtecgen/internal/intervals"
	"rtecgen/internal/lang"
	"rtecgen/internal/stream"
)

// StreamRunner is the incremental face of the streaming engine — the
// shard-service seam. Where RunStream consumes a complete arrival-ordered
// slice in one call, a StreamRunner accepts one arrival at a time (Ingest),
// admits it through the same bounded-delay reorder buffer, delivers and
// revises the same windows, checkpoints on the same cadence, and produces
// the same amalgamated result on Finish. The supervised shard runtime
// (internal/shard) feeds each shard's entity partition through its own
// runner; a runner is not safe for concurrent use.
//
// Because the runner never sees the whole stream, the run geometry cannot
// be derived from it: StreamOptions.Start and End must be set explicitly.
// Every runner over the same explicit bounds plans the identical window
// sequence, which is what lets per-shard results merge deterministically.
type StreamRunner struct {
	st       *streamRun
	donePool func()
	finished bool
}

// NewStreamRunner plans an incremental streaming run. fn (which may be nil)
// receives window deliveries and revisions exactly as in RunStream.
func (e *Engine) NewStreamRunner(opts StreamOptions, fn func(WindowResult) error) (*StreamRunner, error) {
	if opts.Start == 0 && opts.End == 0 {
		return nil, fmt.Errorf("rtec: incremental streaming needs explicit RunOptions.Start/End bounds")
	}
	st, _, err := e.newStreamRun(nil, opts, fn)
	if err != nil {
		return nil, err
	}
	tel := e.opts.Telemetry
	tel.Gauge("rtec.workers").Set(int64(e.workers))
	return &StreamRunner{st: st, donePool: recordPoolStats(tel)}, nil
}

// ResumeStreamRunner rebuilds a runner from a loaded checkpoint — the
// restart path of a supervised shard. Unlike ResumeStream it journals no
// run_start or checkpoint_restore records: the shard runtime stages journal
// records and rolls the uncommitted suffix back before replaying, so a
// crash-and-restart is invisible in the audit trail and the journal stays
// byte-identical to a fault-free run. The caller must re-Ingest the
// arrivals from cp.Consumed onward in the original order.
func (e *Engine) ResumeStreamRunner(cp *Checkpoint, opts StreamOptions, fn func(WindowResult) error) (*StreamRunner, error) {
	r, err := e.NewStreamRunner(opts, fn)
	if err != nil {
		return nil, err
	}
	if err := r.st.restore(cp); err != nil {
		r.st.span.End()
		return nil, err
	}
	r.st.ranStart = true
	e.opts.Telemetry.Counter("rtec.checkpoint.restores").Inc()
	return r, nil
}

// Ingest feeds one arrival through admission, revision, window emission and
// checkpointing. The first call journals the run_start record.
func (r *StreamRunner) Ingest(e stream.Event) error {
	if r.finished {
		return fmt.Errorf("rtec: Ingest after Finish")
	}
	if err := r.st.journalRunStart(); err != nil {
		return err
	}
	return r.st.ingest(e)
}

// Finish ends the stream: the windows the frontier never reached are
// evaluated over everything still buffered (nothing in flight is dropped),
// the run_end record is journalled, and the amalgamated result returned.
func (r *StreamRunner) Finish() (*StreamResult, error) {
	if r.finished {
		return nil, fmt.Errorf("rtec: Finish called twice")
	}
	r.finished = true
	defer r.st.span.End()
	defer r.donePool()
	if err := r.st.journalRunStart(); err != nil {
		return nil, err
	}
	return r.st.finish()
}

// Suspend parks the runner at the current arrival boundary for a graceful
// drain: it writes a suspend checkpoint (StreamOptions.CheckpointPath must
// be set) without counting it as a cadence checkpoint or journalling a
// record, then releases the runner. A runner resumed from that snapshot and
// fed the remaining arrivals produces output byte-identical to an
// uninterrupted run.
func (r *StreamRunner) Suspend() error {
	if r.finished {
		return fmt.Errorf("rtec: Suspend after Finish")
	}
	if err := r.st.writeSuspendCheckpoint(); err != nil {
		return err
	}
	r.finished = true
	r.st.span.End()
	r.donePool()
	return nil
}

// Abort releases the runner's telemetry span without finishing the run,
// after a crash or kill; the runner is dead afterwards.
func (r *StreamRunner) Abort() {
	if r.finished {
		return
	}
	r.finished = true
	r.st.span.End()
	r.donePool()
}

// Consumed returns how many arrivals have been fully processed — the replay
// cursor a resumed runner continues from.
func (r *StreamRunner) Consumed() int { return r.st.consumed }

// Windows returns how many windows have been delivered at least once.
func (r *StreamRunner) Windows() int { return r.st.emitted }

// Checkpoints returns how many snapshots this run has written (including
// those counted by the checkpoint it was resumed from).
func (r *StreamRunner) Checkpoints() int64 { return r.st.stats.Checkpoints }

// EventEntity is the consistent entity key of an arrival — the same hash
// the in-window worker sharding partitions by (the event's first argument,
// or the whole atom for zero-arity events). The shard supervisor routes
// arrivals with it, so an entity's events always land in one partition.
func EventEntity(ev stream.Event) uint64 { return eventEntity(ev) }

// MergeRecognitions unions per-partition recognitions into one result, as
// if a single engine had recognised the concatenated streams: intervals of
// the same fluent-value pair are unioned, warnings are deduplicated in
// order, and the bounds are the widest seen. The shard supervisor merges
// its entity partitions through this; it is exact when every fluent's
// intervals come from one partition (entity-local rules), the same locality
// assumption the PR 5 in-window entity sharding relies on.
func MergeRecognitions(rs ...*Recognition) *Recognition {
	out := &Recognition{
		byKey: map[string]intervals.List{},
		fvps:  map[string]*lang.Term{},
	}
	warnSeen := map[string]bool{}
	for _, rec := range rs {
		if rec == nil {
			continue
		}
		if out.Start == 0 && out.End == 0 || rec.Start < out.Start {
			out.Start = rec.Start
		}
		if rec.End > out.End {
			out.End = rec.End
		}
		for key, ivals := range rec.byKey {
			out.byKey[key] = intervals.Union(out.byKey[key], ivals)
			if _, ok := out.fvps[key]; !ok {
				out.fvps[key] = rec.fvps[key]
			}
		}
		for _, w := range rec.Warnings {
			k := w.Fluent + "|" + w.Msg
			if warnSeen[k] {
				continue
			}
			warnSeen[k] = true
			out.Warnings = append(out.Warnings, w)
		}
	}
	return out
}
