package rtec

import (
	"bytes"
	"path/filepath"
	"testing"

	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
	"rtecgen/internal/telemetry/journal"
)

// lateArrivals is the disordered fixture of the streaming tests: two eager
// emissions, one late revision, two flush deliveries.
func lateArrivals() stream.Stream {
	return stream.Stream{
		ev(2, "entersArea(v1, a1)"),
		ev(25, "gap_start(v9)"),
		ev(15, "leavesArea(v1, a1)"), // late by 10, within bound
	}
}

var lateOpts = StreamOptions{
	RunOptions: RunOptions{Window: 10, Start: 0, End: 40},
	MaxDelay:   20,
}

func TestStreamLagMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := mustEngine(t, withinAreaED, Options{Strict: true, Telemetry: telemetry.New(reg, nil, nil)})
	opts := lateOpts
	opts.SLO = SLOOptions{MaxEmitLag: 5}
	if _, err := e.RunStream(lateArrivals(), opts, nil); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()

	// Frontier stops at 25; with MaxDelay 20 the watermark trails at 5.
	for name, want := range map[string]int64{
		"rtec.stream.frontier":      25,
		"rtec.stream.watermark":     5,
		"rtec.stream.watermark_age": 20,
	} {
		if got := s.Gauges[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if s.Gauges["rtec.reorder.high_water"] < s.Gauges["rtec.reorder.occupancy"] {
		t.Errorf("high_water %d below occupancy %d",
			s.Gauges["rtec.reorder.high_water"], s.Gauges["rtec.reorder.occupancy"])
	}
	if s.Gauges["rtec.reorder.high_water"] != 3 {
		t.Errorf("high_water = %d, want 3 (nothing pruned below watermark 5)", s.Gauges["rtec.reorder.high_water"])
	}

	// Arrival lag: 0 (frontier advance), 0 (frontier advance), 10 (late).
	al := s.Histograms["rtec.stream.arrival_lag"]
	if al.Count != 3 || al.Sum != 10 {
		t.Errorf("arrival_lag count=%d sum=%g, want 3/10", al.Count, al.Sum)
	}

	// Emit lag per delivery: q=10 at frontier 25 lags 15, q=20 lags 5, the
	// q=20 revision lags 5 again, and the q=30/q=40 flushes lag 0.
	el := s.Histograms["rtec.window.emit_lag"]
	if el.Count != 5 || el.Sum != 25 {
		t.Errorf("emit_lag count=%d sum=%g, want 5/25", el.Count, el.Sum)
	}
	if e2e := s.Histograms["rtec.window.e2e_micros"]; e2e.Count != 5 {
		t.Errorf("e2e_micros count = %d, want 5", e2e.Count)
	}

	// Only the q=10 first delivery (lag 15) breaches MaxEmitLag 5; the q=20
	// delivery sits exactly on the objective.
	if got := s.Counters["rtec.slo.breaches.emit_lag"]; got != 1 {
		t.Errorf("slo.breaches.emit_lag = %d, want 1", got)
	}
	if got := s.Counters["rtec.slo.breaches"]; got != 1 {
		t.Errorf("slo.breaches = %d, want 1", got)
	}

	// Per-stratum timing: withinArea is the only fluent, at stratum 0.
	if h := s.Histograms[stratumHistName(0)]; h.Count == 0 {
		t.Errorf("%s never observed", stratumHistName(0))
	}
}

// TestWindowLatencySLOBreaches drives the wall-clock objective with a
// threshold no evaluation can beat (1 µs floor via a 0 limit is disabled, so
// use the smallest enabled value and a real engine evaluation).
func TestWindowLatencySLOBreaches(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := mustEngine(t, withinAreaED, Options{Strict: true, Telemetry: telemetry.New(reg, nil, nil)})
	opts := lateOpts
	opts.SLO = SLOOptions{MaxWindowMicros: 1} // effectively always breached... unless the window evaluates in under a microsecond
	if _, err := e.RunStream(lateArrivals(), opts, nil); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	breaches := s.Counters["rtec.slo.breaches.window_micros"]
	if breaches > 5 {
		t.Errorf("window_micros breaches = %d, more than the 5 deliveries", breaches)
	}
	if s.Counters["rtec.slo.breaches"] != breaches {
		t.Errorf("total breaches %d != window breaches %d", s.Counters["rtec.slo.breaches"], breaches)
	}
}

func runJournal(t *testing.T, opts StreamOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	opts.Journal = journal.NewWriter(&buf, journal.Options{})
	if _, err := e.RunStream(lateArrivals(), opts, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJournalRecordsAndDeterminism(t *testing.T) {
	opts := lateOpts
	opts.SLO = SLOOptions{MaxEmitLag: 5}
	a := runJournal(t, opts)
	b := runJournal(t, opts)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed journals differ:\n%s\nvs\n%s", a, b)
	}

	stats, err := journal.Validate(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("journal invalid: %v\n%s", err, a)
	}
	for typ, want := range map[string]int{
		"run_start":  1,
		"admission":  1, // only the late arrival; in-order admissions are not journalled
		"window":     5, // q=10, q=20, q=20 rev 1, q=30, q=40
		"slo_breach": 1, // q=10 emit lag 15 > 5
		"run_end":    1,
	} {
		if stats.Types[typ] != want {
			t.Errorf("%s records = %d, want %d\n%s", typ, stats.Types[typ], want, a)
		}
	}

	recs, err := journal.Read(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Type != "run_start" || recs[len(recs)-1].Type != "run_end" {
		t.Fatalf("journal framing: first %s, last %s", recs[0].Type, recs[len(recs)-1].Type)
	}

	// The first delivery of q=20 asserts [10, 20); the revision retracts the
	// tail the late termination at 15 cut off and asserts nothing new.
	var first, revision string
	for _, rec := range recs {
		if rec.Type != "window" || !bytes.Contains(rec.Data, []byte(`"query_time":20`)) {
			continue
		}
		if bytes.Contains(rec.Data, []byte(`"revision":1`)) {
			revision = string(rec.Data)
		} else {
			first = string(rec.Data)
		}
	}
	if first == "" || revision == "" {
		t.Fatalf("missing q=20 deliveries in journal:\n%s", a)
	}
	if want := `"asserted":{"withinArea(v1, fishing)=true":[[10,20]]}`; !bytes.Contains([]byte(first), []byte(want)) {
		t.Errorf("first delivery missing %s:\n%s", want, first)
	}
	if want := `"retracted":{"withinArea(v1, fishing)=true":[[16,20]]}`; !bytes.Contains([]byte(revision), []byte(want)) {
		t.Errorf("revision record missing %s:\n%s", want, revision)
	}
	if bytes.Contains([]byte(revision), []byte(`"asserted"`)) {
		t.Errorf("pure retraction journalled an assertion:\n%s", revision)
	}
}

func TestJournalCheckpointAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opts := lateOpts
	opts.CheckpointPath = path
	opts.CheckpointEvery = 1

	var first bytes.Buffer
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	runOpts := opts
	runOpts.Journal = journal.NewWriter(&first, journal.Options{})
	// Deliveries q=10 and q=20 ride arrival 2 (then its checkpoint lands);
	// the revision on arrival 3 is delivery 3, where the crash hits.
	if _, err := e.RunStream(lateArrivals(), runOpts, crashAfter(3)); err == nil {
		t.Fatal("crash callback did not abort the run")
	}
	stats, err := journal.Validate(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("crashed run journal invalid: %v\n%s", err, first.Bytes())
	}
	if stats.Types["checkpoint"] == 0 {
		t.Fatalf("no checkpoint records before the crash:\n%s", first.Bytes())
	}

	var resumed bytes.Buffer
	resOpts := opts
	resOpts.Journal = journal.NewWriter(&resumed, journal.Options{})
	if _, err := e.ResumeStream(path, lateArrivals(), resOpts, nil); err != nil {
		t.Fatal(err)
	}
	stats, err = journal.Validate(bytes.NewReader(resumed.Bytes()))
	if err != nil {
		t.Fatalf("resumed journal invalid: %v\n%s", err, resumed.Bytes())
	}
	if stats.Types["checkpoint_restore"] != 1 || stats.Types["run_start"] != 1 || stats.Types["run_end"] != 1 {
		t.Fatalf("resumed journal types = %v\n%s", stats.Types, resumed.Bytes())
	}
	recs, err := journal.Read(bytes.NewReader(resumed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Type != "run_start" || recs[1].Type != "checkpoint_restore" {
		t.Fatalf("resumed journal starts %s, %s; want run_start, checkpoint_restore", recs[0].Type, recs[1].Type)
	}
}

func TestReorderOccupancyHighWater(t *testing.T) {
	r := stream.NewReorder(100)
	for i, e := range lateArrivals() {
		r.Push(e)
		if r.Occupancy() != i+1 {
			t.Fatalf("occupancy after %d pushes = %d", i+1, r.Occupancy())
		}
	}
	if r.HighWater() != 3 {
		t.Fatalf("high water = %d, want 3", r.HighWater())
	}
	r.Drop(20)
	if r.Occupancy() != 1 {
		t.Fatalf("occupancy after drop = %d, want 1", r.Occupancy())
	}
	if r.HighWater() != 3 {
		t.Fatalf("high water after drop = %d, want 3 (monotone)", r.HighWater())
	}
}
