package rtec

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtecgen/internal/stream"
)

// errCrash simulates a process kill from inside the delivery callback.
var errCrash = errors.New("simulated crash")

// crashAfter returns a delivery callback that fails after n windows.
func crashAfter(n int) func(WindowResult) error {
	return func(WindowResult) error {
		n--
		if n < 0 {
			return errCrash
		}
		return nil
	}
}

func chaosArrivals(t *testing.T, seed int64, maxDelay int64) stream.Stream {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var events stream.Stream
	for i := 0; i < 120; i++ {
		events = append(events, genRandomStream(r, 1000)...)
		if len(events) >= 120 {
			break
		}
	}
	events.Sort()
	return boundedShuffle(r, events, maxDelay)
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	arrivals := chaosArrivals(t, 7, 60)
	base := StreamOptions{
		RunOptions: RunOptions{Window: 100},
		MaxDelay:   60,
	}

	// Baseline: the uninterrupted run.
	want, err := e.RunStream(arrivals, base, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint every 2 windows, crash after 3 windows.
	opts := base
	opts.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
	opts.CheckpointEvery = 2
	if _, err := e.RunStream(arrivals, opts, crashAfter(3)); !errors.Is(err, errCrash) {
		t.Fatalf("interrupted run err = %v, want crash", err)
	}
	cp, err := LoadCheckpoint(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Windows == 0 || cp.Consumed == 0 {
		t.Fatalf("checkpoint made no progress: %+v", cp)
	}
	if cp.Consumed >= len(arrivals) {
		t.Fatalf("checkpoint consumed the whole stream (%d of %d): crash came too late to test resume", cp.Consumed, len(arrivals))
	}

	// Resume: the final recognition is byte-identical to the baseline.
	got, err := e.ResumeStream(opts.CheckpointPath, arrivals, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := csvOf(t, want.Recognition), csvOf(t, got.Recognition); a != b {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n%s\nvs\n%s", b, a)
	}
	// Disorder stats cover the whole stream, not just the resumed tail.
	if got.Stats.Observed != want.Stats.Observed ||
		got.Stats.Accepted != want.Stats.Accepted ||
		got.Stats.Late != want.Stats.Late ||
		got.Stats.Dropped != want.Stats.Dropped ||
		got.Stats.Duplicates != want.Stats.Duplicates ||
		got.Stats.Revisions != want.Stats.Revisions {
		t.Fatalf("resumed stats = %s, uninterrupted = %s", got.Stats, want.Stats)
	}
	if got.Stats.Checkpoints == 0 {
		t.Fatal("resumed run lost the checkpoint count")
	}
}

func TestCheckpointResumeAtEveryCrashPoint(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	arrivals := chaosArrivals(t, 11, 40)
	base := StreamOptions{
		RunOptions: RunOptions{Window: 80},
		MaxDelay:   40,
	}
	want, err := e.RunStream(arrivals, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := csvOf(t, want.Recognition)

	var windows int
	if _, err := e.RunStream(arrivals, base, func(WindowResult) error { windows++; return nil }); err != nil {
		t.Fatal(err)
	}
	for crash := 1; crash < windows; crash++ {
		opts := base
		opts.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
		opts.CheckpointEvery = 1
		if _, err := e.RunStream(arrivals, opts, crashAfter(crash)); !errors.Is(err, errCrash) {
			t.Fatalf("crash %d: err = %v", crash, err)
		}
		got, err := e.ResumeStream(opts.CheckpointPath, arrivals, opts, nil)
		if err != nil {
			t.Fatalf("crash %d: resume: %v", crash, err)
		}
		if csvOf(t, got.Recognition) != wantCSV {
			t.Fatalf("crash after %d windows: resumed CSV differs", crash)
		}
	}
}

// writeTestCheckpoint runs a short checkpointed stream and returns the path.
func writeTestCheckpoint(t *testing.T, e *Engine) (string, StreamOptions, stream.Stream) {
	t.Helper()
	arrivals := stream.Stream{
		ev(2, "entersArea(v1, a1)"),
		ev(25, "gap_start(v9)"),
		ev(35, "leavesArea(v1, a1)"),
	}
	opts := StreamOptions{
		RunOptions:     RunOptions{Window: 10, Start: 0, End: 40},
		MaxDelay:       20,
		CheckpointPath: filepath.Join(t.TempDir(), "run.ckpt"),
	}
	if _, err := e.RunStream(arrivals, opts, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(opts.CheckpointPath); err != nil {
		t.Fatal(err)
	}
	return opts.CheckpointPath, opts, arrivals
}

func TestLoadCheckpointRejectsCorruption(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	path, _, _ := writeTestCheckpoint(t, e)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func(cf checkpointFile) checkpointFile, wantMsg string) {
		t.Helper()
		out, err := json.Marshal(mutate(f))
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), name+".ckpt")
		if err := os.WriteFile(p, out, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil || !strings.Contains(err.Error(), wantMsg) {
			t.Fatalf("%s: err = %v, want %q", name, err, wantMsg)
		}
	}

	corrupt("magic", func(cf checkpointFile) checkpointFile {
		cf.Magic = "not-a-checkpoint"
		return cf
	}, "not an RTEC checkpoint")
	corrupt("version", func(cf checkpointFile) checkpointFile {
		cf.Version = checkpointVersion + 1
		return cf
	}, "format version")
	corrupt("payload", func(cf checkpointFile) checkpointFile {
		// Flip one byte of the payload without touching the checksum.
		p := append(json.RawMessage(nil), cf.Payload...)
		p[len(p)/2] ^= 0x01
		cf.Payload = p
		return cf
	}, "checksum mismatch")

	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing checkpoint loaded")
	}
	garbled := filepath.Join(t.TempDir(), "garbled.ckpt")
	if err := os.WriteFile(garbled, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(garbled); err == nil {
		t.Fatal("garbled checkpoint loaded")
	}
}

func TestResumeRejectsMismatchedRun(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	path, opts, arrivals := writeTestCheckpoint(t, e)

	// Different event description.
	other := mustEngine(t, withinAreaED+"\ninputEvent(extra(_)).\n", Options{Strict: true})
	if _, err := other.ResumeStream(path, arrivals, opts, nil); err == nil ||
		!strings.Contains(err.Error(), "different event description") {
		t.Fatalf("ED mismatch err = %v", err)
	}

	// Different window geometry.
	badGeom := opts
	badGeom.Window = 20
	if _, err := e.ResumeStream(path, arrivals, badGeom, nil); err == nil ||
		!strings.Contains(err.Error(), "geometry") {
		t.Fatalf("geometry mismatch err = %v", err)
	}

	// Different delay bound.
	badDelay := opts
	badDelay.MaxDelay = 5
	if _, err := e.ResumeStream(path, arrivals, badDelay, nil); err == nil ||
		!strings.Contains(err.Error(), "max delay") {
		t.Fatalf("max delay mismatch err = %v", err)
	}

	// Stream shorter than the checkpoint's progress.
	if _, err := e.ResumeStream(path, arrivals[:1], opts, nil); err == nil ||
		!strings.Contains(err.Error(), "arrivals") {
		t.Fatalf("short stream err = %v", err)
	}
}

func TestCheckpointWriteIsAtomic(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	path, _, _ := writeTestCheckpoint(t, e)
	// Only the current and previous generations plus the delta sidecar
	// remain next to the checkpoint — no leftover temp files.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	for _, ent := range entries {
		switch ent.Name() {
		case base, base + checkpointPrevSuffix, base + deltaSidecarSuffix:
		default:
			t.Fatalf("unexpected file %s next to the checkpoint", ent.Name())
		}
	}
	// Both generations must load and verify.
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path + checkpointPrevSuffix); err != nil {
		t.Fatal(err)
	}
}

// TestChaosShuffleKillResume is the pinned deterministic chaos test: a fixed
// seed shuffles a stream within the delay bound, the run is killed mid-way
// and resumed from its checkpoint, and both the disorder statistics and the
// final recognition CSV are pinned against the in-order baseline.
func TestChaosShuffleKillResume(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	r := rand.New(rand.NewSource(42))
	var events stream.Stream
	for len(events) < 150 {
		events = append(events, genRandomStream(r, 2000)...)
	}
	events.Sort()
	const maxDelay = 150
	shuffled := boundedShuffle(r, events, maxDelay)
	// Inject exact duplicates at deterministic positions, adjacent to their
	// originals so they are still buffered when the copy arrives.
	var arrivals stream.Stream
	for i, e := range shuffled {
		arrivals = append(arrivals, e)
		if i%40 == 5 {
			arrivals = append(arrivals, e)
		}
	}
	// Tail a few hopelessly stale arrivals: far behind the final frontier,
	// they must be dropped, never reordered into the past.
	arrivals = append(arrivals, events[0], events[1], events[2])

	inOrder, err := e.Run(events, RunOptions{Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := csvOf(t, inOrder)

	opts := StreamOptions{
		RunOptions:      RunOptions{Window: 200},
		MaxDelay:        maxDelay,
		CheckpointPath:  filepath.Join(t.TempDir(), "chaos.ckpt"),
		CheckpointEvery: 2,
	}
	if _, err := e.RunStream(arrivals, opts, crashAfter(4)); !errors.Is(err, errCrash) {
		t.Fatalf("kill err = %v", err)
	}
	got, err := e.ResumeStream(opts.CheckpointPath, arrivals, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	if csvOf(t, got.Recognition) != wantCSV {
		t.Fatalf("chaos run CSV differs from in-order baseline:\n%s\nvs\n%s", csvOf(t, got.Recognition), wantCSV)
	}
	// Pinned counters for seed 42: the run is fully deterministic, so any
	// change here is a behaviour change, not flakiness.
	gotLine := fmt.Sprintf("observed=%d accepted=%d late=%d duplicates=%d dropped=%d revisions=%d",
		got.Stats.Observed, got.Stats.Accepted, got.Stats.Late,
		got.Stats.Duplicates, got.Stats.Dropped, got.Stats.Revisions)
	wantLine := "observed=169 accepted=162 late=98 duplicates=4 dropped=3 revisions=10"
	if gotLine != wantLine {
		t.Fatalf("pinned stats changed:\n have %s\n want %s", gotLine, wantLine)
	}
}

// TestResumeFromTruncatedCheckpoint is the torn-write regression test: the
// current checkpoint generation is truncated mid-file (as a crash during the
// write would leave it without the atomic rename, or a bad disk after it),
// and resume must fall back to the previous generation and still reproduce
// the uninterrupted run byte for byte.
func TestResumeFromTruncatedCheckpoint(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	arrivals := chaosArrivals(t, 7, 60)
	base := StreamOptions{
		RunOptions: RunOptions{Window: 100},
		MaxDelay:   60,
	}
	want, err := e.RunStream(arrivals, base, nil)
	if err != nil {
		t.Fatal(err)
	}

	opts := base
	opts.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
	opts.CheckpointEvery = 1
	if _, err := e.RunStream(arrivals, opts, crashAfter(3)); !errors.Is(err, errCrash) {
		t.Fatalf("interrupted run err = %v, want crash", err)
	}

	// Tear the current generation in half.
	raw, err := os.ReadFile(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opts.CheckpointPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(opts.CheckpointPath); err == nil {
		t.Fatal("truncated checkpoint loaded")
	}
	cp, from, err := LoadCheckpointWithFallback(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if from != opts.CheckpointPath+checkpointPrevSuffix {
		t.Fatalf("fallback loaded %s", from)
	}
	if cp.Windows == 0 {
		t.Fatal("previous generation made no progress")
	}

	got, err := e.ResumeStream(opts.CheckpointPath, arrivals, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := csvOf(t, want.Recognition), csvOf(t, got.Recognition); a != b {
		t.Fatalf("resume from previous generation differs:\n%s\nvs\n%s", b, a)
	}

	// With both generations torn (the resumed run above rewrote fresh
	// snapshots, so tear both again), resume reports both.
	if err := os.WriteFile(opts.CheckpointPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opts.CheckpointPath+checkpointPrevSuffix, raw[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpointWithFallback(opts.CheckpointPath); err == nil ||
		!strings.Contains(err.Error(), "previous generation") {
		t.Fatalf("double corruption err = %v", err)
	}
}
