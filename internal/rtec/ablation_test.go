package rtec

import (
	"testing"

	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

// hierarchyED defines a three-level hierarchy so the caching ablation has
// shared dependencies to recompute: two simple fluents, two middle
// statically determined fluents over them, and a top fluent over the middle
// ones.
const hierarchyED = `
inputEvent(a_start(_)).
inputEvent(a_end(_)).
inputEvent(b_start(_)).
inputEvent(b_end(_)).

initiatedAt(a(X)=true, T) :- happensAt(a_start(X), T).
terminatedAt(a(X)=true, T) :- happensAt(a_end(X), T).
initiatedAt(b(X)=true, T) :- happensAt(b_start(X), T).
terminatedAt(b(X)=true, T) :- happensAt(b_end(X), T).

holdsFor(mid1(X)=true, I) :-
    holdsFor(a(X)=true, Ia),
    holdsFor(b(X)=true, Ib),
    union_all([Ia, Ib], I).

holdsFor(mid2(X)=true, I) :-
    holdsFor(a(X)=true, Ia),
    holdsFor(b(X)=true, Ib),
    intersect_all([Ia, Ib], I).

holdsFor(top(X)=true, I) :-
    holdsFor(mid1(X)=true, I1),
    holdsFor(mid2(X)=true, I2),
    relative_complement_all(I1, [I2], I).
`

func hierarchyEvents() stream.Stream {
	var s stream.Stream
	for _, e := range []struct {
		t   int64
		src string
	}{
		{10, "a_start(x)"}, {50, "a_end(x)"},
		{30, "b_start(x)"}, {80, "b_end(x)"},
		{10, "a_start(y)"}, {90, "a_end(y)"},
		{95, "b_start(z)"}, {99, "b_end(z)"},
	} {
		s = append(s, stream.Event{Time: e.t, Atom: parser.MustParseTerm(e.src)})
	}
	return s
}

// TestCachingAblationSameResults: the uncached engine must recognise
// exactly the same intervals as the cached one — the ablation only changes
// the amount of recomputation.
func TestCachingAblationSameResults(t *testing.T) {
	ed, err := parser.ParseEventDescription(hierarchyED)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := New(ed, Options{Strict: true, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	events := hierarchyEvents()
	for _, window := range []int64{0, 40} {
		rc, err := cached.Run(events, RunOptions{Window: window})
		if err != nil {
			t.Fatal(err)
		}
		ru, err := uncached.Run(events, RunOptions{Window: window})
		if err != nil {
			t.Fatal(err)
		}
		if len(rc.Keys()) != len(ru.Keys()) {
			t.Fatalf("window=%d: keys %v vs %v", window, rc.Keys(), ru.Keys())
		}
		for _, key := range rc.Keys() {
			if !rc.IntervalsOfKey(key).Equal(ru.IntervalsOfKey(key)) {
				t.Fatalf("window=%d: %s: cached %s vs uncached %s",
					window, key, rc.IntervalsOfKey(key), ru.IntervalsOfKey(key))
			}
		}
	}
}

func TestHierarchySemantics(t *testing.T) {
	ed, err := parser.ParseEventDescription(hierarchyED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e.Run(hierarchyEvents(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// a(x): [11,51), b(x): [31,81).
	// mid1 = union = [11,81); mid2 = intersect = [31,51);
	// top = mid1 \ mid2 = [11,31) + [51,81).
	got := rec.IntervalsOfKey("top(x)=true")
	want := "[(10,30], (50,80]]"
	if got.String() != want {
		t.Fatalf("top(x) = %s, want %s", got, want)
	}
	// y has only a: mid1 = a, mid2 empty, top = a.
	if rec.IntervalsOfKey("top(y)=true").String() != "[(10,90]]" {
		t.Fatalf("top(y) = %s", rec.IntervalsOfKey("top(y)=true"))
	}
}

func TestDepsClosure(t *testing.T) {
	ed, err := parser.ParseEventDescription(hierarchyED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	deps := e.depsClosure("top/1")
	want := map[string]bool{"a/1": true, "b/1": true, "mid1/1": true, "mid2/1": true}
	if len(deps) != len(want) {
		t.Fatalf("deps = %v", deps)
	}
	for _, d := range deps {
		if !want[d] {
			t.Fatalf("unexpected dep %s", d)
		}
	}
	// Stratified: a and b before mid1 and mid2.
	pos := map[string]int{}
	for i, d := range deps {
		pos[d] = i
	}
	if pos["a/1"] > pos["mid1/1"] || pos["b/1"] > pos["mid2/1"] {
		t.Fatalf("deps not in stratum order: %v", deps)
	}
	if got := e.depsClosure("a/1"); len(got) != 0 {
		t.Fatalf("leaf deps = %v", got)
	}
}
