package rtec

import (
	"fmt"
	"math/rand"
	"testing"

	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

// crossShardED is the fuzz corpus event description for the worker-sharding
// path: fluents of several entities feed each other across strata, so the
// effects of units evaluated on different shards must merge correctly. The
// pair fluent is anchored on two-entity events (sharded by the first
// argument) but conditioned on the single-entity p fluent, and the top-level
// busy fluent unions intervals produced by both.
const crossShardED = `
inputEvent(p_start(_)).
inputEvent(p_end(_)).
inputEvent(q_start(_, _)).
inputEvent(q_end(_, _)).

initiatedAt(p(X)=true, T) :- happensAt(p_start(X), T).
terminatedAt(p(X)=true, T) :- happensAt(p_end(X), T).

initiatedAt(pair(X, Y)=true, T) :-
    happensAt(q_start(X, Y), T),
    holdsAt(p(X)=true, T).
terminatedAt(pair(X, Y)=true, T) :- happensAt(q_end(X, Y), T).
terminatedAt(pair(X, Y)=true, T) :- happensAt(p_end(X), T).

holdsFor(busy(X)=true, I) :-
    holdsFor(p(X)=true, Ip),
    holdsFor(pair(X, b1)=true, I1),
    union_all([Ip, I1], I).
`

// genCrossShardStream derives a random event stream over crossShardED's
// input events: enough distinct entities that an 8-way shard split puts
// interdependent groundings on different workers.
func genCrossShardStream(r *rand.Rand, horizon int64) stream.Stream {
	as := []string{"a1", "a2", "a3", "a4", "a5", "a6"}
	bs := []string{"b1", "b2", "b3"}
	var s stream.Stream
	n := 10 + r.Intn(50)
	for i := 0; i < n; i++ {
		t := int64(r.Intn(int(horizon)))
		a := as[r.Intn(len(as))]
		var src string
		switch r.Intn(4) {
		case 0:
			src = fmt.Sprintf("p_start(%s)", a)
		case 1:
			src = fmt.Sprintf("p_end(%s)", a)
		case 2:
			src = fmt.Sprintf("q_start(%s, %s)", a, bs[r.Intn(len(bs))])
		default:
			src = fmt.Sprintf("q_end(%s, %s)", a, bs[r.Intn(len(bs))])
		}
		s = append(s, stream.Event{Time: t, Atom: parser.MustParseTerm(src)})
	}
	return s
}

// FuzzWorkersEquivalence drives the parallel and the sequential evaluator
// over the same randomly derived stream and window geometry and requires
// byte-identical recognition, including warning order. The corpus seeds a
// mixed-entity multi-stratum event description so cross-shard dependency
// merging is exercised from the first run.
func FuzzWorkersEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 987654321} {
		f.Add(seed)
	}
	ed, err := parser.ParseEventDescription(crossShardED)
	if err != nil {
		f.Fatal(err)
	}
	seq, err := New(ed, Options{Strict: true, Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	par, err := New(ed, Options{Strict: true, Workers: 8})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		events := genCrossShardStream(r, 500)
		window := int64(20 + r.Intn(300))
		a, err1 := seq.Run(events, RunOptions{Window: window})
		b, err2 := par.Run(events, RunOptions{Window: window})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: workers=1 %v, workers=8 %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if fa, fb := recognitionFingerprint(t, a), recognitionFingerprint(t, b); fa != fb {
			t.Fatalf("seed %d window %d: parallel output differs:\n--- workers=1\n%s\n--- workers=8\n%s",
				seed, window, fa, fb)
		}
	})
}
