package rtec

import (
	"fmt"
	"time"

	"rtecgen/internal/intervals"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
	"rtecgen/internal/telemetry/journal"
)

// SLOOptions set the streaming-lag service-level objectives of a run. A
// breach increments rtec.slo.breaches (plus a per-objective counter); the
// run itself is never interrupted — SLOs observe, operators decide.
type SLOOptions struct {
	// MaxEmitLag bounds the event-time lag of a window's first delivery:
	// frontier minus query time at the moment the window is emitted, in
	// time-points. The lag is computed from event times only, so breaches
	// are deterministic and are also recorded in the audit journal. Zero
	// disables the objective.
	MaxEmitLag int64
	// MaxWindowMicros bounds the wall-clock latency of evaluating and
	// delivering one window, in microseconds. Wall readings are
	// nondeterministic, so breaches increment counters only and never reach
	// the journal. Zero disables the objective.
	MaxWindowMicros int64
}

// lagBounds bucket event-time lags (time-points, not wall time): tight at
// the in-order end, decade-spaced into the deep-disorder tail.
var lagBounds = []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// streamObs carries the per-run observability state of a streaming run: the
// lag instruments (hoisted once — a registry lookup takes the registry
// mutex, so the ingest hot path must touch only the lock-free instruments),
// the SLO thresholds and the optional audit journal.
type streamObs struct {
	frontier   *telemetry.Gauge
	watermark  *telemetry.Gauge
	wmAge      *telemetry.Gauge
	occupancy  *telemetry.Gauge
	highWater  *telemetry.Gauge
	arrivalLag *telemetry.Histogram
	emitLag    *telemetry.Histogram
	e2eMicros  *telemetry.Histogram
	sloEmit    *telemetry.Counter
	sloWindow  *telemetry.Counter
	sloTotal   *telemetry.Counter

	slo     SLOOptions
	journal *journal.Writer
}

// newStreamObs resolves the lag instruments and registers their help texts.
// tel may be nil (observability disabled): every instrument is then nil and
// every observation degrades to a no-op, but the journal still records.
func newStreamObs(tel *telemetry.Telemetry, slo SLOOptions, jw *journal.Writer) *streamObs {
	var reg *telemetry.Registry
	if tel != nil {
		reg = tel.Registry
	}
	for name, help := range map[string]string{
		"rtec.stream.frontier":            "event-time frontier: maximum event time admitted so far",
		"rtec.stream.watermark":           "watermark (frontier minus the bounded delay): the past is closed below it",
		"rtec.stream.watermark_age":       "frontier minus watermark, in time-points (the revisable span)",
		"rtec.reorder.occupancy":          "events currently held in the reorder buffer",
		"rtec.reorder.high_water":         "maximum reorder-buffer occupancy observed this run",
		"rtec.stream.arrival_lag":         "event-time lag of each arrival behind the frontier, in time-points",
		"rtec.window.emit_lag":            "frontier minus query time at each window delivery, in time-points",
		"rtec.window.e2e_micros":          "wall-clock latency of evaluating and delivering one window",
		"rtec.slo.breaches":               "SLO breaches of any objective",
		"rtec.slo.breaches.emit_lag":      "window deliveries whose event-time emit lag exceeded the objective",
		"rtec.slo.breaches.window_micros": "window deliveries whose wall-clock latency exceeded the objective",
		"rtec.windows.evaluated":          "window evaluations, including re-evaluations forced by late events",
		"rtec.events.ingested":            "events admitted into the run (in-order plus late-within-bound)",
		"rtec.revisions":                  "re-deliveries of already-emitted windows caused by late events",
		"rtec.delta.reused":               "anchor events replayed from the previous window's cached rule effects",
		"rtec.delta.dirty":                "anchor events recomputed because the slide admitted or invalidated them",
		"rtec.delta.expired":              "cached anchor times dropped at the expired left edge of the slide",
		"rtec.delta.reuse_ratio":          "percentage of anchor-event work avoided by delta reuse in the last window",
		"rtec.delta.sidecar_restores":     "delta sidecars restored next to a checkpoint (warm incremental resume)",
	} {
		reg.Describe(name, help)
	}
	o := &streamObs{slo: slo, journal: jw}
	if reg != nil {
		o.frontier = reg.Gauge("rtec.stream.frontier")
		o.watermark = reg.Gauge("rtec.stream.watermark")
		o.wmAge = reg.Gauge("rtec.stream.watermark_age")
		o.occupancy = reg.Gauge("rtec.reorder.occupancy")
		o.highWater = reg.Gauge("rtec.reorder.high_water")
		o.arrivalLag = reg.Histogram("rtec.stream.arrival_lag", lagBounds)
		o.emitLag = reg.Histogram("rtec.window.emit_lag", lagBounds)
		o.e2eMicros = reg.Histogram("rtec.window.e2e_micros", nil)
		o.sloEmit = reg.Counter("rtec.slo.breaches.emit_lag")
		o.sloWindow = reg.Counter("rtec.slo.breaches.window_micros")
		o.sloTotal = reg.Counter("rtec.slo.breaches")
	}
	return o
}

// --- journal payloads ------------------------------------------------------
//
// Every payload is built from event-time state only (no wall readings, no
// map iteration orders — encoding/json sorts map keys), so a journal is as
// deterministic as the recognition itself.

type journalRunStart struct {
	EDSum    string `json:"ed_sum"`
	Windows  int    `json:"windows"`
	Window   int64  `json:"window"`
	Slide    int64  `json:"slide"`
	Start    int64  `json:"start"`
	End      int64  `json:"end"`
	MaxDelay int64  `json:"max_delay"`
	// Consumed is the resume point: 0 for a fresh run, the checkpoint's
	// arrival count for a resumed one.
	Consumed int `json:"consumed"`
}

// journalAdmission records one degradation verdict of the reorder buffer.
// In-order admissions are not journalled: they are the normal case, counted
// by the metrics, and would dwarf the audit trail.
type journalAdmission struct {
	T       int64  `json:"t"`
	Atom    string `json:"atom"`
	Verdict string `json:"verdict"`
}

type journalWindow struct {
	Index       int   `json:"index"`
	WindowStart int64 `json:"window_start"`
	QueryTime   int64 `json:"query_time"`
	Revision    int   `json:"revision"`
	// EmitLag is frontier minus query time at delivery (0 when the frontier
	// never reached the query time, i.e. end-of-stream flush).
	EmitLag   int64 `json:"emit_lag"`
	Fluents   int   `json:"fluents"`
	Intervals int64 `json:"intervals"`
	// Asserted holds the intervals this delivery adds over the previous one
	// (everything recognised, for a first delivery); Retracted the intervals
	// the previous delivery reported that no longer hold. Keyed by FVP.
	Asserted  map[string][][2]int64 `json:"asserted,omitempty"`
	Retracted map[string][][2]int64 `json:"retracted,omitempty"`
}

type journalCheckpoint struct {
	Consumed int `json:"consumed"`
	Windows  int `json:"windows"`
	Bytes    int `json:"bytes"`
}

type journalRestore struct {
	Consumed int `json:"consumed"`
	Windows  int `json:"windows"`
}

type journalSLOBreach struct {
	Kind  string `json:"kind"`
	Index int    `json:"index"`
	Lag   int64  `json:"lag"`
	Limit int64  `json:"limit"`
}

type journalRunEnd struct {
	Observed    int64 `json:"observed"`
	Accepted    int64 `json:"accepted"`
	Late        int64 `json:"late"`
	Duplicates  int64 `json:"duplicates"`
	Dropped     int64 `json:"dropped"`
	Revisions   int64 `json:"revisions"`
	Checkpoints int64 `json:"checkpoints"`
}

// ivalsOf flattens an interval map into the journal's [start, end) form.
func ivalsOf(m map[string]intervals.List) map[string][][2]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string][][2]int64, len(m))
	for k, list := range m {
		pairs := make([][2]int64, 0, len(list))
		for _, iv := range list {
			pairs = append(pairs, [2]int64{iv.Start, iv.End})
		}
		out[k] = pairs
	}
	return out
}

// --- streamRun observation hooks -------------------------------------------

// journalRunStart records the run plan once: ResumeStream journals it ahead
// of its checkpoint_restore record, the generic consume path on entry.
func (st *streamRun) journalRunStart() error {
	if st.ranStart {
		return nil
	}
	st.ranStart = true
	return st.obs.journal.Append("run_start", journalRunStart{
		EDSum:   st.eng.edFingerprint(),
		Windows: st.tl.n,
		Window:  st.tl.window, Slide: st.tl.slide,
		Start: st.tl.start, End: st.tl.end,
		MaxDelay: st.opts.MaxDelay,
		Consumed: st.consumed,
	})
}

// observeAdmission updates the lag gauges after one Push and journals
// degradation verdicts (late, duplicate, too-late).
func (st *streamRun) observeAdmission(e stream.Event, verdict stream.Admission) error {
	o := st.obs
	if frontier, ok := st.reorder.Frontier(); ok {
		wm, _ := st.reorder.Watermark()
		o.frontier.Set(frontier)
		o.watermark.Set(wm)
		o.wmAge.Set(frontier - wm)
		if lag := frontier - e.Time; lag >= 0 {
			o.arrivalLag.Observe(float64(lag))
		}
	}
	o.occupancy.Set(int64(st.reorder.Occupancy()))
	o.highWater.Set(int64(st.reorder.HighWater()))
	if verdict == stream.Admitted {
		return nil
	}
	return o.journal.Append("admission", journalAdmission{
		T: e.Time, Atom: e.Atom.String(), Verdict: verdict.String(),
	})
}

// observeDelivery records one window delivery: the end-to-end wall latency,
// the event-time emit lag, the SLO verdicts, and the journal window record
// with the assertion/retraction diff. prev is nil for a first delivery.
func (st *streamRun) observeDelivery(i int, prev *windowEval, retracted map[string]intervals.List, wall time.Duration) error {
	o := st.obs
	o.e2eMicros.ObserveDuration(wall)
	if o.slo.MaxWindowMicros > 0 && wall.Microseconds() > o.slo.MaxWindowMicros {
		o.sloWindow.Inc()
		o.sloTotal.Inc()
	}

	var emitLag int64
	if frontier, ok := st.reorder.Frontier(); ok && frontier > st.tl.q(i) {
		emitLag = frontier - st.tl.q(i)
	}
	o.emitLag.Observe(float64(emitLag))
	slot := &st.slots[i]
	if o.slo.MaxEmitLag > 0 && slot.revision == 0 && emitLag > o.slo.MaxEmitLag {
		o.sloEmit.Inc()
		o.sloTotal.Inc()
		if err := o.journal.Append("slo_breach", journalSLOBreach{
			Kind: "emit_lag", Index: i, Lag: emitLag, Limit: o.slo.MaxEmitLag,
		}); err != nil {
			return err
		}
	}

	asserted := slot.eval.recognised
	if prev != nil {
		asserted = prev.retractionsAgainst(slot.eval)
	}
	return o.journal.Append("window", journalWindow{
		Index:       i,
		WindowStart: st.tl.windowStart(i),
		QueryTime:   st.tl.q(i),
		Revision:    slot.revision,
		EmitLag:     emitLag,
		Fluents:     len(slot.eval.recognised),
		Intervals:   slot.eval.intervalCount(),
		Asserted:    ivalsOf(asserted),
		Retracted:   ivalsOf(retracted),
	})
}

// journalRunEnd records the final disorder statistics.
func (st *streamRun) journalRunEnd() error {
	s := st.stats
	return st.obs.journal.Append("run_end", journalRunEnd{
		Observed: s.Observed, Accepted: s.Accepted, Late: s.Late,
		Duplicates: s.Duplicates, Dropped: s.Dropped,
		Revisions: s.Revisions, Checkpoints: s.Checkpoints,
	})
}

// stratumHistName renders the per-stratum timing histogram name, shared by
// the evaluator and its tests.
func stratumHistName(level int) string {
	return fmt.Sprintf("rtec.stratum.micros.s%d", level)
}
