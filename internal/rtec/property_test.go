package rtec

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

// genRandomStream builds a random event stream over the withinArea and
// hierarchy event descriptions' input events.
func genRandomStream(r *rand.Rand, horizon int64) stream.Stream {
	var s stream.Stream
	vessels := []string{"v1", "v2", "v3"}
	areas := []string{"a1", "a2"}
	n := 5 + r.Intn(40)
	for i := 0; i < n; i++ {
		t := int64(r.Intn(int(horizon)))
		v := vessels[r.Intn(len(vessels))]
		var src string
		switch r.Intn(3) {
		case 0:
			src = fmt.Sprintf("entersArea(%s, %s)", v, areas[r.Intn(len(areas))])
		case 1:
			src = fmt.Sprintf("leavesArea(%s, %s)", v, areas[r.Intn(len(areas))])
		default:
			src = fmt.Sprintf("gap_start(%s)", v)
		}
		s = append(s, stream.Event{Time: t, Atom: parser.MustParseTerm(src)})
	}
	return s
}

// TestPropWindowEquivalence: for any random stream, recognition with any
// tumbling window size equals whole-stream recognition — RTEC's windowing
// is lossless as long as no relevant events are forgotten mid-interval
// (tumbling windows over simple fluents with inertia carry-over).
func TestPropWindowEquivalence(t *testing.T) {
	ed, err := parser.ParseEventDescription(withinAreaED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		events := genRandomStream(r, 500)
		single, err := e.Run(events, RunOptions{})
		if err != nil {
			return false
		}
		window := int64(20 + r.Intn(300))
		windowed, err := e.Run(events, RunOptions{Window: window})
		if err != nil {
			return false
		}
		if len(single.Keys()) != len(windowed.Keys()) {
			t.Logf("seed %d window %d: keys %v vs %v", seed, window, single.Keys(), windowed.Keys())
			return false
		}
		for _, key := range single.Keys() {
			if !single.IntervalsOfKey(key).Equal(windowed.IntervalsOfKey(key)) {
				t.Logf("seed %d window %d: %s: %s vs %s", seed, window, key,
					single.IntervalsOfKey(key), windowed.IntervalsOfKey(key))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCachingEquivalence: the caching ablation never changes results,
// for random streams over a deep hierarchy.
func TestPropCachingEquivalence(t *testing.T) {
	ed, err := parser.ParseEventDescription(hierarchyED)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := New(ed, Options{Strict: true, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var events stream.Stream
		for i := 0; i < 5+r.Intn(30); i++ {
			t := int64(r.Intn(300))
			x := []string{"x", "y"}[r.Intn(2)]
			ev := []string{"a_start", "a_end", "b_start", "b_end"}[r.Intn(4)]
			events = append(events, stream.Event{
				Time: t, Atom: parser.MustParseTerm(fmt.Sprintf("%s(%s)", ev, x)),
			})
		}
		rc, err1 := cached.Run(events, RunOptions{Window: 100})
		ru, err2 := uncached.Run(events, RunOptions{Window: 100})
		if err1 != nil || err2 != nil {
			return false
		}
		if len(rc.Keys()) != len(ru.Keys()) {
			return false
		}
		for _, key := range rc.Keys() {
			if !rc.IntervalsOfKey(key).Equal(ru.IntervalsOfKey(key)) {
				t.Logf("seed %d: %s differs", seed, key)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropOutOfOrderStreams: the engine sorts its input, so shuffled
// streams give identical results.
func TestPropOutOfOrderStreams(t *testing.T) {
	ed, err := parser.ParseEventDescription(withinAreaED)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ed, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		events := genRandomStream(r, 500)
		sorted := make(stream.Stream, len(events))
		copy(sorted, events)
		sorted.Sort()
		a, err1 := e.Run(events, RunOptions{Window: 100})
		b, err2 := e.Run(sorted, RunOptions{Window: 100})
		if err1 != nil || err2 != nil {
			return false
		}
		for _, key := range a.Keys() {
			if !a.IntervalsOfKey(key).Equal(b.IntervalsOfKey(key)) {
				return false
			}
		}
		return len(a.Keys()) == len(b.Keys())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
