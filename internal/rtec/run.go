package rtec

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"

	"rtecgen/internal/intervals"
	"rtecgen/internal/lang"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
)

// RunOptions configure a recognition run.
type RunOptions struct {
	// Window is the sliding-window size ω in time-points. Zero means a
	// single window over the whole stream.
	Window int64
	// Slide is the step between query times. Zero defaults to Window
	// (tumbling windows).
	Slide int64
	// Start and End bound the recognition time-line [Start, End). When both
	// are zero they are derived from the stream (first event, last event+1).
	Start, End int64
}

// Recognition holds the result of a run: the maximal intervals of every
// ground FVP over the whole time-line, amalgamated across windows and
// clipped to [Start, End).
type Recognition struct {
	Start, End int64
	byKey      map[string]intervals.List
	fvps       map[string]*lang.Term
	Warnings   []Warning
}

// IntervalsOf returns the recognised maximal intervals of a ground FVP,
// given as an '='(F, V) term.
func (r *Recognition) IntervalsOf(fvp *lang.Term) intervals.List {
	return r.byKey[fvpKey(fvp)]
}

// IntervalsOfKey returns the intervals for a canonical FVP key, e.g.
// "withinArea(v1, fishing)=true".
func (r *Recognition) IntervalsOfKey(key string) intervals.List { return r.byKey[key] }

// HoldsAt reports whether the FVP holds at time-point t.
func (r *Recognition) HoldsAt(fvp *lang.Term, t int64) bool {
	return r.byKey[fvpKey(fvp)].Contains(t)
}

// Keys returns the canonical keys of all recognised FVPs, sorted.
func (r *Recognition) Keys() []string {
	out := make([]string, 0, len(r.byKey))
	for k := range r.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FVP returns the parsed FVP term for a canonical key.
func (r *Recognition) FVP(key string) *lang.Term { return r.fvps[key] }

// ByFluent groups the recognised FVP keys by fluent indicator, e.g.
// "withinArea/2" -> all ground withinArea FVPs.
func (r *Recognition) ByFluent() map[string][]string {
	out := map[string][]string{}
	for k, fvp := range r.fvps {
		out[fluentKeyOf(fvp)] = append(out[fluentKeyOf(fvp)], k)
	}
	for _, ks := range out {
		sort.Strings(ks)
	}
	return out
}

// FluentIntervals returns the union of the intervals of every FVP of the
// given fluent indicator whose value matches the given value term (nil
// matches any value): the recognised instances of an activity across all
// entities.
func (r *Recognition) FluentIntervals(ind string, value *lang.Term) map[string]intervals.List {
	out := map[string]intervals.List{}
	for k, fvp := range r.fvps {
		if fluentKeyOf(fvp) != ind {
			continue
		}
		if value != nil && !fvp.Args[1].Equal(value) {
			continue
		}
		out[k] = r.byKey[k]
	}
	return out
}

// WriteCSV serialises the recognition result as rows of
// "fluent,fvp,since,until", one row per maximal interval, using RTEC's
// (since, until] display convention. Open-ended intervals print "inf" as
// until. Rows are sorted by FVP key, then time.
func (r *Recognition) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"fluent", "fvp", "since", "until"}); err != nil {
		return err
	}
	for _, key := range r.Keys() {
		fvp := r.fvps[key]
		ind := fluentKeyOf(fvp)
		for _, iv := range r.byKey[key] {
			until := "inf"
			if iv.End != intervals.Inf {
				until = strconv.FormatInt(iv.End-1, 10)
			}
			if err := cw.Write([]string{ind, key, strconv.FormatInt(iv.Start-1, 10), until}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WindowResult is the outcome of one query time, delivered by RunWindows as
// soon as the window is evaluated: the ground FVPs recognised within
// [WindowStart, QueryTime) and their intervals clipped to the window.
//
// Under out-of-order ingestion (Engine.RunStream), the same window may be
// delivered more than once: a late event within the delay bound re-evaluates
// the affected windows, and each re-delivery carries an incremented Revision
// and the retraction diff against the previous delivery. In-order runs
// always deliver Revision 0 with a nil Retracted.
type WindowResult struct {
	WindowStart, QueryTime int64
	// Recognised maps canonical FVP keys to their clipped interval lists.
	Recognised map[string]intervals.List
	// FVPs maps the same keys to the parsed FVP terms.
	FVPs map[string]*lang.Term
	// Revision counts re-deliveries of this window: 0 for the first
	// evaluation, incremented every time a late event revises it.
	Revision int
	// Retracted maps FVP keys to the intervals that were reported by the
	// previous revision of this window but no longer hold. Nil on the first
	// delivery.
	Retracted map[string]intervals.List
}

// Run performs windowed recognition over the stream and returns the
// amalgamated results. The stream need not be sorted; a sorted copy is used.
// Runtime warnings (conditions that could not be evaluated) are collected on
// the Recognition.
func (e *Engine) Run(events stream.Stream, opts RunOptions) (*Recognition, error) {
	var rec *Recognition
	err := e.runWindows(events, opts, func(r *Recognition, _ WindowResult) error {
		rec = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// RunWindows performs windowed recognition and invokes fn after every query
// time with that window's results — the run-time consumption mode, where a
// consumer reacts to detections with the latency of one window rather than
// waiting for the whole stream. An empty stream produces no windows.
// Returning a non-nil error from fn aborts the run.
func (e *Engine) RunWindows(events stream.Stream, opts RunOptions, fn func(WindowResult) error) error {
	return e.runWindows(events, opts, func(_ *Recognition, wr WindowResult) error {
		if wr.QueryTime <= wr.WindowStart {
			return nil // degenerate empty-stream window: nothing to report
		}
		return fn(wr)
	})
}

func (e *Engine) runWindows(events stream.Stream, opts RunOptions, fn func(*Recognition, WindowResult) error) error {
	s := make(stream.Stream, len(events))
	copy(s, events)
	s.Sort()

	tl, empty, err := planTimeline(s, opts)
	if err != nil {
		return err
	}
	if empty {
		return fn(&Recognition{byKey: map[string]intervals.List{}, fvps: map[string]*lang.Term{}},
			WindowResult{Recognised: map[string]intervals.List{}, FVPs: map[string]*lang.Term{}})
	}

	rec := &Recognition{
		Start: tl.start, End: tl.end,
		byKey: map[string]intervals.List{},
		fvps:  map[string]*lang.Term{},
	}

	tel := e.opts.Telemetry
	run := tel.Span("rtec.run",
		telemetry.Int("events", int64(len(s))),
		telemetry.Int("window", tl.window), telemetry.Int("slide", tl.slide),
		telemetry.Int("start", tl.start), telemetry.Int("end", tl.end))
	defer run.End()
	tel.Counter("rtec.events.ingested").Add(int64(len(s)))
	tel.Gauge("rtec.workers").Set(int64(e.workers))
	defer recordPoolStats(tel)()
	tel.Logger().Debug("recognition run",
		"component", "rtec", "events", len(s),
		"window", tl.window, "slide", tl.slide, "start", tl.start, "end", tl.end,
		"windows", tl.n, "fluents", len(e.order))

	deltaOn := !e.opts.DisableDelta && !e.opts.DisableCache
	var carried *deltaState
	prevOpen := map[string]*lang.Term{}
	for i := 0; i < tl.n; i++ {
		q := tl.q(i)
		ws := tl.windowStart(i)
		var dctx *deltaCtx
		if deltaOn {
			dctx = &deltaCtx{capture: true}
			if carried != nil && carried.ws == tl.windowStart(i-1) && carried.we == tl.q(i-1) {
				dctx.prev = carried
				dctx.base = intervals.List{{Start: carried.we, End: q}}
			}
		}
		ev := e.evalWindow(s.Window(ws, q), ws, q, tl.nextWindowStart(i), prevOpen, &rec.Warnings, run, dctx)
		if dctx != nil {
			carried = dctx.next
		}
		for key, clipped := range ev.recognised {
			rec.byKey[key] = intervals.Union(rec.byKey[key], clipped)
			if _, ok := rec.fvps[key]; !ok {
				rec.fvps[key] = ev.fvps[key]
			}
		}
		prevOpen = ev.nextOpen
		if err := fn(rec, WindowResult{
			WindowStart: ws, QueryTime: q,
			Recognised: ev.recognised, FVPs: ev.fvps,
		}); err != nil {
			return err
		}
	}
	return nil
}
