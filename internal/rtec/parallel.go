package rtec

import (
	"fmt"
	"sync"

	"rtecgen/internal/intervals"
	"rtecgen/internal/lang"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
)

// This file implements entity-sharded parallel evaluation of one fluent's
// rules. A "unit" is the smallest independently evaluable piece of work: one
// (rule, anchor event) pair for a simple fluent, one (rule, candidate
// substitution) pair for a statically determined one. Units of the same
// fluent never observe each other's results — simple-fluent rules store
// nothing until every rule has run, and SD bodies only read strictly lower
// strata — so they can run on parallel workers.
//
// Determinism: every externally visible effect of a unit (an FVP emission,
// an interval store, a runtime warning) is buffered as an act in the unit's
// own slot, in occurrence order. After the pool drains, slots are applied
// sequentially in unit order, which reproduces the exact effect order of the
// sequential evaluation — so recognition output, warning order, checkpoint
// bytes and stream revisions are byte-identical to Workers=1 regardless of
// how units were sharded onto workers. The entity shard key only decides
// which worker runs a unit (locality and balance), never the merge order.

// minParallelUnits is the batch size below which spawning workers costs more
// than it saves; smaller batches run inline on the calling goroutine.
const minParallelUnits = 8

// act is one buffered effect of an evaluation unit: either a runtime
// warning (fvp == nil) or an emission/store of fvp with the payload the
// applying rule expects (occurrence time t for simple rules, interval list
// for holdsFor rules).
type act struct {
	warn Warning
	fvp  *lang.Term
	t    int64
	list intervals.List
}

// ruleEval is the per-unit evaluation context. In direct (sequential) mode
// apply is non-nil and effects take place immediately, reproducing the
// classic single-goroutine code path. In buffered (parallel) mode effects
// accumulate in buf for the ordered merge. t is the anchor time of the unit
// being evaluated (simple-fluent rules only): warning acts carry it so the
// delta layer can cache them per anchor time alongside emissions.
type ruleEval struct {
	w     *windowState
	apply func(act)
	buf   []act
	t     int64
}

func (re *ruleEval) put(a act) {
	if re.apply != nil {
		re.apply(a)
		return
	}
	re.buf = append(re.buf, a)
}

// warnf buffers a runtime warning; dedup and telemetry happen when the act
// is applied on the merge path, exactly as the sequential code would.
func (re *ruleEval) warnf(fluent, format string, args ...any) {
	re.put(act{warn: Warning{Fluent: fluent, Msg: fmt.Sprintf(format, args...)}, t: re.t})
}

// emit buffers a simple-rule FVP occurrence at time t.
func (re *ruleEval) emit(fvp *lang.Term, t int64) { re.put(act{fvp: fvp, t: t}) }

// store buffers an SD-rule interval list for fvp.
func (re *ruleEval) store(fvp *lang.Term, list intervals.List) { re.put(act{fvp: fvp, list: list}) }

// eventEntity is the shard key of an event unit: the event's first argument
// is its entity (e.g. the vessel of a change_in_speed_start), so events of
// the same entity land on the same worker.
func eventEntity(ev stream.Event) uint64 {
	if len(ev.Atom.Args) > 0 {
		return lang.Hash(ev.Atom.Args[0])
	}
	return lang.Hash(ev.Atom)
}

// recordPoolStats snapshots the interval scratch-pool counters and returns
// a func that records the run's delta as hit/miss counters, making buffer
// reuse observable per run.
func recordPoolStats(tel *telemetry.Telemetry) func() {
	gets0, misses0 := intervals.PoolStats()
	return func() {
		gets, misses := intervals.PoolStats()
		dGets, dMisses := gets-gets0, misses-misses0
		tel.Counter("rtec.intervals.pool.hits").Add(dGets - dMisses)
		tel.Counter("rtec.intervals.pool.misses").Add(dMisses)
	}
}

// runUnits evaluates n units. With a single worker (or a tiny batch) the
// units run inline in order with immediate effect application — the classic
// sequential path. Otherwise units are partitioned by their entity shard key
// onto the engine's worker pool, each unit buffering its effects into its
// own slot, and the slots are applied in unit order after the pool drains.
// shard is only consulted on the parallel path.
func (w *windowState) runUnits(n int, shard func(int) uint64, body func(int, *ruleEval), apply func(act)) {
	workers := w.eng.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelUnits {
		re := ruleEval{w: w, apply: apply}
		for i := 0; i < n; i++ {
			body(i, &re)
		}
		return
	}

	for _, acts := range w.runUnitsParallel(n, workers, shard, body) {
		for _, a := range acts {
			apply(a)
		}
	}
}

// runUnitsCollect evaluates n units and returns their buffered acts per unit
// instead of applying them — the delta replay path needs the per-unit
// slices to interleave recomputed acts with cached ones in time order. The
// same inline-below-threshold policy as runUnits applies.
func (w *windowState) runUnitsCollect(n int, shard func(int) uint64, body func(int, *ruleEval)) [][]act {
	workers := w.eng.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelUnits {
		slots := make([][]act, n)
		for i := 0; i < n; i++ {
			re := ruleEval{w: w}
			body(i, &re)
			slots[i] = re.buf
		}
		return slots
	}
	return w.runUnitsParallel(n, workers, shard, body)
}

// runUnitsParallel partitions the units by entity shard key onto the worker
// pool and returns the per-unit act buffers in unit order.
func (w *windowState) runUnitsParallel(n, workers int, shard func(int) uint64, body func(int, *ruleEval)) [][]act {
	shards := make([][]int32, workers)
	for i := 0; i < n; i++ {
		s := int(shard(i) % uint64(workers))
		shards[s] = append(shards[s], int32(i))
	}
	// 100 means perfectly balanced shards; workers*100 means every unit
	// hashed onto a single shard.
	maxLoad := 0
	for _, sh := range shards {
		if len(sh) > maxLoad {
			maxLoad = len(sh)
		}
	}
	w.tel.Gauge("rtec.shard.imbalance").Set(int64(maxLoad * workers * 100 / n))

	slots := make([][]act, n)
	var wg sync.WaitGroup
	for _, sh := range shards {
		if len(sh) == 0 {
			continue
		}
		wg.Add(1)
		go func(idx []int32) {
			defer wg.Done()
			for _, i := range idx {
				re := ruleEval{w: w}
				body(int(i), &re)
				slots[i] = re.buf
			}
		}(sh)
	}
	wg.Wait()
	return slots
}
