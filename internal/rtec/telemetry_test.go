package rtec

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtecgen/internal/intervals"
	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
	"rtecgen/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stepClock is a deterministic clock: every reading advances by step, so a
// trace recorded through it is byte-stable across runs.
func stepClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0).UTC()
	return func() time.Time {
		now := t
		t = t.Add(step)
		return now
	}
}

// TestGoldenChromeTrace runs the engine over two windows with a fake clock
// and compares the exported Chrome trace byte-for-byte against the golden
// file. Engine evaluation is single-goroutine, so span creation order — and
// with a deterministic clock, every timestamp — is reproducible.
func TestGoldenChromeTrace(t *testing.T) {
	tr := telemetry.NewTracerWithClock(stepClock(time.Millisecond))
	tel := telemetry.New(telemetry.NewRegistry(), tr, nil)
	e := mustEngine(t, withinAreaED, Options{Strict: true, Telemetry: tel})
	events := stream.Stream{ev(10, "entersArea(v1, a1)"), ev(50, "leavesArea(v1, a1)")}
	rec, err := e.Run(events, RunOptions{Window: 30, Slide: 30})
	if err != nil {
		t.Fatal(err)
	}
	checkIntervals(t, rec, "withinArea(v1, fishing)=true", intervals.List{ivl(11, 51)})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_two_windows.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden file %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

// TestEngineCounters checks the engine's metric semantics on a two-window
// run: events ingested once, a window counted per query time, FVP groundings
// and amalgamated intervals accumulated across windows.
func TestEngineCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil, nil)
	e := mustEngine(t, withinAreaED, Options{Strict: true, Telemetry: tel})
	events := stream.Stream{ev(10, "entersArea(v1, a1)"), ev(50, "leavesArea(v1, a1)")}
	if _, err := e.Run(events, RunOptions{Window: 30, Slide: 30}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"rtec.events.ingested":       2,
		"rtec.windows.evaluated":     2,
		"rtec.intervals.amalgamated": 2, // one clipped interval per window
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Counters["rtec.fvps.grounded"] == 0 {
		t.Error("rtec.fvps.grounded not incremented")
	}
	if h, ok := snap.Histograms["rtec.window.micros"]; !ok || h.Count != 2 {
		t.Errorf("rtec.window.micros histogram = %+v, want count 2", h)
	}
}

// TestRuntimeWarningsOnLogger checks that runtime warnings surface on the
// telemetry logger with fluent and window attributes, and feed the runtime
// warning counter.
func TestRuntimeWarningsOnLogger(t *testing.T) {
	var logBuf bytes.Buffer
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil, telemetry.NewTestLogger(&logBuf, nil))
	src := withinAreaED + `
initiatedAt(odd(Vl)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    noSuchPredicate(AreaID, _).
`
	e := mustEngine(t, src, Options{Telemetry: tel})
	events := stream.Stream{ev(10, "entersArea(v1, a1)")}
	rec, err := e.Run(events, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Warnings) == 0 {
		t.Fatal("expected runtime warnings")
	}
	out := logBuf.String()
	for _, want := range []string{
		"level=WARN", "component=rtec", "stage=recognition",
		"fluent=odd/1", "window_start=10", "query_time=11",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	if reg.Snapshot().Counters["rtec.warnings.runtime"] == 0 {
		t.Error("rtec.warnings.runtime not incremented")
	}
}

// benchStream builds a deterministic multi-vessel stream long enough for a
// windowed benchmark run.
func benchStream(vessels int, until int64) stream.Stream {
	var s stream.Stream
	areas := []string{"a1", "a2"}
	for v := 0; v < vessels; v++ {
		name := string(rune('a'+v%26)) + "v"
		for t := int64(v); t < until; t += 40 {
			area := areas[(int(t)/40+v)%len(areas)]
			s = append(s, ev(t, "entersArea("+name+", "+area+")"))
			s = append(s, ev(t+20, "leavesArea("+name+", "+area+")"))
		}
	}
	return s
}

// BenchmarkRecognitionRun measures the windowed engine with telemetry
// disabled (nil — the no-op path every un-instrumented caller gets) and
// fully enabled (registry + tracer + discard logger). The delta of the "off"
// case against pre-instrumentation code is a handful of nil checks per
// window; EXPERIMENTS.md records the measured numbers.
func BenchmarkRecognitionRun(b *testing.B) {
	events := benchStream(8, 4000)
	bench := func(b *testing.B, tel *telemetry.Telemetry) {
		ed, err := parser.ParseEventDescription(withinAreaED)
		if err != nil {
			b.Fatal(err)
		}
		e, err := New(ed, Options{Strict: true, Telemetry: tel})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(events, RunOptions{Window: 200, Slide: 100}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("telemetry=off", func(b *testing.B) { bench(b, nil) })
	b.Run("telemetry=on", func(b *testing.B) {
		bench(b, telemetry.New(telemetry.NewRegistry(), telemetry.NewTracer(), telemetry.Discard()))
	})
}
