package rtec

import (
	"errors"
	"path/filepath"
	"testing"
)

// interruptAfter returns a StreamOptions.Interrupt that fires once n
// arrivals have been consumed — the test double for a SIGTERM landing
// mid-stream.
func interruptAfter(n int) func() bool {
	return func() bool {
		n--
		return n < 0
	}
}

func TestInterruptSuspendsWithCheckpoint(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	arrivals := chaosArrivals(t, 7, 60)
	opts := StreamOptions{
		RunOptions:      RunOptions{Window: 100},
		MaxDelay:        60,
		CheckpointPath:  filepath.Join(t.TempDir(), "run.ckpt"),
		CheckpointEvery: 2,
		Interrupt:       interruptAfter(5),
	}
	res, err := e.RunStream(arrivals, opts, nil)
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("interrupted run: res=%v err=%v, want ErrSuspended", res, err)
	}
	cp, err := LoadCheckpoint(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Consumed != 5 {
		t.Fatalf("suspend checkpoint consumed %d arrivals, want 5", cp.Consumed)
	}
}

func TestInterruptWithoutCheckpointPathFails(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	opts := StreamOptions{
		RunOptions: RunOptions{Window: 100},
		MaxDelay:   60,
		Interrupt:  interruptAfter(0),
	}
	_, err := e.RunStream(chaosArrivals(t, 7, 60), opts, nil)
	if err == nil || errors.Is(err, ErrSuspended) {
		t.Fatalf("suspend without a checkpoint path = %v, want a configuration error", err)
	}
}

// TestSuspendResumeByteIdentity: a run parked by Interrupt at any arrival
// boundary and resumed over the same stream produces output byte-identical
// to an uninterrupted run — the cmd/rtec SIGTERM contract. CheckpointEvery
// is 2 so most park points land mid-cadence, exercising the persisted
// since-checkpoint counter.
func TestSuspendResumeByteIdentity(t *testing.T) {
	e := mustEngine(t, withinAreaED, Options{Strict: true})
	arrivals := chaosArrivals(t, 7, 60)
	base := StreamOptions{
		RunOptions: RunOptions{Window: 100},
		MaxDelay:   60,
	}
	want, err := e.RunStream(arrivals, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := csvOf(t, want.Recognition)

	// A cadence baseline for the checkpoint count: the suspend snapshot is
	// out-of-cadence and must not disturb the schedule.
	cadenceOpts := base
	cadenceOpts.CheckpointPath = filepath.Join(t.TempDir(), "cadence.ckpt")
	cadenceOpts.CheckpointEvery = 2
	cadence, err := e.RunStream(arrivals, cadenceOpts, nil)
	if err != nil {
		t.Fatal(err)
	}

	for park := 1; park < len(arrivals); park += 7 {
		opts := base
		opts.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
		opts.CheckpointEvery = 2
		opts.Interrupt = interruptAfter(park)
		if _, err := e.RunStream(arrivals, opts, nil); !errors.Is(err, ErrSuspended) {
			t.Fatalf("park@%d: err = %v, want ErrSuspended", park, err)
		}
		opts.Interrupt = nil
		got, err := e.ResumeStream(opts.CheckpointPath, arrivals, opts, nil)
		if err != nil {
			t.Fatalf("park@%d: resume: %v", park, err)
		}
		if gotCSV := csvOf(t, got.Recognition); gotCSV != wantCSV {
			t.Fatalf("park@%d: resumed CSV differs from uninterrupted run:\n%s\nvs\n%s", park, gotCSV, wantCSV)
		}
		if got.Stats.Observed != want.Stats.Observed ||
			got.Stats.Accepted != want.Stats.Accepted ||
			got.Stats.Revisions != want.Stats.Revisions ||
			got.Stats.Dropped != want.Stats.Dropped {
			t.Fatalf("park@%d: resumed stats = %s, uninterrupted = %s", park, got.Stats, want.Stats)
		}
		if got.Stats.Checkpoints != cadence.Stats.Checkpoints {
			t.Fatalf("park@%d: suspend disturbed the checkpoint cadence: %d snapshots, want %d",
				park, got.Stats.Checkpoints, cadence.Stats.Checkpoints)
		}
	}
}
