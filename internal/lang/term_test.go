package lang

import (
	"testing"
)

func TestTermConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		term *Term
		kind Kind
		str  string
	}{
		{NewVar("Vl"), Var, "Vl"},
		{NewAtom("true"), Atom, "true"},
		{NewInt(23), Int, "23"},
		{NewFloat(2.5), Float, "2.5"},
		{NewFloat(90), Float, "90.0"},
		{NewStr("hi"), Str, `"hi"`},
		{NewCompound("entersArea", NewVar("Vl"), NewAtom("a1")), Compound, "entersArea(Vl, a1)"},
		{NewCompound("noArgs"), Atom, "noArgs"},
		{NewList(NewInt(1), NewInt(2)), List, "[1, 2]"},
		{NewList(), List, "[]"},
		{FVP(NewCompound("withinArea", NewVar("Vl")), NewAtom("true")), Compound, "withinArea(Vl)=true"},
	}
	for _, c := range cases {
		if c.term.Kind != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.str, c.term.Kind, c.kind)
		}
		if got := c.term.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestTermEqual(t *testing.T) {
	a := NewCompound("happensAt", NewCompound("entersArea", NewVar("Vl"), NewAtom("a1")), NewInt(23))
	b := NewCompound("happensAt", NewCompound("entersArea", NewVar("Vl"), NewAtom("a1")), NewInt(23))
	if !a.Equal(b) {
		t.Fatal("structurally equal terms reported unequal")
	}
	c := NewCompound("happensAt", NewCompound("entersArea", NewVar("Vl"), NewAtom("a2")), NewInt(23))
	if a.Equal(c) {
		t.Fatal("different terms reported equal")
	}
	if a.Equal(nil) {
		t.Fatal("term equal to nil")
	}
	if !a.Equal(a) {
		t.Fatal("term not equal to itself")
	}
	if NewInt(1).Equal(NewFloat(1)) {
		t.Fatal("Equal must be structural: int 1 != float 1.0")
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	a := NewCompound("f", NewList(NewVar("X"), NewInt(1)), NewAtom("c"))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Args[0].Args[0] = NewAtom("mutated")
	if a.Args[0].Args[0].Kind != Var {
		t.Fatal("mutating clone affected original")
	}
}

func TestVarsOrderAndDedup(t *testing.T) {
	tm := NewCompound("f", NewVar("B"), NewCompound("g", NewVar("A"), NewVar("B")), NewVar("C"))
	got := tm.Vars()
	want := []string{"B", "A", "C"}
	if len(got) != len(want) {
		t.Fatalf("Vars() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars() = %v, want %v", got, want)
		}
	}
}

func TestIsGround(t *testing.T) {
	if !NewCompound("f", NewAtom("a"), NewInt(1)).IsGround() {
		t.Fatal("ground term reported non-ground")
	}
	if NewCompound("f", NewAtom("a"), NewVar("X")).IsGround() {
		t.Fatal("non-ground term reported ground")
	}
}

func TestIndicator(t *testing.T) {
	if got := NewCompound("entersArea", NewVar("V"), NewVar("A")).Indicator(); got != "entersArea/2" {
		t.Fatalf("Indicator() = %q", got)
	}
	if got := NewAtom("foo").Indicator(); got != "foo/0" {
		t.Fatalf("Indicator() = %q", got)
	}
	if got := NewInt(7).Indicator(); got != "int" {
		t.Fatalf("Indicator() = %q", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	ordered := []*Term{
		NewVar("A"),
		NewVar("B"),
		NewInt(1),
		NewFloat(1.5),
		NewInt(2),
		NewAtom("a"),
		NewAtom("b"),
		NewStr("s"),
		NewCompound("f", NewInt(1)),
		NewCompound("g", NewInt(1)),
		NewCompound("f", NewInt(1), NewInt(2)),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%s, %s) = %d, want < 0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%s, %s) = %d, want > 0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%s, %s) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestStringInfixParenthesisation(t *testing.T) {
	// (A + B) * C must keep parentheses to round-trip.
	tm := NewCompound("*", NewCompound("+", NewVar("A"), NewVar("B")), NewVar("C"))
	if got := tm.String(); got != "(A + B) * C" {
		t.Fatalf("String() = %q", got)
	}
	cmp := NewCompound(">", NewVar("Speed"), NewVar("Max"))
	if got := cmp.String(); got != "Speed > Max" {
		t.Fatalf("String() = %q", got)
	}
	neg := NewCompound("not", NewCompound("holdsAt", NewVar("F"), NewVar("T")))
	if got := neg.String(); got != "not holdsAt(F, T)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestNumber(t *testing.T) {
	if v, ok := NewInt(3).Number(); !ok || v != 3 {
		t.Fatalf("Number(3) = %v, %v", v, ok)
	}
	if v, ok := NewFloat(2.5).Number(); !ok || v != 2.5 {
		t.Fatalf("Number(2.5) = %v, %v", v, ok)
	}
	if _, ok := NewAtom("x").Number(); ok {
		t.Fatal("atom reported numeric")
	}
}

func TestWalkPreOrder(t *testing.T) {
	tm := NewCompound("f", NewCompound("g", NewVar("X")), NewAtom("a"))
	var visited []string
	tm.Walk(func(t *Term) bool {
		visited = append(visited, t.Functor)
		return true
	})
	want := []string{"f", "g", "X", "a"}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
	// Pruning: stop at g.
	visited = nil
	tm.Walk(func(t *Term) bool {
		visited = append(visited, t.Functor)
		return t.Functor != "g"
	})
	if len(visited) != 3 { // f, g, a
		t.Fatalf("pruned walk visited %v", visited)
	}
}
