// Package lang defines the abstract syntax of the RTEC dialect used
// throughout this repository: terms, literals, clauses and event
// descriptions, together with unification, variable handling and the
// tree-representation machinery (paper Definitions 4.7-4.10) that the
// similarity metric builds on.
package lang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// Kind discriminates the variants of Term.
type Kind int

const (
	// Var is a logic variable (name starts with an upper-case letter or '_').
	Var Kind = iota
	// Atom is a constant symbol (name starts with a lower-case letter).
	Atom
	// Int is an integer constant.
	Int
	// Float is a floating-point constant.
	Float
	// Str is a double-quoted string constant.
	Str
	// Compound is a functor applied to one or more arguments.
	Compound
	// List is a proper list of terms.
	List
)

func (k Kind) String() string {
	switch k {
	case Var:
		return "var"
	case Atom:
		return "atom"
	case Int:
		return "int"
	case Float:
		return "float"
	case Str:
		return "string"
	case Compound:
		return "compound"
	case List:
		return "list"
	}
	return "unknown"
}

// Term is a node of the RTEC term language. A Term is immutable by
// convention: code in this repository never mutates a Term after
// construction, so Terms may be shared freely.
type Term struct {
	Kind    Kind
	Functor string  // variable name, atom symbol, or compound functor
	Args    []*Term // compound arguments or list elements
	Int     int64
	Float   float64
	Text    string   // string constant payload
	Pos     Position // source position when the term was parsed; zero otherwise
}

// NewVar returns a variable term with the given name.
func NewVar(name string) *Term { return &Term{Kind: Var, Functor: name} }

// NewAtom returns a constant symbol term.
func NewAtom(sym string) *Term { return &Term{Kind: Atom, Functor: sym} }

// NewInt returns an integer constant term.
func NewInt(v int64) *Term { return &Term{Kind: Int, Int: v} }

// NewFloat returns a floating-point constant term.
func NewFloat(v float64) *Term { return &Term{Kind: Float, Float: v} }

// NewStr returns a string constant term.
func NewStr(s string) *Term { return &Term{Kind: Str, Text: s} }

// NewCompound returns a compound term functor(args...). With no arguments it
// degenerates to an Atom, matching Prolog convention.
func NewCompound(functor string, args ...*Term) *Term {
	if len(args) == 0 {
		return NewAtom(functor)
	}
	return &Term{Kind: Compound, Functor: functor, Args: args}
}

// NewList returns a proper list term holding the given elements.
func NewList(elems ...*Term) *Term { return &Term{Kind: List, Args: elems} }

// FVP builds the fluent-value pair term F=V, represented as the compound
// '='(F, V) following the paper's prefix notation (Example 4.10).
func FVP(fluent, value *Term) *Term { return NewCompound("=", fluent, value) }

// Arity returns the number of arguments of t (0 for non-compound terms and
// the element count for lists).
func (t *Term) Arity() int { return len(t.Args) }

// IsConst reports whether t is an atomic constant (atom, number or string).
func (t *Term) IsConst() bool {
	switch t.Kind {
	case Atom, Int, Float, Str:
		return true
	}
	return false
}

// IsCallable reports whether t can stand as a predicate: an atom or compound.
func (t *Term) IsCallable() bool { return t.Kind == Atom || t.Kind == Compound }

// Indicator returns the predicate indicator "functor/arity" for callable
// terms, and a kind-specific tag otherwise.
func (t *Term) Indicator() string {
	if t.IsCallable() {
		return t.Functor + "/" + strconv.Itoa(len(t.Args))
	}
	return t.Kind.String()
}

// Equal reports structural equality of two terms.
func (t *Term) Equal(o *Term) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case Var, Atom:
		return t.Functor == o.Functor
	case Int:
		return t.Int == o.Int
	case Float:
		return t.Float == o.Float
	case Str:
		return t.Text == o.Text
	case Compound:
		if t.Functor != o.Functor || len(t.Args) != len(o.Args) {
			return false
		}
	case List:
		if len(t.Args) != len(o.Args) {
			return false
		}
	}
	for i, a := range t.Args {
		if !a.Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t. Because Terms are treated as immutable,
// Clone is only needed when a caller wants to build a derived term by
// editing the copy in place before publishing it.
func (t *Term) Clone() *Term {
	if t == nil {
		return nil
	}
	c := *t
	if len(t.Args) > 0 {
		c.Args = make([]*Term, len(t.Args))
		for i, a := range t.Args {
			c.Args[i] = a.Clone()
		}
	}
	return &c
}

// IsGround reports whether t contains no variables.
func (t *Term) IsGround() bool {
	if t.Kind == Var {
		return false
	}
	for _, a := range t.Args {
		if !a.IsGround() {
			return false
		}
	}
	return true
}

// Vars appends the names of variables occurring in t to dst, in
// left-to-right first-occurrence order, skipping duplicates already in seen.
func (t *Term) vars(dst []string, seen map[string]bool) []string {
	if t.Kind == Var {
		if !seen[t.Functor] {
			seen[t.Functor] = true
			dst = append(dst, t.Functor)
		}
		return dst
	}
	for _, a := range t.Args {
		dst = a.vars(dst, seen)
	}
	return dst
}

// Vars returns the variable names occurring in t in first-occurrence order.
func (t *Term) Vars() []string { return t.vars(nil, map[string]bool{}) }

// Walk calls fn for t and every sub-term, pre-order. If fn returns false the
// sub-terms of the current node are skipped.
func (t *Term) Walk(fn func(*Term) bool) {
	if !fn(t) {
		return
	}
	for _, a := range t.Args {
		a.Walk(fn)
	}
}

// Number returns the numeric value of t and true if t is Int or Float.
func (t *Term) Number() (float64, bool) {
	switch t.Kind {
	case Int:
		return float64(t.Int), true
	case Float:
		return t.Float, true
	}
	return 0, false
}

// Compare imposes a total order on ground terms (standard order of terms:
// numbers < atoms < strings < compounds ordered by arity, functor, args).
// Variables sort before everything, by name.
func Compare(a, b *Term) int {
	ra, rb := orderRank(a), orderRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case Var:
		return strings.Compare(a.Functor, b.Functor)
	case Int, Float:
		na, _ := a.Number()
		nb, _ := b.Number()
		switch {
		case na < nb:
			return -1
		case na > nb:
			return 1
		}
		return 0
	case Atom:
		return strings.Compare(a.Functor, b.Functor)
	case Str:
		return strings.Compare(a.Text, b.Text)
	default: // Compound, List
		if d := len(a.Args) - len(b.Args); d != 0 {
			if d < 0 {
				return -1
			}
			return 1
		}
		fa, fb := a.Functor, b.Functor
		if a.Kind == List {
			fa, fb = "[]", "[]"
		}
		if d := strings.Compare(fa, fb); d != 0 {
			return d
		}
		for i := range a.Args {
			if d := Compare(a.Args[i], b.Args[i]); d != 0 {
				return d
			}
		}
		return 0
	}
}

func orderRank(t *Term) int {
	switch t.Kind {
	case Var:
		return 0
	case Int, Float:
		return 1
	case Atom:
		return 2
	case Str:
		return 3
	default:
		return 4
	}
}

// infixPrec mirrors the operator table of internal/parser: comparisons bind
// loosest (1), then additive (2), then multiplicative (3). Zero means "not an
// infix operator".
var infixPrec = map[string]int{
	"=": 1, "<": 1, ">": 1, ">=": 1, "=<": 1, "=:=": 1, "=\\=": 1, "\\=": 1,
	"+": 2, "-": 2,
	"*": 3, "/": 3,
}

func isInfix(t *Term) (prec int, ok bool) {
	if t.Kind == Compound && len(t.Args) == 2 {
		p := infixPrec[t.Functor]
		return p, p > 0
	}
	return 0, false
}

// String renders t in the concrete RTEC dialect accepted by internal/parser.
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

// plainAtom reports whether an atom name can be printed without quotes: a
// lower-case letter followed by identifier characters. Operator names used
// as standalone atoms need quoting, since they only parse in infix position.
func plainAtom(name string) bool {
	if name == "" {
		return false
	}
	r := rune(name[0])
	if !unicode.IsLower(r) {
		return false
	}
	for _, c := range name {
		if c != '_' && !unicode.IsLetter(c) && !unicode.IsDigit(c) {
			return false
		}
	}
	return true
}

func writeAtomName(b *strings.Builder, name string) {
	if plainAtom(name) {
		b.WriteString(name)
		return
	}
	b.WriteByte('\'')
	b.WriteString(name)
	b.WriteByte('\'')
}

func (t *Term) write(b *strings.Builder) {
	switch t.Kind {
	case Var:
		b.WriteString(t.Functor)
	case Atom:
		writeAtomName(b, t.Functor)
	case Int:
		b.WriteString(strconv.FormatInt(t.Int, 10))
	case Float:
		b.WriteString(formatFloat(t.Float))
	case Str:
		b.WriteString(strconv.Quote(t.Text))
	case List:
		b.WriteByte('[')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.write(b)
		}
		b.WriteByte(']')
	case Compound:
		if prec, ok := isInfix(t); ok {
			t.writeInfixArg(b, t.Args[0], prec, false)
			if t.Functor == "=" {
				b.WriteByte('=')
			} else {
				b.WriteByte(' ')
				b.WriteString(t.Functor)
				b.WriteByte(' ')
			}
			t.writeInfixArg(b, t.Args[1], prec, true)
			return
		}
		if t.Functor == "not" && len(t.Args) == 1 {
			b.WriteString("not ")
			t.Args[0].write(b)
			return
		}
		writeAtomName(b, t.Functor)
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.write(b)
		}
		b.WriteByte(')')
	}
}

// writeInfixArg parenthesises a nested infix operand only when the parse
// would otherwise regroup it: looser-binding children always, and
// equal-precedence children on the right of a left-associative operator or
// anywhere under a non-associative comparison.
func (t *Term) writeInfixArg(b *strings.Builder, a *Term, parentPrec int, right bool) {
	if childPrec, ok := isInfix(a); ok {
		need := childPrec < parentPrec ||
			(childPrec == parentPrec && (right || parentPrec == 1))
		if need {
			b.WriteByte('(')
			a.write(b)
			b.WriteByte(')')
			return
		}
	}
	a.write(b)
}

// formatFloat renders a float so it parses back as a float: integral values
// keep a ".0" suffix.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// SortTerms sorts a slice of terms in the standard order, in place.
func SortTerms(ts []*Term) {
	sort.Slice(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 })
}

// Format implements fmt.Formatter-friendly output via String.
func (t *Term) Format(f fmt.State, verb rune) { fmt.Fprint(f, t.String()) }
