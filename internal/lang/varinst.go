package lang

import (
	"sort"
	"strconv"
	"strings"
)

// This file implements the tree-representation machinery of the paper's
// Definitions 4.7-4.10: the tree representation of an expression, the
// instances of a variable within an expression, and the list of instances of
// each variable within a rule. Variable-instance lists let the similarity
// metric (internal/similarity) decide whether two variables with possibly
// different names refer to the same concept in their respective rules.

// Step is one edge of a path into the tree representation of an expression:
// descend into the i-th argument (1-based, as in the paper) of a node whose
// label is Functor.
type Step struct {
	Functor string
	Index   int
}

// Path is an instance of a variable in an expression: the sequence of steps
// from the expression's root to the single node labelled with the variable
// (Definition 4.9).
type Path []Step

// String renders the path in the paper's notation, e.g.
// "[(initiatedAt,1), (=,1), (withinArea,1)]".
func (p Path) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, s := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		b.WriteString(s.Functor)
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(s.Index))
		b.WriteByte(')')
	}
	b.WriteByte(']')
	return b.String()
}

// key returns a canonical string encoding used for set comparison.
func (p Path) key() string { return p.String() }

// Less orders paths lexicographically by their canonical encoding.
func (p Path) Less(q Path) bool { return p.key() < q.key() }

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// nodeLabel returns the label of the root of the tree representation of t
// (Definition 4.7): the functor for callable terms, the variable name for
// variables, a canonical spelling for other constants, and "[]" for lists.
func nodeLabel(t *Term) string {
	switch t.Kind {
	case Var, Atom:
		return t.Functor
	case Int:
		return strconv.FormatInt(t.Int, 10)
	case Float:
		return strconv.FormatFloat(t.Float, 'g', -1, 64)
	case Str:
		return strconv.Quote(t.Text)
	case Compound:
		return t.Functor
	case List:
		return "[]"
	}
	return "?"
}

// instancesOf appends to dst the instances of every variable in expression
// t, each prefixed with the path accumulated so far.
func instancesOf(t *Term, prefix Path, dst map[string][]Path) {
	if t.Kind == Var {
		p := make(Path, len(prefix))
		copy(p, prefix)
		dst[t.Functor] = append(dst[t.Functor], p)
		return
	}
	label := nodeLabel(t)
	for i, a := range t.Args {
		instancesOf(a, append(prefix, Step{Functor: label, Index: i + 1}), dst)
	}
}

// VarInstances maps each variable name appearing in a set of expressions to
// the list of its instances (Definition 4.9), in a canonical sorted order so
// that two lists may be compared for set equality.
type VarInstances map[string][]Path

// InstancesOfExpr returns the variable instances of a single expression.
func InstancesOfExpr(t *Term) VarInstances {
	vi := VarInstances{}
	instancesOf(t, nil, vi)
	vi.normalize()
	return vi
}

// InstancesOfRule returns the list of instances of each variable in the rule
// (the paper's vi_r): the union of the variable instances over the head and
// every body literal. Negated literals contribute paths rooted at 'not', so
// an occurrence under negation is a distinct instance from a positive one.
func InstancesOfRule(c *Clause) VarInstances {
	vi := VarInstances{}
	instancesOf(c.Head, nil, vi)
	for _, l := range c.Body {
		instancesOf(l.Term(), nil, vi)
	}
	vi.normalize()
	return vi
}

func (vi VarInstances) normalize() {
	for v, ps := range vi {
		sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
		vi[v] = ps
	}
}

// SameConcept reports whether variable a (under instance lists via) and
// variable b (under vib) have identical instance lists, i.e. refer to the
// same concept in their respective rules (Definition 4.11, second branch).
func SameConcept(via VarInstances, a string, vib VarInstances, b string) bool {
	pa, pb := via[a], vib[b]
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			return false
		}
	}
	return true
}

// String renders the instance lists sorted by variable name, for debugging
// and golden tests.
func (vi VarInstances) String() string {
	names := make([]string, 0, len(vi))
	for v := range vi {
		names = append(names, v)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, v := range names {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(v)
		b.WriteString(": ")
		for j, p := range vi[v] {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
	}
	return b.String()
}
