package lang

// Subst is a substitution: a binding of variable names to terms. Bound terms
// may themselves contain variables bound elsewhere in the substitution;
// Resolve follows such chains.
type Subst map[string]*Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return Subst{} }

// Clone returns a shallow copy of the substitution (terms are immutable and
// shared).
func (s Subst) Clone() Subst {
	n := make(Subst, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

// walk dereferences t while it is a variable bound in s.
func (s Subst) walk(t *Term) *Term {
	for t.Kind == Var {
		b, ok := s[t.Functor]
		if !ok {
			return t
		}
		t = b
	}
	return t
}

// Resolve applies the substitution to t, returning a term in which every
// bound variable has been replaced by its (recursively resolved) binding.
func (s Subst) Resolve(t *Term) *Term {
	t = s.walk(t)
	if len(t.Args) == 0 {
		return t
	}
	// Terms are immutable, so unchanged subtrees are returned as-is; the
	// argument slice is only copied on the first argument that actually
	// resolves to something new. Resolving a ground term allocates nothing.
	var args []*Term
	for i, a := range t.Args {
		r := s.Resolve(a)
		if args == nil {
			if r == a {
				continue
			}
			args = make([]*Term, len(t.Args))
			copy(args, t.Args[:i])
		}
		args[i] = r
	}
	if args == nil {
		return t
	}
	n := *t
	n.Args = args
	return &n
}

// occurs reports whether variable name occurs in t under substitution s —
// the occurs check that keeps substitutions acyclic (binding X to f(X)
// would make Resolve diverge).
func (s Subst) occurs(name string, t *Term) bool {
	t = s.walk(t)
	if t.Kind == Var {
		return t.Functor == name
	}
	for _, a := range t.Args {
		if s.occurs(name, a) {
			return true
		}
	}
	return false
}

// Unify attempts to unify a and b under substitution s, extending s in place.
// It reports whether unification succeeded; on failure s may contain partial
// bindings, so callers that need backtracking should Clone first or use
// UnifyInto. Unification is performed with the occurs check, so the
// resulting substitution is always acyclic.
func (s Subst) Unify(a, b *Term) bool {
	a, b = s.walk(a), s.walk(b)
	if a.Kind == Var {
		if b.Kind == Var && a.Functor == b.Functor {
			return true
		}
		if s.occurs(a.Functor, b) {
			return false
		}
		s[a.Functor] = b
		return true
	}
	if b.Kind == Var {
		if s.occurs(b.Functor, a) {
			return false
		}
		s[b.Functor] = a
		return true
	}
	if a.Kind != b.Kind {
		// Permit int/float numeric identity (5 unifies with 5.0).
		na, aok := a.Number()
		nb, bok := b.Number()
		return aok && bok && na == nb
	}
	switch a.Kind {
	case Atom:
		return a.Functor == b.Functor
	case Int:
		return a.Int == b.Int
	case Float:
		return a.Float == b.Float
	case Str:
		return a.Text == b.Text
	case Compound:
		if a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
	case List:
		if len(a.Args) != len(b.Args) {
			return false
		}
	}
	for i := range a.Args {
		if !s.Unify(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// UnifyInto unifies a and b under a copy of s, returning the extended copy
// and true on success, or nil and false on failure. s itself is unchanged.
func (s Subst) UnifyInto(a, b *Term) (Subst, bool) {
	n := s.Clone()
	if n.Unify(a, b) {
		return n, true
	}
	return nil, false
}

// RenameApart returns a copy of the clause whose variables have been renamed
// with the given suffix, so that evaluating the clause cannot capture
// variables of the caller's query.
func (c *Clause) RenameApart(suffix string) *Clause {
	ren := func(t *Term) *Term { return renameVars(t, suffix) }
	n := &Clause{Head: ren(c.Head), Pos: c.Pos}
	if len(c.Body) > 0 {
		n.Body = make([]Literal, len(c.Body))
		for i, l := range c.Body {
			n.Body[i] = Literal{Neg: l.Neg, Atom: ren(l.Atom)}
		}
	}
	return n
}

func renameVars(t *Term, suffix string) *Term {
	if t.Kind == Var {
		return NewVar(t.Functor + suffix)
	}
	if len(t.Args) == 0 {
		return t
	}
	changed := false
	args := make([]*Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = renameVars(a, suffix)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return t
	}
	n := *t
	n.Args = args
	return &n
}
