package lang

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerStructuralIdentity(t *testing.T) {
	in := NewInterner()
	a := NewCompound("=", NewCompound("trawling", NewAtom("v1")), NewAtom("true"))
	b := NewCompound("=", NewCompound("trawling", NewAtom("v1")), NewAtom("true"))
	c := NewCompound("=", NewCompound("trawling", NewAtom("v2")), NewAtom("true"))

	if Hash(a) != Hash(b) {
		t.Fatalf("structurally equal terms hash differently")
	}
	ida, idb, idc := in.ID(a), in.ID(b), in.ID(c)
	if ida != idb {
		t.Fatalf("equal terms got distinct IDs %d and %d", ida, idb)
	}
	if ida == idc {
		t.Fatalf("distinct terms share ID %d", ida)
	}
	if got, want := in.StringOf(ida), a.String(); got != want {
		t.Fatalf("StringOf = %q, want %q", got, want)
	}
	if !in.TermOf(idc).Equal(c) {
		t.Fatalf("TermOf(%d) does not round-trip", idc)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if _, ok := in.Lookup(b); !ok {
		t.Fatalf("Lookup missed an interned term")
	}
	if _, ok := in.Lookup(NewAtom("never")); ok {
		t.Fatalf("Lookup found a term that was never interned")
	}
}

func TestInternerKindDiscrimination(t *testing.T) {
	in := NewInterner()
	cases := []*Term{
		NewInt(5), NewFloat(5), NewAtom("5"), NewStr("5"), NewVar("V5"),
		NewCompound("f", NewInt(5)), NewList(NewInt(5)),
	}
	seen := map[InternID]int{}
	for i, c := range cases {
		id := in.ID(c)
		if prev, dup := seen[id]; dup {
			t.Fatalf("terms %v and %v (different kinds) share an ID", cases[prev], c)
		}
		seen[id] = i
	}
}

func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	var wg sync.WaitGroup
	const goroutines, terms = 8, 64
	ids := make([][]InternID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]InternID, terms)
			for i := 0; i < terms; i++ {
				term := NewCompound("p", NewAtom(fmt.Sprintf("e%d", i)))
				ids[g][i] = in.ID(term)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < terms; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got ID %d for term %d, goroutine 0 got %d", g, ids[g][i], i, ids[0][i])
			}
		}
	}
	if in.Len() != terms {
		t.Fatalf("Len = %d, want %d", in.Len(), terms)
	}
}

func TestResolveSharesGroundTerms(t *testing.T) {
	s := NewSubst()
	ground := NewCompound("f", NewAtom("a"), NewInt(1))
	if got := s.Resolve(ground); got != ground {
		t.Fatalf("Resolve copied a ground term with an empty substitution")
	}
	s["X"] = NewAtom("b")
	if got := s.Resolve(ground); got != ground {
		t.Fatalf("Resolve copied a ground term unaffected by the substitution")
	}
	mixed := NewCompound("f", NewVar("X"), ground)
	got := s.Resolve(mixed)
	if got == mixed {
		t.Fatalf("Resolve failed to apply a binding")
	}
	if got.Args[0].Kind != Atom || got.Args[0].Functor != "b" {
		t.Fatalf("Resolve = %s, want f(b, ...)", got)
	}
	if got.Args[1] != ground {
		t.Fatalf("Resolve copied the unchanged ground subtree")
	}
}

func TestPredKey(t *testing.T) {
	c := NewCompound("vesselType", NewAtom("v1"), NewAtom("tug"))
	if got := c.Pred(); got != (PredKey{"vesselType", 2}) {
		t.Fatalf("Pred = %+v", got)
	}
	if got, want := c.Pred().String(), c.Indicator(); got != want {
		t.Fatalf("PredKey.String = %q, want Indicator %q", got, want)
	}
	if got := NewInt(3).Pred(); got != (PredKey{}) {
		t.Fatalf("non-callable Pred = %+v, want zero", got)
	}
}
