package lang

import (
	"strings"
	"testing"
)

func TestClauseKindClassification(t *testing.T) {
	cases := []struct {
		c    *Clause
		want HeadKind
	}{
		{rule1(), KindInitiatedAt},
		{&Clause{Head: NewCompound("terminatedAt", FVP(NewCompound("f", NewVar("X")), NewAtom("true")), NewVar("T")),
			Body: []Literal{Pos(NewCompound("happensAt", NewAtom("e"), NewVar("T")))}}, KindTerminatedAt},
		{&Clause{Head: NewCompound("holdsFor", FVP(NewCompound("f", NewVar("X")), NewAtom("true")), NewVar("I")),
			Body: []Literal{Pos(NewCompound("holdsFor", FVP(NewCompound("g", NewVar("X")), NewAtom("true")), NewVar("I")))}}, KindHoldsFor},
		{&Clause{Head: NewCompound("areaType", NewAtom("a1"), NewAtom("fishing"))}, KindFact},
		{&Clause{Head: NewCompound("oneIsTug", NewVar("A"), NewVar("B")),
			Body: []Literal{Pos(NewCompound("vesselType", NewVar("A"), NewAtom("tug")))}}, KindBackgroundRule},
	}
	for _, c := range cases {
		if got := c.c.Kind(); got != c.want {
			t.Errorf("Kind(%s) = %v, want %v", c.c.Head, got, c.want)
		}
	}
}

func TestHeadFVP(t *testing.T) {
	r := rule1()
	fvp, fl := r.HeadFVP()
	if fvp == nil || fl == nil {
		t.Fatal("HeadFVP returned nil for a temporal rule")
	}
	if fl.Indicator() != "withinArea/2" {
		t.Fatalf("fluent indicator = %q", fl.Indicator())
	}
	if fvp.Functor != "=" {
		t.Fatalf("fvp functor = %q", fvp.Functor)
	}
	fact := &Clause{Head: NewCompound("areaType", NewAtom("a1"), NewAtom("fishing"))}
	if f, _ := fact.HeadFVP(); f != nil {
		t.Fatal("HeadFVP on a fact must be nil")
	}
}

func TestClauseStringLayout(t *testing.T) {
	got := rule1().String()
	want := "initiatedAt(withinArea(Vl, AreaType)=true, T) :-\n" +
		"    happensAt(entersArea(Vl, AreaID), T),\n" +
		"    areaType(AreaID, AreaType)."
	if got != want {
		t.Fatalf("String() =\n%s\nwant\n%s", got, want)
	}
	fact := &Clause{Head: NewCompound("vessel", NewAtom("v1"))}
	if fact.String() != "vessel(v1)." {
		t.Fatalf("fact String() = %q", fact.String())
	}
}

func TestClauseVarsAndClone(t *testing.T) {
	r := rule1()
	vars := r.Vars()
	want := []string{"Vl", "AreaType", "T", "AreaID"}
	if strings.Join(vars, ",") != strings.Join(want, ",") {
		t.Fatalf("Vars() = %v, want %v", vars, want)
	}
	cl := r.Clone()
	if cl.String() != r.String() {
		t.Fatal("clone differs from original")
	}
	cl.Body[0].Atom.Args[1] = NewInt(9)
	if r.Body[0].Atom.Args[1].Kind == Int {
		t.Fatal("mutating clone affected original")
	}
}

func TestEventDescriptionPartitions(t *testing.T) {
	ed := &EventDescription{Clauses: []*Clause{
		rule1(),
		{Head: NewCompound("areaType", NewAtom("a1"), NewAtom("fishing"))},
		{Head: NewCompound("oneIsTug", NewVar("A"), NewVar("B")),
			Body: []Literal{Pos(NewCompound("vesselType", NewVar("A"), NewAtom("tug")))}},
	}}
	if n := len(ed.Rules()); n != 1 {
		t.Fatalf("Rules() = %d, want 1", n)
	}
	if n := len(ed.Facts()); n != 1 {
		t.Fatalf("Facts() = %d, want 1", n)
	}
	if n := len(ed.BackgroundRules()); n != 1 {
		t.Fatalf("BackgroundRules() = %d, want 1", n)
	}
	by := ed.RulesByFluent()
	if len(by["withinArea/2"]) != 1 {
		t.Fatalf("RulesByFluent missing withinArea/2: %v", by)
	}
	cl := ed.Clone()
	if len(cl.Clauses) != 3 || cl.String() != ed.String() {
		t.Fatal("Clone() mismatch")
	}
}

func TestLiteralTermWrapsNegation(t *testing.T) {
	a := NewCompound("holdsAt", NewAtom("f"), NewVar("T"))
	if got := Neg(a).Term().Functor; got != "not" {
		t.Fatalf("negated literal term functor = %q", got)
	}
	if got := Pos(a).Term(); got != a {
		t.Fatal("positive literal term must be the atom itself")
	}
	if got := Neg(a).String(); got != "not holdsAt(f, T)" {
		t.Fatalf("literal String() = %q", got)
	}
}

func TestKindAndHeadKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Var: "var", Atom: "atom", Int: "int", Float: "float",
		Str: "string", Compound: "compound", List: "list", Kind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	for k, want := range map[HeadKind]string{
		KindFact: "fact", KindInitiatedAt: "initiatedAt",
		KindTerminatedAt: "terminatedAt", KindHoldsFor: "holdsFor",
		KindBackgroundRule: "backgroundRule", HeadKind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("HeadKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestSortTermsAndSmallAccessors(t *testing.T) {
	ts := []*Term{NewAtom("b"), NewInt(1), NewAtom("a")}
	SortTerms(ts)
	if ts[0].Int != 1 || ts[1].Functor != "a" || ts[2].Functor != "b" {
		t.Fatalf("SortTerms order: %v", ts)
	}
	if NewCompound("f", NewInt(1)).Arity() != 1 || NewAtom("a").Arity() != 0 {
		t.Fatal("Arity wrong")
	}
	if !NewStr("s").IsConst() || NewVar("X").IsConst() || NewList().IsConst() {
		t.Fatal("IsConst wrong")
	}
}

func TestVarInstancesString(t *testing.T) {
	vi := InstancesOfRule(rule1())
	s := vi.String()
	if !strings.Contains(s, "AreaID: [(areaType,1)]") {
		t.Fatalf("VarInstances.String missing content:\n%s", s)
	}
}

func TestNodeLabelsInPaths(t *testing.T) {
	// List containers label their path steps "[]", so positions inside
	// construct argument lists are part of a variable's concept identity.
	e := NewCompound("union_all", NewList(NewVar("I1"), NewVar("I2")), NewVar("I"))
	vi := InstancesOfExpr(e)
	if got := vi["I1"][0].String(); got != "[(union_all,1), ([],1)]" {
		t.Fatalf("list path = %q", got)
	}
	if got := vi["I"][0].String(); got != "[(union_all,2)]" {
		t.Fatalf("direct path = %q", got)
	}
}
