package lang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genPropTerm builds a random term over a small vocabulary, with variables.
func genPropTerm(r *rand.Rand, depth int) *Term {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return NewVar([]string{"X", "Y", "Z"}[r.Intn(3)])
		case 1:
			return NewAtom([]string{"a", "b", "c"}[r.Intn(3)])
		case 2:
			return NewInt(int64(r.Intn(3)))
		default:
			return NewAtom("d")
		}
	}
	n := 1 + r.Intn(3)
	args := make([]*Term, n)
	for i := range args {
		args[i] = genPropTerm(r, depth-1)
	}
	return NewCompound([]string{"f", "g"}[r.Intn(2)], args...)
}

// TestPropUnifySoundness: whenever Unify(a, b) succeeds, resolving both
// sides under the resulting substitution yields equal terms.
func TestPropUnifySoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genPropTerm(r, 3)
		b := genPropTerm(r, 3)
		s := NewSubst()
		if !s.Unify(a, b) {
			return true // failure is always sound
		}
		ra, rb := s.Resolve(a), s.Resolve(b)
		if ra.Equal(rb) {
			return true
		}
		// Numeric identity across kinds is permitted by Unify.
		na, aok := ra.Number()
		nb, bok := rb.Number()
		return aok && bok && na == nb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropUnifyReflexive: every term unifies with itself and resolves
// unchanged under the resulting substitution.
func TestPropUnifyReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genPropTerm(r, 3)
		s := NewSubst()
		return s.Unify(a, a) && s.Resolve(a).Equal(s.Resolve(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCompareConsistentWithEqual: Compare(a, b) == 0 exactly when the
// terms are structurally equal (for ground terms).
func TestPropCompareConsistentWithEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genPropTerm(r, 2)
		b := genPropTerm(r, 2)
		if !a.IsGround() || !b.IsGround() {
			return true
		}
		if (Compare(a, b) == 0) != a.Equal(b) {
			return false
		}
		// Antisymmetry.
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCloneEqual: clones are structurally equal and print identically.
func TestPropCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genPropTerm(r, 3)
		c := a.Clone()
		return a.Equal(c) && a.String() == c.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
