package lang

import "strconv"

// Position is a source position in an event-description text: 1-based line
// and column of the first character of a construct. The zero Position means
// "position unknown", which is what programmatically constructed terms carry.
type Position struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// IsValid reports whether p points at a real source location.
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col", or "-" when unknown.
func (p Position) String() string {
	if !p.IsValid() {
		return "-"
	}
	return strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Col)
}

// Before imposes a total order on positions: by line, then column. Unknown
// positions sort first.
func (p Position) Before(q Position) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}
