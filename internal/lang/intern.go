package lang

import (
	"math"
	"strconv"
	"sync"
)

// This file implements structural term interning: a concurrency-safe pool
// mapping structurally-equal terms to stable integer IDs. The RTEC engine
// keys its per-window caches by InternID instead of by rendered term string,
// so the canonical string of a ground fluent-value pair is computed once per
// engine lifetime instead of once per cache access.

// PredKey identifies a predicate by functor and arity without the "f/n"
// string concatenation of Indicator. It is a comparable value type, suitable
// as a map key on hot paths.
type PredKey struct {
	Functor string
	Arity   int
}

// String renders the key in indicator notation ("functor/arity").
func (k PredKey) String() string { return k.Functor + "/" + strconv.Itoa(k.Arity) }

// Pred returns the predicate key of a callable term. The zero PredKey is
// returned for non-callable terms (its Functor is empty, which no callable
// term can carry).
func (t *Term) Pred() PredKey {
	if !t.IsCallable() {
		return PredKey{}
	}
	return PredKey{Functor: t.Functor, Arity: len(t.Args)}
}

// Hash returns a structural FNV-1a hash of the term: structurally equal
// terms (in the sense of Equal) hash identically.
func Hash(t *Term) uint64 {
	return hashTerm(fnvOffset, t)
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return hashByte(h, 0xff) // length delimiter
}

func hashUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v>>(8*i)))
	}
	return h
}

func hashTerm(h uint64, t *Term) uint64 {
	h = hashByte(h, byte(t.Kind))
	switch t.Kind {
	case Var, Atom:
		h = hashString(h, t.Functor)
	case Int:
		h = hashUint64(h, uint64(t.Int))
	case Float:
		h = hashUint64(h, math.Float64bits(t.Float))
	case Str:
		h = hashString(h, t.Text)
	case Compound:
		h = hashString(h, t.Functor)
		fallthrough
	case List:
		h = hashByte(h, byte(len(t.Args)))
		for _, a := range t.Args {
			h = hashTerm(h, a)
		}
	}
	return h
}

// InternID is the stable identifier of an interned term within one Interner.
// IDs are dense, starting at 0, in first-interning order.
type InternID int32

// Interner maps structurally-equal terms to stable IDs and caches each
// term's canonical rendering. It is safe for concurrent use: lookups take a
// read lock, insertions a write lock. Within the RTEC engine, insertions
// only happen on the sequential merge path, so parallel rule evaluation
// contends only on the read lock.
type Interner struct {
	mu      sync.RWMutex
	buckets map[uint64][]InternID
	terms   []*Term
	strs    []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{buckets: map[uint64][]InternID{}}
}

// Lookup returns the ID of a previously interned term structurally equal to
// t, without interning it on a miss.
func (in *Interner) Lookup(t *Term) (InternID, bool) {
	h := Hash(t)
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, id := range in.buckets[h] {
		if in.terms[id].Equal(t) {
			return id, true
		}
	}
	return 0, false
}

// ID interns t (if new) and returns its stable ID. The canonical rendering
// is computed once, at first interning.
func (in *Interner) ID(t *Term) InternID {
	h := Hash(t)
	in.mu.RLock()
	for _, id := range in.buckets[h] {
		if in.terms[id].Equal(t) {
			in.mu.RUnlock()
			return id
		}
	}
	in.mu.RUnlock()

	in.mu.Lock()
	defer in.mu.Unlock()
	// Re-check: another goroutine may have interned t between the locks.
	for _, id := range in.buckets[h] {
		if in.terms[id].Equal(t) {
			return id
		}
	}
	id := InternID(len(in.terms))
	in.buckets[h] = append(in.buckets[h], id)
	in.terms = append(in.terms, t)
	in.strs = append(in.strs, t.String())
	return id
}

// TermOf returns the interned term of an ID.
func (in *Interner) TermOf(id InternID) *Term {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.terms[id]
}

// StringOf returns the cached canonical rendering of an interned term.
func (in *Interner) StringOf(id InternID) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.strs[id]
}

// Len returns the number of interned terms.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.terms)
}
