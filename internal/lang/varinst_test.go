package lang

import "testing"

// rule1 builds rule (1) of the paper:
//
//	initiatedAt(withinArea(Vl,AreaType)=true, T) :-
//	    happensAt(entersArea(Vl,AreaID), T),
//	    areaType(AreaID,AreaType).
func rule1() *Clause {
	return &Clause{
		Head: NewCompound("initiatedAt",
			FVP(NewCompound("withinArea", NewVar("Vl"), NewVar("AreaType")), NewAtom("true")),
			NewVar("T")),
		Body: []Literal{
			Pos(NewCompound("happensAt", NewCompound("entersArea", NewVar("Vl"), NewVar("AreaID")), NewVar("T"))),
			Pos(NewCompound("areaType", NewVar("AreaID"), NewVar("AreaType"))),
		},
	}
}

// TestInstancesOfRulePaperExample410 checks the variable-instance lists of
// rule (1) against the paper's Example 4.10 verbatim.
func TestInstancesOfRulePaperExample410(t *testing.T) {
	vi := InstancesOfRule(rule1())

	wantVl := []string{
		"[(happensAt,1), (entersArea,1)]",
		"[(initiatedAt,1), (=,1), (withinArea,1)]",
	}
	checkInstances(t, vi, "Vl", wantVl)

	wantAreaType := []string{
		"[(areaType,2)]",
		"[(initiatedAt,1), (=,1), (withinArea,2)]",
	}
	checkInstances(t, vi, "AreaType", wantAreaType)

	wantAreaID := []string{
		"[(areaType,1)]",
		"[(happensAt,1), (entersArea,2)]",
	}
	checkInstances(t, vi, "AreaID", wantAreaID)

	wantT := []string{
		"[(happensAt,2)]",
		"[(initiatedAt,2)]",
	}
	checkInstances(t, vi, "T", wantT)
}

func checkInstances(t *testing.T, vi VarInstances, v string, want []string) {
	t.Helper()
	got := vi[v]
	if len(got) != len(want) {
		t.Fatalf("%s: %d instances %v, want %d %v", v, len(got), got, len(want), want)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("%s instance %d = %s, want %s", v, i, got[i], want[i])
		}
	}
}

// TestSameConceptRenamingInvariance follows Example 4.13: renaming AreaID to
// Area leaves the instance lists identical, so the two variables denote the
// same concept across the two rules.
func TestSameConceptRenamingInvariance(t *testing.T) {
	r1 := rule1()
	r6 := r1.RenameApart("")
	// Rename AreaID -> Area in r6 by rebuilding.
	r6 = renameClauseVar(r1, "AreaID", "Area")
	vi1 := InstancesOfRule(r1)
	vi6 := InstancesOfRule(r6)
	if !SameConcept(vi1, "AreaID", vi6, "Area") {
		t.Fatal("renamed variable must denote the same concept")
	}
	if !SameConcept(vi1, "Vl", vi6, "Vl") {
		t.Fatal("untouched variable must denote the same concept")
	}
	if SameConcept(vi1, "Vl", vi6, "Area") {
		t.Fatal("different variables reported as same concept")
	}
}

// TestSameConceptArgumentSwap follows rule (7) of the paper: swapping the
// arguments of areaType changes the instance lists of AreaType and AreaID.
func TestSameConceptArgumentSwap(t *testing.T) {
	r1 := rule1()
	r7 := rule1()
	cond := r7.Body[1].Atom
	r7.Body[1] = Pos(NewCompound("areaType", cond.Args[1], cond.Args[0]))
	vi1 := InstancesOfRule(r1)
	vi7 := InstancesOfRule(r7)
	if SameConcept(vi1, "AreaType", vi7, "AreaType") {
		t.Fatal("AreaType concept must differ after argument swap")
	}
	if SameConcept(vi1, "AreaID", vi7, "AreaID") {
		t.Fatal("AreaID concept must differ after argument swap")
	}
	if !SameConcept(vi1, "Vl", vi7, "Vl") {
		t.Fatal("Vl is unaffected by the swap")
	}
}

func renameClauseVar(c *Clause, from, to string) *Clause {
	var ren func(t *Term) *Term
	ren = func(t *Term) *Term {
		if t.Kind == Var && t.Functor == from {
			return NewVar(to)
		}
		if len(t.Args) == 0 {
			return t
		}
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = ren(a)
		}
		n := *t
		n.Args = args
		return &n
	}
	out := &Clause{Head: ren(c.Head)}
	for _, l := range c.Body {
		out.Body = append(out.Body, Literal{Neg: l.Neg, Atom: ren(l.Atom)})
	}
	return out
}

func TestNegationAffectsInstances(t *testing.T) {
	pos := &Clause{Head: NewCompound("p", NewVar("X")),
		Body: []Literal{Pos(NewCompound("q", NewVar("X")))}}
	neg := &Clause{Head: NewCompound("p", NewVar("X")),
		Body: []Literal{Neg(NewCompound("q", NewVar("X")))}}
	vip, vin := InstancesOfRule(pos), InstancesOfRule(neg)
	if SameConcept(vip, "X", vin, "X") {
		t.Fatal("occurrence under negation must be a distinct instance")
	}
}

func TestInstancesOfExpr(t *testing.T) {
	e := NewCompound("happensAt", NewCompound("gap_start", NewVar("Vl")), NewVar("T"))
	vi := InstancesOfExpr(e)
	checkInstances(t, vi, "Vl", []string{"[(happensAt,1), (gap_start,1)]"})
	checkInstances(t, vi, "T", []string{"[(happensAt,2)]"})
}
