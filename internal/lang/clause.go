package lang

import "strings"

// Literal is a possibly negated body condition.
type Literal struct {
	Neg  bool
	Atom *Term
}

// Term returns the literal as a plain term, wrapping negated literals in a
// unary 'not' compound. This is the representation used when comparing
// literals in the similarity metric and when building variable-instance
// paths: a negated condition is a different expression from its positive
// counterpart.
func (l Literal) Term() *Term {
	if l.Neg {
		return NewCompound("not", l.Atom)
	}
	return l.Atom
}

// String renders the literal in concrete syntax.
func (l Literal) String() string {
	if l.Neg {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Pos returns a positive literal holding atom.
func Pos(atom *Term) Literal { return Literal{Atom: atom} }

// Neg returns a negated literal holding atom.
func Neg(atom *Term) Literal { return Literal{Neg: true, Atom: atom} }

// Clause is a rule Head :- Body, or a fact when Body is empty.
type Clause struct {
	Head *Term
	Body []Literal
	Pos  Position // source position of the clause head when parsed; zero otherwise
}

// IsFact reports whether the clause has an empty body.
func (c *Clause) IsFact() bool { return len(c.Body) == 0 }

// String renders the clause in concrete syntax, one condition per line for
// rules, matching the layout used in RTEC event-description files.
func (c *Clause) String() string {
	var b strings.Builder
	b.WriteString(c.Head.String())
	if len(c.Body) > 0 {
		b.WriteString(" :-\n")
		for i, l := range c.Body {
			b.WriteString("    ")
			b.WriteString(l.String())
			if i < len(c.Body)-1 {
				b.WriteString(",\n")
			}
		}
	}
	b.WriteString(".")
	return b.String()
}

// Vars returns the variable names occurring in the clause, head first, in
// first-occurrence order.
func (c *Clause) Vars() []string {
	seen := map[string]bool{}
	out := c.Head.vars(nil, seen)
	for _, l := range c.Body {
		out = l.Atom.vars(out, seen)
	}
	return out
}

// Clone returns a deep copy of the clause.
func (c *Clause) Clone() *Clause {
	n := &Clause{Head: c.Head.Clone(), Pos: c.Pos}
	if len(c.Body) > 0 {
		n.Body = make([]Literal, len(c.Body))
		for i, l := range c.Body {
			n.Body[i] = Literal{Neg: l.Neg, Atom: l.Atom.Clone()}
		}
	}
	return n
}

// HeadKind classifies what a clause defines within an event description.
type HeadKind int

const (
	// KindFact is a background fact (atemporal knowledge or a declaration).
	KindFact HeadKind = iota
	// KindInitiatedAt is an initiation rule of a simple FVP.
	KindInitiatedAt
	// KindTerminatedAt is a termination rule of a simple FVP.
	KindTerminatedAt
	// KindHoldsFor is the defining rule of a statically determined FVP.
	KindHoldsFor
	// KindBackgroundRule is a non-temporal auxiliary rule.
	KindBackgroundRule
)

func (k HeadKind) String() string {
	switch k {
	case KindFact:
		return "fact"
	case KindInitiatedAt:
		return "initiatedAt"
	case KindTerminatedAt:
		return "terminatedAt"
	case KindHoldsFor:
		return "holdsFor"
	case KindBackgroundRule:
		return "backgroundRule"
	}
	return "unknown"
}

// Kind classifies the clause by inspecting its head functor.
func (c *Clause) Kind() HeadKind {
	switch {
	case c.Head.Kind == Compound && c.Head.Functor == "initiatedAt" && len(c.Head.Args) == 2:
		return KindInitiatedAt
	case c.Head.Kind == Compound && c.Head.Functor == "terminatedAt" && len(c.Head.Args) == 2:
		return KindTerminatedAt
	case c.Head.Kind == Compound && c.Head.Functor == "holdsFor" && len(c.Head.Args) == 2:
		return KindHoldsFor
	case c.IsFact():
		return KindFact
	default:
		return KindBackgroundRule
	}
}

// HeadFVP extracts the fluent-value pair term (the '='(F,V) compound) from a
// temporal rule head, or nil when the clause is not a temporal rule or its
// head is malformed. The second result is the fluent term F itself.
func (c *Clause) HeadFVP() (fvp, fluent *Term) {
	switch c.Kind() {
	case KindInitiatedAt, KindTerminatedAt, KindHoldsFor:
	default:
		return nil, nil
	}
	arg := c.Head.Args[0]
	if arg.Kind == Compound && arg.Functor == "=" && len(arg.Args) == 2 {
		return arg, arg.Args[0]
	}
	return nil, nil
}

// EventDescription is a parsed RTEC event description: the full set of
// clauses (temporal rules, background rules, facts and declarations) that
// formalise the activities of a domain.
type EventDescription struct {
	Clauses []*Clause
}

// String renders the event description as concrete syntax, clauses separated
// by blank lines.
func (ed *EventDescription) String() string {
	parts := make([]string, len(ed.Clauses))
	for i, c := range ed.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, "\n\n") + "\n"
}

// Rules returns the temporal rules (initiatedAt/terminatedAt/holdsFor heads).
func (ed *EventDescription) Rules() []*Clause {
	var out []*Clause
	for _, c := range ed.Clauses {
		switch c.Kind() {
		case KindInitiatedAt, KindTerminatedAt, KindHoldsFor:
			out = append(out, c)
		}
	}
	return out
}

// Facts returns the fact clauses (background knowledge and declarations).
func (ed *EventDescription) Facts() []*Clause {
	var out []*Clause
	for _, c := range ed.Clauses {
		if c.Kind() == KindFact {
			out = append(out, c)
		}
	}
	return out
}

// BackgroundRules returns the non-temporal auxiliary rules.
func (ed *EventDescription) BackgroundRules() []*Clause {
	var out []*Clause
	for _, c := range ed.Clauses {
		if c.Kind() == KindBackgroundRule {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns a deep copy of the event description.
func (ed *EventDescription) Clone() *EventDescription {
	n := &EventDescription{Clauses: make([]*Clause, len(ed.Clauses))}
	for i, c := range ed.Clauses {
		n.Clauses[i] = c.Clone()
	}
	return n
}

// RulesByFluent groups the temporal rules of ed by the indicator of the
// fluent in their head FVP (e.g. "withinArea/2"). Rules with malformed heads
// are grouped under "".
func (ed *EventDescription) RulesByFluent() map[string][]*Clause {
	out := map[string][]*Clause{}
	for _, c := range ed.Rules() {
		_, fl := c.HeadFVP()
		key := ""
		if fl != nil {
			key = fl.Indicator()
		}
		out[key] = append(out[key], c)
	}
	return out
}
