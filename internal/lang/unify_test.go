package lang

import "testing"

func TestUnifyBasics(t *testing.T) {
	s := NewSubst()
	a := NewCompound("entersArea", NewVar("Vl"), NewVar("Area"))
	b := NewCompound("entersArea", NewAtom("v42"), NewAtom("a1"))
	if !s.Unify(a, b) {
		t.Fatal("unification failed")
	}
	if got := s.Resolve(a); !got.Equal(b) {
		t.Fatalf("Resolve = %s, want %s", got, b)
	}
}

func TestUnifyOccursSharedVariable(t *testing.T) {
	s := NewSubst()
	a := NewCompound("f", NewVar("X"), NewVar("X"))
	b := NewCompound("f", NewAtom("a"), NewAtom("b"))
	if s.Unify(a, b) {
		t.Fatal("f(X,X) must not unify with f(a,b)")
	}
	s = NewSubst()
	c := NewCompound("f", NewAtom("a"), NewAtom("a"))
	if !s.Unify(a, c) {
		t.Fatal("f(X,X) must unify with f(a,a)")
	}
}

func TestUnifyFunctorArityMismatch(t *testing.T) {
	s := NewSubst()
	if s.Unify(NewCompound("f", NewInt(1)), NewCompound("g", NewInt(1))) {
		t.Fatal("different functors unified")
	}
	s = NewSubst()
	if s.Unify(NewCompound("f", NewInt(1)), NewCompound("f", NewInt(1), NewInt(2))) {
		t.Fatal("different arities unified")
	}
}

func TestUnifyNumericIdentity(t *testing.T) {
	s := NewSubst()
	if !s.Unify(NewInt(5), NewFloat(5)) {
		t.Fatal("5 and 5.0 should unify numerically")
	}
	s = NewSubst()
	if s.Unify(NewInt(5), NewFloat(5.5)) {
		t.Fatal("5 and 5.5 unified")
	}
}

func TestUnifyVariableChains(t *testing.T) {
	s := NewSubst()
	if !s.Unify(NewVar("X"), NewVar("Y")) {
		t.Fatal("var-var unification failed")
	}
	if !s.Unify(NewVar("Y"), NewAtom("a")) {
		t.Fatal("binding chained var failed")
	}
	if got := s.Resolve(NewVar("X")); !got.Equal(NewAtom("a")) {
		t.Fatalf("Resolve(X) = %s, want a", got)
	}
}

func TestUnifyIntoPreservesOriginal(t *testing.T) {
	s := NewSubst()
	s["Z"] = NewAtom("z")
	n, ok := s.UnifyInto(NewVar("X"), NewAtom("a"))
	if !ok {
		t.Fatal("UnifyInto failed")
	}
	if _, bound := s["X"]; bound {
		t.Fatal("UnifyInto mutated the receiver")
	}
	if !n["X"].Equal(NewAtom("a")) || !n["Z"].Equal(NewAtom("z")) {
		t.Fatal("UnifyInto result missing bindings")
	}
	if _, ok := s.UnifyInto(NewAtom("a"), NewAtom("b")); ok {
		t.Fatal("UnifyInto of distinct atoms succeeded")
	}
}

func TestUnifyLists(t *testing.T) {
	s := NewSubst()
	a := NewList(NewVar("A"), NewVar("B"))
	b := NewList(NewInt(1), NewInt(2))
	if !s.Unify(a, b) {
		t.Fatal("list unification failed")
	}
	if !s.Resolve(NewVar("B")).Equal(NewInt(2)) {
		t.Fatal("list element binding wrong")
	}
	s = NewSubst()
	if s.Unify(NewList(NewInt(1)), NewList(NewInt(1), NewInt(2))) {
		t.Fatal("lists of different length unified")
	}
}

func TestRenameApart(t *testing.T) {
	c := &Clause{
		Head: NewCompound("p", NewVar("X")),
		Body: []Literal{Pos(NewCompound("q", NewVar("X"), NewVar("Y")))},
	}
	r := c.RenameApart("_1")
	if r.Head.Args[0].Functor != "X_1" {
		t.Fatalf("head var = %q", r.Head.Args[0].Functor)
	}
	if r.Body[0].Atom.Args[1].Functor != "Y_1" {
		t.Fatalf("body var = %q", r.Body[0].Atom.Args[1].Functor)
	}
	// Original untouched.
	if c.Head.Args[0].Functor != "X" {
		t.Fatal("RenameApart mutated original")
	}
}

func TestResolveSharesUnchangedSubtrees(t *testing.T) {
	s := NewSubst()
	ground := NewCompound("g", NewAtom("a"))
	tm := NewCompound("f", ground, NewVar("X"))
	s["X"] = NewInt(1)
	r := s.Resolve(tm)
	if r.Args[0] != ground {
		t.Fatal("Resolve copied an unchanged ground subtree")
	}
}

func TestUnifyOccursCheck(t *testing.T) {
	s := NewSubst()
	x := NewVar("X")
	fx := NewCompound("f", NewVar("X"))
	if s.Unify(x, fx) {
		t.Fatal("X must not unify with f(X)")
	}
	// Indirect cycle: X = Y, Y = f(X).
	s = NewSubst()
	if !s.Unify(NewVar("X"), NewVar("Y")) {
		t.Fatal("var-var unification failed")
	}
	if s.Unify(NewVar("Y"), NewCompound("f", NewVar("X"))) {
		t.Fatal("indirect cycle accepted")
	}
}
