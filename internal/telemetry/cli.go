package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
)

// CLIConfig carries the observability flags shared by the CLIs
// (-trace, -metrics, -v, -pprof). Zero value = everything off except the
// warning-level logger.
type CLIConfig struct {
	// TracePath, when non-empty, enables the tracer and names the Chrome
	// trace_event JSON file written at exit (open in chrome://tracing or
	// https://ui.perfetto.dev).
	TracePath string
	// Metrics enables the registry dump at exit.
	Metrics bool
	// Verbose lowers the logger level from Warn to Debug.
	Verbose bool
	// PprofAddr, when non-empty, serves net/http/pprof and expvar
	// (including the published metrics registry) on this address for the
	// lifetime of the process — the operational interface for long runs.
	PprofAddr string
}

// Setup builds the Telemetry a CLI threads through the engine and the
// pipeline, and returns a flush function for the exit path: it writes the
// trace file and dumps the registry to metricsW (stderr by convention, so
// stdout stays machine-readable). The registry always exists — counters are
// near-free and the dump is opt-in; the tracer only when TracePath is set.
func (c CLIConfig) Setup(logW, metricsW io.Writer, component string) (*Telemetry, func() error) {
	level := slog.LevelWarn
	if c.Verbose {
		level = slog.LevelDebug
	}
	reg := NewRegistry()
	var tr *Tracer
	if c.TracePath != "" {
		tr = NewTracer()
	}
	// Instrumentation sites attach their own "component" attribute (rtec,
	// pipeline, ...), so the logger carries none; component here names the
	// process in Setup's own log lines.
	tel := New(reg, tr, NewLogger(logW, level, ""))
	if c.PprofAddr != "" {
		reg.Publish("telemetry")
		go func() {
			tel.Logger().Info("debug server listening", "component", component,
				"addr", c.PprofAddr, "endpoints", "/debug/pprof/ /debug/vars")
			if err := http.ListenAndServe(c.PprofAddr, nil); err != nil {
				tel.Logger().Error("debug server failed", "addr", c.PprofAddr, "err", err)
			}
		}()
	}
	flush := func() error {
		if c.TracePath != "" {
			f, err := os.Create(c.TracePath)
			if err != nil {
				return fmt.Errorf("telemetry: trace output: %w", err)
			}
			if err := tr.WriteChromeTrace(f); err != nil {
				f.Close()
				return fmt.Errorf("telemetry: trace output: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("telemetry: trace output: %w", err)
			}
		}
		if c.Metrics {
			if err := reg.WriteText(metricsW); err != nil {
				return fmt.Errorf("telemetry: metrics dump: %w", err)
			}
		}
		return nil
	}
	return tel, flush
}
