package telemetry

import (
	"context"
	"io"
	"log/slog"
	"sync"
)

// HandlerOptions is the shared slog handler configuration used by every
// CLI: a level filter, and no source annotation (positions in this codebase
// point at instrumentation sites, not user code). Tests set dropTime to
// strip the volatile time attribute.
func HandlerOptions(level slog.Leveler, dropTime bool) *slog.HandlerOptions {
	opts := &slog.HandlerOptions{Level: level}
	if dropTime {
		opts.ReplaceAttr = func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		}
	}
	return opts
}

// NewLogger builds the shared text logger: "component" is attached to every
// record so interleaved engine and pipeline lines stay attributable.
func NewLogger(w io.Writer, level slog.Leveler, component string) *slog.Logger {
	l := slog.New(slog.NewTextHandler(w, HandlerOptions(level, false)))
	if component != "" {
		l = l.With("component", component)
	}
	return l
}

// NewTestLogger is NewLogger without the time attribute, for deterministic
// test assertions on the rendered output.
func NewTestLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, HandlerOptions(level, true)))
}

// discardHandler reports every level as disabled, so even argument
// evaluation for attrs is the only cost of a discarded log call.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var (
	discardOnce sync.Once
	discard     *slog.Logger
)

// Discard returns the shared no-op logger.
func Discard() *slog.Logger {
	discardOnce.Do(func() { discard = slog.New(discardHandler{}) })
	return discard
}
