package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitises a registry metric name into a legal Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes "_" (dots included),
// and a leading digit gains a "_" prefix. The canonical unit suffix is
// applied first, so counters always expose as ..._total.
func PromName(kind, name string) string {
	name = CanonicalName(kind, name)
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way the exposition format expects:
// shortest round-tripping decimal, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE header per metric
// family — the help text set with Describe, or a generic line — then the
// samples. Counters expose with the _total suffix, histograms as the
// conventional _bucket{le="..."} series plus _sum and _count. Output is
// deterministic: families sort by kind (counter, gauge, histogram) then by
// raw name, matching WriteText order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	header := func(kind, raw, pname string) error {
		help := r.helpFor(raw)
		if help == "" {
			help = fmt.Sprintf("%s %s (registered by rtecgen telemetry)", kind, raw)
		}
		if err := write("# HELP %s %s\n", pname, escapeHelp(help)); err != nil {
			return err
		}
		return write("# TYPE %s %s\n", pname, kind)
	}
	for _, name := range sortedKeys(s.Counters) {
		pname := PromName("counter", name)
		if err := header("counter", name, pname); err != nil {
			return err
		}
		if err := write("%s %d\n", pname, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pname := PromName("gauge", name)
		if err := header("gauge", name, pname); err != nil {
			return err
		}
		if err := write("%s %d\n", pname, s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		pname := PromName("histogram", name)
		if err := header("histogram", name, pname); err != nil {
			return err
		}
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if err := write("%s_bucket{le=%q} %d\n", pname, promFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if err := write("%s_bucket{le=\"+Inf\"} %d\n", pname, cum); err != nil {
			return err
		}
		if err := write("%s_sum %s\n", pname, promFloat(h.Sum)); err != nil {
			return err
		}
		if err := write("%s_count %d\n", pname, cum); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// PromMetric is one parsed metric family of an exposition document.
type PromMetric struct {
	Name string
	Type string // counter, gauge, histogram, or untyped
	Help string
	// Value is the sample for counters, gauges and untyped metrics.
	Value float64
	// Buckets, Sum and Count carry a histogram family; Buckets hold
	// cumulative counts in le order ending with the +Inf bucket.
	Buckets []PromBucket
	Sum     float64
	Count   float64
}

// PromBucket is one cumulative histogram bucket: observations <= LE.
type PromBucket struct {
	LE         float64 // +Inf for the last bucket
	Cumulative float64
}

// Snapshot converts a parsed histogram family back into the registry's
// snapshot form (per-bucket counts, not cumulative), so consumers can reuse
// HistogramSnapshot.Quantile on scraped data.
func (m *PromMetric) Snapshot() HistogramSnapshot {
	var hs HistogramSnapshot
	var prev float64
	for _, b := range m.Buckets {
		n := b.Cumulative - prev
		prev = b.Cumulative
		if math.IsInf(b.LE, 1) {
			hs.Counts = append(hs.Counts, int64(n))
			continue
		}
		hs.Bounds = append(hs.Bounds, b.LE)
		hs.Counts = append(hs.Counts, int64(n))
	}
	hs.Count = int64(m.Count)
	hs.Sum = m.Sum
	return hs
}

// ParsePrometheus reads a text exposition document and returns its metric
// families keyed by name. It understands the subset WritePrometheus emits —
// # HELP / # TYPE headers, bare samples, and histogram _bucket/_sum/_count
// series with an le label — and rejects structurally malformed lines, so it
// doubles as the CI validator for /metrics parseability.
func ParsePrometheus(r io.Reader) (map[string]*PromMetric, error) {
	out := map[string]*PromMetric{}
	types := map[string]string{}
	helps := map[string]string{}
	get := func(name string) *PromMetric {
		m, ok := out[name]
		if !ok {
			m = &PromMetric{Name: name, Type: "untyped"}
			if t, ok := types[name]; ok {
				m.Type = t
			}
			m.Help = helps[name]
			out[name] = m
		}
		return m
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				rest := ""
				if len(fields) == 4 {
					rest = fields[3]
				}
				if fields[1] == "TYPE" {
					types[name] = rest
				} else {
					helps[name] = rest
				}
				if m, ok := out[name]; ok {
					if fields[1] == "TYPE" {
						m.Type = rest
					} else {
						m.Help = rest
					}
				}
			}
			continue
		}
		name, labels, valueStr, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("prometheus: line %d: %w", lineNo, err)
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return nil, fmt.Errorf("prometheus: line %d: bad value %q", lineNo, valueStr)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			le, ok := labels["le"]
			if !ok {
				return nil, fmt.Errorf("prometheus: line %d: histogram bucket without le label", lineNo)
			}
			bound, err := parseLE(le)
			if err != nil {
				return nil, fmt.Errorf("prometheus: line %d: %w", lineNo, err)
			}
			m := get(base)
			m.Type = "histogram"
			m.Buckets = append(m.Buckets, PromBucket{LE: bound, Cumulative: value})
		case strings.HasSuffix(name, "_sum") && types[strings.TrimSuffix(name, "_sum")] == "histogram":
			get(strings.TrimSuffix(name, "_sum")).Sum = value
		case strings.HasSuffix(name, "_count") && types[strings.TrimSuffix(name, "_count")] == "histogram":
			get(strings.TrimSuffix(name, "_count")).Count = value
		default:
			get(name).Value = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, m := range out {
		if m.Type != "histogram" {
			continue
		}
		if !sort.SliceIsSorted(m.Buckets, func(i, j int) bool { return m.Buckets[i].LE < m.Buckets[j].LE }) {
			return nil, fmt.Errorf("prometheus: %s: bucket le bounds not ascending", name)
		}
		for i := 1; i < len(m.Buckets); i++ {
			if m.Buckets[i].Cumulative < m.Buckets[i-1].Cumulative {
				return nil, fmt.Errorf("prometheus: %s: bucket counts not cumulative", name)
			}
		}
	}
	return out, nil
}

// parseLE parses a bucket bound, accepting the spelled-out +Inf.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// splitSample splits one sample line into metric name, label map and value
// text. Only the simple single-label form WritePrometheus emits is
// supported; a missing value or an unterminated label set is an error.
func splitSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		end := strings.IndexByte(line, '}')
		if end < i {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		for _, pair := range strings.Split(line[i+1:end], ",") {
			if pair = strings.TrimSpace(pair); pair == "" {
				continue
			}
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 {
				return "", nil, "", fmt.Errorf("malformed label %q", pair)
			}
			labels[kv[0]] = strings.Trim(kv[1], `"`)
		}
		rest = line[end+1:]
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", nil, "", fmt.Errorf("sample without value: %q", line)
		}
		return fields[0], labels, fields[1], nil
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, "", fmt.Errorf("sample without value: %q", line)
	}
	return name, labels, fields[0], nil
}
