// Package telemetry is the observability substrate of the repository: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms), span-based tracing that exports Chrome trace_event JSON
// (loadable in chrome://tracing or Perfetto), and a log/slog-based
// structured logger with a shared handler configuration.
//
// Everything is stdlib-only and nil-tolerant: a nil *Telemetry (and every
// nil component reached through it) turns every call into a no-op costing a
// few nil checks, so instrumented hot paths — the RTEC windowed engine, the
// prompt→generate→analyze→correct→score pipeline — pay ~nothing when
// observability is disabled.
package telemetry

import (
	"log/slog"
	"time"
)

// Telemetry bundles the three observability channels threaded through the
// engine and the generation pipeline. Any field may be nil; the accessors
// below (and all component methods) degrade to no-ops.
type Telemetry struct {
	Registry *Registry
	Tracer   *Tracer
	Log      *slog.Logger
}

// New bundles a registry, a tracer and a logger. Any argument may be nil.
func New(reg *Registry, tr *Tracer, log *slog.Logger) *Telemetry {
	return &Telemetry{Registry: reg, Tracer: tr, Log: log}
}

// Counter returns the named counter, or nil when metrics are disabled.
// A nil *Counter accepts Add/Inc as no-ops.
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.Registry.Counter(name)
}

// Gauge returns the named gauge, or nil when metrics are disabled.
func (t *Telemetry) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	return t.Registry.Gauge(name)
}

// Histogram returns the named histogram with the default duration buckets,
// or nil when metrics are disabled.
func (t *Telemetry) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	return t.Registry.Histogram(name, nil)
}

// Span starts a root span on the tracer, or returns nil when tracing is
// disabled. A nil *Span accepts Span/SetAttrs/End as no-ops, so a whole
// instrumented call tree collapses to nil checks.
func (t *Telemetry) Span(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.Tracer.Span(name, attrs...)
}

// Logger never returns nil: when no logger is configured it returns the
// shared discard logger, whose handler reports every level as disabled.
func (t *Telemetry) Logger() *slog.Logger {
	if t == nil || t.Log == nil {
		return Discard()
	}
	return t.Log
}

// Time starts a stage timer: the returned stop function adds the elapsed
// microseconds to the named counter. With metrics disabled neither the
// clock nor the counter is touched. Counters named by stage and label
// (e.g. "pipeline.micros.teach.o1□") act as per-stage, per-model timers
// that survive in the registry dump.
func (t *Telemetry) Time(name string) (stop func()) {
	c := t.Counter(name)
	if c == nil {
		return func() {}
	}
	t0 := time.Now() //rtecvet:allow the stage timer exists to measure real wall-clock
	return func() { c.Add(time.Since(t0).Microseconds()) }
}
