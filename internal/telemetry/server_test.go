package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestServerHealthz(t *testing.T) {
	reg := NewRegistry()
	s := NewServer(reg)
	s.Ready("engine", func() error { return nil })
	s.Ready("journal", func() error { return nil })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, body
	}

	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", code, body)
	}
	var rep struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ok" || rep.Checks["engine"] != "ok" || rep.Checks["journal"] != "ok" {
		t.Fatalf("healthy report = %+v", rep)
	}

	// A failing subsystem degrades the whole endpoint to 503 and carries
	// the failure reason alongside the still-healthy checks.
	s.Ready("journal", func() error { return errors.New("disk full") })
	code, body = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz = %d", code)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "degraded" || rep.Checks["journal"] != "disk full" || rep.Checks["engine"] != "ok" {
		t.Fatalf("degraded report = %+v", rep)
	}
}

func TestServerDebugEndpoints(t *testing.T) {
	ts := httptest.NewServer(NewServer(NewRegistry()).Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, res.StatusCode)
		}
	}
}

// TestServerStartClose exercises the real listener path cmd/rtec -listen
// uses: bind port 0, scrape over TCP, then shut down.
func TestServerStartClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rtec.windows.evaluated").Add(3)
	s := NewServer(reg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || s.Addr() != addr {
		t.Fatalf("Addr() = %q, Start returned %q", s.Addr(), addr)
	}
	res, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "rtec_windows_evaluated_total 3") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerNilSafety(t *testing.T) {
	var s *Server
	s.Ready("x", func() error { return nil })
	if addr, err := s.Start("127.0.0.1:0"); addr != "" || err != nil {
		t.Fatalf("nil Start = %q, %v", addr, err)
	}
	if s.Addr() != "" {
		t.Fatal("nil Addr not empty")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Handler() == nil {
		t.Fatal("nil Handler returned nil")
	}
}
