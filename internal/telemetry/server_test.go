package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServerHealthz(t *testing.T) {
	reg := NewRegistry()
	s := NewServer(reg)
	s.Ready("engine", func() error { return nil })
	s.Ready("journal", func() error { return nil })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, body
	}

	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", code, body)
	}
	var rep struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ok" || rep.Checks["engine"] != "ok" || rep.Checks["journal"] != "ok" {
		t.Fatalf("healthy report = %+v", rep)
	}

	// A failing subsystem degrades the whole endpoint to 503 and carries
	// the failure reason alongside the still-healthy checks.
	s.Ready("journal", func() error { return errors.New("disk full") })
	code, body = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz = %d", code)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "degraded" || rep.Checks["journal"] != "disk full" || rep.Checks["engine"] != "ok" {
		t.Fatalf("degraded report = %+v", rep)
	}
}

func TestServerDebugEndpoints(t *testing.T) {
	ts := httptest.NewServer(NewServer(NewRegistry()).Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, res.StatusCode)
		}
	}
}

// TestServerStartClose exercises the real listener path cmd/rtec -listen
// uses: bind port 0, scrape over TCP, then shut down.
func TestServerStartClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rtec.windows.evaluated").Add(3)
	s := NewServer(reg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || s.Addr() != addr {
		t.Fatalf("Addr() = %q, Start returned %q", s.Addr(), addr)
	}
	res, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "rtec_windows_evaluated_total 3") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerNilSafety(t *testing.T) {
	var s *Server
	s.Ready("x", func() error { return nil })
	if addr, err := s.Start("127.0.0.1:0"); addr != "" || err != nil {
		t.Fatalf("nil Start = %q, %v", addr, err)
	}
	if s.Addr() != "" {
		t.Fatal("nil Addr not empty")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Handler() == nil {
		t.Fatal("nil Handler returned nil")
	}
}

// TestServerShutdownDrainsInFlight starts a scrape whose readiness check
// blocks mid-request, calls Shutdown concurrently, and asserts the scrape
// still completes with a full response — where Close would reset it.
func TestServerShutdownDrainsInFlight(t *testing.T) {
	reg := NewRegistry()
	s := NewServer(reg)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.Ready("slow", func() error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		res, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			got <- err
			return
		}
		defer res.Body.Close()
		body, err := io.ReadAll(res.Body)
		if err == nil && !strings.Contains(string(body), `"slow": "ok"`) {
			err = errors.New("truncated healthz body: " + string(body))
		}
		got <- err
	}()
	<-entered // the request is in flight
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(2 * time.Second) }()
	// Shutdown must wait for the in-flight request, not abort it.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned before the in-flight request: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-got; err != nil {
		t.Fatalf("in-flight request aborted by Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// New connections are refused after the drain.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}

func TestServerShutdownTimeoutAborts(t *testing.T) {
	reg := NewRegistry()
	s := NewServer(reg)
	entered := make(chan struct{})
	var once sync.Once
	s.Ready("wedged", func() error {
		once.Do(func() { close(entered) })
		select {} // never returns: a wedged subscriber
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go http.Get("http://" + addr + "/healthz") //nolint:errcheck // aborted by design
	<-entered
	if err := s.Shutdown(50 * time.Millisecond); err != nil {
		t.Fatalf("Shutdown after timeout: %v", err)
	}
}

func TestServerHandleMountsApplicationRoutes(t *testing.T) {
	s := NewServer(NewRegistry())
	s.Handle("/ingest", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	var nilServer *Server
	nilServer.Handle("/x", http.NotFoundHandler()) // no-op, must not panic
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/ingest", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("mounted handler not served: %d", rec.Code)
	}
	if err := s.Shutdown(0); err != nil { // nil srv: no-op
		t.Fatal(err)
	}
}
