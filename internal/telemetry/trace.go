package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values should be strings or
// integers so the exported JSON stays portable.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Tracer records spans and exports them as Chrome trace_event JSON, the
// format understood by chrome://tracing and https://ui.perfetto.dev. A nil
// *Tracer is the no-op tracer: Span returns nil, and every method of a nil
// *Span is a no-op, so instrumented code costs a handful of nil checks when
// tracing is disabled.
//
// Span start/end use the tracer's clock; End appends the completed span to
// an internal buffer under a mutex, so concurrent spans are safe.
type Tracer struct {
	now   func() time.Time
	start time.Time

	mu     sync.Mutex
	events []SpanEvent
	nextID int64
}

// SpanEvent is one completed span as it will be exported: timestamps are
// microseconds relative to the tracer's creation.
type SpanEvent struct {
	Name     string
	ID       int64 // 1-based, in span-start order
	ParentID int64 // 0 for root spans
	StartUS  int64
	DurUS    int64
	Attrs    []Attr
}

// NewTracer returns a tracer using the real clock.
func NewTracer() *Tracer { return NewTracerWithClock(time.Now) } //rtecvet:allow default tracer stamps real event times

// NewTracerWithClock returns a tracer reading time from now — tests inject
// a deterministic clock to produce byte-stable traces.
func NewTracerWithClock(now func() time.Time) *Tracer {
	return &Tracer{now: now, start: now()}
}

// Span starts a root span. Returns nil (the no-op span) on a nil tracer.
func (t *Tracer) Span(name string, attrs ...Attr) *Span {
	return t.startSpan(name, 0, attrs)
}

func (t *Tracer) startSpan(name string, parent int64, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tracer: t, name: name, id: id, parent: parent, start: t.now(), attrs: attrs}
}

// Events returns a copy of the completed spans, in End order.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// Span is one timed operation. Spans nest: children started from a span
// carry its ID, and the Chrome export nests them by time containment. A nil
// *Span is the no-op span.
type Span struct {
	tracer *Tracer
	name   string
	id     int64
	parent int64
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Span starts a child span. On a nil (no-op) span the child is nil too, so
// a disabled call tree never allocates.
func (s *Span) Span(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.startSpan(name, s.id, attrs)
}

// SetAttrs appends attributes to the span (visible in the exported args).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span and records it on the tracer. Second and later
// Ends are ignored.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.tracer
	end := t.now()
	ev := SpanEvent{
		Name:     s.name,
		ID:       s.id,
		ParentID: s.parent,
		StartUS:  s.start.Sub(t.start).Microseconds(),
		DurUS:    end.Sub(s.start).Microseconds(),
		Attrs:    s.attrs,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// chromeEvent is the trace_event wire format: one "complete" event (ph "X")
// per span. The viewer nests events on the same pid/tid by ts/dur
// containment, which matches our span nesting because children start after
// and end before their parent.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the completed spans as Chrome trace_event JSON.
// Events are sorted by start time (then ID) and the encoder sorts map keys,
// so the output is deterministic for a deterministic run.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	// Sort by start, breaking ties so parents precede children.
	sortSpanEvents(events)
	for _, ev := range events {
		args := map[string]any{"span_id": ev.ID}
		if ev.ParentID != 0 {
			args["parent_id"] = ev.ParentID
		}
		for _, a := range ev.Attrs {
			args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Name, Ph: "X", TS: ev.StartUS, Dur: ev.DurUS, PID: 1, TID: 1, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func sortSpanEvents(events []SpanEvent) {
	// Insertion sort keeps the already mostly-ordered End-order buffer
	// cheap to reorder and is dependency-free.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0; j-- {
			a, b := events[j-1], events[j]
			if a.StartUS < b.StartUS || (a.StartUS == b.StartUS && a.ID <= b.ID) {
				break
			}
			events[j-1], events[j] = b, a
		}
	}
}
