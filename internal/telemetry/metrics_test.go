package telemetry

import (
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("Counter is not idempotent per name")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	r.Reset()
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry snapshot not empty")
	}

	var tel *Telemetry
	tel.Counter("x").Inc()
	tel.Gauge("x").Set(1)
	tel.Histogram("x").ObserveDuration(time.Second)
	sp := tel.Span("root")
	sp.Span("child").End()
	sp.SetAttrs(String("k", "v"))
	sp.End()
	tel.Logger().Info("discarded")
	tel.Time("x")()
}

// TestHistogramBucketEdges pins the bucket semantics: v lands in the first
// bucket with v <= bound; values beyond the last bound land in overflow.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 100, 1000})
	for _, v := range []float64{0, 10, 10.5, 100, 1000, 1000.1, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	wantCounts := []int64{2, 2, 1, 2} // le10: {0,10}; le100: {10.5,100}; le1000: {1000}; inf: {1000.1,5000}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if want := 0.0 + 10 + 10.5 + 100 + 1000 + 1000.1 + 5000; s.Sum != want {
		t.Errorf("sum = %g, want %g", s.Sum, want)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1000, 10, 100})
	got := h.Bounds()
	want := []float64{10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
}

// TestConcurrentCounters exercises the lock-free instruments from many
// goroutines; `go test -race ./internal/telemetry/...` is part of ci.sh.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat", []float64{1, 2, 4})
			for j := 0; j < perG; j++ {
				c.Inc()
				r.Gauge("g").Add(1)
				h.Observe(float64(j % 5))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("g").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := r.Snapshot().Histograms["lat"].Count; got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotResetAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Gauge("g").Set(9)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "counter a.one_total 1\ncounter b.two_total 2\ngauge g 9\nhistogram h count=1 sum=1.5 le1=0 le2=1 inf=0\n"
	if sb.String() != want {
		t.Fatalf("WriteText:\n%s\nwant:\n%s", sb.String(), want)
	}

	r.Reset()
	s := r.Snapshot()
	if s.Counters["a.one"] != 0 || s.Gauges["g"] != 0 || s.Histograms["h"].Count != 0 {
		t.Fatalf("Reset left values: %+v", s)
	}
	// Names survive a reset so dumps still document instrumented paths.
	if _, ok := s.Counters["b.two"]; !ok {
		t.Fatal("Reset dropped registered names")
	}
}

// TestCanonicalName pins the unit-suffix rules of the text dump and the
// Prometheus exposition: counters without a unit token anywhere in the name
// gain _total; everything else is untouched.
func TestCanonicalName(t *testing.T) {
	for _, tc := range []struct{ kind, name, want string }{
		{"counter", "rtec.windows.evaluated", "rtec.windows.evaluated_total"},
		{"counter", "llm.retries", "llm.retries_total"},
		{"counter", "rtec.checkpoint.bytes", "rtec.checkpoint.bytes"},
		{"counter", "pipeline.micros.teach.o1", "pipeline.micros.teach.o1"},
		{"counter", "rtec.checkpoint.write_micros", "rtec.checkpoint.write_micros"},
		{"counter", "llm.backoff_ms", "llm.backoff_ms"},
		{"counter", "already.total", "already.total"},
		{"gauge", "rtec.workers", "rtec.workers"},
		{"histogram", "rtec.window.micros", "rtec.window.micros"},
	} {
		if got := CanonicalName(tc.kind, tc.name); got != tc.want {
			t.Errorf("CanonicalName(%s, %s) = %s, want %s", tc.kind, tc.name, got, tc.want)
		}
	}
}

// TestHistogramQuantile checks the interpolated quantile estimate against
// known distributions recorded into fine-grained buckets.
func TestHistogramQuantile(t *testing.T) {
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64((i + 1) * 10) // 10, 20, ..., 1000
	}

	// Uniform 1..1000: p50 ~ 500, p99 ~ 990, p10 ~ 100.
	r := NewRegistry()
	u := r.Histogram("u", bounds)
	for v := 1; v <= 1000; v++ {
		u.Observe(float64(v))
	}
	us := r.Snapshot().Histograms["u"]
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.10, 100, 10}, {0.50, 500, 10}, {0.99, 990, 10},
	} {
		if got := us.Quantile(tc.q); got < tc.want-tc.tol || got > tc.want+tc.tol {
			t.Errorf("uniform Quantile(%g) = %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}

	// Geometric-ish long tail: 900 obs at 5, 90 at 55, 9 at 505, 1 at 2000
	// (overflow). p50 sits in the first bucket, p99 lands on the 990th
	// observation (the last 55), p99.5 reaches the 505s, and p99.99 falls in
	// the overflow bucket and is clamped to the largest finite bound.
	g := r.Histogram("g", bounds)
	for i := 0; i < 900; i++ {
		g.Observe(5)
	}
	for i := 0; i < 90; i++ {
		g.Observe(55)
	}
	for i := 0; i < 9; i++ {
		g.Observe(505)
	}
	g.Observe(2000)
	gs := r.Snapshot().Histograms["g"]
	if got := gs.Quantile(0.50); got <= 0 || got > 10 {
		t.Errorf("tail Quantile(0.5) = %g, want in (0, 10]", got)
	}
	if got := gs.Quantile(0.99); got <= 50 || got > 60 {
		t.Errorf("tail Quantile(0.99) = %g, want in (50, 60]", got)
	}
	if got := gs.Quantile(0.995); got <= 500 || got > 510 {
		t.Errorf("tail Quantile(0.995) = %g, want in (500, 510]", got)
	}
	if got := gs.Quantile(0.9999); got != 1000 {
		t.Errorf("tail Quantile(0.9999) = %g, want clamp to 1000", got)
	}

	// Degenerate cases: empty histogram and out-of-range q.
	e := r.Histogram("e", bounds)
	_ = e
	es := r.Snapshot().Histograms["e"]
	if got := es.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %g, want 0", got)
	}
	if got := us.Quantile(1.5); got < 990 {
		t.Errorf("clamped Quantile(1.5) = %g, want >= p99", got)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub.count").Add(3)
	r.Publish("telemetry_test_registry")
	r.Publish("telemetry_test_registry") // second publish must not panic
	v := expvar.Get("telemetry_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	if !strings.Contains(v.String(), "pub.count") {
		t.Fatalf("expvar output missing metric: %s", v.String())
	}
}

func TestTelemetryTime(t *testing.T) {
	r := NewRegistry()
	tel := New(r, nil, nil)
	stop := tel.Time("stage.micros")
	time.Sleep(time.Millisecond)
	stop()
	if got := r.Counter("stage.micros").Value(); got <= 0 {
		t.Fatalf("timer recorded %d µs, want > 0", got)
	}
}
