package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every reading, making span timestamps
// deterministic.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	var calls int64
	return func() time.Time {
		t := base.Add(time.Duration(calls) * step)
		calls++
		return t
	}
}

// TestNestedSpanOrdering pins the parent/child contract: children carry the
// parent's ID, and a child both starts after and ends within its parent, so
// the Chrome viewer nests them by time containment.
func TestNestedSpanOrdering(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(100 * time.Microsecond))
	root := tr.Span("root", String("kind", "test"))
	c1 := root.Span("child1")
	g := c1.Span("grandchild")
	g.End()
	c1.End()
	c2 := root.Span("child2")
	c2.End()
	root.End()

	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	// End order: grandchild, child1, child2, root.
	byName := map[string]SpanEvent{}
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	rootEv, c1Ev, gEv, c2Ev := byName["root"], byName["child1"], byName["grandchild"], byName["child2"]
	if rootEv.ParentID != 0 {
		t.Errorf("root parent = %d, want 0", rootEv.ParentID)
	}
	if c1Ev.ParentID != rootEv.ID || c2Ev.ParentID != rootEv.ID {
		t.Errorf("children parents = %d,%d, want %d", c1Ev.ParentID, c2Ev.ParentID, rootEv.ID)
	}
	if gEv.ParentID != c1Ev.ID {
		t.Errorf("grandchild parent = %d, want %d", gEv.ParentID, c1Ev.ID)
	}
	// Time containment: parent.start <= child.start, child.end <= parent.end.
	contains := func(p, c SpanEvent) bool {
		return p.StartUS <= c.StartUS && c.StartUS+c.DurUS <= p.StartUS+p.DurUS
	}
	if !contains(rootEv, c1Ev) || !contains(rootEv, c2Ev) || !contains(c1Ev, gEv) {
		t.Errorf("span times do not nest: %+v", events)
	}
	// Sibling ordering: child1 ends before child2 starts.
	if c1Ev.StartUS+c1Ev.DurUS > c2Ev.StartUS {
		t.Errorf("siblings overlap: %+v %+v", c1Ev, c2Ev)
	}
}

func TestDoubleEndIgnored(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Microsecond))
	sp := tr.Span("once")
	sp.End()
	sp.End()
	if n := len(tr.Events()); n != 1 {
		t.Fatalf("double End produced %d events, want 1", n)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(50 * time.Microsecond))
	root := tr.Span("run", Int("events", 12))
	child := root.Span("window", Int("window_start", 0))
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int64          `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}
	if len(decoded.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(decoded.TraceEvents))
	}
	// Export order is by start time: run before window.
	if decoded.TraceEvents[0].Name != "run" || decoded.TraceEvents[1].Name != "window" {
		t.Errorf("unexpected order: %q, %q", decoded.TraceEvents[0].Name, decoded.TraceEvents[1].Name)
	}
	for _, ev := range decoded.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 || ev.TID != 1 || ev.Dur < 0 {
			t.Errorf("malformed event: %+v", ev)
		}
	}
	if v, ok := decoded.TraceEvents[1].Args["parent_id"]; !ok || v.(float64) != 1 {
		t.Errorf("child args missing parent_id: %v", decoded.TraceEvents[1].Args)
	}
	if v := decoded.TraceEvents[0].Args["events"]; v.(float64) != 12 {
		t.Errorf("root attr lost: %v", decoded.TraceEvents[0].Args)
	}
}

func TestLoggers(t *testing.T) {
	var sb strings.Builder
	l := NewTestLogger(&sb, nil)
	l.Warn("careful", "fluent", "withinArea/2")
	got := sb.String()
	if got != "level=WARN msg=careful fluent=withinArea/2\n" {
		t.Fatalf("unexpected log line: %q", got)
	}
	sb.Reset()
	l2 := NewLogger(&sb, nil, "rtec")
	l2.Info("hello")
	if !strings.Contains(sb.String(), "component=rtec") {
		t.Fatalf("component attr missing: %q", sb.String())
	}
	if Discard().Enabled(nil, 12) {
		t.Fatal("discard logger claims enabled")
	}
}
