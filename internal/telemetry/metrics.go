package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add shifts the gauge value by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default histogram bucket upper bounds, in microseconds:
// engine windows and pipeline stages span ~100µs to seconds.
var DefBuckets = []float64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1e6, 2.5e6}

// Histogram is a fixed-bucket histogram: observation v lands in the first
// bucket whose upper bound satisfies v <= bound, or in the overflow bucket.
// Observations are lock-free; a nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64      // sorted upper bounds
	counts []atomic.Int64 // len(bounds)+1, last is overflow (+Inf)
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bound
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in microseconds, the unit of
// DefBuckets. No-op on a nil histogram.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(float64(d.Microseconds()))
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 < q < 1) of the recorded
// observations by linear interpolation inside the bucket that contains the
// target rank — the same estimate Prometheus's histogram_quantile computes.
// The first bucket interpolates from zero; ranks landing in the overflow
// bucket return the largest finite bound (the estimate cannot exceed what
// the histogram resolved). An empty histogram returns 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, bound := range h.Bounds {
		n := float64(h.Counts[i])
		if cum+n >= rank && n > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			return lower + (bound-lower)*((rank-cum)/n)
		}
		cum += n
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry, with deterministic maps
// (render with WriteText for deterministic ordering).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Empty reports whether the snapshot carries no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Registry is a concurrency-safe named-metric store. Metric lookup takes a
// mutex; the returned instruments update lock-free, so hot loops should
// hoist lookups out of the loop. A nil *Registry returns nil instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// Describe attaches help text to a metric name at registration time. The
// text surfaces as the HELP line of the Prometheus exposition; metrics
// without a description are exposed with a generic one. Nil-safe.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// helpFor returns the registered help text for a raw metric name.
func (r *Registry) helpFor(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket bounds (DefBuckets when nil). The bounds of an existing
// histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: h.Bounds(),
			Counts: make([]int64, len(h.counts)),
			Sum:    math.Float64frombits(h.sum.Load()),
		}
		for i := range h.counts {
			n := h.counts[i].Load()
			hs.Counts[i] = n
			hs.Count += n
		}
		s.Histograms[name] = hs
	}
	return s
}

// Reset zeroes every metric, keeping the registered names and bucket
// layouts (so long-running servers can emit deltas).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
	}
}

// unitTokens are the unit suffixes recognised in metric names, as whole
// dot-separated segments ("rtec.checkpoint.bytes") or as underscore
// suffixes of a segment ("llm.backoff_ms", "rtec.checkpoint.write_micros").
// They may also appear mid-name for families keyed by a trailing label
// ("pipeline.micros.teach.o1").
var unitTokens = []string{"micros", "ms", "bytes", "total", "ratio"}

// hasUnitToken reports whether any dot-separated segment of name is (or
// ends in) a recognised unit token.
func hasUnitToken(name string) bool {
	for _, seg := range strings.Split(name, ".") {
		for _, u := range unitTokens {
			if seg == u || strings.HasSuffix(seg, "_"+u) {
				return true
			}
		}
	}
	return false
}

// CanonicalName returns the dump name of a metric: counters whose name
// carries no unit token get the conventional "_total" suffix, so every
// counter in the text dump and the Prometheus exposition reads with an
// explicit unit ("rtec.revisions_total", "rtec.checkpoint.bytes"). Gauges
// and histograms are instantaneous or carry their unit in the name already
// and are returned unchanged.
func CanonicalName(kind, name string) string {
	if kind == "counter" && !hasUnitToken(name) {
		return name + "_total"
	}
	return name
}

// WriteText renders the registry deterministically, one metric per line,
// sorted by kind then name, with canonical unit suffixes:
//
//	counter rtec.windows.evaluated_total 24
//	gauge experiments.wall.ms 1234
//	histogram rtec.window.micros count=24 sum=48211 le500=3 le1000=11 ... inf=0
//
// Zero-valued metrics are included: a registered name documents an
// instrumented code path even when it never fired.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	return s.WriteText(w)
}

// WriteText renders a snapshot in the deterministic text format. Names are
// canonicalised (see CanonicalName) but the sort order is that of the raw
// registered names, so the dump order is stable under renaming.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", CanonicalName("counter", name), s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", CanonicalName("gauge", name), s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%g", name, h.Count, h.Sum); err != nil {
			return err
		}
		for i, b := range h.Bounds {
			if _, err := fmt.Fprintf(w, " le%g=%d", b, h.Counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " inf=%d\n", h.Counts[len(h.Bounds)]); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Publish exposes the registry as an expvar variable, so a -pprof endpoint
// serves it at /debug/vars alongside the runtime's memstats. Publishing the
// same name twice is a no-op (expvar panics on duplicates).
func (r *Registry) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
