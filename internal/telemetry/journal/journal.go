// Package journal is the structured recognition audit log: an append-only,
// size-capped JSONL file in which a streaming run records what it decided
// and why — window evaluations, interval assertions and retractions from
// late-event revisions, checkpoint writes and restores, admission verdicts
// on late or dropped arrivals, and SLO breaches.
//
// Every record carries a monotonically increasing sequence number and a
// timestamp read from an injectable clock. With the default deterministic
// clock (a fixed epoch), two same-seed runs produce byte-identical
// journals, so a journal can be golden-pinned and diffed like any other
// engine output; a real clock is opt-in for production runs where wall
// times matter more than reproducibility.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Record is one journal line. Data holds the type-specific payload as it
// was marshalled by the writer (struct field order, hence byte layout, is
// fixed by the payload type's declaration order).
type Record struct {
	// Seq is the 1-based monotonic sequence number of the record.
	Seq int64 `json:"seq"`
	// WallUS is the clock reading in microseconds since the Unix epoch; 0
	// under the deterministic default clock.
	WallUS int64 `json:"wall_us"`
	// Type names the record kind ("run_start", "window", "checkpoint",
	// "admission", "slo_breach", "run_end", "journal_capped", ...).
	Type string `json:"type"`
	// Data is the type-specific payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// Options configure a Writer.
type Options struct {
	// MaxBytes caps the journal size: once appending a record would push
	// the file past the cap, one final "journal_capped" marker is written
	// and every later record is counted and dropped. Zero means no cap.
	MaxBytes int64
	// Now is the injectable clock stamping WallUS. Nil uses the
	// deterministic default: a fixed reading of the Unix epoch, so
	// same-seed runs journal byte-identically.
	Now func() time.Time
}

// cappedData is the payload of the final marker record of a capped journal.
type cappedData struct {
	MaxBytes int64 `json:"max_bytes"`
}

// Writer appends records to an underlying stream. Safe for concurrent use;
// a nil *Writer is a no-op, so instrumented paths thread an optional
// journal without branching.
type Writer struct {
	mu      sync.Mutex
	w       io.Writer
	opts    Options
	seq     int64
	written int64
	capped  bool
	dropped int64
	err     error
}

// NewWriter wraps w. The caller owns w's lifetime (closing files, etc.).
func NewWriter(w io.Writer, opts Options) *Writer {
	return &Writer{w: w, opts: opts}
}

// Append marshals data and writes one record. Once an underlying write has
// failed, every later Append returns the same error without writing (a
// journal with a hole would validate as corrupt anyway). Appends beyond
// the size cap are silently counted; see Dropped.
func (w *Writer) Append(typ string, data any) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.capped {
		w.dropped++
		return nil
	}
	payload, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("journal: %s record: %w", typ, err)
	}
	line, err := w.encode(typ, payload)
	if err != nil {
		return err
	}
	if w.opts.MaxBytes > 0 && w.written+int64(len(line)) > w.opts.MaxBytes {
		// Replace the record with the cap marker: the journal ends with an
		// explicit truncation notice instead of silently going quiet. The
		// marker itself may exceed the cap by its own length; the cap is a
		// guard against unbounded growth, not an exact quota.
		w.capped = true
		w.dropped++
		marker, err := json.Marshal(cappedData{MaxBytes: w.opts.MaxBytes})
		if err != nil {
			return err
		}
		w.seq-- // the dropped record's number goes to the marker instead
		line, err = w.encode("journal_capped", marker)
		if err != nil {
			return err
		}
	}
	if _, err := w.w.Write(line); err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	w.written += int64(len(line))
	return nil
}

// encode builds one serialised record line, consuming a sequence number.
// Callers hold w.mu.
func (w *Writer) encode(typ string, payload json.RawMessage) ([]byte, error) {
	w.seq++
	var wall int64
	if w.opts.Now != nil {
		wall = w.opts.Now().UnixMicro()
	}
	line, err := json.Marshal(Record{Seq: w.seq, WallUS: wall, Type: typ, Data: payload})
	if err != nil {
		return nil, fmt.Errorf("journal: %s record: %w", typ, err)
	}
	return append(line, '\n'), nil
}

// Mark is a point in a writer's sequencing state, captured by (*Writer).Mark
// and restored by Rollback. The shard runtime journals speculatively into an
// in-memory stage and, when a crashed shard replays from its checkpoint,
// rolls the writer back to the mark taken at that checkpoint so the replayed
// records reuse the same sequence numbers — keeping the recovered journal
// byte-identical to a fault-free run. Mark/Rollback only restore the
// writer's own counters; rewinding the underlying byte sink (truncating the
// staged buffer) is the caller's job.
type Mark struct {
	seq, written, dropped int64
	capped                bool
}

// Mark captures the writer's current sequencing state.
func (w *Writer) Mark() Mark {
	if w == nil {
		return Mark{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return Mark{seq: w.seq, written: w.written, dropped: w.dropped, capped: w.capped}
}

// Rollback restores the state captured by a Mark. A sticky write error is
// not cleared: a journal with a hole stays failed.
func (w *Writer) Rollback(m Mark) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq, w.written, w.dropped, w.capped = m.seq, m.written, m.dropped, m.capped
}

// Seq returns the sequence number of the last record issued (0 initially).
func (w *Writer) Seq() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Dropped returns how many records were discarded past the size cap.
func (w *Writer) Dropped() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Capped reports whether the size cap has been hit.
func (w *Writer) Capped() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.capped
}

// Err returns the first underlying write error, if any — the readiness
// verdict of the journal subsystem for /healthz.
func (w *Writer) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats summarises a validated journal.
type Stats struct {
	// Records is the number of well-formed records read.
	Records int
	// Types counts records per type.
	Types map[string]int
	// Capped reports whether the journal ends in a journal_capped marker.
	Capped bool
}

// Read parses a journal stream into records, applying the same structural
// checks as Validate.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	err := scan(r, func(rec Record) error {
		out = append(out, rec)
		return nil
	})
	return out, err
}

// Validate checks a journal stream: every line must be a well-formed
// record, sequence numbers must increase by exactly one from 1 (append-only
// with no holes or duplicates), timestamps must be non-decreasing (clock
// sanity — the injectable clock never runs backwards), and no record may
// follow the journal_capped marker.
func Validate(r io.Reader) (Stats, error) {
	stats := Stats{Types: map[string]int{}}
	err := scan(r, func(rec Record) error {
		stats.Records++
		stats.Types[rec.Type]++
		if rec.Type == "journal_capped" {
			stats.Capped = true
		}
		return nil
	})
	return stats, err
}

// scan drives the line-by-line structural validation shared by Read and
// Validate.
func scan(r io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	var prev Record
	for sc.Scan() {
		line++
		rec, err := checkLine(line, sc.Bytes(), prev)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		prev = rec
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if line == 0 {
		return fmt.Errorf("journal: no records")
	}
	return nil
}

// RecoverInfo describes what Recover found and kept.
type RecoverInfo struct {
	// Records is the number of complete records kept.
	Records int
	// LastSeq is the sequence number of the last kept record (0 if none).
	LastSeq int64
	// Written is the file size in bytes after recovery.
	Written int64
	// Truncated is how many trailing bytes of a torn record were cut.
	Truncated int64
	// Capped reports whether the kept journal ends in a journal_capped
	// marker, so a resumed writer keeps dropping instead of re-appending.
	Capped bool
}

// Recover makes a journal file left behind by a crashed run appendable
// again. A crash can tear the final record mid-write; Recover validates the
// file with the same structural checks as Validate, truncates a trailing
// partial line (one that is unterminated, or whose bytes fail validation
// with nothing after it), and refuses anything worse: a bad record followed
// by complete ones is mid-file corruption, not a torn tail.
func Recover(path string) (RecoverInfo, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return RecoverInfo{}, err
	}
	var info RecoverInfo
	off, line := 0, 0
	var prev Record
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		seg := raw[off:]
		torn := nl < 0 // the write was cut before the line terminator
		if !torn {
			seg = raw[off : off+nl]
		}
		line++
		rec, cerr := checkLine(line, seg, prev)
		if torn || cerr != nil {
			if !torn && off+nl+1 < len(raw) {
				return RecoverInfo{}, cerr
			}
			// A complete-looking record without its newline is still partial
			// by JSONL discipline — cut it with the rest of the tail.
			info.Truncated = int64(len(raw) - off)
			if err := os.Truncate(path, int64(off)); err != nil {
				return RecoverInfo{}, fmt.Errorf("journal: truncate: %w", err)
			}
			break
		}
		info.Records++
		info.LastSeq = rec.Seq
		if rec.Type == "journal_capped" {
			info.Capped = true
		}
		prev = rec
		off += nl + 1
	}
	info.Written = int64(off)
	return info, nil
}

// NewWriterResumed wraps w like NewWriter but continues a recovered
// journal: the next record takes sequence info.LastSeq+1, the size cap
// accounts for the bytes already on disk, and a journal recovered past its
// cap marker stays capped. Runs that stamped wall-clock times must resume
// with a wall clock too, or validation's monotonicity check will fail at
// the resume boundary.
func NewWriterResumed(w io.Writer, opts Options, info RecoverInfo) *Writer {
	return &Writer{w: w, opts: opts, seq: info.LastSeq, written: info.Written, capped: info.Capped}
}

// checkLine applies the structural checks to one raw journal line given the
// previous accepted record.
func checkLine(line int, raw []byte, prev Record) (Record, error) {
	if len(raw) == 0 {
		return Record{}, fmt.Errorf("journal: line %d: empty line", line)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return Record{}, fmt.Errorf("journal: line %d: malformed record: %w", line, err)
	}
	if rec.Type == "" {
		return Record{}, fmt.Errorf("journal: line %d: record without type", line)
	}
	if rec.Seq != prev.Seq+1 {
		return Record{}, fmt.Errorf("journal: line %d: sequence %d after %d, want %d", line, rec.Seq, prev.Seq, prev.Seq+1)
	}
	if rec.WallUS < prev.WallUS {
		return Record{}, fmt.Errorf("journal: line %d: clock ran backwards (%d after %d)", line, rec.WallUS, prev.WallUS)
	}
	if prev.Type == "journal_capped" {
		return Record{}, fmt.Errorf("journal: line %d: record after the journal_capped marker", line)
	}
	return rec, nil
}
