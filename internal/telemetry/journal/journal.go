// Package journal is the structured recognition audit log: an append-only,
// size-capped JSONL file in which a streaming run records what it decided
// and why — window evaluations, interval assertions and retractions from
// late-event revisions, checkpoint writes and restores, admission verdicts
// on late or dropped arrivals, and SLO breaches.
//
// Every record carries a monotonically increasing sequence number and a
// timestamp read from an injectable clock. With the default deterministic
// clock (a fixed epoch), two same-seed runs produce byte-identical
// journals, so a journal can be golden-pinned and diffed like any other
// engine output; a real clock is opt-in for production runs where wall
// times matter more than reproducibility.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Record is one journal line. Data holds the type-specific payload as it
// was marshalled by the writer (struct field order, hence byte layout, is
// fixed by the payload type's declaration order).
type Record struct {
	// Seq is the 1-based monotonic sequence number of the record.
	Seq int64 `json:"seq"`
	// WallUS is the clock reading in microseconds since the Unix epoch; 0
	// under the deterministic default clock.
	WallUS int64 `json:"wall_us"`
	// Type names the record kind ("run_start", "window", "checkpoint",
	// "admission", "slo_breach", "run_end", "journal_capped", ...).
	Type string `json:"type"`
	// Data is the type-specific payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// Options configure a Writer.
type Options struct {
	// MaxBytes caps the journal size: once appending a record would push
	// the file past the cap, one final "journal_capped" marker is written
	// and every later record is counted and dropped. Zero means no cap.
	MaxBytes int64
	// Now is the injectable clock stamping WallUS. Nil uses the
	// deterministic default: a fixed reading of the Unix epoch, so
	// same-seed runs journal byte-identically.
	Now func() time.Time
}

// cappedData is the payload of the final marker record of a capped journal.
type cappedData struct {
	MaxBytes int64 `json:"max_bytes"`
}

// Writer appends records to an underlying stream. Safe for concurrent use;
// a nil *Writer is a no-op, so instrumented paths thread an optional
// journal without branching.
type Writer struct {
	mu      sync.Mutex
	w       io.Writer
	opts    Options
	seq     int64
	written int64
	capped  bool
	dropped int64
	err     error
}

// NewWriter wraps w. The caller owns w's lifetime (closing files, etc.).
func NewWriter(w io.Writer, opts Options) *Writer {
	return &Writer{w: w, opts: opts}
}

// Append marshals data and writes one record. Once an underlying write has
// failed, every later Append returns the same error without writing (a
// journal with a hole would validate as corrupt anyway). Appends beyond
// the size cap are silently counted; see Dropped.
func (w *Writer) Append(typ string, data any) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.capped {
		w.dropped++
		return nil
	}
	payload, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("journal: %s record: %w", typ, err)
	}
	line, err := w.encode(typ, payload)
	if err != nil {
		return err
	}
	if w.opts.MaxBytes > 0 && w.written+int64(len(line)) > w.opts.MaxBytes {
		// Replace the record with the cap marker: the journal ends with an
		// explicit truncation notice instead of silently going quiet. The
		// marker itself may exceed the cap by its own length; the cap is a
		// guard against unbounded growth, not an exact quota.
		w.capped = true
		w.dropped++
		marker, err := json.Marshal(cappedData{MaxBytes: w.opts.MaxBytes})
		if err != nil {
			return err
		}
		w.seq-- // the dropped record's number goes to the marker instead
		line, err = w.encode("journal_capped", marker)
		if err != nil {
			return err
		}
	}
	if _, err := w.w.Write(line); err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	w.written += int64(len(line))
	return nil
}

// encode builds one serialised record line, consuming a sequence number.
// Callers hold w.mu.
func (w *Writer) encode(typ string, payload json.RawMessage) ([]byte, error) {
	w.seq++
	var wall int64
	if w.opts.Now != nil {
		wall = w.opts.Now().UnixMicro()
	}
	line, err := json.Marshal(Record{Seq: w.seq, WallUS: wall, Type: typ, Data: payload})
	if err != nil {
		return nil, fmt.Errorf("journal: %s record: %w", typ, err)
	}
	return append(line, '\n'), nil
}

// Seq returns the sequence number of the last record issued (0 initially).
func (w *Writer) Seq() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Dropped returns how many records were discarded past the size cap.
func (w *Writer) Dropped() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Capped reports whether the size cap has been hit.
func (w *Writer) Capped() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.capped
}

// Err returns the first underlying write error, if any — the readiness
// verdict of the journal subsystem for /healthz.
func (w *Writer) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats summarises a validated journal.
type Stats struct {
	// Records is the number of well-formed records read.
	Records int
	// Types counts records per type.
	Types map[string]int
	// Capped reports whether the journal ends in a journal_capped marker.
	Capped bool
}

// Read parses a journal stream into records, applying the same structural
// checks as Validate.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	err := scan(r, func(rec Record) error {
		out = append(out, rec)
		return nil
	})
	return out, err
}

// Validate checks a journal stream: every line must be a well-formed
// record, sequence numbers must increase by exactly one from 1 (append-only
// with no holes or duplicates), timestamps must be non-decreasing (clock
// sanity — the injectable clock never runs backwards), and no record may
// follow the journal_capped marker.
func Validate(r io.Reader) (Stats, error) {
	stats := Stats{Types: map[string]int{}}
	err := scan(r, func(rec Record) error {
		stats.Records++
		stats.Types[rec.Type]++
		if rec.Type == "journal_capped" {
			stats.Capped = true
		}
		return nil
	})
	return stats, err
}

// scan drives the line-by-line structural validation shared by Read and
// Validate.
func scan(r io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	var prev Record
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			return fmt.Errorf("journal: line %d: empty line", line)
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("journal: line %d: malformed record: %w", line, err)
		}
		if rec.Type == "" {
			return fmt.Errorf("journal: line %d: record without type", line)
		}
		if rec.Seq != prev.Seq+1 {
			return fmt.Errorf("journal: line %d: sequence %d after %d, want %d", line, rec.Seq, prev.Seq, prev.Seq+1)
		}
		if rec.WallUS < prev.WallUS {
			return fmt.Errorf("journal: line %d: clock ran backwards (%d after %d)", line, rec.WallUS, prev.WallUS)
		}
		if prev.Type == "journal_capped" {
			return fmt.Errorf("journal: line %d: record after the journal_capped marker", line)
		}
		if err := fn(rec); err != nil {
			return err
		}
		prev = rec
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if line == 0 {
		return fmt.Errorf("journal: no records")
	}
	return nil
}
