package journal

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendSequenceAndDeterminism(t *testing.T) {
	write := func() string {
		var buf bytes.Buffer
		w := NewWriter(&buf, Options{})
		if err := w.Append("run_start", map[string]int{"seed": 42}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append("window", map[string]int{"t": 10}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append("run_end", nil); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := write(), write()
	if a != b {
		t.Fatalf("same-seed journals differ:\n%s\nvs\n%s", a, b)
	}

	recs, err := Read(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != int64(i+1) {
			t.Errorf("record %d seq = %d", i, rec.Seq)
		}
		if rec.WallUS != 0 {
			t.Errorf("record %d wall_us = %d, want 0 under the deterministic clock", i, rec.WallUS)
		}
	}
	if recs[0].Type != "run_start" || recs[2].Type != "run_end" {
		t.Fatalf("types = %s..%s", recs[0].Type, recs[2].Type)
	}
}

func TestInjectedClock(t *testing.T) {
	var buf bytes.Buffer
	now := time.UnixMicro(1700000000000000)
	w := NewWriter(&buf, Options{Now: func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}})
	w.Append("a", nil)
	w.Append("b", nil)
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].WallUS != 1700000000001000 || recs[1].WallUS != 1700000000002000 {
		t.Fatalf("wall_us = %d, %d", recs[0].WallUS, recs[1].WallUS)
	}
}

func TestSizeCapMarker(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{MaxBytes: 200})
	for i := 0; i < 50; i++ {
		if err := w.Append("window", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if !w.Capped() {
		t.Fatal("writer not capped")
	}
	if w.Dropped() == 0 {
		t.Fatal("no drops counted")
	}
	stats, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("capped journal invalid: %v\n%s", err, buf.String())
	}
	if !stats.Capped {
		t.Fatal("Validate missed the cap marker")
	}
	if stats.Types["journal_capped"] != 1 {
		t.Fatalf("cap markers = %d, want 1", stats.Types["journal_capped"])
	}
	// The marker must be the last record.
	recs, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if recs[len(recs)-1].Type != "journal_capped" {
		t.Fatalf("last record = %s", recs[len(recs)-1].Type)
	}
}

// TestConcurrentAppend hammers one writer from many goroutines; run under
// -race in ci.sh. Sequence numbers must come out gapless.
func TestConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				if err := w.Append("window", map[string]int{"g": id, "j": j}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if w.Seq() != goroutines*perG {
		t.Fatalf("seq = %d, want %d", w.Seq(), goroutines*perG)
	}
	stats, err := Validate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != goroutines*perG {
		t.Fatalf("records = %d, want %d", stats.Records, goroutines*perG)
	}
}

func TestNilWriter(t *testing.T) {
	var w *Writer
	if err := w.Append("x", nil); err != nil {
		t.Fatal(err)
	}
	if w.Seq() != 0 || w.Dropped() != 0 || w.Capped() || w.Err() != nil {
		t.Fatal("nil writer leaked state")
	}
}

func TestValidateRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"empty":           "",
		"malformed json":  "{not json}\n",
		"missing type":    `{"seq":1,"wall_us":0}` + "\n",
		"seq gap":         `{"seq":1,"wall_us":0,"type":"a"}` + "\n" + `{"seq":3,"wall_us":0,"type":"b"}` + "\n",
		"seq duplicate":   `{"seq":1,"wall_us":0,"type":"a"}` + "\n" + `{"seq":1,"wall_us":0,"type":"b"}` + "\n",
		"seq from zero":   `{"seq":0,"wall_us":0,"type":"a"}` + "\n",
		"clock backwards": `{"seq":1,"wall_us":9,"type":"a"}` + "\n" + `{"seq":2,"wall_us":3,"type":"b"}` + "\n",
		"after cap":       `{"seq":1,"wall_us":0,"type":"journal_capped"}` + "\n" + `{"seq":2,"wall_us":0,"type":"a"}` + "\n",
	} {
		if _, err := Validate(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, doc)
		}
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errSink
	}
	e.n--
	return len(p), nil
}

var errSink = &stickyErr{}

type stickyErr struct{}

func (*stickyErr) Error() string { return "sink failed" }

func TestStickyError(t *testing.T) {
	w := NewWriter(&errWriter{n: 1}, Options{})
	if err := w.Append("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("b", nil); err == nil {
		t.Fatal("write past failure succeeded")
	}
	if err := w.Append("c", nil); err == nil {
		t.Fatal("sticky error not sticky")
	}
	if w.Err() == nil {
		t.Fatal("Err() lost the failure")
	}
}
