package journal

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendSequenceAndDeterminism(t *testing.T) {
	write := func() string {
		var buf bytes.Buffer
		w := NewWriter(&buf, Options{})
		if err := w.Append("run_start", map[string]int{"seed": 42}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append("window", map[string]int{"t": 10}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append("run_end", nil); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := write(), write()
	if a != b {
		t.Fatalf("same-seed journals differ:\n%s\nvs\n%s", a, b)
	}

	recs, err := Read(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != int64(i+1) {
			t.Errorf("record %d seq = %d", i, rec.Seq)
		}
		if rec.WallUS != 0 {
			t.Errorf("record %d wall_us = %d, want 0 under the deterministic clock", i, rec.WallUS)
		}
	}
	if recs[0].Type != "run_start" || recs[2].Type != "run_end" {
		t.Fatalf("types = %s..%s", recs[0].Type, recs[2].Type)
	}
}

func TestInjectedClock(t *testing.T) {
	var buf bytes.Buffer
	now := time.UnixMicro(1700000000000000)
	w := NewWriter(&buf, Options{Now: func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}})
	w.Append("a", nil)
	w.Append("b", nil)
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].WallUS != 1700000000001000 || recs[1].WallUS != 1700000000002000 {
		t.Fatalf("wall_us = %d, %d", recs[0].WallUS, recs[1].WallUS)
	}
}

func TestSizeCapMarker(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{MaxBytes: 200})
	for i := 0; i < 50; i++ {
		if err := w.Append("window", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if !w.Capped() {
		t.Fatal("writer not capped")
	}
	if w.Dropped() == 0 {
		t.Fatal("no drops counted")
	}
	stats, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("capped journal invalid: %v\n%s", err, buf.String())
	}
	if !stats.Capped {
		t.Fatal("Validate missed the cap marker")
	}
	if stats.Types["journal_capped"] != 1 {
		t.Fatalf("cap markers = %d, want 1", stats.Types["journal_capped"])
	}
	// The marker must be the last record.
	recs, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if recs[len(recs)-1].Type != "journal_capped" {
		t.Fatalf("last record = %s", recs[len(recs)-1].Type)
	}
}

// TestConcurrentAppend hammers one writer from many goroutines; run under
// -race in ci.sh. Sequence numbers must come out gapless.
func TestConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				if err := w.Append("window", map[string]int{"g": id, "j": j}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if w.Seq() != goroutines*perG {
		t.Fatalf("seq = %d, want %d", w.Seq(), goroutines*perG)
	}
	stats, err := Validate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != goroutines*perG {
		t.Fatalf("records = %d, want %d", stats.Records, goroutines*perG)
	}
}

func TestNilWriter(t *testing.T) {
	var w *Writer
	if err := w.Append("x", nil); err != nil {
		t.Fatal(err)
	}
	if w.Seq() != 0 || w.Dropped() != 0 || w.Capped() || w.Err() != nil {
		t.Fatal("nil writer leaked state")
	}
}

func TestValidateRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"empty":           "",
		"malformed json":  "{not json}\n",
		"missing type":    `{"seq":1,"wall_us":0}` + "\n",
		"seq gap":         `{"seq":1,"wall_us":0,"type":"a"}` + "\n" + `{"seq":3,"wall_us":0,"type":"b"}` + "\n",
		"seq duplicate":   `{"seq":1,"wall_us":0,"type":"a"}` + "\n" + `{"seq":1,"wall_us":0,"type":"b"}` + "\n",
		"seq from zero":   `{"seq":0,"wall_us":0,"type":"a"}` + "\n",
		"clock backwards": `{"seq":1,"wall_us":9,"type":"a"}` + "\n" + `{"seq":2,"wall_us":3,"type":"b"}` + "\n",
		"after cap":       `{"seq":1,"wall_us":0,"type":"journal_capped"}` + "\n" + `{"seq":2,"wall_us":0,"type":"a"}` + "\n",
	} {
		if _, err := Validate(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, doc)
		}
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errSink
	}
	e.n--
	return len(p), nil
}

var errSink = &stickyErr{}

type stickyErr struct{}

func (*stickyErr) Error() string { return "sink failed" }

func TestStickyError(t *testing.T) {
	w := NewWriter(&errWriter{n: 1}, Options{})
	if err := w.Append("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("b", nil); err == nil {
		t.Fatal("write past failure succeeded")
	}
	if err := w.Append("c", nil); err == nil {
		t.Fatal("sticky error not sticky")
	}
	if w.Err() == nil {
		t.Fatal("Err() lost the failure")
	}
}

// TestMarkRollback replays a writer past a mark and checks the rolled-back
// writer regenerates byte-identical records — the invariant the shard
// runtime's staged journal depends on for crash-identical recovery.
func TestMarkRollback(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	w.Append("run_start", nil)
	w.Append("window", map[string]int{"t": 1})
	m := w.Mark()
	keep := buf.Len()
	w.Append("window", map[string]int{"t": 2})
	w.Append("window", map[string]int{"t": 3})
	suffix := string(buf.Bytes()[keep:])

	// Roll back and replay: the same appends must produce the same bytes.
	buf.Truncate(keep)
	w.Rollback(m)
	if w.Seq() != 2 {
		t.Fatalf("seq after rollback = %d, want 2", w.Seq())
	}
	w.Append("window", map[string]int{"t": 2})
	w.Append("window", map[string]int{"t": 3})
	if got := string(buf.Bytes()[keep:]); got != suffix {
		t.Fatalf("replayed suffix differs:\n%q\nvs\n%q", got, suffix)
	}
	if _, err := Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestMarkRollbackRestoresCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{MaxBytes: 120})
	w.Append("run_start", nil)
	m := w.Mark()
	for i := 0; i < 10; i++ {
		w.Append("window", map[string]int{"i": i})
	}
	if !w.Capped() {
		t.Fatal("writer not capped")
	}
	w.Rollback(m)
	if w.Capped() || w.Dropped() != 0 {
		t.Fatal("rollback kept the cap state")
	}
}

func TestNilWriterMark(t *testing.T) {
	var w *Writer
	w.Rollback(w.Mark()) // must not panic
}

func writeJournalFile(t *testing.T, path string, tail string) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	w.Append("run_start", nil)
	w.Append("window", map[string]int{"t": 1})
	w.Append("window", map[string]int{"t": 2})
	buf.WriteString(tail)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	for name, tail := range map[string]string{
		"cut mid-record":      `{"seq":4,"wall_us":0,"type":"wind`,
		"cut before newline":  `{"seq":4,"wall_us":0,"type":"window"}`,
		"malformed last line": "{garbage}\n",
	} {
		t.Run(name, func(t *testing.T) {
			path := t.TempDir() + "/j.jsonl"
			writeJournalFile(t, path, tail)
			info, err := Recover(path)
			if err != nil {
				t.Fatal(err)
			}
			if info.Records != 3 || info.LastSeq != 3 {
				t.Fatalf("info = %+v, want 3 records through seq 3", info)
			}
			if info.Truncated == 0 {
				t.Fatal("nothing truncated")
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(raw)) != info.Written {
				t.Fatalf("file size %d != Written %d", len(raw), info.Written)
			}
			// The recovered file validates and a resumed writer continues it.
			if _, err := Validate(bytes.NewReader(raw)); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			w := NewWriterResumed(f, Options{}, info)
			if err := w.Append("journal_recovered", nil); err != nil {
				t.Fatal(err)
			}
			raw, _ = os.ReadFile(path)
			recs, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if last := recs[len(recs)-1]; last.Seq != 4 || last.Type != "journal_recovered" {
				t.Fatalf("last record = %+v", last)
			}
		})
	}
}

func TestRecoverCleanAndEmpty(t *testing.T) {
	path := t.TempDir() + "/j.jsonl"
	writeJournalFile(t, path, "")
	info, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 3 || info.Truncated != 0 {
		t.Fatalf("clean journal: info = %+v", info)
	}

	empty := t.TempDir() + "/empty.jsonl"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err = Recover(empty)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.Written != 0 {
		t.Fatalf("empty journal: info = %+v", info)
	}
}

func TestRecoverRefusesMidFileCorruption(t *testing.T) {
	path := t.TempDir() + "/j.jsonl"
	writeJournalFile(t, path, "{garbage}\n"+`{"seq":4,"wall_us":0,"type":"window"}`+"\n")
	if _, err := Recover(path); err == nil {
		t.Fatal("mid-file corruption recovered")
	}
}

func TestRecoverKeepsCap(t *testing.T) {
	path := t.TempDir() + "/j.jsonl"
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{MaxBytes: 120})
	for i := 0; i < 10; i++ {
		w.Append("window", map[string]int{"i": i})
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Capped {
		t.Fatal("cap marker lost in recovery")
	}
	var sink bytes.Buffer
	rw := NewWriterResumed(&sink, Options{MaxBytes: 120}, info)
	if err := rw.Append("window", nil); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 || rw.Dropped() != 1 {
		t.Fatal("resumed writer appended past the cap marker")
	}
}
