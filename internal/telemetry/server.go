package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Server is the embeddable operational endpoint of a long-lived run: it
// serves the metrics registry in Prometheus text exposition format at
// /metrics, per-subsystem readiness at /healthz, the expvar JSON at
// /debug/vars and the net/http/pprof profiles under /debug/pprof/. A CLI
// embeds it with -listen; rtecd's shards will expose the same contract so
// the router can aggregate them.
//
// The zero value is not usable; construct with NewServer. All methods are
// safe for concurrent use; a nil *Server is a no-op (Start returns "",
// Close returns nil), so callers can thread an optional server without
// branching.
type Server struct {
	reg *Registry
	mux *http.ServeMux

	mu     sync.Mutex
	checks map[string]func() error
	srv    *http.Server
	ln     net.Listener
}

// NewServer builds a server over a metrics registry (which may be shared
// with the instrumented engine — the scrape always sees live values).
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), checks: map[string]func() error{}}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Ready registers a named readiness check. /healthz reports every check by
// name; any check returning an error turns the response into 503 with the
// failing reasons. Re-registering a name replaces the check.
func (s *Server) Ready(name string, check func() error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.checks[name] = check
	s.mu.Unlock()
}

// Handle mounts an application handler on the server's mux alongside the
// operational endpoints — rtecd serves its ingest and subscription API
// through this, so one port carries both. Mount before Start; the mux
// panics on duplicate patterns, same as http.Handle.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil {
		return
	}
	s.mux.Handle(pattern, h)
}

// Handler returns the server's mux, for embedding under an existing
// http.Server (tests use this with httptest).
func (s *Server) Handler() http.Handler {
	if s == nil {
		return http.NotFoundHandler()
	}
	return s.mux
}

// Start binds addr (port 0 picks a free port) and serves in a background
// goroutine, returning the bound address for scrapers. Call Close to stop.
func (s *Server) Start(addr string) (string, error) {
	if s == nil {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: server: %w", err)
	}
	srv := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.srv, s.ln = srv, ln
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address after Start, or "".
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener immediately. In-flight scrapes are aborted;
// prefer Shutdown on any exit path that is not already a failure.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Shutdown stops accepting connections and drains in-flight requests,
// waiting at most timeout (zero defaults to 5s) before aborting whatever
// is left. A scraper that hit /metrics just as the run ended gets its
// response instead of a reset connection.
func (s *Server) Shutdown(timeout time.Duration) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// The drain deadline passed with requests still in flight (a stuck
		// SSE subscriber, a wedged scraper): abort them, the bound is the
		// contract.
		return srv.Close()
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	if err := s.reg.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// healthReport is the /healthz response body: overall status plus the
// verdict of every registered check, with deterministic key order under
// encoding/json's map-key sorting.
type healthReport struct {
	Status string            `json:"status"` // "ok" or "degraded"
	Checks map[string]string `json:"checks"` // name -> "ok" or the error text
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.checks))
	for name := range s.checks {
		names = append(names, name)
	}
	checks := make(map[string]func() error, len(s.checks))
	for name, fn := range s.checks {
		checks[name] = fn
	}
	s.mu.Unlock()
	sort.Strings(names)

	rep := healthReport{Status: "ok", Checks: map[string]string{}}
	for _, name := range names {
		if err := checks[name](); err != nil {
			rep.Status = "degraded"
			rep.Checks[name] = err.Error()
		} else {
			rep.Checks[name] = "ok"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if rep.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep) //nolint:errcheck // best effort towards a closing client
}
