package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// promRegistry builds a small registry resembling a streaming run.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("rtec.windows.evaluated").Add(24)
	r.Describe("rtec.windows.evaluated", "windows evaluated at least once")
	r.Counter("rtec.checkpoint.bytes").Add(4096)
	r.Gauge("rtec.workers").Set(8)
	h := r.Histogram("rtec.window.micros", []float64{100, 1000})
	h.Observe(50)
	h.Observe(150)
	h.Observe(5000)
	return r
}

// TestWritePrometheusGolden pins the exposition byte layout: HELP/TYPE
// headers, canonical _total suffixes, sanitized names, cumulative buckets.
func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := promRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP rtec_checkpoint_bytes counter rtec.checkpoint.bytes (registered by rtecgen telemetry)",
		"# TYPE rtec_checkpoint_bytes counter",
		"rtec_checkpoint_bytes 4096",
		"# HELP rtec_windows_evaluated_total windows evaluated at least once",
		"# TYPE rtec_windows_evaluated_total counter",
		"rtec_windows_evaluated_total 24",
		"# HELP rtec_workers gauge rtec.workers (registered by rtecgen telemetry)",
		"# TYPE rtec_workers gauge",
		"rtec_workers 8",
		"# HELP rtec_window_micros histogram rtec.window.micros (registered by rtecgen telemetry)",
		"# TYPE rtec_window_micros histogram",
		`rtec_window_micros_bucket{le="100"} 1`,
		`rtec_window_micros_bucket{le="1000"} 2`,
		`rtec_window_micros_bucket{le="+Inf"} 3`,
		"rtec_window_micros_sum 5200",
		"rtec_window_micros_count 3",
		"",
	}, "\n")
	if sb.String() != want {
		t.Fatalf("WritePrometheus:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestPrometheusRoundTrip scrapes a live server handler and parses the
// exposition back, checking values and the reconstructed histogram.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := promRegistry()
	srv := httptest.NewServer(NewServer(reg).Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	metrics, err := ParsePrometheus(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if m := metrics["rtec_windows_evaluated_total"]; m == nil || m.Value != 24 || m.Type != "counter" {
		t.Fatalf("rtec_windows_evaluated_total = %+v", m)
	}
	if m := metrics["rtec_windows_evaluated_total"]; m.Help != "windows evaluated at least once" {
		t.Errorf("help = %q", m.Help)
	}
	if m := metrics["rtec_workers"]; m == nil || m.Value != 8 || m.Type != "gauge" {
		t.Fatalf("rtec_workers = %+v", m)
	}
	h := metrics["rtec_window_micros"]
	if h == nil || h.Type != "histogram" || h.Count != 3 || h.Sum != 5200 {
		t.Fatalf("rtec_window_micros = %+v", h)
	}
	hs := h.Snapshot()
	if hs.Count != 3 || hs.Sum != 5200 || len(hs.Bounds) != 2 {
		t.Fatalf("reconstructed snapshot = %+v", hs)
	}
	if got := hs.Counts[2]; got != 1 {
		t.Errorf("overflow count = %d, want 1 (de-cumulated)", got)
	}
	if q := hs.Quantile(0.5); q <= 0 || q > 1000 {
		t.Errorf("scraped quantile = %g", q)
	}
}

// TestParsePrometheusRejectsMalformed checks the validator side of the
// parser: the CI gate relies on it to fail on structurally broken output.
func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"no value":           "rtec_windows_total\n",
		"bad value":          "rtec_windows_total abc\n",
		"unterminated label": "h_bucket{le=\"1\" 3\n",
		"bucket without le":  "# TYPE h histogram\nh_bucket{notle=\"1\"} 3\n",
		"non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 6\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, doc)
		}
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ kind, in, want string }{
		{"counter", "rtec.windows.evaluated", "rtec_windows_evaluated_total"},
		{"counter", "pipeline.micros.teach.o1□", "pipeline_micros_teach_o1_"},
		{"gauge", "rtec.shard.imbalance", "rtec_shard_imbalance"},
		{"histogram", "llm.backoff_ms", "llm_backoff_ms"},
	} {
		if got := PromName(tc.kind, tc.in); got != tc.want {
			t.Errorf("PromName(%s, %s) = %s, want %s", tc.kind, tc.in, got, tc.want)
		}
	}
}

func TestPromFloat(t *testing.T) {
	if got := promFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("promFloat(+inf) = %s", got)
	}
	if got := promFloat(1.5); got != "1.5" {
		t.Errorf("promFloat(1.5) = %s", got)
	}
}
