package parser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtecgen/internal/lang"
)

// genTerm builds a random well-formed term of bounded depth with the
// vocabulary the RTEC dialect uses.
func genTerm(r *rand.Rand, depth int, allowInfix bool) *lang.Term {
	if depth == 0 {
		switch r.Intn(5) {
		case 0:
			return lang.NewVar([]string{"X", "Y", "Vl", "AreaType", "T", "I1"}[r.Intn(6)])
		case 1:
			return lang.NewAtom([]string{"a", "fishing", "true", "v42", "nearPorts"}[r.Intn(5)])
		case 2:
			return lang.NewInt(int64(r.Intn(100)))
		case 3:
			return lang.NewFloat([]float64{0.5, 2.5, 90, 12.25}[r.Intn(4)])
		default:
			return lang.NewStr("s")
		}
	}
	switch r.Intn(6) {
	case 0: // list
		n := r.Intn(3)
		elems := make([]*lang.Term, n)
		for i := range elems {
			elems[i] = genTerm(r, depth-1, false)
		}
		return lang.NewList(elems...)
	case 1: // infix comparison or FVP
		if allowInfix {
			op := []string{"=", "<", ">", ">=", "=<", "+", "-", "*"}[r.Intn(8)]
			return lang.NewCompound(op, genTerm(r, depth-1, false), genTerm(r, depth-1, false))
		}
		fallthrough
	default: // compound
		n := 1 + r.Intn(3)
		args := make([]*lang.Term, n)
		for i := range args {
			args[i] = genTerm(r, depth-1, false)
		}
		return lang.NewCompound([]string{"f", "happensAt", "entersArea", "holdsAt"}[r.Intn(4)], args...)
	}
}

// TestPropTermRoundTrip: print ∘ parse = identity on random ASTs.
func TestPropTermRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := genTerm(r, 1+r.Intn(3), true)
		printed := term.String()
		parsed, err := ParseTerm(printed)
		if err != nil {
			t.Logf("seed %d: %q failed to parse: %v", seed, printed, err)
			return false
		}
		if !parsed.Equal(term) {
			t.Logf("seed %d: %q reparsed as %q", seed, printed, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropClauseRoundTrip: random clauses survive print-parse.
func TestPropClauseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		head := lang.NewCompound("initiatedAt",
			lang.FVP(genCallable(r), lang.NewAtom("true")), lang.NewVar("T"))
		c := &lang.Clause{Head: head}
		for i := 0; i < r.Intn(4); i++ {
			lit := lang.Pos(genCallable(r))
			if r.Intn(3) == 0 {
				lit = lang.Neg(genCallable(r))
			}
			c.Body = append(c.Body, lit)
		}
		printed := c.String()
		parsed, err := ParseClause(printed)
		if err != nil {
			t.Logf("seed %d: %q failed: %v", seed, printed, err)
			return false
		}
		return parsed.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func genCallable(r *rand.Rand) *lang.Term {
	n := 1 + r.Intn(3)
	args := make([]*lang.Term, n)
	for i := range args {
		args[i] = genTerm(r, 1, false)
	}
	return lang.NewCompound([]string{"p", "q", "happensAt", "areaType"}[r.Intn(4)], args...)
}
