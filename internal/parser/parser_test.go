package parser

import (
	"strings"
	"testing"

	"rtecgen/internal/lang"
)

func TestParseTermBasics(t *testing.T) {
	cases := []struct{ src, want string }{
		{"foo", "foo"},
		{"Foo", "Foo"},
		{"_", "_Anon1"},
		{"42", "42"},
		{"3.5", "3.5"},
		{"-7", "-7"},
		{"-2.5", "-2.5"},
		{`"hi there"`, `"hi there"`},
		{"f(a, B, 1)", "f(a, B, 1)"},
		{"[1, 2, 3]", "[1, 2, 3]"},
		{"[]", "[]"},
		{"f(g(h(X)))", "f(g(h(X)))"},
		{"'quoted atom'", "quotedatom"}, // spaces dropped by quoting? see below
	}
	for _, c := range cases[:len(cases)-1] {
		got, err := ParseTerm(c.src)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", c.src, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("ParseTerm(%q) = %q, want %q", c.src, got, c.want)
		}
	}
	// Quoted atoms preserve their inner text verbatim.
	got, err := ParseTerm("'quoted atom'")
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != lang.Atom || got.Functor != "quoted atom" {
		t.Fatalf("quoted atom = %v %q", got.Kind, got.Functor)
	}
}

func TestParseInfixOperators(t *testing.T) {
	cases := []struct{ src, want string }{
		{"X=true", "X=true"},
		{"withinArea(Vl, AreaType)=true", "withinArea(Vl, AreaType)=true"},
		{"Speed > Max", "Speed > Max"},
		{"Speed =< Max", "Speed =< Max"},
		{"A =:= B", "A =:= B"},
		{"A =\\= B", "A =\\= B"},
		{"A \\= B", "A \\= B"},
		{"A + B * C", "A + B * C"},
		{"(A + B) * C", "(A + B) * C"},
		{"A - B - C", "A - B - C"}, // left associative
		{"Speed > Min + 2.5", "Speed > Min + 2.5"},
	}
	for _, c := range cases {
		got, err := ParseTerm(c.src)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", c.src, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("ParseTerm(%q) = %q, want %q", c.src, got, c.want)
		}
	}
	// Associativity check: A - B - C is (A-B)-C.
	tm, err := ParseTerm("A - B - C")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Args[0].Kind != lang.Compound || tm.Args[0].Functor != "-" {
		t.Fatalf("left operand = %s, want (A - B)", tm.Args[0])
	}
	// Precedence: A + B * C is A + (B*C).
	tm, err = ParseTerm("A + B * C")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Functor != "+" || tm.Args[1].Functor != "*" {
		t.Fatalf("precedence wrong: %s", tm)
	}
}

func TestParseRule1Paper(t *testing.T) {
	src := `initiatedAt(withinArea(Vl, AreaType)=true, T) :-
	    happensAt(entersArea(Vl, AreaID), T),
	    areaType(AreaID, AreaType).`
	c, err := ParseClause(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != lang.KindInitiatedAt {
		t.Fatalf("kind = %v", c.Kind())
	}
	if len(c.Body) != 2 {
		t.Fatalf("body length = %d", len(c.Body))
	}
	_, fl := c.HeadFVP()
	if fl.Indicator() != "withinArea/2" {
		t.Fatalf("fluent = %s", fl.Indicator())
	}
}

func TestParseHoldsForWithConstructs(t *testing.T) {
	src := `holdsFor(underWay(Vessel)=true, I) :-
	    holdsFor(movingSpeed(Vessel)=below, I1),
	    holdsFor(movingSpeed(Vessel)=normal, I2),
	    holdsFor(movingSpeed(Vessel)=above, I3),
	    union_all([I1, I2, I3], I).`
	c, err := ParseClause(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != lang.KindHoldsFor {
		t.Fatalf("kind = %v", c.Kind())
	}
	last := c.Body[3].Atom
	if last.Functor != "union_all" || last.Args[0].Kind != lang.List || last.Args[0].Arity() != 3 {
		t.Fatalf("last condition = %s", last)
	}
}

func TestParseNegation(t *testing.T) {
	src := `initiatedAt(gap(Vl)=farFromPorts, T) :-
	    happensAt(gap_start(Vl), T),
	    not holdsAt(withinArea(Vl, nearPorts)=true, T).`
	c, err := ParseClause(src)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Body[1].Neg {
		t.Fatal("second condition must be negated")
	}
	if c.Body[1].Atom.Functor != "holdsAt" {
		t.Fatalf("negated atom = %s", c.Body[1].Atom)
	}
	// Compound form not(...) normalises identically.
	src2 := strings.Replace(src, "not holdsAt", "not(holdsAt", 1)
	src2 = strings.Replace(src2, "true, T).", "true, T)).", 1)
	c2, err := ParseClause(src2)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Body[1].Neg || c2.Body[1].Atom.Functor != "holdsAt" {
		t.Fatalf("compound not(...) not normalised: %s", c2.Body[1])
	}
}

func TestParseEventDescriptionMultipleClausesAndComments(t *testing.T) {
	src := `
% Declarations.
inputEvent(entersArea(_, _)).
simpleFluent(withinArea(_, _)=true).

% Rule (1).
initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).

areaType(a1, fishing).
`
	ed, err := ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ed.Clauses) != 4 {
		t.Fatalf("clauses = %d, want 4", len(ed.Clauses))
	}
	if len(ed.Rules()) != 1 || len(ed.Facts()) != 3 {
		t.Fatalf("rules/facts = %d/%d", len(ed.Rules()), len(ed.Facts()))
	}
}

func TestParseAnonymousVarsAreDistinct(t *testing.T) {
	tm, err := ParseTerm("f(_, _)")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Args[0].Functor == tm.Args[1].Functor {
		t.Fatal("anonymous variables must be distinct")
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	cases := []string{
		"f(a",                 // unterminated args
		"f(a) :- .",           // missing literal
		"f(a)",                // missing period
		"42 :- g.",            // non-callable head
		"f(a). trailing",      // handled by ParseClause only
		"f(@).",               // bad character
		`f(").`,               // unterminated string
		"'unterminated",       // unterminated quoted atom
		"f(a,).",              // dangling comma
		"holdsFor(f=v, I) :-", // EOF in body
	}
	for _, src := range cases {
		if _, err := ParseClause(src); err == nil {
			t.Errorf("ParseClause(%q) succeeded, want error", src)
		}
	}
	_, err := ParseClause("f(a,\n   @).")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:") {
		t.Fatalf("error position = %q, want line 2", err.Error())
	}
}

// TestRoundTrip verifies print-parse round-tripping on a corpus of clauses.
func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"initiatedAt(withinArea(Vl, AreaType)=true, T) :-\n    happensAt(entersArea(Vl, AreaID), T),\n    areaType(AreaID, AreaType).",
		"holdsFor(anchoredOrMoored(Vl)=true, I) :-\n    holdsFor(stopped(Vl)=farFromPorts, Isf),\n    holdsFor(withinArea(Vl, anchorage)=true, Ia),\n    intersect_all([Isf, Ia], Isfa),\n    holdsFor(stopped(Vl)=nearPorts, Isn),\n    union_all([Isfa, Isn], I).",
		"initiatedAt(highSpeedNearCoast(Vl)=true, T) :-\n    happensAt(velocity(Vl, Speed, Cog, Hdg), T),\n    thresholds(hcNearCoastMax, Max),\n    Speed > Max,\n    holdsAt(withinArea(Vl, nearCoast)=true, T).",
		"terminatedAt(f(X)=v, T) :-\n    happensAt(e(X), T),\n    not holdsAt(g(X)=true, T).",
	}
	for _, src := range srcs {
		c1, err := ParseClause(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := c1.String()
		c2, err := ParseClause(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if c2.String() != printed {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", printed, c2.String())
		}
	}
}

func TestMustHelpersPanicOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseClause did not panic")
		}
	}()
	MustParseClause("bad(")
}

func TestParseThresholdComparisonChain(t *testing.T) {
	src := `initiatedAt(movingSpeed(Vl)=normal, T) :-
    happensAt(velocity(Vl, Speed, CourseOverGround, Heading), T),
    vesselType(Vl, Type),
    typeSpeed(Type, Min, Max, Avg),
    Speed >= Min,
    Speed =< Max.`
	c, err := ParseClause(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Body) != 5 {
		t.Fatalf("body = %d conditions", len(c.Body))
	}
	if c.Body[3].Atom.Functor != ">=" || c.Body[4].Atom.Functor != "=<" {
		t.Fatalf("comparisons not parsed: %s, %s", c.Body[3].Atom, c.Body[4].Atom)
	}
}

func TestMustHelpersSucceed(t *testing.T) {
	if MustParseTerm("f(a)").Indicator() != "f/1" {
		t.Fatal("MustParseTerm wrong")
	}
	if len(MustParseEventDescription("a(b). c(d).").Clauses) != 2 {
		t.Fatal("MustParseEventDescription wrong")
	}
}

func TestMustParseTermPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseTerm did not panic")
		}
	}()
	MustParseTerm("((")
}

func TestMustParseEventDescriptionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseEventDescription did not panic")
		}
	}()
	MustParseEventDescription("f(a")
}

func TestParseTermTrailingInput(t *testing.T) {
	if _, err := ParseTerm("f(a) extra"); err == nil {
		t.Fatal("trailing input accepted")
	}
}

func TestClausePositions(t *testing.T) {
	src := "% leading comment\n" +
		"f(a).\n" +
		"\n" +
		"initiatedAt(withinArea(Vl, AreaType)=true, T) :-\n" +
		"    happensAt(entersArea(Vl, AreaID), T),\n" +
		"    not areaType(AreaID, AreaType).\n"
	ed, err := ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ed.Clauses) != 2 {
		t.Fatalf("got %d clauses", len(ed.Clauses))
	}
	if got := ed.Clauses[0].Pos; got != (lang.Position{Line: 2, Col: 1}) {
		t.Errorf("fact position = %v, want 2:1", got)
	}
	rule := ed.Clauses[1]
	if got := rule.Pos; got != (lang.Position{Line: 4, Col: 1}) {
		t.Errorf("rule position = %v, want 4:1", got)
	}
	if got := rule.Head.Pos; got != rule.Pos {
		t.Errorf("head position = %v, want %v", got, rule.Pos)
	}
	// The head FVP 'withinArea(..)=true' starts at the fluent term.
	if got := rule.Head.Args[0].Pos; got != (lang.Position{Line: 4, Col: 13}) {
		t.Errorf("head FVP position = %v, want 4:13", got)
	}
	if got := rule.Body[0].Atom.Pos; got != (lang.Position{Line: 5, Col: 5}) {
		t.Errorf("first literal position = %v, want 5:5", got)
	}
	// A negated literal's atom points at the atom, past the 'not'.
	if got := rule.Body[1].Atom.Pos; got != (lang.Position{Line: 6, Col: 9}) {
		t.Errorf("negated literal position = %v, want 6:9", got)
	}
}

// TestClausePositionsSurviveRoundTrip: printing an event description and
// re-parsing it must yield clauses that again carry real positions that
// agree with the printed layout.
func TestClausePositionsSurviveRoundTrip(t *testing.T) {
	src := "f(a).\ng(X) :- f(X), not h(X).\nholdsFor(p(V)=true, I) :- holdsFor(q(V)=true, I1), union_all([I1], I)."
	ed, err := ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := ed.String()
	re, err := ParseEventDescription(printed)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(printed, "\n")
	last := lang.Position{}
	for i, c := range re.Clauses {
		if !c.Pos.IsValid() {
			t.Fatalf("clause %d lost its position after round trip", i)
		}
		if !last.Before(c.Pos) {
			t.Fatalf("clause %d position %v not after previous %v", i, c.Pos, last)
		}
		last = c.Pos
		// The clause's head text must actually start at the recorded spot.
		line := lines[c.Pos.Line-1]
		head := c.Head.Functor
		if got := line[c.Pos.Col-1:]; !strings.HasPrefix(got, head) {
			t.Errorf("clause %d: position %v points at %q, want head %q", i, c.Pos, got, head)
		}
		for _, l := range c.Body {
			if !l.Atom.Pos.IsValid() {
				t.Errorf("clause %d: body literal %s lost its position", i, l.Atom)
			}
		}
	}
}
