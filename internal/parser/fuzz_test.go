package parser

import "testing"

// FuzzParseEventDescription: the parser ingests raw LLM output, so it must
// never panic on arbitrary text — it returns positioned errors instead.
func FuzzParseEventDescription(f *testing.F) {
	seeds := []string{
		"",
		"f(a).",
		"initiatedAt(withinArea(Vl, AreaType)=true, T) :-\n    happensAt(entersArea(Vl, AreaID), T),\n    areaType(AreaID, AreaType).",
		"holdsFor(f(X)=true, I) :- holdsFor(g(X)=true, I1), union_all([I1], I).",
		"f(a :- b.",
		"f(((((((",
		"42.",
		"X.",
		"not not not f.",
		"f(a) :- X > 1 + 2 * 3.",
		"'quoted atom'(a).",
		`"string only"`,
		"% comment only",
		"f(-1.5e10).",
		"a:-b,c,d.",
		"f(a,).",
		"[1,2,3].",
		"f(\\=).",
		"f(a)) .",
		"初始化(船).",
		// Edge inputs found while building the static analyzer: nested and
		// empty interval operators, negation shapes, and empty bodies.
		"holdsFor(f(X)=true, I) :- union_all([intersect_all([I1], I2)], I).",
		"holdsFor(a(X)=true, I) :- holdsFor(b(X)=true, I1), holdsFor(c(X)=true, I2), relative_complement_all(I1, [I2], I).",
		"holdsFor(f(X)=true, I) :- union_all([], I).",
		"initiatedAt(a(X)=true, T) :- not holdsAt(b(X)=true, T), not(c).",
		"f(a) :- .",
		":- f(a).",
		// Garbled-transport corpus: the shapes internal/llm/fault produces
		// when it corrupts or truncates a model reply in transit.
		"initiatedAt(trawling(Vl)=true, T) ;-\n    happensAt(change_in_heading(Vl), T).",
		"initiatedAt(trawling(Vl)=true, T) := happensAt(change_in_heading(Vl), T).",
		"initiatedAt(trawling(Vl=true, T :-\n    happensAt(change_in_heading(Vl, T.",
		"initiatedAt(trawling(Vl)=true�, T) :-\n    happensAt(change_in_heading(Vl)�, T).",
		"initiatedAt(trawling(Vl)=true, T) :-\n    happensAt(chan",
		"terminatedAt(trawling(Vl)=true, T) :-\n    happensAt(gap_st\xff\xfe",
		"Answer:\n\ninitiatedAt(f(X)=true, T) :-\n    happensAt(e(X)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ed, err := ParseEventDescription(src)
		if err == nil && ed == nil {
			t.Fatal("nil event description without error")
		}
		// Whatever parses must print and re-parse (round-trip stability).
		if err == nil {
			printed := ed.String()
			if _, err2 := ParseEventDescription(printed); err2 != nil {
				t.Fatalf("round trip failed for %q -> %q: %v", src, printed, err2)
			}
		}
	})
}

// FuzzParseTerm mirrors the clause fuzzer at the term level.
func FuzzParseTerm(f *testing.F) {
	for _, s := range []string{"f(a)", "X", "1+2", "[a, [b, c]]", "f(g(h(i(j))))", "-", "(((", "a=b=c"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		term, err := ParseTerm(src)
		if err == nil {
			if term == nil {
				t.Fatal("nil term without error")
			}
			if _, err2 := ParseTerm(term.String()); err2 != nil {
				t.Fatalf("round trip failed for %q -> %q: %v", src, term, err2)
			}
		}
	})
}
