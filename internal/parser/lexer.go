// Package parser implements a lexer and parser for the concrete RTEC dialect
// used in this repository: Prolog-like clauses with ':-' rules, '%' comments,
// upper-case variables, lists, and infix arithmetic/comparison operators.
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokAtom
	tokVar
	tokInt
	tokFloat
	tokString
	tokPunct // ( ) [ ] , . | and operators := :- = < > >= =< =:= =\= \= + - * /
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a parse error carrying source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) errorf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '%':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// multi-character operators, longest first.
var multiOps = []string{"=:=", "=\\=", ":-", ">=", "=<", "\\=", "<-"}

const singleOps = "()[],.|=<>+-*/"

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (lx *lexer) next() (token, *Error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := lx.peekByte()

	// Numbers. A '.' is part of a number only when both neighbours are
	// digits, so the clause terminator "3." lexes as INT then '.'.
	if c >= '0' && c <= '9' {
		start := lx.pos
		for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
			lx.advance()
		}
		isFloat := false
		if lx.pos+1 < len(lx.src) && lx.peekByte() == '.' && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
				lx.advance()
			}
		}
		// Exponent part, e.g. 1e9 or 2.5e-3.
		if lx.pos < len(lx.src) && (lx.peekByte() == 'e' || lx.peekByte() == 'E') {
			save, sl, sc := lx.pos, lx.line, lx.col
			lx.advance()
			if lx.pos < len(lx.src) && (lx.peekByte() == '+' || lx.peekByte() == '-') {
				lx.advance()
			}
			if lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
				isFloat = true
				for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
					lx.advance()
				}
			} else {
				lx.pos, lx.line, lx.col = save, sl, sc
			}
		}
		kind := tokInt
		if isFloat {
			kind = tokFloat
		}
		return token{kind: kind, text: lx.src[start:lx.pos], line: line, col: col}, nil
	}

	// Identifiers: variables and atoms.
	if isIdentStart(c) {
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if c == '_' || unicode.IsUpper(rune(c)) {
			return token{kind: tokVar, text: text, line: line, col: col}, nil
		}
		return token{kind: tokAtom, text: text, line: line, col: col}, nil
	}

	// Quoted atoms 'like this' keep their spelling without the quotes.
	if c == '\'' {
		lx.advance()
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf(line, col, "unterminated quoted atom")
			}
			ch := lx.advance()
			if ch == '\'' {
				break
			}
			b.WriteByte(ch)
		}
		return token{kind: tokAtom, text: b.String(), line: line, col: col}, nil
	}

	// Strings: scan to the closing unescaped quote, then decode with the
	// full Go escape syntax (the printer uses strconv.Quote).
	if c == '"' {
		start := lx.pos
		lx.advance()
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf(line, col, "unterminated string")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.pos >= len(lx.src) {
					return token{}, lx.errorf(line, col, "unterminated string")
				}
				lx.advance()
			}
			if ch == '\n' {
				return token{}, lx.errorf(line, col, "newline in string")
			}
		}
		text, err := strconv.Unquote(lx.src[start:lx.pos])
		if err != nil {
			return token{}, lx.errorf(line, col, "bad string literal: %v", err)
		}
		return token{kind: tokString, text: text, line: line, col: col}, nil
	}

	// Multi-character operators, longest match first.
	for _, op := range multiOps {
		if strings.HasPrefix(lx.src[lx.pos:], op) {
			for range op {
				lx.advance()
			}
			return token{kind: tokPunct, text: op, line: line, col: col}, nil
		}
	}
	if strings.IndexByte(singleOps, c) >= 0 {
		lx.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
	}
	return token{}, lx.errorf(line, col, "unexpected character %q", string(c))
}
