package parser

import (
	"fmt"
	"strconv"

	"rtecgen/internal/lang"
)

// parser is a recursive-descent parser with precedence climbing for the
// infix operators of the dialect.
type parser struct {
	lx     *lexer
	tok    token
	peeked *token
	anon   int // counter for fresh names of anonymous variables
}

func newParser(src string) (*parser, *Error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() *Error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, *Error) {
	if p.peeked == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) errorf(format string, args ...any) *Error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(text string) bool {
	return p.tok.kind == tokPunct && p.tok.text == text
}

func (p *parser) expectPunct(text string) *Error {
	if !p.isPunct(text) {
		return p.errorf("expected %q, found %s", text, p.tok)
	}
	return p.advance()
}

// Operator precedence. Comparisons bind loosest, then additive, then
// multiplicative; all comparisons are non-associative.
func binaryPrec(op string) (prec int, ok bool) {
	switch op {
	case "=", "<", ">", ">=", "=<", "=:=", "=\\=", "\\=":
		return 1, true
	case "+", "-":
		return 2, true
	case "*", "/":
		return 3, true
	}
	return 0, false
}

// parseExpr parses an expression whose operators all have precedence
// >= minPrec, climbing for tighter operators. The returned term carries the
// source position of its first token.
func (p *parser) parseExpr(minPrec int) (*lang.Term, *Error) {
	start := lang.Position{Line: p.tok.line, Col: p.tok.col}
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != tokPunct {
			return left, nil
		}
		prec, ok := binaryPrec(p.tok.text)
		if !ok || prec < minPrec {
			return left, nil
		}
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Comparisons are non-associative: the right operand may only
		// contain tighter operators.
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = lang.NewCompound(op, left, right)
		left.Pos = start
	}
}

// parsePrimary parses one primary term and stamps it with the position of
// its first token.
func (p *parser) parsePrimary() (*lang.Term, *Error) {
	pos := lang.Position{Line: p.tok.line, Col: p.tok.col}
	t, err := p.parsePrimary0()
	if err != nil {
		return nil, err
	}
	t.Pos = pos
	return t, nil
}

func (p *parser) parsePrimary0() (*lang.Term, *Error) {
	switch p.tok.kind {
	case tokInt:
		v, convErr := strconv.ParseInt(p.tok.text, 10, 64)
		if convErr != nil {
			return nil, p.errorf("bad integer %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return lang.NewInt(v), nil
	case tokFloat:
		v, convErr := strconv.ParseFloat(p.tok.text, 64)
		if convErr != nil {
			return nil, p.errorf("bad float %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return lang.NewFloat(v), nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return lang.NewStr(s), nil
	case tokVar:
		name := p.tok.text
		if name == "_" {
			p.anon++
			name = fmt.Sprintf("_Anon%d", p.anon)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return lang.NewVar(name), nil
	case tokAtom:
		name := p.tok.text
		next, err := p.peek()
		if err != nil {
			return nil, err
		}
		if next.kind == tokPunct && next.text == "(" {
			if err := p.advance(); err != nil { // onto '('
				return nil, err
			}
			if err := p.advance(); err != nil { // past '('
				return nil, err
			}
			args, aerr := p.parseArgs(")")
			if aerr != nil {
				return nil, aerr
			}
			return lang.NewCompound(name, args...), nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return lang.NewAtom(name), nil
	case tokPunct:
		switch p.tok.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, err := p.parseExpr(1)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return t, nil
		case "[":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isPunct("]") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				return lang.NewList(), nil
			}
			elems, err := p.parseArgs("]")
			if err != nil {
				return nil, err
			}
			return lang.NewList(elems...), nil
		case "-":
			// Unary minus: only over numeric literals or parenthesised
			// expressions, producing a negative constant or '-'(0, X).
			if err := p.advance(); err != nil {
				return nil, err
			}
			operand, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			switch operand.Kind {
			case lang.Int:
				return lang.NewInt(-operand.Int), nil
			case lang.Float:
				return lang.NewFloat(-operand.Float), nil
			default:
				return lang.NewCompound("-", lang.NewInt(0), operand), nil
			}
		}
	}
	return nil, p.errorf("unexpected %s", p.tok)
}

// parseArgs parses a comma-separated list of expressions terminated by the
// given closing punctuation, consuming the closer.
func (p *parser) parseArgs(closer string) ([]*lang.Term, *Error) {
	var args []*lang.Term
	for {
		t, err := p.parseExpr(1)
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.expectPunct(closer); err != nil {
			return nil, err
		}
		return args, nil
	}
}

// parseLiteral parses one body condition, handling 'not' both as a prefix
// keyword and as a unary compound not(...).
func (p *parser) parseLiteral() (lang.Literal, *Error) {
	if p.tok.kind == tokAtom && p.tok.text == "not" {
		next, err := p.peek()
		if err != nil {
			return lang.Literal{}, err
		}
		// "not foo(X)" — prefix form. "not(foo(X))" parses as a compound
		// below and is normalised afterwards.
		if !(next.kind == tokPunct && next.text == "(") {
			if err := p.advance(); err != nil {
				return lang.Literal{}, err
			}
			atom, aerr := p.parseExpr(1)
			if aerr != nil {
				return lang.Literal{}, aerr
			}
			return lang.Neg(atom), nil
		}
	}
	t, err := p.parseExpr(1)
	if err != nil {
		return lang.Literal{}, err
	}
	if t.Kind == lang.Compound && t.Functor == "not" && len(t.Args) == 1 {
		return lang.Neg(t.Args[0]), nil
	}
	return lang.Pos(t), nil
}

// parseClause parses one clause terminated by '.'; returns nil at EOF.
func (p *parser) parseClause() (*lang.Clause, *Error) {
	if p.tok.kind == tokEOF {
		return nil, nil
	}
	head, err := p.parseExpr(1)
	if err != nil {
		return nil, err
	}
	if !head.IsCallable() {
		return nil, p.errorf("clause head must be an atom or compound, found %s", head)
	}
	c := &lang.Clause{Head: head, Pos: head.Pos}
	if p.isPunct(":-") || p.isPunct("<-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			lit, lerr := p.parseLiteral()
			if lerr != nil {
				return nil, lerr
			}
			c.Body = append(c.Body, lit)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseTerm parses a single term from src.
func ParseTerm(src string) (*lang.Term, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	t, err := p.parseExpr(1)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("trailing input after term: %s", p.tok)
	}
	return t, nil
}

// ParseClause parses a single clause (terminated by '.') from src.
func ParseClause(src string) (*lang.Clause, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	c, err := p.parseClause()
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, &Error{Line: 1, Col: 1, Msg: "empty input"}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("trailing input after clause: %s", p.tok)
	}
	return c, nil
}

// ParseEventDescription parses a whole event description: a sequence of
// clauses. On error it reports the position of the first offending token.
func ParseEventDescription(src string) (*lang.EventDescription, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	ed := &lang.EventDescription{}
	for {
		c, cerr := p.parseClause()
		if cerr != nil {
			return nil, cerr
		}
		if c == nil {
			return ed, nil
		}
		ed.Clauses = append(ed.Clauses, c)
	}
}

// MustParseEventDescription parses src and panics on error. It is intended
// for embedded, compile-time-known event descriptions such as the gold
// standard.
func MustParseEventDescription(src string) *lang.EventDescription {
	ed, err := ParseEventDescription(src)
	if err != nil {
		panic(fmt.Sprintf("parser: invalid embedded event description: %v", err))
	}
	return ed
}

// MustParseClause parses a single clause and panics on error.
func MustParseClause(src string) *lang.Clause {
	c, err := ParseClause(src)
	if err != nil {
		panic(fmt.Sprintf("parser: invalid embedded clause: %v", err))
	}
	return c
}

// MustParseTerm parses a single term and panics on error.
func MustParseTerm(src string) *lang.Term {
	t, err := ParseTerm(src)
	if err != nil {
		panic(fmt.Sprintf("parser: invalid embedded term: %v", err))
	}
	return t
}
