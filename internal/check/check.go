// Package check automates the qualitative error assessment of the paper's
// Section 5.2: it classifies the defects of an LLM-generated event
// description into the four published categories — (1) naming divergences,
// (2) wrong fluent kind, (3) conditions over undefined activities, and
// (4) misuse of the interval operators (disjunction/conjunction/negation) —
// plus outright syntax errors.
package check

import (
	"fmt"
	"sort"
	"strings"

	"rtecgen/internal/analysis"
	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
	"rtecgen/internal/prompt"
)

// Category is one of the paper's error categories.
type Category int

const (
	// Syntax: the model output could not be parsed as RTEC rules.
	Syntax Category = iota
	// Naming: a minor divergence in the name chosen for an event, activity
	// or background-knowledge expression (category 1).
	Naming
	// FluentKind: an activity modelled with a different type of fluent than
	// the gold standard (category 2).
	FluentKind
	// Undefined: a condition over an activity that is not defined in the
	// generated event description (category 3).
	Undefined
	// Operator: misuse of interval operations, e.g. intersect_all in place
	// of union_all (category 4).
	Operator
)

func (c Category) String() string {
	switch c {
	case Syntax:
		return "syntax error"
	case Naming:
		return "naming divergence"
	case FluentKind:
		return "wrong fluent kind"
	case Undefined:
		return "undefined condition"
	case Operator:
		return "operator misuse"
	}
	return "unknown"
}

// Finding is one classified defect.
type Finding struct {
	Category Category
	Activity string // curriculum key, or "" when not attributable
	Detail   string
}

func (f Finding) String() string {
	if f.Activity == "" {
		return fmt.Sprintf("[%s] %s", f.Category, f.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", f.Category, f.Activity, f.Detail)
}

// Analyze classifies the defects of a generated event description against
// the gold standard and the domain vocabulary.
func Analyze(gen *prompt.GeneratedED, gold *lang.EventDescription, domain *prompt.Domain) []Finding {
	var out []Finding

	// Syntax errors recorded at parse time.
	for _, r := range gen.Results {
		for _, e := range r.Errors {
			out = append(out, Finding{Category: Syntax, Activity: r.Request.Key, Detail: e})
		}
	}

	vocab := vocabularyNames(domain)
	aliasOf := map[string]string{}
	for canonical, alts := range domain.Aliases {
		for _, a := range alts {
			aliasOf[a] = canonical
		}
	}

	genED := gen.ED()
	defined := map[string]bool{}
	kindOf := map[string]lang.HeadKind{}
	for _, c := range genED.Rules() {
		if _, fl := c.HeadFVP(); fl != nil {
			defined[fl.Functor] = true
			if k, ok := kindOf[fl.Functor]; !ok || k != lang.KindHoldsFor {
				kindOf[fl.Functor] = c.Kind()
			}
		}
	}
	goldKind := map[string]lang.HeadKind{}
	for _, c := range gold.Rules() {
		if _, fl := c.HeadFVP(); fl != nil {
			if k, ok := goldKind[fl.Functor]; !ok || k != lang.KindHoldsFor {
				goldKind[fl.Functor] = c.Kind()
			}
		}
	}

	for _, r := range gen.Results {
		seenNaming := map[string]bool{}
		seenUndef := map[string]bool{}
		for _, c := range r.Clauses {
			// Category 1: names mapped back by the alias table.
			for name := range namesInClause(c) {
				if seenNaming[name] || vocab[name] || defined[name] {
					continue
				}
				if canonical, ok := aliasOf[name]; ok {
					seenNaming[name] = true
					out = append(out, Finding{Category: Naming, Activity: r.Request.Key,
						Detail: fmt.Sprintf("%q should be %q", name, canonical)})
				}
			}
			// Category 3: fluent references with no definition.
			for _, l := range c.Body {
				name, ok := fluentRef(l.Atom)
				if !ok || defined[name] || vocab[name] || seenUndef[name] {
					continue
				}
				if _, isAlias := aliasOf[name]; isAlias {
					continue // a naming problem, not an undefined activity
				}
				seenUndef[name] = true
				out = append(out, Finding{Category: Undefined, Activity: r.Request.Key,
					Detail: fmt.Sprintf("condition refers to undefined activity %q", name)})
			}
		}
		// Category 2: fluent kind differs from the gold standard.
		for _, c := range r.Clauses {
			_, fl := c.HeadFVP()
			if fl == nil {
				continue
			}
			gk, inGold := goldKind[fl.Functor]
			if !inGold {
				continue
			}
			genIsSD := kindOf[fl.Functor] == lang.KindHoldsFor
			goldIsSD := gk == lang.KindHoldsFor
			if genIsSD != goldIsSD {
				out = append(out, Finding{Category: FluentKind, Activity: r.Request.Key,
					Detail: fmt.Sprintf("%s modelled as %s but the gold standard uses %s",
						fl.Functor, kindName(genIsSD), kindName(goldIsSD))})
				break
			}
		}
		// Category 4: interval-operator multiset differs for a shared fluent.
		out = append(out, operatorFindings(r, gold)...)
	}
	return out
}

func kindName(sd bool) string {
	if sd {
		return "a statically determined fluent"
	}
	return "a simple fluent"
}

// operatorFindings compares the interval-operator usage of each holdsFor
// rule against the gold rule for the same fluent.
func operatorFindings(r prompt.ActivityResult, gold *lang.EventDescription) []Finding {
	goldOps := map[string]map[string]int{}
	for _, c := range gold.Rules() {
		if c.Kind() != lang.KindHoldsFor {
			continue
		}
		if _, fl := c.HeadFVP(); fl != nil {
			goldOps[fl.Functor] = opCounts(c)
		}
	}
	var out []Finding
	for _, c := range r.Clauses {
		if c.Kind() != lang.KindHoldsFor {
			continue
		}
		_, fl := c.HeadFVP()
		if fl == nil {
			continue
		}
		want, ok := goldOps[fl.Functor]
		if !ok {
			continue
		}
		got := opCounts(c)
		// Only flag swaps: same total construct count, different mix.
		if total(got) == total(want) && !sameCounts(got, want) {
			out = append(out, Finding{Category: Operator, Activity: r.Request.Key,
				Detail: fmt.Sprintf("%s uses %s but the gold standard uses %s",
					fl.Functor, fmtOps(got), fmtOps(want))})
		}
	}
	return out
}

func opCounts(c *lang.Clause) map[string]int {
	out := map[string]int{}
	for _, l := range c.Body {
		switch l.Atom.Functor {
		case "union_all", "intersect_all", "relative_complement_all":
			out[l.Atom.Functor]++
		}
	}
	return out
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func sameCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func fmtOps(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%dx %s", m[k], k)
	}
	return strings.Join(parts, ", ")
}

func vocabularyNames(d *prompt.Domain) map[string]bool {
	out := map[string]bool{
		"initiatedAt": true, "terminatedAt": true, "holdsAt": true, "holdsFor": true,
		"happensAt": true, "union_all": true, "intersect_all": true,
		"relative_complement_all": true, "not": true, "=": true, "true": true,
		"thresholds": true, "absAngleDiff": true, "abs": true,
		"oneIsTug": true, "oneIsPilot": true, "vessel": true, "vesselPair": true,
		"<": true, ">": true, ">=": true, "=<": true, "=:=": true, "=\\=": true,
		"\\=": true, "+": true, "-": true, "*": true, "/": true,
	}
	addPattern := func(p string) {
		if t, err := parser.ParseTerm(p); err == nil {
			t.Walk(func(n *lang.Term) bool {
				if n.Kind == lang.Compound || n.Kind == lang.Atom {
					out[n.Functor] = true
				}
				return n.Kind == lang.Compound
			})
		}
	}
	for _, e := range d.Events {
		addPattern(e.Pattern)
	}
	for _, b := range d.Background {
		addPattern(b.Pattern)
	}
	for _, t := range d.Thresholds {
		out[t.Name] = true
	}
	for _, v := range d.Values {
		out[v] = true
	}
	for _, c := range []string{"fishing", "anchorage", "nearCoast", "nearPorts",
		"fishingVessel", "cargo", "tanker", "tug", "pilotVessel", "sarVessel", "passenger"} {
		out[c] = true
	}
	return out
}

func namesInClause(c *lang.Clause) map[string]bool {
	out := map[string]bool{}
	add := func(t *lang.Term) {
		t.Walk(func(n *lang.Term) bool {
			if n.Kind == lang.Atom || n.Kind == lang.Compound {
				out[n.Functor] = true
			}
			return true
		})
	}
	add(c.Head)
	for _, l := range c.Body {
		add(l.Atom)
	}
	return out
}

// fluentRef extracts the fluent functor of a holdsAt/holdsFor condition.
func fluentRef(atom *lang.Term) (string, bool) {
	if atom.Kind != lang.Compound || (atom.Functor != "holdsAt" && atom.Functor != "holdsFor") {
		return "", false
	}
	if len(atom.Args) != 2 {
		return "", false
	}
	fvp := atom.Args[0]
	if fvp.Kind == lang.Compound && fvp.Functor == "=" && len(fvp.Args) == 2 && fvp.Args[0].IsCallable() {
		return fvp.Args[0].Functor, true
	}
	return "", false
}

// CategoryForCode maps a static-analyzer diagnostic code (internal/analysis)
// to the paper's Section 5.2 error category. Not every analyzer finding has
// a counterpart in the published taxonomy: arity mismatches (R001),
// dependency cycles (R004), unused definitions (R005), duplicate clauses
// (R006) and unsafe variables (R007) have no category, and the second
// return is false for them.
func CategoryForCode(code string) (Category, bool) {
	switch code {
	case analysis.SyntaxCode:
		return Syntax, true
	case "R002": // undefined-reference: conditions over undefined activities
		return Undefined, true
	case "R003": // fluent-kind-conflict
		return FluentKind, true
	case "R008": // interval-operator-misuse
		return Operator, true
	case "R010": // unknown-name: misremembered vocabulary names
		return Naming, true
	}
	return 0, false
}

// FindingsFromDiagnostics converts static-analyzer diagnostics into paper
// findings, dropping the diagnostics with no published category. Unlike
// Analyze, this classification needs no gold standard; position information
// is folded into the detail text.
func FindingsFromDiagnostics(ds []analysis.Diagnostic) []Finding {
	var out []Finding
	for _, d := range ds {
		cat, ok := CategoryForCode(d.Code)
		if !ok {
			continue
		}
		detail := d.Message
		if d.Pos.IsValid() {
			detail = fmt.Sprintf("%s (at %s)", d.Message, d.Pos)
		}
		out = append(out, Finding{Category: cat, Detail: detail})
	}
	return out
}

// CountByCategory aggregates findings per category.
func CountByCategory(fs []Finding) map[Category]int {
	out := map[Category]int{}
	for _, f := range fs {
		out[f.Category]++
	}
	return out
}
