package check

import (
	"strings"
	"testing"

	"rtecgen/internal/analysis"
	"rtecgen/internal/lang"
	"rtecgen/internal/llm"
	"rtecgen/internal/maritime"
	"rtecgen/internal/parser"
	"rtecgen/internal/prompt"
)

func genFromSrc(t *testing.T, key, src string, errs ...string) *prompt.GeneratedED {
	t.Helper()
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	return &prompt.GeneratedED{
		ModelName: "test",
		Results: []prompt.ActivityResult{{
			Request: prompt.ActivityRequest{Key: key, Name: key},
			Clauses: ed.Clauses,
			Errors:  errs,
		}},
	}
}

func analyze(t *testing.T, gen *prompt.GeneratedED) []Finding {
	t.Helper()
	return Analyze(gen, maritime.GoldED(), maritime.PromptDomain())
}

func hasCategory(fs []Finding, c Category) bool {
	for _, f := range fs {
		if f.Category == c {
			return true
		}
	}
	return false
}

func TestDetectsNamingDivergence(t *testing.T) {
	gen := genFromSrc(t, "tr", `
initiatedAt(trawlingMovement(Vl)=true, T) :-
    happensAt(change_in_heading(Vl), T),
    holdsAt(withinArea(Vl, trawlingArea)=true, T).
`)
	fs := analyze(t, gen)
	if !hasCategory(fs, Naming) {
		t.Fatalf("naming divergence not found: %v", fs)
	}
	found := false
	for _, f := range fs {
		if f.Category == Naming && strings.Contains(f.Detail, `"trawlingArea" should be "fishing"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected trawlingArea finding: %v", fs)
	}
}

func TestDetectsWrongFluentKind(t *testing.T) {
	gen := genFromSrc(t, "tr", `
initiatedAt(trawling(Vl)=true, T) :-
    happensAt(change_in_heading(Vl), T).
`)
	fs := analyze(t, gen)
	if !hasCategory(fs, FluentKind) {
		t.Fatalf("fluent-kind error not found: %v", fs)
	}
}

func TestDetectsUndefinedCondition(t *testing.T) {
	gen := genFromSrc(t, "tr", `
holdsFor(trawling(Vl)=true, I) :-
    holdsFor(fishingGearDeployed(Vl)=true, I1),
    intersect_all([I1], I).
`)
	fs := analyze(t, gen)
	if !hasCategory(fs, Undefined) {
		t.Fatalf("undefined condition not found: %v", fs)
	}
}

func TestUndefinedNotReportedForDefinedFluents(t *testing.T) {
	gen := genFromSrc(t, "x", `
initiatedAt(helper(Vl)=true, T) :-
    happensAt(stop_start(Vl), T).

holdsFor(top(Vl)=true, I) :-
    holdsFor(helper(Vl)=true, I1),
    union_all([I1], I).
`)
	fs := analyze(t, gen)
	if hasCategory(fs, Undefined) {
		t.Fatalf("false undefined finding: %v", fs)
	}
}

func TestDetectsOperatorMisuse(t *testing.T) {
	// Gold loitering uses union_all + relative_complement_all; swapping the
	// union for an intersect is the paper's category-4 example.
	gen := genFromSrc(t, "l", `
holdsFor(loitering(Vl)=true, I) :-
    holdsFor(lowSpeed(Vl)=true, Il),
    holdsFor(stopped(Vl)=farFromPorts, Is),
    intersect_all([Il, Is], Ils),
    holdsFor(withinArea(Vl, nearPorts)=true, Inp),
    holdsFor(anchoredOrMoored(Vl)=true, Iam),
    relative_complement_all(Ils, [Inp, Iam], I).
`)
	fs := analyze(t, gen)
	if !hasCategory(fs, Operator) {
		t.Fatalf("operator misuse not found: %v", fs)
	}
}

func TestDetectsSyntaxErrors(t *testing.T) {
	gen := genFromSrc(t, "aM", `vessel(v1).`, "unparseable rule chunk: 1:10: ...")
	fs := analyze(t, gen)
	if !hasCategory(fs, Syntax) {
		t.Fatalf("syntax error not found: %v", fs)
	}
}

func TestCleanDefinitionHasNoFindings(t *testing.T) {
	// A definition is clean when its conditions refer only to activities the
	// description itself defines (hierarchical knowledge base).
	gen := genFromSrc(t, "aM", `
initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersArea(Vl, AreaID), T),
    areaType(AreaID, AreaType).

initiatedAt(stopped(Vl)=farFromPorts, T) :-
    happensAt(stop_start(Vl), T),
    not holdsAt(withinArea(Vl, nearPorts)=true, T).

holdsFor(anchoredOrMoored(Vl)=true, I) :-
    holdsFor(stopped(Vl)=farFromPorts, Isf),
    holdsFor(withinArea(Vl, anchorage)=true, Ia),
    intersect_all([Isf, Ia], Isfa),
    holdsFor(stopped(Vl)=nearPorts, Isn),
    union_all([Isfa, Isn], I).
`)
	fs := analyze(t, gen)
	if len(fs) != 0 {
		t.Fatalf("clean definition produced findings: %v", fs)
	}
}

func TestAnalyzeOnRealModels(t *testing.T) {
	domain := maritime.PromptDomain()
	gold := maritime.GoldED()
	gen, err := prompt.RunPipeline(llm.MustNew("GPT-4o"), prompt.ChainOfThought, domain, maritime.CurriculumRequests())
	if err != nil {
		t.Fatal(err)
	}
	fs := Analyze(gen, gold, domain)
	counts := CountByCategory(fs)
	// GPT-4o's profile guarantees the kind flip (movingSpeed) and the
	// operator confusion (loitering), plus undefined helper fluents.
	if counts[FluentKind] == 0 {
		t.Errorf("missing fluent-kind finding: %v", fs)
	}
	if counts[Operator] == 0 {
		t.Errorf("missing operator finding: %v", fs)
	}
	if counts[Undefined] == 0 {
		t.Errorf("missing undefined finding: %v", fs)
	}
}

func TestCategoryStrings(t *testing.T) {
	for c, want := range map[Category]string{
		Syntax: "syntax error", Naming: "naming divergence",
		FluentKind: "wrong fluent kind", Undefined: "undefined condition",
		Operator: "operator misuse",
	} {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q", c, c.String())
		}
	}
	f := Finding{Category: Naming, Activity: "tr", Detail: "x"}
	if f.String() != "[naming divergence] tr: x" {
		t.Fatalf("finding string = %q", f.String())
	}
}

func TestCategoryForCode(t *testing.T) {
	want := map[string]Category{
		"R000": Syntax, "R002": Undefined, "R003": FluentKind,
		"R008": Operator, "R010": Naming,
	}
	for code, cat := range want {
		got, ok := CategoryForCode(code)
		if !ok || got != cat {
			t.Errorf("CategoryForCode(%s) = %v, %v; want %v, true", code, got, ok, cat)
		}
	}
	for _, code := range []string{"R001", "R004", "R005", "R006", "R007", "R009"} {
		if _, ok := CategoryForCode(code); ok {
			t.Errorf("CategoryForCode(%s) should have no paper category", code)
		}
	}
}

func TestFindingsFromDiagnostics(t *testing.T) {
	ds := []analysis.Diagnostic{
		{Code: "R002", Severity: analysis.Error, Pos: lang.Position{Line: 3, Col: 7},
			Message: "condition over undefined fluent 'x'"},
		{Code: "R005", Severity: analysis.Info, Message: "'y' is defined but never referenced"},
		{Code: "R010", Severity: analysis.Warning, Message: "'z' is not in the domain vocabulary"},
	}
	fs := FindingsFromDiagnostics(ds)
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2 (R005 has no category): %v", len(fs), fs)
	}
	if fs[0].Category != Undefined || !strings.Contains(fs[0].Detail, "at 3:7") {
		t.Fatalf("first finding = %v", fs[0])
	}
	if fs[1].Category != Naming {
		t.Fatalf("second finding = %v", fs[1])
	}
}
