package kb

import (
	"math"
	"testing"

	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
)

func TestEvalArith(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"3", 3},
		{"2.5", 2.5},
		{"1 + 2", 3},
		{"2 * 3 + 1", 7},
		{"10 - 4 - 3", 3},
		{"10 / 4", 2.5},
		{"abs(3 - 10)", 7},
		{"-5", -5},
	}
	for _, c := range cases {
		got, err := EvalArith(parser.MustParseTerm(c.src))
		if err != nil {
			t.Errorf("EvalArith(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalArith(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	if _, err := EvalArith(parser.MustParseTerm("foo")); err == nil {
		t.Fatal("atom evaluated as arithmetic")
	}
	if _, err := EvalArith(parser.MustParseTerm("1 / 0")); err == nil {
		t.Fatal("division by zero succeeded")
	}
	if _, err := EvalArith(parser.MustParseTerm("X + 1")); err == nil {
		t.Fatal("unbound variable evaluated")
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{10, 350, 20},
		{350, 10, 20},
		{0, 180, 180},
		{90, 270, 180},
		{45, 90, 45},
		{720, 0, 0},
	}
	for _, c := range cases {
		if got := AngleDiff(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSolveBuiltinComparisons(t *testing.T) {
	s := lang.NewSubst()
	substs, handled, err := SolveBuiltin(parser.MustParseTerm("3 < 5"), s)
	if !handled || err != nil || len(substs) != 1 {
		t.Fatalf("3 < 5: handled=%v err=%v n=%d", handled, err, len(substs))
	}
	substs, handled, err = SolveBuiltin(parser.MustParseTerm("5 =< 3"), s)
	if !handled || err != nil || len(substs) != 0 {
		t.Fatalf("5 =< 3: handled=%v err=%v n=%d", handled, err, len(substs))
	}
	substs, _, err = SolveBuiltin(parser.MustParseTerm("2 =:= 2.0"), s)
	if err != nil || len(substs) != 1 {
		t.Fatalf("2 =:= 2.0 failed: %v", err)
	}
	substs, _, err = SolveBuiltin(parser.MustParseTerm("2 =\\= 3"), s)
	if err != nil || len(substs) != 1 {
		t.Fatalf("2 =\\= 3 failed: %v", err)
	}
}

func TestSolveBuiltinUnification(t *testing.T) {
	s := lang.NewSubst()
	substs, handled, err := SolveBuiltin(parser.MustParseTerm("X = f(a)"), s)
	if !handled || err != nil || len(substs) != 1 {
		t.Fatalf("X = f(a): %v %v %d", handled, err, len(substs))
	}
	if got := substs[0].Resolve(lang.NewVar("X")); got.String() != "f(a)" {
		t.Fatalf("X = %s", got)
	}
	substs, _, _ = SolveBuiltin(parser.MustParseTerm("a \\= b"), s)
	if len(substs) != 1 {
		t.Fatal("a \\= b should succeed")
	}
	substs, _, _ = SolveBuiltin(parser.MustParseTerm("a \\= a"), s)
	if len(substs) != 0 {
		t.Fatal("a \\= a should fail")
	}
}

func TestSolveBuiltinAbsAngleDiff(t *testing.T) {
	s := lang.NewSubst()
	substs, handled, err := SolveBuiltin(parser.MustParseTerm("absAngleDiff(350, 10, D)"), s)
	if !handled || err != nil || len(substs) != 1 {
		t.Fatalf("absAngleDiff: %v %v %d", handled, err, len(substs))
	}
	if got := substs[0].Resolve(lang.NewVar("D")); got.Float != 20 {
		t.Fatalf("D = %s, want 20", got)
	}
	// Checking mode: third argument bound.
	substs, _, err = SolveBuiltin(parser.MustParseTerm("absAngleDiff(350, 10, 20.0)"), s)
	if err != nil || len(substs) != 1 {
		t.Fatalf("checking mode failed: %v", err)
	}
	substs, _, err = SolveBuiltin(parser.MustParseTerm("absAngleDiff(350, 10, 21)"), s)
	if err != nil || len(substs) != 0 {
		t.Fatal("wrong diff accepted")
	}
	// Unbound angle is an error.
	if _, _, err = SolveBuiltin(parser.MustParseTerm("absAngleDiff(A, 10, D)"), s); err == nil {
		t.Fatal("unbound angle accepted")
	}
}

func TestSolveBuiltinNotABuiltin(t *testing.T) {
	_, handled, _ := SolveBuiltin(parser.MustParseTerm("areaType(a1, fishing)"), lang.NewSubst())
	if handled {
		t.Fatal("areaType treated as builtin")
	}
	_, handled, _ = SolveBuiltin(parser.MustParseTerm("foo"), lang.NewSubst())
	if handled {
		t.Fatal("atom treated as builtin")
	}
}

func TestIsBuiltin(t *testing.T) {
	for _, ind := range []string{"</2", ">/2", "=</2", ">=/2", "=:=/2", "=\\=/2", "=/2", "\\=/2", "absAngleDiff/3"} {
		if !IsBuiltin(ind) {
			t.Errorf("IsBuiltin(%q) = false", ind)
		}
	}
	if IsBuiltin("happensAt/2") || IsBuiltin("=/3") {
		t.Fatal("false positive")
	}
}
