// Package kb implements the atemporal background knowledge base of an RTEC
// event description: ground facts (area types, vessel types, thresholds),
// non-temporal auxiliary rules (e.g. "one of the pair is a tug"), and their
// materialisation to a fixpoint, together with conjunctive query evaluation
// with negation-by-failure and arithmetic builtins. Both the RTEC engine and
// the grounding of statically determined fluents query the KB.
package kb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rtecgen/internal/lang"
)

// KB is a background knowledge base. Populate with AddFact/AddRule (or
// FromEventDescription), call Materialize once, then Query freely. A KB is
// not safe for concurrent mutation; queries after materialisation are
// read-only and may run concurrently.
type KB struct {
	facts   map[lang.PredKey][]*lang.Term // by predicate
	byFirst map[argKey][]*lang.Term       // by predicate + ground first argument
	present map[string]bool               // canonical strings, for dedup
	rules   []*lang.Clause
}

// New returns an empty knowledge base.
func New() *KB {
	return &KB{
		facts:   map[lang.PredKey][]*lang.Term{},
		byFirst: map[argKey][]*lang.Term{},
		present: map[string]bool{},
	}
}

// argKey is the first-argument index key: the predicate plus a canonical
// encoding of its ground first argument. Atom first arguments (the common
// case: entity identifiers) index without any string building.
type argKey struct {
	pred lang.PredKey
	kind lang.Kind
	arg  string
}

// firstArgKey builds the first-argument index key for a callable term whose
// first argument is ground; ok is false when the index does not apply.
func firstArgKey(t *lang.Term) (argKey, bool) {
	if len(t.Args) == 0 {
		return argKey{}, false
	}
	a := t.Args[0]
	k := argKey{pred: t.Pred(), kind: a.Kind}
	switch a.Kind {
	case lang.Atom:
		k.arg = a.Functor
	case lang.Str:
		k.arg = a.Text
	case lang.Int:
		k.arg = strconv.FormatInt(a.Int, 10)
	default:
		if !a.IsGround() {
			return argKey{}, false
		}
		k.arg = a.String()
	}
	return k, true
}

// AddFact inserts a ground fact; duplicates are ignored. Non-ground or
// non-callable terms are rejected.
func (k *KB) AddFact(t *lang.Term) error {
	if !t.IsCallable() {
		return fmt.Errorf("kb: fact %s is not callable", t)
	}
	if !t.IsGround() {
		return fmt.Errorf("kb: fact %s is not ground", t)
	}
	key := t.String()
	if k.present[key] {
		return nil
	}
	k.present[key] = true
	pred := t.Pred()
	k.facts[pred] = append(k.facts[pred], t)
	if fk, ok := firstArgKey(t); ok {
		k.byFirst[fk] = append(k.byFirst[fk], t)
	}
	return nil
}

// AddRule registers a non-temporal rule for materialisation.
func (k *KB) AddRule(c *lang.Clause) { k.rules = append(k.rules, c) }

// Has reports whether the exact ground fact is present.
func (k *KB) Has(t *lang.Term) bool { return k.present[t.String()] }

// FactsOf returns the facts with the given indicator ("functor/arity").
func (k *KB) FactsOf(indicator string) []*lang.Term {
	slash := strings.LastIndexByte(indicator, '/')
	if slash < 0 {
		return nil
	}
	arity, err := strconv.Atoi(indicator[slash+1:])
	if err != nil {
		return nil
	}
	return k.facts[lang.PredKey{Functor: indicator[:slash], Arity: arity}]
}

// FactsOfPred returns the facts of a predicate without building an
// indicator string.
func (k *KB) FactsOfPred(pred lang.PredKey) []*lang.Term { return k.facts[pred] }

// Indicators returns the sorted indicators of all stored facts.
func (k *KB) Indicators() []string {
	out := make([]string, 0, len(k.facts))
	for pred := range k.facts {
		out = append(out, pred.String())
	}
	sort.Strings(out)
	return out
}

// Size returns the total number of stored facts.
func (k *KB) Size() int { return len(k.present) }

// Materialize evaluates the registered rules to a fixpoint, adding every
// derivable ground head as a fact. Background rules must not recurse through
// negation; with such rules the fixpoint may depend on rule order.
func (k *KB) Materialize() error {
	for round := 0; ; round++ {
		if round > 10000 {
			return fmt.Errorf("kb: materialisation did not converge after %d rounds", round)
		}
		added := false
		for _, r := range k.rules {
			ren := r.RenameApart(fmt.Sprintf("_m%d", round))
			substs, err := k.Query(ren.Body, lang.NewSubst())
			if err != nil {
				return fmt.Errorf("kb: rule %s: %w", r.Head, err)
			}
			for _, s := range substs {
				h := s.Resolve(ren.Head)
				if !h.IsGround() {
					return fmt.Errorf("kb: rule for %s derived non-ground fact %s", r.Head, h)
				}
				if !k.present[h.String()] {
					if err := k.AddFact(h); err != nil {
						return err
					}
					added = true
				}
			}
		}
		if !added {
			return nil
		}
	}
}

// Match returns the extensions of s that unify goal with a stored fact.
// Goals whose first argument is ground use the first-argument index, so
// e.g. vesselType(v17, Type) is a constant-time lookup regardless of fleet
// size.
func (k *KB) Match(goal *lang.Term, s lang.Subst) []lang.Subst {
	resolved := s.Resolve(goal)
	candidates := k.facts[resolved.Pred()]
	if fk, ok := firstArgKey(resolved); ok {
		candidates = k.byFirst[fk]
	}
	var out []lang.Subst
	for _, f := range candidates {
		if n, ok := s.UnifyInto(resolved, f); ok {
			out = append(out, n)
		}
	}
	return out
}

// Query evaluates a conjunction of literals over the KB with backtracking,
// handling builtins and negation-by-failure, and returns all answer
// substitutions. Negated literals and builtin comparisons must be ground at
// evaluation time (after resolving earlier bindings); otherwise an error is
// returned, mirroring the safety requirement of negation-by-failure.
func (k *KB) Query(body []lang.Literal, s lang.Subst) ([]lang.Subst, error) {
	if len(body) == 0 {
		return []lang.Subst{s}, nil
	}
	lit := body[0]
	rest := body[1:]
	var out []lang.Subst

	if lit.Neg {
		matches, handled, err := k.solveOne(lit.Atom, s)
		if err != nil {
			return nil, err
		}
		_ = handled
		if len(matches) > 0 {
			return nil, nil
		}
		return k.Query(rest, s)
	}

	matches, _, err := k.solveOne(lit.Atom, s)
	if err != nil {
		return nil, err
	}
	for _, m := range matches {
		sub, err := k.Query(rest, m)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// solveOne solves a single positive goal: builtin first, then fact lookup.
func (k *KB) solveOne(atom *lang.Term, s lang.Subst) ([]lang.Subst, bool, error) {
	if substs, handled, err := SolveBuiltin(atom, s); handled {
		return substs, true, err
	}
	return k.Match(atom, s), false, nil
}

// IsDeclaration reports whether a fact head is an event-description
// declaration (inputEvent/1, simpleFluent/1, sdFluent/1) rather than
// background knowledge. Declarations are typically non-ground.
func IsDeclaration(head *lang.Term) bool {
	switch head.Indicator() {
	case "inputEvent/1", "simpleFluent/1", "sdFluent/1":
		return true
	}
	return false
}

// FromEventDescription builds a KB from the facts and background rules of an
// event description (declaration facts such as inputEvent/1 are skipped;
// the engine interprets those directly) and materialises it. Extra facts,
// e.g. the dynamic entity registry extracted from a stream, are added before
// materialisation.
func FromEventDescription(ed *lang.EventDescription, extra ...*lang.Term) (*KB, error) {
	k := New()
	for _, c := range ed.Facts() {
		if IsDeclaration(c.Head) {
			continue // engine declarations, not background knowledge
		}
		if err := k.AddFact(c.Head); err != nil {
			return nil, err
		}
	}
	for _, c := range ed.BackgroundRules() {
		if c.Head.Functor == "grounding" {
			continue // grounding declarations are handled by the engine
		}
		k.AddRule(c)
	}
	for _, f := range extra {
		if err := k.AddFact(f); err != nil {
			return nil, err
		}
	}
	if err := k.Materialize(); err != nil {
		return nil, err
	}
	return k, nil
}
