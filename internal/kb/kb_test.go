package kb

import (
	"strings"
	"testing"

	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
)

func mustKB(t *testing.T, src string, extra ...*lang.Term) *KB {
	t.Helper()
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	k, err := FromEventDescription(ed, extra...)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAddFactValidation(t *testing.T) {
	k := New()
	if err := k.AddFact(parser.MustParseTerm("areaType(a1, fishing)")); err != nil {
		t.Fatal(err)
	}
	if err := k.AddFact(parser.MustParseTerm("areaType(a1, fishing)")); err != nil {
		t.Fatal(err)
	}
	if k.Size() != 1 {
		t.Fatalf("Size = %d, want 1 (dedup)", k.Size())
	}
	if err := k.AddFact(parser.MustParseTerm("areaType(X, fishing)")); err == nil {
		t.Fatal("non-ground fact accepted")
	}
	if err := k.AddFact(parser.MustParseTerm("42")); err == nil {
		t.Fatal("non-callable fact accepted")
	}
	if !k.Has(parser.MustParseTerm("areaType(a1, fishing)")) {
		t.Fatal("Has() = false for stored fact")
	}
}

func TestMatch(t *testing.T) {
	k := mustKB(t, `
areaType(a1, fishing).
areaType(a2, anchorage).
areaType(a3, fishing).
`)
	got := k.Match(parser.MustParseTerm("areaType(A, fishing)"), lang.NewSubst())
	if len(got) != 2 {
		t.Fatalf("matches = %d, want 2", len(got))
	}
	got = k.Match(parser.MustParseTerm("areaType(a2, T)"), lang.NewSubst())
	if len(got) != 1 || !got[0].Resolve(lang.NewVar("T")).Equal(lang.NewAtom("anchorage")) {
		t.Fatalf("bound match wrong: %v", got)
	}
	if got := k.Match(parser.MustParseTerm("noSuch(X)"), lang.NewSubst()); len(got) != 0 {
		t.Fatalf("match on unknown predicate = %d", len(got))
	}
}

func TestQueryConjunctionAndNegation(t *testing.T) {
	k := mustKB(t, `
vessel(v1).
vessel(v2).
vesselType(v1, tug).
vesselType(v2, fishingVessel).
`)
	c := parser.MustParseClause("q(V) :- vessel(V), not vesselType(V, tug).")
	substs, err := k.Query(c.Body, lang.NewSubst())
	if err != nil {
		t.Fatal(err)
	}
	if len(substs) != 1 {
		t.Fatalf("answers = %d, want 1", len(substs))
	}
	if got := substs[0].Resolve(lang.NewVar("V")); !got.Equal(lang.NewAtom("v2")) {
		t.Fatalf("V = %s, want v2", got)
	}
}

func TestQueryComparisons(t *testing.T) {
	k := mustKB(t, `
thresholds(hcNearCoastMax, 5).
thresholds(trawlSpeedMin, 1).
`)
	c := parser.MustParseClause("q :- thresholds(hcNearCoastMax, Max), 7 > Max.")
	substs, err := k.Query(c.Body, lang.NewSubst())
	if err != nil {
		t.Fatal(err)
	}
	if len(substs) != 1 {
		t.Fatal("7 > 5 should succeed")
	}
	c = parser.MustParseClause("q :- thresholds(hcNearCoastMax, Max), 3 > Max.")
	substs, err = k.Query(c.Body, lang.NewSubst())
	if err != nil {
		t.Fatal(err)
	}
	if len(substs) != 0 {
		t.Fatal("3 > 5 should fail")
	}
	// Arithmetic inside comparisons.
	c = parser.MustParseClause("q :- thresholds(hcNearCoastMax, M), thresholds(trawlSpeedMin, L), M + L =:= 6.")
	substs, err = k.Query(c.Body, lang.NewSubst())
	if err != nil || len(substs) != 1 {
		t.Fatalf("arith comparison: %v, %v", substs, err)
	}
	// Unbound comparison operand is an error.
	c = parser.MustParseClause("q :- X > 3.")
	if _, err = k.Query(c.Body, lang.NewSubst()); err == nil {
		t.Fatal("unbound comparison must error")
	}
}

func TestMaterializeDerivedFacts(t *testing.T) {
	k := mustKB(t, `
vessel(v1).
vessel(v2).
vessel(v3).
vesselType(v1, tug).
oneIsTug(V1, V2) :- vesselType(V1, tug), vessel(V2), V1 \= V2.
oneIsTug(V1, V2) :- vesselType(V2, tug), vessel(V1), V1 \= V2.
`)
	if !k.Has(parser.MustParseTerm("oneIsTug(v1, v2)")) {
		t.Fatal("missing oneIsTug(v1, v2)")
	}
	if !k.Has(parser.MustParseTerm("oneIsTug(v3, v1)")) {
		t.Fatal("missing oneIsTug(v3, v1)")
	}
	if k.Has(parser.MustParseTerm("oneIsTug(v1, v1)")) {
		t.Fatal("oneIsTug(v1, v1) should be excluded by \\=")
	}
	if k.Has(parser.MustParseTerm("oneIsTug(v2, v3)")) {
		t.Fatal("neither v2 nor v3 is a tug")
	}
}

func TestMaterializeChainedRules(t *testing.T) {
	k := mustKB(t, `
edge(a, b).
edge(b, c).
edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	for _, f := range []string{"path(a, b)", "path(a, c)", "path(a, d)", "path(b, d)"} {
		if !k.Has(parser.MustParseTerm(f)) {
			t.Fatalf("missing %s", f)
		}
	}
	if k.Has(parser.MustParseTerm("path(d, a)")) {
		t.Fatal("wrong direction derived")
	}
}

func TestMaterializeNonGroundHeadFails(t *testing.T) {
	ed, err := parser.ParseEventDescription(`
vessel(v1).
bad(X, Y) :- vessel(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromEventDescription(ed); err == nil {
		t.Fatal("non-ground derived head must fail materialisation")
	} else if !strings.Contains(err.Error(), "non-ground") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFromEventDescriptionSkipsGroundingRules(t *testing.T) {
	k := mustKB(t, `
vessel(v1).
grounding(underWay(Vl)) :- vessel(Vl).
`)
	if k.Has(parser.MustParseTerm("grounding(underWay(v1))")) {
		t.Fatal("grounding declarations must not be materialised as facts")
	}
}

func TestExtraFacts(t *testing.T) {
	ed, err := parser.ParseEventDescription("areaType(a1, fishing).")
	if err != nil {
		t.Fatal(err)
	}
	k, err := FromEventDescription(ed, parser.MustParseTerm("vessel(v9)"))
	if err != nil {
		t.Fatal(err)
	}
	if !k.Has(parser.MustParseTerm("vessel(v9)")) {
		t.Fatal("extra fact missing")
	}
}

func TestIndicators(t *testing.T) {
	k := mustKB(t, `
vessel(v1).
areaType(a1, fishing).
`)
	inds := k.Indicators()
	if len(inds) != 2 || inds[0] != "areaType/2" || inds[1] != "vessel/1" {
		t.Fatalf("Indicators = %v", inds)
	}
}
