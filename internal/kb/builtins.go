package kb

import (
	"fmt"
	"math"

	"rtecgen/internal/lang"
)

// This file implements the arithmetic and comparison builtins of the RTEC
// dialect: the comparison operators <, >, =<, >=, =:= and =\=, unification
// (=) and non-unifiability (\=), and the native helper absAngleDiff/3 used
// by the maritime 'drifting' definition to compare course-over-ground with
// heading on the circle.

// comparisonOps maps each comparison functor to its semantics over floats.
var comparisonOps = map[string]func(a, b float64) bool{
	"<":    func(a, b float64) bool { return a < b },
	">":    func(a, b float64) bool { return a > b },
	"=<":   func(a, b float64) bool { return a <= b },
	">=":   func(a, b float64) bool { return a >= b },
	"=:=":  func(a, b float64) bool { return a == b },
	"=\\=": func(a, b float64) bool { return a != b },
}

// IsBuiltin reports whether the indicator names a builtin predicate.
func IsBuiltin(indicator string) bool {
	switch indicator {
	case "</2", ">/2", "=</2", ">=/2", "=:=/2", "=\\=/2", "=/2", "\\=/2", "absAngleDiff/3":
		return true
	}
	return false
}

// IsBuiltinPred is IsBuiltin without the indicator-string concatenation, for
// per-condition dispatch on hot paths.
func IsBuiltinPred(functor string, arity int) bool {
	switch arity {
	case 2:
		switch functor {
		case "<", ">", "=<", ">=", "=:=", "=\\=", "=", "\\=":
			return true
		}
	case 3:
		return functor == "absAngleDiff"
	}
	return false
}

// EvalArith evaluates a ground arithmetic expression: numbers, + - * /, and
// abs/1.
func EvalArith(t *lang.Term) (float64, error) {
	if v, ok := t.Number(); ok {
		return v, nil
	}
	if t.Kind == lang.Compound {
		switch {
		case len(t.Args) == 2:
			a, err := EvalArith(t.Args[0])
			if err != nil {
				return 0, err
			}
			b, err := EvalArith(t.Args[1])
			if err != nil {
				return 0, err
			}
			switch t.Functor {
			case "+":
				return a + b, nil
			case "-":
				return a - b, nil
			case "*":
				return a * b, nil
			case "/":
				if b == 0 {
					return 0, fmt.Errorf("kb: division by zero in %s", t)
				}
				return a / b, nil
			}
		case len(t.Args) == 1 && t.Functor == "abs":
			a, err := EvalArith(t.Args[0])
			if err != nil {
				return 0, err
			}
			return math.Abs(a), nil
		}
	}
	return 0, fmt.Errorf("kb: %s is not an arithmetic expression", t)
}

// AngleDiff returns the minimal absolute difference between two angles in
// degrees, in [0, 180].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}

// SolveBuiltin attempts to solve atom as a builtin under substitution s.
// handled reports whether the atom names a builtin at all; when handled, the
// returned substitutions are the solutions (empty means failure). Comparison
// operands must be ground arithmetic expressions; otherwise an error is
// returned.
func SolveBuiltin(atom *lang.Term, s lang.Subst) (substs []lang.Subst, handled bool, err error) {
	if atom.Kind != lang.Compound {
		return nil, false, nil
	}
	if !IsBuiltinPred(atom.Functor, len(atom.Args)) {
		return nil, false, nil
	}
	resolved := s.Resolve(atom)
	switch atom.Functor {
	case "=":
		if n, ok := s.UnifyInto(resolved.Args[0], resolved.Args[1]); ok {
			return []lang.Subst{n}, true, nil
		}
		return nil, true, nil
	case "\\=":
		if _, ok := s.UnifyInto(resolved.Args[0], resolved.Args[1]); ok {
			return nil, true, nil
		}
		return []lang.Subst{s}, true, nil
	case "absAngleDiff":
		a, err := EvalArith(resolved.Args[0])
		if err != nil {
			return nil, true, fmt.Errorf("kb: absAngleDiff: %w", err)
		}
		b, err := EvalArith(resolved.Args[1])
		if err != nil {
			return nil, true, fmt.Errorf("kb: absAngleDiff: %w", err)
		}
		d := AngleDiff(a, b)
		if n, ok := s.UnifyInto(resolved.Args[2], lang.NewFloat(d)); ok {
			return []lang.Subst{n}, true, nil
		}
		return nil, true, nil
	default: // comparison
		cmp := comparisonOps[atom.Functor]
		a, err := EvalArith(resolved.Args[0])
		if err != nil {
			return nil, true, fmt.Errorf("kb: %s: %w", atom.Functor, err)
		}
		b, err := EvalArith(resolved.Args[1])
		if err != nil {
			return nil, true, fmt.Errorf("kb: %s: %w", atom.Functor, err)
		}
		if cmp(a, b) {
			return []lang.Subst{s}, true, nil
		}
		return nil, true, nil
	}
}
