// Package correct implements the manual error-correction step of the
// paper's second experiment (Section 5.2): the "minimum required changes"
// that make an LLM-generated event description compatible with RTEC —
// renaming wrongly-spelled constants and predicates back to the domain
// vocabulary (e.g. 'trawlingArea' to 'fishing'), exactly the first error
// category of the qualitative analysis. Structural errors (wrong fluent
// kind, undefined conditions, operator confusion) are deliberately left in
// place: the paper's corrected event descriptions GPT-4o▲, o1■ and Llama-3■
// retain them, which is why their similarity increase in Figure 2b is
// small.
package correct

import (
	"fmt"
	"sort"
	"strings"

	"rtecgen/internal/analysis"
	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// Change records one applied correction. Code is the analyzer diagnostic
// that flagged the name (R002 undefined-reference or R010 unknown-name).
type Change struct {
	From, To string
	Reason   string
	Code     string
}

func (c Change) String() string {
	return fmt.Sprintf("%s -> %s (%s)", c.From, c.To, c.Reason)
}

// vocabulary is the corrector's knowledge of valid names, derived from the
// domain documentation (the same material prompts E and T taught the model).
type vocabulary struct {
	predicates map[string]bool // "name/arity"
	predNames  map[string]bool // name only
	constants  map[string]bool
	aliases    map[string]string // wrong spelling -> canonical
}

func buildVocabulary(d *prompt.Domain) *vocabulary {
	v := &vocabulary{
		predicates: map[string]bool{},
		predNames:  map[string]bool{},
		constants:  map[string]bool{},
		aliases:    map[string]string{},
	}
	addPred := func(pattern string) {
		t, err := parser.ParseTerm(pattern)
		if err != nil || !t.IsCallable() {
			return
		}
		v.predicates[t.Indicator()] = true
		v.predNames[t.Functor] = true
	}
	for _, e := range d.Events {
		addPred(e.Pattern)
	}
	for _, b := range d.Background {
		addPred(b.Pattern)
	}
	v.predicates["thresholds/2"] = true
	v.predNames["thresholds"] = true
	for _, t := range d.Thresholds {
		v.constants[t.Name] = true
	}
	for _, val := range d.Values {
		v.constants[val] = true
	}
	// Area and vessel type constants documented in the background prompts.
	for _, c := range []string{"fishing", "anchorage", "nearCoast", "nearPorts",
		"fishingVessel", "cargo", "tanker", "tug", "pilotVessel", "sarVessel", "passenger"} {
		v.constants[c] = true
	}
	for canonical, alts := range d.Aliases {
		for _, a := range alts {
			v.aliases[a] = canonical
		}
	}
	return v
}

// rtecKeywords never need correction.
var rtecKeywords = map[string]bool{
	"initiatedAt": true, "terminatedAt": true, "holdsAt": true, "holdsFor": true,
	"happensAt": true, "union_all": true, "intersect_all": true,
	"relative_complement_all": true, "not": true, "=": true,
	"<": true, ">": true, ">=": true, "=<": true, "=:=": true, "=\\=": true,
	"\\=": true, "+": true, "-": true, "*": true, "/": true,
	"absAngleDiff": true, "abs": true, "oneIsTug": true, "oneIsPilot": true,
}

// Corrected is the outcome: the corrected per-activity results and the
// change log. Before is the analyzer report that drove the corrections;
// the corrected Gen carries its own post-correction report.
type Corrected struct {
	Gen     *prompt.GeneratedED
	Changes []Change
	Before  *analysis.Report
}

// Apply corrects a generated event description, driven by the static
// analyzer of internal/analysis: every name the analyzer flags as an
// undefined reference (R002) or as outside the domain vocabulary (R010) is
// renamed to the canonical vocabulary name when a confident mapping exists
// (a documented alias, or an edit distance of at most 2). Names the
// analyzer does not flag — RTEC syntax, vocabulary names, fluents the
// description defines itself — are never candidates, so structural errors
// such as conditions over undefined activities with no plausible
// vocabulary target survive, as in the paper. The generated ED is not
// mutated; a corrected copy is returned together with the change log.
func Apply(gen *prompt.GeneratedED, domain *prompt.Domain) *Corrected {
	return ApplyWith(nil, gen, domain)
}

// ApplyWith is Apply with observability: a "pipeline.correct" span, a
// per-model stage timer, and counters for corrections applied (total and
// by driving diagnostic code) on tel. A nil tel costs only nil checks.
func ApplyWith(tel *telemetry.Telemetry, gen *prompt.GeneratedED, domain *prompt.Domain) *Corrected {
	sp := tel.Span("pipeline.correct", telemetry.String("model", gen.Label()))
	defer sp.End()
	stop := tel.Time("pipeline.micros.correct." + gen.Label())
	defer stop()
	out := apply(gen, domain)
	sp.SetAttrs(telemetry.Int("changes", int64(len(out.Changes))))
	tel.Counter("correct.changes.applied").Add(int64(len(out.Changes)))
	for _, ch := range out.Changes {
		tel.Counter("correct.changes." + ch.Code).Inc()
	}
	if len(out.Changes) > 0 {
		tel.Logger().Debug("syntactic corrections applied",
			"component", "pipeline", "model", gen.Label(), "changes", len(out.Changes))
	}
	return out
}

func apply(gen *prompt.GeneratedED, domain *prompt.Domain) *Corrected {
	v := buildVocabulary(domain)

	// The analyzer supplies the rename candidates. Reuse the report the
	// pipeline attached when it analyzed the same clause set; hand-built
	// GeneratedEDs are linted here.
	report := gen.Report
	if report == nil {
		report = gen.Lint(domain)
	}
	candidates := map[string]string{} // name -> diagnostic code
	for _, d := range report.Diagnostics {
		if d.Symbol == "" {
			continue
		}
		switch d.Code {
		case "R002", "R010":
			if _, ok := candidates[d.Symbol]; !ok {
				candidates[d.Symbol] = d.Code
			}
		}
	}

	// Record how each candidate occurs (compound or plain constant), so the
	// edit-distance search looks in the matching name pool.
	type occurrence struct {
		arity    int
		compound bool
	}
	occ := map[string]occurrence{}
	for _, r := range gen.Results {
		for _, c := range r.Clauses {
			for _, t := range append([]*lang.Term{c.Head}, literalAtoms(c.Body)...) {
				t.Walk(func(n *lang.Term) bool {
					if _, ok := candidates[n.Functor]; !ok {
						return true
					}
					switch n.Kind {
					case lang.Compound:
						occ[n.Functor] = occurrence{arity: len(n.Args), compound: true}
					case lang.Atom:
						if _, ok := occ[n.Functor]; !ok {
							occ[n.Functor] = occurrence{}
						}
					}
					return true
				})
			}
		}
	}

	// Decide the renames.
	renames := map[string]Change{}
	names := make([]string, 0, len(candidates))
	for n := range candidates {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		o := occ[name]
		if rtecKeywords[name] {
			continue
		}
		if canonical, ok := v.aliases[name]; ok {
			renames[name] = Change{From: name, To: canonical, Reason: "documented alias", Code: candidates[name]}
			continue
		}
		if to, ok := closestName(name, v, o.compound); ok {
			renames[name] = Change{From: name, To: to, Reason: "edit distance", Code: candidates[name]}
		}
	}

	out := &Corrected{Gen: &prompt.GeneratedED{ModelName: gen.ModelName, Scheme: gen.Scheme}, Before: report}
	for _, r := range gen.Results {
		nr := prompt.ActivityResult{Request: r.Request, Raw: r.Raw,
			Errors: append([]string(nil), r.Errors...), Degraded: r.Degraded, Err: r.Err}
		for _, c := range r.Clauses {
			cc := c.Clone()
			for from, ch := range renames {
				cc = renameClause(cc, from, ch.To)
			}
			nr.Clauses = append(nr.Clauses, cc)
		}
		out.Gen.Results = append(out.Gen.Results, nr)
	}
	out.Gen.Lint(domain)
	for _, name := range names {
		if ch, ok := renames[name]; ok {
			out.Changes = append(out.Changes, ch)
		}
	}
	return out
}

func literalAtoms(body []lang.Literal) []*lang.Term {
	out := make([]*lang.Term, len(body))
	for i, l := range body {
		out[i] = l.Atom
	}
	return out
}

// closestName finds a vocabulary name within edit distance 2 (and at least
// half the name's length in common), preferring predicates for compound
// occurrences and constants otherwise.
func closestName(name string, v *vocabulary, compound bool) (string, bool) {
	pool := v.constants
	if compound {
		pool = v.predNames
	}
	best, bestDist := "", 3
	cands := make([]string, 0, len(pool))
	for c := range pool {
		cands = append(cands, c)
	}
	sort.Strings(cands)
	for _, c := range cands {
		d := editDistance(name, c)
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	if best == "" || bestDist > 2 || bestDist*2 >= len(name) {
		return "", false
	}
	return best, true
}

// editDistance is the Levenshtein distance.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func renameClause(c *lang.Clause, from, to string) *lang.Clause {
	n := &lang.Clause{Head: renameTerm(c.Head, from, to), Pos: c.Pos}
	for _, l := range c.Body {
		n.Body = append(n.Body, lang.Literal{Neg: l.Neg, Atom: renameTerm(l.Atom, from, to)})
	}
	return n
}

func renameTerm(t *lang.Term, from, to string) *lang.Term {
	switch t.Kind {
	case lang.Atom:
		if t.Functor == from {
			n := *t
			n.Functor = to
			return &n
		}
		return t
	case lang.Compound, lang.List:
		args := make([]*lang.Term, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = renameTerm(a, from, to)
			if args[i] != a {
				changed = true
			}
		}
		name := t.Functor
		if t.Kind == lang.Compound && name == from {
			name, changed = to, true
		}
		if !changed {
			return t
		}
		n := *t
		n.Functor = name
		n.Args = args
		return &n
	default:
		return t
	}
}

// Summary renders the change log.
func (c *Corrected) Summary() string {
	if len(c.Changes) == 0 {
		return "no changes required"
	}
	parts := make([]string, len(c.Changes))
	for i, ch := range c.Changes {
		parts[i] = ch.String()
	}
	return strings.Join(parts, "; ")
}
