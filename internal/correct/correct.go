// Package correct implements the manual error-correction step of the
// paper's second experiment (Section 5.2): the "minimum required changes"
// that make an LLM-generated event description compatible with RTEC —
// renaming wrongly-spelled constants and predicates back to the domain
// vocabulary (e.g. 'trawlingArea' to 'fishing'), exactly the first error
// category of the qualitative analysis. Structural errors (wrong fluent
// kind, undefined conditions, operator confusion) are deliberately left in
// place: the paper's corrected event descriptions GPT-4o▲, o1■ and Llama-3■
// retain them, which is why their similarity increase in Figure 2b is
// small.
//
// Both correctors run on top of the analyzer's suggested-fix layer: the
// generated clauses are rendered into one source text with per-activity
// marker comments, linted with a rename oracle installed, and the resulting
// text edits are applied and re-parsed. Apply restricts itself to the
// rename fixes of R002/R010 (the paper's manual step); AutoFix drives every
// suggested fix to a fixpoint.
package correct

import (
	"fmt"
	"sort"
	"strings"

	"rtecgen/internal/analysis"
	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
	"rtecgen/internal/prompt"
	"rtecgen/internal/telemetry"
)

// Change records one applied correction. Code is the analyzer diagnostic
// that flagged the name (R002 undefined-reference or R010 unknown-name).
type Change struct {
	From, To string
	Reason   string
	Code     string
}

func (c Change) String() string {
	return fmt.Sprintf("%s -> %s (%s)", c.From, c.To, c.Reason)
}

// vocabulary is the corrector's knowledge of valid names, derived from the
// domain documentation (the same material prompts E and T taught the model).
type vocabulary struct {
	predicates map[string]bool // "name/arity"
	predNames  map[string]bool // name only
	constants  map[string]bool
	aliases    map[string]string // wrong spelling -> canonical
}

func buildVocabulary(d *prompt.Domain) *vocabulary {
	v := &vocabulary{
		predicates: map[string]bool{},
		predNames:  map[string]bool{},
		constants:  map[string]bool{},
		aliases:    map[string]string{},
	}
	addPred := func(pattern string) {
		t, err := parser.ParseTerm(pattern)
		if err != nil || !t.IsCallable() {
			return
		}
		v.predicates[t.Indicator()] = true
		v.predNames[t.Functor] = true
	}
	for _, e := range d.Events {
		addPred(e.Pattern)
	}
	for _, b := range d.Background {
		addPred(b.Pattern)
	}
	v.predicates["thresholds/2"] = true
	v.predNames["thresholds"] = true
	for _, t := range d.Thresholds {
		v.constants[t.Name] = true
	}
	for _, val := range d.Values {
		v.constants[val] = true
	}
	for _, c := range d.Constants {
		v.constants[c] = true
	}
	// Area and vessel type constants documented in the background prompts.
	for _, c := range []string{"fishing", "anchorage", "nearCoast", "nearPorts",
		"fishingVessel", "cargo", "tanker", "tug", "pilotVessel", "sarVessel", "passenger"} {
		v.constants[c] = true
	}
	for canonical, alts := range d.Aliases {
		for _, a := range alts {
			v.aliases[a] = canonical
		}
	}
	return v
}

// rtecKeywords never need correction.
var rtecKeywords = map[string]bool{
	"initiatedAt": true, "terminatedAt": true, "holdsAt": true, "holdsFor": true,
	"happensAt": true, "union_all": true, "intersect_all": true,
	"relative_complement_all": true, "not": true, "=": true,
	"<": true, ">": true, ">=": true, "=<": true, "=:=": true, "=\\=": true,
	"\\=": true, "+": true, "-": true, "*": true, "/": true,
	"absAngleDiff": true, "abs": true, "oneIsTug": true, "oneIsPilot": true,
}

// Renamer builds the analyzer's rename oracle from the domain vocabulary:
// documented aliases map to their canonical name, and otherwise the closest
// vocabulary name within edit distance 2 wins. It is handed to
// analysis.Options.Rename so that R002/R010 diagnostics carry rename fixes.
func Renamer(d *prompt.Domain) func(name string) (string, string, bool) {
	return renamer(buildVocabulary(d), nil)
}

// occurrence records how a name occurs in the generated clauses, so the
// edit-distance search looks in the matching name pool.
type occurrence struct {
	compound bool
}

func renamer(v *vocabulary, occ map[string]occurrence) func(string) (string, string, bool) {
	return func(name string) (string, string, bool) {
		if rtecKeywords[name] {
			return "", "", false
		}
		if canonical, ok := v.aliases[name]; ok {
			return canonical, "documented alias", true
		}
		compound, known := false, false
		if occ != nil {
			o, ok := occ[name]
			compound, known = o.compound, ok
		}
		if known {
			if to, ok := closestName(name, v, compound); ok {
				return to, "edit distance", true
			}
			return "", "", false
		}
		// No occurrence information (e.g. the rteclint CLI): try both pools,
		// preferring the closer match and predicates on a tie.
		toP, okP := closestName(name, v, true)
		toC, okC := closestName(name, v, false)
		switch {
		case okP && okC:
			if editDistance(name, toC) < editDistance(name, toP) {
				return toC, "edit distance", true
			}
			return toP, "edit distance", true
		case okP:
			return toP, "edit distance", true
		case okC:
			return toC, "edit distance", true
		}
		return "", "", false
	}
}

func occurrences(gen *prompt.GeneratedED) map[string]occurrence {
	occ := map[string]occurrence{}
	for _, r := range gen.Results {
		for _, c := range r.Clauses {
			terms := append([]*lang.Term{c.Head}, literalAtoms(c.Body)...)
			for _, t := range terms {
				t.Walk(func(n *lang.Term) bool {
					switch n.Kind {
					case lang.Compound:
						occ[n.Functor] = occurrence{compound: true}
					case lang.Atom:
						if _, ok := occ[n.Functor]; !ok {
							occ[n.Functor] = occurrence{}
						}
					}
					return true
				})
			}
		}
	}
	return occ
}

// activityMarker prefixes the comment line that separates activities in the
// combined source rendered by Combined. The key follows, then " ---".
const activityMarker = "% --- activity:"

// Combined renders the parsed per-activity clauses as one source text, each
// activity introduced by a marker comment, so analyzer positions — and the
// diagnostics and fixes built from them — can be attributed back to the
// activity that produced each clause.
func Combined(gen *prompt.GeneratedED) string {
	var b strings.Builder
	for _, r := range gen.Results {
		fmt.Fprintf(&b, "%s%s ---\n", activityMarker, r.Request.Key)
		for _, c := range r.Clauses {
			b.WriteString(c.String())
			b.WriteString("\n\n")
		}
	}
	return b.String()
}

// markerRanges scans a combined source for activity markers and returns the
// 1-based first and last line of each activity's section, in source order.
type markerRange struct {
	key         string
	first, last int // 1-based line range, inclusive
}

func markerRanges(src string) []markerRange {
	var out []markerRange
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), activityMarker)
		if !ok {
			continue
		}
		key := strings.TrimSpace(strings.TrimSuffix(rest, "---"))
		if len(out) > 0 {
			out[len(out)-1].last = i // line i is 1-based i+1; previous section ends before it
		}
		out = append(out, markerRange{key: key, first: i + 1, last: len(lines)})
	}
	return out
}

func activityAt(ranges []markerRange, line int) string {
	for _, r := range ranges {
		if line >= r.first && line <= r.last {
			return r.key
		}
	}
	return ""
}

// resplit parses a fixed combined source and rebuilds the per-activity
// results of gen from it, assigning clauses to activities by the marker
// sections their positions fall in. Raw responses, parse errors and
// degradation flags are carried over unchanged.
func resplit(gen *prompt.GeneratedED, src string) (*prompt.GeneratedED, error) {
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		return nil, err
	}
	ranges := markerRanges(src)
	byKey := map[string][]*lang.Clause{}
	for _, c := range ed.Clauses {
		byKey[activityAt(ranges, c.Pos.Line)] = append(byKey[activityAt(ranges, c.Pos.Line)], c)
	}
	out := &prompt.GeneratedED{ModelName: gen.ModelName, Scheme: gen.Scheme}
	for _, r := range gen.Results {
		nr := prompt.ActivityResult{Request: r.Request, Raw: r.Raw,
			Errors: append([]string(nil), r.Errors...), Degraded: r.Degraded, Err: r.Err}
		nr.Clauses = byKey[r.Request.Key]
		out.Results = append(out.Results, nr)
	}
	return out, nil
}

// lintOptions are the analyzer options both correctors use on the combined
// source: domain vocabulary, the requested activities as roots, and the
// rename oracle.
func lintOptions(gen *prompt.GeneratedED, domain *prompt.Domain, rename func(string) (string, string, bool)) analysis.Options {
	roots := map[string]bool{}
	for _, r := range gen.Results {
		roots[r.Request.Name] = true
	}
	return analysis.Options{
		Vocabulary: domain.KnownNames(),
		Roots:      roots,
		Rename:     rename,
	}
}

// Corrected is the outcome: the corrected per-activity results and the
// change log. Before is the analyzer report that drove the corrections;
// the corrected Gen carries its own post-correction report.
type Corrected struct {
	Gen     *prompt.GeneratedED
	Changes []Change
	Before  *analysis.Report
}

// Apply corrects a generated event description, driven by the static
// analyzer of internal/analysis: every name the analyzer flags as an
// undefined reference (R002) or as outside the domain vocabulary (R010) is
// renamed to the canonical vocabulary name when a confident mapping exists
// (a documented alias, or an edit distance of at most 2). The renames are
// performed through the analyzer's suggested-fix layer: the clauses are
// rendered to source, the rename fixes attached to R002/R010 diagnostics
// are applied as text edits, and the result is re-parsed. Names the
// analyzer does not flag — RTEC syntax, vocabulary names, fluents the
// description defines itself — are never candidates, so structural errors
// such as conditions over undefined activities with no plausible
// vocabulary target survive, as in the paper. The generated ED is not
// mutated; a corrected copy is returned together with the change log.
func Apply(gen *prompt.GeneratedED, domain *prompt.Domain) *Corrected {
	return ApplyWith(nil, gen, domain)
}

// ApplyWith is Apply with observability: a "pipeline.correct" span, a
// per-model stage timer, and counters for corrections applied (total and
// by driving diagnostic code) on tel. A nil tel costs only nil checks.
func ApplyWith(tel *telemetry.Telemetry, gen *prompt.GeneratedED, domain *prompt.Domain) *Corrected {
	sp := tel.Span("pipeline.correct", telemetry.String("model", gen.Label()))
	defer sp.End()
	stop := tel.Time("pipeline.micros.correct." + gen.Label())
	defer stop()
	out := apply(gen, domain)
	sp.SetAttrs(telemetry.Int("changes", int64(len(out.Changes))))
	tel.Counter("correct.changes.applied").Add(int64(len(out.Changes)))
	for _, ch := range out.Changes {
		tel.Counter("correct.changes." + ch.Code).Inc()
	}
	if len(out.Changes) > 0 {
		tel.Logger().Debug("syntactic corrections applied",
			"component", "pipeline", "model", gen.Label(), "changes", len(out.Changes))
	}
	return out
}

func apply(gen *prompt.GeneratedED, domain *prompt.Domain) *Corrected {
	v := buildVocabulary(domain)
	rename := renamer(v, occurrences(gen))
	src := Combined(gen)
	report := analysis.AnalyzeSource(src, lintOptions(gen, domain, rename))

	// Only the rename fixes of R002/R010 are the paper's "minimum required
	// changes"; every other suggested fix is AutoFix's business.
	renames := map[string]Change{}
	var fixes []analysis.SuggestedFix
	for _, d := range report.Diagnostics {
		if (d.Code != "R002" && d.Code != "R010") || d.Symbol == "" || len(d.SuggestedFixes) == 0 {
			continue
		}
		if _, ok := renames[d.Symbol]; ok {
			continue
		}
		to, reason, ok := rename(d.Symbol)
		if !ok {
			continue
		}
		renames[d.Symbol] = Change{From: d.Symbol, To: to, Reason: reason, Code: d.Code}
		fixes = append(fixes, d.SuggestedFixes...)
	}
	fixed, _ := analysis.ApplyFixes(src, fixes)

	ngen, err := resplit(gen, fixed)
	if err != nil {
		// A rename can never break parsing (edits replace names in place),
		// but fail safe: keep the input unchanged.
		ngen, renames = resplit0(gen), nil
	}
	out := &Corrected{Gen: ngen, Before: report}
	out.Gen.Lint(domain)
	names := make([]string, 0, len(renames))
	for n := range renames {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Changes = append(out.Changes, renames[n])
	}
	return out
}

// resplit0 deep-copies gen without changes, the failure fallback of apply.
func resplit0(gen *prompt.GeneratedED) *prompt.GeneratedED {
	out := &prompt.GeneratedED{ModelName: gen.ModelName, Scheme: gen.Scheme}
	for _, r := range gen.Results {
		nr := prompt.ActivityResult{Request: r.Request, Raw: r.Raw,
			Errors: append([]string(nil), r.Errors...), Degraded: r.Degraded, Err: r.Err}
		for _, c := range r.Clauses {
			nr.Clauses = append(nr.Clauses, c.Clone())
		}
		out.Results = append(out.Results, nr)
	}
	return out
}

// Fixed is the outcome of AutoFix: the repaired per-activity results, the
// fixpoint trace, and the diagnostics that no fix could discharge,
// attributed to the activity whose section they fall in (the empty key
// collects diagnostics without a position).
type Fixed struct {
	Gen       *prompt.GeneratedED
	Source    string
	Rounds    []analysis.FixRound
	Report    *analysis.Report
	Remaining map[string][]analysis.Diagnostic
}

// Fixpoint reports whether autofixing stopped with no fix left to apply.
func (f *Fixed) Fixpoint() bool { return len(f.Report.Fixes()) == 0 }

// AutoFix drives every suggested fix — renames, duplicate-clause and
// redundant-condition deletions, contradictory initiations, vacuous
// thresholds — to a fixpoint over the combined source of gen, within
// analysis.DefaultFixBudget rounds. This is the machine half of the
// critique–refine loop: what remains in Report is what only the model can
// repair, and is rendered into the critique turn.
func AutoFix(gen *prompt.GeneratedED, domain *prompt.Domain) *Fixed {
	v := buildVocabulary(domain)
	rename := renamer(v, occurrences(gen))
	opts := lintOptions(gen, domain, rename)
	opts.Sorts = domain.ArgSorts()
	res := analysis.Fix(Combined(gen), opts, analysis.DefaultFixBudget)

	out := &Fixed{Source: res.Source, Rounds: res.Rounds, Report: res.Report,
		Remaining: map[string][]analysis.Diagnostic{}}
	ranges := markerRanges(res.Source)
	for _, d := range res.Report.Diagnostics {
		key := ""
		if d.Pos.IsValid() {
			key = activityAt(ranges, d.Pos.Line)
		}
		out.Remaining[key] = append(out.Remaining[key], d)
	}
	ngen, err := resplit(gen, res.Source)
	if err != nil {
		ngen = resplit0(gen)
	}
	out.Gen = ngen
	out.Gen.Lint(domain)
	return out
}

func literalAtoms(body []lang.Literal) []*lang.Term {
	out := make([]*lang.Term, len(body))
	for i, l := range body {
		out[i] = l.Atom
	}
	return out
}

// closestName finds a vocabulary name within edit distance 2 (and at least
// half the name's length in common), preferring predicates for compound
// occurrences and constants otherwise.
func closestName(name string, v *vocabulary, compound bool) (string, bool) {
	pool := v.constants
	if compound {
		pool = v.predNames
	}
	best, bestDist := "", 3
	cands := make([]string, 0, len(pool))
	for c := range pool {
		cands = append(cands, c)
	}
	sort.Strings(cands)
	for _, c := range cands {
		d := editDistance(name, c)
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	if best == "" || bestDist > 2 || bestDist*2 >= len(name) {
		return "", false
	}
	return best, true
}

// editDistance is the Levenshtein distance.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Summary renders the change log.
func (c *Corrected) Summary() string {
	if len(c.Changes) == 0 {
		return "no changes required"
	}
	parts := make([]string, len(c.Changes))
	for i, ch := range c.Changes {
		parts[i] = ch.String()
	}
	return strings.Join(parts, "; ")
}
