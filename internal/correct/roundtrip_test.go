package correct

import (
	"testing"

	"rtecgen/internal/analysis"
	"rtecgen/internal/fleet"
	"rtecgen/internal/llm"
	"rtecgen/internal/maritime"
	"rtecgen/internal/prompt"
)

// roundTrip runs AutoFix over one generated event description and checks
// the autofix contract: fixpoint within the round budget, strictly
// decreasing diagnostic counts per round, and idempotence (a second
// AutoFix over the repaired ED applies nothing).
func roundTrip(t *testing.T, gen *prompt.GeneratedED, domain *prompt.Domain) {
	t.Helper()
	label := gen.Label()
	fx := AutoFix(gen, domain)
	if !fx.Fixpoint() {
		t.Errorf("%s: no fixpoint within %d rounds:\n%s", label, analysis.DefaultFixBudget, fx.Report.Text())
		return
	}
	if len(fx.Rounds) > analysis.DefaultFixBudget {
		t.Errorf("%s: %d rounds, budget %d", label, len(fx.Rounds), analysis.DefaultFixBudget)
	}
	for i, rd := range fx.Rounds {
		if rd.After >= rd.Before {
			t.Errorf("%s round %d: %d -> %d diagnostics (not strictly decreasing)",
				label, i+1, rd.Before, rd.After)
		}
	}
	again := AutoFix(fx.Gen, domain)
	if n := len(again.Rounds); n != 0 {
		t.Errorf("%s: AutoFix is not idempotent: %d further rounds", label, n)
	}
}

// TestAutoFixRoundTripMaritimeProfiles drives every simulated model error
// profile, under both prompting schemes, through the autofixer.
func TestAutoFixRoundTripMaritimeProfiles(t *testing.T) {
	domain := maritime.PromptDomain()
	curriculum := maritime.CurriculumRequests()
	for _, m := range llm.AllModels() {
		for _, scheme := range []prompt.Scheme{prompt.FewShot, prompt.ChainOfThought} {
			gen, err := prompt.RunPipeline(m, scheme, domain, curriculum)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, gen, domain)
		}
	}
}

// TestAutoFixRoundTripFleetProfiles repeats the round trip on the fleet
// domain: the same model profiles generate the fleet curriculum from
// fleet.Knowledge().
func TestAutoFixRoundTripFleetProfiles(t *testing.T) {
	domain := fleet.PromptDomain()
	curriculum := fleet.CurriculumRequests()
	know := fleet.Knowledge()
	for _, base := range llm.AllModels() {
		m, err := llm.NewWithKnowledge(base.Name(), know)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range []prompt.Scheme{prompt.FewShot, prompt.ChainOfThought} {
			gen, err := prompt.RunPipeline(m, scheme, domain, curriculum)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, gen, domain)
		}
	}
}
