package correct

import (
	"strings"
	"testing"

	"rtecgen/internal/maritime"
	"rtecgen/internal/parser"
	"rtecgen/internal/prompt"
)

// genFromSrc wraps rule text as a one-activity GeneratedED.
func genFromSrc(t *testing.T, key, src string) *prompt.GeneratedED {
	t.Helper()
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	return &prompt.GeneratedED{
		ModelName: "test",
		Results: []prompt.ActivityResult{{
			Request: prompt.ActivityRequest{Key: key, Name: key},
			Clauses: ed.Clauses,
		}},
	}
}

func TestApplyFixesDocumentedAlias(t *testing.T) {
	// The paper's own example: 'trawlingArea' must become 'fishing'.
	gen := genFromSrc(t, "tr", `
initiatedAt(trawlingMovement(Vl)=true, T) :-
    happensAt(change_in_heading(Vl), T),
    holdsAt(withinArea(Vl, trawlingArea)=true, T).
`)
	cor := Apply(gen, maritime.PromptDomain())
	out := cor.Gen.ED().String()
	if strings.Contains(out, "trawlingArea") {
		t.Fatalf("trawlingArea not corrected:\n%s", out)
	}
	if !strings.Contains(out, "fishing") {
		t.Fatalf("fishing not substituted:\n%s", out)
	}
	if len(cor.Changes) != 1 || cor.Changes[0].From != "trawlingArea" || cor.Changes[0].To != "fishing" {
		t.Fatalf("changes = %v", cor.Changes)
	}
	if !strings.Contains(cor.Summary(), "trawlingArea -> fishing") {
		t.Fatalf("summary = %q", cor.Summary())
	}
}

func TestApplyFixesEditDistanceTypo(t *testing.T) {
	gen := genFromSrc(t, "withinArea", `
initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersAreas(Vl, AreaID), T),
    areaTyp(AreaID, AreaType).
`)
	cor := Apply(gen, maritime.PromptDomain())
	out := cor.Gen.ED().String()
	if !strings.Contains(out, "entersArea(") || !strings.Contains(out, "areaType(") {
		t.Fatalf("typos not corrected:\n%s\nchanges: %v", out, cor.Changes)
	}
}

func TestApplyLeavesSelfDefinedFluentsAlone(t *testing.T) {
	// A fluent name the description defines itself is valid even if absent
	// from the domain vocabulary.
	gen := genFromSrc(t, "x", `
initiatedAt(myCustomActivity(Vl)=true, T) :-
    happensAt(stop_start(Vl), T).

holdsFor(other(Vl)=true, I) :-
    holdsFor(myCustomActivity(Vl)=true, I1),
    union_all([I1], I).
`)
	cor := Apply(gen, maritime.PromptDomain())
	if len(cor.Changes) != 0 {
		t.Fatalf("unexpected changes: %v", cor.Changes)
	}
	if cor.Summary() != "no changes required" {
		t.Fatalf("summary = %q", cor.Summary())
	}
}

func TestApplyLeavesUndefinedHallucinationsAlone(t *testing.T) {
	// Category-3 errors (undefined activities) are not syntactic and must
	// survive correction, as in the paper.
	gen := genFromSrc(t, "tr", `
holdsFor(trawling(Vl)=true, I) :-
    holdsFor(fishingGearDeployed(Vl)=true, I1),
    intersect_all([I1], I).
`)
	cor := Apply(gen, maritime.PromptDomain())
	if !strings.Contains(cor.Gen.ED().String(), "fishingGearDeployed") {
		t.Fatal("structural error was 'corrected' away")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	gen := genFromSrc(t, "tr", `
initiatedAt(f(Vl)=true, T) :-
    happensAt(gapStart(Vl), T).
`)
	before := gen.ED().String()
	Apply(gen, maritime.PromptDomain())
	if gen.ED().String() != before {
		t.Fatal("Apply mutated its input")
	}
}

func TestApplyFixesThresholdNames(t *testing.T) {
	gen := genFromSrc(t, "h", `
initiatedAt(highSpeedNearCoast(Vl)=true, T) :-
    happensAt(velocity(Vl, Speed, C, H), T),
    threshold(nearCoastSpeedMax, Max),
    Speed > Max.
`)
	cor := Apply(gen, maritime.PromptDomain())
	out := cor.Gen.ED().String()
	if !strings.Contains(out, "thresholds(hcNearCoastMax, Max)") {
		t.Fatalf("threshold not corrected:\n%s\nchanges: %v", out, cor.Changes)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "ab", 1},
		{"kitten", "sitting", 3},
		{"", "abc", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRoundTripOnRealPipeline(t *testing.T) {
	// The corrected output of every model must still parse and must not
	// contain any documented alias.
	domain := maritime.PromptDomain()
	gen := genFromSrc(t, "l", `
holdsFor(loitering(Vl)=true, I) :-
    holdsFor(lowSpeed(Vl)=true, Il),
    holdsFor(stopped(Vl)=farFromPort, Is),
    union_all([Il, Is], I).
`)
	cor := Apply(gen, domain)
	out := cor.Gen.ED().String()
	if strings.Contains(out, "farFromPort,") || strings.Contains(out, "farFromPort)") {
		t.Fatalf("value alias not corrected:\n%s", out)
	}
	if _, err := parser.ParseEventDescription(out); err != nil {
		t.Fatalf("corrected ED unparseable: %v", err)
	}
}
