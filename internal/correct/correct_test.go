package correct

import (
	"strings"
	"testing"

	"rtecgen/internal/maritime"
	"rtecgen/internal/parser"
	"rtecgen/internal/prompt"
)

// genFromSrc wraps rule text as a one-activity GeneratedED.
func genFromSrc(t *testing.T, key, src string) *prompt.GeneratedED {
	t.Helper()
	ed, err := parser.ParseEventDescription(src)
	if err != nil {
		t.Fatal(err)
	}
	return &prompt.GeneratedED{
		ModelName: "test",
		Results: []prompt.ActivityResult{{
			Request: prompt.ActivityRequest{Key: key, Name: key},
			Clauses: ed.Clauses,
		}},
	}
}

func TestApplyFixesDocumentedAlias(t *testing.T) {
	// The paper's own example: 'trawlingArea' must become 'fishing'.
	gen := genFromSrc(t, "tr", `
initiatedAt(trawlingMovement(Vl)=true, T) :-
    happensAt(change_in_heading(Vl), T),
    holdsAt(withinArea(Vl, trawlingArea)=true, T).
`)
	cor := Apply(gen, maritime.PromptDomain())
	out := cor.Gen.ED().String()
	if strings.Contains(out, "trawlingArea") {
		t.Fatalf("trawlingArea not corrected:\n%s", out)
	}
	if !strings.Contains(out, "fishing") {
		t.Fatalf("fishing not substituted:\n%s", out)
	}
	if len(cor.Changes) != 1 || cor.Changes[0].From != "trawlingArea" || cor.Changes[0].To != "fishing" {
		t.Fatalf("changes = %v", cor.Changes)
	}
	if !strings.Contains(cor.Summary(), "trawlingArea -> fishing") {
		t.Fatalf("summary = %q", cor.Summary())
	}
}

func TestApplyFixesEditDistanceTypo(t *testing.T) {
	gen := genFromSrc(t, "withinArea", `
initiatedAt(withinArea(Vl, AreaType)=true, T) :-
    happensAt(entersAreas(Vl, AreaID), T),
    areaTyp(AreaID, AreaType).
`)
	cor := Apply(gen, maritime.PromptDomain())
	out := cor.Gen.ED().String()
	if !strings.Contains(out, "entersArea(") || !strings.Contains(out, "areaType(") {
		t.Fatalf("typos not corrected:\n%s\nchanges: %v", out, cor.Changes)
	}
}

func TestApplyLeavesSelfDefinedFluentsAlone(t *testing.T) {
	// A fluent name the description defines itself is valid even if absent
	// from the domain vocabulary.
	gen := genFromSrc(t, "x", `
initiatedAt(myCustomActivity(Vl)=true, T) :-
    happensAt(stop_start(Vl), T).

holdsFor(other(Vl)=true, I) :-
    holdsFor(myCustomActivity(Vl)=true, I1),
    union_all([I1], I).
`)
	cor := Apply(gen, maritime.PromptDomain())
	if len(cor.Changes) != 0 {
		t.Fatalf("unexpected changes: %v", cor.Changes)
	}
	if cor.Summary() != "no changes required" {
		t.Fatalf("summary = %q", cor.Summary())
	}
}

func TestApplyLeavesUndefinedHallucinationsAlone(t *testing.T) {
	// Category-3 errors (undefined activities) are not syntactic and must
	// survive correction, as in the paper.
	gen := genFromSrc(t, "tr", `
holdsFor(trawling(Vl)=true, I) :-
    holdsFor(fishingGearDeployed(Vl)=true, I1),
    intersect_all([I1], I).
`)
	cor := Apply(gen, maritime.PromptDomain())
	if !strings.Contains(cor.Gen.ED().String(), "fishingGearDeployed") {
		t.Fatal("structural error was 'corrected' away")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	gen := genFromSrc(t, "tr", `
initiatedAt(f(Vl)=true, T) :-
    happensAt(gapStart(Vl), T).
`)
	before := gen.ED().String()
	Apply(gen, maritime.PromptDomain())
	if gen.ED().String() != before {
		t.Fatal("Apply mutated its input")
	}
}

func TestApplyFixesThresholdNames(t *testing.T) {
	gen := genFromSrc(t, "h", `
initiatedAt(highSpeedNearCoast(Vl)=true, T) :-
    happensAt(velocity(Vl, Speed, C, H), T),
    threshold(nearCoastSpeedMax, Max),
    Speed > Max.
`)
	cor := Apply(gen, maritime.PromptDomain())
	out := cor.Gen.ED().String()
	if !strings.Contains(out, "thresholds(hcNearCoastMax, Max)") {
		t.Fatalf("threshold not corrected:\n%s\nchanges: %v", out, cor.Changes)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "ab", 1},
		{"kitten", "sitting", 3},
		{"", "abc", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRoundTripOnRealPipeline(t *testing.T) {
	// The corrected output of every model must still parse and must not
	// contain any documented alias.
	domain := maritime.PromptDomain()
	gen := genFromSrc(t, "l", `
holdsFor(loitering(Vl)=true, I) :-
    holdsFor(lowSpeed(Vl)=true, Il),
    holdsFor(stopped(Vl)=farFromPort, Is),
    union_all([Il, Is], I).
`)
	cor := Apply(gen, domain)
	out := cor.Gen.ED().String()
	if strings.Contains(out, "farFromPort,") || strings.Contains(out, "farFromPort)") {
		t.Fatalf("value alias not corrected:\n%s", out)
	}
	if _, err := parser.ParseEventDescription(out); err != nil {
		t.Fatalf("corrected ED unparseable: %v", err)
	}
}

func TestCombinedAndResplit(t *testing.T) {
	gen := &prompt.GeneratedED{
		ModelName: "test",
		Results: []prompt.ActivityResult{
			{Request: prompt.ActivityRequest{Key: "a", Name: "first"}},
			{Request: prompt.ActivityRequest{Key: "b", Name: "second"}},
		},
	}
	for i, src := range []string{
		"initiatedAt(first(V)=true, T) :-\n    happensAt(gap_start(V), T).\n",
		"initiatedAt(second(V)=true, T) :-\n    happensAt(stop_start(V), T).\n",
	} {
		ed, err := parser.ParseEventDescription(src)
		if err != nil {
			t.Fatal(err)
		}
		gen.Results[i].Clauses = ed.Clauses
	}
	src := Combined(gen)
	if strings.Count(src, activityMarker) != 2 {
		t.Fatalf("want 2 markers:\n%s", src)
	}
	back, err := resplit(gen, src)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range back.Results {
		if len(r.Clauses) != 1 {
			t.Fatalf("activity %d: %d clauses", i, len(r.Clauses))
		}
	}
	if back.Results[0].Clauses[0].Head.String() != gen.Results[0].Clauses[0].Head.String() {
		t.Fatal("clauses attributed to the wrong activity")
	}
}

func TestAutoFixReachesFixpoint(t *testing.T) {
	// A typo'd event name, a duplicated condition and a vacuous comparison:
	// all three carry fixes, so AutoFix must discharge them, while the
	// undefined 'fishingGearDeployed' condition has no fix and must remain,
	// attributed to its activity.
	gen := genFromSrc(t, "tr", `
initiatedAt(trawling(Vl)=true, T) :-
    happensAt(entersAreas(Vl, AreaID), T),
    holdsAt(withinArea(Vl, fishing)=true, T),
    holdsAt(withinArea(Vl, fishing)=true, T),
    holdsAt(fishingGearDeployed(Vl)=true, T),
    5 > 3.
`)
	fx := AutoFix(gen, maritime.PromptDomain())
	if !fx.Fixpoint() {
		t.Fatalf("no fixpoint:\n%s", fx.Report.Text())
	}
	if len(fx.Rounds) == 0 || len(fx.Rounds) > 3 {
		t.Fatalf("got %d rounds", len(fx.Rounds))
	}
	for i, rd := range fx.Rounds {
		if rd.After >= rd.Before {
			t.Fatalf("round %d not strictly decreasing: %+v", i, rd)
		}
	}
	out := fx.Gen.ED().String()
	if strings.Contains(out, "entersAreas") || strings.Contains(out, "5 > 3") {
		t.Fatalf("fixable errors survive:\n%s", out)
	}
	if strings.Count(out, "withinArea(Vl, fishing)") != 1 {
		t.Fatalf("duplicate condition survives:\n%s", out)
	}
	if !strings.Contains(out, "fishingGearDeployed") {
		t.Fatal("structural error was autofixed away")
	}
	found := false
	for _, d := range fx.Remaining["tr"] {
		if d.Symbol == "fishingGearDeployed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("remaining diagnostics not attributed to 'tr': %v", fx.Remaining)
	}
}

func TestRenamerOracle(t *testing.T) {
	rn := Renamer(maritime.PromptDomain())
	if to, reason, ok := rn("trawlingArea"); !ok || to != "fishing" || reason != "documented alias" {
		t.Fatalf("trawlingArea -> %q (%q, %v)", to, reason, ok)
	}
	if to, _, ok := rn("entersAreas"); !ok || to != "entersArea" {
		t.Fatalf("entersAreas -> %q, %v", to, ok)
	}
	if _, _, ok := rn("initiatedAt"); ok {
		t.Fatal("RTEC keywords must never be renamed")
	}
	if _, _, ok := rn("completelyUnrelatedName"); ok {
		t.Fatal("distant names must not map onto the vocabulary")
	}
}
