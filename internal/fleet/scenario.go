package fleet

import (
	"fmt"
	"math/rand"

	"rtecgen/internal/lang"
	"rtecgen/internal/parser"
	"rtecgen/internal/stream"
)

// Vehicle describes one vehicle of the fleet.
type Vehicle struct {
	ID   string
	Type string
}

// ScenarioConfig parameterises the synthetic telematics scenario.
type ScenarioConfig struct {
	Vehicles int
	Seed     int64
}

// Scenario holds the fleet and its synthesised telematics event stream.
// Unlike the maritime scenario there is no geometry: telematics units
// report semantic events directly, so the generator scripts event timelines
// per vehicle.
type Scenario struct {
	Fleet  []Vehicle
	Events stream.Stream
	Zones  map[string]string // zone ID -> kind
}

// BuildScenario synthesises a working day of fleet telematics: every
// scripted vehicle leaves its depot, drives urban and highway legs
// (sometimes speeding), idles at delivery stops, and returns; extra
// vehicles are randomised over the same building blocks.
func BuildScenario(cfg ScenarioConfig) *Scenario {
	if cfg.Vehicles < 3 {
		cfg.Vehicles = 3
	}
	s := &Scenario{Zones: map[string]string{
		"depotA": "depot", "depotB": "depot",
		"cityCentre": "urban", "suburbs": "urban",
		"m1": "highway",
	}}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Scripted vehicles with known ground truth.
	s.addVehicle("truck01", TypeTruck, func(b *timeline) {
		b.at("depotA").ignitionOn().idle(600). // warms up at the depot: idling, but not off-depot
							drive(900, 60).
							zone("cityCentre").drive(600, 45).drive(300, 95). // urban speeding (limit 80)
							leaveZone("cityCentre").
							zone("m1").drive(1800, 75).leaveZone("m1").
							stopFor(900). // delivery stop, engine on: off-depot idling
							drive(600, 50).
							at("depotA").ignitionOff()
	})
	s.addVehicle("van02", TypeVan, func(b *timeline) {
		b.at("depotB").ignitionOn().drive(300, 40).
			zone("m1").drive(1200, 115). // highway speeding (limit 100), not urban
			leaveZone("m1").
			signalGap(2400). // coverage hole
			drive(900, 60).
			at("depotB").ignitionOff()
	})
	s.addVehicle("bus03", TypeBus, func(b *timeline) {
		b.at("depotA").ignitionOn().drive(300, 40).
			zone("cityCentre").
			repeatStops(6, 420, 120). // bus stops: many short idles in the city
			leaveZone("cityCentre").
			at("depotA").ignitionOff()
	})

	types := []string{TypeTruck, TypeVan, TypeBus}
	for i := 3; i < cfg.Vehicles; i++ {
		id := fmt.Sprintf("veh%03d", i)
		vtype := types[rng.Intn(len(types))]
		s.addVehicle(id, vtype, func(b *timeline) {
			b.at("depotA").ignitionOn().drive(int64(300+rng.Intn(600)), 40+rng.Float64()*30)
			if rng.Intn(2) == 0 {
				b.zone("cityCentre").drive(int64(300+rng.Intn(600)), 40+rng.Float64()*60).leaveZone("cityCentre")
			}
			if rng.Intn(3) == 0 {
				b.stopFor(int64(300 + rng.Intn(900)))
			}
			b.drive(int64(300+rng.Intn(600)), 50).at("depotA").ignitionOff()
		})
	}
	s.Events.Sort()
	return s
}

// BackgroundClauses builds the domain facts for the scenario.
func (s *Scenario) BackgroundClauses() []*lang.Clause {
	var out []*lang.Clause
	fact := func(format string, args ...any) {
		out = append(out, &lang.Clause{Head: parser.MustParseTerm(fmt.Sprintf(format, args...))})
	}
	for _, zone := range []string{"cityCentre", "depotA", "depotB", "m1", "suburbs"} {
		fact("zoneKind(%s, %s)", zone, s.Zones[zone])
	}
	for _, v := range s.Fleet {
		fact("vehicle(%s)", v.ID)
		fact("vehicleType(%s, %s)", v.ID, v.Type)
	}
	for _, ty := range []string{TypeTruck, TypeVan, TypeBus} {
		fact("typeSpeedLimit(%s, %g)", ty, TypeSpeedLimits[ty])
	}
	fact("thresholds(idlingMin, 60)")
	return out
}

// FullED composes the rules with the scenario background.
func (s *Scenario) FullED(rules *lang.EventDescription) *lang.EventDescription {
	out := rules.Clone()
	out.Clauses = append(out.Clauses, s.BackgroundClauses()...)
	return out
}

// timeline scripts one vehicle's event stream.
type timeline struct {
	s       *Scenario
	vehicle string
	t       int64
	zone0   string // current depot/zone used by at()
	inZone  map[string]bool
	moving  bool
}

func (s *Scenario) addVehicle(id, vtype string, script func(*timeline)) {
	s.Fleet = append(s.Fleet, Vehicle{ID: id, Type: vtype})
	b := &timeline{s: s, vehicle: id, inZone: map[string]bool{}}
	script(b)
}

func (b *timeline) emit(format string, args ...any) *timeline {
	atom := parser.MustParseTerm(fmt.Sprintf(format, args...))
	b.s.Events = append(b.s.Events, stream.Event{Time: b.t, Atom: atom})
	return b
}

// at teleports the vehicle into a named depot zone (used at route ends).
func (b *timeline) at(zone string) *timeline {
	if b.zone0 != "" && b.zone0 != zone && b.inZone[b.zone0] {
		b.leaveZone(b.zone0)
	}
	if !b.inZone[zone] {
		b.emit("entersZone(%s, %s)", b.vehicle, zone)
		b.inZone[zone] = true
	}
	b.zone0 = zone
	return b
}

func (b *timeline) zone(zone string) *timeline {
	if b.zone0 != "" && b.inZone[b.zone0] {
		b.leaveZone(b.zone0)
		b.zone0 = ""
	}
	b.emit("entersZone(%s, %s)", b.vehicle, zone)
	b.inZone[zone] = true
	return b
}

func (b *timeline) leaveZone(zone string) *timeline {
	if b.inZone[zone] {
		b.emit("leavesZone(%s, %s)", b.vehicle, zone)
		delete(b.inZone, zone)
	}
	return b
}

func (b *timeline) ignitionOn() *timeline {
	b.emit("ignition_on(%s)", b.vehicle)
	b.t += 5
	return b
}

func (b *timeline) ignitionOff() *timeline {
	if b.moving {
		b.emit("motionless_start(%s)", b.vehicle)
		b.moving = false
		b.t += 5
	}
	b.emit("ignition_off(%s)", b.vehicle)
	b.t += 5
	return b
}

// idle keeps the vehicle stationary with the engine running.
func (b *timeline) idle(dur int64) *timeline {
	if b.moving {
		b.emit("motionless_start(%s)", b.vehicle)
		b.moving = false
	}
	b.emit("speedSignal(%s, 0.0)", b.vehicle)
	b.t += dur
	return b
}

// drive moves at the given speed for the duration, emitting periodic speed
// signals.
func (b *timeline) drive(dur int64, speed float64) *timeline {
	if !b.moving {
		b.emit("motionless_end(%s)", b.vehicle)
		b.moving = true
	}
	const cadence = 60
	for elapsed := int64(0); elapsed < dur; elapsed += cadence {
		b.emit("speedSignal(%s, %.1f)", b.vehicle, speed)
		step := int64(cadence)
		if dur-elapsed < step {
			step = dur - elapsed
		}
		b.t += step
	}
	return b
}

// stopFor is a mid-route delivery stop with the engine running.
func (b *timeline) stopFor(dur int64) *timeline { return b.idle(dur) }

// repeatStops alternates short drives with short idles (bus stops).
func (b *timeline) repeatStops(n int, driveDur, stopDur int64) *timeline {
	for i := 0; i < n; i++ {
		b.drive(driveDur, 35)
		b.idle(stopDur)
	}
	return b
}

// signalGap loses the telematics signal for the duration.
func (b *timeline) signalGap(dur int64) *timeline {
	b.emit("signal_lost(%s)", b.vehicle)
	b.t += dur
	b.emit("signal_found(%s)", b.vehicle)
	// After a gap the unit re-reports its state.
	for zone := range b.inZone {
		b.emit("entersZone(%s, %s)", b.vehicle, zone)
	}
	if b.moving {
		b.emit("motionless_end(%s)", b.vehicle)
	}
	b.emit("ignition_on(%s)", b.vehicle)
	b.t += 5
	return b
}
