// Package fleet is a second application domain for the activity-definition
// generation method — commercial vehicle fleet management, the domain the
// paper's further-work section names (citing Tsilionis et al., JAIR 2022).
// It demonstrates the claim that "prompt R may be re-used as it is, while
// the prompts F, E, and T may be customised with domain-specific
// knowledge": the package provides the domain's input events, thresholds,
// gold-standard event description, generation curriculum and a synthetic
// telematics-event generator, all pluggable into the same pipeline,
// similarity metric and RTEC engine as the maritime domain.
package fleet

import (
	"strings"
	"sync"

	"rtecgen/internal/lang"
	"rtecgen/internal/llm"
	"rtecgen/internal/parser"
	"rtecgen/internal/prompt"
)

// Vehicle type constants.
const (
	TypeTruck = "truck"
	TypeVan   = "van"
	TypeBus   = "bus"
)

// goldSrc is the hand-crafted gold-standard event description for fleet
// management: ignition and motion tracking, geofences, speeding, idling
// (engine on while stationary), and idling away from any depot.
const goldSrc = `
% Input events from the on-board telematics unit.
inputEvent(speedSignal(_, _)).
inputEvent(ignition_on(_)).
inputEvent(ignition_off(_)).
inputEvent(motionless_start(_)).
inputEvent(motionless_end(_)).
inputEvent(entersZone(_, _)).
inputEvent(leavesZone(_, _)).
inputEvent(signal_lost(_)).
inputEvent(signal_found(_)).

grounding(idling(V)) :- vehicle(V).
grounding(offDepotIdling(V)) :- vehicle(V).
grounding(urbanSpeeding(V)) :- vehicle(V).

% ------------------------------------------------------------------
% ignitionOn: the engine is running.
% ------------------------------------------------------------------
initiatedAt(ignitionOn(V)=true, T) :-
    happensAt(ignition_on(V), T).

terminatedAt(ignitionOn(V)=true, T) :-
    happensAt(ignition_off(V), T).

terminatedAt(ignitionOn(V)=true, T) :-
    happensAt(signal_lost(V), T).

% ------------------------------------------------------------------
% moving: the vehicle is in motion.
% ------------------------------------------------------------------
initiatedAt(moving(V)=true, T) :-
    happensAt(motionless_end(V), T).

terminatedAt(moving(V)=true, T) :-
    happensAt(motionless_start(V), T).

terminatedAt(moving(V)=true, T) :-
    happensAt(signal_lost(V), T).

% ------------------------------------------------------------------
% withinZone: the vehicle is inside a zone of some kind (depot, urban,
% highway).
% ------------------------------------------------------------------
initiatedAt(withinZone(V, ZoneKind)=true, T) :-
    happensAt(entersZone(V, ZoneID), T),
    zoneKind(ZoneID, ZoneKind).

terminatedAt(withinZone(V, ZoneKind)=true, T) :-
    happensAt(leavesZone(V, ZoneID), T),
    zoneKind(ZoneID, ZoneKind).

terminatedAt(withinZone(V, ZoneKind)=true, T) :-
    happensAt(signal_lost(V), T).

% ------------------------------------------------------------------
% speeding: the vehicle exceeds the speed limit of its vehicle type.
% ------------------------------------------------------------------
initiatedAt(speeding(V)=true, T) :-
    happensAt(speedSignal(V, Speed), T),
    vehicleType(V, Type),
    typeSpeedLimit(Type, Limit),
    Speed > Limit.

terminatedAt(speeding(V)=true, T) :-
    happensAt(speedSignal(V, Speed), T),
    vehicleType(V, Type),
    typeSpeedLimit(Type, Limit),
    Speed =< Limit.

terminatedAt(speeding(V)=true, T) :-
    happensAt(signal_lost(V), T).

% ------------------------------------------------------------------
% idling: the engine is running while the vehicle is not moving.
% ------------------------------------------------------------------
holdsFor(idling(V)=true, I) :-
    holdsFor(ignitionOn(V)=true, Ion),
    holdsFor(moving(V)=true, Im),
    relative_complement_all(Ion, [Im], I).

% ------------------------------------------------------------------
% offDepotIdling: idling away from every depot (wasted fuel on route).
% ------------------------------------------------------------------
holdsFor(offDepotIdling(V)=true, I) :-
    holdsFor(idling(V)=true, Ii),
    holdsFor(withinZone(V, depot)=true, Id),
    relative_complement_all(Ii, [Id], I).

% ------------------------------------------------------------------
% urbanSpeeding: speeding inside an urban zone.
% ------------------------------------------------------------------
holdsFor(urbanSpeeding(V)=true, I) :-
    holdsFor(speeding(V)=true, Is),
    holdsFor(withinZone(V, urban)=true, Iu),
    intersect_all([Is, Iu], I).
`

var (
	goldOnce sync.Once
	goldED   *lang.EventDescription
)

// GoldED returns the parsed fleet gold standard (cloned).
func GoldED() *lang.EventDescription {
	goldOnce.Do(func() { goldED = parser.MustParseEventDescription(goldSrc) })
	return goldED.Clone()
}

// GoldSource returns the concrete-syntax text of the gold event description.
func GoldSource() string { return goldSrc }

// TypeSpeedLimits are the per-type speed limits in km/h.
var TypeSpeedLimits = map[string]float64{
	TypeTruck: 80,
	TypeVan:   100,
	TypeBus:   90,
}

// Activity mirrors maritime.Activity for the fleet curriculum.
type Activity struct {
	Key         string
	Name        string
	Fluents     []string // indicators; primary last
	Composite   bool
	Description string
}

// Primary returns the indicator of the activity's top-level fluent.
func (a Activity) Primary() string { return a.Fluents[len(a.Fluents)-1] }

// PrimaryName returns the functor of the primary fluent.
func (a Activity) PrimaryName() string {
	return strings.SplitN(a.Primary(), "/", 2)[0]
}

// Curriculum is the ordered generation curriculum, lower-level first.
var Curriculum = []Activity{
	{
		Key: "ignitionOn", Name: "ignitionOn", Fluents: []string{"ignitionOn/1"},
		Description: "Ignition on: the engine of a vehicle is running from the moment the ignition is switched on until it is switched off, or until the telematics signal is lost.",
	},
	{
		Key: "moving", Name: "moving", Fluents: []string{"moving/1"},
		Description: "Moving: a vehicle is in motion from the moment it stops being motionless until it becomes motionless again, or until the telematics signal is lost.",
	},
	{
		Key: "withinZone", Name: "withinZone", Fluents: []string{"withinZone/2"},
		Description: "Within zone: this activity starts when a vehicle enters a zone of interest of some kind. It ends when the vehicle leaves the zone that it had entered, or when the telematics signal is lost.",
	},
	{
		Key: "sp", Name: "speeding", Fluents: []string{"speeding/1"}, Composite: true,
		Description: "Speeding: a vehicle is speeding while its reported speed exceeds the speed limit of its vehicle type. The activity ends when the speed drops to the limit, or when the telematics signal is lost.",
	},
	{
		Key: "id", Name: "idling", Fluents: []string{"idling/1"}, Composite: true,
		Description: "Idling: a vehicle is idling while its engine is running and, at the same time, it is not moving.",
	},
	{
		Key: "odi", Name: "offDepotIdling", Fluents: []string{"offDepotIdling/1"}, Composite: true,
		Description: "Off-depot idling: a vehicle idles away from every depot, i.e. it is idling, excluding the periods during which it is within a depot zone.",
	},
	{
		Key: "us", Name: "urbanSpeeding", Fluents: []string{"urbanSpeeding/1"}, Composite: true,
		Description: "Urban speeding: a vehicle is speeding while it is within an urban zone.",
	},
}

// CompositeActivities returns the reported activities.
func CompositeActivities() []Activity {
	var out []Activity
	for _, a := range Curriculum {
		if a.Composite {
			out = append(out, a)
		}
	}
	return out
}

// RulesForActivity extracts from an event description the rules whose head
// fluent belongs to the activity.
func RulesForActivity(ed *lang.EventDescription, act Activity) []*lang.Clause {
	want := map[string]bool{}
	for _, f := range act.Fluents {
		want[f] = true
	}
	var out []*lang.Clause
	for _, c := range ed.Rules() {
		if _, fl := c.HeadFVP(); fl != nil && want[fl.Indicator()] {
			out = append(out, c)
		}
	}
	return out
}

// PromptDomain builds the prompt-pipeline domain for fleet management:
// prompt R is reused verbatim; prompts E and T carry this content instead
// of the maritime one.
func PromptDomain() *prompt.Domain {
	return &prompt.Domain{
		Name: "vehicle fleet management",
		Events: []prompt.EventDoc{
			{Pattern: "speedSignal(Vehicle, Speed)", Meaning: "'Vehicle' reported its speed (km/h)."},
			{Pattern: "ignition_on(Vehicle)", Meaning: "The ignition of 'Vehicle' was switched on."},
			{Pattern: "ignition_off(Vehicle)", Meaning: "The ignition of 'Vehicle' was switched off."},
			{Pattern: "motionless_start(Vehicle)", Meaning: "'Vehicle' became motionless."},
			{Pattern: "motionless_end(Vehicle)", Meaning: "'Vehicle' started moving."},
			{Pattern: "entersZone(Vehicle, Zone)", Meaning: "'Vehicle' entered the zone with identifier 'Zone'."},
			{Pattern: "leavesZone(Vehicle, Zone)", Meaning: "'Vehicle' left the zone with identifier 'Zone'."},
			{Pattern: "signal_lost(Vehicle)", Meaning: "The telematics unit of 'Vehicle' stopped transmitting."},
			{Pattern: "signal_found(Vehicle)", Meaning: "The telematics unit of 'Vehicle' resumed transmitting."},
		},
		Background: []prompt.BackgroundDoc{
			{Pattern: "zoneKind(Zone, ZoneKind)",
				Meaning: "zone 'Zone' is of the given kind; the zone kinds are depot, urban and highway."},
			{Pattern: "vehicleType(Vehicle, Type)",
				Meaning: "'Vehicle' is of the given type; the vehicle types are truck, van and bus."},
			{Pattern: "typeSpeedLimit(Type, Limit)",
				Meaning: "the speed limit of vehicle type 'Type' is 'Limit' km/h."},
		},
		Thresholds: []prompt.ThresholdDoc{
			{Name: "idlingMin", Meaning: "The minimum duration of a stop that counts as idling (seconds)."},
		},
		Values:    []string{"true", "depot", "urban", "highway"},
		Constants: []string{"truck", "van", "bus", "vehicle"},
		Aliases: map[string][]string{
			"speedSignal":      {"velocity", "speedReport"},
			"ignition_on":      {"ignitionOn", "engineOn"},
			"ignition_off":     {"ignitionOff", "engineOff"},
			"motionless_start": {"stopStart", "motionlessStart"},
			"motionless_end":   {"stopEnd", "motionlessEnd"},
			"entersZone":       {"entersArea", "enterZone"},
			"leavesZone":       {"leavesArea", "leaveZone"},
			"signal_lost":      {"gapStart", "signalLost"},
			"signal_found":     {"gapEnd", "signalFound"},
			"zoneKind":         {"zoneType", "areaType"},
			"vehicleType":      {"typeOfVehicle"},
			"typeSpeedLimit":   {"speedLimit"},
			"depot":            {"depotZone"},
			"urban":            {"urbanZone", "city"},
		},
	}
}

// CurriculumRequests converts the curriculum into pipeline requests.
func CurriculumRequests() []prompt.ActivityRequest {
	out := make([]prompt.ActivityRequest, len(Curriculum))
	for i, a := range Curriculum {
		out[i] = prompt.ActivityRequest{Key: a.Key, Name: a.Name, Description: a.Description}
	}
	return out
}

// Knowledge builds the simulated-model knowledge base for the fleet domain,
// so the same six models can generate fleet definitions.
func Knowledge() *llm.Knowledge {
	k := &llm.Knowledge{Domain: PromptDomain()}
	gold := GoldED()
	for _, act := range Curriculum {
		fluents := make([]string, 0, len(act.Fluents))
		for _, f := range act.Fluents {
			fluents = append(fluents, strings.SplitN(f, "/", 2)[0])
		}
		k.Activities = append(k.Activities, llm.ActivityKnowledge{
			Key:     act.Key,
			Name:    act.Name,
			Primary: act.PrimaryName(),
			Fluents: fluents,
			Clauses: RulesForActivity(gold, act),
		})
	}
	return k
}
