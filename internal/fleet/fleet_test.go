package fleet

import (
	"testing"

	"rtecgen/internal/llm"
	"rtecgen/internal/prompt"
	"rtecgen/internal/rtec"
	"rtecgen/internal/similarity"
)

func TestGoldEDLoadsStrict(t *testing.T) {
	e, err := rtec.New(GoldED(), rtec.Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := e.FluentKindOf("idling/1"); k != rtec.SD {
		t.Error("idling must be statically determined")
	}
	if k, _ := e.FluentKindOf("speeding/1"); k != rtec.Simple {
		t.Error("speeding must be simple")
	}
}

func TestCurriculumCoversGold(t *testing.T) {
	ed := GoldED()
	covered := map[string]bool{}
	for _, a := range Curriculum {
		if len(RulesForActivity(ed, a)) == 0 {
			t.Errorf("activity %s has no gold rules", a.Key)
		}
		for _, f := range a.Fluents {
			covered[f] = true
		}
	}
	for f := range ed.RulesByFluent() {
		if !covered[f] {
			t.Errorf("gold fluent %s not covered by the curriculum", f)
		}
	}
	if len(CompositeActivities()) != 4 {
		t.Fatalf("composite activities = %d", len(CompositeActivities()))
	}
}

// TestScenarioRecognition: the synthetic telematics day must make the gold
// definitions fire on all composite fleet activities with the scripted
// ground truth.
func TestScenarioRecognition(t *testing.T) {
	scen := BuildScenario(ScenarioConfig{Vehicles: 8, Seed: 3})
	if len(scen.Events) == 0 {
		t.Fatal("no events")
	}
	if !scen.Events.IsSorted() {
		t.Fatal("events not sorted")
	}
	ed := scen.FullED(GoldED())
	eng, err := rtec.New(ed, rtec.Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Run(scen.Events, rtec.RunOptions{Window: 1800})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Warnings) != 0 {
		t.Fatalf("warnings: %v", rec.Warnings)
	}

	mustHold := []struct {
		key    string
		minDur int64
	}{
		{"urbanSpeeding(truck01)=true", 200},  // 95 km/h in the city centre
		{"speeding(van02)=true", 600},         // 115 km/h on the motorway
		{"idling(truck01)=true", 1200},        // depot warm-up + delivery stop
		{"offDepotIdling(truck01)=true", 600}, // the delivery stop only
		{"idling(bus03)=true", 600},           // bus stops
		{"withinZone(truck01, urban)=true", 600},
	}
	for _, c := range mustHold {
		if got := rec.IntervalsOfKey(c.key); got.Duration() < c.minDur {
			t.Errorf("%s held %d s (%s), want >= %d", c.key, got.Duration(), got, c.minDur)
		}
	}

	// van02 speeds on the highway, never in town.
	if got := rec.IntervalsOfKey("urbanSpeeding(van02)=true"); len(got) != 0 {
		t.Errorf("urbanSpeeding(van02) = %s, want none", got)
	}
	// Bus stops happen in the city, away from depots: off-depot idling.
	if got := rec.IntervalsOfKey("offDepotIdling(bus03)=true"); got.Duration() < 300 {
		t.Errorf("offDepotIdling(bus03) = %s, want bus-stop idles", got)
	}

	// The signal gap must break van02's ignitionOn.
	ign := rec.IntervalsOfKey("ignitionOn(van02)=true")
	if len(ign) < 2 {
		t.Errorf("ignitionOn(van02) = %s, want the gap to split it", ign)
	}
}

// TestGenerationPipelineOnFleetDomain demonstrates the paper's further-work
// claim: the same prompting method and simulated models work on a second
// domain by swapping the domain content of prompts E/T and the knowledge
// base.
func TestGenerationPipelineOnFleetDomain(t *testing.T) {
	domain := PromptDomain()
	gold := GoldED()
	for _, name := range []string{"o1", "Gemma-2"} {
		m, err := llm.NewWithKnowledge(name, Knowledge())
		if err != nil {
			t.Fatal(err)
		}
		gen, err := prompt.RunPipeline(m, prompt.FewShot, domain, CurriculumRequests())
		if err != nil {
			t.Fatal(err)
		}
		if len(gen.ED().Rules()) < 8 {
			t.Fatalf("%s generated only %d rules", name, len(gen.ED().Rules()))
		}
		sim, err := similarity.EventDescriptionSimilarity(gold, gen.ED())
		if err != nil {
			t.Fatal(err)
		}
		if name == "o1" && sim < 0.85 {
			t.Errorf("o1 fleet similarity = %v, want high", sim)
		}
		if name == "Gemma-2" && sim >= 0.97 {
			t.Errorf("Gemma-2 fleet similarity = %v, want noticeably degraded", sim)
		}
		t.Logf("%s fleet similarity: %.3f", name, sim)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a := BuildScenario(ScenarioConfig{Vehicles: 8, Seed: 3})
	b := BuildScenario(ScenarioConfig{Vehicles: 8, Seed: 3})
	if len(a.Events) != len(b.Events) {
		t.Fatal("non-deterministic scenario")
	}
	for i := range a.Events {
		if a.Events[i].Time != b.Events[i].Time || !a.Events[i].Atom.Equal(b.Events[i].Atom) {
			t.Fatalf("events differ at %d", i)
		}
	}
}
